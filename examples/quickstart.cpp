// Quickstart: simulate one compute node — a 4-wide 2GHz core with an
// L1/L2 hierarchy over DDR3 — running the HPCCG mini-app proxy, then dump
// every statistic the models collected.
//
//   $ ./quickstart
//
// This is the ~40-line version of what the benchmark harnesses do at
// scale; start here when adopting the library.
#include <iostream>

#include "core/sst.h"
#include "mem/mem_lib.h"
#include "proc/proc_lib.h"

int main() {
  using namespace sst;

  Simulation sim;

  // Processor: abstract core fed by a workload generator.
  Params cpu_params{{"clock", "2GHz"}, {"issue_width", "4"}};
  auto* cpu = sim.add_component<proc::Core>("cpu", cpu_params);
  cpu->set_workload(std::make_unique<proc::Hpccg>(16, 16, 16, 1));

  // Memory hierarchy: L1 -> L2 -> DDR3 controller.
  Params l1_params{{"size", "32KiB"}, {"assoc", "4"}, {"hit_latency", "1ns"}};
  sim.add_component<mem::Cache>("l1", l1_params);
  Params l2_params{
      {"size", "512KiB"}, {"assoc", "8"}, {"hit_latency", "4ns"},
      {"mshrs", "16"}};
  sim.add_component<mem::Cache>("l2", l2_params);
  Params mc_params{{"backend", "dram"}, {"preset", "DDR3"}};
  sim.add_component<mem::MemoryController>("mem", mc_params);

  sim.connect("cpu", "mem", "l1", "cpu", Simulation::time("500ps"));
  sim.connect("l1", "mem", "l2", "cpu", Simulation::time("1ns"));
  sim.connect("l2", "mem", "mem", "cpu", Simulation::time("2ns"));

  const RunStats stats = sim.run();

  const double ms = static_cast<double>(stats.final_time) / 1e9;
  std::cout << "simulated " << ms << " ms of a 2GHz node ("
            << stats.events_processed << " events, "
            << stats.wall_seconds << " s wall clock)\n\n";
  sim.stats().write_console(std::cout);
  return 0;
}
