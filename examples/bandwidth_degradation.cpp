// Bandwidth-degradation example (Fig. 9 methodology): run one application
// communication profile at full / half / quarter / eighth NIC injection
// bandwidth and report the relative slowdown.
//
//   $ ./bandwidth_degradation          # CTH-like large-message profile
//   $ ./bandwidth_degradation charon   # latency-bound small-message app
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "net/net_lib.h"

namespace {

struct Profile {
  const char* halo_bytes;
  const char* collective_bytes;
  const char* collective_count;
  const char* compute;
};

Profile profile_for(const std::string& app) {
  if (app == "charon") {
    // Many small latency-bound collectives, negligible halo volume.
    return {"2KiB", "512", "12", "400us"};
  }
  // CTH-like: big face exchanges every step.
  return {"1MiB", "0", "0", "1ms"};
}

double run_at(const Profile& prof, const char* injection_bw) {
  using namespace sst;
  Simulation sim(SimConfig{.seed = 23});
  std::vector<net::NetEndpoint*> eps;
  std::vector<net::AppProfileMotif*> motifs;
  constexpr unsigned kNodes = 16;
  for (unsigned i = 0; i < kNodes; ++i) {
    Params p;
    p.set("px", "4");
    p.set("py", "2");
    p.set("pz", "2");
    p.set("compute", prof.compute);
    p.set("halo_bytes", prof.halo_bytes);
    p.set("collective_bytes", prof.collective_bytes);
    p.set("collective_count", prof.collective_count);
    p.set("iterations", "5");
    p.set("injection_bw", injection_bw);
    auto* m = sim.add_component<net::AppProfileMotif>(
        "rank" + std::to_string(i), p);
    motifs.push_back(m);
    eps.push_back(m);
  }
  net::TopologySpec spec;
  spec.kind = net::TopologySpec::Kind::kTorus3D;
  spec.x = 4;
  spec.y = 2;
  spec.z = 2;
  spec.link_bandwidth = "25GB/s";  // fabric is not the bottleneck
  net::build_topology(sim, spec, eps);
  sim.run();
  SimTime completion = 0;
  for (const auto* m : motifs) {
    completion = std::max(completion, m->completion_time());
  }
  return static_cast<double>(completion);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "cth";
  const Profile prof = profile_for(app);

  const char* bandwidths[] = {"3.2GB/s", "1.6GB/s", "0.8GB/s", "0.4GB/s"};
  const char* labels[] = {"full", "half", "quarter", "eighth"};

  std::printf("application profile: %s\n", app.c_str());
  std::printf("%-10s %-12s %16s\n", "injection", "bandwidth",
              "relative runtime");
  double base = 0;
  for (int i = 0; i < 4; ++i) {
    const double t = run_at(prof, bandwidths[i]);
    if (i == 0) base = t;
    std::printf("%-10s %-12s %16.2f\n", labels[i], bandwidths[i], t / base);
  }
  std::printf("\nLarge-message apps degrade sharply; latency-bound apps"
              " stay flat\n(run with 'charon' to see the flat case).\n");
  return 0;
}
