// SDL example: describe a system as JSON (inline here; normally a file
// passed on the command line), validate it, build it through the factory,
// run it, and write the statistics as CSV.
//
//   $ ./sdl_from_json            # uses the built-in demo document
//   $ ./sdl_from_json sys.json   # loads a system description from disk
#include <fstream>
#include <iostream>
#include <sstream>

#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"

namespace {

constexpr const char* kDemoSystem = R"({
  // A two-core node: private L1s share an L2 through a bus, DDR3 behind.
  "config": {"seed": 42},
  "components": [
    {"name": "cpu0", "type": "proc.Core",
     "params": {"clock": "2GHz", "issue_width": 2,
                "workload": "stream", "elements": 16384, "iterations": 2}},
    {"name": "cpu1", "type": "proc.Core",
     "params": {"clock": "2GHz", "issue_width": 2,
                "workload": "gups", "table": "4MiB", "updates": 20000}},
    {"name": "l1_0", "type": "mem.Cache",
     "params": {"size": "32KiB", "assoc": 4, "hit_latency": "1ns"}},
    {"name": "l1_1", "type": "mem.Cache",
     "params": {"size": "32KiB", "assoc": 4, "hit_latency": "1ns"}},
    {"name": "bus", "type": "mem.Bus",
     "params": {"num_ports": 2, "bandwidth": "25.6GB/s"}},
    {"name": "l2", "type": "mem.Cache",
     "params": {"size": "1MiB", "assoc": 8, "hit_latency": "5ns",
                "mshrs": 16}},
    {"name": "mc", "type": "mem.MemoryController",
     "params": {"backend": "dram", "preset": "DDR3"}}
  ],
  "links": [
    {"from": "cpu0", "from_port": "mem", "to": "l1_0", "to_port": "cpu",
     "latency": "500ps"},
    {"from": "cpu1", "from_port": "mem", "to": "l1_1", "to_port": "cpu",
     "latency": "500ps"},
    {"from": "l1_0", "from_port": "mem", "to": "bus", "to_port": "up0",
     "latency": "1ns"},
    {"from": "l1_1", "from_port": "mem", "to": "bus", "to_port": "up1",
     "latency": "1ns"},
    {"from": "bus", "from_port": "down", "to": "l2", "to_port": "cpu",
     "latency": "1ns"},
    {"from": "l2", "from_port": "mem", "to": "mc", "to_port": "cpu",
     "latency": "2ns"}
  ]
})";

}  // namespace

int main(int argc, char** argv) {
  sst::mem::register_library();
  sst::proc::register_library();
  sst::net::register_library();

  std::string text = kDemoSystem;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  sst::sdl::ConfigGraph graph;
  try {
    graph = sst::sdl::ConfigGraph::from_json_text(text);
  } catch (const sst::ConfigError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 1;
  }

  const auto problems = graph.validate(sst::Factory::instance());
  if (!problems.empty()) {
    std::cerr << "invalid system description:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return 1;
  }
  std::cout << "system: " << graph.components().size() << " components, "
            << graph.links().size() << " links\n";

  auto sim = graph.build();
  const sst::RunStats stats = sim->run();
  std::cout << "done at t=" << stats.final_time << " ps ("
            << stats.events_processed << " events)\n\n";
  sim->stats().write_csv(std::cout);
  return 0;
}
