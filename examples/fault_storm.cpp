// Resilience example: a 16-node torus runs an allreduce while the fabric
// degrades underneath it — router ports die and heal on a schedule, and
// two NIC uplinks silently drop a fraction of their packets.  The
// ACK/timeout retry protocol and adaptive rerouting absorb the damage;
// at the end we tally what was recovered versus what was actually lost.
//
//   $ ./fault_storm
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "fault/fault_model.h"
#include "net/motifs.h"
#include "net/net_lib.h"
#include "net/topology.h"

namespace {

std::uint64_t counter(const sst::Simulation& sim, const std::string& comp,
                      const std::string& stat) {
  const auto* c = dynamic_cast<const sst::Counter*>(
      sim.stats().find(comp, stat));
  return c != nullptr ? c->count() : 0;
}

}  // namespace

int main() {
  using namespace sst;

  Simulation sim(SimConfig{.end_time = 10 * kSecond,
                           .seed = 11,
                           .fault_seed = 2026});

  // 16 allreduce ranks with the reliable-delivery protocol enabled.
  std::vector<net::AllreduceMotif*> motifs;
  std::vector<net::NetEndpoint*> eps;
  for (unsigned i = 0; i < 16; ++i) {
    Params p;
    p.set("iterations", "12");
    p.set("msg_bytes", "8KiB");
    p.set("compute", "5us");
    p.set("ack", "true");
    p.set("retry_max", "12");
    p.set("retry_timeout", "30us");
    auto* m = sim.add_component<net::AllreduceMotif>(
        "rank" + std::to_string(i), p);
    motifs.push_back(m);
    eps.push_back(m);
  }

  net::TopologySpec spec;
  spec.kind = net::TopologySpec::Kind::kTorus2D;
  spec.x = 4;
  spec.y = 4;
  const net::Topology topo = net::build_topology(sim, spec, eps);

  // The storm schedule.  Two cables fail outright early in the run (both
  // directions, so no half-open links), one of them heals mid-run.
  topo.routers[5]->schedule_port_fail(0, 2 * kMicrosecond);   // rtr5 +x
  topo.routers[6]->schedule_port_fail(1, 2 * kMicrosecond);   // rtr6 -x
  topo.routers[9]->schedule_port_fail(2, 10 * kMicrosecond);  // rtr9 +y
  topo.routers[13]->schedule_port_fail(3, 10 * kMicrosecond); // rtr13 -y
  topo.routers[9]->schedule_port_heal(2, 120 * kMicrosecond);
  topo.routers[13]->schedule_port_heal(3, 120 * kMicrosecond);

  // Two flaky NICs: rank3 loses a tenth of everything it injects and
  // rank12 jitters a quarter of its packets by up to 2us.
  fault::LinkFaultConfig lossy;
  lossy.drop_prob = 0.10;
  fault::install_link_fault(sim, "rank3", "net", lossy);
  fault::LinkFaultConfig jitter;
  jitter.delay_prob = 0.25;
  jitter.delay_min = 100 * kNanosecond;
  jitter.delay_max = 2 * kMicrosecond;
  fault::install_link_fault(sim, "rank12", "net", jitter);

  std::printf("fault storm: 4x4 torus allreduce, 12 iterations of 8KiB\n");
  std::printf("  t=2us   rtr5<->rtr6 cable dies (permanent)\n");
  std::printf("  t=10us  rtr9<->rtr13 cable dies, heals at t=120us\n");
  std::printf("  rank3 NIC drops 10%% of packets; rank12 jitters 25%%\n\n");

  sim.run();

  unsigned finished = 0;
  std::uint64_t retries = 0;
  std::uint64_t lost = 0;
  std::uint64_t dropped = 0;
  SimTime completion = 0;
  for (const auto* m : motifs) {
    if (m->motif_finished()) ++finished;
    retries += m->retries();
    lost += m->delivery_failures();
    dropped += counter(sim, m->name(), "net.fault_dropped");
    completion = std::max(completion, m->completion_time());
  }
  std::uint64_t reroutes = 0;
  std::uint64_t ttl_dropped = 0;
  for (const auto* r : topo.routers) {
    reroutes += counter(sim, r->name(), "reroutes");
    ttl_dropped += counter(sim, r->name(), "ttl_dropped");
  }

  std::printf("%-34s %u / 16\n", "ranks finished", finished);
  std::printf("%-34s %llu\n", "packets eaten by fault models",
              static_cast<unsigned long long>(dropped));
  std::printf("%-34s %llu\n", "messages recovered by retry",
              static_cast<unsigned long long>(retries));
  std::printf("%-34s %llu\n", "rerouted around dead ports",
              static_cast<unsigned long long>(reroutes));
  std::printf("%-34s %llu\n", "packets expired in transit (TTL)",
              static_cast<unsigned long long>(ttl_dropped));
  std::printf("%-34s %llu\n", "messages lost for good",
              static_cast<unsigned long long>(lost));
  std::printf("%-34s %.1f us\n", "completion time",
              static_cast<double>(completion) / 1e6);

  if (finished != 16 || lost != 0) {
    std::printf("\nstorm won: not every rank completed cleanly\n");
    return 1;
  }
  std::printf("\nstorm weathered: every loss was recovered\n");
  return 0;
}
