// Network example: weak-scale a 3-D halo exchange across growing torus
// sizes and watch per-step time — the classic "does my interconnect keep
// up as I add nodes" question, answered in simulation.
//
//   $ ./noc_scaling
#include <cstdio>
#include <vector>

#include "core/sst.h"
#include "net/net_lib.h"

namespace {

struct Result {
  unsigned nodes;
  double step_us;
  double avg_hops;
};

Result run_halo(unsigned x, unsigned y, unsigned z) {
  using namespace sst;
  const unsigned nodes = x * y * z;
  constexpr unsigned kIterations = 5;
  Simulation sim(SimConfig{.seed = 17});

  std::vector<net::NetEndpoint*> eps;
  std::vector<net::HaloExchangeMotif*> motifs;
  for (unsigned i = 0; i < nodes; ++i) {
    Params p;
    p.set("px", std::to_string(x));
    p.set("py", std::to_string(y));
    p.set("pz", std::to_string(z));
    p.set("msg_bytes", "128KiB");
    p.set("compute", "100us");
    p.set("iterations", std::to_string(kIterations));
    p.set("injection_bw", "3.2GB/s");
    auto* m = sim.add_component<net::HaloExchangeMotif>(
        "rank" + std::to_string(i), p);
    motifs.push_back(m);
    eps.push_back(m);
  }

  net::TopologySpec spec;
  spec.kind = net::TopologySpec::Kind::kTorus3D;
  spec.x = x;
  spec.y = y;
  spec.z = z;
  spec.link_bandwidth = "10GB/s";
  const net::Topology topo = net::build_topology(sim, spec, eps);

  sim.run();
  SimTime completion = 0;
  for (const auto* m : motifs) {
    completion = std::max(completion, m->completion_time());
  }
  return {nodes,
          static_cast<double>(completion) / kIterations / 1e6,
          topo.avg_hops};
}

}  // namespace

int main() {
  std::printf("3-D torus halo exchange, 128KiB faces, 100us compute/step\n");
  std::printf("%8s %12s %12s %14s\n", "nodes", "torus", "avg hops",
              "time/step(us)");
  const unsigned dims[][3] = {{2, 2, 2}, {4, 2, 2}, {4, 4, 2}, {4, 4, 4}};
  double base = 0;
  for (const auto& d : dims) {
    const Result r = run_halo(d[0], d[1], d[2]);
    if (base == 0) base = r.step_us;
    std::printf("%8u %6ux%1ux%1u %12.2f %14.1f  (%.2fx of 8-node)\n",
                r.nodes, d[0], d[1], d[2], r.avg_hops, r.step_us,
                r.step_us / base);
  }
  std::printf("\nNearest-neighbour halo weak-scales: time/step should stay"
              " nearly flat.\n");
  return 0;
}
