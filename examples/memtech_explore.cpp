// Design-space exploration example (the FGCS §5.2.1 workflow in
// miniature): sweep memory technology x issue width for one mini-app and
// print performance, power, and cost figures of merit.
//
//   $ ./memtech_explore            # hpccg proxy
//   $ ./memtech_explore lulesh     # hydro proxy
//
// The full-resolution experiment (both apps, all widths, reference
// numbers) lives in bench/bench_memtech; this example shows the API.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/sst.h"
#include "mem/mem_lib.h"
#include "power/power.h"
#include "proc/proc_lib.h"

namespace {

sst::proc::WorkloadPtr make_app(const std::string& app) {
  if (app == "lulesh") return std::make_unique<sst::proc::Lulesh>(10, 1);
  return std::make_unique<sst::proc::Hpccg>(12, 12, 12, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sst;
  const std::string app = argc > 1 ? argv[1] : "hpccg";

  std::printf("%-10s %-8s %10s %10s %10s %12s\n", "memory", "width",
              "time(ms)", "power(W)", "cost($)", "perf/W");
  for (const char* preset : {"DDR2", "DDR3", "GDDR5"}) {
    for (unsigned width : {1u, 4u}) {
      Simulation sim;
      Params cp{{"clock", "2GHz"},
                {"issue_width", std::to_string(width)}};
      auto* cpu = sim.add_component<proc::Core>("cpu", cp);
      cpu->set_workload(make_app(app));
      Params l2p{{"size", "512KiB"}, {"assoc", "8"},
                 {"hit_latency", "4ns"}, {"mshrs", "16"}};
      sim.add_component<mem::Cache>("l2", l2p);
      Params mp{{"backend", "dram"}, {"preset", preset}};
      auto* mc = sim.add_component<mem::MemoryController>("mc", mp);
      sim.connect("cpu", "mem", "l2", "cpu", Simulation::time("1ns"));
      sim.connect("l2", "mem", "mc", "cpu", Simulation::time("2ns"));
      sim.run();

      const double seconds =
          static_cast<double>(cpu->completion_time()) * 1e-12;

      // Technology models: core + DRAM power, die + memory cost.
      power::CorePowerModel::Config cc;
      cc.issue_width = width;
      const power::CorePowerModel core_power(cc);
      const auto dram_params = mem::DramTimingParams::preset(preset);
      const power::DramPowerModel dram_power(dram_params);
      const std::uint64_t accesses = mc->reads() + mc->writes();
      const double watts =
          core_power.average_power_w(cpu->instructions(), seconds) +
          dram_power.average_power_w(accesses, seconds);
      const power::CostModel cost;
      const double dollars =
          cost.die_cost_usd(core_power.area_mm2() + 20.0) +
          power::CostModel::memory_cost_usd(dram_params, 16.0);

      power::DesignPoint point;
      point.runtime_s = seconds;
      point.power_w = watts;
      point.cost_usd = dollars;
      std::printf("%-10s %-8u %10.3f %10.2f %10.2f %12.4f\n", preset,
                  width, seconds * 1e3, watts, dollars,
                  point.perf_per_watt());
    }
  }
  std::printf("\nSee bench/bench_memtech for the full experiment.\n");
  return 0;
}
