file(REMOVE_RECURSE
  "CMakeFiles/sst_core.dir/clock.cpp.o"
  "CMakeFiles/sst_core.dir/clock.cpp.o.d"
  "CMakeFiles/sst_core.dir/component.cpp.o"
  "CMakeFiles/sst_core.dir/component.cpp.o.d"
  "CMakeFiles/sst_core.dir/factory.cpp.o"
  "CMakeFiles/sst_core.dir/factory.cpp.o.d"
  "CMakeFiles/sst_core.dir/link.cpp.o"
  "CMakeFiles/sst_core.dir/link.cpp.o.d"
  "CMakeFiles/sst_core.dir/params.cpp.o"
  "CMakeFiles/sst_core.dir/params.cpp.o.d"
  "CMakeFiles/sst_core.dir/rng.cpp.o"
  "CMakeFiles/sst_core.dir/rng.cpp.o.d"
  "CMakeFiles/sst_core.dir/simulation.cpp.o"
  "CMakeFiles/sst_core.dir/simulation.cpp.o.d"
  "CMakeFiles/sst_core.dir/stat_sampler.cpp.o"
  "CMakeFiles/sst_core.dir/stat_sampler.cpp.o.d"
  "CMakeFiles/sst_core.dir/statistics.cpp.o"
  "CMakeFiles/sst_core.dir/statistics.cpp.o.d"
  "CMakeFiles/sst_core.dir/time_vortex.cpp.o"
  "CMakeFiles/sst_core.dir/time_vortex.cpp.o.d"
  "CMakeFiles/sst_core.dir/unit_algebra.cpp.o"
  "CMakeFiles/sst_core.dir/unit_algebra.cpp.o.d"
  "libsst_core.a"
  "libsst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
