
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clock.cpp" "src/core/CMakeFiles/sst_core.dir/clock.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/clock.cpp.o.d"
  "/root/repo/src/core/component.cpp" "src/core/CMakeFiles/sst_core.dir/component.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/component.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/sst_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/link.cpp" "src/core/CMakeFiles/sst_core.dir/link.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/link.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/sst_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/params.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/sst_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/sst_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/stat_sampler.cpp" "src/core/CMakeFiles/sst_core.dir/stat_sampler.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/stat_sampler.cpp.o.d"
  "/root/repo/src/core/statistics.cpp" "src/core/CMakeFiles/sst_core.dir/statistics.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/statistics.cpp.o.d"
  "/root/repo/src/core/time_vortex.cpp" "src/core/CMakeFiles/sst_core.dir/time_vortex.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/time_vortex.cpp.o.d"
  "/root/repo/src/core/unit_algebra.cpp" "src/core/CMakeFiles/sst_core.dir/unit_algebra.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/unit_algebra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
