# Empty dependencies file for sst_proc.
# This may be replaced when dependencies are built.
