file(REMOVE_RECURSE
  "libsst_proc.a"
)
