
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/core_model.cpp" "src/proc/CMakeFiles/sst_proc.dir/core_model.cpp.o" "gcc" "src/proc/CMakeFiles/sst_proc.dir/core_model.cpp.o.d"
  "/root/repo/src/proc/kernels.cpp" "src/proc/CMakeFiles/sst_proc.dir/kernels.cpp.o" "gcc" "src/proc/CMakeFiles/sst_proc.dir/kernels.cpp.o.d"
  "/root/repo/src/proc/proc_lib.cpp" "src/proc/CMakeFiles/sst_proc.dir/proc_lib.cpp.o" "gcc" "src/proc/CMakeFiles/sst_proc.dir/proc_lib.cpp.o.d"
  "/root/repo/src/proc/trace.cpp" "src/proc/CMakeFiles/sst_proc.dir/trace.cpp.o" "gcc" "src/proc/CMakeFiles/sst_proc.dir/trace.cpp.o.d"
  "/root/repo/src/proc/workload_factory.cpp" "src/proc/CMakeFiles/sst_proc.dir/workload_factory.cpp.o" "gcc" "src/proc/CMakeFiles/sst_proc.dir/workload_factory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sst_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
