file(REMOVE_RECURSE
  "CMakeFiles/sst_proc.dir/core_model.cpp.o"
  "CMakeFiles/sst_proc.dir/core_model.cpp.o.d"
  "CMakeFiles/sst_proc.dir/kernels.cpp.o"
  "CMakeFiles/sst_proc.dir/kernels.cpp.o.d"
  "CMakeFiles/sst_proc.dir/proc_lib.cpp.o"
  "CMakeFiles/sst_proc.dir/proc_lib.cpp.o.d"
  "CMakeFiles/sst_proc.dir/trace.cpp.o"
  "CMakeFiles/sst_proc.dir/trace.cpp.o.d"
  "CMakeFiles/sst_proc.dir/workload_factory.cpp.o"
  "CMakeFiles/sst_proc.dir/workload_factory.cpp.o.d"
  "libsst_proc.a"
  "libsst_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
