file(REMOVE_RECURSE
  "libsst_sdl.a"
)
