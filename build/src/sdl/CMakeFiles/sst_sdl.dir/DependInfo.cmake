
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdl/config_graph.cpp" "src/sdl/CMakeFiles/sst_sdl.dir/config_graph.cpp.o" "gcc" "src/sdl/CMakeFiles/sst_sdl.dir/config_graph.cpp.o.d"
  "/root/repo/src/sdl/json.cpp" "src/sdl/CMakeFiles/sst_sdl.dir/json.cpp.o" "gcc" "src/sdl/CMakeFiles/sst_sdl.dir/json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
