# Empty dependencies file for sst_sdl.
# This may be replaced when dependencies are built.
