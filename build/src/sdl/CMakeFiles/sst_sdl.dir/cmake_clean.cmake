file(REMOVE_RECURSE
  "CMakeFiles/sst_sdl.dir/config_graph.cpp.o"
  "CMakeFiles/sst_sdl.dir/config_graph.cpp.o.d"
  "CMakeFiles/sst_sdl.dir/json.cpp.o"
  "CMakeFiles/sst_sdl.dir/json.cpp.o.d"
  "libsst_sdl.a"
  "libsst_sdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_sdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
