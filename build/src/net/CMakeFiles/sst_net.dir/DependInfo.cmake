
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/endpoint.cpp" "src/net/CMakeFiles/sst_net.dir/endpoint.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/endpoint.cpp.o.d"
  "/root/repo/src/net/motifs.cpp" "src/net/CMakeFiles/sst_net.dir/motifs.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/motifs.cpp.o.d"
  "/root/repo/src/net/net_lib.cpp" "src/net/CMakeFiles/sst_net.dir/net_lib.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/net_lib.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/sst_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/router.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/sst_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/sst_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/sst_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
