file(REMOVE_RECURSE
  "CMakeFiles/sst_net.dir/endpoint.cpp.o"
  "CMakeFiles/sst_net.dir/endpoint.cpp.o.d"
  "CMakeFiles/sst_net.dir/motifs.cpp.o"
  "CMakeFiles/sst_net.dir/motifs.cpp.o.d"
  "CMakeFiles/sst_net.dir/net_lib.cpp.o"
  "CMakeFiles/sst_net.dir/net_lib.cpp.o.d"
  "CMakeFiles/sst_net.dir/router.cpp.o"
  "CMakeFiles/sst_net.dir/router.cpp.o.d"
  "CMakeFiles/sst_net.dir/topology.cpp.o"
  "CMakeFiles/sst_net.dir/topology.cpp.o.d"
  "CMakeFiles/sst_net.dir/traffic.cpp.o"
  "CMakeFiles/sst_net.dir/traffic.cpp.o.d"
  "libsst_net.a"
  "libsst_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
