# Empty dependencies file for sst_net.
# This may be replaced when dependencies are built.
