
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus.cpp" "src/mem/CMakeFiles/sst_mem.dir/bus.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/bus.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/sst_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/coherence.cpp" "src/mem/CMakeFiles/sst_mem.dir/coherence.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/coherence.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/mem/CMakeFiles/sst_mem.dir/dram.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/dram.cpp.o.d"
  "/root/repo/src/mem/mem_lib.cpp" "src/mem/CMakeFiles/sst_mem.dir/mem_lib.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/mem_lib.cpp.o.d"
  "/root/repo/src/mem/memory_controller.cpp" "src/mem/CMakeFiles/sst_mem.dir/memory_controller.cpp.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/memory_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
