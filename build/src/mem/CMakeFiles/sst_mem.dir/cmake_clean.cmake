file(REMOVE_RECURSE
  "CMakeFiles/sst_mem.dir/bus.cpp.o"
  "CMakeFiles/sst_mem.dir/bus.cpp.o.d"
  "CMakeFiles/sst_mem.dir/cache.cpp.o"
  "CMakeFiles/sst_mem.dir/cache.cpp.o.d"
  "CMakeFiles/sst_mem.dir/coherence.cpp.o"
  "CMakeFiles/sst_mem.dir/coherence.cpp.o.d"
  "CMakeFiles/sst_mem.dir/dram.cpp.o"
  "CMakeFiles/sst_mem.dir/dram.cpp.o.d"
  "CMakeFiles/sst_mem.dir/mem_lib.cpp.o"
  "CMakeFiles/sst_mem.dir/mem_lib.cpp.o.d"
  "CMakeFiles/sst_mem.dir/memory_controller.cpp.o"
  "CMakeFiles/sst_mem.dir/memory_controller.cpp.o.d"
  "libsst_mem.a"
  "libsst_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
