file(REMOVE_RECURSE
  "CMakeFiles/bench_pdes_scaling.dir/bench_pdes_scaling.cpp.o"
  "CMakeFiles/bench_pdes_scaling.dir/bench_pdes_scaling.cpp.o.d"
  "bench_pdes_scaling"
  "bench_pdes_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdes_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
