# Empty dependencies file for bench_pdes_scaling.
# This may be replaced when dependencies are built.
