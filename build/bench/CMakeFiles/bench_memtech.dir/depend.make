# Empty dependencies file for bench_memtech.
# This may be replaced when dependencies are built.
