file(REMOVE_RECURSE
  "CMakeFiles/bench_memtech.dir/bench_memtech.cpp.o"
  "CMakeFiles/bench_memtech.dir/bench_memtech.cpp.o.d"
  "bench_memtech"
  "bench_memtech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memtech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
