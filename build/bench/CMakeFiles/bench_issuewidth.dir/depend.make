# Empty dependencies file for bench_issuewidth.
# This may be replaced when dependencies are built.
