file(REMOVE_RECURSE
  "CMakeFiles/bench_issuewidth.dir/bench_issuewidth.cpp.o"
  "CMakeFiles/bench_issuewidth.dir/bench_issuewidth.cpp.o.d"
  "bench_issuewidth"
  "bench_issuewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_issuewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
