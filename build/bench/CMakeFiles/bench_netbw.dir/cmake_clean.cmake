file(REMOVE_RECURSE
  "CMakeFiles/bench_netbw.dir/bench_netbw.cpp.o"
  "CMakeFiles/bench_netbw.dir/bench_netbw.cpp.o.d"
  "bench_netbw"
  "bench_netbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
