# Empty dependencies file for bench_netbw.
# This may be replaced when dependencies are built.
