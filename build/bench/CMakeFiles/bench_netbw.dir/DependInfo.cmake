
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_netbw.cpp" "bench/CMakeFiles/bench_netbw.dir/bench_netbw.cpp.o" "gcc" "bench/CMakeFiles/bench_netbw.dir/bench_netbw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdl/CMakeFiles/sst_sdl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/sst_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sst_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
