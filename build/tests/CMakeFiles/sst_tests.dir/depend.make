# Empty dependencies file for sst_tests.
# This may be replaced when dependencies are built.
