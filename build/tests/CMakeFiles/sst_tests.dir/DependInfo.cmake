
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_clock.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_clock.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_clock.cpp.o.d"
  "/root/repo/tests/core/test_engine.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_engine.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_engine.cpp.o.d"
  "/root/repo/tests/core/test_factory.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_factory.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_factory.cpp.o.d"
  "/root/repo/tests/core/test_link_edges.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_link_edges.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_link_edges.cpp.o.d"
  "/root/repo/tests/core/test_parallel.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_parallel.cpp.o.d"
  "/root/repo/tests/core/test_params.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_params.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_params.cpp.o.d"
  "/root/repo/tests/core/test_rng.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_rng.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_rng.cpp.o.d"
  "/root/repo/tests/core/test_stat_sampler.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_stat_sampler.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_stat_sampler.cpp.o.d"
  "/root/repo/tests/core/test_statistics.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_statistics.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_statistics.cpp.o.d"
  "/root/repo/tests/core/test_time_vortex.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_time_vortex.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_time_vortex.cpp.o.d"
  "/root/repo/tests/core/test_unit_algebra.cpp" "tests/CMakeFiles/sst_tests.dir/core/test_unit_algebra.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/core/test_unit_algebra.cpp.o.d"
  "/root/repo/tests/integration/test_memory_system.cpp" "tests/CMakeFiles/sst_tests.dir/integration/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/integration/test_memory_system.cpp.o.d"
  "/root/repo/tests/integration/test_network_system.cpp" "tests/CMakeFiles/sst_tests.dir/integration/test_network_system.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/integration/test_network_system.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/sst_tests.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/integration/test_sdl_system.cpp" "tests/CMakeFiles/sst_tests.dir/integration/test_sdl_system.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/integration/test_sdl_system.cpp.o.d"
  "/root/repo/tests/mem/test_bus.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_bus.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_bus.cpp.o.d"
  "/root/repo/tests/mem/test_cache.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_cache.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_cache.cpp.o.d"
  "/root/repo/tests/mem/test_coherence.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_coherence.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_coherence.cpp.o.d"
  "/root/repo/tests/mem/test_dram.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_dram.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_dram.cpp.o.d"
  "/root/repo/tests/mem/test_memory_controller.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_memory_controller.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_memory_controller.cpp.o.d"
  "/root/repo/tests/mem/test_prefetch.cpp" "tests/CMakeFiles/sst_tests.dir/mem/test_prefetch.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/mem/test_prefetch.cpp.o.d"
  "/root/repo/tests/net/test_endpoint.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_endpoint.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_endpoint.cpp.o.d"
  "/root/repo/tests/net/test_motifs.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_motifs.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_motifs.cpp.o.d"
  "/root/repo/tests/net/test_router.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_router.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_router.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_topology.cpp.o.d"
  "/root/repo/tests/net/test_traffic.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_traffic.cpp.o.d"
  "/root/repo/tests/net/test_valiant.cpp" "tests/CMakeFiles/sst_tests.dir/net/test_valiant.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/net/test_valiant.cpp.o.d"
  "/root/repo/tests/power/test_power.cpp" "tests/CMakeFiles/sst_tests.dir/power/test_power.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/power/test_power.cpp.o.d"
  "/root/repo/tests/proc/test_core_model.cpp" "tests/CMakeFiles/sst_tests.dir/proc/test_core_model.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/proc/test_core_model.cpp.o.d"
  "/root/repo/tests/proc/test_kernels.cpp" "tests/CMakeFiles/sst_tests.dir/proc/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/proc/test_kernels.cpp.o.d"
  "/root/repo/tests/proc/test_trace.cpp" "tests/CMakeFiles/sst_tests.dir/proc/test_trace.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/proc/test_trace.cpp.o.d"
  "/root/repo/tests/sdl/test_config_graph.cpp" "tests/CMakeFiles/sst_tests.dir/sdl/test_config_graph.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/sdl/test_config_graph.cpp.o.d"
  "/root/repo/tests/sdl/test_json.cpp" "tests/CMakeFiles/sst_tests.dir/sdl/test_json.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/sdl/test_json.cpp.o.d"
  "/root/repo/tests/sdl/test_network_sdl.cpp" "tests/CMakeFiles/sst_tests.dir/sdl/test_network_sdl.cpp.o" "gcc" "tests/CMakeFiles/sst_tests.dir/sdl/test_network_sdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sdl/CMakeFiles/sst_sdl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sst_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/sst_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sst_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
