# Empty compiler generated dependencies file for noc_scaling.
# This may be replaced when dependencies are built.
