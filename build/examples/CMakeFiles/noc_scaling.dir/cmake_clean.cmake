file(REMOVE_RECURSE
  "CMakeFiles/noc_scaling.dir/noc_scaling.cpp.o"
  "CMakeFiles/noc_scaling.dir/noc_scaling.cpp.o.d"
  "noc_scaling"
  "noc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
