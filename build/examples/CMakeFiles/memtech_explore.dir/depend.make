# Empty dependencies file for memtech_explore.
# This may be replaced when dependencies are built.
