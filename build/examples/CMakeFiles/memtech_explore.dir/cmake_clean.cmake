file(REMOVE_RECURSE
  "CMakeFiles/memtech_explore.dir/memtech_explore.cpp.o"
  "CMakeFiles/memtech_explore.dir/memtech_explore.cpp.o.d"
  "memtech_explore"
  "memtech_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtech_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
