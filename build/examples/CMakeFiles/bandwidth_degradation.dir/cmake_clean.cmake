file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_degradation.dir/bandwidth_degradation.cpp.o"
  "CMakeFiles/bandwidth_degradation.dir/bandwidth_degradation.cpp.o.d"
  "bandwidth_degradation"
  "bandwidth_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
