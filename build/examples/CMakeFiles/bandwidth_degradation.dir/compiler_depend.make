# Empty compiler generated dependencies file for bandwidth_degradation.
# This may be replaced when dependencies are built.
