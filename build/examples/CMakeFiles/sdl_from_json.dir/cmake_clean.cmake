file(REMOVE_RECURSE
  "CMakeFiles/sdl_from_json.dir/sdl_from_json.cpp.o"
  "CMakeFiles/sdl_from_json.dir/sdl_from_json.cpp.o.d"
  "sdl_from_json"
  "sdl_from_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdl_from_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
