# Empty dependencies file for sdl_from_json.
# This may be replaced when dependencies are built.
