# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.noc_scaling "/root/repo/build/examples/noc_scaling")
set_tests_properties(example.noc_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.bandwidth_degradation.charon "/root/repo/build/examples/bandwidth_degradation" "charon")
set_tests_properties(example.bandwidth_degradation.charon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.sdl_from_json "/root/repo/build/examples/sdl_from_json")
set_tests_properties(example.sdl_from_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.sstsim.validate "/root/repo/build/src/tools/sstsim" "/root/repo/examples/systems/halo16_torus.json" "--validate")
set_tests_properties(example.sstsim.validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.sstsim.run "/root/repo/build/src/tools/sstsim" "/root/repo/examples/systems/node_ddr3.json" "--ranks" "2")
set_tests_properties(example.sstsim.run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
