# CMake-script twin of run_benchmarks.sh for hosts without a POSIX shell:
#
#   cmake -DSOURCE_DIR=<repo> [-DBUILD_DIR=<dir>] [-DEND_US=2000]
#         [-DREPEAT=3] -P bench/run_benchmarks.cmake
#
# Configures a Release build, builds the PHOLD scaling benchmark, and runs
# it with a JSON dump.  Merging the dump into BENCH_pdes.json (baseline
# preservation, speedup computation) is delegated to run_benchmarks.sh,
# which is the canonical entry point where a shell is available.
if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "run_benchmarks.cmake: pass -DSOURCE_DIR=<repo root>")
endif()
if(NOT DEFINED BUILD_DIR)
  set(BUILD_DIR "${SOURCE_DIR}/build-bench")
endif()
if(NOT DEFINED END_US)
  set(END_US 2000)
endif()
if(NOT DEFINED REPEAT)
  set(REPEAT 3)
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -B ${BUILD_DIR} -S ${SOURCE_DIR}
          -DCMAKE_BUILD_TYPE=Release
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_benchmarks.cmake: configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BUILD_DIR} --target bench_pdes_scaling
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_benchmarks.cmake: build failed")
endif()

execute_process(
  COMMAND ${BUILD_DIR}/bench/bench_pdes_scaling --end-us ${END_US}
          --repeat ${REPEAT} --json ${BUILD_DIR}/bench_pdes_current.json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_benchmarks.cmake: benchmark run failed")
endif()
message(STATUS "PHOLD results: ${BUILD_DIR}/bench_pdes_current.json")
