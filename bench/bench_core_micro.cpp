// E10 — engine microbenchmarks (google-benchmark).
//
// Costs of the primitives everything else is built from: TimeVortex
// insert/pop, link event delivery, clock dispatch, UnitAlgebra parsing,
// RNG draws.  Regressions here slow every experiment in the repo.
#include <benchmark/benchmark.h>

#include "core/sst.h"

namespace {

using namespace sst;

// ---- TimeVortex -------------------------------------------------------

class VortexEvent final : public Event {};

}  // namespace

namespace sst {
// Reuse the unit-test stamping peer (friend of Event).
class TimeVortexTestPeer {
 public:
  static EventPtr stamped(SimTime t, std::uint64_t seq) {
    auto ev = std::make_unique<VortexEvent>();
    ev->delivery_time_ = t;
    ev->link_id_ = 0;
    ev->order_ = seq;
    return ev;
  }
};
}  // namespace sst

namespace {

void BM_TimeVortexInsertPop(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  TimeVortex tv;
  rng::XorShift128Plus rng(1);
  std::uint64_t seq = 0;
  for (std::uint64_t i = 0; i < depth; ++i) {
    tv.insert(TimeVortexTestPeer::stamped(rng.next_bounded(1 << 20), seq++));
  }
  for (auto _ : state) {
    tv.insert(TimeVortexTestPeer::stamped(rng.next_bounded(1 << 20), seq++));
    benchmark::DoNotOptimize(tv.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeVortexInsertPop)->Arg(64)->Arg(4096)->Arg(262144);

// ---- Link send/deliver through the serial engine ----------------------

class Bouncer final : public Component {
 public:
  explicit Bouncer(Params&) {
    link_ = configure_link("port", [this](EventPtr ev) {
      link_->send(std::move(ev));
    });
  }
  Link* link_;
};

class Kicker final : public Component {
 public:
  explicit Kicker(Params&) {
    link_ = configure_link("port", [this](EventPtr ev) {
      link_->send(std::move(ev));
    });
  }
  void setup() override { link_->send(std::make_unique<NullEvent>()); }
  Link* link_;
};

void BM_EventRoundTrip(benchmark::State& state) {
  // Measures full engine overhead per event: heap ops + dispatch + send.
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim(SimConfig{.end_time = kMillisecond});
    Params p;
    sim.add_component<Kicker>("a", p);
    sim.add_component<Bouncer>("b", p);
    sim.connect("a", "port", "b", "port", 10 * kNanosecond);
    sim.initialize();
    state.ResumeTiming();
    const RunStats stats = sim.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(stats.events_processed) +
        state.items_processed());
  }
}
BENCHMARK(BM_EventRoundTrip)->Unit(benchmark::kMillisecond);

// ---- Clock dispatch ----------------------------------------------------

class NopTicker final : public Component {
 public:
  explicit NopTicker(Params&) {
    register_clock(kNanosecond, [](Cycle) { return false; });
  }
};

void BM_ClockDispatch(benchmark::State& state) {
  const auto handlers = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim(SimConfig{.end_time = 100 * kMicrosecond});
    Params p;
    for (std::int64_t i = 0; i < handlers; ++i) {
      sim.add_component<NopTicker>("t" + std::to_string(i), p);
    }
    state.ResumeTiming();
    const RunStats stats = sim.run();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(stats.clock_ticks) * handlers +
        state.items_processed());
  }
}
BENCHMARK(BM_ClockDispatch)->Arg(1)->Arg(16)->Unit(benchmark::kMillisecond);

// ---- UnitAlgebra parsing ----------------------------------------------

void BM_UnitAlgebraParse(benchmark::State& state) {
  const char* inputs[] = {"2.4GHz", "64KiB", "1.6GB/s", "10ns", "3W"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnitAlgebra(inputs[i++ % 5]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnitAlgebraParse);

// ---- RNG ----------------------------------------------------------------

void BM_RngXorShift(benchmark::State& state) {
  rng::XorShift128Plus rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngXorShift);

void BM_RngBounded(benchmark::State& state) {
  rng::XorShift128Plus rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_bounded(1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RngBounded);

}  // namespace

BENCHMARK_MAIN();
