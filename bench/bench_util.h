// Shared machinery for the experiment-reproduction benches: standard node
// construction (core + L1 + L2 + DRAM), technology-model rollups, and
// table formatting.  Each bench binary regenerates one table/figure from
// the experiment index in DESIGN.md.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/sst.h"
#include "mem/mem_lib.h"
#include "power/power.h"
#include "proc/proc_lib.h"

namespace sst::bench {

struct NodeConfig {
  std::string preset = "DDR3";
  unsigned issue_width = 2;
  std::string clock = "2GHz";
  std::string l1_size = "32KiB";
  std::string l2_size = "512KiB";
  unsigned l1_mshrs = 24;
  unsigned l2_mshrs = 32;
  // OoO-class load/store queue depths: the design-space study models
  // aggressive cores, and bandwidth contrasts only appear when the demand
  // side can cover the memory round trip.
  unsigned max_loads = 48;
  unsigned max_stores = 48;
};

struct NodeResult {
  double runtime_s = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t dram_accesses = 0;
  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double sim_wall_s = 0.0;
  std::uint64_t sim_events = 0;
};

/// Builds and runs one standard node on the given workload.
inline NodeResult run_node(const NodeConfig& cfg, proc::WorkloadPtr w) {
  Simulation sim;
  Params cp{{"clock", cfg.clock},
            {"issue_width", std::to_string(cfg.issue_width)},
            {"max_loads", std::to_string(cfg.max_loads)},
            {"max_stores", std::to_string(cfg.max_stores)}};
  auto* cpu = sim.add_component<proc::Core>("cpu", cp);
  cpu->set_workload(std::move(w));

  Params l1p{{"size", cfg.l1_size}, {"assoc", "4"}, {"hit_latency", "1ns"},
             {"mshrs", std::to_string(cfg.l1_mshrs)}};
  auto* l1 = sim.add_component<mem::Cache>("l1", l1p);
  Params l2p{{"size", cfg.l2_size}, {"assoc", "8"}, {"hit_latency", "4ns"},
             {"mshrs", std::to_string(cfg.l2_mshrs)}};
  auto* l2 = sim.add_component<mem::Cache>("l2", l2p);
  Params mp{{"backend", "dram"}, {"preset", cfg.preset}};
  auto* mc = sim.add_component<mem::MemoryController>("mc", mp);

  sim.connect("cpu", "mem", "l1", "cpu", 500);
  sim.connect("l1", "mem", "l2", "cpu", kNanosecond);
  sim.connect("l2", "mem", "mc", "cpu", 2 * kNanosecond);

  const RunStats stats = sim.run();

  NodeResult r;
  r.runtime_s = static_cast<double>(cpu->completion_time()) * 1e-12;
  r.instructions = cpu->instructions();
  r.l1_accesses = l1->hits() + l1->misses();
  r.l2_accesses = l2->hits() + l2->misses();
  r.dram_accesses = mc->reads() + mc->writes();
  r.l1_miss_rate = r.l1_accesses
                       ? static_cast<double>(l1->misses()) /
                             static_cast<double>(r.l1_accesses)
                       : 0.0;
  r.l2_miss_rate = r.l2_accesses
                       ? static_cast<double>(l2->misses()) /
                             static_cast<double>(r.l2_accesses)
                       : 0.0;
  r.sim_wall_s = stats.wall_seconds;
  r.sim_events = stats.events_processed;
  return r;
}

/// Technology rollup for one node run: core + L2 SRAM + DRAM power, die +
/// 16GB memory cost.
struct TechRollup {
  double power_w = 0.0;
  double cost_usd = 0.0;
};

inline TechRollup rollup(const NodeConfig& cfg, const NodeResult& r) {
  power::CorePowerModel::Config cc;
  cc.issue_width = cfg.issue_width;
  const power::CorePowerModel core_model(cc);
  const power::SramPowerModel l2_model(UnitAlgebra(cfg.l2_size).to_bytes());
  const auto dram_params = mem::DramTimingParams::preset(cfg.preset);
  const power::DramPowerModel dram_model(dram_params);

  TechRollup t;
  t.power_w = core_model.average_power_w(r.instructions, r.runtime_s) +
              l2_model.average_power_w(r.l2_accesses, r.runtime_s) +
              dram_model.average_power_w(r.dram_accesses, r.runtime_s);
  const power::CostModel cost;
  // Node cost: processor die + 4 GB of memory (study-era capacities) +
  // the non-swept parts of the node (board, NIC, power delivery).
  // Without the fixed term, perf/$ would just mirror the DRAM price
  // list; with it, a fast-enough expensive memory can cross over — the
  // effect the published study reports at wide issue.
  constexpr double kNodeBaseUsd = 150.0;
  constexpr double kMemoryGb = 4.0;
  t.cost_usd =
      cost.die_cost_usd(core_model.area_mm2() + l2_model.area_mm2()) +
      power::CostModel::memory_cost_usd(dram_params, kMemoryGb) +
      kNodeBaseUsd;
  return t;
}

/// Workload factory for the two study mini-apps (sizes chosen so the
/// working set streams through the cache hierarchy, as in the study:
/// HPCCG 20^3 ~ 1.8 MB of matrix per sweep, LULESH 24^3 ~ 820 KB of mesh
/// per step — both well past the 512 KiB L2).
inline proc::WorkloadPtr study_workload(const std::string& app) {
  if (app == "lulesh") return std::make_unique<proc::Lulesh>(24, 1);
  if (app == "hpccg") return std::make_unique<proc::Hpccg>(20, 20, 20, 1);
  throw ConfigError("unknown study workload " + app);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const char* experiment, const char* source,
                         const char* expectation) {
  print_rule();
  std::printf("%s\n  reproduces: %s\n  expected shape: %s\n", experiment,
              source, expectation);
  print_rule();
}

}  // namespace sst::bench
