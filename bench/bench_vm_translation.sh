#!/bin/sh
# E20: the cost of address translation on the cache/DRAM path.
#
#   bench/bench_vm_translation.sh [build_dir]
#
# Runs the translation-bound node_vm example four ways through sstsim:
#
#   vm_on     the full path (two-level TLB, radix-4 walker, 16-entry
#             walk cache, 2MiB promotion)
#   vm_off    --override /vm/enable=false: the TLB degrades to
#             pass-through and the core issues physical addresses
#   wc_off    --override /vm/walker/walk_cache_entries=0: every walk
#             pays the full radix depth in PTE reads
#   huge_off  --override /vm/walker/huge_pages=none: no 2MiB promotion,
#             so the TLB's reach stays 4KiB pages
#
# and records committed instructions (the work the core got done in the
# model's fixed 30us window), TLB walks, PTE reads and wall time per arm
# under the "vm_translation" key of BENCH_pdes.json (the baseline /
# current / speedup sections are owned by run_benchmarks.sh and left
# untouched).
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_pdes.json"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target sstsim \
    -j"$(getconf _NPROCESSORS_ONLN)"

python3 - "$ROOT" "$BUILD" "$OUT" <<'EOF'
import csv, json, os, subprocess, sys, tempfile, time

root, build, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
sstsim = os.path.join(build, "src/tools/sstsim")
model = os.path.join(root, "examples/systems/node_vm.json")

work = tempfile.mkdtemp(prefix="sst_vm_bench_")

ARMS = [
    ("vm_on", []),
    ("vm_off", ["--override", "/vm/enable=false"]),
    ("wc_off", ["--override", "/vm/walker/walk_cache_entries=0"]),
    ("huge_off", ["--override", "/vm/walker/huge_pages=none"]),
]

def stat(rows, component, statistic):
    return rows.get((component, statistic, "count"), 0.0)

record = {}
print("vm translation bench: node_vm.json, 4 arms")
for name, extra in ARMS:
    stats_path = os.path.join(work, name + ".csv")
    t0 = time.monotonic()
    subprocess.run([sstsim, model, "--stats", stats_path] + extra,
                   check=True, stdout=subprocess.DEVNULL)
    dt = time.monotonic() - t0
    rows = {}
    with open(stats_path) as f:
        for r in csv.reader(f):
            if len(r) != 4:
                continue
            try:
                rows[(r[0], r[1], r[2])] = float(r[3])
            except ValueError:
                continue  # header row
    arm = {
        "instructions": int(stat(rows, "cpu", "instructions")),
        "tlb_walks": int(stat(rows, "tlb", "walks")),
        "pte_reads": int(stat(rows, "ptw", "pte_reads")),
        "promotions": int(stat(rows, "ptw", "promotions")),
        "wall_seconds": round(dt, 3),
    }
    record[name] = arm
    print(f"  {name}: {arm['instructions']} instructions, "
          f"{arm['tlb_walks']} walks, {arm['pte_reads']} PTE reads, "
          f"{arm['promotions']} promotions ({dt:.2f}s wall)")

on, off = record["vm_on"], record["vm_off"]
if off["instructions"] < on["instructions"]:
    sys.exit("vm bench: translation made the core FASTER than "
             "pass-through; the model is not measuring overhead")
record["translation_overhead_pct"] = round(
    100.0 * (off["instructions"] - on["instructions"])
    / off["instructions"], 2)
record["walk_cache_pte_read_savings_pct"] = round(
    100.0 * (record["wc_off"]["pte_reads"] - on["pte_reads"])
    / max(1, record["wc_off"]["pte_reads"]), 2)

try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except Exception:
    rev = "unknown"
record["git_rev"] = rev

try:
    with open(out_path) as f:
        doc = json.load(f)
except (OSError, ValueError):
    doc = {}
doc["vm_translation"] = record
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} (vm_translation: "
      f"{record['translation_overhead_pct']}% instruction overhead, "
      f"walk cache saves "
      f"{record['walk_cache_pte_read_savings_pct']}% of PTE reads)")
EOF
