// E4 — network injection-bandwidth degradation study.
//
// Reproduces the methodology of the companion text Fig. 9 (Cray XT5
// firmware-throttling study): four application communication profiles run
// at full / half / quarter / eighth NIC injection bandwidth; reports the
// runtime relative to full bandwidth.
//
// Published shape: Charon (many small latency-bound messages) is
// essentially flat; CTH and SAGE (large halo messages) degrade steeply —
// CTH slows by more than 2x at one-eighth bandwidth; xNOBEL falls in
// between (loss of compute/communication overlap).
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "net/net_lib.h"

namespace {

using namespace sst;

struct AppProfile {
  const char* name;
  const char* halo_bytes;        // per-face halo volume
  const char* collective_bytes;  // small-message collectives
  const char* collective_count;
  const char* compute;
};

// Communication signatures of the four ASC codes in the study
// (substitution documented in DESIGN.md: motif replicas, not the codes).
const AppProfile kApps[] = {
    {"CTH", "128KiB", "0", "0", "1ms"},
    {"SAGE", "80KiB", "64", "1", "1.2ms"},
    {"xNOBEL", "24KiB", "256", "4", "800us"},
    {"Charon", "2KiB", "512", "12", "400us"},
};

double run_profile(const AppProfile& app, const char* injection_bw) {
  Simulation sim(SimConfig{.seed = 23});
  constexpr unsigned kNodes = 16;
  std::vector<net::NetEndpoint*> eps;
  std::vector<net::AppProfileMotif*> motifs;
  for (unsigned i = 0; i < kNodes; ++i) {
    Params p;
    p.set("px", "4");
    p.set("py", "2");
    p.set("pz", "2");
    p.set("compute", app.compute);
    p.set("halo_bytes", app.halo_bytes);
    p.set("collective_bytes", app.collective_bytes);
    p.set("collective_count", app.collective_count);
    p.set("iterations", "6");
    p.set("injection_bw", injection_bw);
    auto* m = sim.add_component<net::AppProfileMotif>(
        "rank" + std::to_string(i), p);
    motifs.push_back(m);
    eps.push_back(m);
  }
  net::TopologySpec spec;
  spec.kind = net::TopologySpec::Kind::kTorus3D;
  spec.x = 4;
  spec.y = 2;
  spec.z = 2;
  spec.link_bandwidth = "25GB/s";  // fabric over-provisioned, as on XT5
  net::build_topology(sim, spec, eps);
  sim.run();
  SimTime completion = 0;
  for (const auto* m : motifs) {
    completion = std::max(completion, m->completion_time());
  }
  return static_cast<double>(completion);
}

}  // namespace

int main() {
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("E4 injection-bandwidth degradation (16-node 4x2x2 torus)\n");
  std::printf("  reproduces: FGCS co-design paper Fig. 9 (XT5 firmware throttling study)\n");
  std::printf("  expected shape: Charon flat; CTH > 2x at 1/8 bandwidth; SAGE steep;\n");
  std::printf("                  xNOBEL intermediate\n");
  std::printf("--------------------------------------------------------------------------\n\n");

  const char* bandwidths[] = {"3.2GB/s", "1.6GB/s", "0.8GB/s", "0.4GB/s"};
  const char* labels[] = {"full", "half", "quarter", "eighth"};

  std::printf("%-8s", "app");
  for (const char* l : labels) std::printf(" %10s", l);
  std::printf("\n");
  for (const AppProfile& app : kApps) {
    std::printf("%-8s", app.name);
    double base = 0;
    for (int b = 0; b < 4; ++b) {
      const double t = run_profile(app, bandwidths[b]);
      if (b == 0) base = t;
      std::printf(" %10.2f", t / base);
    }
    std::printf("\n");
  }
  std::printf("\n(values are runtime relative to full 3.2GB/s injection "
              "bandwidth)\n");
  return 0;
}
