#!/bin/sh
# E18: warm-dispatch vs fork/exec sweep overhead.
#
#   bench/bench_daemon_dispatch.sh [build_dir]
#
# Runs the same >=100-point sweep twice through sstdse — once fork/exec
# (one sstsim process per point, SDL re-parsed every time) and once
# through a 1-worker sstsimd (model parsed once, points dispatched to a
# warm worker over the socket) — on a near-zero-work model, so wall
# time is dominated by per-point dispatch overhead.  Records the result
# under the "daemon_dispatch" key of BENCH_pdes.json (the baseline /
# current / speedup sections are owned by run_benchmarks.sh and left
# untouched).
#
# Environment:
#   SST_BENCH_DISPATCH_POINTS   sweep points (default 100, min 100)
#   SST_BENCH_MIN_DISPATCH_SPEEDUP
#                               when set (e.g. "5"), fail unless the
#                               fork/exec per-point overhead is at least
#                               this multiple of the daemon's (the CI
#                               daemon job gate)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
OUT="$ROOT/BENCH_pdes.json"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target sstsim sstsimd sstdse \
    -j"$(getconf _NPROCESSORS_ONLN)"

python3 - "$ROOT" "$BUILD" "$OUT" <<'EOF'
import json, os, subprocess, sys, tempfile, time

root, build, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
sstsim = os.path.join(build, "src/tools/sstsim")
sstsimd = os.path.join(build, "src/tools/sstsimd")
sstdse = os.path.join(build, "src/tools/sstdse")
points = max(100, int(os.environ.get("SST_BENCH_DISPATCH_POINTS", "100")))

work = tempfile.mkdtemp(prefix="sst_dispatch_bench_")

# Near-zero simulated work: one ping per endpoint pair, so per-point
# wall time is almost entirely dispatch overhead.
with open(os.path.join(root, "tests/tools/models/pingpong.json")) as f:
    model = f.read().replace('"iterations": 200', '"iterations": 1')
model_path = os.path.join(work, "light.json")
with open(model_path, "w") as f:
    f.write(model)

spec = {
    "name": "dispatch_overhead",
    "model": model_path,
    "axes": [{"path": "/components/rank0/params/msg_bytes",
              "values": list(range(64, 64 + points))}],
    "run": {"concurrency": 1, "timeout_seconds": 60, "retries": 0},
}
spec_path = os.path.join(work, "spec.json")
with open(spec_path, "w") as f:
    json.dump(spec, f)

def run_sweep(label, out_dir, extra):
    t0 = time.monotonic()
    subprocess.run([sstdse, "run", spec_path, "--out", out_dir,
                    "--sstsim", sstsim, "-q"] + extra, check=True)
    dt = time.monotonic() - t0
    print(f"  {label}: {points} points in {dt:.2f}s "
          f"({1000 * dt / points:.2f} ms/point)")
    return dt

print(f"dispatch bench: {points}-point sweep, fork/exec vs daemon")
forkexec_s = run_sweep("fork/exec", os.path.join(work, "sw_forkexec"),
                       ["--jobs", "1"])

sock = os.path.join(work, "d.sock")
daemon = subprocess.Popen([sstsimd, "--socket", sock, "--workers", "1"],
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL)
try:
    for _ in range(100):
        if subprocess.run([sstsimd, "--socket", sock, "--status"],
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL).returncode == 0:
            break
        time.sleep(0.1)
    else:
        sys.exit("dispatch bench: daemon never came up")
    daemon_s = run_sweep("daemon", os.path.join(work, "sw_daemon"),
                         ["--daemon", sock])
finally:
    subprocess.run([sstsimd, "--socket", sock, "--drain"],
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    daemon.wait(timeout=30)

# Same sweep, same answers: overhead must be the only difference.
with open(os.path.join(work, "sw_forkexec/results.csv"), "rb") as f:
    forkexec_csv = f.read()
with open(os.path.join(work, "sw_daemon/results.csv"), "rb") as f:
    daemon_csv = f.read()
if forkexec_csv != daemon_csv:
    sys.exit("dispatch bench: daemon sweep results differ from fork/exec")

ratio = round(forkexec_s / daemon_s, 2)
record = {
    "points": points,
    "forkexec_seconds": round(forkexec_s, 3),
    "daemon_seconds": round(daemon_s, 3),
    "forkexec_ms_per_point": round(1000 * forkexec_s / points, 3),
    "daemon_ms_per_point": round(1000 * daemon_s / points, 3),
    "overhead_ratio": ratio,
}
try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except Exception:
    rev = "unknown"
record["git_rev"] = rev

try:
    with open(out_path) as f:
        doc = json.load(f)
except (OSError, ValueError):
    doc = {}
doc["daemon_dispatch"] = record
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} (daemon_dispatch: overhead ratio {ratio}x)")

gate = os.environ.get("SST_BENCH_MIN_DISPATCH_SPEEDUP")
if gate:
    if ratio < float(gate):
        sys.exit(f"dispatch gate: fork/exec-to-daemon overhead ratio "
                 f"{ratio} < required {gate}")
    print(f"  dispatch gate passed: {ratio} >= {gate}")
EOF
