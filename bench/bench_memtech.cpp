// E1 + E2 — memory-technology design-space exploration.
//
// Reproduces the SST case study (companion text Figs. 10 and 11):
// HPCCG and LULESH proxies on DDR2 / DDR3 / GDDR5, across core issue
// widths 1/2/4/8, reporting performance, performance-per-Watt, and
// performance-per-dollar.
//
// Published shape:
//   * Fig. 10 — GDDR5 is 26-47% faster than DDR3 on Lulesh and 32-41%
//     faster on HPCCG; DDR3 beats DDR2.
//   * Fig. 11 — DDR3 matches or beats GDDR5 in perf/W (up to ~2x for
//     narrow cores); perf/$ favours DDR3 for narrow cores with a
//     crossover by 8-wide.
#include "bench_util.h"

int main() {
  using namespace sst;
  using namespace sst::bench;

  const char* presets[] = {"DDR2", "DDR3", "GDDR5"};
  const unsigned widths[] = {1, 2, 4, 8};

  for (const char* app : {"hpccg", "lulesh"}) {
    print_header(
        ("E1/E2 memory technology sweep - " + std::string(app)).c_str(),
        "FGCS co-design paper Figs. 10-11 (SST + GeM5/DRAMSim2/McPAT flow)",
        "perf: GDDR5 > DDR3 > DDR2; perf/W: DDR3 >= GDDR5; perf/$ "
        "crossover at wide issue");

    struct Cell {
      NodeResult r;
      TechRollup t;
    };
    Cell cells[3][4];
    for (int p = 0; p < 3; ++p) {
      for (int w = 0; w < 4; ++w) {
        NodeConfig cfg;
        cfg.preset = presets[p];
        cfg.issue_width = widths[w];
        cells[p][w].r = run_node(cfg, study_workload(app));
        cells[p][w].t = rollup(cfg, cells[p][w].r);
      }
    }

    std::printf("\n[Fig.10] runtime (ms) and speedup vs DDR3\n");
    std::printf("%-8s", "width");
    for (const char* p : presets) std::printf(" %12s", p);
    std::printf(" %16s\n", "GDDR5 vs DDR3");
    for (int w = 0; w < 4; ++w) {
      std::printf("%-8u", widths[w]);
      for (int p = 0; p < 3; ++p) {
        std::printf(" %12.3f", cells[p][w].r.runtime_s * 1e3);
      }
      const double gain =
          (cells[1][w].r.runtime_s / cells[2][w].r.runtime_s - 1.0) * 100.0;
      std::printf(" %14.1f%%\n", gain);
    }

    std::printf("\n[Fig.11a] performance per Watt (1/s/W), "
                "DDR3-vs-GDDR5 advantage\n");
    std::printf("%-8s", "width");
    for (const char* p : presets) std::printf(" %12s", p);
    std::printf(" %16s\n", "DDR3/GDDR5");
    for (int w = 0; w < 4; ++w) {
      std::printf("%-8u", widths[w]);
      double ppw[3];
      for (int p = 0; p < 3; ++p) {
        ppw[p] = 1.0 / (cells[p][w].r.runtime_s * cells[p][w].t.power_w);
        std::printf(" %12.4f", ppw[p]);
      }
      std::printf(" %15.2fx\n", ppw[1] / ppw[2]);
    }

    std::printf("\n[Fig.11b] performance per dollar (1/s/$)\n");
    std::printf("%-8s", "width");
    for (const char* p : presets) std::printf(" %12s", p);
    std::printf(" %16s\n", "DDR3/GDDR5");
    for (int w = 0; w < 4; ++w) {
      std::printf("%-8u", widths[w]);
      double ppd[3];
      for (int p = 0; p < 3; ++p) {
        ppd[p] = 1.0 / (cells[p][w].r.runtime_s * cells[p][w].t.cost_usd);
        std::printf(" %12.6f", ppd[p]);
      }
      std::printf(" %15.2fx\n", ppd[1] / ppd[2]);
    }
    std::printf("\n");
  }
  return 0;
}
