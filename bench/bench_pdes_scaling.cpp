// E5 + E9 — parallel discrete-event engine scaling and partitioner
// quality.
//
// Reproduces the SC'06 poster's headline claim: the framework itself is a
// scalable parallel simulator.  The cluster substitution (DESIGN.md) maps
// MPI ranks to in-process threads; on this single-core host the study
// reports the algorithmic scaling metrics — events per wall-clock second,
// synchronization rounds, events per sync window, and cross-partition
// traffic — rather than wall-clock speedup.
//
// Expected shape: event totals identical across rank counts (determinism);
// cross-rank event fraction grows with rank count but is far lower for
// the min-cut partitioner than round-robin; events-per-window (the
// available parallelism per sync) stays high for good partitions.
//
// Usage: bench_pdes_scaling [--end-us N] [--repeat N] [--json PATH]
//   --end-us N    simulated end time in microseconds (default 2000)
//   --repeat N    measure each configuration N times and report the
//                 fastest run (default 3; results are deterministic, so
//                 repeats differ only in wall time / scheduler noise)
//   --json PATH   also write the E5/E9 rows as machine-readable JSON
//                 (consumed by bench/run_benchmarks.sh -> BENCH_pdes.json)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ckpt/migrate.h"
#include "core/sst.h"
#include "net/hotspot.h"
#include "net/net_lib.h"
#include "../tests/test_components.h"

namespace {

using namespace sst;

RunStats run_phold_once(unsigned ranks, PartitionStrategy part, unsigned x,
                        unsigned y, SimTime end,
                        SyncMode mode = SyncMode::kConservative,
                        SimTime lax_skew = 0) {
  Simulation sim(SimConfig{.num_ranks = ranks,
                           .end_time = end,
                           .seed = 11,
                           .partition = part,
                           .sync_mode = mode,
                           .lax_skew = lax_skew});
  Params p;
  p.set("fanout", "4");
  p.set("initial_events", "4");
  p.set("min_delay", "20ns");
  auto name = [](unsigned i, unsigned j) {
    return "n" + std::to_string(i) + "_" + std::to_string(j);
  };
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      sim.add_component<sst::testing::PholdNode>(name(i, j), p);
    }
  }
  // 2-D torus of PHOLD nodes: port0/1 in x, port2/3 in y.
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      sim.connect(name(i, j), "port0", name((i + 1) % x, j), "port1",
                  200 * kNanosecond);
      sim.connect(name(i, j), "port2", name(i, (j + 1) % y), "port3",
                  200 * kNanosecond);
    }
  }
  return sim.run();
}

/// Best-of-N measurement: every repeat produces identical simulation
/// results (same events, windows, cross-rank counts — that is the
/// determinism contract), so the minimum wall time is the run least
/// perturbed by the host scheduler.
RunStats run_phold(unsigned ranks, PartitionStrategy part, unsigned x,
                   unsigned y, SimTime end, unsigned repeat,
                   SyncMode mode = SyncMode::kConservative,
                   SimTime lax_skew = 0) {
  RunStats best = run_phold_once(ranks, part, x, y, end, mode, lax_skew);
  for (unsigned i = 1; i < repeat; ++i) {
    const RunStats s = run_phold_once(ranks, part, x, y, end, mode, lax_skew);
    if (s.wall_seconds < best.wall_seconds) best = s;
  }
  return best;
}

const char* part_name(PartitionStrategy p) {
  switch (p) {
    case PartitionStrategy::kLinear: return "linear";
    case PartitionStrategy::kRoundRobin: return "roundrobin";
    case PartitionStrategy::kMinCut: return "mincut";
  }
  return "?";
}

/// E19 — the moving-hotspot PHOLD variant (see src/net/hotspot.h): event
/// load concentrates on a small neighborhood that drifts across the
/// torus, so any static partition is wrong most of the time.  The
/// rebalanced run migrates the hot components apart at sync barriers;
/// the static run keeps the (initially optimal) min-cut partition.
RunStats run_hotspot_once(unsigned ranks, bool rebalance, unsigned x,
                          unsigned y, SimTime end) {
  SimConfig cfg{.num_ranks = ranks,
                .end_time = end,
                .seed = 11,
                .partition = PartitionStrategy::kMinCut};
  cfg.rebalance = rebalance;
  Simulation sim(cfg);
  Params base;
  base.set("size_x", std::to_string(x));
  base.set("size_y", std::to_string(y));
  base.set("min_delay", "20ns");
  base.set("self_delay", "5ns");
  base.set("service_hops", "12");
  base.set("hot_span", "1");
  base.set("bias_pct", "85");
  base.set("drift_period", "150us");
  base.set("initial_tokens", "8");
  auto name = [](unsigned i, unsigned j) {
    return "h" + std::to_string(i) + "_" + std::to_string(j);
  };
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      Params p = base;
      p.set("x", std::to_string(i));
      p.set("y", std::to_string(j));
      sim.add_component<sst::net::HotspotNode>(name(i, j), p);
    }
  }
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      sim.connect(name(i, j), "port0", name((i + 1) % x, j), "port1",
                  200 * kNanosecond);
      sim.connect(name(i, j), "port2", name(i, (j + 1) % y), "port3",
                  200 * kNanosecond);
    }
  }
  if (rebalance) ckpt::install_migrator(sim);
  return sim.run();
}

RunStats run_hotspot(unsigned ranks, bool rebalance, unsigned x, unsigned y,
                     SimTime end, unsigned repeat) {
  RunStats best = run_hotspot_once(ranks, rebalance, x, y, end);
  for (unsigned i = 1; i < repeat; ++i) {
    const RunStats s = run_hotspot_once(ranks, rebalance, x, y, end);
    if (s.wall_seconds < best.wall_seconds) best = s;
  }
  return best;
}

/// One measured configuration, kept for the optional JSON dump.
struct BenchRow {
  unsigned ranks;
  const char* partitioner;
  RunStats stats;
  const char* sync_mode = "conservative";
  const char* scenario = "phold";
  bool rebalance = false;
};

double cross_fraction(const RunStats& s) {
  return s.events_processed
             ? static_cast<double>(s.cross_rank_events) /
                   static_cast<double>(s.events_processed)
             : 0.0;
}

void write_json(const std::string& path, const std::vector<BenchRow>& rows,
                SimTime end) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_pdes_scaling: cannot write '%s'\n",
                 path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"phold_torus_16x16\",\n");
  std::fprintf(f, "  \"end_us\": %llu,\n",
               static_cast<unsigned long long>(end / kMicrosecond));
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    const RunStats& s = r.stats;
    std::fprintf(
        f,
        "    {\"ranks\": %u, \"partitioner\": \"%s\", \"sync_mode\": \"%s\", "
        "\"scenario\": \"%s\", \"rebalance\": %s, "
        "\"events\": %llu, "
        "\"sync_windows\": %llu, \"cross_rank_events\": %llu, "
        "\"cross_rank_fraction\": %.4f, \"cut_links\": %llu, "
        "\"rebalances\": %llu, \"components_moved\": %llu, "
        "\"wall_seconds\": %.4f, \"events_per_sec\": %.0f}%s\n",
        r.ranks, r.partitioner, r.sync_mode, r.scenario,
        r.rebalance ? "true" : "false",
        static_cast<unsigned long long>(s.events_processed),
        static_cast<unsigned long long>(s.sync_windows),
        static_cast<unsigned long long>(s.cross_rank_events),
        cross_fraction(s), static_cast<unsigned long long>(s.cut_links),
        static_cast<unsigned long long>(s.rebalances),
        static_cast<unsigned long long>(s.components_migrated),
        s.wall_seconds, s.events_per_second(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  sst::net::register_library();  // HotspotToken checkpoint/migration types
  SimTime end = 2 * kMillisecond;
  unsigned repeat = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--end-us" && i + 1 < argc) {
      end = static_cast<SimTime>(std::strtoull(argv[++i], nullptr, 10)) *
            kMicrosecond;
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      if (repeat == 0) repeat = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_pdes_scaling [--end-us N] [--repeat N] "
                   "[--json PATH]\n");
      return 1;
    }
  }
  std::vector<BenchRow> rows;

  std::printf("--------------------------------------------------------------------------\n");
  std::printf("E5 PDES engine scaling (PHOLD on a 16x16 torus, 1024 initial events)\n");
  std::printf("  reproduces: SC'06 poster scalability claim (threads stand in for MPI\n");
  std::printf("  ranks; single-core host => algorithmic metrics, see DESIGN.md)\n");
  std::printf("--------------------------------------------------------------------------\n\n");

  std::printf("%-6s %12s %10s %12s %12s %10s\n", "ranks", "events",
              "windows", "evts/window", "cross-rank", "Mevt/s");
  for (unsigned ranks : {1u, 2u, 4u, 8u}) {
    const RunStats s = run_phold(ranks, PartitionStrategy::kMinCut, 16, 16,
                                 end, repeat);
    rows.push_back({ranks, "mincut", s});
    const double per_window =
        s.sync_windows ? static_cast<double>(s.events_processed) /
                             static_cast<double>(s.sync_windows)
                       : static_cast<double>(s.events_processed);
    std::printf("%-6u %12llu %10llu %12.1f %11.1f%% %10.2f\n", ranks,
                static_cast<unsigned long long>(s.events_processed),
                static_cast<unsigned long long>(s.sync_windows), per_window,
                100.0 * cross_fraction(s), s.events_per_second() / 1e6);
  }

  std::printf("\nE9 partitioner quality (4 ranks, same torus)\n");
  std::printf("%-12s %10s %14s %12s %12s\n", "partitioner", "cut links",
              "cross-rank", "windows", "events");
  for (PartitionStrategy part :
       {PartitionStrategy::kLinear, PartitionStrategy::kRoundRobin}) {
    const RunStats s = run_phold(4, part, 16, 16, end, repeat);
    rows.push_back({4, part_name(part), s});
    std::printf("%-12s %10llu %13.1f%% %12llu %12llu\n", part_name(part),
                static_cast<unsigned long long>(s.cut_links),
                100.0 * cross_fraction(s),
                static_cast<unsigned long long>(s.sync_windows),
                static_cast<unsigned long long>(s.events_processed));
  }
  {
    // The min-cut row reuses the E5 4-rank measurement above.
    const BenchRow* mc = nullptr;
    for (const BenchRow& r : rows) {
      if (r.ranks == 4 && std::string(r.partitioner) == "mincut") mc = &r;
    }
    const RunStats& s = mc->stats;
    std::printf("%-12s %10llu %13.1f%% %12llu %12llu\n", "mincut",
                static_cast<unsigned long long>(s.cut_links),
                100.0 * cross_fraction(s),
                static_cast<unsigned long long>(s.sync_windows),
                static_cast<unsigned long long>(s.events_processed));
  }

  // E17 — synchronization-mode comparison (see DESIGN.md "Synchronization
  // modes").  Conservative rows above double as the baseline; adaptive
  // stays causally exact (identical event totals); lax buys throughput by
  // collapsing barrier windows, bounded by a 2us skew budget (10x the
  // conservative 200ns window on this torus).
  constexpr SimTime kLaxSkew = 2 * kMicrosecond;
  std::printf("\nE17 sync-mode comparison (same torus, mincut, lax skew %lluns)\n",
              static_cast<unsigned long long>(kLaxSkew / kNanosecond));
  std::printf("%-6s %-12s %12s %10s %12s %10s\n", "ranks", "mode", "events",
              "windows", "evts/window", "Mevt/s");
  for (unsigned ranks : {1u, 2u, 4u, 8u}) {
    for (SyncMode mode :
         {SyncMode::kAdaptive, SyncMode::kLax}) {
      const SimTime skew = mode == SyncMode::kLax ? kLaxSkew : 0;
      const RunStats s = run_phold(ranks, PartitionStrategy::kMinCut, 16, 16,
                                   end, repeat, mode, skew);
      rows.push_back({ranks, "mincut", s, sync_mode_name(mode)});
      const double per_window =
          s.sync_windows ? static_cast<double>(s.events_processed) /
                               static_cast<double>(s.sync_windows)
                         : static_cast<double>(s.events_processed);
      std::printf("%-6u %-12s %12llu %10llu %12.1f %10.2f\n", ranks,
                  sync_mode_name(mode),
                  static_cast<unsigned long long>(s.events_processed),
                  static_cast<unsigned long long>(s.sync_windows), per_window,
                  s.events_per_second() / 1e6);
    }
  }

  // E19 — online repartitioning on a moving hotspot (16x16 torus).  The
  // static rows keep the initial min-cut partition; the rebalanced rows
  // migrate components at sync barriers when the per-epoch event-rate
  // imbalance exceeds the threshold.  Event totals are identical (the
  // determinism contract); the win is wall time.
  std::printf("\nE19 online repartitioning (moving hotspot, 16x16 torus)\n");
  std::printf("%-6s %-10s %12s %10s %10s %10s %10s\n", "ranks", "mode",
              "events", "windows", "migrations", "moved", "Mevt/s");
  for (unsigned ranks : {1u, 4u, 8u}) {
    for (bool rebal : {false, true}) {
      if (ranks == 1 && rebal) continue;  // no ranks to balance across
      const RunStats s = run_hotspot(ranks, rebal, 16, 16, end, repeat);
      rows.push_back({ranks, "mincut", s, "conservative", "hotspot", rebal});
      std::printf("%-6u %-10s %12llu %10llu %10llu %10llu %10.2f\n", ranks,
                  rebal ? "rebalanced" : "static",
                  static_cast<unsigned long long>(s.events_processed),
                  static_cast<unsigned long long>(s.sync_windows),
                  static_cast<unsigned long long>(s.rebalances),
                  static_cast<unsigned long long>(s.components_migrated),
                  s.events_per_second() / 1e6);
    }
  }

  std::printf("\nLookahead sweep (2 ranks, mincut): larger link latency => "
              "fewer syncs\n");
  std::printf("%-12s %12s %12s\n", "latency", "windows", "evts/window");
  // Lookahead equals the cross-rank link latency; rebuild with scaled
  // latencies by reusing min_delay as proxy: rerun with different end
  // times is unnecessary — vary via the torus link latency directly.
  for (SimTime lat : {50 * kNanosecond, 200 * kNanosecond, kMicrosecond}) {
    Simulation sim(SimConfig{.num_ranks = 2,
                             .end_time = end,
                             .seed = 11,
                             .partition = PartitionStrategy::kMinCut});
    Params p;
    p.set("fanout", "2");
    p.set("initial_events", "4");
    p.set("min_delay", "20ns");
    for (unsigned i = 0; i < 64; ++i) {
      sim.add_component<sst::testing::PholdNode>("n" + std::to_string(i), p);
    }
    for (unsigned i = 0; i < 64; ++i) {
      sim.connect("n" + std::to_string(i), "port0",
                  "n" + std::to_string((i + 1) % 64), "port1", lat);
    }
    const RunStats s = sim.run();
    std::printf("%9lluns %12llu %12.1f\n",
                static_cast<unsigned long long>(lat / kNanosecond),
                static_cast<unsigned long long>(s.sync_windows),
                s.sync_windows ? static_cast<double>(s.events_processed) /
                                     static_cast<double>(s.sync_windows)
                               : 0.0);
  }

  if (!json_path.empty()) write_json(json_path, rows, end);
  return 0;
}
