// E5 + E9 — parallel discrete-event engine scaling and partitioner
// quality.
//
// Reproduces the SC'06 poster's headline claim: the framework itself is a
// scalable parallel simulator.  The cluster substitution (DESIGN.md) maps
// MPI ranks to in-process threads; on this single-core host the study
// reports the algorithmic scaling metrics — events per wall-clock second,
// synchronization rounds, events per sync window, and cross-partition
// traffic — rather than wall-clock speedup.
//
// Expected shape: event totals identical across rank counts (determinism);
// cross-rank event fraction grows with rank count but is far lower for
// the min-cut partitioner than round-robin; events-per-window (the
// available parallelism per sync) stays high for good partitions.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "../tests/test_components.h"

namespace {

using namespace sst;

RunStats run_phold(unsigned ranks, PartitionStrategy part, unsigned x,
                   unsigned y, SimTime end) {
  Simulation sim(SimConfig{
      .num_ranks = ranks, .end_time = end, .seed = 11, .partition = part});
  Params p;
  p.set("fanout", "4");
  p.set("initial_events", "4");
  p.set("min_delay", "20ns");
  auto name = [](unsigned i, unsigned j) {
    return "n" + std::to_string(i) + "_" + std::to_string(j);
  };
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      sim.add_component<sst::testing::PholdNode>(name(i, j), p);
    }
  }
  // 2-D torus of PHOLD nodes: port0/1 in x, port2/3 in y.
  for (unsigned j = 0; j < y; ++j) {
    for (unsigned i = 0; i < x; ++i) {
      sim.connect(name(i, j), "port0", name((i + 1) % x, j), "port1",
                  200 * kNanosecond);
      sim.connect(name(i, j), "port2", name(i, (j + 1) % y), "port3",
                  200 * kNanosecond);
    }
  }
  return sim.run();
}

const char* part_name(PartitionStrategy p) {
  switch (p) {
    case PartitionStrategy::kLinear: return "linear";
    case PartitionStrategy::kRoundRobin: return "roundrobin";
    case PartitionStrategy::kMinCut: return "mincut";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("E5 PDES engine scaling (PHOLD on a 16x16 torus, 1024 initial events)\n");
  std::printf("  reproduces: SC'06 poster scalability claim (threads stand in for MPI\n");
  std::printf("  ranks; single-core host => algorithmic metrics, see DESIGN.md)\n");
  std::printf("--------------------------------------------------------------------------\n\n");

  std::printf("%-6s %12s %10s %12s %12s %10s\n", "ranks", "events",
              "windows", "evts/window", "cross-rank", "Mevt/s");
  for (unsigned ranks : {1u, 2u, 4u, 8u}) {
    const RunStats s = run_phold(ranks, PartitionStrategy::kMinCut, 16, 16,
                                 2 * kMillisecond);
    const double per_window =
        s.sync_windows ? static_cast<double>(s.events_processed) /
                             static_cast<double>(s.sync_windows)
                       : static_cast<double>(s.events_processed);
    std::printf("%-6u %12llu %10llu %12.1f %11.1f%% %10.2f\n", ranks,
                static_cast<unsigned long long>(s.events_processed),
                static_cast<unsigned long long>(s.sync_windows), per_window,
                100.0 * static_cast<double>(s.cross_rank_events) /
                    static_cast<double>(s.events_processed),
                s.events_per_second() / 1e6);
  }

  std::printf("\nE9 partitioner quality (4 ranks, same torus)\n");
  std::printf("%-12s %10s %14s %12s %12s\n", "partitioner", "cut links",
              "cross-rank", "windows", "events");
  for (PartitionStrategy part :
       {PartitionStrategy::kLinear, PartitionStrategy::kRoundRobin,
        PartitionStrategy::kMinCut}) {
    const RunStats s =
        run_phold(4, part, 16, 16, 2 * kMillisecond);
    std::printf("%-12s %10llu %13.1f%% %12llu %12llu\n", part_name(part),
                static_cast<unsigned long long>(s.cut_links),
                100.0 * static_cast<double>(s.cross_rank_events) /
                    static_cast<double>(s.events_processed),
                static_cast<unsigned long long>(s.sync_windows),
                static_cast<unsigned long long>(s.events_processed));
  }

  std::printf("\nLookahead sweep (2 ranks, mincut): larger link latency => "
              "fewer syncs\n");
  std::printf("%-12s %12s %12s\n", "latency", "windows", "evts/window");
  // Lookahead equals the cross-rank link latency; rebuild with scaled
  // latencies by reusing min_delay as proxy: rerun with different end
  // times is unnecessary — vary via the torus link latency directly.
  for (SimTime lat : {50 * kNanosecond, 200 * kNanosecond, kMicrosecond}) {
    Simulation sim(SimConfig{.num_ranks = 2,
                             .end_time = 2 * kMillisecond,
                             .seed = 11,
                             .partition = PartitionStrategy::kMinCut});
    Params p;
    p.set("fanout", "2");
    p.set("initial_events", "4");
    p.set("min_delay", "20ns");
    for (unsigned i = 0; i < 64; ++i) {
      sim.add_component<sst::testing::PholdNode>("n" + std::to_string(i), p);
    }
    for (unsigned i = 0; i < 64; ++i) {
      sim.connect("n" + std::to_string(i), "port0",
                  "n" + std::to_string((i + 1) % 64), "port1", lat);
    }
    const RunStats s = sim.run();
    std::printf("%9lluns %12llu %12.1f\n",
                static_cast<unsigned long long>(lat / kNanosecond),
                static_cast<unsigned long long>(s.sync_windows),
                s.sync_windows ? static_cast<double>(s.events_processed) /
                                     static_cast<double>(s.sync_windows)
                               : 0.0);
  }
  return 0;
}
