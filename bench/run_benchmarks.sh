#!/bin/sh
# PDES performance trajectory runner.
#
#   bench/run_benchmarks.sh [build_dir]
#
# Configures and builds a Release build (reusing build_dir if given,
# default <repo>/build-bench), runs the PHOLD scaling benchmark, and
# (re)writes BENCH_pdes.json at the repo root:
#
#   {"baseline": {...},   # first recorded measurement, kept forever
#    "current":  {...},   # this run
#    "speedup":  {...}}   # current/baseline events/sec, serial and 4-rank
#
# The baseline section is preserved across reruns so every PR has a
# before/after record; delete BENCH_pdes.json to re-seed it.
#
# Environment:
#   SST_BENCH_END_US   simulated microseconds per configuration
#                      (default 2000; CI smoke uses 200)
#   SST_BENCH_REPEAT   repeats per configuration, fastest kept (default 3)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
END_US="${SST_BENCH_END_US:-2000}"
REPEAT="${SST_BENCH_REPEAT:-3}"
OUT="$ROOT/BENCH_pdes.json"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target bench_pdes_scaling -j"$(getconf _NPROCESSORS_ONLN)"

CURRENT="$BUILD/bench_pdes_current.json"
"$BUILD/bench/bench_pdes_scaling" --end-us "$END_US" --repeat "$REPEAT" \
    --json "$CURRENT"

python3 - "$OUT" "$CURRENT" <<'EOF'
import json, subprocess, sys

out_path, current_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)
try:
    rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except Exception:
    rev = "unknown"
current["git_rev"] = rev

try:
    with open(out_path) as f:
        doc = json.load(f)
    baseline = doc.get("baseline", current)
except (OSError, ValueError):
    baseline = current

def eps(doc, ranks, part="mincut"):
    for run in doc.get("runs", []):
        if run["ranks"] == ranks and run["partitioner"] == part:
            return run["events_per_sec"]
    return None

speedup = {}
for label, ranks in (("serial", 1), ("ranks4", 4)):
    base, cur = eps(baseline, ranks), eps(current, ranks)
    if base and cur:
        speedup[label] = round(cur / base, 3)

with open(out_path, "w") as f:
    json.dump({"baseline": baseline, "current": current,
               "speedup": speedup}, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(f"  baseline rev {baseline.get('git_rev', '?')}, "
      f"current rev {rev}, speedup {speedup}")
EOF
