#!/bin/sh
# PDES performance trajectory runner.
#
#   bench/run_benchmarks.sh [build_dir]
#
# Configures and builds a Release build (reusing build_dir if given,
# default <repo>/build-bench), runs the PHOLD scaling benchmark, and
# (re)writes BENCH_pdes.json at the repo root:
#
#   {"baseline": {...},   # first recorded measurement, kept forever
#    "current":  {...},   # this run
#    "speedup":  {...}}   # current/baseline events/sec, serial and 4-rank,
#                         # plus lax-vs-conservative at 8 ranks
#
# The baseline section is preserved across reruns so every PR has a
# before/after record; delete BENCH_pdes.json to re-seed it.
#
# Environment:
#   SST_BENCH_END_US   simulated microseconds per configuration
#                      (default 2000; CI smoke uses 200)
#   SST_BENCH_REPEAT   repeats per configuration, fastest kept (default 3)
#   SST_BENCH_MIN_LAX_SPEEDUP
#                      when set (e.g. "1.2"), fail unless lax events/sec at
#                      8 ranks is at least this multiple of conservative
#                      (the CI sync-modes job gate)
#   SST_BENCH_MIN_REBALANCE_SPEEDUP
#                      when set (e.g. "1.25"), fail unless rebalanced
#                      events/sec on the 8-rank moving-hotspot scenario is
#                      at least this multiple of the static min-cut run
#                      (the CI rebalance job gate)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-bench}"
END_US="${SST_BENCH_END_US:-2000}"
REPEAT="${SST_BENCH_REPEAT:-3}"
OUT="$ROOT/BENCH_pdes.json"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target bench_pdes_scaling -j"$(getconf _NPROCESSORS_ONLN)"

CURRENT="$BUILD/bench_pdes_current.json"
"$BUILD/bench/bench_pdes_scaling" --end-us "$END_US" --repeat "$REPEAT" \
    --json "$CURRENT"

python3 - "$OUT" "$CURRENT" "$ROOT" <<'EOF'
import json, subprocess, sys

out_path, current_path, root = sys.argv[1], sys.argv[2], sys.argv[3]
with open(current_path) as f:
    current = json.load(f)
try:
    # -C pins the lookup to the benchmarked checkout: the script may be
    # invoked from any working directory (build trees, CI runners), and a
    # bare rev-parse would stamp whatever repo that directory happens to
    # be in.
    rev = subprocess.run(["git", "-C", root, "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except Exception:
    rev = "unknown"
current["git_rev"] = rev

try:
    with open(out_path) as f:
        doc = json.load(f)
    baseline = doc.get("baseline", current)
except (OSError, ValueError):
    doc = {}
    baseline = current

def eps(doc, ranks, part="mincut", sync="conservative", scenario="phold",
        rebalance=False):
    for run in doc.get("runs", []):
        # Rows predating the sync-mode/scenario/rebalance columns are
        # conservative static-partition PHOLD runs.
        if (run["ranks"] == ranks and run["partitioner"] == part
                and run.get("sync_mode", "conservative") == sync
                and run.get("scenario", "phold") == scenario
                and run.get("rebalance", False) == rebalance):
            return run["events_per_sec"]
    return None

speedup = {}
for label, ranks in (("serial", 1), ("ranks4", 4)):
    base, cur = eps(baseline, ranks), eps(current, ranks)
    if base and cur:
        speedup[label] = round(cur / base, 3)

# Lax-vs-conservative at 8 ranks, within this run (the E17 headline).
cons8, lax8 = eps(current, 8), eps(current, 8, sync="lax")
if cons8 and lax8:
    speedup["lax8_vs_conservative8"] = round(lax8 / cons8, 3)

# Rebalanced-vs-static min-cut on the moving-hotspot scenario, within
# this run (the E19 headline).
for ranks in (4, 8):
    stat = eps(current, ranks, scenario="hotspot")
    rebal = eps(current, ranks, scenario="hotspot", rebalance=True)
    if stat and rebal:
        speedup[f"rebalance{ranks}_vs_static{ranks}"] = round(rebal / stat, 3)

# Update in place so sections owned by other benches (e.g. the
# daemon_dispatch record from bench_daemon_dispatch.sh) survive reruns.
doc.update({"baseline": baseline, "current": current, "speedup": speedup})
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
print(f"  baseline rev {baseline.get('git_rev', '?')}, "
      f"current rev {rev}, speedup {speedup}")

import os
gate = os.environ.get("SST_BENCH_MIN_LAX_SPEEDUP")
if gate:
    got = speedup.get("lax8_vs_conservative8")
    if got is None:
        sys.exit("lax gate: no 8-rank lax/conservative rows in this run")
    if got < float(gate):
        sys.exit(f"lax gate: 8-rank lax speedup {got} < required {gate}")
    print(f"  lax gate passed: {got} >= {gate}")

gate = os.environ.get("SST_BENCH_MIN_REBALANCE_SPEEDUP")
if gate:
    got = speedup.get("rebalance8_vs_static8")
    if got is None:
        sys.exit("rebalance gate: no 8-rank hotspot rows in this run")
    if got < float(gate):
        sys.exit(f"rebalance gate: 8-rank rebalance speedup {got} "
                 f"< required {gate}")
    print(f"  rebalance gate passed: {got} >= {gate}")
EOF
