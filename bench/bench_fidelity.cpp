// E6 — multi-fidelity trade-off study.
//
// Reproduces the poster's "mix of abstract and detailed models" claim
// quantitatively: the same node simulated with the detailed bank/row DRAM
// backend versus the abstract fixed-latency backend (tuned to the same
// average latency and peak bandwidth), reporting the accuracy delta and
// the simulator-speed difference.
//
// Expected shape: the abstract model runs the simulator faster (fewer
// state updates) but misdraws workloads that depend on row-buffer
// locality; streaming workloads agree more closely than random-access
// ones.
#include "bench_util.h"

namespace {

using namespace sst;
using namespace sst::bench;

struct FidelityResult {
  double runtime_ms;
  double wall_s;
  double mevents_per_s;
};

FidelityResult run_with_backend(const std::string& backend,
                                proc::WorkloadPtr w) {
  Simulation sim;
  Params cp{{"clock", "2GHz"}, {"issue_width", "4"}};
  auto* cpu = sim.add_component<proc::Core>("cpu", cp);
  cpu->set_workload(std::move(w));
  Params l2p{{"size", "256KiB"}, {"assoc", "8"}, {"hit_latency", "4ns"},
             {"mshrs", "16"}};
  sim.add_component<mem::Cache>("l2", l2p);
  Params mp;
  if (backend == "dram") {
    mp.set("backend", "dram");
    mp.set("preset", "DDR3");
  } else {
    // Abstract model calibrated to DDR3's average parameters.
    mp.set("backend", "simple");
    mp.set("latency", "40ns");
    mp.set("bandwidth_gbs", "10.667");
  }
  auto* mc = sim.add_component<mem::MemoryController>("mc", mp);
  (void)mc;
  sim.connect("cpu", "mem", "l2", "cpu", kNanosecond);
  sim.connect("l2", "mem", "mc", "cpu", 2 * kNanosecond);
  const RunStats stats = sim.run();
  return {static_cast<double>(cpu->completion_time()) / 1e9,
          stats.wall_seconds,
          stats.wall_seconds > 0
              ? static_cast<double>(stats.events_processed) /
                    stats.wall_seconds / 1e6
              : 0.0};
}

proc::WorkloadPtr fidelity_workload(const std::string& app) {
  if (app == "stream") return std::make_unique<proc::StreamTriad>(1 << 16, 1);
  if (app == "hpccg") return std::make_unique<proc::Hpccg>(12, 12, 12, 1);
  return std::make_unique<proc::Gups>(1 << 24, 40'000, 5);
}

}  // namespace

int main() {
  print_header("E6 multi-fidelity trade-off: detailed DRAM vs abstract "
               "fixed-latency backend",
               "SC'06 poster: 'a mix of abstract and detailed models'",
               "abstract model faster to simulate; accuracy gap largest "
               "for row-locality-sensitive workloads");

  std::printf("\n%-8s %12s %12s %10s %14s %14s\n", "app", "detailed(ms)",
              "abstract(ms)", "delta", "det Mevt/s", "abs Mevt/s");
  for (const char* app : {"stream", "hpccg", "gups"}) {
    const FidelityResult det = run_with_backend("dram",
                                                fidelity_workload(app));
    const FidelityResult abs = run_with_backend("simple",
                                                fidelity_workload(app));
    const double delta =
        (abs.runtime_ms / det.runtime_ms - 1.0) * 100.0;
    std::printf("%-8s %12.3f %12.3f %9.1f%% %14.2f %14.2f\n", app,
                det.runtime_ms, abs.runtime_ms, delta, det.mevents_per_s,
                abs.mevents_per_s);
  }
  std::printf("\n(delta = predicted-runtime error of the abstract model "
              "relative to the\n detailed bank/row model; negative = "
              "abstract model optimistic)\n");
  return 0;
}
