// E7 — topology exploration: load-latency curves.
//
// Reproduces the standard interconnect-evaluation methodology the SST
// network models exist for: offered-load sweeps of uniform-random traffic
// over mesh / torus / fat-tree / dragonfly, reporting mean message
// latency and the saturation knee.
//
// Expected shape: latency flat at low load, rising toward saturation;
// richer topologies (fat tree, dragonfly, torus) saturate at higher load
// than the mesh; mesh has the highest base latency of the 64-node
// configurations due to its diameter.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "net/net_lib.h"

namespace {

using namespace sst;

struct TopoCase {
  const char* name;
  net::TopologySpec spec;
};

std::vector<TopoCase> cases() {
  std::vector<TopoCase> out;
  {
    net::TopologySpec s;
    s.kind = net::TopologySpec::Kind::kMesh2D;
    s.x = 8;
    s.y = 8;
    out.push_back({"mesh8x8", s});
  }
  {
    net::TopologySpec s;
    s.kind = net::TopologySpec::Kind::kTorus2D;
    s.x = 8;
    s.y = 8;
    out.push_back({"torus8x8", s});
  }
  {
    net::TopologySpec s;
    s.kind = net::TopologySpec::Kind::kFatTree;
    s.leaves = 8;
    s.spines = 4;
    s.down = 8;
    out.push_back({"fattree8x8", s});
  }
  {
    net::TopologySpec s;
    s.kind = net::TopologySpec::Kind::kDragonfly;
    s.groups = 9;
    s.group_routers = 4;
    s.global_per_router = 2;
    s.group_conc = 2;  // 72 nodes (closest balanced config to 64)
    out.push_back({"dragonfly72", s});
  }
  return out;
}

struct Point {
  double latency_us;
  double delivered_gbs;
};

Point run_load(const net::TopologySpec& spec, double load) {
  Simulation sim(SimConfig{.end_time = 300 * kMicrosecond, .seed = 31});
  const std::uint32_t n = spec.expected_nodes();
  std::vector<net::NetEndpoint*> eps;
  std::vector<net::TrafficGenerator*> gens;
  for (std::uint32_t i = 0; i < n; ++i) {
    Params p;
    p.set("pattern", "uniform");
    p.set("msg_bytes", "512");
    p.set("load", std::to_string(load));
    p.set("injection_bw", "10GB/s");
    p.set("warmup", "50us");
    auto* g = sim.add_component<net::TrafficGenerator>(
        "gen" + std::to_string(i), p);
    gens.push_back(g);
    eps.push_back(g);
  }
  net::build_topology(sim, spec, eps);
  sim.run();
  double lat_sum = 0;
  std::uint64_t lat_n = 0;
  std::uint64_t bytes = 0;
  for (const auto* g : gens) {
    lat_sum += g->mean_latency_ps() *
               static_cast<double>(g->measured_messages());
    lat_n += g->measured_messages();
    bytes += g->delivered_bytes();
  }
  const double measured_window = 250e-6;  // 300us run - 50us warmup
  return {lat_n ? lat_sum / static_cast<double>(lat_n) / 1e6 : 0.0,
          static_cast<double>(bytes) / measured_window / 1e9};
}

}  // namespace

int main() {
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("E7 topology exploration: uniform-random load-latency curves (~64 nodes)\n");
  std::printf("  reproduces: standard NoC/system-interconnect evaluation the SST network\n");
  std::printf("  models target (SC'06 poster: routers + topologies as components)\n");
  std::printf("--------------------------------------------------------------------------\n\n");

  const double loads[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  std::printf("mean message latency (us) vs offered load (fraction of "
              "10GB/s injection)\n");
  std::printf("%-12s", "topology");
  for (double l : loads) std::printf(" %9.1f", l);
  std::printf("\n");
  for (const auto& c : cases()) {
    std::printf("%-12s", c.name);
    for (double l : loads) {
      const Point p = run_load(c.spec, l);
      std::printf(" %9.2f", p.latency_us);
    }
    std::printf("\n");
  }

  std::printf("\naggregate delivered bandwidth (GB/s) at the same loads\n");
  std::printf("%-12s", "topology");
  for (double l : loads) std::printf(" %9.1f", l);
  std::printf("\n");
  for (const auto& c : cases()) {
    std::printf("%-12s", c.name);
    for (double l : loads) {
      const Point p = run_load(c.spec, l);
      std::printf(" %9.1f", p.delivered_gbs);
    }
    std::printf("\n");
  }
  std::printf("\n(saturation shows as latency blowing up while delivered "
              "bandwidth flattens)\n");

  // Routing ablation: minimal vs Valiant under benign and adversarial
  // traffic.  Expected: Valiant pays ~2x latency on uniform traffic but
  // wins decisively on the tornado permutation, which concentrates every
  // minimal route onto a few ring links.
  std::printf("\nrouting ablation on a 16-node ring (torus 16x1), "
              "latency in us\n");
  std::printf("%-10s %12s %12s\n", "pattern", "minimal", "valiant");
  for (const char* pattern : {"uniform", "tornado"}) {
    std::printf("%-10s", pattern);
    for (auto routing : {net::TopologySpec::Routing::kMinimal,
                         net::TopologySpec::Routing::kValiant}) {
      Simulation sim(SimConfig{.end_time = 300 * kMicrosecond, .seed = 21});
      std::vector<net::NetEndpoint*> eps;
      std::vector<net::TrafficGenerator*> gens;
      for (int i = 0; i < 16; ++i) {
        Params p;
        p.set("pattern", pattern);
        p.set("tornado_stride", "7");
        p.set("msg_bytes", "512");
        p.set("load", "0.18");
        p.set("injection_bw", "10GB/s");
        p.set("warmup", "30us");
        auto* g = sim.add_component<net::TrafficGenerator>(
            "gen" + std::to_string(i), p);
        gens.push_back(g);
        eps.push_back(g);
      }
      net::TopologySpec s;
      s.kind = net::TopologySpec::Kind::kTorus2D;
      s.x = 16;
      s.y = 1;
      s.routing = routing;
      net::build_topology(sim, s, eps);
      sim.run();
      double sum = 0;
      std::uint64_t n = 0;
      for (const auto* g : gens) {
        sum += g->mean_latency_ps() *
               static_cast<double>(g->measured_messages());
        n += g->measured_messages();
      }
      std::printf(" %12.2f", n ? sum / static_cast<double>(n) / 1e6 : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
