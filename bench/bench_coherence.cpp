// E11 — shared-memory node study (MESI snooping substrate).
//
// The SC'06 poster positions SST for "novel architectures" including
// shared-memory multiprocessor nodes; this bench exercises the coherent
// memory substrate the same way the testbed studies exercised real SMPs:
//
//   [a] multicore scaling on disjoint data — the "cores per node" memory
//       wall: aggregate throughput saturates as the bus serializes misses
//       (the effect behind the companion text's Fig. 2 methodology);
//   [b] sharing-pattern microbenchmarks — read sharing is cheap, true/
//       false sharing ping-pongs the line on every write.
#include <cstdio>
#include <string>
#include <vector>

#include "core/sst.h"
#include "mem/mem_lib.h"
#include "proc/proc_lib.h"

namespace {

using namespace sst;

// -------- [a] multicore scaling --------------------------------------

double run_smp_stream(unsigned ncores) {
  Simulation sim;
  Params bp;
  bp.set("num_caches", std::to_string(ncores));
  bp.set("occupancy", "4ns");
  sim.add_component<mem::SnoopBus>("bus", bp);
  Params mp;
  mp.set("backend", "dram");
  mp.set("preset", "DDR3");
  sim.add_component<mem::MemoryController>("mc", mp);
  sim.connect("bus", "mem", "mc", "cpu", 2 * kNanosecond);

  std::vector<proc::Core*> cores;
  for (unsigned i = 0; i < ncores; ++i) {
    const std::string s = std::to_string(i);
    Params cp{{"clock", "2GHz"}, {"issue_width", "4"},
              {"max_loads", "32"}, {"max_stores", "32"}};
    auto* core = sim.add_component<proc::Core>("cpu" + s, cp);
    // Disjoint streams: different seeds shift each core's regions apart
    // is not needed — regions are shared, but stream elements overlap;
    // offset via per-core element count/region usage is good enough for
    // bandwidth purposes (lines are read-shared, writes hit own copies).
    core->set_workload(std::make_unique<proc::Gups>(
        16ULL << 20, 20'000, 100 + i));
    cores.push_back(core);
    Params l1p{{"size", "32KiB"}, {"assoc", "4"}, {"hit_latency", "1ns"},
               {"mshrs", "16"}};
    sim.add_component<mem::CoherentCache>("l1_" + s, l1p);
    sim.connect("cpu" + s, "mem", "l1_" + s, "cpu", 500);
    sim.connect("l1_" + s, "bus", "bus", "cache" + s, kNanosecond);
  }
  sim.run();
  SimTime t = 0;
  for (auto* c : cores) t = std::max(t, c->completion_time());
  return static_cast<double>(t);
}

// -------- [b] sharing microbenchmark ----------------------------------

/// Issues `count` writes to `addr`, one after each response; measures the
/// average write latency.
class PingWriter final : public Component {
 public:
  explicit PingWriter(Params& p) {
    addr_ = p.required<std::uint64_t>("addr");
    count_ = p.find<std::uint32_t>("count", 64);
    gap_ = p.find_time("gap", "200ns");
    mem_ = configure_link("mem",
                          [this](EventPtr ev) { on_resp(std::move(ev)); });
    timer_ = configure_self_link("timer", 1,
                                 [this](EventPtr) { issue(); });
    latency_ = stat_accumulator("write_latency_ps");
    register_as_primary();
  }

  void setup() override { timer_->send(std::make_unique<NullEvent>()); }

  [[nodiscard]] double mean_latency_ns() const {
    return latency_->mean() / 1e3;
  }

 private:
  void issue() {
    issued_at_ = now();
    mem_->send(std::make_unique<mem::MemEvent>(mem::MemCmd::kGetX, addr_, 8,
                                               done_));
  }
  void on_resp(EventPtr) {
    latency_->add(static_cast<double>(now() - issued_at_));
    if (++done_ >= count_) {
      primary_ok_to_end_sim();
      return;
    }
    timer_->send(std::make_unique<NullEvent>(), gap_);
  }

  Link* mem_;
  Link* timer_;
  std::uint64_t addr_;
  std::uint32_t count_;
  SimTime gap_;
  std::uint32_t done_ = 0;
  SimTime issued_at_ = 0;
  Accumulator* latency_;
};

double run_sharing(std::uint64_t addr0, std::uint64_t addr1) {
  Simulation sim;
  Params bp;
  bp.set("num_caches", "2");
  sim.add_component<mem::SnoopBus>("bus", bp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", "60ns");
  sim.add_component<mem::MemoryController>("mc", mp);
  sim.connect("bus", "mem", "mc", "cpu", 2 * kNanosecond);
  std::vector<PingWriter*> writers;
  for (int i = 0; i < 2; ++i) {
    const std::string s = std::to_string(i);
    Params wp;
    wp.set("addr", std::to_string(i == 0 ? addr0 : addr1));
    wp.set("count", "200");
    Params l1p{{"size", "32KiB"}, {"assoc", "4"}};
    writers.push_back(sim.add_component<PingWriter>("w" + s, wp));
    sim.add_component<mem::CoherentCache>("l1_" + s, l1p);
    sim.connect("w" + s, "mem", "l1_" + s, "cpu", 500);
    sim.connect("l1_" + s, "bus", "bus", "cache" + s, kNanosecond);
  }
  sim.run();
  return (writers[0]->mean_latency_ns() + writers[1]->mean_latency_ns()) /
         2.0;
}

}  // namespace

int main() {
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("E11 shared-memory node (MESI snooping caches on an atomic bus)\n");
  std::printf("  substrate study: multicore memory wall + sharing-pattern costs\n");
  std::printf("  expected shape: the atomic bus serializes misses, so aggregate miss\n");
  std::printf("  throughput is pinned from the first core (the classic motivation for\n");
  std::printf("  split-transaction buses); write latency: private << shared (ping-pong)\n");
  std::printf("--------------------------------------------------------------------------\n\n");

  std::printf("[a] cores sharing one DDR3 channel, GUPS per core "
              "(20k updates each)\n");
  std::printf("%-8s %12s %14s %16s\n", "cores", "time(ms)", "speedup",
              "updates/us");
  double t1 = 0;
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    const double t = run_smp_stream(n);
    if (n == 1) t1 = t;
    std::printf("%-8u %12.3f %13.2fx %16.1f\n", n, t / 1e9,
                t1 * n / t,
                n * 20'000.0 / (t / 1e6));
  }

  std::printf("\n[b] average write latency by sharing pattern (ns)\n");
  const double private_lines = run_sharing(0x1000, 0x8000);
  const double false_shared = run_sharing(0x1000, 0x1008);
  const double true_shared = run_sharing(0x1000, 0x1000);
  std::printf("%-22s %10.1f\n", "private lines", private_lines);
  std::printf("%-22s %10.1f\n", "false sharing", false_shared);
  std::printf("%-22s %10.1f\n", "true sharing", true_shared);
  std::printf("\n(private settles into silent M hits; either kind of "
              "sharing ping-pongs\n the line through the bus on every "
              "write)\n");
  return 0;
}
