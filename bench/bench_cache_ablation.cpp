// E8 — cache-hierarchy ablation.
//
// Design-choice ablation called out in DESIGN.md: how much of the memory
// system's contribution to the headline experiments comes from (a) L2
// capacity and (b) non-blocking-ness (MSHR count)?  Sweeps both knobs on
// the HPCCG proxy.
//
// Expected shape: runtime falls as L2 grows until the working set fits,
// then flattens; MSHR count matters most for wide cores (miss overlap) —
// a 1-MSHR (blocking) L2 erases most of the issue-width benefit.
#include "bench_util.h"

int main() {
  using namespace sst;
  using namespace sst::bench;

  print_header("E8 cache hierarchy ablation - hpccg proxy",
               "DESIGN.md ablation (supports E1-E3 interpretation)",
               "runtime falls with L2 size until fit, then flat; MSHRs "
               "recover miss overlap for wide cores");

  std::printf("\n[L2 capacity sweep] 4-wide core, DDR3, 16 MSHRs\n");
  std::printf("%-10s %12s %12s %12s\n", "L2 size", "time(ms)",
              "L2 miss%", "DRAM accesses");
  for (const char* size : {"64KiB", "256KiB", "1MiB", "4MiB"}) {
    NodeConfig cfg;
    cfg.issue_width = 4;
    cfg.l2_size = size;
    const NodeResult r =
        run_node(cfg, std::make_unique<proc::Hpccg>(12, 12, 12, 2));
    std::printf("%-10s %12.3f %11.1f%% %12llu\n", size, r.runtime_s * 1e3,
                r.l2_miss_rate * 100.0,
                static_cast<unsigned long long>(r.dram_accesses));
  }

  std::printf("\n[MSHR sweep] DDR3, 512KiB L2\n");
  std::printf("%-8s %14s %14s %14s\n", "MSHRs", "1-wide (ms)",
              "4-wide (ms)", "4-wide speedup");
  for (unsigned mshrs : {1u, 2u, 4u, 16u}) {
    NodeConfig narrow;
    narrow.issue_width = 1;
    narrow.l2_mshrs = mshrs;
    const NodeResult rn =
        run_node(narrow, std::make_unique<proc::Hpccg>(12, 12, 12, 1));
    NodeConfig wide = narrow;
    wide.issue_width = 4;
    const NodeResult rw =
        run_node(wide, std::make_unique<proc::Hpccg>(12, 12, 12, 1));
    std::printf("%-8u %14.3f %14.3f %13.2fx\n", mshrs, rn.runtime_s * 1e3,
                rw.runtime_s * 1e3, rn.runtime_s / rw.runtime_s);
  }

  std::printf("\n[MLP sweep] outstanding-load limit at the core, GUPS "
              "(latency-bound)\n");
  std::printf("%-10s %12s\n", "max_loads", "time(ms)");
  for (unsigned ml : {1u, 2u, 4u, 8u, 16u}) {
    NodeConfig cfg;
    cfg.issue_width = 4;
    cfg.max_loads = ml;
    const NodeResult r =
        run_node(cfg, std::make_unique<proc::Gups>(1 << 24, 50'000, 5));
    std::printf("%-10u %12.3f\n", ml, r.runtime_s * 1e3);
  }

  std::printf("\n[Prefetcher] next-line L2 prefetch, shallow core "
              "(8 loads), stream vs random\n");
  std::printf("%-8s %-10s %12s %14s %14s\n", "app", "prefetch", "time(ms)",
              "pf issued", "pf useful");
  for (const char* app : {"stream", "gups"}) {
    for (const char* pf : {"none", "nextline"}) {
      Simulation sim;
      Params cp{{"clock", "2GHz"}, {"issue_width", "4"},
                {"max_loads", "8"}, {"max_stores", "8"}};
      auto* cpu = sim.add_component<proc::Core>("cpu", cp);
      if (std::string(app) == "stream") {
        cpu->set_workload(std::make_unique<proc::StreamTriad>(1 << 15, 1));
      } else {
        cpu->set_workload(std::make_unique<proc::Gups>(1 << 24, 30'000, 5));
      }
      Params l2p{{"size", "512KiB"}, {"assoc", "8"}, {"hit_latency", "4ns"},
                 {"mshrs", "32"}, {"prefetch", pf},
                 {"prefetch_degree", "4"}};
      auto* l2 = sim.add_component<mem::Cache>("l2", l2p);
      Params mp{{"backend", "dram"}, {"preset", "DDR3"}};
      sim.add_component<mem::MemoryController>("mc", mp);
      sim.connect("cpu", "mem", "l2", "cpu", kNanosecond);
      sim.connect("l2", "mem", "mc", "cpu", 2 * kNanosecond);
      sim.run();
      std::printf("%-8s %-10s %12.3f %14llu %14llu\n", app, pf,
                  static_cast<double>(cpu->completion_time()) / 1e9,
                  static_cast<unsigned long long>(l2->prefetches_issued()),
                  static_cast<unsigned long long>(l2->prefetch_hits()));
    }
  }
  return 0;
}
