// E3 — processor issue-width study.
//
// Reproduces the SST case study (companion text Fig. 12): issue widths
// 1/2/4/8 on both mini-apps over DDR3, reporting speedup, power, energy,
// and the cost/power efficiency sweet spots.
//
// Published shape: 8-wide is ~78% faster than 1-wide on Lulesh but burns
// ~123% more power; 1-2-wide cores are the most power-efficient and
// 2-4-wide the most cost-efficient.
#include "bench_util.h"

int main() {
  using namespace sst;
  using namespace sst::bench;

  const unsigned widths[] = {1, 2, 4, 8};

  for (const char* app : {"lulesh", "hpccg"}) {
    print_header(
        ("E3 issue-width sweep - " + std::string(app)).c_str(),
        "FGCS co-design paper Fig. 12 (SST + McPAT + IC-Knowledge flow)",
        "speedup sub-linear (~1.8x at 8-wide on lulesh), power super-"
        "linear; perf/W peaks at 1-2 wide, perf/$ at 2-4 wide");

    struct Row {
      NodeResult r;
      TechRollup t;
      double chip_cost_usd;
    };
    Row rows[4];
    for (int w = 0; w < 4; ++w) {
      NodeConfig cfg;
      cfg.preset = "DDR3";
      cfg.issue_width = widths[w];
      rows[w].r = run_node(cfg, study_workload(app));
      rows[w].t = rollup(cfg, rows[w].r);
      // Fig. 12's cost axis is the *chip* manufacturing cost
      // (IC-Knowledge flow), not the whole node.
      power::CorePowerModel::Config cc;
      cc.issue_width = widths[w];
      const power::CorePowerModel core_model(cc);
      const power::SramPowerModel l2_model(
          UnitAlgebra(cfg.l2_size).to_bytes());
      rows[w].chip_cost_usd = power::CostModel().die_cost_usd(
          core_model.area_mm2() + l2_model.area_mm2());
    }

    std::printf("\n%-6s %10s %9s %9s %10s %10s %12s\n", "width",
                "time(ms)", "speedup", "power(W)", "power vs 1",
                "perf/W", "perf/$ x1e3");
    double best_ppw = 0, best_ppd = 0;
    unsigned best_ppw_w = 0, best_ppd_w = 0;
    for (int w = 0; w < 4; ++w) {
      const double speedup = rows[0].r.runtime_s / rows[w].r.runtime_s;
      const double power_ratio = rows[w].t.power_w / rows[0].t.power_w;
      const double ppw =
          1.0 / (rows[w].r.runtime_s * rows[w].t.power_w);
      const double ppd =
          1.0 / (rows[w].r.runtime_s * rows[w].chip_cost_usd);
      if (ppw > best_ppw) {
        best_ppw = ppw;
        best_ppw_w = widths[w];
      }
      if (ppd > best_ppd) {
        best_ppd = ppd;
        best_ppd_w = widths[w];
      }
      std::printf("%-6u %10.3f %8.2fx %9.2f %9.2fx %10.4f %12.4f\n",
                  widths[w], rows[w].r.runtime_s * 1e3, speedup,
                  rows[w].t.power_w, power_ratio, ppw, ppd * 1e3);
    }
    const double speedup8 = rows[0].r.runtime_s / rows[3].r.runtime_s;
    const double power8 =
        (rows[3].t.power_w / rows[0].t.power_w - 1.0) * 100.0;
    std::printf("\n8-wide vs 1-wide: %.0f%% faster, %.0f%% more power\n",
                (speedup8 - 1.0) * 100.0, power8);
    std::printf("most power-efficient width: %u; most cost-efficient "
                "width: %u\n\n",
                best_ppw_w, best_ppd_w);
  }
  return 0;
}
