// Integration: motifs over full topologies, including the parallel engine
// and partitioners — the network side of the toolkit end to end.
#include <gtest/gtest.h>

#include "net/net_lib.h"

namespace sst {
namespace {

using net::AppProfileMotif;
using net::HaloExchangeMotif;
using net::NetEndpoint;
using net::TopologySpec;

/// Halo exchange on a 4x4 torus; returns max rank completion time.
SimTime run_halo(unsigned num_ranks, PartitionStrategy part,
                 const char* msg_bytes = "64KiB") {
  Simulation sim(SimConfig{.num_ranks = num_ranks,
                           .seed = 3,
                           .partition = part});
  std::vector<NetEndpoint*> eps;
  std::vector<HaloExchangeMotif*> motifs;
  for (int i = 0; i < 16; ++i) {
    Params p;
    p.set("px", "4");
    p.set("py", "4");
    p.set("pz", "1");
    p.set("msg_bytes", msg_bytes);
    p.set("compute", "20us");
    p.set("iterations", "5");
    auto* m = sim.add_component<HaloExchangeMotif>(
        "rank" + std::to_string(i), p);
    motifs.push_back(m);
    eps.push_back(m);
  }
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 4;
  s.y = 4;
  net::build_topology(sim, s, eps);
  sim.run();
  SimTime t = 0;
  for (auto* m : motifs) {
    EXPECT_TRUE(m->motif_finished());
    t = std::max(t, m->completion_time());
  }
  return t;
}

TEST(NetworkSystemIntegration, HaloOnTorusCompletes) {
  const SimTime t = run_halo(1, PartitionStrategy::kLinear);
  EXPECT_GE(t, 5u * 20 * kMicrosecond);  // at least the compute time
}

TEST(NetworkSystemIntegration, ParallelEngineMatchesSerial) {
  const SimTime serial = run_halo(1, PartitionStrategy::kLinear);
  const SimTime par2 = run_halo(2, PartitionStrategy::kMinCut);
  const SimTime par4 = run_halo(4, PartitionStrategy::kRoundRobin);
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par4);
}

TEST(NetworkSystemIntegration, TopologyAffectsAllToAllNotHalo) {
  // Nearest-neighbour halo is insensitive to global diameter; all-to-all
  // is not.  Compare a 16-node torus against a 16-node fat tree.
  auto run_alltoall = [](TopologySpec::Kind kind) {
    Simulation sim(SimConfig{.seed = 4});
    std::vector<NetEndpoint*> eps;
    std::vector<net::AllToAllMotif*> motifs;
    for (int i = 0; i < 16; ++i) {
      Params p;
      p.set("msg_bytes", "32KiB");
      p.set("compute", "10us");
      p.set("iterations", "3");
      auto* m = sim.add_component<net::AllToAllMotif>(
          "rank" + std::to_string(i), p);
      motifs.push_back(m);
      eps.push_back(m);
    }
    TopologySpec s;
    s.kind = kind;
    s.x = 4;
    s.y = 4;
    s.leaves = 4;
    s.spines = 4;
    s.down = 4;
    net::build_topology(sim, s, eps);
    sim.run();
    SimTime t = 0;
    for (auto* m : motifs) t = std::max(t, m->completion_time());
    return t;
  };
  const SimTime torus = run_alltoall(TopologySpec::Kind::kTorus2D);
  const SimTime fattree = run_alltoall(TopologySpec::Kind::kFatTree);
  EXPECT_GT(torus, 0u);
  EXPECT_GT(fattree, 0u);
  // A full-bisection fat tree handles all-to-all at least as well as a
  // 2-D torus of the same size.
  EXPECT_LE(fattree, torus * 12 / 10);
}

TEST(NetworkSystemIntegration, InjectionBandwidthShapesByProfile) {
  // The Fig.9 shape in miniature: a large-message profile degrades with
  // injection bandwidth; a small-message profile does not.
  auto run_profile = [](const char* halo_bytes, const char* coll_bytes,
                        const char* coll_count, const char* inj) {
    Simulation sim(SimConfig{.seed = 5});
    std::vector<NetEndpoint*> eps;
    std::vector<AppProfileMotif*> motifs;
    for (int i = 0; i < 8; ++i) {
      Params p;
      p.set("px", "4");
      p.set("py", "2");
      p.set("pz", "1");
      p.set("compute", "50us");
      p.set("halo_bytes", halo_bytes);
      p.set("collective_bytes", coll_bytes);
      p.set("collective_count", coll_count);
      p.set("iterations", "4");
      p.set("injection_bw", inj);
      auto* m = sim.add_component<AppProfileMotif>(
          "rank" + std::to_string(i), p);
      motifs.push_back(m);
      eps.push_back(m);
    }
    TopologySpec s;
    s.kind = TopologySpec::Kind::kTorus2D;
    s.x = 4;
    s.y = 2;
    s.link_bandwidth = "25GB/s";
    net::build_topology(sim, s, eps);
    sim.run();
    SimTime t = 0;
    for (auto* m : motifs) t = std::max(t, m->completion_time());
    return t;
  };
  // CTH-like: big halo messages.
  const SimTime cth_full = run_profile("512KiB", "0", "0", "3.2GB/s");
  const SimTime cth_eighth = run_profile("512KiB", "0", "0", "0.4GB/s");
  const double cth_slowdown =
      static_cast<double>(cth_eighth) / static_cast<double>(cth_full);
  EXPECT_GT(cth_slowdown, 1.5);
  // Charon-like: many small collectives (tens of bytes — the injection
  // time is negligible against switch/link latency even at 1/8 rate).
  const SimTime charon_full = run_profile("0", "64", "8", "3.2GB/s");
  const SimTime charon_eighth = run_profile("0", "64", "8", "0.4GB/s");
  const double charon_slowdown = static_cast<double>(charon_eighth) /
                                 static_cast<double>(charon_full);
  EXPECT_LT(charon_slowdown, 1.1);
}

TEST(NetworkSystemIntegration, MinCutPartitioningQuality) {
  // Torus + halo: graph-aware partitioning should cut fewer links.
  auto run_stats = [](PartitionStrategy part) {
    Simulation sim(SimConfig{.num_ranks = 4, .seed = 3, .partition = part});
    std::vector<NetEndpoint*> eps;
    for (int i = 0; i < 16; ++i) {
      Params p;
      p.set("px", "4");
      p.set("py", "4");
      p.set("pz", "1");
      p.set("msg_bytes", "4KiB");
      p.set("compute", "10us");
      p.set("iterations", "3");
      eps.push_back(sim.add_component<HaloExchangeMotif>(
          "rank" + std::to_string(i), p));
    }
    TopologySpec s;
    s.kind = TopologySpec::Kind::kTorus2D;
    s.x = 4;
    s.y = 4;
    net::build_topology(sim, s, eps);
    return sim.run();
  };
  const RunStats mc = run_stats(PartitionStrategy::kMinCut);
  const RunStats rr = run_stats(PartitionStrategy::kRoundRobin);
  const RunStats lin = run_stats(PartitionStrategy::kLinear);
  // On this graph round-robin happens to align endpoints with their
  // routers (16 % 4 == 0), achieving the structural optimum of 32 cut
  // endpoints — min-cut must reach the same neighbourhood and clearly
  // beat the oblivious linear split, and results must be identical.
  EXPECT_LE(mc.cut_links, rr.cut_links + 4);
  EXPECT_LT(mc.cut_links, lin.cut_links);
  EXPECT_EQ(mc.events_processed, rr.events_processed);
  EXPECT_EQ(mc.events_processed, lin.events_processed);
}

}  // namespace
}  // namespace sst
