// Integration: full node — core + L1 + L2 + bus + DRAM controller —
// exercising the complete MemEvent protocol stack and the behaviours the
// design-space experiments rely on.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "proc/proc_lib.h"

namespace sst {
namespace {

struct Node {
  proc::Core* core;
  mem::Cache* l1;
  mem::Cache* l2;
  mem::MemoryController* mc;
};

/// One core with a two-level hierarchy over a DRAM preset.
Node build_node(Simulation& sim, const std::string& suffix,
                const std::string& preset, unsigned width,
                proc::WorkloadPtr w, const std::string& l2_size = "256KiB",
                const std::string& bus_name = "") {
  Node n;
  Params cp;
  cp.set("clock", "2GHz");
  cp.set("issue_width", std::to_string(width));
  cp.set("max_loads", "64");
  cp.set("max_stores", "64");
  n.core = sim.add_component<proc::Core>("cpu" + suffix, cp);
  n.core->set_workload(std::move(w));

  Params l1p;
  l1p.set("size", "32KiB");
  l1p.set("assoc", "4");
  l1p.set("hit_latency", "1ns");
  l1p.set("mshrs", "16");
  n.l1 = sim.add_component<mem::Cache>("l1" + suffix, l1p);

  Params l2p;
  l2p.set("size", l2_size);
  l2p.set("assoc", "8");
  l2p.set("hit_latency", "4ns");
  l2p.set("mshrs", "32");
  n.l2 = sim.add_component<mem::Cache>("l2" + suffix, l2p);

  sim.connect("cpu" + suffix, "mem", "l1" + suffix, "cpu", 500);
  sim.connect("l1" + suffix, "mem", "l2" + suffix, "cpu", kNanosecond);

  if (bus_name.empty()) {
    Params mp;
    mp.set("backend", "dram");
    mp.set("preset", preset);
    n.mc = sim.add_component<mem::MemoryController>("mc" + suffix, mp);
    sim.connect("l2" + suffix, "mem", "mc" + suffix, "cpu",
                2 * kNanosecond);
  } else {
    n.mc = nullptr;
  }
  return n;
}

SimTime run_node(const std::string& preset, unsigned width,
                 proc::WorkloadPtr w) {
  Simulation sim;
  Node n = build_node(sim, "", preset, width, std::move(w));
  sim.run();
  EXPECT_TRUE(n.core->done());
  return n.core->completion_time();
}

TEST(MemorySystemIntegration, HierarchyFiltersTraffic) {
  Simulation sim;
  // Working set ~64KiB: fits L2 (256KiB) but not L1 (32KiB).
  Node n = build_node(sim, "", "DDR3", 2,
                      std::make_unique<proc::StreamTriad>(2730, 4));
  sim.run();
  EXPECT_GT(n.l1->misses(), 0u);
  // Iterations 2..4 hit in L2, so L2 misses (DRAM fetches) are bounded by
  // roughly one compulsory pass over the working set.
  EXPECT_LT(n.l2->misses(), n.l1->misses());
  EXPECT_LT(n.mc->reads() + n.mc->writes(),
            n.l1->hits() + n.l1->misses());
}

TEST(MemorySystemIntegration, CacheFitVsCacheBustRuntime) {
  // Same op count; small working set reuses cache, big one streams DRAM.
  const SimTime fits =
      run_node("DDR3", 2, std::make_unique<proc::StreamTriad>(1024, 16));
  const SimTime busts =
      run_node("DDR3", 2, std::make_unique<proc::StreamTriad>(16384, 1));
  EXPECT_LT(fits, busts);
}

TEST(MemorySystemIntegration, MemoryTechnologyOrderingOnStream) {
  // Streaming working set far beyond cache: DRAM bandwidth dominates.
  auto wl = [] { return std::make_unique<proc::StreamTriad>(1 << 15, 1); };
  const SimTime ddr2 = run_node("DDR2", 4, wl());
  const SimTime ddr3 = run_node("DDR3", 4, wl());
  const SimTime gddr = run_node("GDDR5", 4, wl());
  EXPECT_LT(gddr, ddr3);
  EXPECT_LT(ddr3, ddr2);
}

TEST(MemorySystemIntegration, IssueWidthHelpsLulesh) {
  auto wl = [] { return std::make_unique<proc::Lulesh>(10, 1); };
  const SimTime w1 = run_node("DDR3", 1, wl());
  const SimTime w8 = run_node("DDR3", 8, wl());
  const double speedup = static_cast<double>(w1) / static_cast<double>(w8);
  EXPECT_GT(speedup, 1.4);
}

TEST(MemorySystemIntegration, SharedBusContention) {
  // Two cores sharing one memory controller through a bus run slower per
  // core than a single core alone — the "cores per node" effect.
  auto build_shared = [](Simulation& sim, unsigned ncores) {
    Params bp;
    bp.set("num_ports", "4");
    bp.set("bandwidth", "12.8GB/s");
    sim.add_component<mem::Bus>("bus", bp);
    Params mp;
    mp.set("backend", "dram");
    mp.set("preset", "DDR3");
    sim.add_component<mem::MemoryController>("mc", mp);
    sim.connect("bus", "down", "mc", "cpu", 2 * kNanosecond);
    std::vector<proc::Core*> cores;
    for (unsigned c = 0; c < ncores; ++c) {
      const std::string s = std::to_string(c);
      Node n = build_node(sim, s, "DDR3", 2,
                          std::make_unique<proc::StreamTriad>(1 << 14, 1),
                          "256KiB", "bus");
      sim.connect("l2" + s, "mem", "bus", "up" + s, 2 * kNanosecond);
      cores.push_back(n.core);
    }
    return cores;
  };
  Simulation solo;
  auto solo_cores = build_shared(solo, 1);
  solo.run();
  const SimTime t_solo = solo_cores[0]->completion_time();

  Simulation duo;
  auto duo_cores = build_shared(duo, 3);
  duo.run();
  SimTime t_duo = 0;
  for (auto* c : duo_cores) {
    EXPECT_TRUE(c->done());
    t_duo = std::max(t_duo, c->completion_time());
  }
  EXPECT_GT(t_duo, t_solo);
}

TEST(MemorySystemIntegration, DeterministicAcrossRepeats) {
  auto once = [] {
    return run_node("DDR3", 4, std::make_unique<proc::Hpccg>(8, 8, 8, 1));
  };
  EXPECT_EQ(once(), once());
}

TEST(MemorySystemIntegration, ParallelEngineMatchesSerial) {
  // Two independent nodes, one per rank: identical results either way.
  auto run_with_ranks = [](unsigned ranks) {
    Simulation sim(SimConfig{.num_ranks = ranks});
    Node a = build_node(sim, "_a", "DDR3", 2,
                        std::make_unique<proc::StreamTriad>(4096, 2));
    Node b = build_node(sim, "_b", "GDDR5", 4,
                        std::make_unique<proc::Hpccg>(6, 6, 6, 1));
    if (ranks > 1) {
      for (const char* c : {"cpu_a", "l1_a", "l2_a", "mc_a"}) {
        sim.set_component_rank(c, 0);
      }
      for (const char* c : {"cpu_b", "l1_b", "l2_b", "mc_b"}) {
        sim.set_component_rank(c, 1);
      }
    }
    sim.run();
    return std::make_pair(a.core->completion_time(),
                          b.core->completion_time());
  };
  EXPECT_EQ(run_with_ranks(1), run_with_ranks(2));
}

TEST(MemorySystemIntegration, HpccgIsMemoryBoundNotWidthBound) {
  auto wl = [] { return std::make_unique<proc::Hpccg>(12, 12, 12, 1); };
  const SimTime w2 = run_node("DDR3", 2, wl());
  const SimTime w8 = run_node("DDR3", 8, wl());
  const double speedup = static_cast<double>(w2) / static_cast<double>(w8);
  // Wider helps a bit but nothing close to 4x.
  EXPECT_LT(speedup, 2.5);
}

}  // namespace
}  // namespace sst
