// Integration: complete systems described in JSON, instantiated through
// the Factory, run to completion — the toolkit's configuration-driven
// front door.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"

namespace sst {
namespace {

void register_all() {
  mem::register_library();
  proc::register_library();
  net::register_library();
}

TEST(SdlSystemIntegration, FullNodeFromJson) {
  register_all();
  const char* doc = R"({
    "config": {"seed": 9},
    "components": [
      {"name": "cpu", "type": "proc.Core",
       "params": {"clock": "2GHz", "issue_width": 4,
                  "workload": "hpccg", "nx": 8, "ny": 8, "nz": 8,
                  "iterations": 1}},
      {"name": "l1", "type": "mem.Cache",
       "params": {"size": "32KiB", "assoc": 4, "hit_latency": "1ns"}},
      {"name": "l2", "type": "mem.Cache",
       "params": {"size": "256KiB", "assoc": 8, "hit_latency": "4ns",
                  "mshrs": 16}},
      {"name": "mc", "type": "mem.MemoryController",
       "params": {"backend": "dram", "preset": "DDR3"}}
    ],
    "links": [
      {"from": "cpu", "from_port": "mem", "to": "l1", "to_port": "cpu",
       "latency": "500ps"},
      {"from": "l1", "from_port": "mem", "to": "l2", "to_port": "cpu",
       "latency": "1ns"},
      {"from": "l2", "from_port": "mem", "to": "mc", "to_port": "cpu",
       "latency": "2ns"}
    ]
  })";
  auto sim = sdl::ConfigGraph::from_json_text(doc).build();
  const RunStats stats = sim->run();
  auto* core = dynamic_cast<proc::Core*>(sim->find_component("cpu"));
  ASSERT_NE(core, nullptr);
  EXPECT_TRUE(core->done());
  EXPECT_GT(stats.events_processed, 1000u);
  // The whole stack produced statistics.
  EXPECT_NE(sim->stats().find("l1", "hits"), nullptr);
  EXPECT_NE(sim->stats().find("mc", "reads"), nullptr);
}

TEST(SdlSystemIntegration, SameJsonSameResult) {
  register_all();
  const char* doc = R"({
    "components": [
      {"name": "cpu", "type": "proc.Core",
       "params": {"workload": "gups", "table": "1MiB", "updates": 3000,
                  "clock": "1GHz"}},
      {"name": "mc", "type": "mem.MemoryController",
       "params": {"backend": "dram", "preset": "GDDR5"}}
    ],
    "links": [
      {"from": "cpu", "from_port": "mem", "to": "mc", "to_port": "cpu",
       "latency": "5ns"}
    ]
  })";
  auto run_once = [doc] {
    auto sim = sdl::ConfigGraph::from_json_text(doc).build();
    sim->run();
    return dynamic_cast<proc::Core*>(sim->find_component("cpu"))
        ->completion_time();
  };
  const SimTime a = run_once();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, run_once());
}

TEST(SdlSystemIntegration, ProgrammaticGraphEquivalentToJson) {
  register_all();
  // Build the same system both ways; completion times must agree.
  sdl::ConfigGraph g;
  g.add_component("cpu", "proc.Core",
                  Params{{"workload", "stream"},
                         {"elements", "4096"},
                         {"iterations", "2"},
                         {"clock", "1GHz"},
                         {"issue_width", "2"}});
  g.add_component("mc", "mem.MemoryController",
                  Params{{"backend", "dram"}, {"preset", "DDR2"}});
  g.add_link("cpu", "mem", "mc", "cpu", "3ns");

  auto sim1 = g.build();
  sim1->run();
  const SimTime t1 =
      dynamic_cast<proc::Core*>(sim1->find_component("cpu"))
          ->completion_time();

  auto sim2 = sdl::ConfigGraph::from_json(g.to_json()).build();
  sim2->run();
  const SimTime t2 =
      dynamic_cast<proc::Core*>(sim2->find_component("cpu"))
          ->completion_time();
  EXPECT_EQ(t1, t2);
}

TEST(SdlSystemIntegration, NetworkMotifSystemFromFactory) {
  register_all();
  // Routers need tables from the TopologyBuilder, so network systems are
  // built programmatically on top of factory-created motif endpoints.
  Simulation sim;
  Factory& f = Factory::instance();
  std::vector<net::NetEndpoint*> eps;
  for (int i = 0; i < 4; ++i) {
    Params p;
    p.set("iterations", "20");
    p.set("msg_bytes", "64");
    Component* c =
        f.create(sim, "net.Allreduce", "rank" + std::to_string(i), p);
    eps.push_back(dynamic_cast<net::NetEndpoint*>(c));
    ASSERT_NE(eps.back(), nullptr);
  }
  net::TopologySpec s;
  s.kind = net::TopologySpec::Kind::kTorus2D;
  s.x = 2;
  s.y = 2;
  net::build_topology(sim, s, eps);
  sim.run();
  for (auto* e : eps) {
    EXPECT_TRUE(dynamic_cast<net::AllreduceMotif*>(e)->motif_finished());
  }
}

TEST(SdlSystemIntegration, ValidateCatchesCrossComponentMistakes) {
  register_all();
  sdl::ConfigGraph g;
  g.add_component("cpu", "proc.Core", Params{{"workload", "stream"}});
  g.add_component("mc", "mem.MemoryController", Params{});
  g.add_link("cpu", "mem", "mc", "cpu", "1ns");
  g.add_link("cpu", "mem", "mc", "cpu", "1ns");  // same ports again
  const auto problems = g.validate(Factory::instance());
  EXPECT_FALSE(problems.empty());
}

}  // namespace
}  // namespace sst
