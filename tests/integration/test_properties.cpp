// Property sweeps (parameterized): invariants that must hold across the
// whole configuration space, not just hand-picked examples.
#include <gtest/gtest.h>

#include <tuple>

#include "core/sst.h"
#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "../test_components.h"

namespace sst {
namespace {

// ---------------------------------------------------------------------
// P1: serial == parallel, for every (seed, ranks, partitioner) combo.
// ---------------------------------------------------------------------

using EngineCase = std::tuple<std::uint64_t, unsigned, PartitionStrategy>;

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

std::vector<std::uint64_t> run_phold_grid(std::uint64_t seed, unsigned ranks,
                                          PartitionStrategy part) {
  Simulation sim(SimConfig{.num_ranks = ranks,
                           .end_time = 5 * kMicrosecond,
                           .seed = seed,
                           .partition = part});
  Params p;
  p.set("fanout", "4");
  p.set("initial_events", "2");
  p.set("min_delay", "5ns");
  constexpr unsigned kX = 4, kY = 3;
  auto name = [](unsigned i, unsigned j) {
    return "n" + std::to_string(i) + "_" + std::to_string(j);
  };
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      sim.add_component<testing::PholdNode>(name(i, j), p);
    }
  }
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      sim.connect(name(i, j), "port0", name((i + 1) % kX, j), "port1",
                  50 * kNanosecond);
      sim.connect(name(i, j), "port2", name(i, (j + 1) % kY), "port3",
                  80 * kNanosecond);
    }
  }
  sim.run();
  std::vector<std::uint64_t> received;
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      received.push_back(
          dynamic_cast<testing::PholdNode*>(sim.find_component(name(i, j)))
              ->received);
    }
  }
  return received;
}

TEST_P(EngineEquivalence, ParallelMatchesSerial) {
  const auto [seed, ranks, part] = GetParam();
  const auto serial =
      run_phold_grid(seed, 1, PartitionStrategy::kLinear);
  const auto parallel = run_phold_grid(seed, ranks, part);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(
        ::testing::Values(1ULL, 42ULL, 1234567ULL),
        ::testing::Values(2u, 3u, 5u),
        ::testing::Values(PartitionStrategy::kLinear,
                          PartitionStrategy::kRoundRobin,
                          PartitionStrategy::kMinCut)),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      const auto seed = std::get<0>(info.param);
      const auto ranks = std::get<1>(info.param);
      const auto part = std::get<2>(info.param);
      const char* pname =
          part == PartitionStrategy::kLinear
              ? "linear"
              : part == PartitionStrategy::kRoundRobin ? "rr" : "mincut";
      return "seed" + std::to_string(seed) + "_ranks" +
             std::to_string(ranks) + "_" + pname;
    });

// ---------------------------------------------------------------------
// P2: cache conservation — hits + misses == requests, responses == loads,
// for every cache geometry.
// ---------------------------------------------------------------------

using CacheGeom = std::tuple<const char*, unsigned, unsigned>;  // size,
                                                                // assoc,
                                                                // mshrs

class CacheConservation : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheConservation, EveryRequestAnsweredOnce) {
  const auto [size, assoc, mshrs] = GetParam();
  Simulation sim;
  Params cp{{"clock", "1GHz"}, {"issue_width", "2"}};
  auto* cpu = sim.add_component<proc::Core>("cpu", cp);
  cpu->set_workload(std::make_unique<proc::Gups>(1 << 18, 2'000, 7));
  Params l1p;
  l1p.set("size", size);
  l1p.set("assoc", std::to_string(assoc));
  l1p.set("mshrs", std::to_string(mshrs));
  auto* l1 = sim.add_component<mem::Cache>("l1", l1p);
  Params mp{{"backend", "dram"}, {"preset", "DDR3"}};
  auto* mc = sim.add_component<mem::MemoryController>("mc", mp);
  sim.connect("cpu", "mem", "l1", "cpu", 500);
  sim.connect("l1", "mem", "mc", "cpu", kNanosecond);
  sim.run();

  ASSERT_TRUE(cpu->done());  // every load/store answered exactly once
  // Count-once accounting: 2000 loads + 2000 stores, each a hit or miss.
  EXPECT_EQ(l1->hits() + l1->misses(), 4'000u);
  // Line fetches never exceed demand misses, and every fetch was a miss
  // that neither merged nor turned into a replay-hit.
  const auto* merges = dynamic_cast<const Counter*>(
      sim.stats().find("l1", "mshr_merges"));
  EXPECT_GT(mc->reads(), 0u);
  EXPECT_LE(mc->reads() + merges->count(), l1->misses());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheConservation,
    ::testing::Values(CacheGeom{"1KiB", 1, 1}, CacheGeom{"4KiB", 2, 2},
                      CacheGeom{"16KiB", 4, 8}, CacheGeom{"64KiB", 16, 16},
                      CacheGeom{"8KiB", 8, 4}),
    [](const ::testing::TestParamInfo<CacheGeom>& info) {
      return "g" + std::to_string(info.index);
    });

// ---------------------------------------------------------------------
// P3: motif conservation — on every topology, messages sent == messages
// received globally, and all ranks finish.
// ---------------------------------------------------------------------

class MotifOnTopology
    : public ::testing::TestWithParam<net::TopologySpec::Kind> {};

TEST_P(MotifOnTopology, AllreduceConservation) {
  Simulation sim(SimConfig{.seed = 13});
  net::TopologySpec s;
  s.kind = GetParam();
  s.x = 4;
  s.y = 4;
  s.leaves = 4;
  s.spines = 2;
  s.down = 4;
  s.groups = 5;
  s.group_routers = 4;
  s.global_per_router = 1;
  s.group_conc = 1;
  // Use a 16-node config for grid/tree kinds; dragonfly gives 20 (not a
  // power of two), so pingpong there instead.
  const bool dragonfly = s.kind == net::TopologySpec::Kind::kDragonfly;
  const std::uint32_t n = s.expected_nodes();
  std::vector<net::NetEndpoint*> eps;
  std::vector<net::MotifEndpoint*> motifs;
  for (std::uint32_t i = 0; i < n; ++i) {
    Params p;
    p.set("iterations", "5");
    p.set("msg_bytes", "256");
    net::MotifEndpoint* m;
    if (dragonfly) {
      m = sim.add_component<net::PingPongMotif>("rank" + std::to_string(i),
                                                p);
    } else {
      m = sim.add_component<net::AllreduceMotif>("rank" + std::to_string(i),
                                                 p);
    }
    motifs.push_back(m);
    eps.push_back(m);
  }
  net::build_topology(sim, s, eps);
  sim.run();
  std::uint64_t sent = 0, received = 0;
  for (const auto* m : motifs) {
    EXPECT_TRUE(m->motif_finished());
    sent += m->messages_sent();
    received += m->messages_received();
  }
  EXPECT_EQ(sent, received);
  EXPECT_GT(sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MotifOnTopology,
    ::testing::Values(net::TopologySpec::Kind::kMesh2D,
                      net::TopologySpec::Kind::kTorus2D,
                      net::TopologySpec::Kind::kFatTree,
                      net::TopologySpec::Kind::kDragonfly),
    [](const ::testing::TestParamInfo<net::TopologySpec::Kind>& info) {
      switch (info.param) {
        case net::TopologySpec::Kind::kMesh2D: return std::string("mesh");
        case net::TopologySpec::Kind::kTorus2D: return std::string("torus");
        case net::TopologySpec::Kind::kFatTree:
          return std::string("fattree");
        case net::TopologySpec::Kind::kDragonfly:
          return std::string("dragonfly");
        default: return std::string("other");
      }
    });

// ---------------------------------------------------------------------
// P4: DRAM presets — monotone latency/bandwidth sanity for every preset.
// ---------------------------------------------------------------------

class DramPresetProperties
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DramPresetProperties, StreamBeatsRandomAndRespectsPeak) {
  const auto params = mem::DramTimingParams::preset(GetParam());
  mem::DramBackend seq(params);
  mem::DramBackend rnd(params);
  rng::XorShift128Plus rng(3);
  constexpr int kLines = 2048;
  for (int i = 0; i < kLines; ++i) {
    seq.push(static_cast<std::uint64_t>(i), static_cast<mem::Addr>(i) * 64,
             false, 64, 0);
    rnd.push(static_cast<std::uint64_t>(i),
             rng.next_bounded(1ULL << 30) & ~63ULL, false, 64, 0);
  }
  auto drain = [](mem::DramBackend& d) {
    SimTime t = 0, last = 0;
    std::size_t n = 0;
    while (n < kLines) {
      for (const auto& c : d.advance(t)) {
        last = std::max(last, c.time);
        ++n;
      }
      if (n >= kLines) break;
      t = d.next_action();
      if (t == kTimeNever) break;
    }
    return last;
  };
  const SimTime t_seq = drain(seq);
  const SimTime t_rnd = drain(rnd);
  EXPECT_LT(t_seq, t_rnd);
  // Sequential throughput never exceeds the advertised peak.
  const double gbs = kLines * 64.0 /
                     (static_cast<double>(t_seq) * 1e-12) / 1e9;
  EXPECT_LE(gbs, params.peak_bandwidth_gbs * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Presets, DramPresetProperties,
                         ::testing::Values("DDR2", "DDR3", "GDDR5"));

}  // namespace
}  // namespace sst
