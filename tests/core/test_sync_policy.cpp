// AdaptiveWindowController properties: the window reacts monotonically to
// barrier pressure, never leaves its [min, max] bounds, and converges in a
// bounded number of epochs under constant load.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sync_policy.h"

namespace sst {
namespace {

SyncEpochStats epoch(double fraction, std::uint64_t events = 1000,
                     std::uint64_t depth = 64) {
  SyncEpochStats es;
  es.barrier_wait_fraction = fraction;
  es.events_processed = events;
  es.vortex_depth = depth;
  return es;
}

TEST(AdaptiveWindow, StartsAtMinWindow) {
  AdaptiveWindowController c(100, 10000);
  EXPECT_EQ(c.window(), 100u);
  EXPECT_EQ(c.min_window(), 100u);
  EXPECT_EQ(c.max_window(), 10000u);
}

TEST(AdaptiveWindow, ConstructorValidatesBounds) {
  EXPECT_THROW(AdaptiveWindowController(0, 100), ConfigError);
  EXPECT_THROW(AdaptiveWindowController(200, 100), ConfigError);
  EXPECT_NO_THROW(AdaptiveWindowController(100, 100));
}

TEST(AdaptiveWindow, GrowsUnderBarrierPressure) {
  AdaptiveWindowController c(100, 10000);
  EXPECT_EQ(c.update(epoch(0.5)), 200u);
  EXPECT_EQ(c.update(epoch(0.5)), 400u);
}

TEST(AdaptiveWindow, EmptyEpochCountsAsPureOverhead) {
  // An epoch that retired no events grows the window even when the
  // measured barrier fraction is (meaninglessly) low.
  AdaptiveWindowController c(100, 10000);
  EXPECT_EQ(c.update(epoch(0.0, /*events=*/0)), 200u);
}

TEST(AdaptiveWindow, ShrinksWhenBarriersAreCheap) {
  AdaptiveWindowController c(100, 10000);
  c.update(epoch(0.5));
  c.update(epoch(0.5));
  ASSERT_EQ(c.window(), 400u);
  EXPECT_EQ(c.update(epoch(0.0)), 200u);
  EXPECT_EQ(c.update(epoch(0.01)), 100u);
}

TEST(AdaptiveWindow, DeadBandHoldsTheWindow) {
  AdaptiveWindowController c(100, 10000);
  c.update(epoch(0.5));
  ASSERT_EQ(c.window(), 200u);
  // Between the shrink and grow thresholds nothing moves.
  for (double f : {0.03, 0.10, 0.19}) {
    EXPECT_EQ(c.update(epoch(f)), 200u) << "fraction " << f;
  }
}

// Monotonicity: from any common starting state, a higher barrier-wait
// fraction never produces a smaller next window.
TEST(AdaptiveWindow, UpdateIsMonotoneInBarrierFraction) {
  const std::vector<double> fractions = {0.0,  0.01, 0.02, 0.05, 0.1,
                                         0.19, 0.2,  0.3,  0.5,  1.0};
  // Try several starting windows, reached by replaying a warm-up.
  for (int warmup = 0; warmup < 5; ++warmup) {
    SimTime prev_result = 0;
    for (double f : fractions) {
      AdaptiveWindowController c(100, 100000);
      for (int i = 0; i < warmup; ++i) c.update(epoch(0.5));
      const SimTime w = c.update(epoch(f));
      EXPECT_GE(w, prev_result)
          << "fraction " << f << " after warmup " << warmup;
      prev_result = w;
    }
  }
}

// Clamping: no adversarial epoch sequence can push the window outside
// [min_window, max_window].
TEST(AdaptiveWindow, WindowAlwaysWithinBounds) {
  AdaptiveWindowController c(250, 4000);
  // Deterministic pseudo-random walk over extreme inputs.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double f = static_cast<double>(x % 101) / 100.0;
    const std::uint64_t events = (x >> 32) % 3 == 0 ? 0 : x % 100000;
    const SimTime w = c.update(epoch(f, events, x % 1024));
    EXPECT_GE(w, c.min_window());
    EXPECT_LE(w, c.max_window());
  }
}

// Convergence: under constant saturating load the window reaches the
// relevant bound within log2(max/min) + 1 epochs and then stays there.
TEST(AdaptiveWindow, ConvergesUnderConstantLoad) {
  const SimTime min_w = 100, max_w = 102400;  // ratio 1024 = 2^10
  const int budget =
      static_cast<int>(std::log2(static_cast<double>(max_w) /
                                 static_cast<double>(min_w))) +
      1;

  AdaptiveWindowController up(min_w, max_w);
  for (int i = 0; i < budget; ++i) up.update(epoch(1.0));
  EXPECT_EQ(up.window(), max_w);
  up.update(epoch(1.0));
  EXPECT_EQ(up.window(), max_w) << "must hold at the bound";

  AdaptiveWindowController down(min_w, max_w);
  for (int i = 0; i < budget; ++i) down.update(epoch(1.0));
  ASSERT_EQ(down.window(), max_w);
  for (int i = 0; i < budget; ++i) down.update(epoch(0.0));
  EXPECT_EQ(down.window(), min_w);
  down.update(epoch(0.0));
  EXPECT_EQ(down.window(), min_w) << "must hold at the bound";
}

TEST(AdaptiveWindow, MaxWindowOverflowSafe) {
  // Growing from a window already past max/2 must clamp, not overflow.
  const SimTime huge = kTimeNever / 2 + 1;
  AdaptiveWindowController c(huge, kTimeNever - 1);
  c.update(epoch(1.0));
  EXPECT_EQ(c.window(), kTimeNever - 1);
  c.update(epoch(1.0));
  EXPECT_EQ(c.window(), kTimeNever - 1);
}

TEST(AdaptiveWindow, SyncModeNames) {
  EXPECT_STREQ(sync_mode_name(SyncMode::kConservative), "conservative");
  EXPECT_STREQ(sync_mode_name(SyncMode::kAdaptive), "adaptive");
  EXPECT_STREQ(sync_mode_name(SyncMode::kLax), "lax");
}

}  // namespace
}  // namespace sst
