// Factory registration and string-typed construction.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

TEST(Factory, RegisterAndCreate) {
  Factory f;
  f.register_component(
      "test.Echo",
      [](Simulation& sim, const std::string& name, Params& p) -> Component* {
        return sim.add_component<testing::Echo>(name, p);
      });
  EXPECT_TRUE(f.known("test.Echo"));
  EXPECT_FALSE(f.known("test.Nope"));

  Simulation sim;
  Params p;
  Component* c = f.create(sim, "test.Echo", "e0", p);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "e0");
  EXPECT_EQ(sim.find_component("e0"), c);
}

TEST(Factory, UnknownTypeThrowsWithKnownList) {
  Factory f;
  f.register_component(
      "lib.A", [](Simulation& sim, const std::string& name,
                  Params& p) -> Component* {
        return sim.add_component<testing::Echo>(name, p);
      });
  Simulation sim;
  Params p;
  try {
    f.create(sim, "lib.B", "x", p);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("lib.A"), std::string::npos);
  }
}

TEST(Factory, DuplicateRegistrationThrows) {
  Factory f;
  auto builder = [](Simulation& sim, const std::string& name,
                    Params& p) -> Component* {
    return sim.add_component<testing::Echo>(name, p);
  };
  f.register_component("dup.X", builder);
  EXPECT_THROW(f.register_component("dup.X", builder), ConfigError);
}

TEST(Factory, RegisteredTypesSorted) {
  Factory f;
  auto builder = [](Simulation& sim, const std::string& name,
                    Params& p) -> Component* {
    return sim.add_component<testing::Echo>(name, p);
  };
  f.register_component("b.Y", builder);
  f.register_component("a.X", builder);
  const auto types = f.registered_types();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "a.X");
  EXPECT_EQ(types[1], "b.Y");
}

TEST(Factory, GlobalInstanceIsSingleton) {
  EXPECT_EQ(&Factory::instance(), &Factory::instance());
}

}  // namespace
}  // namespace sst
