// Link edge cases and misuse diagnostics.
#include <gtest/gtest.h>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using testing::Echo;
using testing::IntEvent;

TEST(LinkEdges, PollOnHandlerModeThrows) {
  class HandlerOwner final : public Component {
   public:
    explicit HandlerOwner(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  auto* c = sim.add_component<HandlerOwner>("c", p);
  sim.add_component<Echo>("e", p);
  sim.connect("c", "port", "e", "port", kNanosecond);
  sim.initialize();
  EXPECT_THROW((void)c->link_->poll(), SimulationError);
}

TEST(LinkEdges, RecvInitOutsideInitReturnsNull) {
  class Plain final : public Component {
   public:
    explicit Plain(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  auto* a = sim.add_component<Plain>("a", p);
  sim.add_component<Plain>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.initialize();
  EXPECT_EQ(a->link_->recv_init(), nullptr);
}

TEST(LinkEdges, SendInitOutsideInitThrows) {
  class LateIniter final : public Component {
   public:
    explicit LateIniter(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    void setup() override {
      EXPECT_THROW(link_->send_init(make_event<IntEvent>(1)),
                   SimulationError);
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  sim.add_component<LateIniter>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.initialize();
}

TEST(LinkEdges, NullEventSendThrows) {
  class NullSender final : public Component {
   public:
    explicit NullSender(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    void setup() override {
      EXPECT_THROW(link_->send(nullptr), SimulationError);
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  sim.add_component<NullSender>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.initialize();
}

TEST(LinkEdges, OptionalPortStaysUnconnected) {
  class Optional final : public Component {
   public:
    explicit Optional(Params&) {
      link_ = configure_link("maybe", [](EventPtr) {}, /*optional=*/true);
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  auto* c = sim.add_component<Optional>("c", p);
  sim.initialize();
  EXPECT_FALSE(c->link_->connected());
  EXPECT_EQ(c->link_->latency(), 0u);
}

TEST(LinkEdges, SelfLinkZeroLatencyDeliversSameTimeInOrder) {
  class ZeroSelf final : public Component {
   public:
    explicit ZeroSelf(Params&) {
      self_ = configure_self_link("loop", 0, [this](EventPtr ev) {
        auto msg = event_cast<IntEvent>(std::move(ev));
        order.push_back(msg->value);
        if (msg->value == 0) {
          // Same-timestamp follow-ups deliver after, in send order.
          self_->send(make_event<IntEvent>(1));
          self_->send(make_event<IntEvent>(2));
        }
        if (order.size() == 3) primary_ok_to_end_sim();
      });
      register_as_primary();
    }
    void setup() override { self_->send(make_event<IntEvent>(0)); }
    std::vector<std::int64_t> order;
    Link* self_;
  };
  Simulation sim;
  Params p;
  auto* c = sim.add_component<ZeroSelf>("c", p);
  const RunStats stats = sim.run();
  ASSERT_EQ(c->order.size(), 3u);
  EXPECT_EQ(c->order[0], 0);
  EXPECT_EQ(c->order[1], 1);
  EXPECT_EQ(c->order[2], 2);
  EXPECT_EQ(stats.final_time, 0u);
}

TEST(LinkEdges, SendOnUnconnectedPortNamesComponentAndPort) {
  class Optional final : public Component {
   public:
    explicit Optional(Params&) {
      link_ = configure_link("maybe", [](EventPtr) {}, /*optional=*/true);
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  auto* c = sim.add_component<Optional>("widget", p);
  sim.initialize();
  try {
    c->link_->send(make_event<IntEvent>(1));
    FAIL() << "send on unconnected port should throw";
  } catch (const SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("widget.maybe"), std::string::npos) << msg;
  }
}

TEST(LinkEdges, DuplicatePortNameThrows) {
  class DoublePort final : public Component {
   public:
    explicit DoublePort(Params&) {
      configure_link("port", [](EventPtr) {});
      configure_link("port", [](EventPtr) {});
    }
  };
  Simulation sim;
  Params p;
  EXPECT_THROW(sim.add_component<DoublePort>("d", p), ConfigError);
}

TEST(LinkEdges, EventCastRejectsWrongType) {
  EventPtr ev = make_event<NullEvent>();
  EXPECT_THROW((void)event_cast<IntEvent>(std::move(ev)), SimulationError);
}

TEST(LinkEdges, ExtraDelayAddsToLatency) {
  class DelaySender final : public Component {
   public:
    explicit DelaySender(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    void setup() override {
      link_->send(make_event<IntEvent>(1), 7 * kNanosecond);
    }
    Link* link_;
  };
  class Stamp final : public Component {
   public:
    explicit Stamp(Params&) {
      configure_link("port", [this](EventPtr) { at = now(); });
    }
    SimTime at = 0;
  };
  Simulation sim;
  Params p;
  sim.add_component<DelaySender>("s", p);
  auto* r = sim.add_component<Stamp>("r", p);
  sim.connect("s", "port", "r", "port", 3 * kNanosecond);
  sim.run();
  EXPECT_EQ(r->at, 10 * kNanosecond);
}

}  // namespace
}  // namespace sst
