// TimeVortex ordering and bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.h"
#include "core/time_vortex.h"

namespace sst {
namespace {

class StampedEvent final : public Event {
 public:
  explicit StampedEvent(int id) : id_(id) {}
  int id() const { return id_; }

 private:
  int id_;
};

}  // namespace

// Engine-level stamping rights for direct heap tests (friend of Event).
class TimeVortexTestPeer {
 public:
  static EventPtr stamped(SimTime t, std::uint32_t prio, int id) {
    auto ev = std::make_unique<StampedEvent>(id);
    ev->delivery_time_ = t;
    ev->priority_ = prio;
    ev->link_id_ = 0;  // single synthetic source
    ev->order_ = static_cast<std::uint64_t>(id);
    return ev;
  }
};

namespace {

TEST(TimeVortex, PopsInTimeOrder) {
  TimeVortex tv;
  rng::XorShift128Plus rng(42);
  std::vector<SimTime> times;
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = rng.next_bounded(100000);
    times.push_back(t);
    tv.insert(TimeVortexTestPeer::stamped(t, Event::kPriorityDefault, i));
  }
  std::sort(times.begin(), times.end());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tv.next_time(), times[static_cast<size_t>(i)]);
    auto ev = tv.pop();
    EXPECT_EQ(ev->delivery_time(), times[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(tv.empty());
  EXPECT_EQ(tv.next_time(), kTimeNever);
}

TEST(TimeVortex, FifoForEqualTimes) {
  TimeVortex tv;
  for (int i = 0; i < 100; ++i) {
    tv.insert(TimeVortexTestPeer::stamped(50, Event::kPriorityDefault, i));
  }
  for (int i = 0; i < 100; ++i) {
    auto ev = tv.pop();
    EXPECT_EQ(static_cast<StampedEvent&>(*ev).id(), i);
  }
}

TEST(TimeVortex, PriorityBreaksTimeTies) {
  TimeVortex tv;
  tv.insert(TimeVortexTestPeer::stamped(10, Event::kPriorityDefault, 1));
  tv.insert(TimeVortexTestPeer::stamped(10, Event::kPriorityClock, 2));
  tv.insert(TimeVortexTestPeer::stamped(10, Event::kPriorityLow, 3));
  EXPECT_EQ(static_cast<StampedEvent&>(*tv.pop()).id(), 2);  // clock first
  EXPECT_EQ(static_cast<StampedEvent&>(*tv.pop()).id(), 1);
  EXPECT_EQ(static_cast<StampedEvent&>(*tv.pop()).id(), 3);
}

TEST(TimeVortex, InterleavedInsertPop) {
  TimeVortex tv;
  tv.insert(TimeVortexTestPeer::stamped(5, 100, 0));
  tv.insert(TimeVortexTestPeer::stamped(3, 100, 1));
  EXPECT_EQ(tv.pop()->delivery_time(), 3u);
  tv.insert(TimeVortexTestPeer::stamped(1, 100, 2));
  EXPECT_EQ(tv.pop()->delivery_time(), 1u);
  EXPECT_EQ(tv.pop()->delivery_time(), 5u);
}

TEST(TimeVortex, Bookkeeping) {
  TimeVortex tv;
  for (int i = 0; i < 10; ++i) {
    tv.insert(TimeVortexTestPeer::stamped(static_cast<SimTime>(i), 100, i));
  }
  EXPECT_EQ(tv.size(), 10u);
  EXPECT_EQ(tv.total_inserted(), 10u);
  EXPECT_EQ(tv.max_depth(), 10u);
  for (int i = 0; i < 10; ++i) (void)tv.pop();
  EXPECT_EQ(tv.max_depth(), 10u);
  EXPECT_EQ(tv.size(), 0u);
}

TEST(TimeVortex, PopEmptyThrows) {
  TimeVortex tv;
  EXPECT_THROW((void)tv.pop(), SimulationError);
}

TEST(TimeVortex, NullInsertThrows) {
  TimeVortex tv;
  EXPECT_THROW(tv.insert(nullptr), SimulationError);
}

}  // namespace
}  // namespace sst
