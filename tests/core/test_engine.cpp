// Engine behaviour: links, latency, self-links, termination protocol,
// init phases, polling links, end-time, error paths.
#include <gtest/gtest.h>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using testing::Echo;
using testing::IntEvent;
using testing::Pinger;

TEST(Engine, PingPongRoundTripLatency) {
  Simulation sim;
  Params pp;
  pp.set("count", "5");
  auto* pinger = sim.add_component<Pinger>("ping", pp);
  Params ep;
  auto* echo = sim.add_component<Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", 10 * kNanosecond);

  const RunStats stats = sim.run();

  ASSERT_EQ(pinger->round_trips.size(), 5u);
  for (SimTime rt : pinger->round_trips) {
    EXPECT_EQ(rt, 20 * kNanosecond);  // 10ns each way
  }
  EXPECT_EQ(echo->echoed, 5u);
  // Replies are odd: send 0 -> recv 1, send 2 -> recv 3, ... send 8 -> 9.
  EXPECT_EQ(pinger->values.back(), 9);
  EXPECT_EQ(stats.final_time, 5 * 20 * kNanosecond);
  EXPECT_GT(stats.events_processed, 0u);
}

TEST(Engine, AsymmetricLatencies) {
  Simulation sim;
  Params pp;
  pp.set("count", "1");
  auto* pinger = sim.add_component<Pinger>("ping", pp);
  Params ep;
  sim.add_component<Echo>("echo", ep);
  // ping->echo takes 3ns, echo->ping takes 7ns.
  sim.connect("ping", "port", "echo", "port", 3 * kNanosecond,
              7 * kNanosecond);
  sim.run();
  ASSERT_EQ(pinger->round_trips.size(), 1u);
  EXPECT_EQ(pinger->round_trips[0], 10 * kNanosecond);
}

class SelfLooper final : public Component {
 public:
  explicit SelfLooper(Params&) {
    self_ = configure_self_link("loop", 5 * kNanosecond, [this](EventPtr ev) {
      auto msg = event_cast<IntEvent>(std::move(ev));
      times.push_back(now());
      if (msg->value < 3) {
        self_->send(make_event<IntEvent>(msg->value + 1));
      } else {
        primary_ok_to_end_sim();
      }
    });
    register_as_primary();
  }

  void setup() override { self_->send(make_event<IntEvent>(0)); }

  std::vector<SimTime> times;

 private:
  Link* self_;
};

TEST(Engine, SelfLinkDelays) {
  Simulation sim;
  Params p;
  sim.add_component<SelfLooper>("loop", p);
  sim.run();
  auto* c = dynamic_cast<SelfLooper*>(sim.find_component("loop"));
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->times.size(), 4u);
  for (size_t i = 0; i < c->times.size(); ++i) {
    EXPECT_EQ(c->times[i], (i + 1) * 5 * kNanosecond);
  }
}

TEST(Engine, EndTimeStopsRun) {
  Simulation sim(SimConfig{.end_time = 42 * kNanosecond});
  Params pp;
  pp.set("count", "1000000");
  sim.add_component<Pinger>("ping", pp);
  Params ep;
  sim.add_component<Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", kNanosecond);
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.final_time, 42 * kNanosecond);
}

TEST(Engine, RunsToEmptyWithoutPrimaries) {
  // An Echo pair with nothing injected: zero events, terminates cleanly.
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.events_processed, 0u);
}

TEST(Engine, UnconnectedRequiredPortThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(Engine, ZeroLatencyConnectThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  EXPECT_THROW(sim.connect("a", "port", "b", "port", 0), ConfigError);
}

TEST(Engine, DuplicateComponentNameThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  EXPECT_THROW(sim.add_component<Echo>("a", p), ConfigError);
}

TEST(Engine, UnknownPortInConnectThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "bogus", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(Engine, PortConnectedTwiceThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.add_component<Echo>("c", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.connect("a", "port", "c", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(Engine, ComponentOutsideSimulationThrows) {
  Params p;
  EXPECT_THROW(Echo junk(p), ConfigError);
}

TEST(Engine, SendBeforeWiringThrows) {
  class EagerSender final : public Component {
   public:
    explicit EagerSender(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
      link_->send(make_event<IntEvent>(1));  // not wired yet
    }
    Link* link_;
  };
  Simulation sim;
  Params p;
  EXPECT_THROW(sim.add_component<EagerSender>("eager", p), SimulationError);
}

TEST(Engine, FindComponent) {
  Simulation sim;
  Params p;
  auto* a = sim.add_component<Echo>("a", p);
  EXPECT_EQ(sim.find_component("a"), a);
  EXPECT_EQ(sim.find_component("nope"), nullptr);
  EXPECT_EQ(sim.component_count(), 1u);
}

// ---- init phases -----------------------------------------------------

class InitTalker final : public Component {
 public:
  explicit InitTalker(Params& params) {
    rounds_ = params.find<std::uint32_t>("rounds", 3);
    link_ = configure_link("port", [](EventPtr) {});
  }

  void init(unsigned phase) override {
    // Receive everything sent in the previous phase.
    while (EventPtr ev = link_->recv_init()) {
      auto msg = event_cast<IntEvent>(std::move(ev));
      received.push_back({phase, msg->value});
    }
    if (phase < rounds_) {
      link_->send_init(make_event<IntEvent>(static_cast<std::int64_t>(phase)));
    }
  }

  std::vector<std::pair<unsigned, std::int64_t>> received;

 private:
  Link* link_;
  std::uint32_t rounds_;
};

TEST(Engine, InitPhasesExchangeUntimedData) {
  Simulation sim;
  Params p;
  p.set("rounds", "3");
  auto* a = sim.add_component<InitTalker>("a", p);
  auto* b = sim.add_component<InitTalker>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.initialize();

  // Each sends in phases 0,1,2; data sent in phase k arrives in phase k+1.
  ASSERT_EQ(a->received.size(), 3u);
  ASSERT_EQ(b->received.size(), 3u);
  for (unsigned k = 0; k < 3; ++k) {
    EXPECT_EQ(a->received[k].first, k + 1);
    EXPECT_EQ(a->received[k].second, k);
  }
}

TEST(Engine, TimedSendDuringInitThrows) {
  class BadInit final : public Component {
   public:
    explicit BadInit(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    void init(unsigned) override { link_->send(make_event<IntEvent>(0)); }
    Link* link_;
  };
  Simulation sim;
  Params p;
  sim.add_component<BadInit>("bad", p);
  sim.add_component<Echo>("echo", p);
  sim.connect("bad", "port", "echo", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), SimulationError);
}

// ---- polling links ----------------------------------------------------

class Poller final : public Component {
 public:
  explicit Poller(Params&) {
    in_ = configure_polling_link("in");
    register_clock(kNanosecond, [this](Cycle) {
      while (EventPtr ev = in_->poll()) {
        auto msg = event_cast<IntEvent>(std::move(ev));
        polled.push_back({now(), msg->value});
      }
      if (polled.size() >= 3) {
        primary_ok_to_end_sim();
        return true;
      }
      return false;
    });
    register_as_primary();
  }

  std::vector<std::pair<SimTime, std::int64_t>> polled;

 private:
  Link* in_;
};

class Burster final : public Component {
 public:
  explicit Burster(Params&) {
    out_ = configure_link("out", [](EventPtr) {});
  }
  void setup() override {
    for (int i = 0; i < 3; ++i) {
      out_->send(make_event<IntEvent>(i), i * 2 * kNanosecond);
    }
  }
  Link* out_;
};

TEST(Engine, PollingLinkDeliversInOrder) {
  Simulation sim;
  Params p;
  auto* poller = sim.add_component<Poller>("poller", p);
  sim.add_component<Burster>("burster", p);
  sim.connect("burster", "out", "poller", "in", kNanosecond);
  sim.run();
  ASSERT_EQ(poller->polled.size(), 3u);
  EXPECT_EQ(poller->polled[0].second, 0);
  EXPECT_EQ(poller->polled[1].second, 1);
  EXPECT_EQ(poller->polled[2].second, 2);
  // Arrivals at 1,3,5 ns; polled at the next 1ns clock edge.
  EXPECT_EQ(poller->polled[0].first, 2 * kNanosecond);
}

TEST(Engine, PollOnHandlerLinkThrows) {
  Simulation sim;
  Params p;
  auto* a = sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.initialize();
  (void)a;
  // Echo's link is handler-mode; poll must be rejected.
  // (Accessing via a test subclass isn't possible; emulate by checking a
  // polling link's poll works and a handler link's does not is covered in
  // the Link unit path below.)
  SUCCEED();
}

// ---- determinism ------------------------------------------------------

TEST(Engine, SerialRunsAreBitIdentical) {
  auto run_once = [] {
    Simulation sim(SimConfig{.end_time = 10 * kMicrosecond, .seed = 99});
    Params p;
    p.set("fanout", "2");
    p.set("initial_events", "4");
    for (int i = 0; i < 4; ++i) {
      sim.add_component<testing::PholdNode>("n" + std::to_string(i), p);
    }
    sim.connect("n0", "port0", "n1", "port1", kNanosecond);
    sim.connect("n1", "port0", "n2", "port1", kNanosecond);
    sim.connect("n2", "port0", "n3", "port1", kNanosecond);
    sim.connect("n3", "port0", "n0", "port1", kNanosecond);
    const RunStats stats = sim.run();
    std::vector<std::uint64_t> received;
    for (int i = 0; i < 4; ++i) {
      received.push_back(dynamic_cast<testing::PholdNode*>(
                             sim.find_component("n" + std::to_string(i)))
                             ->received);
    }
    return std::make_pair(stats.events_processed, received);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 100u);
}

TEST(Engine, RunTwiceThrows) {
  Simulation sim;
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.run();
  EXPECT_THROW(sim.run(), SimulationError);
}

}  // namespace
}  // namespace sst
