// Conservative parallel engine: determinism vs. the serial engine,
// partitioners, lookahead computation, cross-rank statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using testing::Echo;
using testing::PholdNode;
using testing::Pinger;

struct RingResult {
  std::uint64_t events;
  std::vector<std::uint64_t> received;
  RunStats stats;
};

RingResult run_ring(unsigned ranks, PartitionStrategy part,
                    unsigned nodes = 8, SimTime end = 20 * kMicrosecond,
                    SyncMode mode = SyncMode::kConservative,
                    SimTime lax_skew = 0) {
  Simulation sim(SimConfig{.num_ranks = ranks,
                           .end_time = end,
                           .seed = 7,
                           .partition = part,
                           .sync_mode = mode,
                           .lax_skew = lax_skew});
  Params p;
  p.set("fanout", "2");
  p.set("initial_events", "3");
  p.set("min_delay", "10ns");
  for (unsigned i = 0; i < nodes; ++i) {
    sim.add_component<PholdNode>("n" + std::to_string(i), p);
  }
  for (unsigned i = 0; i < nodes; ++i) {
    sim.connect("n" + std::to_string(i), "port0",
                "n" + std::to_string((i + 1) % nodes), "port1",
                100 * kNanosecond);
  }
  RingResult r;
  r.stats = sim.run();
  r.events = r.stats.events_processed;
  for (unsigned i = 0; i < nodes; ++i) {
    r.received.push_back(
        dynamic_cast<PholdNode*>(sim.find_component("n" + std::to_string(i)))
            ->received);
  }
  return r;
}

TEST(Parallel, MatchesSerialExactly) {
  const RingResult serial = run_ring(1, PartitionStrategy::kLinear);
  const RingResult par2 = run_ring(2, PartitionStrategy::kLinear);
  const RingResult par4 = run_ring(4, PartitionStrategy::kLinear);
  EXPECT_GT(serial.events, 100u);
  EXPECT_EQ(serial.received, par2.received);
  EXPECT_EQ(serial.received, par4.received);
  EXPECT_EQ(serial.events, par2.events);
  EXPECT_EQ(serial.events, par4.events);
}

TEST(Parallel, RepeatedParallelRunsIdentical) {
  const RingResult a = run_ring(4, PartitionStrategy::kRoundRobin);
  const RingResult b = run_ring(4, PartitionStrategy::kRoundRobin);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.events, b.events);
}

TEST(Parallel, ResultIndependentOfPartitioning) {
  const RingResult lin = run_ring(2, PartitionStrategy::kLinear);
  const RingResult rr = run_ring(2, PartitionStrategy::kRoundRobin);
  const RingResult mc = run_ring(2, PartitionStrategy::kMinCut);
  EXPECT_EQ(lin.received, rr.received);
  EXPECT_EQ(lin.received, mc.received);
}

TEST(Parallel, LookaheadIsMinCrossRankLatency) {
  const RingResult r = run_ring(2, PartitionStrategy::kLinear);
  EXPECT_EQ(r.stats.lookahead, 100 * kNanosecond);
  EXPECT_GT(r.stats.sync_windows, 0u);
  EXPECT_GT(r.stats.cross_rank_events, 0u);
  EXPECT_GT(r.stats.cut_links, 0u);
}

TEST(Parallel, MinCutCutsFewerLinksThanRoundRobin) {
  // On a ring, contiguous blocks cut exactly 2 bidirectional connections;
  // round-robin cuts every connection.
  const RingResult mc = run_ring(4, PartitionStrategy::kMinCut, 16);
  const RingResult rr = run_ring(4, PartitionStrategy::kRoundRobin, 16);
  EXPECT_LT(mc.stats.cut_links, rr.stats.cut_links);
  EXPECT_LE(mc.stats.cross_rank_events, rr.stats.cross_rank_events);
}

TEST(Parallel, PinnedRanksRespected) {
  Simulation sim(SimConfig{.num_ranks = 2, .end_time = kMicrosecond});
  Params pp;
  pp.set("count", "10");
  sim.add_component<Pinger>("ping", pp);
  Params ep;
  sim.add_component<Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", 50 * kNanosecond);
  sim.set_component_rank("ping", 0);
  sim.set_component_rank("echo", 1);
  sim.initialize();
  EXPECT_EQ(sim.find_component("ping")->rank(), 0u);
  EXPECT_EQ(sim.find_component("echo")->rank(), 1u);
  const RunStats stats = sim.run();
  // Every event crossed the partition.
  EXPECT_EQ(stats.cross_rank_events, stats.events_processed);
}

TEST(Parallel, PinToInvalidRankThrows) {
  Simulation sim(SimConfig{.num_ranks = 2});
  Params p;
  sim.add_component<Echo>("a", p);
  EXPECT_THROW(sim.set_component_rank("a", 5), ConfigError);
}

TEST(Parallel, PinUnknownComponentThrows) {
  Simulation sim(SimConfig{.num_ranks = 2});
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  sim.set_component_rank("zzz", 1);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(Parallel, PrimaryTerminationAcrossRanks) {
  // Pinger on rank 0, Echo on rank 1: the primary-exit vote must
  // terminate the parallel run.
  Simulation sim(SimConfig{.num_ranks = 2});
  Params pp;
  pp.set("count", "20");
  auto* pinger = sim.add_component<Pinger>("ping", pp);
  Params ep;
  sim.add_component<Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", 50 * kNanosecond);
  sim.set_component_rank("ping", 0);
  sim.set_component_rank("echo", 1);
  sim.run();
  EXPECT_EQ(pinger->round_trips.size(), 20u);
}

TEST(Parallel, IndependentPartitionsTerminate) {
  // No cross-rank links at all: the engine must still make progress and
  // terminate (bounded default window).
  Simulation sim(SimConfig{.num_ranks = 2});
  Params pp;
  pp.set("count", "5");
  sim.add_component<Pinger>("ping0", pp);
  Params ep;
  sim.add_component<Echo>("echo0", ep);
  sim.add_component<Pinger>("ping1", pp);
  sim.add_component<Echo>("echo1", ep);
  sim.connect("ping0", "port", "echo0", "port", 10 * kNanosecond);
  sim.connect("ping1", "port", "echo1", "port", 10 * kNanosecond);
  sim.set_component_rank("ping0", 0);
  sim.set_component_rank("echo0", 0);
  sim.set_component_rank("ping1", 1);
  sim.set_component_rank("echo1", 1);
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.cross_rank_events, 0u);
  auto* p0 = dynamic_cast<Pinger*>(sim.find_component("ping0"));
  auto* p1 = dynamic_cast<Pinger*>(sim.find_component("ping1"));
  EXPECT_EQ(p0->round_trips.size(), 5u);
  EXPECT_EQ(p1->round_trips.size(), 5u);
}

TEST(Parallel, ManyRanksMoreThanComponents) {
  // More ranks than components: some ranks stay empty; must not hang.
  Simulation sim(SimConfig{.num_ranks = 6});
  Params pp;
  pp.set("count", "3");
  auto* pinger = sim.add_component<Pinger>("ping", pp);
  Params ep;
  sim.add_component<Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", 10 * kNanosecond);
  sim.run();
  EXPECT_EQ(pinger->round_trips.size(), 3u);
}

TEST(Parallel, ZeroRanksRejected) {
  EXPECT_THROW(Simulation sim(SimConfig{.num_ranks = 0}), ConfigError);
}

struct GridResult {
  std::vector<std::uint64_t> received;
  std::uint64_t ticks = 0;
  RunStats stats;
};

/// PHOLD 4x4 torus plus a clocked ticker: exercises the batched
/// cross-rank exchange (every window stages and flushes events) and the
/// clock-tick pool at the same time.
GridResult run_grid(unsigned ranks) {
  Simulation sim(SimConfig{.num_ranks = ranks,
                           .end_time = 30 * kMicrosecond,
                           .seed = 11,
                           .partition = PartitionStrategy::kMinCut});
  constexpr unsigned kSide = 4;
  Params p;
  p.set("fanout", "4");
  p.set("initial_events", "2");
  p.set("min_delay", "20ns");
  auto name = [](unsigned x, unsigned y) {
    return "n" + std::to_string(x) + "_" + std::to_string(y);
  };
  for (unsigned y = 0; y < kSide; ++y) {
    for (unsigned x = 0; x < kSide; ++x) {
      sim.add_component<PholdNode>(name(x, y), p);
    }
  }
  for (unsigned y = 0; y < kSide; ++y) {
    for (unsigned x = 0; x < kSide; ++x) {
      sim.connect(name(x, y), "port0", name((x + 1) % kSide, y), "port1",
                  200 * kNanosecond);
      sim.connect(name(x, y), "port2", name(x, (y + 1) % kSide), "port3",
                  200 * kNanosecond);
    }
  }
  Params tp;
  tp.set("limit", "400");
  auto* ticker = sim.add_component<testing::Ticker>("ticker", tp);
  GridResult r;
  r.stats = sim.run();
  r.ticks = ticker->ticks;
  for (unsigned y = 0; y < kSide; ++y) {
    for (unsigned x = 0; x < kSide; ++x) {
      r.received.push_back(
          dynamic_cast<PholdNode*>(sim.find_component(name(x, y)))->received);
    }
  }
  return r;
}

TEST(Parallel, PooledBatchedExchangeDeterminism) {
  // The pooled tick path and the window-batched exchange must not change
  // a single model-visible value at any rank count.
  const GridResult serial = run_grid(1);
  const GridResult par2 = run_grid(2);
  const GridResult par4 = run_grid(4);
  EXPECT_GT(serial.stats.events_processed, 1000u);
  EXPECT_EQ(serial.received, par2.received);
  EXPECT_EQ(serial.received, par4.received);
  EXPECT_EQ(serial.ticks, par2.ticks);
  EXPECT_EQ(serial.ticks, par4.ticks);
  EXPECT_EQ(serial.stats.events_processed, par2.stats.events_processed);
  EXPECT_EQ(serial.stats.events_processed, par4.stats.events_processed);

  // The tick pool allocated once per clock and recycled every re-arm.
  EXPECT_EQ(serial.stats.pool_allocs, 1u);
  EXPECT_EQ(serial.stats.pool_recycles, serial.ticks - 1);
  EXPECT_EQ(par4.stats.pool_allocs, 1u);

  // Serial runs never stage; parallel runs moved all cross-rank traffic
  // through batched flushes.
  EXPECT_EQ(serial.stats.exchange_flushes, 0u);
  EXPECT_GT(par2.stats.exchange_flushes, 0u);
  EXPECT_GT(par4.stats.exchange_flushes, 0u);
  EXPECT_GT(par4.stats.cross_rank_events, 0u);
}

// ---- synchronization modes (src/core/sync_policy.h) -------------------

TEST(SyncMode, AdaptiveMatchesSerialExactly) {
  // Adaptive windows are capped by the exact causal bound, so every
  // model-visible value must equal the serial run's, at any rank count.
  const RingResult serial = run_ring(1, PartitionStrategy::kLinear);
  const RingResult ad2 = run_ring(2, PartitionStrategy::kLinear, 8,
                                  20 * kMicrosecond, SyncMode::kAdaptive);
  const RingResult ad4 = run_ring(4, PartitionStrategy::kLinear, 8,
                                  20 * kMicrosecond, SyncMode::kAdaptive);
  EXPECT_GT(serial.events, 100u);
  EXPECT_EQ(serial.received, ad2.received);
  EXPECT_EQ(serial.received, ad4.received);
  EXPECT_EQ(serial.events, ad2.events);
  EXPECT_EQ(serial.events, ad4.events);
  EXPECT_EQ(ad4.stats.sync_mode, SyncMode::kAdaptive);
  EXPECT_EQ(ad4.stats.lax_stragglers, 0u);
}

TEST(SyncMode, AdaptiveWindowNeverBelowLookahead) {
  const RingResult r = run_ring(2, PartitionStrategy::kLinear, 8,
                                20 * kMicrosecond, SyncMode::kAdaptive);
  EXPECT_GE(r.stats.min_window, r.stats.lookahead);
  EXPECT_GE(r.stats.max_window, r.stats.min_window);
}

TEST(SyncMode, LaxDeterministicRunToRun) {
  // Lax trades accuracy, not determinism: the horizon formula uses no
  // wall clock, so identical runs must agree on everything — including
  // the straggler corrections themselves.
  const SimTime skew = kMicrosecond;
  const RingResult a = run_ring(4, PartitionStrategy::kMinCut, 8,
                                20 * kMicrosecond, SyncMode::kLax, skew);
  const RingResult b = run_ring(4, PartitionStrategy::kMinCut, 8,
                                20 * kMicrosecond, SyncMode::kLax, skew);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.stats.lax_stragglers, b.stats.lax_stragglers);
  EXPECT_EQ(a.stats.lax_max_skew, b.stats.lax_max_skew);
  EXPECT_EQ(a.stats.sync_windows, b.stats.sync_windows);
}

TEST(SyncMode, LaxSkewWithinBudgetAndFewerBarriers) {
  const SimTime skew = kMicrosecond;
  const RingResult cons = run_ring(4, PartitionStrategy::kMinCut);
  const RingResult lax = run_ring(4, PartitionStrategy::kMinCut, 8,
                                  20 * kMicrosecond, SyncMode::kLax, skew);
  EXPECT_EQ(lax.stats.sync_mode, SyncMode::kLax);
  // Every correction stays strictly below the configured bound.
  EXPECT_LT(lax.stats.lax_max_skew, skew);
  // The wider horizon must collapse barrier windows.
  EXPECT_LT(lax.stats.sync_windows, cons.stats.sync_windows);
}

TEST(SyncMode, LaxNeedsSkewBound) {
  Simulation sim(SimConfig{.num_ranks = 2,
                           .end_time = kMicrosecond,
                           .sync_mode = SyncMode::kLax});
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(SyncMode, SkewWithoutLaxRejected) {
  Simulation sim(SimConfig{.num_ranks = 2,
                           .end_time = kMicrosecond,
                           .lax_skew = kMicrosecond});
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(SyncMode, LaxRejectsCheckpointing) {
  SimConfig cfg{.num_ranks = 2,
                .end_time = kMicrosecond,
                .sync_mode = SyncMode::kLax,
                .lax_skew = kMicrosecond};
  cfg.checkpoint_period = 10 * kMicrosecond;
  Simulation sim(cfg);
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(SyncMode, AdaptiveWindowMaxBelowLookaheadRejected) {
  SimConfig cfg{.num_ranks = 2,
                .end_time = kMicrosecond,
                .sync_mode = SyncMode::kAdaptive};
  cfg.sync_window_max = 1;  // lookahead will be 1ns = 1000ps
  Simulation sim(cfg);
  Params p;
  sim.add_component<Echo>("a", p);
  sim.add_component<Echo>("b", p);
  sim.connect("a", "port", "b", "port", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(SyncMode, BarrierWaitExcludesCheckpointIo) {
  // Regression: checkpoint writes happen while the other ranks are parked
  // at the window barrier.  The watchdog already credits that pause
  // (ckpt_pause_ns_); the --profile-engine barrier-wait accounting must
  // subtract the same credit, or every snapshot's I/O time shows up as
  // phantom synchronization cost.
  SimConfig cfg{.num_ranks = 2,
                .end_time = 20 * kMicrosecond,
                .seed = 7,
                .partition = PartitionStrategy::kLinear};
  cfg.profile_engine = true;
  cfg.checkpoint_period = 5 * kMicrosecond;
  Simulation sim(cfg);
  Params p;
  p.set("fanout", "2");
  p.set("initial_events", "3");
  p.set("min_delay", "10ns");
  for (unsigned i = 0; i < 8; ++i) {
    sim.add_component<PholdNode>("n" + std::to_string(i), p);
  }
  for (unsigned i = 0; i < 8; ++i) {
    sim.connect("n" + std::to_string(i), "port0",
                "n" + std::to_string((i + 1) % 8), "port1",
                100 * kNanosecond);
  }
  std::atomic<unsigned> snapshots{0};
  constexpr auto kSleep = std::chrono::milliseconds(60);
  sim.set_checkpoint_writer([&](Simulation&) {
    ++snapshots;
    std::this_thread::sleep_for(kSleep);
  });
  sim.run();
  ASSERT_GE(snapshots.load(), 2u);

  double barrier_wait_total = 0.0;
  for (unsigned r = 0; r < 2; ++r) {
    const auto* stat = dynamic_cast<const Accumulator*>(sim.stats().find(
        "engine.rank" + std::to_string(r), "barrier_wait_seconds"));
    ASSERT_NE(stat, nullptr);
    barrier_wait_total += stat->sum();
  }
  // Without the credit the parked rank books ~snapshots * kSleep of wait;
  // with it the total stays far below a single snapshot's write time.
  const double sleep_s =
      std::chrono::duration<double>(kSleep).count();
  EXPECT_LT(barrier_wait_total, 0.5 * sleep_s)
      << "snapshot I/O leaked into barrier_wait_seconds ("
      << snapshots.load() << " snapshots of " << sleep_s << "s each)";
}

}  // namespace
}  // namespace sst
