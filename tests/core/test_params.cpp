// Params: typed lookup, required keys, arrays, scoping, unused tracking.
#include <gtest/gtest.h>

#include "core/params.h"

namespace sst {
namespace {

TEST(Params, TypedFindWithDefaults) {
  Params p;
  p.set("width", "4");
  p.set("rate", "2.5");
  p.set("label", "hello");
  p.set("enable", "true");
  EXPECT_EQ(p.find<std::uint32_t>("width", 1), 4u);
  EXPECT_EQ(p.find<std::uint32_t>("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(p.find<double>("rate", 0.0), 2.5);
  EXPECT_EQ(p.find<std::string>("label", ""), "hello");
  EXPECT_TRUE(p.find<bool>("enable", false));
}

TEST(Params, BoolSpellings) {
  Params p;
  for (const char* t : {"true", "TRUE", "1", "yes", "on"}) {
    p.set("b", t);
    EXPECT_TRUE(p.find<bool>("b", false)) << t;
  }
  for (const char* f : {"false", "False", "0", "no", "off"}) {
    p.set("b", f);
    EXPECT_FALSE(p.find<bool>("b", true)) << f;
  }
  p.set("b", "maybe");
  EXPECT_THROW((void)p.find<bool>("b", true), ConfigError);
}

TEST(Params, UnitQuantitiesInNumericFields) {
  Params p;
  p.set("size", "64KiB");
  p.set("freq", "2GHz");
  EXPECT_EQ(p.find<std::uint64_t>("size", 0), 65536u);
  EXPECT_DOUBLE_EQ(p.find<double>("freq", 0.0), 2e9);
  EXPECT_EQ(p.find<UnitAlgebra>("size", UnitAlgebra("0B")).to_bytes(),
            65536u);
}

TEST(Params, RequiredThrowsWhenMissing) {
  Params p;
  p.set("present", "1");
  EXPECT_EQ(p.required<std::uint32_t>("present"), 1u);
  EXPECT_THROW((void)p.required<std::uint32_t>("absent"), ConfigError);
}

TEST(Params, BadIntegerThrows) {
  Params p;
  p.set("n", "twelve");
  EXPECT_THROW((void)p.find<std::uint32_t>("n", 0), ConfigError);
  p.set("n", "-5");
  EXPECT_THROW((void)p.find<std::uint32_t>("n", 0), ConfigError);
  EXPECT_EQ(p.find<std::int32_t>("n", 0), -5);
}

TEST(Params, Arrays) {
  Params p;
  p.set("dims", "4, 8,16");
  const auto v = p.find_array<std::uint32_t>("dims");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 4u);
  EXPECT_EQ(v[1], 8u);
  EXPECT_EQ(v[2], 16u);
  EXPECT_TRUE(p.find_array<std::uint32_t>("missing").empty());
}

TEST(Params, PeriodAndTime) {
  Params p;
  p.set("clock", "2GHz");
  p.set("lat", "10ns");
  EXPECT_EQ(p.find_period("clock", "1GHz"), 500u);
  EXPECT_EQ(p.find_period("missing", "1GHz"), 1000u);
  EXPECT_EQ(p.find_time("lat", "1ns"), 10 * kNanosecond);
  p.set("bad", "64B");
  EXPECT_THROW((void)p.find_time("bad", "1ns"), ConfigError);
}

TEST(Params, Scope) {
  Params p;
  p.set("l1.size", "32KiB");
  p.set("l1.assoc", "4");
  p.set("l2.size", "256KiB");
  const Params l1 = p.scope("l1.");
  EXPECT_EQ(l1.size(), 2u);
  EXPECT_EQ(l1.find<std::uint64_t>("size", 0), 32768u);
  EXPECT_FALSE(l1.contains("l2.size"));
}

TEST(Params, UnusedKeyTracking) {
  Params p;
  p.set("used", "1");
  p.set("never", "1");
  (void)p.find<std::uint32_t>("used", 0);
  const auto unused = p.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "never");
}

TEST(Params, MergeOverwrites) {
  Params a;
  a.set("x", "1");
  a.set("y", "2");
  Params b;
  b.set("y", "20");
  b.set("z", "30");
  a.merge(b);
  EXPECT_EQ(a.find<std::uint32_t>("x", 0), 1u);
  EXPECT_EQ(a.find<std::uint32_t>("y", 0), 20u);
  EXPECT_EQ(a.find<std::uint32_t>("z", 0), 30u);
}

TEST(Params, InitializerListAndKeys) {
  Params p{{"a", "1"}, {"b", "2"}};
  const auto keys = p.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(p.raw("a").value(), "1");
  EXPECT_FALSE(p.raw("c").has_value());
}

}  // namespace
}  // namespace sst
