// Online rebalancer: controller properties (no-op below threshold,
// bounded, improving, deterministic) and the engine-level determinism
// contract — migrations are model-invisible in conservative/adaptive
// modes at any rank count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/migrate.h"
#include "core/sst.h"
#include "core/sync_policy.h"
#include "net/hotspot.h"
#include "net/net_lib.h"

namespace sst {
namespace {

// ---------------------------------------------------------------------
// Controller properties (pure planner).
// ---------------------------------------------------------------------

std::vector<ComponentLoad> make_loads(
    const std::vector<std::pair<RankId, std::uint64_t>>& per_comp) {
  std::vector<ComponentLoad> loads;
  for (std::size_t i = 0; i < per_comp.size(); ++i) {
    loads.push_back({static_cast<ComponentId>(i), per_comp[i].first,
                     per_comp[i].second});
  }
  return loads;
}

std::vector<std::uint64_t> rank_totals(const std::vector<ComponentLoad>& loads,
                                       std::uint32_t ranks) {
  std::vector<std::uint64_t> totals(ranks, 0);
  for (const auto& l : loads) totals[l.rank] += l.events;
  return totals;
}

TEST(RebalanceController, ValidatesConfig) {
  EXPECT_THROW(RebalanceController({.threshold = 1.0}, 2), ConfigError);
  EXPECT_THROW(RebalanceController({.threshold = 0.5}, 2), ConfigError);
  EXPECT_THROW(RebalanceController({.period = 0}, 2), ConfigError);
  EXPECT_THROW(RebalanceController({.max_moves = 0}, 2), ConfigError);
  EXPECT_THROW(RebalanceController({}, 0), ConfigError);
  EXPECT_NO_THROW(RebalanceController({}, 1));
}

TEST(RebalanceController, ImbalanceIsMaxOverMean) {
  EXPECT_DOUBLE_EQ(RebalanceController::imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(RebalanceController::imbalance({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(RebalanceController::imbalance({4, 4, 4, 4}), 1.0);
  EXPECT_DOUBLE_EQ(RebalanceController::imbalance({8, 0}), 2.0);
  EXPECT_DOUBLE_EQ(RebalanceController::imbalance({6, 2, 2, 2}), 2.0);
}

TEST(RebalanceController, NoOpWhenBalanced) {
  RebalanceController ctl({.threshold = 1.5, .min_events = 16}, 2);
  const auto loads = make_loads({{0, 500}, {0, 500}, {1, 500}, {1, 500}});
  EXPECT_TRUE(ctl.plan(loads).empty());
}

TEST(RebalanceController, NoOpBelowMinEvents) {
  RebalanceController ctl({.threshold = 1.5, .min_events = 256}, 2);
  // Wildly imbalanced but tiny: startup noise, not signal.
  const auto loads = make_loads({{0, 100}, {1, 1}});
  EXPECT_TRUE(ctl.plan(loads).empty());
}

TEST(RebalanceController, NoOpOnSingleRank) {
  RebalanceController ctl({.threshold = 1.5, .min_events = 1}, 1);
  const auto loads = make_loads({{0, 10000}, {0, 1}});
  EXPECT_TRUE(ctl.plan(loads).empty());
}

TEST(RebalanceController, BoundedByMaxMoves) {
  RebalanceController ctl({.threshold = 1.2, .max_moves = 3,
                           .min_events = 1}, 4);
  std::vector<std::pair<RankId, std::uint64_t>> comps;
  for (int i = 0; i < 32; ++i) comps.push_back({0, 100});  // all on rank 0
  const auto plan = ctl.plan(make_loads(comps));
  EXPECT_FALSE(plan.empty());
  EXPECT_LE(plan.size(), 3u);
}

TEST(RebalanceController, PlanImprovesImbalance) {
  RebalanceController ctl({.threshold = 1.5, .max_moves = 8,
                           .min_events = 1}, 4);
  auto loads = make_loads({{0, 400}, {0, 300}, {0, 200}, {0, 100},
                           {1, 50}, {2, 50}, {3, 0}});
  const double before = RebalanceController::imbalance(rank_totals(loads, 4));
  const auto plan = ctl.plan(loads);
  ASSERT_FALSE(plan.empty());
  for (const auto& m : plan) {
    ASSERT_LT(m.comp, loads.size());
    EXPECT_EQ(loads[m.comp].rank, m.from);
    EXPECT_NE(m.from, m.to);
    loads[m.comp].rank = m.to;
  }
  const double after = RebalanceController::imbalance(rank_totals(loads, 4));
  EXPECT_LT(after, before);
}

TEST(RebalanceController, DeterministicWithLowestIdTieBreaks) {
  RebalanceController ctl({.threshold = 1.2, .max_moves = 2,
                           .min_events = 1}, 2);
  // Two identical candidates on the hot rank; the plan must pick the
  // lowest component id and target the lowest-id cold rank.
  const auto loads = make_loads({{0, 100}, {0, 100}, {1, 0}});
  const auto a = ctl.plan(loads);
  const auto b = ctl.plan(loads);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].comp, b[i].comp);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
  }
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.front().comp, 0u);
  EXPECT_EQ(a.front().to, 1u);
}

TEST(RebalanceController, MovesNeverOvershoot) {
  RebalanceController ctl({.threshold = 1.2, .max_moves = 8,
                           .min_events = 1}, 2);
  // One huge component dominating the hot rank must NOT move: shifting
  // it would just swap which rank is hot.
  const auto loads = make_loads({{0, 1000}, {0, 10}, {1, 100}});
  for (const auto& m : ctl.plan(loads)) EXPECT_NE(m.comp, 0u);
}

// ---------------------------------------------------------------------
// Engine-level contract on the moving-hotspot model.
// ---------------------------------------------------------------------

struct HotspotResult {
  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> forwarded;
  RunStats stats;
};

HotspotResult run_hotspot(unsigned ranks, bool rebalance,
                          SyncMode mode = SyncMode::kConservative,
                          SimTime lax_skew = 0,
                          SimTime end = 60 * kMicrosecond,
                          bool install_migrator = true) {
  net::register_library();  // HotspotToken migration serialization
  SimConfig cfg{.num_ranks = ranks,
                .end_time = end,
                .seed = 13,
                .partition = PartitionStrategy::kMinCut,
                .sync_mode = mode,
                .lax_skew = lax_skew};
  cfg.rebalance = rebalance;
  Simulation sim(cfg);
  constexpr unsigned kX = 8, kY = 8;
  Params base;
  base.set("size_x", std::to_string(kX));
  base.set("size_y", std::to_string(kY));
  base.set("min_delay", "20ns");
  base.set("self_delay", "5ns");
  base.set("service_hops", "8");
  base.set("hot_span", "1");
  base.set("bias_pct", "85");
  base.set("drift_period", "10us");
  base.set("initial_tokens", "4");
  auto name = [](unsigned i, unsigned j) {
    return "h" + std::to_string(i) + "_" + std::to_string(j);
  };
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      Params p = base;
      p.set("x", std::to_string(i));
      p.set("y", std::to_string(j));
      sim.add_component<net::HotspotNode>(name(i, j), p);
    }
  }
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      sim.connect(name(i, j), "port0", name((i + 1) % kX, j), "port1",
                  200 * kNanosecond);
      sim.connect(name(i, j), "port2", name(i, (j + 1) % kY), "port3",
                  200 * kNanosecond);
    }
  }
  if (rebalance && install_migrator) ckpt::install_migrator(sim);
  HotspotResult r;
  r.stats = sim.run();
  for (unsigned j = 0; j < kY; ++j) {
    for (unsigned i = 0; i < kX; ++i) {
      auto* n = dynamic_cast<net::HotspotNode*>(
          sim.find_component(name(i, j)));
      r.received.push_back(n->received());
      r.forwarded.push_back(n->forwarded());
    }
  }
  return r;
}

TEST(Rebalance, ConservativeMatchesSerialExactly) {
  const HotspotResult serial = run_hotspot(1, false);
  const HotspotResult rebal4 = run_hotspot(4, true);
  ASSERT_GT(serial.stats.events_processed, 10000u);
  // The point of the test: migrations actually happened, and the model
  // could not tell.
  EXPECT_GT(rebal4.stats.rebalances, 0u);
  EXPECT_GT(rebal4.stats.components_migrated, 0u);
  EXPECT_EQ(serial.received, rebal4.received);
  EXPECT_EQ(serial.forwarded, rebal4.forwarded);
  EXPECT_EQ(serial.stats.events_processed, rebal4.stats.events_processed);
}

TEST(Rebalance, IdenticalAcrossRankCounts) {
  const HotspotResult r2 = run_hotspot(2, true);
  const HotspotResult r8 = run_hotspot(8, true);
  EXPECT_EQ(r2.received, r8.received);
  EXPECT_EQ(r2.forwarded, r8.forwarded);
  EXPECT_EQ(r2.stats.events_processed, r8.stats.events_processed);
}

TEST(Rebalance, DeterministicRunToRun) {
  const HotspotResult a = run_hotspot(4, true);
  const HotspotResult b = run_hotspot(4, true);
  EXPECT_EQ(a.received, b.received);
  // Conservative epochs are deterministic, so the migration schedule
  // itself reproduces exactly.
  EXPECT_EQ(a.stats.rebalances, b.stats.rebalances);
  EXPECT_EQ(a.stats.components_migrated, b.stats.components_migrated);
}

TEST(Rebalance, AdaptiveStaysModelInvisible) {
  const HotspotResult serial = run_hotspot(1, false);
  // Adaptive epoch boundaries depend on wall-clock feedback, so the
  // migration *schedule* may vary — model results must not.
  const HotspotResult rebal = run_hotspot(4, true, SyncMode::kAdaptive);
  EXPECT_EQ(serial.received, rebal.received);
  EXPECT_EQ(serial.forwarded, rebal.forwarded);
  EXPECT_EQ(serial.stats.events_processed, rebal.stats.events_processed);
}

TEST(Rebalance, LaxRunsToCompletion) {
  // Lax trades strict reproducibility for throughput; with rebalancing
  // it must still terminate cleanly and keep every component's counters
  // plausible (tokens are conserved, so events keep flowing).
  const HotspotResult lax =
      run_hotspot(4, true, SyncMode::kLax, 4 * kMicrosecond);
  EXPECT_GT(lax.stats.events_processed, 1000u);
}

TEST(Rebalance, StaticRunHasNoMigrations) {
  const HotspotResult r = run_hotspot(4, false);
  EXPECT_EQ(r.stats.rebalances, 0u);
  EXPECT_EQ(r.stats.components_migrated, 0u);
}

TEST(Rebalance, MissingMigratorRejected) {
  // rebalance=true on a parallel run without ckpt::install_migrator must
  // fail fast with a pointer at the fix, not silently skip migrations.
  try {
    run_hotspot(2, true, SyncMode::kConservative, 0, kMicrosecond,
                /*install_migrator=*/false);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("install_migrator"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace sst
