// UnitAlgebra: parsing, arithmetic, conversions, error handling.
#include <gtest/gtest.h>

#include "core/unit_algebra.h"

namespace sst {
namespace {

TEST(UnitAlgebra, ParsesTimes) {
  EXPECT_EQ(UnitAlgebra("1s").to_simtime(), kSecond);
  EXPECT_EQ(UnitAlgebra("1ms").to_simtime(), kMillisecond);
  EXPECT_EQ(UnitAlgebra("1us").to_simtime(), kMicrosecond);
  EXPECT_EQ(UnitAlgebra("10ns").to_simtime(), 10 * kNanosecond);
  EXPECT_EQ(UnitAlgebra("500ps").to_simtime(), 500u);
  EXPECT_EQ(UnitAlgebra("2.5ns").to_simtime(), 2500u);
  EXPECT_EQ(UnitAlgebra(" 3 ns ").to_simtime(), 3000u);
}

TEST(UnitAlgebra, ParsesFrequenciesAsPeriods) {
  EXPECT_EQ(UnitAlgebra("1GHz").to_period(), 1000u);
  EXPECT_EQ(UnitAlgebra("2GHz").to_period(), 500u);
  EXPECT_EQ(UnitAlgebra("250MHz").to_period(), 4000u);
  // Periods pass through to_period unchanged.
  EXPECT_EQ(UnitAlgebra("3ns").to_period(), 3000u);
}

TEST(UnitAlgebra, ParsesBytesWithBinaryAndSiPrefixes) {
  EXPECT_EQ(UnitAlgebra("64B").to_bytes(), 64u);
  EXPECT_EQ(UnitAlgebra("1KiB").to_bytes(), 1024u);
  EXPECT_EQ(UnitAlgebra("64KiB").to_bytes(), 65536u);
  EXPECT_EQ(UnitAlgebra("1MiB").to_bytes(), 1048576u);
  EXPECT_EQ(UnitAlgebra("2GiB").to_bytes(), 2147483648u);
  EXPECT_EQ(UnitAlgebra("1kB").to_bytes(), 1000u);
  EXPECT_EQ(UnitAlgebra("1MB").to_bytes(), 1000000u);
}

TEST(UnitAlgebra, ParsesBandwidth) {
  EXPECT_DOUBLE_EQ(UnitAlgebra("1GB/s").to_bytes_per_second(), 1e9);
  EXPECT_DOUBLE_EQ(UnitAlgebra("3.2GB/s").to_bytes_per_second(), 3.2e9);
  // Bits convert to bytes.
  EXPECT_DOUBLE_EQ(UnitAlgebra("8Gb/s").to_bytes_per_second(), 1e9);
}

TEST(UnitAlgebra, Arithmetic) {
  const UnitAlgebra bytes("128B");
  const UnitAlgebra bw("16GB/s");
  const UnitAlgebra t = bytes / bw;
  EXPECT_TRUE(t.has_units_of("1s"));
  EXPECT_EQ(t.to_simtime(), 8 * kNanosecond);  // 128 B / 16 GB/s = 8 ns

  const UnitAlgebra sum = UnitAlgebra("1ns") + UnitAlgebra("500ps");
  EXPECT_EQ(sum.to_simtime(), 1500u);

  const UnitAlgebra diff = UnitAlgebra("2us") - UnitAlgebra("1us");
  EXPECT_EQ(diff.to_simtime(), kMicrosecond);
}

TEST(UnitAlgebra, DimensionMismatchThrows) {
  EXPECT_THROW((void)(UnitAlgebra("1ns") + UnitAlgebra("1B")), ConfigError);
  EXPECT_THROW((void)(UnitAlgebra("1ns") - UnitAlgebra("1Hz")), ConfigError);
  EXPECT_THROW((void)(UnitAlgebra("1ns") < UnitAlgebra("1B")), ConfigError);
  EXPECT_THROW((void)UnitAlgebra("1B").to_simtime(), ConfigError);
  EXPECT_THROW((void)UnitAlgebra("1ns").to_bytes(), ConfigError);
  EXPECT_THROW((void)UnitAlgebra("1B").to_bytes_per_second(), ConfigError);
}

TEST(UnitAlgebra, Comparisons) {
  EXPECT_TRUE(UnitAlgebra("1ns") < UnitAlgebra("2ns"));
  EXPECT_TRUE(UnitAlgebra("1GHz") > UnitAlgebra("500MHz"));
  EXPECT_TRUE(UnitAlgebra("1KiB") == UnitAlgebra("1024B"));
}

TEST(UnitAlgebra, Inversion) {
  const UnitAlgebra freq = UnitAlgebra("2ns").inverted();
  EXPECT_NEAR(freq.value(), 5e8, 1);
  EXPECT_THROW((void)UnitAlgebra(0.0, Units{}).inverted(), ConfigError);
}

TEST(UnitAlgebra, MalformedInputThrows) {
  EXPECT_THROW(UnitAlgebra(""), ConfigError);
  EXPECT_THROW(UnitAlgebra("fast"), ConfigError);
  EXPECT_THROW(UnitAlgebra("12parsecs"), ConfigError);
  EXPECT_THROW(UnitAlgebra("1Kis"), ConfigError);  // binary prefix on time
  EXPECT_THROW(UnitAlgebra("ns"), ConfigError);    // no number
}

TEST(UnitAlgebra, EnergyAndPower) {
  const UnitAlgebra e = UnitAlgebra("2W") * UnitAlgebra("3s");
  EXPECT_TRUE(e.has_units_of("1J"));
  EXPECT_DOUBLE_EQ(e.value(), 6.0);
}

TEST(UnitAlgebra, RoundedRejectsNegative) {
  const UnitAlgebra neg = UnitAlgebra("0B") - UnitAlgebra("5B");
  EXPECT_THROW((void)neg.rounded(), ConfigError);
}

TEST(UnitAlgebra, ToStringRoundTrips) {
  EXPECT_EQ(UnitAlgebra(UnitAlgebra("1.5ns").to_string()).to_simtime(),
            1500u);
}

TEST(FrequencyHelpers, Conversions) {
  EXPECT_EQ(frequency_to_period(1e9), 1000u);
  EXPECT_DOUBLE_EQ(period_to_frequency(1000), 1e9);
  EXPECT_THROW(frequency_to_period(0), ConfigError);
  EXPECT_THROW(period_to_frequency(0), ConfigError);
  // Very high frequencies clamp to 1 ps.
  EXPECT_EQ(frequency_to_period(5e12), 1u);
}

}  // namespace
}  // namespace sst
