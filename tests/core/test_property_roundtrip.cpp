// Property-style randomized round trips over the configuration layer:
// values that are formatted and re-parsed must come back equal.  Seeded
// deterministically so failures reproduce.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/params.h"
#include "core/rng.h"
#include "core/unit_algebra.h"

namespace sst {
namespace {

TEST(PropertyRoundtrip, UnitAlgebraToStringParsesBack) {
  rng::XorShift128Plus rng(0xC0FFEEu);
  const std::vector<std::string> units = {"ns", "us", "ms", "s",   "Hz",
                                          "kHz", "MHz", "GHz", "B", "KiB",
                                          "MiB", "GiB", "b",   "W"};
  for (int i = 0; i < 500; ++i) {
    const double mant =
        static_cast<double>(1 + rng.next_bounded(999983));  // positive
    const std::string text =
        std::to_string(mant) + units[rng.next_bounded(units.size())];
    const UnitAlgebra a(text);
    const UnitAlgebra b(a.to_string());
    EXPECT_EQ(a.units(), b.units()) << text;
    // to_string is documented as a lossless print -> parse round trip.
    EXPECT_EQ(a.value(), b.value()) << text;
  }
}

TEST(PropertyRoundtrip, UnitAlgebraTimeConversionsAgree) {
  rng::XorShift128Plus rng(0xBEEFu);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t ps = 1 + rng.next_bounded(1'000'000'000ULL);
    const UnitAlgebra t(std::to_string(ps) + "ps");
    EXPECT_EQ(t.to_simtime(), static_cast<SimTime>(ps));
    // A frequency of 1/t must have period t (integer picoseconds only:
    // to_period rounds, so stick to exact divisors of 1s).
  }
  EXPECT_EQ(UnitAlgebra("2GHz").to_period(), 500u);
  EXPECT_EQ(UnitAlgebra("250ps").to_period(), 250u);
}

TEST(PropertyRoundtrip, UnitAlgebraByteSizesRoundTrip) {
  rng::XorShift128Plus rng(0x5EEDu);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t n = 1 + rng.next_bounded(1ULL << 40);
    const UnitAlgebra a(std::to_string(n) + "B");
    EXPECT_EQ(a.to_bytes(), n);
  }
  EXPECT_EQ(UnitAlgebra("64KiB").to_bytes(), 64u * 1024u);
  EXPECT_EQ(UnitAlgebra("2MiB").to_bytes(), 2u * 1024u * 1024u);
}

TEST(PropertyRoundtrip, ParamsStoreAndFindArbitraryStrings) {
  rng::XorShift128Plus rng(0xABCDEFu);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 _-.,\"\n:{}[]";
  for (int i = 0; i < 200; ++i) {
    Params p;
    const std::string key = "k" + std::to_string(i);
    std::string value;
    const std::size_t len = rng.next_bounded(64);
    for (std::size_t j = 0; j < len; ++j)
      value += alphabet[rng.next_bounded(sizeof(alphabet) - 1)];
    p.set(key, value);
    EXPECT_EQ(p.find<std::string>(key, "missing"), value);
  }
}

TEST(PropertyRoundtrip, ParamsNumericFormattingRoundTrips) {
  rng::XorShift128Plus rng(0x1234u);
  for (int i = 0; i < 200; ++i) {
    Params p;
    const std::uint64_t v = rng.next();
    p.set("n", std::to_string(v));
    EXPECT_EQ(p.find<std::uint64_t>("n", 0), v);
  }
}

}  // namespace
}  // namespace sst
