// Clock semantics: alignment, sharing, unregistration, re-registration,
// fast-forward through idle phases.
#include <gtest/gtest.h>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using testing::Ticker;

TEST(Clock, TicksAtPeriodMultiples) {
  Simulation sim(SimConfig{.end_time = 100 * kNanosecond});
  Params p;
  p.set("clock", "1GHz");  // 1ns period
  p.set("limit", "5");
  auto* t = sim.add_component<Ticker>("t", p);
  sim.run();
  ASSERT_EQ(t->ticks, 5u);
  ASSERT_EQ(t->tick_times.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t->tick_times[i], (i + 1) * kNanosecond);
  }
}

TEST(Clock, FrequencyStringParsing) {
  Simulation sim(SimConfig{.end_time = kMicrosecond});
  Params p;
  p.set("clock", "250MHz");  // 4ns period
  p.set("limit", "3");
  auto* t = sim.add_component<Ticker>("t", p);
  sim.run();
  ASSERT_EQ(t->tick_times.size(), 3u);
  EXPECT_EQ(t->tick_times[0], 4 * kNanosecond);
  EXPECT_EQ(t->tick_times[2], 12 * kNanosecond);
}

TEST(Clock, SharedClockSingleTickStream) {
  // Two components at the same frequency share one Clock: the engine
  // dispatches one tick event per cycle, not two.
  Simulation sim(SimConfig{.end_time = 10 * kNanosecond});
  Params p;
  p.set("clock", "1GHz");
  p.set("limit", "5");
  auto* a = sim.add_component<Ticker>("a", p);
  auto* b = sim.add_component<Ticker>("b", p);
  const RunStats stats = sim.run();
  EXPECT_EQ(a->ticks, 5u);
  EXPECT_EQ(b->ticks, 5u);
  EXPECT_EQ(stats.clock_ticks, 5u);  // shared dispatches
}

TEST(Clock, StopsWhenAllHandlersDone) {
  // After both tickers hit their limits the clock stops scheduling, so
  // the simulation terminates without reaching end_time.
  Simulation sim;
  Params p;
  p.set("clock", "1GHz");
  p.set("limit", "7");
  sim.add_component<Ticker>("a", p);
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.final_time, 7 * kNanosecond);
}

class SleepWake final : public Component {
 public:
  explicit SleepWake(Params&) {
    self_ = configure_self_link("wake", 100 * kNanosecond,
                                [this](EventPtr) { start_phase2(); });
    register_clock(kNanosecond, [this](Cycle) {
      ++phase1_ticks;
      if (phase1_ticks == 3) {
        self_->send(make_event<NullEvent>());
        return true;  // sleep
      }
      return false;
    });
    register_as_primary();
  }

  void start_phase2() {
    wake_time = now();
    register_clock(kNanosecond, [this](Cycle) {
      ++phase2_ticks;
      phase2_times.push_back(now());
      if (phase2_ticks == 2) {
        primary_ok_to_end_sim();
        return true;
      }
      return false;
    });
  }

  std::uint64_t phase1_ticks = 0;
  std::uint64_t phase2_ticks = 0;
  SimTime wake_time = 0;
  std::vector<SimTime> phase2_times;

 private:
  Link* self_;
};

TEST(Clock, ReRegistrationAfterIdleFastForwards) {
  Simulation sim;
  Params p;
  auto* c = sim.add_component<SleepWake>("c", p);
  const RunStats stats = sim.run();
  EXPECT_EQ(c->phase1_ticks, 3u);
  EXPECT_EQ(c->phase2_ticks, 2u);
  // Woke at 3ns + 100ns; next aligned edge is 104ns.
  EXPECT_EQ(c->wake_time, 103 * kNanosecond);
  ASSERT_EQ(c->phase2_times.size(), 2u);
  EXPECT_EQ(c->phase2_times[0], 104 * kNanosecond);
  // No ticks were dispatched during the idle window.
  EXPECT_LT(stats.clock_ticks, 10u);
}

TEST(Clock, ZeroPeriodRejected) {
  Simulation sim;
  class BadClock final : public Component {
   public:
    explicit BadClock(Params&) {
      register_clock(SimTime{0}, [](Cycle) { return true; });
    }
  };
  Params p;
  EXPECT_THROW(sim.add_component<BadClock>("bad", p), ConfigError);
}

TEST(Clock, DifferentPeriodsInterleave) {
  Simulation sim(SimConfig{.end_time = 12 * kNanosecond});
  Params fast;
  fast.set("clock", "1GHz");
  fast.set("limit", "1000");
  Params slow;
  slow.set("clock", "250MHz");  // 4ns
  slow.set("limit", "1000");
  auto* f = sim.add_component<Ticker>("fast", fast);
  auto* s = sim.add_component<Ticker>("slow", slow);
  sim.run();
  EXPECT_EQ(f->ticks, 12u);
  EXPECT_EQ(s->ticks, 3u);  // 4,8,12 ns edges
}

}  // namespace
}  // namespace sst
