// Interval statistics sampling.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

/// Emits one counter increment per clock tick so intervals are exact.
class SteadyCounter final : public Component {
 public:
  explicit SteadyCounter(Params& p) {
    const SimTime period = p.find_period("clock", "1GHz");
    counter_ = stat_counter("ticks");
    register_clock(period, [this](Cycle) {
      counter_->add();
      return false;
    });
  }

 private:
  Counter* counter_;
};

TEST(StatSampler, SamplesAtFixedIntervals) {
  Simulation sim(SimConfig{.end_time = 100 * kMicrosecond});
  Params cp;
  cp.set("clock", "1GHz");  // 1 tick per ns
  sim.add_component<SteadyCounter>("work", cp);
  Params sp;
  sp.set("period", "10us");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  sim.run();

  ASSERT_EQ(sampler->columns().size(), 1u);
  EXPECT_EQ(sampler->columns()[0], "work.ticks.count");
  ASSERT_EQ(sampler->samples().size(), 10u);
  for (std::size_t i = 0; i < sampler->samples().size(); ++i) {
    EXPECT_EQ(sampler->samples()[i].time, (i + 1) * 10 * kMicrosecond);
    // 10us at 1 tick/ns = 10000 ticks per interval.
    EXPECT_NEAR(sampler->delta(0, i), 10'000.0, 1.0);
  }
}

TEST(StatSampler, ComponentFilter) {
  Simulation sim(SimConfig{.end_time = 20 * kMicrosecond});
  Params cp;
  cp.set("clock", "1GHz");
  sim.add_component<SteadyCounter>("keep_me", cp);
  sim.add_component<SteadyCounter>("drop_me", cp);
  Params sp;
  sp.set("period", "5us");
  sp.set("components", "keep");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  sim.run();
  ASSERT_EQ(sampler->columns().size(), 1u);
  EXPECT_EQ(sampler->columns()[0], "keep_me.ticks.count");
}

TEST(StatSampler, FieldFilterAndAccumulators) {
  class SumEmitter final : public Component {
   public:
    explicit SumEmitter(Params&) {
      acc_ = stat_accumulator("value");
      register_clock(kMicrosecond, [this](Cycle) {
        acc_->add(2.5);
        return false;
      });
    }
    Accumulator* acc_;
  };
  Simulation sim(SimConfig{.end_time = 10 * kMicrosecond});
  Params cp;
  sim.add_component<SumEmitter>("emitter", cp);
  Params sp;
  sp.set("period", "5us");
  sp.set("fields", "sum");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  sim.run();
  ASSERT_EQ(sampler->columns().size(), 1u);
  EXPECT_EQ(sampler->columns()[0], "emitter.value.sum");
  ASSERT_EQ(sampler->samples().size(), 2u);
  EXPECT_NEAR(sampler->samples()[1].values[0], 25.0, 1e-9);
}

TEST(StatSampler, CsvOutputShape) {
  Simulation sim(SimConfig{.end_time = 4 * kMicrosecond});
  Params cp;
  cp.set("clock", "1GHz");
  sim.add_component<SteadyCounter>("work", cp);
  Params sp;
  sp.set("period", "2us");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  sim.run();
  std::ostringstream os;
  sampler->write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("time_ps,work.ticks.count"), std::string::npos);
  EXPECT_NE(text.find("\n2000000,"), std::string::npos);
}

TEST(StatSampler, DeltaValidation) {
  Simulation sim(SimConfig{.end_time = kMicrosecond});
  Params cp;
  cp.set("clock", "1GHz");
  sim.add_component<SteadyCounter>("work", cp);
  Params sp;
  sp.set("period", "500ns");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  sim.run();
  EXPECT_THROW((void)sampler->delta(99, 0), ConfigError);
  EXPECT_THROW((void)sampler->delta(0, 99), ConfigError);
}

TEST(StatSampler, WorksAlongsidePrimaries) {
  // A primary-driven simulation with a sampler terminates when the
  // primaries finish, not at end_time.
  Simulation sim(SimConfig{.end_time = kSecond});
  Params pp;
  pp.set("count", "100");
  sim.add_component<testing::Pinger>("ping", pp);
  Params ep;
  sim.add_component<testing::Echo>("echo", ep);
  sim.connect("ping", "port", "echo", "port", 100 * kNanosecond);
  Params sp;
  sp.set("period", "1us");
  auto* sampler = sim.add_component<StatSampler>("sampler", sp);
  const RunStats stats = sim.run();
  EXPECT_LT(stats.final_time, kMillisecond);
  // 100 round trips x 200ns = 20us -> 20 samples.
  EXPECT_GE(sampler->samples().size(), 19u);
  EXPECT_LE(sampler->samples().size(), 21u);
}

}  // namespace
}  // namespace sst
