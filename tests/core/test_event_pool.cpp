// EventPool free-list recycling and the Clock tick-pool accounting it
// mirrors: steady-state traffic must reuse instances, not allocate.
#include <gtest/gtest.h>

#include <memory>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

/// Poolable payload: reset() re-initializes exactly what the constructor
/// sets, as EventPool::acquire requires.
class PooledInt final : public Event {
 public:
  explicit PooledInt(std::int64_t v) : value(v) {}
  void reset(std::int64_t v) { value = v; }
  std::int64_t value;
};

TEST(EventPool, AcquireAllocatesWhenEmpty) {
  EventPool<PooledInt> pool(4);
  auto ev = pool.acquire(7);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->value, 7);
  EXPECT_EQ(pool.allocs(), 1u);
  EXPECT_EQ(pool.recycles(), 0u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(EventPool, ReleaseThenAcquireRecycles) {
  EventPool<PooledInt> pool(4);
  auto ev = pool.acquire(1);
  PooledInt* raw = ev.get();
  pool.release(std::move(ev));
  EXPECT_EQ(pool.size(), 1u);
  auto again = pool.acquire(2);
  EXPECT_EQ(again.get(), raw);  // same instance came back
  EXPECT_EQ(again->value, 2);   // reset() re-initialized it
  EXPECT_EQ(pool.allocs(), 1u);
  EXPECT_EQ(pool.recycles(), 1u);
}

TEST(EventPool, CapacityBoundsRetention) {
  EventPool<PooledInt> pool(2);
  pool.release(std::make_unique<PooledInt>(0));
  pool.release(std::make_unique<PooledInt>(1));
  pool.release(std::make_unique<PooledInt>(2));  // over capacity: destroyed
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.overflow(), 1u);
}

TEST(EventPool, SteadyStateTrafficIsAllocationFree) {
  EventPool<PooledInt> pool(1);
  // Request/response ping-pong: one in flight at a time.
  for (int i = 0; i < 1000; ++i) pool.release(pool.acquire(i));
  EXPECT_EQ(pool.allocs(), 1u);
  EXPECT_EQ(pool.recycles(), 999u);
}

TEST(EventPool, ReleasingNullIsANoOp) {
  EventPool<PooledInt> pool(2);
  pool.release(nullptr);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.overflow(), 0u);
}

// The engine-side counterpart: a clock that never goes idle allocates its
// tick event exactly once and recycles it for every later cycle.
TEST(EventPool, ClockTickPoolAllocatesOnce) {
  Simulation sim;
  Params p;
  auto* ticker = sim.add_component<testing::Ticker>("tick", p);
  (void)ticker;
  const RunStats stats = sim.run();
  EXPECT_EQ(stats.pool_allocs, 1u);
  EXPECT_GT(stats.pool_recycles, 0u);
  EXPECT_EQ(stats.pool_allocs + stats.pool_recycles, stats.clock_ticks);
}

}  // namespace
}  // namespace sst
