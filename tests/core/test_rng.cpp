// RNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace sst::rng {
namespace {

TEST(Rng, XorShiftDeterministicPerSeed) {
  XorShift128Plus a(123), b(123), c(124);
  bool all_same = true;
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_same = all_same && (va == b.next());
    any_diff = any_diff || (va != c.next());
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DoubleInUnitInterval) {
  XorShift128Plus r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  XorShift128Plus r(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::uint64_t counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = r.next_bounded(kBuckets);
    ASSERT_LT(v, kBuckets);
    ++counts[v];
  }
  // Each bucket should be within 5% of the expected share.
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / 10.0, kSamples * 0.005);
  }
}

TEST(Rng, BoundedEdgeCases) {
  XorShift128Plus r(3);
  EXPECT_EQ(r.next_bounded(1), 0u);
  EXPECT_THROW((void)r.next_bounded(0), SimulationError);
  EXPECT_EQ(r.next_range(5, 5), 5u);
  EXPECT_THROW((void)r.next_range(6, 5), SimulationError);
  const std::uint64_t v = r.next_range(10, 20);
  EXPECT_GE(v, 10u);
  EXPECT_LE(v, 20u);
}

TEST(Rng, Pcg32StreamsDiffer) {
  Pcg32 a(1, 1), b(1, 2);
  bool differ = false;
  for (int i = 0; i < 16; ++i) differ = differ || (a.next() != b.next());
  EXPECT_TRUE(differ);
}

TEST(Rng, ExponentialMeanConverges) {
  XorShift128Plus r(17);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += exponential(r, 100.0);
  EXPECT_NEAR(sum / kSamples, 100.0, 2.0);
  EXPECT_THROW((void)exponential(r, 0.0), SimulationError);
}

TEST(Rng, PoissonMeanConverges) {
  XorShift128Plus r(23);
  double sum_small = 0, sum_large = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    sum_small += static_cast<double>(poisson(r, 4.0));
    sum_large += static_cast<double>(poisson(r, 100.0));  // normal approx
  }
  EXPECT_NEAR(sum_small / kSamples, 4.0, 0.1);
  EXPECT_NEAR(sum_large / kSamples, 100.0, 1.0);
}

TEST(Rng, DiscreteDistributionRespectsWeights) {
  DiscreteDistribution dist({1.0, 3.0, 6.0});
  XorShift128Plus r(31);
  std::uint64_t counts[3] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[dist.sample(r)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.6, 0.01);
}

TEST(Rng, DiscreteDistributionValidation) {
  EXPECT_THROW(DiscreteDistribution({}), SimulationError);
  EXPECT_THROW(DiscreteDistribution({1.0, -1.0}), SimulationError);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), SimulationError);
}

TEST(Rng, SplitMixAvalanche) {
  // Nearby seeds must produce wildly different outputs.
  SplitMix64 a(1), b(2);
  const std::uint64_t va = a.next();
  const std::uint64_t vb = b.next();
  int differing_bits = 0;
  for (std::uint64_t x = va ^ vb; x; x &= x - 1) ++differing_bits;
  EXPECT_GT(differing_bits, 10);
}

}  // namespace
}  // namespace sst::rng
