// Factory parameter-doc coverage: every registered component type must
// ship complete describe_params docs — --list-components and override
// error messages render them, and the MigrationPack test derives required
// params from them, so an undocumented type degrades all three.
#include <gtest/gtest.h>

#include <set>

#include "core/factory.h"
#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "vm/vm_lib.h"

namespace sst {
namespace {

void register_all_libraries() {
  mem::register_library();
  proc::register_library();
  net::register_library();
  vm::register_library();
}

TEST(ParamDocs, EveryRegisteredTypeIsDocumented) {
  register_all_libraries();
  const auto types = Factory::instance().registered_types();
  ASSERT_FALSE(types.empty());
  for (const auto& type : types) {
    const auto* docs = Factory::instance().param_docs(type);
    ASSERT_NE(docs, nullptr) << type << ": no describe_params call";
    EXPECT_FALSE(docs->empty()) << type << ": empty param docs";
    std::set<std::string> seen;
    for (const auto& d : *docs) {
      EXPECT_FALSE(d.name.empty()) << type << ": unnamed param";
      EXPECT_FALSE(d.description.empty())
          << type << "." << d.name << ": missing description";
      EXPECT_TRUE(seen.insert(d.name).second)
          << type << "." << d.name << ": documented twice";
    }
  }
}

TEST(ParamDocs, VmTypesAreRegistered) {
  register_all_libraries();
  const auto types = Factory::instance().registered_types();
  const std::set<std::string> all(types.begin(), types.end());
  EXPECT_TRUE(all.contains("vm.Tlb"));
  EXPECT_TRUE(all.contains("vm.PageTableWalker"));
}

}  // namespace
}  // namespace sst
