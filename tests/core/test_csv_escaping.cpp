// RFC 4180 CSV escaping in statistics dumps: component and statistic
// names chosen by models must never corrupt the row structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/statistics.h"

namespace sst {
namespace {

TEST(CsvEscaping, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with space"), "with space");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("dots.and-dashes_ok"), "dots.and-dashes_ok");
}

TEST(CsvEscaping, CommaForcesQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscaping, EmbeddedQuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  // A field that is nothing but a quote.
  EXPECT_EQ(csv_escape("\""), "\"\"\"\"");
}

TEST(CsvEscaping, NewlinesForceQuoting) {
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape("cr\rlf"), "\"cr\rlf\"");
}

TEST(CsvEscaping, RegistryDumpQuotesHostileNames) {
  StatisticsRegistry reg;
  auto* c = reg.create<Counter>("comp,with\"everything\"", "evil\nstat");
  c->add(3);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string out = os.str();
  // The hostile component name appears exactly once, quoted and doubled.
  EXPECT_NE(out.find("\"comp,with\"\"everything\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"evil\nstat\""), std::string::npos);
  // Every data row still has the same column count as the header.
  // Count unquoted commas on the header line.
  const std::string header = out.substr(0, out.find('\n'));
  const auto commas = static_cast<int>(
      std::count(header.begin(), header.end(), ','));
  EXPECT_GE(commas, 3);
}

}  // namespace
}  // namespace sst
