// Statistics engine: accumulators, histograms, registry output.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/statistics.h"

namespace sst {
namespace {

TEST(Statistics, CounterAccumulates) {
  Counter c("comp", "hits");
  c.add();
  c.add(9);
  EXPECT_EQ(c.count(), 10u);
  const auto f = c.fields();
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].name, "count");
  EXPECT_DOUBLE_EQ(f[0].value, 10.0);
}

TEST(Statistics, AccumulatorMoments) {
  Accumulator a("comp", "lat");
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Statistics, AccumulatorEmptyIsSafe) {
  Accumulator a("comp", "empty");
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Statistics, HistogramBinning) {
  Histogram h("comp", "lat", 0.0, 10.0, 10);  // [0,100) in 10 bins
  h.add(-5.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.99);   // bin 0
  h.add(10.0);   // bin 1
  h.add(55.0);   // bin 5
  h.add(99.9);   // bin 9
  h.add(100.0);  // overflow
  h.add(1e9);    // overflow
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Statistics, HistogramPercentiles) {
  Histogram h("comp", "lat", 0.0, 1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // p50 is near 50, p99 near 99 (bin resolution).
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_THROW((void)h.percentile(1.5), ConfigError);
}

TEST(Statistics, HistogramValidation) {
  EXPECT_THROW(Histogram("c", "h", 0.0, 0.0, 4), ConfigError);
  EXPECT_THROW(Histogram("c", "h", 0.0, 1.0, 0), ConfigError);
}

TEST(Statistics, RegistryFindAndOutput) {
  StatisticsRegistry reg;
  auto* c = reg.create<Counter>("cpu0", "loads");
  c->add(3);
  auto* a = reg.create<Accumulator>("cpu0", "latency");
  a->add(1.5);

  EXPECT_EQ(reg.find("cpu0", "loads"), c);
  EXPECT_EQ(reg.find("cpu0", "nope"), nullptr);
  EXPECT_EQ(reg.all().size(), 2u);

  std::ostringstream console;
  reg.write_console(console);
  EXPECT_NE(console.str().find("cpu0.loads"), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("component,statistic,field,value"), std::string::npos);
  EXPECT_NE(text.find("cpu0,loads,count,3"), std::string::npos);
}

TEST(Statistics, VarianceGuardsAgainstRounding) {
  Accumulator a("c", "x");
  // Identical large values: naive two-pass formula could go slightly
  // negative; we clamp to zero.
  for (int i = 0; i < 100; ++i) a.add(1e15);
  EXPECT_GE(a.variance(), 0.0);
}

}  // namespace
}  // namespace sst
