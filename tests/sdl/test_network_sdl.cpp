// Network sections in JSON system descriptions.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "sdl/config_graph.h"

namespace sst::sdl {
namespace {

const char* kHaloSystem = R"({
  "config": {"seed": 3},
  "components": [
    {"name": "rank0", "type": "net.HaloExchange",
     "params": {"px": 2, "py": 2, "pz": 1, "msg_bytes": 4096,
                "compute": "5us", "iterations": 3}},
    {"name": "rank1", "type": "net.HaloExchange",
     "params": {"px": 2, "py": 2, "pz": 1, "msg_bytes": 4096,
                "compute": "5us", "iterations": 3}},
    {"name": "rank2", "type": "net.HaloExchange",
     "params": {"px": 2, "py": 2, "pz": 1, "msg_bytes": 4096,
                "compute": "5us", "iterations": 3}},
    {"name": "rank3", "type": "net.HaloExchange",
     "params": {"px": 2, "py": 2, "pz": 1, "msg_bytes": 4096,
                "compute": "5us", "iterations": 3}}
  ],
  "links": [],
  "network": {
    "topology": "torus2d", "x": 2, "y": 2,
    "link_bandwidth": "10GB/s", "link_latency": "20ns",
    "endpoints": ["rank0", "rank1", "rank2", "rank3"]
  }
})";

TEST(NetworkSdl, HaloSystemFromJsonRuns) {
  net::register_library();
  const ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
  ASSERT_TRUE(g.network().present);
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
  auto sim = g.build();
  sim->run();
  for (int i = 0; i < 4; ++i) {
    auto* m = dynamic_cast<net::HaloExchangeMotif*>(
        sim->find_component("rank" + std::to_string(i)));
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->motif_finished());
    EXPECT_EQ(m->messages_sent(), 4u * 3);  // 4 neighbours x 3 iterations
  }
  // Routers were created by the builder.
  EXPECT_NE(sim->find_component("rtr0"), nullptr);
}

TEST(NetworkSdl, ValidationCatchesMistakes) {
  net::register_library();
  // Wrong endpoint count.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
    g.network().endpoints.pop_back();
    const auto problems = g.validate(Factory::instance());
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("expects"), std::string::npos);
  }
  // Unknown endpoint.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
    g.network().endpoints[0] = "ghost";
    EXPECT_FALSE(g.validate(Factory::instance()).empty());
  }
  // Duplicate endpoint.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
    g.network().endpoints[1] = g.network().endpoints[0];
    EXPECT_FALSE(g.validate(Factory::instance()).empty());
  }
}

TEST(NetworkSdl, NonEndpointComponentRejectedAtBuild) {
  net::register_library();
  mem::register_library();
  ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
  // Replace one motif with a memory controller: passes structural
  // validation (it is a known component) but fails the endpoint cast.
  g.add_component("mc", "mem.MemoryController", Params{{"backend", "simple"}});
  g.network().endpoints[3] = "mc";
  // The orphaned motif and controller port would also fail wiring, but
  // the endpoint type check fires first.
  EXPECT_THROW((void)g.build(), ConfigError);
}

TEST(NetworkSdl, UnknownTopologyAndRoutingRejected) {
  EXPECT_THROW(ConfigGraph::from_json_text(
                   R"({"network": {"topology": "hypercube",
                       "endpoints": []}})"),
               ConfigError);
  EXPECT_THROW(ConfigGraph::from_json_text(
                   R"({"network": {"topology": "torus2d",
                       "routing": "psychic", "endpoints": []}})"),
               ConfigError);
}

TEST(NetworkSdl, JsonRoundTripPreservesNetwork) {
  net::register_library();
  const ConfigGraph g = ConfigGraph::from_json_text(kHaloSystem);
  const ConfigGraph g2 = ConfigGraph::from_json(g.to_json());
  ASSERT_TRUE(g2.network().present);
  EXPECT_EQ(g2.network().spec.kind, net::TopologySpec::Kind::kTorus2D);
  EXPECT_EQ(g2.network().spec.x, 2u);
  EXPECT_EQ(g2.network().endpoints.size(), 4u);
  auto sim = g2.build();
  sim->run();
  EXPECT_TRUE(dynamic_cast<net::HaloExchangeMotif*>(
                  sim->find_component("rank0"))
                  ->motif_finished());
}

TEST(NetworkSdl, ValiantRoutingFromJson) {
  net::register_library();
  std::string doc = kHaloSystem;
  doc.replace(doc.find("\"topology\": \"torus2d\""),
              std::string("\"topology\": \"torus2d\"").size(),
              "\"topology\": \"torus2d\", \"routing\": \"valiant\"");
  const ConfigGraph g = ConfigGraph::from_json_text(doc);
  EXPECT_EQ(g.network().spec.routing, net::TopologySpec::Routing::kValiant);
  auto sim = g.build();
  sim->run();
  EXPECT_TRUE(dynamic_cast<net::HaloExchangeMotif*>(
                  sim->find_component("rank3"))
                  ->motif_finished());
}

}  // namespace
}  // namespace sst::sdl
