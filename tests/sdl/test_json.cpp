// JSON parser/serializer.
#include <gtest/gtest.h>

#include "sdl/json.h"

namespace sst::sdl {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const auto v = JsonValue::parse(R"({
    "name": "cpu0",
    "params": {"clock": "2GHz", "width": 4},
    "tags": [1, 2, 3],
    "enabled": true
  })");
  EXPECT_EQ(v.at("name").as_string(), "cpu0");
  EXPECT_EQ(v.at("params").at("clock").as_string(), "2GHz");
  EXPECT_DOUBLE_EQ(v.at("params").at("width").as_number(), 4.0);
  ASSERT_EQ(v.at("tags").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("tags").as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v.at("enabled").as_bool());
}

TEST(Json, StringEscapes) {
  const auto v = JsonValue::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, CommentsAndTrailingCommas) {
  const auto v = JsonValue::parse(R"({
    // a comment
    "a": 1,     // trailing comment
    "b": [1, 2,],
  })");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("b").as_array().size(), 2u);
}

TEST(Json, Accessors) {
  const auto v = JsonValue::parse(R"({"s": "x", "n": 7, "b": true})");
  EXPECT_TRUE(v.has("s"));
  EXPECT_FALSE(v.has("zzz"));
  EXPECT_EQ(v.get_string("s", "d"), "x");
  EXPECT_EQ(v.get_string("zzz", "d"), "d");
  EXPECT_DOUBLE_EQ(v.get_number("n", 0), 7.0);
  EXPECT_DOUBLE_EQ(v.get_number("zzz", 9), 9.0);
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_TRUE(v.get_bool("zzz", true));
}

TEST(Json, ErrorsCarryLineNumbers) {
  try {
    JsonValue::parse("{\n  \"a\": 1,\n  \"b\" 2\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Json, MalformedInputs) {
  EXPECT_THROW(JsonValue::parse(""), JsonError);
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1 2]"), JsonError);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(JsonValue::parse("tru"), JsonError);
  EXPECT_THROW(JsonValue::parse("1 2"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const auto v = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW((void)v.as_array(), JsonError);
  EXPECT_THROW((void)v.at("a").as_string(), JsonError);
  EXPECT_THROW((void)v.at("missing"), JsonError);
  EXPECT_THROW((void)JsonValue::parse("3").as_bool(), JsonError);
}

TEST(Json, DumpRoundTrips) {
  const char* doc = R"({"a":[1,2,{"b":"x"}],"c":true,"d":null,"e":2.5})";
  const auto v = JsonValue::parse(doc);
  const auto reparsed = JsonValue::parse(v.dump());
  EXPECT_EQ(reparsed.at("a").as_array().size(), 3u);
  EXPECT_EQ(reparsed.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(reparsed.at("c").as_bool());
  EXPECT_TRUE(reparsed.at("d").is_null());
  EXPECT_DOUBLE_EQ(reparsed.at("e").as_number(), 2.5);
}

TEST(Json, PrettyPrintParses) {
  const auto v = JsonValue::parse(R"({"a": [1, 2], "b": {"c": 3}})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto reparsed = JsonValue::parse(pretty);
  EXPECT_DOUBLE_EQ(reparsed.at("b").at("c").as_number(), 3.0);
}

TEST(Json, IntegersDumpWithoutDecimals) {
  JsonObject o;
  o["n"] = JsonValue(42.0);
  EXPECT_EQ(JsonValue(std::move(o)).dump(), "{\"n\":42}");
}

}  // namespace
}  // namespace sst::sdl
