// ConfigGraph: validation, JSON round trip, factory-driven build.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"

namespace sst::sdl {
namespace {

ConfigGraph small_system() {
  mem::register_library();
  proc::register_library();
  ConfigGraph g;
  g.add_component("cpu0", "proc.Core",
                  Params{{"clock", "1GHz"},
                         {"issue_width", "2"},
                         {"workload", "stream"},
                         {"elements", "2048"},
                         {"iterations", "1"}});
  g.add_component("mc0", "mem.MemoryController",
                  Params{{"backend", "simple"}, {"latency", "50ns"}});
  g.add_link("cpu0", "mem", "mc0", "cpu", "2ns");
  return g;
}

TEST(ConfigGraph, ValidGraphBuildsAndRuns) {
  const ConfigGraph g = small_system();
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
  auto sim = g.build();
  const RunStats stats = sim->run();
  EXPECT_GT(stats.events_processed, 0u);
  auto* core = dynamic_cast<proc::Core*>(sim->find_component("cpu0"));
  ASSERT_NE(core, nullptr);
  EXPECT_TRUE(core->done());
}

TEST(ConfigGraph, DetectsUnknownType) {
  ConfigGraph g = small_system();
  g.add_component("x", "bogus.Type");
  const auto problems = g.validate(Factory::instance());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("bogus.Type"), std::string::npos);
  EXPECT_THROW((void)g.build(), ConfigError);
}

TEST(ConfigGraph, DetectsDuplicateNamesAndPorts) {
  mem::register_library();
  ConfigGraph g;
  g.add_component("a", "mem.MemoryController", Params{{"backend", "simple"}});
  g.add_component("a", "mem.MemoryController", Params{{"backend", "simple"}});
  g.add_link("a", "cpu", "a", "cpu", "1ns");
  const auto problems = g.validate(Factory::instance());
  bool dup_name = false, dup_port = false;
  for (const auto& p : problems) {
    if (p.find("duplicate component name") != std::string::npos)
      dup_name = true;
    if (p.find("port used twice") != std::string::npos) dup_port = true;
  }
  EXPECT_TRUE(dup_name);
  EXPECT_TRUE(dup_port);
}

TEST(ConfigGraph, DetectsBadLinkEndpointsAndLatency) {
  mem::register_library();
  ConfigGraph g;
  g.add_component("a", "mem.MemoryController", Params{{"backend", "simple"}});
  g.add_link("a", "cpu", "ghost", "port", "banana");
  const auto problems = g.validate(Factory::instance());
  bool unknown = false, bad_lat = false;
  for (const auto& p : problems) {
    if (p.find("unknown component 'ghost'") != std::string::npos)
      unknown = true;
    if (p.find("bad latency") != std::string::npos) bad_lat = true;
  }
  EXPECT_TRUE(unknown);
  EXPECT_TRUE(bad_lat);
}

TEST(ConfigGraph, JsonRoundTrip) {
  const ConfigGraph g = small_system();
  const JsonValue doc = g.to_json();
  const ConfigGraph g2 = ConfigGraph::from_json(doc);
  ASSERT_EQ(g2.components().size(), 2u);
  EXPECT_EQ(g2.components()[0].name, "cpu0");
  EXPECT_EQ(g2.components()[0].type, "proc.Core");
  EXPECT_EQ(*g2.components()[0].params.raw("clock"), "1GHz");
  ASSERT_EQ(g2.links().size(), 1u);
  EXPECT_EQ(g2.links()[0].latency, "2ns");
  // And the round-tripped graph still runs.
  auto sim = g2.build();
  sim->run();
  EXPECT_TRUE(
      dynamic_cast<proc::Core*>(sim->find_component("cpu0"))->done());
}

TEST(ConfigGraph, FromJsonTextFullDocument) {
  mem::register_library();
  proc::register_library();
  const char* doc = R"({
    "config": {"end_time": "1ms", "num_ranks": 1, "seed": 5,
               "partition": "roundrobin"},
    "components": [
      {"name": "cpu0", "type": "proc.Core",
       "params": {"workload": "stream", "elements": 1024,
                  "iterations": 1, "clock": "1GHz"}},
      {"name": "mc0", "type": "mem.MemoryController",
       "params": {"backend": "simple"}}
    ],
    "links": [
      {"from": "cpu0", "from_port": "mem", "to": "mc0", "to_port": "cpu",
       "latency": "1ns"}
    ]
  })";
  const ConfigGraph g = ConfigGraph::from_json_text(doc);
  EXPECT_EQ(g.sim_config().end_time, kMillisecond);
  EXPECT_EQ(g.sim_config().seed, 5u);
  EXPECT_EQ(g.sim_config().partition, PartitionStrategy::kRoundRobin);
  auto sim = g.build();
  sim->run();
  EXPECT_TRUE(
      dynamic_cast<proc::Core*>(sim->find_component("cpu0"))->done());
}

TEST(ConfigGraph, RankPinningThroughJson) {
  mem::register_library();
  const char* doc = R"({
    "config": {"num_ranks": 2},
    "components": [
      {"name": "a", "type": "mem.MemoryController",
       "params": {"backend": "simple"}, "rank": 1}
    ],
    "links": []
  })";
  const ConfigGraph g = ConfigGraph::from_json_text(doc);
  ASSERT_TRUE(g.components()[0].rank.has_value());
  EXPECT_EQ(*g.components()[0].rank, 1u);
  // Rank out of range is caught by validation.
  ConfigGraph bad = g;
  bad.sim_config().num_ranks = 1;
  EXPECT_FALSE(bad.validate(Factory::instance()).empty());
}

TEST(ConfigGraph, UnknownPartitionStrategyThrows) {
  EXPECT_THROW(ConfigGraph::from_json_text(
                   R"({"config": {"partition": "magic"}})"),
               ConfigError);
}

TEST(ConfigGraph, UnknownPartitionStrategyListsKnownOnes) {
  try {
    (void)ConfigGraph::from_json_text(
        R"({"config": {"partition": "magic"}})");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("linear"), std::string::npos) << msg;
    EXPECT_NE(msg.find("roundrobin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mincut"), std::string::npos) << msg;
  }
}

TEST(ConfigGraph, PartitionAndRankSurviveEmitReparseByteIdentical) {
  mem::register_library();
  const char* doc = R"({
    "config": {"num_ranks": 2, "partition": "mincut"},
    "components": [
      {"name": "a", "type": "mem.MemoryController",
       "params": {"backend": "simple"}, "rank": 1},
      {"name": "b", "type": "mem.MemoryController",
       "params": {"backend": "simple"}}
    ],
    "links": []
  })";
  const ConfigGraph g = ConfigGraph::from_json_text(doc);
  EXPECT_EQ(g.sim_config().partition, PartitionStrategy::kMinCut);
  const std::string emitted = g.to_json().dump(2);
  const ConfigGraph g2 = ConfigGraph::from_json_text(emitted);
  EXPECT_EQ(g2.sim_config().partition, PartitionStrategy::kMinCut);
  ASSERT_TRUE(g2.components()[0].rank.has_value());
  EXPECT_EQ(*g2.components()[0].rank, 1u);
  EXPECT_FALSE(g2.components()[1].rank.has_value());
  // Emit -> re-parse -> emit is byte-identical.
  EXPECT_EQ(g2.to_json().dump(2), emitted);
}

TEST(ConfigGraph, ApplyOverrideRewritesConfigParamsAndLinks) {
  ConfigGraph g = small_system();
  g.apply_override("/config/seed", "99");
  g.apply_override("/config/partition", "roundrobin");
  g.apply_override("/components/cpu0/params/elements", "4096");
  g.apply_override("/components/cpu0/rank", "0");
  g.apply_override("/links/0/latency", "7ns");
  EXPECT_EQ(g.sim_config().seed, 99u);
  EXPECT_EQ(g.sim_config().partition, PartitionStrategy::kRoundRobin);
  EXPECT_EQ(*g.components()[0].params.raw("elements"), "4096");
  ASSERT_TRUE(g.components()[0].rank.has_value());
  EXPECT_EQ(*g.components()[0].rank, 0u);
  EXPECT_EQ(g.links()[0].latency, "7ns");
  // The overridden graph still validates and runs.
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
}

TEST(ConfigGraph, ApplyOverrideErrorsNameTheAlternatives) {
  ConfigGraph g = small_system();
  try {
    g.apply_override("/components/ghost/params/x", "1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    // Unknown component: the message lists the components that exist.
    EXPECT_NE(msg.find("cpu0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mc0"), std::string::npos) << msg;
  }
  try {
    g.apply_override("/config/bogus_key", "1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
  EXPECT_THROW(g.apply_override("/links/5/latency", "1ns"), ConfigError);
  EXPECT_THROW(g.apply_override("no-leading-slash", "1"), ConfigError);
  // No network section in this model.
  EXPECT_THROW(g.apply_override("/network/link_latency", "1ns"),
               ConfigError);
}

}  // namespace
}  // namespace sst::sdl
