// "faults" sections in JSON system descriptions: parsing, validation,
// round trip, and an end-to-end degraded-fabric run.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "net/motifs.h"
#include "net/net_lib.h"
#include "net/router.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"

namespace sst::sdl {
namespace {

const char* kFaultySystem = R"({
  "config": {"seed": 3, "fault_seed": 99, "watchdog_seconds": 60,
             "end_time": "1s"},
  "components": [
    {"name": "rank0", "type": "net.Allreduce",
     "params": {"iterations": 20, "msg_bytes": 64, "ack": true,
                "retry_max": 8, "retry_timeout": "20us"}},
    {"name": "rank1", "type": "net.Allreduce",
     "params": {"iterations": 20, "msg_bytes": 64, "ack": true,
                "retry_max": 8, "retry_timeout": "20us"}},
    {"name": "rank2", "type": "net.Allreduce",
     "params": {"iterations": 20, "msg_bytes": 64, "ack": true,
                "retry_max": 8, "retry_timeout": "20us"}},
    {"name": "rank3", "type": "net.Allreduce",
     "params": {"iterations": 20, "msg_bytes": 64, "ack": true,
                "retry_max": 8, "retry_timeout": "20us"}}
  ],
  "links": [],
  "network": {
    "topology": "torus2d", "x": 2, "y": 2,
    "link_bandwidth": "10GB/s", "link_latency": "20ns",
    "endpoints": ["rank0", "rank1", "rank2", "rank3"]
  },
  "faults": {
    "links": [
      {"component": "rank0", "port": "net", "drop": 0.2,
       "delay": 0.3, "delay_min": "5ns", "delay_max": "50ns"}
    ],
    "ports": [
      {"router": "rtr0", "port": 0, "fail_at": "5us", "heal_at": "12us"}
    ]
  }
})";

TEST(FaultsSdl, ParsesFaultSection) {
  net::register_library();
  const ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
  EXPECT_EQ(g.sim_config().fault_seed, 99u);
  EXPECT_EQ(g.sim_config().watchdog_seconds, 60.0);
  EXPECT_TRUE(g.sim_config().detect_deadlock);
  ASSERT_EQ(g.faults().links.size(), 1u);
  const ConfigLinkFault& lf = g.faults().links[0];
  EXPECT_EQ(lf.component, "rank0");
  EXPECT_EQ(lf.port, "net");
  EXPECT_DOUBLE_EQ(lf.drop, 0.2);
  EXPECT_DOUBLE_EQ(lf.delay, 0.3);
  EXPECT_EQ(lf.delay_min, "5ns");
  EXPECT_EQ(lf.delay_max, "50ns");
  EXPECT_FALSE(lf.both);
  ASSERT_EQ(g.faults().ports.size(), 1u);
  const ConfigPortFault& pf = g.faults().ports[0];
  EXPECT_EQ(pf.router, "rtr0");
  EXPECT_EQ(pf.port, 0u);
  EXPECT_EQ(pf.fail_at, "5us");
  ASSERT_TRUE(pf.heal_at.has_value());
  EXPECT_EQ(*pf.heal_at, "12us");
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
}

TEST(FaultsSdl, JsonRoundTripPreservesFaults) {
  net::register_library();
  const ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
  const ConfigGraph g2 = ConfigGraph::from_json(g.to_json());
  EXPECT_EQ(g2.sim_config().fault_seed, 99u);
  ASSERT_EQ(g2.faults().links.size(), 1u);
  EXPECT_EQ(g2.faults().links[0].component, "rank0");
  EXPECT_DOUBLE_EQ(g2.faults().links[0].drop, 0.2);
  ASSERT_EQ(g2.faults().ports.size(), 1u);
  EXPECT_EQ(g2.faults().ports[0].router, "rtr0");
  ASSERT_TRUE(g2.faults().ports[0].heal_at.has_value());
}

TEST(FaultsSdl, ValidationCatchesMistakes) {
  net::register_library();
  // Unknown component on a link fault.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
    g.faults().links[0].component = "ghost";
    const auto problems = g.validate(Factory::instance());
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("ghost"), std::string::npos);
  }
  // Probability out of range.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
    g.faults().links[0].drop = 1.5;
    EXPECT_FALSE(g.validate(Factory::instance()).empty());
  }
  // Inverted delay bounds.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
    g.faults().links[0].delay_min = "1us";
    EXPECT_FALSE(g.validate(Factory::instance()).empty());
  }
  // heal_at before fail_at.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
    g.faults().ports[0].heal_at = "1us";
    EXPECT_FALSE(g.validate(Factory::instance()).empty());
  }
  // "both" needs an explicit link to find the peer.
  {
    ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
    g.faults().links[0].both = true;
    const auto problems = g.validate(Factory::instance());
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("both"), std::string::npos);
  }
}

TEST(FaultsSdl, DegradedFabricRunCompletes) {
  net::register_library();
  const ConfigGraph g = ConfigGraph::from_json_text(kFaultySystem);
  auto sim = g.build();
  // The fault rules materialized: counters exist, the router port dies
  // and heals on schedule, and the reliable endpoints still finish.
  EXPECT_NE(sim->stats().find("rank0", "net.fault_dropped"), nullptr);
  sim->run();
  for (int i = 0; i < 4; ++i) {
    auto* m = dynamic_cast<net::AllreduceMotif*>(
        sim->find_component("rank" + std::to_string(i)));
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->motif_finished()) << m->name();
    EXPECT_EQ(m->delivery_failures(), 0u);
  }
  auto* rtr = dynamic_cast<net::Router*>(sim->find_component("rtr0"));
  ASSERT_NE(rtr, nullptr);
  EXPECT_TRUE(rtr->port_alive(0));  // healed by end of run
  const auto* flips = dynamic_cast<const Counter*>(
      sim->stats().find("rtr0", "port_fault_events"));
  ASSERT_NE(flips, nullptr);
  EXPECT_EQ(flips->count(), 2u);
  const auto* dropped = dynamic_cast<const Counter*>(
      sim->stats().find("rank0", "net.fault_dropped"));
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->count(), 0u);
}

TEST(FaultsSdl, ExplicitLinkBothFaultsBothEndpoints) {
  mem::register_library();
  proc::register_library();
  const char* text = R"({
    "config": {"seed": 1},
    "components": [
      {"name": "cpu0", "type": "proc.Core",
       "params": {"clock": "1GHz", "issue_width": "2",
                  "workload": "stream", "elements": 1024,
                  "iterations": 1}},
      {"name": "mc0", "type": "mem.MemoryController",
       "params": {"backend": "simple", "latency": "50ns"}}
    ],
    "links": [
      {"from": "cpu0", "from_port": "mem", "to": "mc0", "to_port": "cpu",
       "latency": "2ns"}
    ],
    "faults": {
      "links": [
        {"component": "cpu0", "port": "mem", "delay": 0.25,
         "delay_min": "1ns", "delay_max": "8ns", "both": true}
      ]
    }
  })";
  const ConfigGraph g = ConfigGraph::from_json_text(text);
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
  auto sim = g.build();
  // Both directions got their own model.
  EXPECT_NE(sim->stats().find("cpu0", "mem.fault_delayed"), nullptr);
  EXPECT_NE(sim->stats().find("mc0", "cpu.fault_delayed"), nullptr);
  sim->run();
  const auto* fwd = dynamic_cast<const Counter*>(
      sim->stats().find("cpu0", "mem.fault_delayed"));
  const auto* back = dynamic_cast<const Counter*>(
      sim->stats().find("mc0", "cpu.fault_delayed"));
  EXPECT_GT(fwd->count() + back->count(), 0u);
}

}  // namespace
}  // namespace sst::sdl
