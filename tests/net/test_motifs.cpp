// Communication motifs: correctness of the skeleton state machines and
// the performance signatures the bandwidth study relies on.
#include <gtest/gtest.h>

#include "net/motifs.h"
#include "net/topology.h"

namespace sst::net {
namespace {

template <typename M>
struct MotifRig {
  Simulation sim{SimConfig{.end_time = 10 * kSecond}};
  std::vector<M*> motifs;

  explicit MotifRig(std::uint32_t nodes, Params params,
                    TopologySpec spec = TopologySpec()) {
    std::vector<NetEndpoint*> eps;
    for (std::uint32_t i = 0; i < nodes; ++i) {
      Params p = params;
      motifs.push_back(
          sim.add_component<M>("rank" + std::to_string(i), p));
      eps.push_back(motifs.back());
    }
    if (spec.expected_nodes() != nodes) {
      // Default wiring: 1-D torus of `nodes` routers.
      spec.kind = TopologySpec::Kind::kTorus2D;
      spec.x = nodes;
      spec.y = 1;
    }
    build_topology(sim, spec, eps);
  }

  SimTime run_and_time() {
    sim.run();
    SimTime completion = 0;
    for (const auto* m : motifs) {
      EXPECT_TRUE(m->motif_finished()) << m->name();
      completion = std::max(completion, m->completion_time());
    }
    return completion;
  }
};

TEST(Motifs, PingPongCompletesAndScalesWithIterations) {
  Params p10;
  p10.set("iterations", "10");
  MotifRig<PingPongMotif> rig10(4, p10);
  const SimTime t10 = rig10.run_and_time();

  Params p40;
  p40.set("iterations", "40");
  MotifRig<PingPongMotif> rig40(4, p40);
  const SimTime t40 = rig40.run_and_time();

  EXPECT_GT(t40, 3 * t10);
  // Idle ranks (2, 3) finish immediately.
  EXPECT_LT(rig10.motifs[2]->completion_time(), kMicrosecond);
}

TEST(Motifs, PingPongMessageCounts) {
  Params p;
  p.set("iterations", "25");
  MotifRig<PingPongMotif> rig(2, p);
  rig.run_and_time();
  EXPECT_EQ(rig.motifs[0]->messages_sent(), 25u);
  EXPECT_EQ(rig.motifs[1]->messages_sent(), 25u);
  EXPECT_EQ(rig.motifs[0]->messages_received(), 25u);
}

TEST(Motifs, HaloExchangeCompletes) {
  Params p;
  p.set("px", "2");
  p.set("py", "2");
  p.set("pz", "2");
  p.set("msg_bytes", "4096");
  p.set("compute", "5us");
  p.set("iterations", "4");
  MotifRig<HaloExchangeMotif> rig(8, p);
  const SimTime t = rig.run_and_time();
  // At least iterations * compute time.
  EXPECT_GE(t, 4u * 5 * kMicrosecond);
  // Every rank exchanged 6 messages per iteration.
  for (const auto* m : rig.motifs) {
    EXPECT_EQ(m->messages_sent(), 6u * 4);
    EXPECT_EQ(m->messages_received(), 6u * 4);
  }
}

TEST(Motifs, HaloGridMismatchThrows) {
  Params p;
  p.set("px", "3");
  p.set("py", "3");
  p.set("pz", "1");
  MotifRig<HaloExchangeMotif> rig(4, p);
  EXPECT_THROW(rig.sim.run(), ConfigError);
}

TEST(Motifs, AllreduceButterflyMessageCount) {
  Params p;
  p.set("iterations", "10");
  p.set("msg_bytes", "8");
  MotifRig<AllreduceMotif> rig(8, p);
  rig.run_and_time();
  // Recursive doubling: log2(8) = 3 sends per rank per iteration.
  for (const auto* m : rig.motifs) {
    EXPECT_EQ(m->messages_sent(), 30u);
    EXPECT_EQ(m->messages_received(), 30u);
  }
}

TEST(Motifs, AllreduceRequiresPowerOfTwo) {
  Params p;
  MotifRig<AllreduceMotif> rig(6, p);
  EXPECT_THROW(rig.sim.run(), ConfigError);
}

TEST(Motifs, AllreduceLatencyBoundNotBandwidthBound) {
  // Small allreduces care about latency, not injection bandwidth: cutting
  // bandwidth 8x changes runtime by only a little.
  auto run_with_bw = [](const char* bw) {
    Params p;
    p.set("iterations", "50");
    p.set("msg_bytes", "16");
    p.set("compute", "2us");
    p.set("injection_bw", bw);
    MotifRig<AllreduceMotif> rig(8, p);
    return rig.run_and_time();
  };
  const SimTime full = run_with_bw("3.2GB/s");
  const SimTime eighth = run_with_bw("0.4GB/s");
  const double slowdown =
      static_cast<double>(eighth) / static_cast<double>(full);
  EXPECT_LT(slowdown, 1.15);
}

TEST(Motifs, HaloLargeMessagesAreBandwidthBound) {
  auto run_with_bw = [](const char* bw) {
    Params p;
    p.set("px", "4");
    p.set("py", "2");
    p.set("pz", "1");
    p.set("msg_bytes", "1MiB");
    p.set("compute", "100us");
    p.set("iterations", "3");
    p.set("injection_bw", bw);
    MotifRig<HaloExchangeMotif> rig(8, p);
    return rig.run_and_time();
  };
  const SimTime full = run_with_bw("3.2GB/s");
  const SimTime eighth = run_with_bw("0.4GB/s");
  const double slowdown =
      static_cast<double>(eighth) / static_cast<double>(full);
  EXPECT_GT(slowdown, 2.0);
}

TEST(Motifs, AllToAllCompletes) {
  Params p;
  p.set("iterations", "3");
  p.set("msg_bytes", "1024");
  MotifRig<AllToAllMotif> rig(6, p);
  rig.run_and_time();
  for (const auto* m : rig.motifs) {
    EXPECT_EQ(m->messages_sent(), 3u * 5);
    EXPECT_EQ(m->messages_received(), 3u * 5);
  }
}

TEST(Motifs, AppProfileComposesPhases) {
  Params p;
  p.set("px", "2");
  p.set("py", "2");
  p.set("pz", "2");
  p.set("compute", "10us");
  p.set("halo_bytes", "8192");
  p.set("collective_bytes", "16");
  p.set("collective_count", "2");
  p.set("iterations", "3");
  MotifRig<AppProfileMotif> rig(8, p);
  const SimTime t = rig.run_and_time();
  EXPECT_GE(t, 30 * kMicrosecond);
  for (const auto* m : rig.motifs) {
    // 6 halo + 2 collectives x log2(8) rounds, per iteration.
    EXPECT_EQ(m->messages_sent(), 3u * (6 + 2 * 3));
  }
}

TEST(Motifs, AppProfileComputeOnlyDegeneratesGracefully) {
  Params p;
  p.set("px", "1");
  p.set("py", "1");
  p.set("pz", "1");
  p.set("compute", "5us");
  p.set("halo_bytes", "0");
  p.set("collective_bytes", "0");
  p.set("iterations", "4");
  Simulation sim(SimConfig{.end_time = kSecond});
  Params ep = p;
  auto* m = sim.add_component<AppProfileMotif>("solo", ep);
  // Single node still needs a router to satisfy the "net" port.
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 1;
  s.y = 1;
  build_topology(sim, s, {m});
  sim.run();
  EXPECT_TRUE(m->motif_finished());
  EXPECT_GE(m->completion_time(), 20 * kMicrosecond);
  EXPECT_EQ(m->messages_sent(), 0u);
}

TEST(Motifs, SweepWavefrontOrderAndCompletion) {
  Params p;
  p.set("px", "3");
  p.set("py", "3");
  p.set("msg_bytes", "4096");
  p.set("compute", "10us");
  p.set("sweeps", "4");
  MotifRig<SweepMotif> rig(9, p);
  rig.run_and_time();
  // The corner rank finishes first; the far corner finishes last, after
  // the wavefront has crossed the diagonal.
  const SimTime t_corner = rig.motifs[0]->completion_time();
  const SimTime t_far = rig.motifs[8]->completion_time();
  EXPECT_LT(t_corner, t_far);
  // Far corner needs at least (px-1 + py-1 + 1) stages of the last sweep.
  EXPECT_GE(t_far, 4u * 10 * kMicrosecond);
  // Message counts: rank (ix,iy) sends one east (if any) + one south per
  // sweep.
  EXPECT_EQ(rig.motifs[0]->messages_sent(), 2u * 4);  // corner: E + S
  EXPECT_EQ(rig.motifs[8]->messages_sent(), 0u);      // far corner: none
  EXPECT_EQ(rig.motifs[4]->messages_sent(), 2u * 4);  // centre: E + S
}

TEST(Motifs, SweepPipelinesSuccessiveSweeps) {
  auto run_sweeps = [](std::uint32_t sweeps) {
    Params p;
    p.set("px", "4");
    p.set("py", "1");
    p.set("msg_bytes", "1024");
    p.set("compute", "10us");
    p.set("sweeps", std::to_string(sweeps));
    MotifRig<SweepMotif> rig(4, p);
    return rig.run_and_time();
  };
  const SimTime t4 = run_sweeps(4);
  const SimTime t12 = run_sweeps(12);
  // Pipelined: +8 sweeps costs ~8 stage-times, not 8 full pipeline fills.
  const SimTime delta = t12 - t4;
  EXPECT_LT(delta, 8u * 4 * 11 * kMicrosecond);
  EXPECT_GE(delta, 8u * 10 * kMicrosecond);
}

TEST(Motifs, SweepGridMismatchThrows) {
  Params p;
  p.set("px", "3");
  p.set("py", "2");
  MotifRig<SweepMotif> rig(4, p);
  EXPECT_THROW(rig.sim.run(), ConfigError);
}

TEST(Motifs, DeterministicCompletionTimes) {
  auto run_once = [] {
    Params p;
    p.set("px", "2");
    p.set("py", "2");
    p.set("pz", "1");
    p.set("msg_bytes", "32KiB");
    p.set("iterations", "5");
    MotifRig<HaloExchangeMotif> rig(4, p);
    return rig.run_and_time();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace sst::net
