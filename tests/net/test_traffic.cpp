// Traffic generators: patterns, load scaling, saturation behaviour.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/traffic.h"

namespace sst::net {
namespace {

struct TrafficRig {
  explicit TrafficRig(SimTime end)
      : sim(SimConfig{.end_time = end, .seed = 12}) {}
  Simulation sim;
  std::vector<TrafficGenerator*> gens;
};

std::unique_ptr<TrafficRig> make_rig(double load, const char* pattern,
                                     SimTime end = 200 * kMicrosecond) {
  auto rig = std::make_unique<TrafficRig>(end);
  std::vector<NetEndpoint*> eps;
  for (int i = 0; i < 16; ++i) {
    Params p;
    p.set("pattern", pattern);
    p.set("msg_bytes", "512");
    p.set("load", std::to_string(load));
    p.set("injection_bw", "10GB/s");
    p.set("warmup", "20us");
    auto* g = rig->sim.add_component<TrafficGenerator>(
        "gen" + std::to_string(i), p);
    rig->gens.push_back(g);
    eps.push_back(g);
  }
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 4;
  s.y = 4;
  build_topology(rig->sim, s, eps);
  return rig;
}

double mean_latency(const TrafficRig& rig) {
  double sum = 0;
  std::uint64_t n = 0;
  for (const auto* g : rig.gens) {
    sum += g->mean_latency_ps() * static_cast<double>(g->measured_messages());
    n += g->measured_messages();
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

TEST(Traffic, LowLoadDeliversAtNearZeroQueueing) {
  auto rig = make_rig(0.05, "uniform");
  rig->sim.run();
  std::uint64_t measured = 0;
  for (const auto* g : rig->gens) measured += g->measured_messages();
  EXPECT_GT(measured, 100u);
  // Latency near the no-load network traversal time (sub-microsecond).
  EXPECT_LT(mean_latency(*rig), 1'000'000.0);
}

TEST(Traffic, LatencyRisesWithOfferedLoad) {
  auto low = make_rig(0.05, "uniform");
  low->sim.run();
  auto high = make_rig(0.85, "uniform");
  high->sim.run();
  EXPECT_GT(mean_latency(*high), mean_latency(*low) * 1.3);
}

TEST(Traffic, HotspotCongestsEarlierThanUniform) {
  auto uni = make_rig(0.5, "uniform");
  uni->sim.run();
  auto hot = make_rig(0.5, "hotspot");
  hot->sim.run();
  EXPECT_GT(mean_latency(*hot), mean_latency(*uni));
}

TEST(Traffic, NeighborPatternIsCheapestAtLowLoad) {
  // At low load latency tracks hop count, where nearest-neighbour wins.
  // (At high load the pattern concentrates all traffic on a few links and
  // congests sooner than uniform — also physically correct.)
  auto nb = make_rig(0.08, "neighbor");
  nb->sim.run();
  auto uni = make_rig(0.08, "uniform");
  uni->sim.run();
  EXPECT_LT(mean_latency(*nb), mean_latency(*uni));
}

TEST(Traffic, TransposeDeliversThroughput) {
  auto rig = make_rig(0.3, "transpose");
  rig->sim.run();
  for (const auto* g : rig->gens) {
    EXPECT_GT(g->delivered_bytes(), 0u);
  }
}

TEST(Traffic, DeterministicAcrossRuns) {
  auto a = make_rig(0.4, "uniform");
  a->sim.run();
  auto b = make_rig(0.4, "uniform");
  b->sim.run();
  EXPECT_DOUBLE_EQ(mean_latency(*a), mean_latency(*b));
  for (size_t i = 0; i < a->gens.size(); ++i) {
    EXPECT_EQ(a->gens[i]->measured_messages(),
              b->gens[i]->measured_messages());
  }
}

TEST(Traffic, ConfigValidation) {
  Simulation sim;
  Params p;
  p.set("pattern", "spiral");
  EXPECT_THROW(sim.add_component<TrafficGenerator>("g", p), ConfigError);
  Params p2;
  p2.set("load", "0");
  EXPECT_THROW(sim.add_component<TrafficGenerator>("g2", p2), ConfigError);
}

}  // namespace
}  // namespace sst::net
