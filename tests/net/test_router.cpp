// Router: serialization, hop latency, route-table validation.
#include <gtest/gtest.h>

#include "net/router.h"
#include "net/topology.h"

namespace sst::net {
namespace {

class ProbeEndpoint final : public NetEndpoint {
 public:
  explicit ProbeEndpoint(Params& p) : NetEndpoint(p) {}
  using NetEndpoint::send_message;

  std::vector<SimTime> arrivals;
  std::vector<SimTime> latencies;

 private:
  void on_message(NodeId, std::uint64_t, std::uint64_t,
                  SimTime msg_start) override {
    arrivals.push_back(now());
    latencies.push_back(now() - msg_start);
  }
};

struct PairRig {
  Simulation sim{SimConfig{.end_time = 10 * kMillisecond}};
  ProbeEndpoint* a;
  ProbeEndpoint* b;
};

// Two endpoints joined by a 1x2 mesh (two routers, one inter-router hop).
std::unique_ptr<PairRig> make_pair(const std::string& bandwidth = "10GB/s",
                                   const std::string& hop = "50ns",
                                   const std::string& link = "20ns",
                                   const std::string& inj = "100GB/s") {
  auto rig = std::make_unique<PairRig>();
  Params ep;
  ep.set("injection_bw", inj);
  rig->a = rig->sim.add_component<ProbeEndpoint>("a", ep);
  rig->b = rig->sim.add_component<ProbeEndpoint>("b", ep);
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 2;
  s.y = 1;
  s.link_bandwidth = bandwidth;
  s.hop_latency = hop;
  s.link_latency = link;
  build_topology(rig->sim, s, {rig->a, rig->b});
  rig->sim.initialize();
  return rig;
}

TEST(NetRouter, SingleSmallMessageLatency) {
  auto rig = make_pair();
  rig->a->send_message(1, 64, 0);
  rig->sim.run();
  ASSERT_EQ(rig->b->latencies.size(), 1u);
  // Path: inj(~0.6ns) + link(20) + hop(50) + ser(6.4) + link(20) +
  //       hop(50) + ser(6.4) + link(20) ≈ 174ns.
  EXPECT_NEAR(static_cast<double>(rig->b->latencies[0]), 174'000.0,
              5'000.0);
}

TEST(NetRouter, BandwidthScalesTransferTime) {
  auto slow = make_pair("1GB/s");
  slow->a->send_message(1, 1 << 20, 0);  // 1 MiB
  slow->sim.run();
  auto fast = make_pair("16GB/s");
  fast->a->send_message(1, 1 << 20, 0);
  fast->sim.run();
  ASSERT_EQ(slow->b->latencies.size(), 1u);
  ASSERT_EQ(fast->b->latencies.size(), 1u);
  // 1 MiB at 1 GB/s is ~1 ms of serialization; at 16 GB/s ~65 us.
  const double ratio = static_cast<double>(slow->b->latencies[0]) /
                       static_cast<double>(fast->b->latencies[0]);
  EXPECT_GT(ratio, 8.0);
}

TEST(NetRouter, PacketsOfOneMessageStayInOrder) {
  auto rig = make_pair();
  rig->a->send_message(1, 10 * 2048, 7);  // 10 MTU packets
  rig->sim.run();
  ASSERT_EQ(rig->b->arrivals.size(), 1u);  // one reassembled message
  const auto* recv = dynamic_cast<const Counter*>(
      rig->sim.stats().find("b", "messages_received"));
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->count(), 1u);
  const auto* sent_pkts = dynamic_cast<const Counter*>(
      rig->sim.stats().find("a", "packets_sent"));
  EXPECT_EQ(sent_pkts->count(), 10u);
}

TEST(NetRouter, OutputContentionQueuesPackets) {
  // Both endpoints of router 0... need three nodes: two senders, one sink.
  Simulation sim(SimConfig{.end_time = 10 * kMillisecond});
  Params ep;
  ep.set("injection_bw", "100GB/s");
  auto* s0 = sim.add_component<ProbeEndpoint>("s0", ep);
  auto* s1 = sim.add_component<ProbeEndpoint>("s1", ep);
  auto* sink = sim.add_component<ProbeEndpoint>("sink", ep);
  auto* idle = sim.add_component<ProbeEndpoint>("idle", ep);
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 2;
  s.y = 1;
  s.concentration = 2;
  s.link_bandwidth = "1GB/s";  // 64KiB takes ~65us per hop
  build_topology(sim, s, {s0, s1, sink, idle});
  sim.initialize();
  s0->send_message(2, 64 * 1024, 0);
  s1->send_message(2, 64 * 1024, 1);
  sim.run();
  ASSERT_EQ(sink->latencies.size(), 2u);
  // The two messages' packets interleave on the shared output port, so
  // both finish roughly when the port has moved 128 KiB — about twice the
  // uncontended time for one 64 KiB message (~65us serialization/hop).
  const double lmax = static_cast<double>(
      std::max(sink->latencies[0], sink->latencies[1]));
  EXPECT_GT(lmax, 100'000'000.0);  // > 100us: far above the solo ~70us
  // Router queue-delay statistic saw the contention.
  const auto* qd = dynamic_cast<const Accumulator*>(
      sim.stats().find("rtr0", "queue_delay_ps"));
  ASSERT_NE(qd, nullptr);
  EXPECT_GT(qd->max(), 0.0);
}

TEST(NetRouter, ConfigValidation) {
  Simulation sim;
  Params p;
  p.set("ports", "0");
  EXPECT_THROW(sim.add_component<Router>("r", p), ConfigError);
  Params missing;
  EXPECT_THROW(sim.add_component<Router>("r2", missing), ConfigError);
}

TEST(NetRouter, BadRouteTableRejected) {
  Simulation sim;
  Params p;
  p.set("ports", "2");
  auto* r = sim.add_component<Router>("r", p);
  EXPECT_THROW(r->set_route_table({0, 1, 2}), ConfigError);  // port 2 of 2
  EXPECT_NO_THROW(r->set_route_table({0, 1, 1}));
}

}  // namespace
}  // namespace sst::net
