// Topology builders: shapes, diameters, routing-table validity, errors.
#include <gtest/gtest.h>

#include "net/motifs.h"
#include "net/topology.h"

namespace sst::net {
namespace {

/// Minimal endpoint for wiring tests: counts messages, never initiates.
class SinkEndpoint final : public NetEndpoint {
 public:
  explicit SinkEndpoint(Params& p) : NetEndpoint(p) {}
  using NetEndpoint::send_message;  // expose for tests

  std::vector<std::pair<NodeId, std::uint64_t>> got;

 private:
  void on_message(NodeId src, std::uint64_t bytes, std::uint64_t,
                  SimTime) override {
    got.emplace_back(src, bytes);
  }
};

std::vector<NetEndpoint*> make_sinks(Simulation& sim, std::uint32_t n) {
  std::vector<NetEndpoint*> eps;
  for (std::uint32_t i = 0; i < n; ++i) {
    Params p;
    eps.push_back(
        sim.add_component<SinkEndpoint>("ep" + std::to_string(i), p));
  }
  return eps;
}

TEST(Topology, ExpectedNodeCounts) {
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 3;
  s.y = 4;
  s.concentration = 2;
  EXPECT_EQ(s.expected_nodes(), 24u);
  s.kind = TopologySpec::Kind::kTorus3D;
  s.z = 2;
  EXPECT_EQ(s.expected_nodes(), 48u);
  s.kind = TopologySpec::Kind::kFatTree;
  s.leaves = 4;
  s.down = 8;
  EXPECT_EQ(s.expected_nodes(), 32u);
  s.kind = TopologySpec::Kind::kDragonfly;
  s.groups = 5;
  s.group_routers = 2;
  s.group_conc = 3;
  EXPECT_EQ(s.expected_nodes(), 30u);
}

TEST(Topology, MeshDiameterAndRouterCount) {
  Simulation sim(SimConfig{.end_time = kMillisecond});
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 4;
  s.y = 4;
  const Topology t = build_topology(sim, s, make_sinks(sim, 16));
  EXPECT_EQ(t.routers.size(), 16u);
  EXPECT_EQ(t.diameter, 6u);  // (4-1)+(4-1)
  EXPECT_GT(t.avg_hops, 0.0);
}

TEST(Topology, TorusHalvesMeshDiameter) {
  Simulation sim_m(SimConfig{.end_time = kMillisecond});
  TopologySpec sm;
  sm.kind = TopologySpec::Kind::kMesh2D;
  sm.x = 6;
  sm.y = 6;
  const Topology mesh = build_topology(sim_m, sm, make_sinks(sim_m, 36));

  Simulation sim_t(SimConfig{.end_time = kMillisecond});
  TopologySpec st;
  st.kind = TopologySpec::Kind::kTorus2D;
  st.x = 6;
  st.y = 6;
  const Topology torus = build_topology(sim_t, st, make_sinks(sim_t, 36));

  EXPECT_EQ(mesh.diameter, 10u);
  EXPECT_EQ(torus.diameter, 6u);
  EXPECT_LT(torus.avg_hops, mesh.avg_hops);
}

TEST(Topology, FatTreeTwoLevels) {
  Simulation sim(SimConfig{.end_time = kMillisecond});
  TopologySpec s;
  s.kind = TopologySpec::Kind::kFatTree;
  s.leaves = 4;
  s.spines = 2;
  s.down = 4;
  const Topology t = build_topology(sim, s, make_sinks(sim, 16));
  EXPECT_EQ(t.routers.size(), 6u);
  EXPECT_EQ(t.diameter, 2u);  // leaf -> spine -> leaf
}

TEST(Topology, DragonflySmallDiameter) {
  Simulation sim(SimConfig{.end_time = kMillisecond});
  TopologySpec s;
  s.kind = TopologySpec::Kind::kDragonfly;
  s.groups = 5;
  s.group_routers = 2;
  s.global_per_router = 2;
  s.group_conc = 2;
  const Topology t = build_topology(sim, s, make_sinks(sim, 20));
  EXPECT_EQ(t.routers.size(), 10u);
  EXPECT_LE(t.diameter, 3u);  // local, global, local
}

TEST(Topology, DragonflyBalanceRequirement) {
  Simulation sim;
  TopologySpec s;
  s.kind = TopologySpec::Kind::kDragonfly;
  s.groups = 6;  // a*h = 4 != 5
  s.group_routers = 2;
  s.global_per_router = 2;
  EXPECT_THROW(build_topology(sim, s, make_sinks(sim, 24)), ConfigError);
}

TEST(Topology, EndpointCountMismatchThrows) {
  Simulation sim;
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 2;
  s.y = 2;
  EXPECT_THROW(build_topology(sim, s, make_sinks(sim, 3)), ConfigError);
}

TEST(Topology, NodeIdsAssignedInOrder) {
  Simulation sim(SimConfig{.end_time = kMillisecond});
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 2;
  s.y = 2;
  const auto eps = make_sinks(sim, 4);
  build_topology(sim, s, eps);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(eps[i]->node_id(), i);
    EXPECT_EQ(eps[i]->num_nodes(), 4u);
  }
}

// Property sweep: every topology delivers every (src, dst) pair.
struct DeliveryCase {
  TopologySpec::Kind kind;
  const char* name;
};

class TopologyDelivery : public ::testing::TestWithParam<DeliveryCase> {};

TEST_P(TopologyDelivery, AllPairsDeliver) {
  Simulation sim(SimConfig{.end_time = 10 * kMillisecond});
  TopologySpec s;
  s.kind = GetParam().kind;
  s.x = 3;
  s.y = 3;
  s.z = 2;
  s.leaves = 3;
  s.spines = 2;
  s.down = 6;
  s.groups = 5;
  s.group_routers = 2;
  s.global_per_router = 2;
  s.group_conc = 2;
  if (s.kind == TopologySpec::Kind::kMesh2D ||
      s.kind == TopologySpec::Kind::kTorus2D) {
    s.concentration = 2;
  }
  const std::uint32_t n = s.expected_nodes();
  std::vector<NetEndpoint*> eps = make_sinks(sim, n);
  build_topology(sim, s, eps);
  sim.initialize();
  std::vector<SinkEndpoint*> sinks;
  for (auto* e : eps) sinks.push_back(dynamic_cast<SinkEndpoint*>(e));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sinks[i]->send_message(j, 64, i * 1000 + j);
    }
  }
  sim.run();
  for (std::uint32_t j = 0; j < n; ++j) {
    EXPECT_EQ(sinks[j]->got.size(), n - 1) << GetParam().name << " node "
                                           << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TopologyDelivery,
    ::testing::Values(
        DeliveryCase{TopologySpec::Kind::kMesh2D, "mesh2d"},
        DeliveryCase{TopologySpec::Kind::kTorus2D, "torus2d"},
        DeliveryCase{TopologySpec::Kind::kTorus3D, "torus3d"},
        DeliveryCase{TopologySpec::Kind::kFatTree, "fattree"},
        DeliveryCase{TopologySpec::Kind::kDragonfly, "dragonfly"}),
    [](const ::testing::TestParamInfo<DeliveryCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sst::net
