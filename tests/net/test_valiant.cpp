// Valiant (randomized two-phase) routing: delivery correctness on every
// topology, path-length doubling, adversarial-pattern load balancing.
#include <gtest/gtest.h>

#include "net/net_lib.h"

namespace sst::net {
namespace {

class CountingSink final : public NetEndpoint {
 public:
  explicit CountingSink(Params& p) : NetEndpoint(p) {}
  using NetEndpoint::send_message;
  std::vector<std::pair<NodeId, std::uint64_t>> got;

 private:
  void on_message(NodeId src, std::uint64_t bytes, std::uint64_t,
                  SimTime) override {
    got.emplace_back(src, bytes);
  }
};

TEST(Valiant, AllPairsDeliverOnTorus) {
  Simulation sim(SimConfig{.end_time = 50 * kMillisecond, .seed = 9});
  std::vector<NetEndpoint*> eps;
  std::vector<CountingSink*> sinks;
  for (int i = 0; i < 16; ++i) {
    Params p;
    auto* s = sim.add_component<CountingSink>("ep" + std::to_string(i), p);
    sinks.push_back(s);
    eps.push_back(s);
  }
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 4;
  s.y = 4;
  s.routing = TopologySpec::Routing::kValiant;
  build_topology(sim, s, eps);
  sim.initialize();
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      if (i != j) sinks[i]->send_message(j, 6000, 0);  // multi-packet
    }
  }
  sim.run();
  for (const auto* s2 : sinks) {
    EXPECT_EQ(s2->got.size(), 15u);
    for (const auto& [src, bytes] : s2->got) EXPECT_EQ(bytes, 6000u);
  }
}

struct HopProbe {
  double avg_router_hops;
};

HopProbe measure_hops(TopologySpec::Routing routing) {
  Simulation sim(SimConfig{.end_time = 20 * kMillisecond, .seed = 4});
  std::vector<NetEndpoint*> eps;
  std::vector<CountingSink*> sinks;
  for (int i = 0; i < 16; ++i) {
    Params p;
    auto* s = sim.add_component<CountingSink>("ep" + std::to_string(i), p);
    sinks.push_back(s);
    eps.push_back(s);
  }
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 4;
  s.y = 4;
  s.routing = routing;
  const Topology topo = build_topology(sim, s, eps);
  sim.initialize();
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      if (i != j) sinks[i]->send_message(j, 64, 0);
    }
  }
  sim.run();
  // Total router traversals / packets = average hop count.
  double pkts = 0, traversals = 0;
  for (const auto* r : topo.routers) {
    const auto* c = dynamic_cast<const Counter*>(
        sim.stats().find(r->name(), "packets"));
    traversals += static_cast<double>(c->count());
  }
  for (const auto* s2 : sinks) pkts += 15.0;
  return {traversals / pkts};
}

TEST(Valiant, RoughlyDoublesPathLength) {
  const HopProbe minimal = measure_hops(TopologySpec::Routing::kMinimal);
  const HopProbe valiant = measure_hops(TopologySpec::Routing::kValiant);
  EXPECT_GT(valiant.avg_router_hops, minimal.avg_router_hops * 1.4);
  EXPECT_LT(valiant.avg_router_hops, minimal.avg_router_hops * 2.6);
}

double tornado_latency(TopologySpec::Routing routing) {
  Simulation sim(SimConfig{.end_time = 300 * kMicrosecond, .seed = 21});
  std::vector<NetEndpoint*> eps;
  std::vector<TrafficGenerator*> gens;
  for (int i = 0; i < 16; ++i) {
    Params p;
    p.set("pattern", "tornado");
    p.set("tornado_stride", "7");
    p.set("msg_bytes", "512");
    p.set("load", "0.18");
    p.set("injection_bw", "10GB/s");
    p.set("warmup", "30us");
    auto* g = sim.add_component<TrafficGenerator>(
        "gen" + std::to_string(i), p);
    gens.push_back(g);
    eps.push_back(g);
  }
  TopologySpec s;
  s.kind = TopologySpec::Kind::kTorus2D;
  s.x = 16;
  s.y = 1;
  s.routing = routing;
  build_topology(sim, s, eps);
  sim.run();
  double sum = 0;
  std::uint64_t n = 0;
  for (const auto* g : gens) {
    sum += g->mean_latency_ps() * static_cast<double>(g->measured_messages());
    n += g->measured_messages();
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

TEST(Valiant, BeatsMinimalOnTornadoTraffic) {
  // Tornado on a ring drives every minimal route through the same few
  // links; Valiant spreads the load and wins despite longer paths.
  const double minimal = tornado_latency(TopologySpec::Routing::kMinimal);
  const double valiant = tornado_latency(TopologySpec::Routing::kValiant);
  ASSERT_GT(minimal, 0.0);
  ASSERT_GT(valiant, 0.0);
  EXPECT_LT(valiant, minimal);
}

TEST(Valiant, DeterministicAcrossRuns) {
  const double a = tornado_latency(TopologySpec::Routing::kValiant);
  const double b = tornado_latency(TopologySpec::Routing::kValiant);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace sst::net
