// NetEndpoint NIC layer: segmentation, reassembly, injection throttling,
// interleaved messages, error paths.
#include <gtest/gtest.h>

#include "net/topology.h"

namespace sst::net {
namespace {

class RecordingEndpoint final : public NetEndpoint {
 public:
  explicit RecordingEndpoint(Params& p) : NetEndpoint(p) {}
  using NetEndpoint::send_message;

  struct Msg {
    NodeId src;
    std::uint64_t bytes;
    std::uint64_t tag;
    SimTime at;
  };
  std::vector<Msg> msgs;

 private:
  void on_message(NodeId src, std::uint64_t bytes, std::uint64_t tag,
                  SimTime) override {
    msgs.push_back({src, bytes, tag, now()});
  }
};

struct Rig {
  Simulation sim{SimConfig{.end_time = 100 * kMillisecond}};
  RecordingEndpoint* a;
  RecordingEndpoint* b;
};

std::unique_ptr<Rig> make_rig(const std::string& inj_bw,
                              std::uint32_t mtu = 2048) {
  auto rig = std::make_unique<Rig>();
  Params ep;
  ep.set("injection_bw", inj_bw);
  ep.set("mtu", std::to_string(mtu));
  rig->a = rig->sim.add_component<RecordingEndpoint>("a", ep);
  rig->b = rig->sim.add_component<RecordingEndpoint>("b", ep);
  TopologySpec s;
  s.kind = TopologySpec::Kind::kMesh2D;
  s.x = 2;
  s.y = 1;
  s.link_bandwidth = "100GB/s";  // network is never the bottleneck here
  build_topology(rig->sim, s, {rig->a, rig->b});
  rig->sim.initialize();
  return rig;
}

TEST(NetEndpoint, InjectionBandwidthGovernsLargeMessages) {
  auto full = make_rig("3.2GB/s");
  full->a->send_message(1, 1 << 20, 0);
  full->sim.run();
  auto eighth = make_rig("0.4GB/s");
  eighth->a->send_message(1, 1 << 20, 0);
  eighth->sim.run();
  ASSERT_EQ(full->b->msgs.size(), 1u);
  ASSERT_EQ(eighth->b->msgs.size(), 1u);
  const double ratio = static_cast<double>(eighth->b->msgs[0].at) /
                       static_cast<double>(full->b->msgs[0].at);
  // 8x less injection bandwidth => ~8x longer for a 1 MiB message.
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 9.0);
}

TEST(NetEndpoint, InterleavedMessagesReassembleIndependently) {
  auto rig = make_rig("3.2GB/s", 1024);
  rig->a->send_message(1, 5000, 11);
  rig->a->send_message(1, 3000, 22);
  rig->a->send_message(1, 100, 33);
  rig->sim.run();
  ASSERT_EQ(rig->b->msgs.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& m : rig->b->msgs) {
    total += m.bytes;
    EXPECT_EQ(m.src, 0u);
  }
  EXPECT_EQ(total, 8100u);
  // Tags survive reassembly.
  std::set<std::uint64_t> tags;
  for (const auto& m : rig->b->msgs) tags.insert(m.tag);
  EXPECT_EQ(tags, (std::set<std::uint64_t>{11, 22, 33}));
}

TEST(NetEndpoint, ZeroByteMessageStillDelivers) {
  auto rig = make_rig("3.2GB/s");
  rig->a->send_message(1, 0, 5);
  rig->sim.run();
  ASSERT_EQ(rig->b->msgs.size(), 1u);
  EXPECT_EQ(rig->b->msgs[0].bytes, 1u);  // promoted to 1 byte
}

TEST(NetEndpoint, MessageToSelfRejected) {
  auto rig = make_rig("3.2GB/s");
  EXPECT_THROW(rig->a->send_message(0, 64, 0), SimulationError);
}

TEST(NetEndpoint, SendWithoutNodeIdRejected) {
  Simulation sim;
  Params p;
  auto* lone = sim.add_component<RecordingEndpoint>("lone", p);
  EXPECT_THROW(lone->send_message(1, 64, 0), SimulationError);
}

TEST(NetEndpoint, StatisticsTrackTraffic) {
  auto rig = make_rig("3.2GB/s", 1024);
  rig->a->send_message(1, 4096, 0);
  rig->b->send_message(0, 64, 0);
  rig->sim.run();
  EXPECT_EQ(rig->a->messages_sent(), 1u);
  EXPECT_EQ(rig->a->messages_received(), 1u);
  EXPECT_EQ(rig->b->messages_received(), 1u);
  const auto* pkts = dynamic_cast<const Counter*>(
      rig->sim.stats().find("a", "packets_sent"));
  EXPECT_EQ(pkts->count(), 4u);  // 4096 / 1024
  const auto* bytes = dynamic_cast<const Counter*>(
      rig->sim.stats().find("a", "bytes_sent"));
  EXPECT_EQ(bytes->count(), 4096u);
}

TEST(NetEndpoint, MtuValidation) {
  Simulation sim;
  Params p;
  p.set("mtu", "0");
  EXPECT_THROW(sim.add_component<RecordingEndpoint>("x", p), ConfigError);
}

}  // namespace
}  // namespace sst::net
