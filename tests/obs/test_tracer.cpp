// Event tracer: Chrome trace-event JSON output, rank-merge behaviour,
// marker emission, and the engine-span opt-in.
#include <gtest/gtest.h>

#include <sstream>

#include "core/sst.h"
#include "obs/trace.h"
#include "sdl/json.h"
#include "../test_components.h"

namespace sst {
namespace {

using sst::testing::IntEvent;

/// Resolver with fixed names, independent of any Simulation.
class FakeResolver final : public obs::TraceResolver {
 public:
  [[nodiscard]] ComponentId delivery_target(LinkId link) const override {
    return static_cast<ComponentId>(link % 2);
  }
  [[nodiscard]] std::string delivery_label(LinkId link) const override {
    return "link" + std::to_string(link);
  }
  [[nodiscard]] std::string component_name(ComponentId id) const override {
    return "comp" + std::to_string(id);
  }
  [[nodiscard]] std::size_t component_count() const override { return 2; }
};

std::string render(const obs::Tracer& tracer) {
  std::ostringstream os;
  tracer.write_json(os, FakeResolver{});
  return os.str();
}

TEST(Tracer, MergeIsIndependentOfRecordingRank) {
  // The same logical records land in different per-rank buffers; the
  // merged JSON must not depend on which rank recorded what.
  obs::Tracer serial(1);
  serial.record_delivery(0, 100, 1, 0);
  serial.record_delivery(0, 100, 2, 0);
  serial.record_clock(0, 200, 0, 5);
  serial.record_marker(0, 200, 1, 0, "m", "");

  obs::Tracer parallel(2);
  parallel.record_clock(1, 200, 0, 5);
  parallel.record_delivery(1, 100, 2, 0);
  parallel.record_marker(0, 200, 1, 0, "m", "");
  parallel.record_delivery(0, 100, 1, 0);

  EXPECT_EQ(render(serial), render(parallel));
}

TEST(Tracer, OrdersByTimeKindIdSeq) {
  obs::Tracer t(1);
  t.record_marker(0, 100, 0, 1, "second_marker", "");
  t.record_marker(0, 100, 0, 0, "first_marker", "");
  t.record_delivery(0, 100, 3, 0);  // deliveries sort before markers
  t.record_clock(0, 100, 0, 1);     // clocks sort before deliveries
  const std::string json = render(t);
  const auto clock_at = json.find("\"cat\":\"clock\"");
  const auto delivery_at = json.find("link3");
  const auto first_at = json.find("first_marker");
  const auto second_at = json.find("second_marker");
  ASSERT_NE(clock_at, std::string::npos);
  ASSERT_NE(delivery_at, std::string::npos);
  ASSERT_NE(first_at, std::string::npos);
  ASSERT_NE(second_at, std::string::npos);
  EXPECT_LT(clock_at, delivery_at);
  EXPECT_LT(delivery_at, first_at);
  EXPECT_LT(first_at, second_at);
}

TEST(Tracer, EngineSpansOnlyWhenOptedIn) {
  obs::Tracer t(1);
  t.record_window(0, 1000, 0);
  EXPECT_EQ(render(t).find("sync_window"), std::string::npos);
  t.set_include_engine(true);
  EXPECT_NE(render(t).find("sync_window"), std::string::npos);
}

TEST(Tracer, EscapesMarkerNamesAndDetails) {
  obs::Tracer t(1);
  t.record_marker(0, 10, 0, 0, "quote\"back\\slash", "tab\there");
  const std::string json = render(t);
  const sdl::JsonValue doc = sdl::JsonValue::parse(json);
  const auto& events = doc.as_object().at("traceEvents").as_array();
  bool found = false;
  for (const auto& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() != "i") continue;
    if (obj.at("cat").as_string() != "marker") continue;
    EXPECT_EQ(obj.at("name").as_string(), "quote\"back\\slash");
    EXPECT_EQ(obj.at("args").as_object().at("detail").as_string(),
              "tab\there");
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TracedSimulation, EmitsParsableTraceWithDeliveriesAndMarkers) {
  /// Pinger variant that drops a marker on every reply.
  class MarkingPinger final : public Component {
   public:
    explicit MarkingPinger(Params& params) {
      count_ = params.find<std::uint32_t>("count", 5);
      link_ = configure_link("port", [this](EventPtr ev) {
        auto reply = event_cast<IntEvent>(std::move(ev));
        trace_event("reply", std::to_string(reply->value));
        if (++replies_ >= count_) {
          primary_ok_to_end_sim();
          return;
        }
        link_->send(make_event<IntEvent>(reply->value + 1));
      });
      register_as_primary();
    }
    void setup() override { link_->send(make_event<IntEvent>(0)); }

   private:
    Link* link_;
    std::uint32_t count_;
    std::uint32_t replies_ = 0;
  };

  Simulation sim{SimConfig{.trace = true}};
  Params p;
  sim.add_component<MarkingPinger>("ping", p);
  sim.add_component<testing::Echo>("echo", p);
  sim.connect("ping", "port", "echo", "port", kNanosecond);
  sim.run();

  std::ostringstream os;
  sim.write_trace_json(os);
  const sdl::JsonValue doc = sdl::JsonValue::parse(os.str());
  const auto& root = doc.as_object();
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ns");
  const auto& events = root.at("traceEvents").as_array();

  std::size_t deliveries = 0, markers = 0, names = 0;
  for (const auto& ev : events) {
    const auto& obj = ev.as_object();
    if (obj.at("ph").as_string() == "M") {
      if (obj.at("name").as_string() == "thread_name") ++names;
      continue;
    }
    const std::string& cat = obj.at("cat").as_string();
    if (cat == "delivery") {
      ++deliveries;
      // Delivery labels are "component.port" of the receiving end.
      const std::string& label = obj.at("name").as_string();
      EXPECT_TRUE(label == "ping.port" || label == "echo.port") << label;
    } else if (cat == "marker") {
      ++markers;
      EXPECT_EQ(obj.at("name").as_string(), "reply");
    }
  }
  EXPECT_EQ(names, 2u);        // ping + echo tracks
  EXPECT_EQ(markers, 5u);      // one per reply
  EXPECT_EQ(deliveries, 10u);  // 5 round trips, 2 deliveries each
}

TEST(TracedSimulation, EngineSpansAppearOnlyWithTraceEngine) {
  auto run = [](bool engine) {
    Simulation sim{SimConfig{.num_ranks = 2, .trace = true,
                             .trace_engine = engine}};
    Params p;
    sim.add_component<testing::Pinger>("ping", p);
    sim.add_component<testing::Echo>("echo", p);
    sim.connect("ping", "port", "echo", "port", kMicrosecond);
    sim.run();
    std::ostringstream os;
    sim.write_trace_json(os);
    return os.str();
  };
  EXPECT_EQ(run(false).find("sync_window"), std::string::npos);
  const std::string with_engine = run(true);
  EXPECT_NE(with_engine.find("sync_window"), std::string::npos);
  // Still valid JSON with the engine process present.
  const sdl::JsonValue doc = sdl::JsonValue::parse(with_engine);
  EXPECT_TRUE(doc.as_object().contains("traceEvents"));
}

TEST(TracedSimulation, WriteTraceRequiresTracingEnabled) {
  Simulation sim;
  Params p;
  sim.add_component<testing::Pinger>("ping", p);
  sim.add_component<testing::Echo>("echo", p);
  sim.connect("ping", "port", "echo", "port", kNanosecond);
  sim.run();
  std::ostringstream os;
  EXPECT_THROW(sim.write_trace_json(os), ConfigError);
}

TEST(TracedSimulation, UntracedRunRecordsNothing) {
  // trace_event must be a cheap no-op when tracing is off.
  class Marky final : public Component {
   public:
    explicit Marky(Params&) {
      register_clock(kNanosecond, [this](Cycle c) {
        trace_event("tick");
        return c >= 10;
      });
    }
  };
  Simulation sim;
  Params p;
  sim.add_component<Marky>("m", p);
  EXPECT_NO_THROW(sim.run());
  EXPECT_FALSE(sim.tracing());
}

}  // namespace
}  // namespace sst
