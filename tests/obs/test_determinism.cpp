// The observability determinism contract, at the API level: the same
// model run at 1, 2, and 4 ranks must produce byte-identical traces,
// metrics streams, and statistics dumps.  (tests/tools exercises the
// same contract through the sstsim CLI.)
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using sst::testing::IntEvent;

/// Ring node: forwards a token around the ring, counts hops, runs a
/// clock, accumulates a latency-like value, and drops trace markers —
/// touching every observability channel at once.
class RingNode final : public Component {
 public:
  explicit RingNode(Params& params) {
    start_ = params.find<std::uint32_t>("start", 0) != 0;
    out_ = configure_link("out", [](EventPtr) {}, /*optional=*/true);
    in_ = configure_link("in", [this](EventPtr ev) { on_token(std::move(ev)); },
                         /*optional=*/true);
    hops_ = stat_counter("hops");
    gap_ = stat_accumulator("gap_ps");
    register_clock(10 * kNanosecond, [this](Cycle) {
      ticks_->add();
      return false;
    });
    ticks_ = stat_counter("ticks");
  }

  void setup() override {
    if (start_) out_->send(make_event<IntEvent>(0));
  }

 private:
  void on_token(EventPtr ev) {
    auto token = event_cast<IntEvent>(std::move(ev));
    hops_->add();
    gap_->add(static_cast<double>(now() - last_seen_));
    last_seen_ = now();
    if (token->value % 7 == 0) {
      trace_event("lucky_token", std::to_string(token->value));
    }
    out_->send(make_event<IntEvent>(token->value + 1));
  }

  Link* out_;
  Link* in_;
  Counter* hops_;
  Counter* ticks_;
  Accumulator* gap_;
  SimTime last_seen_ = 0;
  bool start_ = false;
};

struct Artifacts {
  std::string trace;
  std::string metrics;
  std::string stats_csv;
  std::string stats_json;
};

Artifacts run_ring(unsigned num_ranks) {
  SimConfig cfg;
  cfg.num_ranks = num_ranks;
  cfg.end_time = 3 * kMicrosecond;
  cfg.trace = true;
  cfg.metrics = true;
  cfg.metrics_period = 100 * kNanosecond;
  Simulation sim{cfg};
  constexpr unsigned kNodes = 8;
  Params start, plain;
  start.set("start", "1");
  for (unsigned i = 0; i < kNodes; ++i) {
    sim.add_component<RingNode>("node" + std::to_string(i),
                                i == 0 ? start : plain);
  }
  for (unsigned i = 0; i < kNodes; ++i) {
    sim.connect("node" + std::to_string(i), "out",
                "node" + std::to_string((i + 1) % kNodes), "in",
                25 * kNanosecond);
  }
  sim.run();

  Artifacts a;
  std::ostringstream trace, metrics, csv, json;
  sim.write_trace_json(trace);
  sim.write_metrics_jsonl(metrics);
  sim.stats().write_csv(csv);
  sim.stats().write_json(json);
  a.trace = trace.str();
  a.metrics = metrics.str();
  a.stats_csv = csv.str();
  a.stats_json = json.str();
  return a;
}

TEST(ObservabilityDeterminism, RankCountDoesNotChangeAnyArtifact) {
  const Artifacts serial = run_ring(1);

  // The run actually produced content to compare.
  EXPECT_NE(serial.trace.find("delivery"), std::string::npos);
  EXPECT_NE(serial.trace.find("lucky_token"), std::string::npos);
  EXPECT_NE(serial.trace.find("\"cat\":\"clock\""), std::string::npos);
  EXPECT_NE(serial.metrics.find("\"component\":\"node0\""),
            std::string::npos);
  EXPECT_NE(serial.stats_csv.find("hops"), std::string::npos);

  for (unsigned ranks : {2u, 4u}) {
    const Artifacts parallel = run_ring(ranks);
    EXPECT_EQ(serial.trace, parallel.trace) << ranks << " ranks";
    EXPECT_EQ(serial.metrics, parallel.metrics) << ranks << " ranks";
    EXPECT_EQ(serial.stats_csv, parallel.stats_csv) << ranks << " ranks";
    EXPECT_EQ(serial.stats_json, parallel.stats_json) << ranks << " ranks";
  }
}

TEST(ObservabilityDeterminism, RepeatedRunsAreBitIdentical) {
  const Artifacts a = run_ring(2);
  const Artifacts b = run_ring(2);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.stats_csv, b.stats_csv);
}

TEST(ObservabilityDeterminism, MetricsWithoutTerminationIsConfigError) {
  // A sampling clock alone would keep the vortex non-empty forever; the
  // engine must reject the configuration instead of hanging.
  SimConfig cfg;
  cfg.metrics = true;
  Simulation sim{cfg};
  Params p;
  sim.add_component<testing::Ticker>("t", p);
  EXPECT_THROW(sim.run(), ConfigError);
}

TEST(ObservabilityDeterminism, ProfileEngineAddsRankStats) {
  SimConfig cfg;
  cfg.num_ranks = 2;
  cfg.profile_engine = true;
  Simulation sim{cfg};
  Params p;
  sim.add_component<testing::Pinger>("ping", p);
  sim.add_component<testing::Echo>("echo", p);
  sim.connect("ping", "port", "echo", "port", kMicrosecond);
  sim.run();
  EXPECT_NE(sim.stats().find("engine.rank0", "events_processed"), nullptr);
  EXPECT_NE(sim.stats().find("engine.rank1", "vortex_depth"), nullptr);
  EXPECT_NE(sim.stats().find("engine.rank0", "barrier_wait_seconds"),
            nullptr);
}

}  // namespace
}  // namespace sst
