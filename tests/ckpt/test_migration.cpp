// Migration-pack serialization contract (satellite of the online
// repartitioner): every registered component type must survive a
// serialize_state round trip byte-for-byte — a migration packs exactly
// {flags, trace seq, rng, serialize_state, pending events} and unpacks
// it onto the destination rank, so an asymmetric read/write pair would
// silently corrupt the first component of that type to migrate.  Pending
// events ride along through the checkpoint event registry, which is also
// pinned here.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "../test_components.h"
#include "ckpt/serializer.h"
#include "core/factory.h"
#include "core/sst.h"
#include "mem/mem_lib.h"
#include "net/hotspot.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "vm/vm_lib.h"

namespace sst::ckpt {
namespace {

void register_all_libraries() {
  mem::register_library();
  proc::register_library();
  net::register_library();
  vm::register_library();
}

// Values for required (default-less) parameters, keyed by knob name.
// Every registered type must either have all-defaulted params or find
// its required knobs here — a new type with a novel required knob fails
// the AllTypes test loudly until a fixup is added.
Params params_for(const std::string& type) {
  static const std::map<std::string, std::string> fixups = {
      {"size", "4KiB"},
      {"num_ports", "2"},
      {"num_caches", "2"},
      {"ports", "4"},
  };
  Params p;
  const auto* docs = Factory::instance().param_docs(type);
  if (docs == nullptr) return p;
  for (const auto& d : *docs) {
    if (!d.default_value.empty()) continue;
    // Contextually required: proc.Core only reads it under
    // workload=trace, and the default workload is stream.
    if (d.name == "trace_file") continue;
    auto it = fixups.find(d.name);
    if (it == fixups.end()) {
      ADD_FAILURE() << type << ": required param '" << d.name
                    << "' has no test fixup";
      continue;
    }
    p.set(d.name, it->second);
  }
  return p;
}

// Packs the model-owned part of a migration pack (the rng and trace-seq
// sections that ckpt::Migrator adds are fixed-width engine fields with
// their own serializer tests).
std::vector<std::byte> pack_state(Component& c) {
  Serializer s(Serializer::Mode::kPack);
  c.serialize_state(s);
  return std::move(s.buffer());
}

TEST(MigrationPack, RoundTripsEveryRegisteredType) {
  register_all_libraries();
  const auto types = Factory::instance().registered_types();
  ASSERT_FALSE(types.empty());
  Simulation sim;
  unsigned n = 0;
  for (const auto& type : types) {
    Params p = params_for(type);
    Component* c = Factory::instance().create(
        sim, type, "m" + std::to_string(n++), p);
    ASSERT_NE(c, nullptr) << type;
    std::vector<std::byte> first = pack_state(*c);
    Serializer unpack{std::vector<std::byte>(first)};
    c->serialize_state(unpack);
    // An underconsumed stream means serialize_state reads fewer fields
    // than it writes; the next section of a real migration pack would
    // then be misparsed.
    EXPECT_TRUE(unpack.exhausted()) << type << ": pack not fully consumed";

    EXPECT_EQ(pack_state(*c), first) << type << ": state changed across "
                                     << "a pack/unpack round trip";
  }
}

TEST(MigrationPack, EventRegistryRoundTripsHotspotToken) {
  register_all_libraries();
  Serializer pack(Serializer::Mode::kPack);
  net::HotspotTokenEvent out(7);
  detail::write_event(pack, out);
  std::vector<std::byte> bytes = std::move(pack.buffer());

  Serializer unpack{std::vector<std::byte>(bytes)};
  EventPtr in = detail::read_event(unpack);
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(unpack.exhausted());
  auto* token = dynamic_cast<net::HotspotTokenEvent*>(in.get());
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(token->service(), 7u);

  // Re-serializing the reconstructed event reproduces the stream: the
  // engine fields (delivery time, priority, link, sequence) survived too.
  Serializer repack(Serializer::Mode::kPack);
  detail::write_event(repack, *in);
  EXPECT_EQ(repack.buffer(), bytes);
}

TEST(MigrationPack, UnregisteredEventTypeRejected) {
  // A component holding pending events of a non-checkpointable type
  // cannot migrate; the pack must fail loudly rather than drop events.
  Serializer pack(Serializer::Mode::kPack);
  testing::IntEvent ev(42);
  EXPECT_THROW(detail::write_event(pack, ev), CheckpointError);
}

}  // namespace
}  // namespace sst::ckpt
