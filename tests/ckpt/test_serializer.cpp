// Serializer round-trip property tests: randomized values of every
// supported category must unpack to exactly what was packed, corrupt
// streams must be rejected with CheckpointError (never a crash or a
// multi-gigabyte allocation), and registered polymorphic events must
// survive the registry round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serializer.h"
#include "core/params.h"
#include "core/rng.h"
#include "core/unit_algebra.h"
#include "mem/mem_event.h"
#include "mem/mem_lib.h"
#include "net/net_event.h"
#include "net/net_lib.h"

namespace sst::ckpt {
namespace {

// Packs `value` then unpacks it from the produced bytes; the caller
// compares the result to the original.
template <typename T>
T round_trip(const T& value) {
  Serializer pack(Serializer::Mode::kPack);
  T copy = value;
  pack & copy;
  Serializer unpack(std::move(pack.buffer()));
  T out{};
  unpack & out;
  EXPECT_TRUE(unpack.exhausted()) << "trailing bytes after unpack";
  return out;
}

TEST(SerializerRoundTrip, Primitives) {
  std::mt19937_64 gen(0x5E121A11);
  for (int trial = 0; trial < 500; ++trial) {
    const auto u64 = gen();
    const auto i32 = static_cast<std::int32_t>(gen());
    const auto u8 = static_cast<std::uint8_t>(gen());
    const double d = std::uniform_real_distribution<double>(-1e18, 1e18)(gen);
    const bool b = (gen() & 1) != 0;
    EXPECT_EQ(round_trip(u64), u64);
    EXPECT_EQ(round_trip(i32), i32);
    EXPECT_EQ(round_trip(u8), u8);
    EXPECT_EQ(round_trip(d), d);
    EXPECT_EQ(round_trip(b), b);
  }
}

std::string random_string(std::mt19937_64& gen, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<int> ch(0, 255);
  std::string s(len(gen), '\0');
  for (char& c : s) c = static_cast<char>(ch(gen));
  return s;
}

TEST(SerializerRoundTrip, StringsIncludingEmbeddedNulAndEmpty) {
  std::mt19937_64 gen(0xABCD);
  EXPECT_EQ(round_trip(std::string{}), "");
  for (int trial = 0; trial < 200; ++trial) {
    const std::string s = random_string(gen, 300);
    EXPECT_EQ(round_trip(s), s);
  }
}

TEST(SerializerRoundTrip, Containers) {
  std::mt19937_64 gen(0xC0117A1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint64_t> vec(gen() % 50);
    for (auto& v : vec) v = gen();
    EXPECT_EQ(round_trip(vec), vec);

    std::deque<std::int16_t> dq(gen() % 50);
    for (auto& v : dq) v = static_cast<std::int16_t>(gen());
    EXPECT_EQ(round_trip(dq), dq);

    std::set<std::uint32_t> set;
    for (std::size_t i = gen() % 30; i > 0; --i) {
      set.insert(static_cast<std::uint32_t>(gen()));
    }
    EXPECT_EQ(round_trip(set), set);

    std::map<std::uint64_t, std::string> map;
    for (std::size_t i = gen() % 20; i > 0; --i) {
      map[gen()] = random_string(gen, 40);
    }
    EXPECT_EQ(round_trip(map), map);

    std::vector<bool> bits(gen() % 64);
    for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (gen() & 1) != 0;
    EXPECT_EQ(round_trip(bits), bits);

    std::pair<std::string, double> pr{random_string(gen, 20), 3.25};
    EXPECT_EQ(round_trip(pr), pr);

    std::optional<std::uint64_t> some = gen();
    std::optional<std::uint64_t> none;
    EXPECT_EQ(round_trip(some), some);
    EXPECT_EQ(round_trip(none), none);
  }
}

TEST(SerializerRoundTrip, NestedContainers) {
  std::map<std::string, std::vector<std::pair<std::uint64_t, std::string>>>
      nested{{"a", {{1, "x"}, {2, "y"}}}, {"", {}}, {"z", {{~0ULL, ""}}}};
  EXPECT_EQ(round_trip(nested), nested);
}

TEST(SerializerRoundTrip, RngEnginesResumeIdentically) {
  std::mt19937_64 seed_gen(0x9E3779B9);
  for (int trial = 0; trial < 50; ++trial) {
    rng::XorShift128Plus xs(seed_gen());
    rng::Pcg32 pcg(seed_gen(), seed_gen());
    // Advance to a mid-stream state.
    for (int i = 0; i < 17; ++i) {
      (void)xs.next();
      (void)pcg.next();
    }
    Serializer pack(Serializer::Mode::kPack);
    pack & xs & pcg;
    rng::XorShift128Plus xs2(1);
    rng::Pcg32 pcg2(1, 1);
    Serializer unpack(std::move(pack.buffer()));
    unpack & xs2 & pcg2;
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(xs2.next(), xs.next());
      EXPECT_EQ(pcg2.next(), pcg.next());
    }
  }
}

TEST(SerializerRoundTrip, UnitAlgebraRandomized) {
  const char* const kUnits[] = {"1ps", "1ns", "1GHz", "1GB/s",
                                "1B", "1W", "1events"};
  std::mt19937_64 gen(0x0A1B2C3D);
  std::uniform_real_distribution<double> mag(1e-9, 1e12);
  for (int trial = 0; trial < 300; ++trial) {
    const UnitAlgebra ua(mag(gen), UnitAlgebra(kUnits[gen() % 7]).units());
    const UnitAlgebra out = round_trip(ua);
    EXPECT_EQ(out.value(), ua.value());
    EXPECT_EQ(out.units(), ua.units());
  }
}

TEST(SerializerRoundTrip, ParamsRandomized) {
  std::mt19937_64 gen(0xFACADE);
  for (int trial = 0; trial < 50; ++trial) {
    Params p;
    for (std::size_t i = gen() % 10; i > 0; --i) {
      p.set("key" + std::to_string(gen() % 1000), random_string(gen, 30));
    }
    Params out = round_trip(p);
    EXPECT_EQ(out.keys(), p.keys());
    for (const auto& k : p.keys()) {
      EXPECT_EQ(out.raw(k), p.raw(k));
    }
  }
}

// ---------------------------------------------------------------------
// Polymorphic events through the registry
// ---------------------------------------------------------------------

TEST(SerializerRoundTrip, RegisteredEventsRandomized) {
  mem::register_library();
  net::register_library();
  std::mt19937_64 gen(0xE7E27);
  for (int trial = 0; trial < 200; ++trial) {
    const auto cmd = static_cast<mem::MemCmd>(gen() % 5);
    auto mev = std::make_unique<mem::MemEvent>(
        cmd, gen(), static_cast<std::uint32_t>(gen()), gen());
    mev->set_bus_src(static_cast<std::uint32_t>(gen()));

    auto pev = std::make_unique<net::PacketEvent>(
        static_cast<net::NodeId>(gen() % 64), static_cast<net::NodeId>(gen() % 64),
        static_cast<std::uint32_t>(gen()), gen(), gen(), (gen() & 1) != 0,
        gen(), static_cast<SimTime>(gen() % (1ULL << 60)));
    pev->set_via(static_cast<net::NodeId>(gen() % 64));
    pev->set_pkt_seq(static_cast<std::uint32_t>(gen()));
    if ((gen() & 1) != 0) pev->set_kind(net::PacketEvent::Kind::kAck);

    Serializer pack(Serializer::Mode::kPack);
    EventPtr m = std::move(mev);
    EventPtr p = std::move(pev);
    pack & m & p;

    Serializer unpack(std::move(pack.buffer()));
    EventPtr m2;
    EventPtr p2;
    unpack & m2 & p2;
    ASSERT_TRUE(unpack.exhausted());

    const auto* min = dynamic_cast<mem::MemEvent*>(m.get());
    const auto* mout = dynamic_cast<mem::MemEvent*>(m2.get());
    ASSERT_NE(mout, nullptr);
    EXPECT_EQ(mout->cmd(), min->cmd());
    EXPECT_EQ(mout->addr(), min->addr());
    EXPECT_EQ(mout->size(), min->size());
    EXPECT_EQ(mout->req_id(), min->req_id());
    EXPECT_EQ(mout->bus_src(), min->bus_src());

    const auto* pin = dynamic_cast<net::PacketEvent*>(p.get());
    const auto* pout = dynamic_cast<net::PacketEvent*>(p2.get());
    ASSERT_NE(pout, nullptr);
    EXPECT_EQ(pout->src(), pin->src());
    EXPECT_EQ(pout->dst(), pin->dst());
    EXPECT_EQ(pout->via(), pin->via());
    EXPECT_EQ(pout->bytes(), pin->bytes());
    EXPECT_EQ(pout->msg_id(), pin->msg_id());
    EXPECT_EQ(pout->msg_bytes(), pin->msg_bytes());
    EXPECT_EQ(pout->is_tail(), pin->is_tail());
    EXPECT_EQ(pout->tag(), pin->tag());
    EXPECT_EQ(pout->msg_start(), pin->msg_start());
    EXPECT_EQ(pout->pkt_seq(), pin->pkt_seq());
    EXPECT_EQ(pout->kind(), pin->kind());
  }
}

TEST(SerializerRoundTrip, NullEventPointer) {
  EventPtr null;
  Serializer pack(Serializer::Mode::kPack);
  pack & null;
  Serializer unpack(std::move(pack.buffer()));
  EventPtr out = std::make_unique<mem::MemEvent>(mem::MemCmd::kGetS, 0, 0, 0);
  unpack & out;
  EXPECT_EQ(out, nullptr);
}

// ---------------------------------------------------------------------
// Corrupt streams
// ---------------------------------------------------------------------

TEST(SerializerCorrupt, TruncatedStreamThrows) {
  Serializer pack(Serializer::Mode::kPack);
  std::vector<std::uint64_t> vec{1, 2, 3, 4, 5};
  pack & vec;
  std::vector<std::byte> bytes = std::move(pack.buffer());
  // Every strict prefix must throw, never crash or return garbage
  // silently claiming success.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Serializer unpack(
        std::vector<std::byte>(bytes.begin(), bytes.begin() + cut));
    std::vector<std::uint64_t> out;
    EXPECT_THROW(unpack & out, CheckpointError) << "prefix length " << cut;
  }
}

TEST(SerializerCorrupt, HugeContainerCountRejectedWithoutAllocation) {
  // A corrupt count (e.g. 2^60) must be rejected by the remaining-bytes
  // bound, not passed to vector::resize.
  Serializer pack(Serializer::Mode::kPack);
  std::uint64_t bogus = 1ULL << 60;
  pack & bogus;
  Serializer unpack(std::move(pack.buffer()));
  std::vector<std::uint64_t> out;
  EXPECT_THROW(unpack & out, CheckpointError);

  Serializer pack2(Serializer::Mode::kPack);
  pack2 & bogus;
  Serializer unpack2(std::move(pack2.buffer()));
  std::string sout;
  EXPECT_THROW(unpack2 & sout, CheckpointError);
}

TEST(SerializerCorrupt, UnknownEventTagThrows) {
  mem::register_library();
  auto ev = std::make_unique<mem::MemEvent>(mem::MemCmd::kGetX, 64, 8, 7);
  Serializer pack(Serializer::Mode::kPack);
  EventPtr p = std::move(ev);
  pack & p;
  std::vector<std::byte> bytes = std::move(pack.buffer());
  // The stream begins with the presence byte, then the type tag string
  // (u64 length + chars).  Corrupt the tag's first character.
  ASSERT_GT(bytes.size(), 10U);
  bytes[9] = std::byte{'~'};
  Serializer unpack(std::move(bytes));
  EventPtr out;
  EXPECT_THROW(unpack & out, CheckpointError);
}

}  // namespace
}  // namespace sst::ckpt
