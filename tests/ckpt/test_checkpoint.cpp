// Checkpoint file-layer contract: write/read round trip, rotation,
// validation (magic, version, truncation, checksum), and the
// load_checkpoint fallback policy that restart relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"

namespace sst::ckpt {
namespace {

namespace fs = std::filesystem;

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sst_ckpt_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointData make_data(std::uint64_t seq) {
    CheckpointData d;
    d.seq = seq;
    d.sim_time = seq * 1000;
    d.graph_json = R"({"components": [], "links": []})";
    d.state.resize(256 + seq);
    for (std::size_t i = 0; i < d.state.size(); ++i) {
      d.state[i] = static_cast<std::byte>((i * 7 + seq) & 0xFF);
    }
    return d;
  }

  std::string path_of(std::uint64_t seq) {
    return (dir_ / checkpoint_file_name(seq)).string();
  }

  // In-place byte patch, for corruption tests.
  void patch(const std::string& path, std::streamoff off, char value) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(off);
    f.put(value);
  }

  fs::path dir_;
};

TEST_F(CheckpointFileTest, WriteReadRoundTrip) {
  const CheckpointData in = make_data(7);
  write_checkpoint_file(dir_.string(), in, 3);
  const CheckpointData out = read_checkpoint_file(path_of(7));
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.sim_time, in.sim_time);
  EXPECT_EQ(out.graph_json, in.graph_json);
  EXPECT_EQ(out.state, in.state);
}

TEST_F(CheckpointFileTest, RotationKeepsNewestK) {
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    write_checkpoint_file(dir_.string(), make_data(seq), 2);
  }
  EXPECT_FALSE(fs::exists(path_of(1)));
  EXPECT_FALSE(fs::exists(path_of(2)));
  EXPECT_FALSE(fs::exists(path_of(3)));
  EXPECT_TRUE(fs::exists(path_of(4)));
  EXPECT_TRUE(fs::exists(path_of(5)));
  // No temp-file litter from the atomic-rename protocol.
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_TRUE(e.path().filename().string().rfind("sim.ckpt.", 0) == 0)
        << e.path();
  }
}

TEST_F(CheckpointFileTest, TruncatedFileRejected) {
  write_checkpoint_file(dir_.string(), make_data(1), 3);
  const auto full = fs::file_size(path_of(1));
  fs::resize_file(path_of(1), full - 10);
  EXPECT_THROW((void)read_checkpoint_file(path_of(1)), CheckpointError);
  fs::resize_file(path_of(1), 20);  // shorter than the header
  EXPECT_THROW((void)read_checkpoint_file(path_of(1)), CheckpointError);
}

TEST_F(CheckpointFileTest, BadMagicRejected) {
  write_checkpoint_file(dir_.string(), make_data(1), 3);
  patch(path_of(1), 0, 'X');
  EXPECT_THROW((void)read_checkpoint_file(path_of(1)), CheckpointError);
}

TEST_F(CheckpointFileTest, VersionMismatchRejected) {
  write_checkpoint_file(dir_.string(), make_data(1), 3);
  patch(path_of(1), 8, 99);  // version field follows the 8-byte magic
  EXPECT_THROW((void)read_checkpoint_file(path_of(1)), CheckpointError);
}

TEST_F(CheckpointFileTest, PayloadBitFlipCaughtByChecksum) {
  write_checkpoint_file(dir_.string(), make_data(1), 3);
  // Flip one byte in the middle of the payload (past the 56-byte header).
  const auto size = fs::file_size(path_of(1));
  const std::streamoff off = 56 + static_cast<std::streamoff>(size - 56) / 2;
  std::ifstream in(path_of(1), std::ios::binary);
  in.seekg(off);
  const char orig = static_cast<char>(in.get());
  in.close();
  patch(path_of(1), off, static_cast<char>(orig ^ 0x40));
  EXPECT_THROW((void)read_checkpoint_file(path_of(1)), CheckpointError);
}

TEST_F(CheckpointFileTest, LoadPicksNewestFromDirectory) {
  write_checkpoint_file(dir_.string(), make_data(3), 9);
  write_checkpoint_file(dir_.string(), make_data(11), 9);
  write_checkpoint_file(dir_.string(), make_data(4), 9);
  std::string used;
  const CheckpointData out = load_checkpoint(dir_.string(), &used);
  EXPECT_EQ(out.seq, 11U);
  EXPECT_EQ(used, path_of(11));
}

TEST_F(CheckpointFileTest, LoadFallsBackPastCorruptNewest) {
  write_checkpoint_file(dir_.string(), make_data(1), 9);
  write_checkpoint_file(dir_.string(), make_data(2), 9);
  fs::resize_file(path_of(2), 30);  // corrupt the newest
  std::string used;
  const CheckpointData out = load_checkpoint(dir_.string(), &used);
  EXPECT_EQ(out.seq, 1U);
  EXPECT_EQ(used, path_of(1));
}

TEST_F(CheckpointFileTest, ExplicitCorruptFileFallsBackToSibling) {
  write_checkpoint_file(dir_.string(), make_data(1), 9);
  write_checkpoint_file(dir_.string(), make_data(2), 9);
  fs::resize_file(path_of(2), 30);
  std::string used;
  const CheckpointData out = load_checkpoint(path_of(2), &used);
  EXPECT_EQ(out.seq, 1U);
  EXPECT_EQ(used, path_of(1));
}

TEST_F(CheckpointFileTest, NoIntactSnapshotThrows) {
  write_checkpoint_file(dir_.string(), make_data(1), 9);
  fs::resize_file(path_of(1), 30);
  EXPECT_THROW((void)load_checkpoint(dir_.string()), CheckpointError);
  EXPECT_THROW((void)load_checkpoint(path_of(1)), CheckpointError);
  fs::remove(path_of(1));
  EXPECT_THROW((void)load_checkpoint(dir_.string()), CheckpointError);
  EXPECT_THROW((void)load_checkpoint((dir_ / "nope").string()),
               CheckpointError);
}

}  // namespace
}  // namespace sst::ckpt
