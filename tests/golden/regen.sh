#!/bin/sh
# One-command regeneration of the golden-run digests after an
# intentional behaviour change:
#
#   tests/golden/regen.sh [build_dir]     # default: ./build
set -eu
SRC="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$SRC/build}"
exec "$SRC/tests/golden/run_golden.sh" regen "$BUILD" "$SRC"
