#!/bin/sh
# Golden-run determinism corpus.
#
#   run_golden.sh check <build_dir> <source_dir>   # fail on any drift
#   run_golden.sh regen <build_dir> <source_dir>   # rewrite digests.sha256
#
# Each case runs a model end to end and hashes its deterministic output
# (statistics dump or filtered stdout).  The hashes live in
# tests/golden/digests.sha256, checked into the repository; `check` is
# wired into ctest as golden.corpus, and `regen` is the one command to
# run after an intentional behaviour change (see tests/golden/regen.sh).
set -u

MODE="${1:?usage: run_golden.sh check|regen <build_dir> <source_dir>}"
BUILD="${2:?missing build dir}"
SRC="${3:?missing source dir}"

SSTSIM="$BUILD/src/tools/sstsim"
EXAMPLES="$BUILD/examples"
SYSTEMS="$SRC/examples/systems"
DIGESTS="$SRC/tests/golden/digests.sha256"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

hash_of() { sha256sum "$1" | cut -d' ' -f1; }

# run_case <name> <output_file> -- <command...>
# The command must create <output_file>; its hash is the golden value.
run_case() {
  name="$1"; out="$2"; shift 3
  if ! "$@" > "$WORK/$name.stdout" 2> "$WORK/$name.stderr"; then
    echo "golden: $name: command failed:" >&2
    sed 's/^/  | /' "$WORK/$name.stderr" >&2
    fail=1
    return
  fi
  if [ ! -f "$out" ]; then
    echo "golden: $name: expected output $out was not produced" >&2
    fail=1
    return
  fi
  printf '%s  %s\n' "$(hash_of "$out")" "$name" >> "$WORK/digests.new"
}

# --- corpus ----------------------------------------------------------
# Stats dumps from each examples/systems model, serial and 4-rank: the
# parallel digest matching the serial one IS the determinism guarantee.
run_case node_ddr3.r1.csv "$WORK/n1.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_ddr3.json" --ranks 1 --stats "$WORK/n1.csv"
run_case node_ddr3.r4.csv "$WORK/n4.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_ddr3.json" --ranks 4 --stats "$WORK/n4.csv"
run_case node_ddr3.r1.json "$WORK/n1.json" -- \
  "$SSTSIM" "$SYSTEMS/node_ddr3.json" --ranks 1 --stats "$WORK/n1.json"
run_case halo16.r1.csv "$WORK/h1.csv" -- \
  "$SSTSIM" "$SYSTEMS/halo16_torus.json" --ranks 1 --stats "$WORK/h1.csv"
run_case halo16.r4.csv "$WORK/h4.csv" -- \
  "$SSTSIM" "$SYSTEMS/halo16_torus.json" --ranks 4 --stats "$WORK/h4.csv"
# moving_hotspot has rebalance_mode on in its SDL config: the 4-rank run
# migrates components mid-flight, and its digest matching the serial one
# IS the online-repartitioning determinism guarantee.
run_case moving_hotspot.r1.csv "$WORK/mh1.csv" -- \
  "$SSTSIM" "$SYSTEMS/moving_hotspot.json" --ranks 1 --stats "$WORK/mh1.csv"
run_case moving_hotspot.r4.csv "$WORK/mh4.csv" -- \
  "$SSTSIM" "$SYSTEMS/moving_hotspot.json" --ranks 4 --stats "$WORK/mh4.csv"
# node_vm routes every demand access through a two-level TLB and its
# page-table walker's PTE reads down the shared bus; the 4-rank digest
# matching the serial one pins the vm path's cross-rank determinism.
run_case node_vm.r1.csv "$WORK/v1.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_vm.json" --ranks 1 --stats "$WORK/v1.csv"
run_case node_vm.r4.csv "$WORK/v4.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_vm.json" --ranks 4 --stats "$WORK/v4.csv"

# Interrupted-and-resumed runs: a checkpointing run's digest must equal
# the base digest (snapshots are invisible), and a restart from the
# newest mid-run snapshot must converge to the same bytes — at 1 and 4
# ranks.  These digests ARE the bit-exact-resume guarantee.
run_case node_ddr3.ckpt.r1.csv "$WORK/nc1.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_ddr3.json" --ranks 1 --stats "$WORK/nc1.csv" \
  --checkpoint-period 50us --checkpoint-dir "$WORK/cp1"
run_case node_ddr3.resume.r1.csv "$WORK/nr1.csv" -- \
  "$SSTSIM" --restart "$WORK/cp1" --ranks 1 --stats "$WORK/nr1.csv"
run_case halo16.ckpt.r4.csv "$WORK/hc4.csv" -- \
  "$SSTSIM" "$SYSTEMS/halo16_torus.json" --ranks 4 --stats "$WORK/hc4.csv" \
  --checkpoint-period 20us --checkpoint-dir "$WORK/cp4"
run_case halo16.resume.r4.csv "$WORK/hr4.csv" -- \
  "$SSTSIM" --restart "$WORK/cp4" --ranks 4 --stats "$WORK/hr4.csv"
# The 5us cadence cuts node_vm snapshots while page walks are in
# flight; the resume digest matching the base digest is the
# mid-walk-state bit-exactness guarantee.
run_case node_vm.ckpt.r1.csv "$WORK/vc1.csv" -- \
  "$SSTSIM" "$SYSTEMS/node_vm.json" --ranks 1 --stats "$WORK/vc1.csv" \
  --checkpoint-period 5us --checkpoint-dir "$WORK/cpv"
run_case node_vm.resume.r1.csv "$WORK/vr1.csv" -- \
  "$SSTSIM" --restart "$WORK/cpv" --ranks 1 --stats "$WORK/vr1.csv"

# Example binaries: full stdout, minus wall-clock timing lines.
run_case quickstart.stdout "$WORK/quickstart.txt" -- \
  sh -c "'$EXAMPLES/quickstart' | grep -v 'wall clock' > '$WORK/quickstart.txt'"
run_case fault_storm.stdout "$WORK/fault_storm.txt" -- \
  sh -c "'$EXAMPLES/fault_storm' > '$WORK/fault_storm.txt'"
# ---------------------------------------------------------------------

if [ "$fail" -ne 0 ]; then
  exit 1
fi

if [ "$MODE" = regen ]; then
  cp "$WORK/digests.new" "$DIGESTS"
  echo "golden: wrote $(wc -l < "$DIGESTS") digests to $DIGESTS"
  exit 0
fi

if [ ! -f "$DIGESTS" ]; then
  echo "golden: $DIGESTS missing — run tests/golden/regen.sh once" >&2
  exit 1
fi

if ! diff -u "$DIGESTS" "$WORK/digests.new" > "$WORK/digests.diff"; then
  echo "golden: OUTPUT DRIFT DETECTED" >&2
  echo "golden: a model's statistics or stdout no longer matches the" >&2
  echo "golden: checked-in digest.  If the change is intentional, rerun:" >&2
  echo "golden:   tests/golden/regen.sh <build_dir>" >&2
  echo "golden: and commit the updated digests.sha256.  Diff:" >&2
  sed 's/^/  | /' "$WORK/digests.diff" >&2
  exit 1
fi

echo "golden: $(wc -l < "$DIGESTS") digests match"
exit 0
