// Wire protocol: JSONL framing, request/reply round trips, malformed
// input rejection.  Suite "Daemon" so the flake-hunt CI job picks these
// up alongside the pool and queue suites.
#include <gtest/gtest.h>

#include <algorithm>

#include "daemon/protocol.h"

namespace sst::daemon {
namespace {

RunRequest sample_request() {
  RunRequest req;
  req.id = "req-42";
  req.model_json = "{\"components\": []}";
  req.out_dir = "/tmp/out dir/with \"quotes\"";
  req.overrides = {{"/config/seed", "7"}, {"/components/cpu/clock", "2GHz"}};
  req.ranks = 4;
  req.end_time = "1ms";
  req.seed = 1234567890123ULL;
  req.timeout_seconds = 12.5;
  req.retries = 3;
  req.backoff_seconds = 0.25;
  req.test_signal = 0;
  return req;
}

TEST(Daemon, RunRequestRoundTrip) {
  const RunRequest req = sample_request();
  const std::string line = run_request_to_line(req);
  const ClientMessage msg = parse_client_message(line);
  ASSERT_EQ(msg.op, ClientMessage::Op::kRun);
  EXPECT_EQ(msg.run.id, req.id);
  EXPECT_EQ(msg.run.model_json, req.model_json);
  EXPECT_EQ(msg.run.out_dir, req.out_dir);
  // Overrides travel as a JSON object: path-keyed, order-free.
  auto sorted = [](std::vector<std::pair<std::string, std::string>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(msg.run.overrides), sorted(req.overrides));
  EXPECT_EQ(msg.run.ranks, req.ranks);
  EXPECT_EQ(msg.run.end_time, req.end_time);
  ASSERT_TRUE(msg.run.seed.has_value());
  EXPECT_EQ(*msg.run.seed, *req.seed);
  EXPECT_DOUBLE_EQ(msg.run.timeout_seconds, req.timeout_seconds);
  EXPECT_EQ(msg.run.retries, req.retries);
  EXPECT_DOUBLE_EQ(msg.run.backoff_seconds, req.backoff_seconds);
}

TEST(Daemon, WorkerJobLineCarriesContentHash) {
  const RunRequest req = sample_request();
  const std::string line = worker_job_to_line(req, 0xdeadbeefcafef00dULL);
  const sdl::JsonValue doc = sdl::JsonValue::parse(line);
  EXPECT_EQ(doc.get_string("hash", ""), "deadbeefcafef00d");
  const RunRequest parsed = run_request_from_json(doc);
  EXPECT_EQ(parsed.id, req.id);
  EXPECT_EQ(parsed.model_json, req.model_json);
}

TEST(Daemon, WorkerReplyRoundTrip) {
  WorkerReply reply;
  reply.id = "req-42";
  reply.status = "timeout";
  reply.exit_code = 3;
  reply.error = "watchdog: no progress for 2.0s";
  reply.events = 123456;
  reply.wall_seconds = 1.75;
  reply.cache_hit = true;
  const WorkerReply parsed = parse_worker_reply(worker_reply_to_line(reply));
  EXPECT_EQ(parsed.id, reply.id);
  EXPECT_EQ(parsed.status, reply.status);
  EXPECT_EQ(parsed.exit_code, reply.exit_code);
  EXPECT_EQ(parsed.error, reply.error);
  EXPECT_EQ(parsed.events, reply.events);
  EXPECT_DOUBLE_EQ(parsed.wall_seconds, reply.wall_seconds);
  EXPECT_EQ(parsed.cache_hit, reply.cache_hit);
}

TEST(Daemon, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_client_message("not json"), DaemonError);
  EXPECT_THROW((void)parse_client_message("{\"op\":\"launch-missiles\"}"),
               DaemonError);
  // A run without model bytes has nothing to execute.
  EXPECT_THROW((void)parse_client_message("{\"op\":\"run\",\"id\":\"x\"}"),
               DaemonError);
  EXPECT_THROW((void)parse_worker_reply("{\"id\":"), DaemonError);
}

TEST(Daemon, StatusAndDrainOpsParse) {
  EXPECT_EQ(parse_client_message("{\"op\":\"status\"}").op,
            ClientMessage::Op::kStatus);
  EXPECT_EQ(parse_client_message("{\"op\":\"drain\"}").op,
            ClientMessage::Op::kDrain);
  const ClientMessage res =
      parse_client_message("{\"op\":\"result\",\"id\":\"r7\"}");
  EXPECT_EQ(res.op, ClientMessage::Op::kResult);
  EXPECT_EQ(res.id, "r7");
}

TEST(Daemon, LineBufferReassemblesSplitLines) {
  LineBuffer buf;
  std::string line;
  buf.feed("first li", 8);
  EXPECT_FALSE(buf.next(line));
  buf.feed("ne\nsecond\nthi", 13);
  ASSERT_TRUE(buf.next(line));
  EXPECT_EQ(line, "first line");
  ASSERT_TRUE(buf.next(line));
  EXPECT_EQ(line, "second");
  EXPECT_FALSE(buf.next(line));
  EXPECT_EQ(buf.buffered(), 3u);
  buf.feed("rd\n", 3);
  ASSERT_TRUE(buf.next(line));
  EXPECT_EQ(line, "third");
  EXPECT_EQ(buf.buffered(), 0u);
}

}  // namespace
}  // namespace sst::daemon
