// GraphCache: content-hash keyed ConfigGraph reuse.  Pins the cache
// contract the daemon's warm dispatch rests on: identical SDL bytes
// hit, a one-byte change misses, and a cached run is byte-identical to
// a cold parse of the same bytes.
#include <gtest/gtest.h>

#include <sstream>

#include "core/types.h"
#include "daemon/graph_cache.h"
#include "mem/mem_lib.h"
#include "proc/proc_lib.h"

namespace sst::daemon {
namespace {

constexpr const char* kModel = R"({
  "config": {"seed": 7},
  "components": [
    {"name": "cpu0", "type": "proc.Core",
     "params": {"clock": "1GHz", "issue_width": 2, "workload": "stream",
                "elements": 2048, "iterations": 1}},
    {"name": "mc0", "type": "mem.MemoryController",
     "params": {"backend": "simple", "latency": "50ns"}}
  ],
  "links": [
    {"from": "cpu0", "from_port": "mem", "to": "mc0", "to_port": "cpu",
     "latency": "2ns"}
  ]
})";

class GraphCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem::register_library();
    proc::register_library();
  }
};

TEST_F(GraphCacheTest, ContentHashIsDeterministicAndByteSensitive) {
  const std::string bytes = kModel;
  EXPECT_EQ(GraphCache::content_hash(bytes), GraphCache::content_hash(bytes));
  std::string tweaked = bytes;
  tweaked[tweaked.find('7')] = '8';  // one byte: seed 7 -> 8
  EXPECT_NE(GraphCache::content_hash(bytes), GraphCache::content_hash(tweaked));
  EXPECT_NE(GraphCache::content_hash(""), GraphCache::content_hash(" "));
}

TEST_F(GraphCacheTest, IdenticalBytesHitOneByteChangeMisses) {
  GraphCache cache(8);
  const std::string bytes = kModel;
  const std::uint64_t h1 = cache.admit(bytes, Factory::instance());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const std::uint64_t h2 = cache.admit(bytes, Factory::instance());
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  std::string tweaked = bytes;
  tweaked[tweaked.find('7')] = '8';
  const std::uint64_t h3 = cache.admit(tweaked, Factory::instance());
  EXPECT_NE(h1, h3);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(GraphCacheTest, HitReturnsTheResidentGraph) {
  GraphCache cache(8);
  const std::string bytes = kModel;
  const std::uint64_t hash = GraphCache::content_hash(bytes);
  const sdl::ConfigGraph* cold = &cache.graph(hash, bytes);
  const sdl::ConfigGraph* warm = &cache.graph(hash, bytes);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(GraphCacheTest, CachedRunIsByteIdenticalToColdParse) {
  const std::string bytes = kModel;
  const std::uint64_t hash = GraphCache::content_hash(bytes);
  auto run_to_json = [&](GraphCache& cache) {
    // Copy before building, exactly as the worker does, so the cached
    // graph is never mutated by a run.
    sdl::ConfigGraph graph = cache.graph(hash, bytes);
    auto sim = graph.build();
    (void)sim->run();
    std::ostringstream os;
    sim->stats().write_json(os);
    return os.str();
  };
  GraphCache cache(8);
  const std::string cold = run_to_json(cache);   // miss: parses
  const std::string cached = run_to_json(cache); // hit: resident graph
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cold, cached);
}

TEST_F(GraphCacheTest, AdmitRejectsInvalidModelsWithoutCachingThem) {
  GraphCache cache(8);
  const std::string bad = R"({
    "components": [{"name": "x", "type": "bogus.Type"}]
  })";
  EXPECT_THROW((void)cache.admit(bad, Factory::instance()), ConfigError);
  EXPECT_EQ(cache.size(), 0u);
  // Still invalid on resubmission — must revalidate, not serve a stale
  // cached graph.
  EXPECT_THROW((void)cache.admit(bad, Factory::instance()), ConfigError);
}

TEST_F(GraphCacheTest, EvictsOldestBeyondCapacity) {
  GraphCache cache(2);
  std::string a = kModel;
  std::string b = kModel;
  b[b.find("2048")] = '4';  // distinct bytes, still valid
  std::string c = kModel;
  c[c.find("2ns")] = '3';
  (void)cache.admit(a, Factory::instance());
  (void)cache.admit(b, Factory::instance());
  (void)cache.admit(c, Factory::instance());  // evicts a
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.admit(a, Factory::instance());  // re-parse, not a hit
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 4u);
}

}  // namespace
}  // namespace sst::daemon
