// RequestLedger: the crash-consistent accepted/final record behind the
// daemon's exactly-once restart recovery.  Pins the durability contract:
// group-committed appends, round trips, accepted -> final overwrite,
// torn-tail tolerance, and hard failure on interior corruption or a
// foreign header.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "daemon/request_ledger.h"

namespace sst::daemon {
namespace {

namespace fs = std::filesystem;

class RequestLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sst_ledger_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "requests.jsonl").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void append_raw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << bytes;
  }

  fs::path dir_;
  std::string path_;
};

RequestRecord accepted(const std::string& id) {
  RequestRecord r;
  r.id = id;
  r.status = "accepted";
  r.out_dir = "/tmp/out/" + id;
  r.content_hash = 0x7afbfbcbca4b8f7aULL;
  return r;
}

TEST_F(RequestLedgerTest, MissingFileLoadsEmpty) {
  RequestLedger ledger(path_);
  ledger.load();
  EXPECT_TRUE(ledger.records().empty());
  EXPECT_TRUE(ledger.pending().empty());
}

TEST_F(RequestLedgerTest, RecordsRoundTripThroughDisk) {
  {
    RequestLedger ledger(path_);
    ledger.record(accepted("a"));
    RequestRecord done = accepted("b");
    done.status = "ok";
    done.attempts = 2;
    ledger.record(done);
    ledger.flush();
  }
  RequestLedger reloaded(path_);
  reloaded.load();
  ASSERT_EQ(reloaded.records().size(), 2u);
  const RequestRecord* a = reloaded.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->status, "accepted");
  EXPECT_EQ(a->out_dir, "/tmp/out/a");
  EXPECT_EQ(a->content_hash, 0x7afbfbcbca4b8f7aULL);
  const RequestRecord* b = reloaded.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->status, "ok");
  EXPECT_EQ(b->attempts, 2u);
  EXPECT_TRUE(b->final());
}

TEST_F(RequestLedgerTest, FinalStatusOverwritesAcceptedExactlyOnce) {
  RequestLedger ledger(path_);
  ledger.record(accepted("r"));
  EXPECT_EQ(ledger.pending().size(), 1u);

  RequestRecord final_rec = accepted("r");
  final_rec.status = "timeout";
  final_rec.exit_code = 3;
  final_rec.attempts = 3;
  ledger.record(final_rec);
  ledger.flush();

  RequestLedger reloaded(path_);
  reloaded.load();
  ASSERT_EQ(reloaded.records().size(), 1u);  // overwritten, not appended
  EXPECT_EQ(reloaded.find("r")->status, "timeout");
  EXPECT_EQ(reloaded.find("r")->exit_code, 3);
  EXPECT_TRUE(reloaded.pending().empty());
}

TEST_F(RequestLedgerTest, PendingListsOnlyAcceptedRecords) {
  RequestLedger ledger(path_);
  ledger.record(accepted("waiting1"));
  RequestRecord done = accepted("done");
  done.status = "ok";
  ledger.record(done);
  ledger.record(accepted("waiting2"));
  const auto pending = ledger.pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].id, "waiting1");
  EXPECT_EQ(pending[1].id, "waiting2");
}

TEST_F(RequestLedgerTest, ToleratesTornFinalLine) {
  {
    RequestLedger ledger(path_);
    ledger.record(accepted("intact"));
    ledger.flush();
  }
  // An appender killed mid-write leaves a partial record with no
  // newline; recovery must keep everything before it.
  append_raw("{\"id\":\"torn\",\"status\":\"acce");
  RequestLedger reloaded(path_);
  reloaded.load();
  ASSERT_EQ(reloaded.records().size(), 1u);
  EXPECT_NE(reloaded.find("intact"), nullptr);
  EXPECT_EQ(reloaded.find("torn"), nullptr);
}

TEST_F(RequestLedgerTest, ThrowsOnInteriorCorruption) {
  {
    RequestLedger ledger(path_);
    ledger.record(accepted("a"));
    ledger.record(accepted("b"));
    ledger.flush();
  }
  // Corrupt the record *before* the last one: that is real damage, not
  // an interrupted append, and must not be silently dropped.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const auto pos = content.find("\"id\":\"a\"");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos, 4, "\"##:");
  std::ofstream(path_, std::ios::trunc | std::ios::binary) << content;

  RequestLedger reloaded(path_);
  EXPECT_THROW(reloaded.load(), DaemonError);
}

TEST_F(RequestLedgerTest, RejectsForeignOrMismatchedHeader) {
  std::ofstream(path_) << "{\"tool\":\"something-else\"}\n";
  RequestLedger foreign(path_);
  EXPECT_THROW(foreign.load(), DaemonError);

  std::ofstream(path_, std::ios::trunc)
      << "{\"daemon\":\"sstsimd\",\"version\":99}\n";
  RequestLedger future(path_);
  EXPECT_THROW(future.load(), DaemonError);
}

TEST_F(RequestLedgerTest, GroupCommitStagesUntilFlush) {
  RequestLedger ledger(path_);
  EXPECT_FALSE(ledger.dirty());
  ledger.record(accepted("a"));
  ledger.record(accepted("b"));
  EXPECT_TRUE(ledger.dirty());
  EXPECT_FALSE(fs::exists(path_));  // nothing durable before flush

  // A crash here would lose both — which is fine, because the daemon
  // only acknowledges a request *after* the flush covering it.
  {
    RequestLedger other(path_);
    other.load();
    EXPECT_TRUE(other.records().empty());
  }

  ledger.flush();
  EXPECT_FALSE(ledger.dirty());
  RequestLedger reloaded(path_);
  reloaded.load();
  EXPECT_EQ(reloaded.records().size(), 2u);

  // Appends stay append-only: no PID-tagged temp droppings in the dir.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace sst::daemon
