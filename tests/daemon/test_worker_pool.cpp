// WorkerPool: pre-forked isolation boundary.  Pins the crash contract:
// a worker that dies takes only its request with it, is diagnosed from
// its wait status, and is respawned; healthy workers answer jobs
// in-band and drain cleanly on EOF.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>

#include "daemon/graph_cache.h"
#include "daemon/worker_pool.h"
#include "mem/mem_lib.h"
#include "proc/proc_lib.h"

namespace sst::daemon {
namespace {

namespace fs = std::filesystem;

constexpr const char* kModel = R"({
  "config": {"seed": 7},
  "components": [
    {"name": "cpu0", "type": "proc.Core",
     "params": {"clock": "1GHz", "issue_width": 2, "workload": "stream",
                "elements": 2048, "iterations": 1}},
    {"name": "mc0", "type": "mem.MemoryController",
     "params": {"backend": "simple", "latency": "50ns"}}
  ],
  "links": [
    {"from": "cpu0", "from_port": "mem", "to": "mc0", "to_port": "cpu",
     "latency": "2ns"}
  ]
})";

RunRequest job(const std::string& id, const std::string& out_dir,
               int test_signal = 0) {
  RunRequest req;
  req.id = id;
  req.model_json = kModel;
  req.out_dir = out_dir;
  req.test_signal = test_signal;
  return req;
}

// Blocks until the worker on `slot` writes one reply line.
WorkerReply await_reply(WorkerPool& pool, int slot) {
  std::string line;
  char buf[4096];
  while (!pool.line_buffer(slot).next(line)) {
    const ::ssize_t n = ::read(pool.fd(slot), buf, sizeof buf);
    if (n <= 0) {
      ADD_FAILURE() << "worker closed its socket before replying";
      return {};
    }
    pool.line_buffer(slot).feed(buf, static_cast<std::size_t>(n));
  }
  return parse_worker_reply(line);
}

// Reaps with a timeout: the child's death is asynchronous.
std::vector<WorkerExit> await_exits(WorkerPool& pool) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto exits = pool.reap_and_respawn();
    if (!exits.empty()) return exits;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "no worker exit observed within 10s";
  return {};
}

class WorkerPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem::register_library();
    proc::register_library();
    dir_ = fs::temp_directory_path() /
           ("sst_pool_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(WorkerPoolTest, StartsIdleWorkersAndDrainsOnEof) {
  WorkerPool pool(2, nullptr);
  pool.start();
  EXPECT_TRUE(pool.alive(0));
  EXPECT_TRUE(pool.alive(1));
  EXPECT_NE(pool.pid(0), pool.pid(1));
  EXPECT_EQ(pool.busy_count(), 0u);
  EXPECT_EQ(pool.idle_slot(), 0);
  pool.shutdown();  // close fds -> workers see EOF and _exit(0)
  EXPECT_EQ(pool.restarts(), 0u);
}

TEST_F(WorkerPoolTest, HealthyJobRunsAndPublishesStats) {
  WorkerPool pool(1, nullptr);
  pool.start();
  const std::string out = (dir_ / "run1").string();
  const RunRequest req = job("healthy", out);
  const std::uint64_t hash = GraphCache::content_hash(req.model_json);
  ASSERT_TRUE(pool.dispatch(0, worker_job_to_line(req, hash), req.id,
                            std::chrono::steady_clock::time_point::max()));
  EXPECT_TRUE(pool.busy(0));
  EXPECT_EQ(pool.request_id(0), "healthy");
  const WorkerReply reply = await_reply(pool, 0);
  EXPECT_EQ(reply.id, "healthy");
  EXPECT_EQ(reply.status, "ok");
  EXPECT_EQ(reply.exit_code, 0);
  EXPECT_GT(reply.events, 0u);
  EXPECT_TRUE(fs::exists(fs::path(out) / "stats.json"));
  pool.mark_idle(0);
  EXPECT_EQ(pool.busy_count(), 0u);
  pool.shutdown();
}

TEST_F(WorkerPoolTest, WorkerCacheHitsOnRepeatedModel) {
  WorkerPool pool(1, nullptr);
  pool.start();
  const std::uint64_t hash = GraphCache::content_hash(kModel);
  for (int i = 0; i < 2; ++i) {
    const RunRequest req =
        job("rep" + std::to_string(i), (dir_ / std::to_string(i)).string());
    ASSERT_TRUE(pool.dispatch(0, worker_job_to_line(req, hash), req.id,
                              std::chrono::steady_clock::time_point::max()));
    const WorkerReply reply = await_reply(pool, 0);
    EXPECT_EQ(reply.status, "ok");
    // First parse is cold; the second run reuses the resident graph.
    EXPECT_EQ(reply.cache_hit, i == 1);
    pool.mark_idle(0);
  }
  pool.shutdown();
}

TEST_F(WorkerPoolTest, CrashingWorkerIsDiagnosedAndRespawned) {
  WorkerPool pool(1, nullptr);
  pool.start();
  const pid_t crashed_pid = pool.pid(0);
  const RunRequest req = job("boom", (dir_ / "boom").string(), SIGSEGV);
  ASSERT_TRUE(pool.dispatch(0, worker_job_to_line(req, 0), req.id,
                            std::chrono::steady_clock::time_point::max()));
  const auto exits = await_exits(pool);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0].slot, 0);
  EXPECT_EQ(exits[0].pid, crashed_pid);
  EXPECT_EQ(exits[0].term_signal, SIGSEGV);
  EXPECT_TRUE(exits[0].was_busy);
  EXPECT_EQ(exits[0].request_id, "boom");
  EXPECT_FALSE(exits[0].hard_killed);
  // The slot is already serving again with a fresh process.
  EXPECT_EQ(pool.restarts(), 1u);
  ASSERT_TRUE(pool.alive(0));
  EXPECT_NE(pool.pid(0), crashed_pid);
  EXPECT_FALSE(pool.busy(0));

  // And the respawned worker actually works.
  const RunRequest again = job("after", (dir_ / "after").string());
  const std::uint64_t hash = GraphCache::content_hash(again.model_json);
  ASSERT_TRUE(pool.dispatch(0, worker_job_to_line(again, hash), again.id,
                            std::chrono::steady_clock::time_point::max()));
  EXPECT_EQ(await_reply(pool, 0).status, "ok");
  pool.mark_idle(0);
  pool.shutdown();
}

TEST_F(WorkerPoolTest, HardKillIsReportedAsSuch) {
  WorkerPool pool(1, nullptr);
  pool.start();
  // Park the worker on a job it will never get: dispatch marks the slot
  // busy but we only send half a line, so the worker sits in read().
  pool.dispatch(0, "", "stuck", std::chrono::steady_clock::time_point::max());
  pool.kill_slot(0);  // the deadline backstop
  const auto exits = await_exits(pool);
  ASSERT_EQ(exits.size(), 1u);
  EXPECT_EQ(exits[0].term_signal, SIGKILL);
  EXPECT_TRUE(exits[0].hard_killed);
  EXPECT_EQ(exits[0].request_id, "stuck");
  EXPECT_EQ(pool.restarts(), 1u);
  pool.shutdown();
}

}  // namespace
}  // namespace sst::daemon
