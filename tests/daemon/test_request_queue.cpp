// RequestQueue: bounded admission, capacity-exempt deferral, and the
// backoff gate scheduling retries.  Time is injected, so the policy is
// pinned without wall-clock sleeps.
#include <gtest/gtest.h>

#include "daemon/request_queue.h"

namespace sst::daemon {
namespace {

QueuedRequest make(const std::string& id, SteadyTime not_before = {}) {
  QueuedRequest q;
  q.req.id = id;
  q.not_before = not_before;
  return q;
}

TEST(RequestQueue, ShedsAtCapacity) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.push(make("a")));
  EXPECT_TRUE(queue.push(make("b")));
  EXPECT_FALSE(queue.push(make("c")));  // shed: explicit overload signal
  EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, DeferBypassesCapacity) {
  // Retries and crash-recovered requests were already accepted; they
  // must re-enter even when admission would shed new work.
  RequestQueue queue(1);
  EXPECT_TRUE(queue.push(make("a")));
  queue.defer(make("retry"));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_FALSE(queue.push(make("new")));
}

TEST(RequestQueue, PopReadyPreservesSubmissionOrder) {
  RequestQueue queue(8);
  const SteadyTime now = std::chrono::steady_clock::now();
  EXPECT_TRUE(queue.push(make("first", now)));
  EXPECT_TRUE(queue.push(make("second", now)));
  EXPECT_EQ(queue.pop_ready(now)->req.id, "first");
  EXPECT_EQ(queue.pop_ready(now)->req.id, "second");
  EXPECT_FALSE(queue.pop_ready(now).has_value());
}

TEST(RequestQueue, GatedHeadDoesNotBlockReadySuccessor) {
  RequestQueue queue(8);
  const SteadyTime now = std::chrono::steady_clock::now();
  const SteadyTime later = now + std::chrono::seconds(10);
  queue.defer(make("backing-off", later));
  EXPECT_TRUE(queue.push(make("ready", now)));
  auto popped = queue.pop_ready(now);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->req.id, "ready");
  // The gated request surfaces once its backoff expires.
  EXPECT_FALSE(queue.pop_ready(now).has_value());
  EXPECT_EQ(queue.pop_ready(later)->req.id, "backing-off");
  EXPECT_TRUE(queue.empty());
}

TEST(RequestQueue, NextReadyAtReportsEarliestGate) {
  RequestQueue queue(8);
  EXPECT_FALSE(queue.next_ready_at().has_value());
  const SteadyTime now = std::chrono::steady_clock::now();
  queue.defer(make("late", now + std::chrono::seconds(8)));
  queue.defer(make("soon", now + std::chrono::seconds(2)));
  ASSERT_TRUE(queue.next_ready_at().has_value());
  EXPECT_EQ(*queue.next_ready_at(), now + std::chrono::seconds(2));
}

TEST(RequestQueue, AttemptsAndHashTravelWithTheRequest) {
  RequestQueue queue(4);
  QueuedRequest q = make("r");
  q.attempts = 2;
  q.content_hash = 0xabcdef12345678ULL;
  queue.defer(std::move(q));
  const auto popped = queue.pop_ready(std::chrono::steady_clock::now());
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->attempts, 2u);
  EXPECT_EQ(popped->content_hash, 0xabcdef12345678ULL);
}

}  // namespace
}  // namespace sst::daemon
