// Workload generators: op counts, arithmetic-intensity signatures,
// determinism, address patterns.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "proc/kernels.h"
#include "proc/workload_factory.h"

namespace sst::proc {
namespace {

struct Mix {
  std::uint64_t flops = 0, intops = 0, loads = 0, stores = 0, branches = 0;
  std::uint64_t load_bytes = 0, store_bytes = 0;
  std::uint64_t total = 0;
  std::uint64_t dependent = 0;
  std::vector<Addr> load_addrs;
};

Mix drain(Workload& w, bool keep_addrs = false) {
  Mix m;
  Op op;
  while (w.next(op)) {
    ++m.total;
    if (op.depends_on_loads) ++m.dependent;
    switch (op.type) {
      case OpType::kFlop: ++m.flops; break;
      case OpType::kIntOp: ++m.intops; break;
      case OpType::kLoad:
        ++m.loads;
        m.load_bytes += op.size;
        if (keep_addrs) m.load_addrs.push_back(op.addr);
        break;
      case OpType::kStore:
        ++m.stores;
        m.store_bytes += op.size;
        break;
      case OpType::kBranch: ++m.branches; break;
    }
  }
  return m;
}

TEST(StreamTriadKernel, ExactOpCounts) {
  StreamTriad w(1000, 2);
  const Mix m = drain(w);
  EXPECT_EQ(m.loads, 2u * 1000 * 2);
  EXPECT_EQ(m.stores, 1u * 1000 * 2);
  EXPECT_EQ(m.flops, 2u * 1000 * 2);
  EXPECT_EQ(m.flops, w.total_flops());
  EXPECT_EQ(m.branches, 1000u * 2);
  EXPECT_EQ(m.dependent, 0u);
}

TEST(StreamTriadKernel, SequentialAddresses) {
  StreamTriad w(64, 1);
  const Mix m = drain(w, true);
  // Loads alternate between the b and c arrays; within each array the
  // stride is 8 bytes.
  std::map<Addr, std::vector<Addr>> by_region;
  for (Addr a : m.load_addrs) by_region[a >> 32].push_back(a);
  ASSERT_EQ(by_region.size(), 2u);
  for (const auto& [region, addrs] : by_region) {
    (void)region;
    ASSERT_EQ(addrs.size(), 64u);
    for (size_t i = 1; i < addrs.size(); ++i) {
      EXPECT_EQ(addrs[i] - addrs[i - 1], 8u);
    }
  }
}

TEST(HpccgKernel, OpCountsMatchStructure) {
  const std::uint32_t nx = 4, ny = 4, nz = 4;
  Hpccg w(nx, ny, nz, 1);
  const std::uint64_t rows = w.rows();
  EXPECT_EQ(rows, 64u);
  const Mix m = drain(w);
  // SpMV per row: 14 16B value loads + 7 16B index loads + 27 x gathers;
  // vector phases are 16B-vectorized (two elements per unit):
  // dot 1 load, p-axpy 2 loads + 1 store, x-axpy 2 loads + 1 store.
  EXPECT_EQ(m.loads, rows * (14 + 7 + 27) + (rows / 2) * (1 + 2 + 2));
  EXPECT_EQ(m.stores, rows * 1 + (rows / 2) * 2);
  EXPECT_EQ(m.flops, w.total_flops());
  EXPECT_EQ(m.dependent, 0u);
}

TEST(HpccgKernel, LowArithmeticIntensity) {
  Hpccg w(8, 8, 8, 1);
  const Mix m = drain(w);
  const double intensity = static_cast<double>(m.flops) /
                           static_cast<double>(m.load_bytes + m.store_bytes);
  // CG is bandwidth-bound: well under 1 flop/byte.
  EXPECT_LT(intensity, 0.5);
}

TEST(LuleshKernel, HydroArithmeticIntensity) {
  Lulesh w(8, 1);
  EXPECT_EQ(w.zones(), 512u);
  const Mix m = drain(w);
  const double intensity = static_cast<double>(m.flops) /
                           static_cast<double>(m.load_bytes + m.store_bytes);
  // Real LULESH runs ~0.3-0.8 flops/byte; the proxy targets that band.
  EXPECT_GT(intensity, 0.3);
  EXPECT_LT(intensity, 0.9);
  EXPECT_EQ(m.flops, w.total_flops());
  // 8 corner gathers + one load per zone-centred read field.
  EXPECT_EQ(m.loads, (8u + Lulesh::kZoneReadFields) * 512);
  EXPECT_EQ(m.stores, Lulesh::kZoneWriteFields * 512u);
}

TEST(LuleshKernel, MoreComputeBoundThanHpccg) {
  Hpccg cg(8, 8, 8, 1);
  Lulesh lu(8, 1);
  const Mix mc = drain(cg);
  const Mix ml = drain(lu);
  const double ic = static_cast<double>(mc.flops) /
                    static_cast<double>(mc.load_bytes + mc.store_bytes);
  const double il = static_cast<double>(ml.flops) /
                    static_cast<double>(ml.load_bytes + ml.store_bytes);
  EXPECT_GT(il, 3.0 * ic);
}

TEST(GupsKernel, IndependentUpdatesAndAddressSpread) {
  Gups w(1 << 20, 1000, 42);
  const Mix m = drain(w, true);
  EXPECT_EQ(m.loads, 1000u);
  EXPECT_EQ(m.stores, 1000u);
  EXPECT_EQ(m.dependent, 0u);  // updates expose MLP (see kernels.cpp)
  // Addresses spread across the table: expect many distinct cache lines.
  std::set<Addr> lines;
  for (Addr a : m.load_addrs) lines.insert(a / 64);
  EXPECT_GT(lines.size(), 800u);
}

TEST(GupsKernel, DeterministicPerSeed) {
  Gups a(1 << 16, 100, 7), b(1 << 16, 100, 7), c(1 << 16, 100, 8);
  const Mix ma = drain(a, true), mb = drain(b, true), mc2 = drain(c, true);
  EXPECT_EQ(ma.load_addrs, mb.load_addrs);
  EXPECT_NE(ma.load_addrs, mc2.load_addrs);
}

TEST(PointerChaseKernel, FullySerialized) {
  PointerChase w(1 << 20, 500, 3);
  const Mix m = drain(w, true);
  EXPECT_EQ(m.loads, 500u);
  EXPECT_EQ(m.dependent, 500u);
  // The chain must not revisit one address over and over.
  std::set<Addr> distinct(m.load_addrs.begin(), m.load_addrs.end());
  EXPECT_GT(distinct.size(), 400u);
}

TEST(MiniMdKernel, StructureAndIntensity) {
  MiniMd w(256, 40, 1, 13);
  EXPECT_EQ(w.atoms(), 256u);
  const Mix m = drain(w, true);
  // Per atom: own position + 10 SSE neighbor-index loads + 40 gathers.
  EXPECT_EQ(m.loads, 256u * (1 + 10 + 40));
  EXPECT_EQ(m.stores, 256u);
  EXPECT_EQ(m.flops, w.total_flops());
  const double intensity = static_cast<double>(m.flops) /
                           static_cast<double>(m.load_bytes + m.store_bytes);
  // MD sits between stencils and sparse solvers.
  EXPECT_GT(intensity, 0.25);
  EXPECT_LT(intensity, 0.9);
}

TEST(MiniMdKernel, GathersStayInLocalWindow) {
  MiniMd w(4096, 16, 1, 13);
  const Mix m = drain(w, true);
  // Gather loads are the 24-byte position reads; each must land within
  // the spatial window of its atom.
  std::uint64_t atom = 0;
  std::uint64_t gathers_checked = 0;
  for (const Addr a : m.load_addrs) {
    // Position-region loads have region index 0 (base 1<<32).
    if ((a >> 32) != 1) continue;
    const std::uint64_t idx = (a - ((1ULL << 32))) / 24;
    if (idx == atom) continue;  // own-position load: advance the cursor
    const std::uint64_t fwd = (idx + 4096 - atom) % 4096;
    EXPECT_LE(fwd, 513u) << "gather outside window";
    ++gathers_checked;
    if (gathers_checked % 16 == 0) ++atom;
  }
  EXPECT_GT(gathers_checked, 0u);
}

TEST(MiniMdKernel, DeterministicPerSeed) {
  MiniMd a(512, 8, 1, 5), b(512, 8, 1, 5), c(512, 8, 1, 6);
  const Mix ma = drain(a, true), mb = drain(b, true), mc2 = drain(c, true);
  EXPECT_EQ(ma.load_addrs, mb.load_addrs);
  EXPECT_NE(ma.load_addrs, mc2.load_addrs);
}

TEST(Kernels, ValidationErrors) {
  EXPECT_THROW(StreamTriad(0, 1), ConfigError);
  EXPECT_THROW(StreamTriad(10, 0), ConfigError);
  EXPECT_THROW(Hpccg(0, 4, 4, 1), ConfigError);
  EXPECT_THROW(Lulesh(0, 1), ConfigError);
  EXPECT_THROW(Gups(32, 10), ConfigError);
  EXPECT_THROW(PointerChase(8, 10), ConfigError);
}

TEST(WorkloadFactory, BuildsAllKernels) {
  for (const char* k :
       {"stream", "hpccg", "lulesh", "minimd", "gups", "chase"}) {
    Params p;
    p.set("workload", k);
    // Shrink sizes so the drain is fast.
    p.set("elements", "64");
    p.set("nx", "2");
    p.set("ny", "2");
    p.set("nz", "2");
    p.set("n", "2");
    p.set("atoms", "32");
    p.set("neighbors", "4");
    p.set("updates", "16");
    p.set("hops", "16");
    auto w = make_workload(p);
    ASSERT_NE(w, nullptr) << k;
    const Mix m = drain(*w);
    EXPECT_GT(m.total, 0u) << k;
  }
  Params bad;
  bad.set("workload", "fortnite");
  EXPECT_THROW((void)make_workload(bad), ConfigError);
}

TEST(WorkloadFactory, ByNameUsesDefaults) {
  auto w = make_workload("gups");
  EXPECT_EQ(w->name(), "synthetic.gups");
}

}  // namespace
}  // namespace sst::proc
