// Abstract core model: issue-width scaling, memory-level parallelism,
// dependence stalls, completion protocol.
#include <gtest/gtest.h>

#include "core/sst.h"
#include "mem/memory_controller.h"
#include "proc/core_model.h"
#include "proc/kernels.h"

namespace sst::proc {
namespace {

struct CoreRig {
  Simulation sim;
  Core* core;
  mem::MemoryController* mc;
};

std::unique_ptr<CoreRig> make_rig(Params core_params, WorkloadPtr w,
                                  const std::string& mem_latency = "60ns",
                                  double mem_bw_gbs = 10.667) {
  auto rig = std::make_unique<CoreRig>();
  rig->core = rig->sim.add_component<Core>("cpu", core_params);
  rig->core->set_workload(std::move(w));
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", mem_latency);
  mp.set("bandwidth_gbs", std::to_string(mem_bw_gbs));
  rig->mc = rig->sim.add_component<mem::MemoryController>("mc", mp);
  rig->sim.connect("cpu", "mem", "mc", "cpu", kNanosecond);
  return rig;
}

Params core_params(unsigned width, unsigned max_loads = 8) {
  Params p;
  p.set("clock", "1GHz");
  p.set("issue_width", std::to_string(width));
  p.set("max_loads", std::to_string(max_loads));
  return p;
}

SimTime run_kernel(unsigned width, WorkloadPtr w,
                   const std::string& mem_latency = "60ns",
                   double bw = 10.667, unsigned max_loads = 8) {
  auto rig = make_rig(core_params(width, max_loads), std::move(w),
                      mem_latency, bw);
  rig->sim.run();
  EXPECT_TRUE(rig->core->done());
  return rig->core->completion_time();
}

TEST(CoreModel, CompletesAndCountsInstructions) {
  auto rig = make_rig(core_params(2),
                      std::make_unique<StreamTriad>(256, 1));
  const RunStats stats = rig->sim.run();
  EXPECT_TRUE(rig->core->done());
  // 6 ops per element (2 loads, 2 flops, 1 store, 1 branch).
  EXPECT_EQ(rig->core->instructions(), 256u * 6);
  EXPECT_GT(stats.final_time, 0u);
  EXPECT_EQ(stats.final_time, rig->core->completion_time());
}

TEST(CoreModel, WiderIssueFasterOnComputeBoundKernel) {
  // Lulesh is flop-dominated: width should give near-linear gains until
  // memory effects kick in.  (Deep load queue so the cache-less test rig
  // doesn't turn the kernel's field loads into the bottleneck.)
  const SimTime t1 =
      run_kernel(1, std::make_unique<Lulesh>(6, 1), "60ns", 10.667, 32);
  const SimTime t2 =
      run_kernel(2, std::make_unique<Lulesh>(6, 1), "60ns", 10.667, 32);
  const SimTime t8 =
      run_kernel(8, std::make_unique<Lulesh>(6, 1), "60ns", 10.667, 32);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t8, t2);
  const double speedup2 = static_cast<double>(t1) / static_cast<double>(t2);
  EXPECT_GT(speedup2, 1.5);
  const double speedup8 = static_cast<double>(t1) / static_cast<double>(t8);
  EXPECT_GT(speedup8, 2.0);
  EXPECT_LT(speedup8, 8.0);  // sub-linear: memory ops don't vanish
}

TEST(CoreModel, WidthBarelyHelpsLatencyBoundChase) {
  const SimTime t1 =
      run_kernel(1, std::make_unique<PointerChase>(1 << 22, 2000));
  const SimTime t8 =
      run_kernel(8, std::make_unique<PointerChase>(1 << 22, 2000));
  const double speedup = static_cast<double>(t1) / static_cast<double>(t8);
  EXPECT_LT(speedup, 1.3);
}

TEST(CoreModel, MemoryLatencySensitivityOfChase) {
  const SimTime fast =
      run_kernel(2, std::make_unique<PointerChase>(1 << 22, 1000), "30ns");
  const SimTime slow =
      run_kernel(2, std::make_unique<PointerChase>(1 << 22, 1000), "120ns");
  // Serialized loads: runtime tracks latency almost proportionally.
  const double ratio = static_cast<double>(slow) / static_cast<double>(fast);
  EXPECT_GT(ratio, 2.5);
}

TEST(CoreModel, MlpHidesLatencyForIndependentLoads) {
  // GUPS loads are independent: more outstanding loads => faster.
  const SimTime mlp1 = run_kernel(
      2, std::make_unique<Gups>(1 << 22, 2000, 9), "60ns", 10.667, 1);
  const SimTime mlp8 = run_kernel(
      2, std::make_unique<Gups>(1 << 22, 2000, 9), "60ns", 10.667, 8);
  const double speedup =
      static_cast<double>(mlp1) / static_cast<double>(mlp8);
  EXPECT_GT(speedup, 2.0);
}

TEST(CoreModel, BandwidthSensitivityOfStream) {
  // Pure streaming against a slow memory: the bus serialization term
  // dominates, so 4x the bandwidth shortens the run.  (Without a cache
  // the requests are 8B, so the bandwidths are chosen low enough that
  // serialization — not the outstanding-load limit — is the bottleneck;
  // the line-granularity bandwidth study lives in the integration tests.)
  const SimTime bw_low = run_kernel(
      4, std::make_unique<StreamTriad>(1 << 14, 1), "60ns", 0.5);
  const SimTime bw_high = run_kernel(
      4, std::make_unique<StreamTriad>(1 << 14, 1), "60ns", 2.0);
  EXPECT_LT(bw_high, bw_low);
  const double speedup =
      static_cast<double>(bw_low) / static_cast<double>(bw_high);
  EXPECT_GT(speedup, 1.5);
}

TEST(CoreModel, LineSplitProducesMultipleRequests) {
  // A 24-byte load at offset 56 crosses a 64B boundary: 2 memory reads.
  class OneWideLoad final : public Workload {
   public:
    bool next(Op& op) override {
      if (done_) return false;
      done_ = true;
      op = {OpType::kLoad, 56, 24, false};
      return true;
    }
    [[nodiscard]] const std::string& name() const override { return name_; }

   private:
    std::string name_ = "test.split";
    bool done_ = false;
  };
  auto rig = make_rig(core_params(2), std::make_unique<OneWideLoad>());
  rig->sim.run();
  EXPECT_EQ(rig->mc->reads(), 2u);
  EXPECT_TRUE(rig->core->done());
}

TEST(CoreModel, SleepsWhileBlockedOnMemory) {
  auto rig = make_rig(core_params(2, 1),
                      std::make_unique<PointerChase>(1 << 20, 200), "200ns");
  rig->sim.run();
  const auto* sleeps = dynamic_cast<const Counter*>(
      rig->sim.stats().find("cpu", "sleeps"));
  ASSERT_NE(sleeps, nullptr);
  EXPECT_GT(sleeps->count(), 100u);
  // Busy cycles are far fewer than total cycles (the core skipped idle
  // time instead of ticking through it).
  const auto* busy = dynamic_cast<const Counter*>(
      rig->sim.stats().find("cpu", "busy_cycles"));
  const double total_cycles =
      static_cast<double>(rig->core->completion_time()) /
      static_cast<double>(rig->core->clock_period());
  EXPECT_LT(static_cast<double>(busy->count()), total_cycles * 0.5);
}

TEST(CoreModel, MissingWorkloadThrowsAtSetup) {
  Simulation sim;
  Params p = core_params(2);
  sim.add_component<Core>("cpu", p);
  Params mp;
  mp.set("backend", "simple");
  sim.add_component<mem::MemoryController>("mc", mp);
  sim.connect("cpu", "mem", "mc", "cpu", kNanosecond);
  EXPECT_THROW(sim.initialize(), ConfigError);
}

TEST(CoreModel, ConfigValidation) {
  Simulation sim;
  Params p = core_params(0);
  EXPECT_THROW(sim.add_component<Core>("c1", p), ConfigError);
  p = core_params(2);
  p.set("max_loads", "0");
  EXPECT_THROW(sim.add_component<Core>("c2", p), ConfigError);
}

TEST(CoreModel, DeterministicCompletionTime) {
  const SimTime a = run_kernel(4, std::make_unique<Gups>(1 << 20, 500, 3));
  const SimTime b = run_kernel(4, std::make_unique<Gups>(1 << 20, 500, 3));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sst::proc
