// Trace record / replay: round trips, tee recording, error handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "core/sst.h"
#include "mem/memory_controller.h"
#include "proc/core_model.h"
#include "proc/kernels.h"
#include "proc/trace.h"
#include "proc/workload_factory.h"

namespace sst::proc {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "sst_trace_" + tag + "_" +
         std::to_string(::getpid()) + ".trc";
}

std::vector<Op> drain_ops(Workload& w) {
  std::vector<Op> out;
  Op op;
  while (w.next(op)) out.push_back(op);
  return out;
}

bool ops_equal(const Op& a, const Op& b) {
  return a.type == b.type && a.addr == b.addr && a.size == b.size &&
         a.depends_on_loads == b.depends_on_loads;
}

TEST(Trace, RoundTripPreservesEveryOp) {
  const std::string path = temp_path("roundtrip");
  Gups original(1 << 16, 500, 3);
  Gups reference(1 << 16, 500, 3);
  const std::uint64_t written = write_trace(original, path);
  EXPECT_GT(written, 500u);

  TraceWorkload replay(path);
  const std::vector<Op> expect = drain_ops(reference);
  const std::vector<Op> got = drain_ops(replay);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(ops_equal(got[i], expect[i])) << "op " << i;
  }
  std::remove(path.c_str());
}

TEST(Trace, DependencyFlagSurvives) {
  const std::string path = temp_path("dep");
  PointerChase chase(1 << 16, 50);
  write_trace(chase, path);
  TraceWorkload replay(path);
  const auto ops = drain_ops(replay);
  std::uint64_t dep_loads = 0;
  for (const Op& op : ops) {
    if (op.type == OpType::kLoad && op.depends_on_loads) ++dep_loads;
  }
  EXPECT_EQ(dep_loads, 50u);
  std::remove(path.c_str());
}

TEST(Trace, MaxOpsTruncates) {
  const std::string path = temp_path("truncate");
  StreamTriad w(1000, 1);
  EXPECT_EQ(write_trace(w, path, 42), 42u);
  TraceWorkload replay(path);
  EXPECT_EQ(drain_ops(replay).size(), 42u);
  std::remove(path.c_str());
}

TEST(Trace, TracingWorkloadTees) {
  const std::string path = temp_path("tee");
  auto traced = std::make_unique<TracingWorkload>(
      std::make_unique<StreamTriad>(100, 1), path);
  StreamTriad reference(100, 1);
  const auto live = drain_ops(*traced);
  const auto expect = drain_ops(reference);
  ASSERT_EQ(live.size(), expect.size());
  EXPECT_EQ(traced->ops_recorded(), live.size());

  TraceWorkload replay(path);
  const auto got = drain_ops(replay);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(ops_equal(got[i], expect[i])) << "op " << i;
  }
  std::remove(path.c_str());
}

TEST(Trace, ReplayedSimulationMatchesLive) {
  // The whole point of traces: replaying must reproduce the simulated
  // run exactly.
  const std::string path = temp_path("sim");
  {
    Hpccg w(6, 6, 6, 1);
    write_trace(w, path);
  }
  auto run_with = [](WorkloadPtr w) {
    Simulation sim;
    Params cp{{"clock", "2GHz"}, {"issue_width", "4"}};
    auto* cpu = sim.add_component<Core>("cpu", cp);
    cpu->set_workload(std::move(w));
    Params mp{{"backend", "dram"}, {"preset", "DDR3"}};
    sim.add_component<mem::MemoryController>("mc", mp);
    sim.connect("cpu", "mem", "mc", "cpu", 2 * kNanosecond);
    sim.run();
    return cpu->completion_time();
  };
  const SimTime live = run_with(std::make_unique<Hpccg>(6, 6, 6, 1));
  const SimTime replayed = run_with(std::make_unique<TraceWorkload>(path));
  EXPECT_EQ(live, replayed);
  std::remove(path.c_str());
}

TEST(Trace, FactoryBuildsTraceWorkload) {
  const std::string path = temp_path("factory");
  {
    StreamTriad w(64, 1);
    write_trace(w, path);
  }
  Params p;
  p.set("workload", "trace");
  p.set("trace_file", path);
  auto w = make_workload(p);
  EXPECT_NE(w->name().find("trace:"), std::string::npos);
  EXPECT_EQ(drain_ops(*w).size(), 64u * 6);
  std::remove(path.c_str());
}

TEST(Trace, ErrorsOnMissingOrCorruptFiles) {
  EXPECT_THROW(TraceWorkload("/nonexistent/nope.trc"), ConfigError);

  const std::string bad = temp_path("bad");
  {
    std::ofstream f(bad, std::ios::binary);
    f << "this is not a trace";
  }
  EXPECT_THROW(TraceWorkload{bad}, ConfigError);
  std::remove(bad.c_str());

  // Truncated record after a valid header.
  const std::string cut = temp_path("cut");
  {
    std::ofstream f(cut, std::ios::binary);
    f.write(kTraceMagic, sizeof kTraceMagic);
    f.write("abc", 3);
  }
  TraceWorkload replay(cut);
  Op op;
  EXPECT_THROW((void)replay.next(op), ConfigError);
  std::remove(cut.c_str());
}

}  // namespace
}  // namespace sst::proc
