// Small reusable components for engine tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/sst.h"

namespace sst::testing {

/// Event carrying one integer.
class IntEvent final : public Event {
 public:
  explicit IntEvent(std::int64_t v) : value(v) {}
  std::int64_t value;
};

/// Sends `count` pings and records the round-trip time of each reply.
/// Primary component: ends the simulation when done.
class Pinger final : public Component {
 public:
  explicit Pinger(Params& params) {
    count_ = params.find<std::uint32_t>("count", 10);
    link_ = configure_link("port",
                           [this](EventPtr ev) { on_reply(std::move(ev)); });
    register_as_primary();
  }

  void setup() override {
    sent_at_ = now();
    link_->send(make_event<IntEvent>(0));
  }

  std::vector<SimTime> round_trips;
  std::vector<std::int64_t> values;

 private:
  void on_reply(EventPtr ev) {
    auto reply = event_cast<IntEvent>(std::move(ev));
    round_trips.push_back(now() - sent_at_);
    values.push_back(reply->value);
    if (round_trips.size() >= count_) {
      primary_ok_to_end_sim();
      return;
    }
    sent_at_ = now();
    link_->send(make_event<IntEvent>(reply->value + 1));
  }

  Link* link_;
  std::uint32_t count_;
  SimTime sent_at_ = 0;
};

/// Echoes every event back, incrementing the value.
class Echo final : public Component {
 public:
  explicit Echo(Params&) {
    link_ = configure_link("port",
                           [this](EventPtr ev) { on_event(std::move(ev)); });
  }

  std::uint64_t echoed = 0;

 private:
  void on_event(EventPtr ev) {
    auto msg = event_cast<IntEvent>(std::move(ev));
    ++echoed;
    link_->send(make_event<IntEvent>(msg->value + 1));
  }

  Link* link_;
};

/// Counts clock ticks; unregisters after `limit` ticks.
class Ticker final : public Component {
 public:
  explicit Ticker(Params& params) {
    limit_ = params.find<std::uint64_t>("limit", 100);
    const SimTime period = params.find_period("clock", "1GHz");
    register_clock(period, [this](Cycle c) {
      ++ticks;
      last_cycle = c;
      tick_times.push_back(now());
      return ticks >= limit_;
    });
  }

  std::uint64_t ticks = 0;
  Cycle last_cycle = 0;
  std::vector<SimTime> tick_times;

 private:
  std::uint64_t limit_;
};

/// PHOLD-style component: on each event, forwards to a random neighbour
/// after a random delay.  Used for engine throughput and parallel tests.
class PholdNode final : public Component {
 public:
  explicit PholdNode(Params& params) {
    fanout_ = params.find<std::uint32_t>("fanout", 2);
    min_delay_ = params.find_time("min_delay", "1ns");
    for (std::uint32_t i = 0; i < fanout_; ++i) {
      links_.push_back(configure_link(
          "port" + std::to_string(i),
          [this](EventPtr ev) { on_event(std::move(ev)); },
          /*optional=*/true));
    }
    initial_events_ = params.find<std::uint32_t>("initial_events", 0);
  }

  void setup() override {
    // Connectivity is fixed once wiring is done; cache the connected
    // subset here so forward() is allocation-free on the hot path.
    for (Link* l : links_) {
      if (l->connected()) connected_.push_back(l);
    }
    for (std::uint32_t i = 0; i < initial_events_; ++i) {
      forward(make_event<IntEvent>(static_cast<std::int64_t>(i)));
    }
  }

  std::uint64_t received = 0;

 private:
  void on_event(EventPtr ev) {
    ++received;
    forward(std::move(ev));
  }

  void forward(EventPtr ev) {
    if (connected_.empty()) return;
    Link* out = connected_[rng().next_bounded(connected_.size())];
    out->send(std::move(ev), rng().next_bounded(10) * min_delay_);
  }

  std::vector<Link*> links_;
  std::vector<Link*> connected_;
  std::uint32_t fanout_;
  std::uint32_t initial_events_ = 0;
  SimTime min_delay_;
};

}  // namespace sst::testing
