// Link fault models: config validation, seed-stable streams, drop /
// duplicate / delay semantics, and bit-identical behaviour across rank
// counts.
#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "../test_components.h"

namespace sst::fault {
namespace {

using sst::testing::IntEvent;
using sst::testing::PholdNode;

TEST(LinkFaultConfig, RejectsOutOfRangeProbabilities) {
  LinkFaultConfig cfg;
  cfg.drop_prob = 1.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.drop_prob = -0.1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.drop_prob = 0.6;
  cfg.dup_prob = 0.6;  // sum > 1
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.dup_prob = 0.0;
  cfg.delay_min = 10;
  cfg.delay_max = 5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(LinkFaultConfig, AcceptsValidConfig) {
  LinkFaultConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.dup_prob = 0.3;
  cfg.delay_prob = 0.4;
  cfg.delay_min = 1;
  cfg.delay_max = 100;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LinkFault, StableHashIsFnv1a) {
  // Standard FNV-1a 64-bit vectors: the hash (and thus every per-endpoint
  // fault seed) must never change across platforms or releases.
  EXPECT_EQ(stable_hash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stable_hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(stable_hash("ep0.net"), stable_hash("ep1.net"));
}

TEST(LinkFault, SameSeedSameDecisions) {
  LinkFaultConfig cfg;
  cfg.drop_prob = 0.5;
  LinkFaultModel a(cfg, 42);
  LinkFaultModel b(cfg, 42);
  const NullEvent ev;
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.on_send(ev).drop, b.on_send(ev).drop);
  }
}

TEST(LinkFault, DifferentSeedDifferentStream) {
  LinkFaultConfig cfg;
  cfg.drop_prob = 0.5;
  LinkFaultModel a(cfg, 42);
  LinkFaultModel b(cfg, 43);
  const NullEvent ev;
  bool differed = false;
  for (int i = 0; i < 64 && !differed; ++i) {
    differed = a.on_send(ev).drop != b.on_send(ev).drop;
  }
  EXPECT_TRUE(differed);  // P(identical) = 2^-64
}

/// Sends `count` IntEvents at setup; peer records arrivals.
class Blaster final : public Component {
 public:
  explicit Blaster(Params& params) {
    count_ = params.find<std::uint32_t>("count", 100);
    link_ = configure_link("port", [](EventPtr) {});
  }
  void setup() override {
    for (std::uint32_t i = 0; i < count_; ++i) {
      link_->send(make_event<IntEvent>(i), i * kNanosecond);
    }
  }

 private:
  Link* link_;
  std::uint32_t count_;
};

class Sink final : public Component {
 public:
  explicit Sink(Params&) {
    configure_link("port", [this](EventPtr ev) {
      auto msg = event_cast<IntEvent>(std::move(ev));
      values.push_back(msg->value);
      times.push_back(now());
    });
  }
  std::vector<std::int64_t> values;
  std::vector<SimTime> times;
};

struct WireRig {
  Simulation sim{SimConfig{.end_time = 10 * kMillisecond}};
  Blaster* src;
  Sink* dst;

  explicit WireRig(const LinkFaultConfig& cfg, std::uint32_t count = 100) {
    Params bp;
    bp.set("count", std::to_string(count));
    Params sp;
    src = sim.add_component<Blaster>("src", bp);
    dst = sim.add_component<Sink>("dst", sp);
    sim.connect("src", "port", "dst", "port", kNanosecond);
    install_link_fault(sim, "src", "port", cfg);
  }

  [[nodiscard]] std::uint64_t counter(const char* name) const {
    const auto* c = dynamic_cast<const Counter*>(
        sim.stats().find("src", std::string("port.") + name));
    return c != nullptr ? c->count() : 0;
  }
};

TEST(LinkFault, DropAllDeliversNothing) {
  LinkFaultConfig cfg;
  cfg.drop_prob = 1.0;
  WireRig rig(cfg);
  rig.sim.run();
  EXPECT_TRUE(rig.dst->values.empty());
  EXPECT_EQ(rig.counter("fault_dropped"), 100u);
}

TEST(LinkFault, UnclonableEventsDeliverOnceOnDuplicate) {
  // IntEvent does not implement clone(): the duplicate is skipped, the
  // original still arrives, and the model records the miss.
  LinkFaultConfig cfg;
  cfg.dup_prob = 1.0;
  WireRig rig(cfg);
  rig.sim.run();
  EXPECT_EQ(rig.dst->values.size(), 100u);
  EXPECT_EQ(rig.counter("fault_duplicated"), 100u);
}

TEST(LinkFault, CloneableEventsArriveTwiceOnDuplicate) {
  class TwinEvent final : public Event {
   public:
    explicit TwinEvent(std::int64_t v) : value(v) {}
    [[nodiscard]] EventPtr clone() const override {
      return std::make_unique<TwinEvent>(value);
    }
    std::int64_t value;
  };
  class TwinSender final : public Component {
   public:
    explicit TwinSender(Params&) {
      link_ = configure_link("port", [](EventPtr) {});
    }
    void setup() override {
      for (int i = 0; i < 10; ++i) {
        link_->send(make_event<TwinEvent>(i), i * kNanosecond);
      }
    }
    Link* link_;
  };
  class TwinSink final : public Component {
   public:
    explicit TwinSink(Params&) {
      configure_link("port", [this](EventPtr) { ++received; });
    }
    std::uint64_t received = 0;
  };
  Simulation sim{SimConfig{.end_time = kMillisecond}};
  Params p;
  sim.add_component<TwinSender>("src", p);
  auto* snk = sim.add_component<TwinSink>("dst", p);
  sim.connect("src", "port", "dst", "port", kNanosecond);
  LinkFaultConfig cfg;
  cfg.dup_prob = 1.0;
  install_link_fault(sim, "src", "port", cfg);
  sim.run();
  EXPECT_EQ(snk->received, 20u);
}

TEST(LinkFault, DelayShiftsArrivalWithinBounds) {
  LinkFaultConfig cfg;
  cfg.delay_prob = 1.0;
  cfg.delay_min = 5 * kNanosecond;
  cfg.delay_max = 9 * kNanosecond;
  WireRig rig(cfg, 50);
  rig.sim.run();
  ASSERT_EQ(rig.dst->times.size(), 50u);
  for (std::size_t i = 0; i < rig.dst->times.size(); ++i) {
    // Send at i ns + 1ns link latency + [5, 9] ns fault delay.  Delayed
    // events may reorder; check bounds against the recorded payload.
    const auto v = static_cast<SimTime>(rig.dst->values[i]);
    const SimTime base = v * kNanosecond + kNanosecond;
    EXPECT_GE(rig.dst->times[i], base + 5 * kNanosecond);
    EXPECT_LE(rig.dst->times[i], base + 9 * kNanosecond);
  }
  EXPECT_EQ(rig.counter("fault_delayed"), 50u);
}

TEST(LinkFault, InstallValidatesComponentAndPort) {
  Simulation sim;
  Params p;
  sim.add_component<Sink>("only", p);
  LinkFaultConfig cfg;
  cfg.drop_prob = 0.5;
  EXPECT_THROW(install_link_fault(sim, "ghost", "port", cfg), ConfigError);
  EXPECT_THROW(install_link_fault(sim, "only", "ghost", cfg), ConfigError);
}

// --- Determinism across rank counts -------------------------------------

struct PholdRun {
  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> dropped;
  std::vector<std::uint64_t> delayed;
  std::uint64_t events = 0;
};

PholdRun run_faulty_ring(unsigned ranks) {
  constexpr std::uint32_t kNodes = 8;
  Simulation sim{SimConfig{.num_ranks = ranks,
                           .end_time = 50 * kMicrosecond,
                           .seed = 7}};
  std::vector<PholdNode*> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    Params p;
    p.set("fanout", "2");
    p.set("initial_events", "4");
    nodes.push_back(
        sim.add_component<PholdNode>("n" + std::to_string(i), p));
  }
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    // Ring: n_i.port0 -> n_{i+1}.port1.
    sim.connect("n" + std::to_string(i), "port0",
                "n" + std::to_string((i + 1) % kNodes), "port1",
                10 * kNanosecond);
  }
  fault::LinkFaultConfig cfg;
  cfg.drop_prob = 0.05;
  cfg.delay_prob = 0.3;
  cfg.delay_min = kNanosecond;
  cfg.delay_max = 20 * kNanosecond;
  for (std::uint32_t i = 0; i < kNodes; i += 2) {
    install_link_fault(sim, "n" + std::to_string(i), "port0", cfg);
  }
  const RunStats stats = sim.run();
  PholdRun out;
  out.events = stats.events_processed;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    out.received.push_back(nodes[i]->received);
    const auto* d = dynamic_cast<const Counter*>(
        sim.stats().find("n" + std::to_string(i), "port0.fault_dropped"));
    const auto* w = dynamic_cast<const Counter*>(
        sim.stats().find("n" + std::to_string(i), "port0.fault_delayed"));
    out.dropped.push_back(d != nullptr ? d->count() : 0);
    out.delayed.push_back(w != nullptr ? w->count() : 0);
  }
  return out;
}

TEST(LinkFault, FaultyRingBitIdenticalAcrossRankCounts) {
  const PholdRun serial = run_faulty_ring(1);
  const PholdRun parallel = run_faulty_ring(4);
  EXPECT_EQ(serial.events, parallel.events);
  EXPECT_EQ(serial.received, parallel.received);
  EXPECT_EQ(serial.dropped, parallel.dropped);
  EXPECT_EQ(serial.delayed, parallel.delayed);
  // The scenario actually exercised the fault models.
  std::uint64_t total_faults = 0;
  for (const auto d : serial.dropped) total_faults += d;
  for (const auto d : serial.delayed) total_faults += d;
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace sst::fault
