// SECDED ECC model: check-bit math, outcome classification, and the
// memory controller's corrected / uncorrected / silent error accounting.
#include <gtest/gtest.h>

#include "fault/ecc.h"
#include "mem/memory_controller.h"
#include "../mem/mem_test_util.h"

namespace sst::fault {
namespace {

using sst::mem::MemoryController;
using sst::mem::testing::MemDriver;

TEST(Secded, CheckBitCounts) {
  // Hamming r: smallest r with 2^r >= data + r + 1, plus overall parity.
  EXPECT_EQ(secded_check_bits(64), 8u);   // SECDED(72,64)
  EXPECT_EQ(secded_check_bits(32), 7u);   // SECDED(39,32)
  EXPECT_EQ(secded_check_bits(8), 5u);    // SECDED(13,8)
  EXPECT_EQ(secded_check_bits(1), 3u);
}

TEST(Secded, WordBitsIncludeCheckBits) {
  const SecdedModel with(1e-6, 64, true);
  EXPECT_EQ(with.word_bits(), 72u);
  const SecdedModel without(1e-6, 64, false);
  EXPECT_EQ(without.word_bits(), 64u);
}

TEST(Secded, DisabledModelStaysClean) {
  SecdedModel model(0.0);
  EXPECT_FALSE(model.enabled());
  // No RNG draw when disabled: the stream stays untouched.
  rng::XorShift128Plus a(5);
  rng::XorShift128Plus b(5);
  EXPECT_EQ(model.sample(a), EccOutcome::kClean);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Secded, ClassifyBoundaries) {
  const SecdedModel model(1e-4);
  EXPECT_GT(model.p_single(), 0.0);
  EXPECT_GT(model.p_multi(), 0.0);
  EXPECT_LT(model.p_multi(), model.p_single());
  // u below p_multi: multi-bit flip, uncorrectable.
  EXPECT_EQ(model.classify(0.0), EccOutcome::kUncorrected);
  // u in [p_multi, p_multi + p_single): single-bit flip, corrected.
  EXPECT_EQ(model.classify(model.p_multi()), EccOutcome::kCorrected);
  // u past both: clean word.
  EXPECT_EQ(model.classify(0.999999), EccOutcome::kClean);
}

TEST(Secded, WithoutEccEveryFlipIsSilent) {
  const SecdedModel model(1e-4, 64, /*secded=*/false);
  EXPECT_EQ(model.classify(0.0), EccOutcome::kSilent);
  EXPECT_EQ(model.classify(0.999999), EccOutcome::kClean);
}

TEST(Secded, RejectsBadParameters) {
  EXPECT_THROW(SecdedModel(-0.1), ConfigError);
  EXPECT_THROW(SecdedModel(1.0), ConfigError);
  EXPECT_THROW(SecdedModel(1e-6, 0), ConfigError);
}

struct McRig {
  Simulation sim;
  MemDriver* driver;
  MemoryController* mc;
};

std::unique_ptr<McRig> make_rig(const std::string& ber,
                                const std::string& ecc) {
  auto rig = std::make_unique<McRig>();
  Params dp;
  rig->driver = rig->sim.add_component<MemDriver>("driver", dp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("ber", ber);
  mp.set("ecc", ecc);
  rig->mc = rig->sim.add_component<MemoryController>("mc", mp);
  rig->sim.connect("driver", "mem", "mc", "cpu", kNanosecond);
  for (int i = 0; i < 400; ++i) {
    rig->driver->read_at((i + 1) * kMicrosecond,
                         static_cast<std::uint64_t>(i) * 64, 64);
  }
  return rig;
}

TEST(MemoryEcc, SecdedCountsCorrectedAndUncorrected) {
  // ber 5e-3 over 72-bit words: ~25% single-bit, ~5% multi-bit per word,
  // 8 words per 64B read, 400 reads — plenty of both outcomes.
  auto rig = make_rig("5e-3", "secded");
  rig->sim.run();
  EXPECT_GT(rig->mc->corrected_errors(), 0u);
  EXPECT_GT(rig->mc->uncorrected_errors(), 0u);
  EXPECT_EQ(rig->mc->silent_errors(), 0u);
}

TEST(MemoryEcc, WithoutEccErrorsAreSilent) {
  auto rig = make_rig("5e-3", "none");
  rig->sim.run();
  EXPECT_GT(rig->mc->silent_errors(), 0u);
  EXPECT_EQ(rig->mc->corrected_errors(), 0u);
  EXPECT_EQ(rig->mc->uncorrected_errors(), 0u);
}

TEST(MemoryEcc, ZeroBerMeansZeroErrors) {
  auto rig = make_rig("0", "secded");
  rig->sim.run();
  EXPECT_EQ(rig->mc->corrected_errors(), 0u);
  EXPECT_EQ(rig->mc->uncorrected_errors(), 0u);
  EXPECT_EQ(rig->mc->silent_errors(), 0u);
}

TEST(MemoryEcc, ErrorCountsAreDeterministic) {
  auto a = make_rig("5e-3", "secded");
  a->sim.run();
  auto b = make_rig("5e-3", "secded");
  b->sim.run();
  EXPECT_EQ(a->mc->corrected_errors(), b->mc->corrected_errors());
  EXPECT_EQ(a->mc->uncorrected_errors(), b->mc->uncorrected_errors());
}

TEST(MemoryEcc, FatalUncorrectedThrows) {
  Simulation sim;
  Params dp;
  auto* driver = sim.add_component<MemDriver>("driver", dp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("ber", "0.05");  // virtually every word multi-bit flips
  mp.set("fatal_uncorrected", "true");
  sim.add_component<MemoryController>("mc", mp);
  sim.connect("driver", "mem", "mc", "cpu", kNanosecond);
  driver->read_at(kMicrosecond, 0x0, 4096);
  EXPECT_THROW(sim.run(), SimulationError);
}

TEST(MemoryEcc, RejectsUnknownEccKind) {
  Simulation sim;
  Params mp;
  mp.set("ecc", "chipkill");
  EXPECT_THROW(sim.add_component<MemoryController>("mc", mp), ConfigError);
}

}  // namespace
}  // namespace sst::fault
