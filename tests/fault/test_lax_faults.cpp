// Lax synchronization under fault injection: dropping, duplicating, and
// delaying cross-rank traffic must never deadlock the lax engine or leak
// timestamp corrections past the configured skew bound — and the whole
// combination stays deterministic, so the watchdog never has to fire.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "../test_components.h"

namespace sst::fault {
namespace {

using sst::testing::PholdNode;

struct LaxFaultResult {
  std::vector<std::uint64_t> received;
  RunStats stats;
};

/// 8-node PHOLD ring at `ranks` ranks, lax mode, with drop+dup+delay
/// faults installed on every node's forward port (covers every cut link).
/// The watchdog is armed: a deadlock or livelock turns into a loud
/// WatchdogError instead of hanging the test binary.
LaxFaultResult run_lax_faulted(unsigned ranks, SimTime skew) {
  Simulation sim(SimConfig{.num_ranks = ranks,
                           .end_time = 20 * kMicrosecond,
                           .seed = 7,
                           .partition = PartitionStrategy::kLinear,
                           .watchdog_seconds = 60.0,
                           .sync_mode = SyncMode::kLax,
                           .lax_skew = skew});
  constexpr unsigned kNodes = 8;
  Params p;
  p.set("fanout", "2");
  p.set("initial_events", "3");
  p.set("min_delay", "10ns");
  for (unsigned i = 0; i < kNodes; ++i) {
    sim.add_component<PholdNode>("n" + std::to_string(i), p);
  }
  for (unsigned i = 0; i < kNodes; ++i) {
    sim.connect("n" + std::to_string(i), "port0",
                "n" + std::to_string((i + 1) % kNodes), "port1",
                100 * kNanosecond);
  }
  LinkFaultConfig cfg;
  cfg.drop_prob = 0.05;
  cfg.dup_prob = 0.05;
  cfg.delay_prob = 0.10;
  cfg.delay_min = 10 * kNanosecond;
  cfg.delay_max = 500 * kNanosecond;
  for (unsigned i = 0; i < kNodes; ++i) {
    install_link_fault(sim, "n" + std::to_string(i), "port0", cfg);
  }
  LaxFaultResult r;
  r.stats = sim.run();
  for (unsigned i = 0; i < kNodes; ++i) {
    r.received.push_back(
        dynamic_cast<PholdNode*>(sim.find_component("n" + std::to_string(i)))
            ->received);
  }
  return r;
}

TEST(LaxFaults, DropDupDelayCompleteWithoutDeadlock) {
  const LaxFaultResult r = run_lax_faulted(4, kMicrosecond);
  // The run finished inside the watchdog budget (no WatchdogError, no
  // DeadlockError) and actually simulated something.
  EXPECT_GT(r.stats.events_processed, 100u);
  EXPECT_EQ(r.stats.sync_mode, SyncMode::kLax);
}

TEST(LaxFaults, CorrectionsStayInsideSkewBudget) {
  // Fault delays push events into the future and drops remove them;
  // neither can widen a straggler correction, so the bound holds even
  // under heavy fault pressure.
  const SimTime skew = kMicrosecond;
  const LaxFaultResult r = run_lax_faulted(4, skew);
  EXPECT_LT(r.stats.lax_max_skew, skew);
}

TEST(LaxFaults, FaultedLaxRunsAreDeterministic) {
  // Fault decisions are seed-derived and the lax horizon uses no wall
  // clock: two identical runs must agree event-for-event.
  const LaxFaultResult a = run_lax_faulted(2, kMicrosecond);
  const LaxFaultResult b = run_lax_faulted(2, kMicrosecond);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.stats.events_processed, b.stats.events_processed);
  EXPECT_EQ(a.stats.lax_stragglers, b.stats.lax_stragglers);
  EXPECT_EQ(a.stats.lax_max_skew, b.stats.lax_max_skew);
}

}  // namespace
}  // namespace sst::fault
