// Network-level fault tolerance: rerouting around dead router ports, the
// ACK/timeout retry protocol, duplicate suppression, and structured
// delivery-failure reporting.
#include <gtest/gtest.h>

#include "fault/fault_model.h"
#include "net/motifs.h"
#include "net/topology.h"

namespace sst::net {
namespace {

std::uint64_t counter(const Simulation& sim, const std::string& component,
                      const std::string& name) {
  const auto* c =
      dynamic_cast<const Counter*>(sim.stats().find(component, name));
  return c != nullptr ? c->count() : 0;
}

struct TorusRig {
  Simulation sim{SimConfig{.end_time = 10 * kSecond}};
  std::vector<AllreduceMotif*> motifs;
  Topology topo;

  explicit TorusRig(Params params) {
    std::vector<NetEndpoint*> eps;
    for (std::uint32_t i = 0; i < 16; ++i) {
      Params p = params;
      motifs.push_back(
          sim.add_component<AllreduceMotif>("rank" + std::to_string(i), p));
      eps.push_back(motifs.back());
    }
    TopologySpec spec;
    spec.kind = TopologySpec::Kind::kTorus2D;
    spec.x = 4;
    spec.y = 4;
    topo = build_topology(sim, spec, eps);
  }
};

Params reliable_allreduce_params() {
  Params p;
  p.set("iterations", "6");
  p.set("msg_bytes", "64");
  p.set("ack", "true");
  p.set("retry_max", "10");
  p.set("retry_timeout", "20us");
  return p;
}

TEST(NetFaults, AllreduceCompletesAroundDeadPort) {
  TorusRig rig(reliable_allreduce_params());
  // Kill the rtr5 <-> rtr6 cable (+x out of rtr5, -x out of rtr6) before
  // any traffic flows.
  rig.topo.routers[5]->schedule_port_fail(0, 1);
  rig.topo.routers[6]->schedule_port_fail(1, 1);
  rig.sim.run();
  std::uint64_t reroutes = 0;
  for (const auto* r : rig.topo.routers) {
    reroutes += counter(rig.sim, r->name(), "reroutes");
  }
  std::uint64_t failures = 0;
  for (const auto* m : rig.motifs) {
    EXPECT_TRUE(m->motif_finished()) << m->name();
    failures += m->delivery_failures();
  }
  EXPECT_GT(reroutes, 0u);
  EXPECT_EQ(failures, 0u);
  EXPECT_FALSE(rig.topo.routers[5]->port_alive(0));
}

TEST(NetFaults, PortHealRestoresRoutingAndCountsEvents) {
  TorusRig rig(reliable_allreduce_params());
  rig.topo.routers[5]->schedule_port_fail(0, 1);
  rig.topo.routers[5]->schedule_port_heal(0, 50 * kMicrosecond);
  rig.sim.run();
  for (const auto* m : rig.motifs) {
    EXPECT_TRUE(m->motif_finished()) << m->name();
  }
  EXPECT_TRUE(rig.topo.routers[5]->port_alive(0));
  EXPECT_EQ(counter(rig.sim, "rtr5", "port_fault_events"), 2u);
}

TEST(NetFaults, SchedulingValidatesPortAndTime) {
  TorusRig rig(reliable_allreduce_params());
  EXPECT_THROW(rig.topo.routers[0]->schedule_port_fail(99, kNanosecond),
               ConfigError);
  EXPECT_THROW(rig.topo.routers[0]->schedule_port_fail(0, 0), ConfigError);
}

/// Minimal concrete endpoint recording deliveries and failures.
class ProbeEndpoint final : public NetEndpoint {
 public:
  explicit ProbeEndpoint(Params& p) : NetEndpoint(p) {}
  using NetEndpoint::send_message;
  std::uint64_t delivered = 0;
  std::uint64_t failed_cb = 0;

 private:
  void on_message(NodeId, std::uint64_t, std::uint64_t, SimTime) override {
    ++delivered;
  }
  void on_delivery_failed(NodeId, std::uint64_t, std::uint64_t) override {
    ++failed_cb;
  }
};

struct PairRig {
  Simulation sim{SimConfig{.end_time = kSecond}};
  ProbeEndpoint* a;
  ProbeEndpoint* b;

  explicit PairRig(Params ep) {
    Params pa = ep;
    Params pb = ep;
    a = sim.add_component<ProbeEndpoint>("a", pa);
    b = sim.add_component<ProbeEndpoint>("b", pb);
    TopologySpec s;
    s.kind = TopologySpec::Kind::kMesh2D;
    s.x = 2;
    s.y = 1;
    build_topology(sim, s, {a, b});
  }
};

TEST(NetFaults, RetriesRecoverFromLossyLink) {
  Params ep;
  ep.set("ack", "true");
  ep.set("retry_max", "20");
  ep.set("retry_timeout", "10us");
  PairRig rig(ep);
  // Half the packets (data and tail alike) vanish on a's uplink.
  fault::LinkFaultConfig cfg;
  cfg.drop_prob = 0.5;
  fault::install_link_fault(rig.sim, "a", "net", cfg);
  rig.sim.initialize();
  for (int i = 0; i < 10; ++i) rig.a->send_message(1, 4096, 0);
  rig.sim.run();
  EXPECT_EQ(rig.b->delivered, 10u);
  EXPECT_GT(rig.a->retries(), 0u);
  EXPECT_EQ(rig.a->delivery_failures(), 0u);
}

TEST(NetFaults, ExhaustedRetriesReportFailureInsteadOfThrowing) {
  Params ep;
  ep.set("ack", "true");
  ep.set("retry_max", "2");
  ep.set("retry_timeout", "5us");
  PairRig rig(ep);
  fault::LinkFaultConfig cfg;
  cfg.drop_prob = 1.0;  // nothing ever gets through
  fault::install_link_fault(rig.sim, "a", "net", cfg);
  rig.sim.initialize();
  rig.a->send_message(1, 256, 7);
  EXPECT_NO_THROW(rig.sim.run());
  EXPECT_EQ(rig.b->delivered, 0u);
  EXPECT_EQ(rig.a->retries(), 2u);
  EXPECT_EQ(rig.a->delivery_failures(), 1u);
  EXPECT_EQ(rig.a->failed_cb, 1u);
}

TEST(NetFaults, RetryMaxZeroDetectsWithoutRetransmitting) {
  Params ep;
  ep.set("ack", "true");
  ep.set("retry_max", "0");
  ep.set("retry_timeout", "5us");
  PairRig rig(ep);
  fault::LinkFaultConfig cfg;
  cfg.drop_prob = 1.0;
  fault::install_link_fault(rig.sim, "a", "net", cfg);
  rig.sim.initialize();
  rig.a->send_message(1, 256, 0);
  rig.sim.run();
  EXPECT_EQ(rig.a->retries(), 0u);
  EXPECT_EQ(rig.a->delivery_failures(), 1u);
}

TEST(NetFaults, DuplicatedPacketsDeliverExactlyOnce) {
  Params ep;
  PairRig rig(ep);
  fault::LinkFaultConfig cfg;
  cfg.dup_prob = 1.0;  // every packet arrives twice
  fault::install_link_fault(rig.sim, "a", "net", cfg);
  rig.sim.initialize();
  for (int i = 0; i < 5; ++i) rig.a->send_message(1, 4096, 0);
  rig.sim.run();
  EXPECT_EQ(rig.b->delivered, 5u);
  EXPECT_GT(counter(rig.sim, "b", "dup_packets"), 0u);
}

TEST(NetFaults, AckModeIsTransparentOnHealthyFabric) {
  Params ep;
  ep.set("ack", "true");
  PairRig rig(ep);
  rig.sim.initialize();
  for (int i = 0; i < 8; ++i) {
    rig.a->send_message(1, 1024, 0);
    rig.b->send_message(0, 1024, 0);
  }
  rig.sim.run();
  EXPECT_EQ(rig.a->delivered, 8u);
  EXPECT_EQ(rig.b->delivered, 8u);
  EXPECT_EQ(rig.a->retries(), 0u);
  EXPECT_EQ(rig.b->retries(), 0u);
  EXPECT_GT(counter(rig.sim, "b", "acks_sent"), 0u);
}

}  // namespace
}  // namespace sst::net
