// Watchdog and deadlock detection: hung or deadlocked models must die
// with a diagnostic report instead of hanging the process or ending the
// run silently.
#include <gtest/gtest.h>

#include "core/sst.h"
#include "../test_components.h"

namespace sst {
namespace {

using sst::testing::IntEvent;

/// Primary component that waits for a message which never comes.
class Waiter final : public Component {
 public:
  explicit Waiter(Params&) {
    configure_link("port", [](EventPtr) {}, /*optional=*/true);
    register_as_primary();
  }
};

/// Resends to itself at zero latency forever: simulated time never
/// advances, so only the wall-clock watchdog can stop the run.
class Spinner final : public Component {
 public:
  explicit Spinner(Params&) {
    self_ = configure_self_link("loop", 0, [this](EventPtr) {
      self_->send(make_event<IntEvent>(0));
    });
    register_as_primary();
  }
  void setup() override { self_->send(make_event<IntEvent>(0)); }

 private:
  Link* self_;
};

TEST(Deadlock, SerialDeadlockThrowsDiagnosticReport) {
  Simulation sim;
  Params p;
  sim.add_component<Waiter>("stuck_a", p);
  sim.add_component<Waiter>("stuck_b", p);
  try {
    sim.run();
    FAIL() << "deadlocked run should throw";
  } catch (const SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck_a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stuck_b"), std::string::npos) << msg;
  }
}

TEST(Deadlock, ParallelDeadlockThrowsDiagnosticReport) {
  Simulation sim{SimConfig{.num_ranks = 2}};
  Params p;
  sim.add_component<Waiter>("stuck_a", p);
  sim.add_component<Waiter>("stuck_b", p);
  try {
    sim.run();
    FAIL() << "deadlocked run should throw";
  } catch (const SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
  }
}

TEST(Deadlock, DetectionCanBeDisabled) {
  Simulation sim{SimConfig{.detect_deadlock = false}};
  Params p;
  sim.add_component<Waiter>("stuck", p);
  EXPECT_NO_THROW(sim.run());  // legacy behaviour: silent early end
}

TEST(Deadlock, EventsUntilEndTimeAreNotADeadlock) {
  // A primary that never finishes but still has events queued when
  // end_time fires is a normal truncated run, not a deadlock.
  class Heartbeat final : public Component {
   public:
    explicit Heartbeat(Params&) {
      self_ = configure_self_link("beat", kNanosecond, [this](EventPtr) {
        self_->send(make_event<IntEvent>(0));
      });
      register_as_primary();
    }
    void setup() override { self_->send(make_event<IntEvent>(0)); }

   private:
    Link* self_;
  };
  Simulation sim{SimConfig{.end_time = kMicrosecond}};
  Params p;
  sim.add_component<Heartbeat>("hb", p);
  EXPECT_NO_THROW(sim.run());
}

TEST(Deadlock, CompletedRunIsNotADeadlock) {
  Simulation sim;
  Params p;
  sim.add_component<testing::Pinger>("ping", p);
  sim.add_component<testing::Echo>("echo", p);
  sim.connect("ping", "port", "echo", "port", kNanosecond);
  EXPECT_NO_THROW(sim.run());
}

TEST(Watchdog, KillsWallClockSpin) {
  Simulation sim{SimConfig{.watchdog_seconds = 0.3}};
  Params p;
  sim.add_component<Spinner>("spin", p);
  try {
    sim.run();
    FAIL() << "watchdog should have fired";
  } catch (const SimulationError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("spin"), std::string::npos) << msg;
  }
}

TEST(Watchdog, GenerousBudgetLeavesRunUntouched) {
  Simulation sim{SimConfig{.watchdog_seconds = 30.0}};
  Params p;
  p.set("count", "50");
  auto* pinger = sim.add_component<testing::Pinger>("ping", p);
  sim.add_component<testing::Echo>("echo", p);
  sim.connect("ping", "port", "echo", "port", kNanosecond);
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(pinger->round_trips.size(), 50u);
}

}  // namespace
}  // namespace sst
