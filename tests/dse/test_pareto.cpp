// Pareto frontier + scalarized scoring over aggregated sweep results.
#include <gtest/gtest.h>

#include <sstream>

#include "dse/aggregate.h"

namespace sst::dse {
namespace {

/// Two-objective spec: maximize "a", minimize "b", unit weights.
SweepSpec max_min_spec() {
  SweepSpec spec;
  spec.name = "t";
  Axis ax;
  ax.name = "x";
  ax.path = "/network/x";
  ax.values = {"0"};
  spec.axes.push_back(ax);
  Objective a;
  a.name = "a";
  a.component = "c";
  a.statistic = "a";
  a.maximize = true;
  Objective b;
  b.name = "b";
  b.component = "c";
  b.statistic = "b";
  b.maximize = false;
  spec.objectives = {a, b};
  return spec;
}

PointResult row(std::uint64_t id, double a, double b,
                bool complete = true) {
  PointResult r;
  r.point.id = id;
  r.point.values = {std::to_string(id)};
  r.objectives = {a, b};
  r.complete = complete;
  if (complete) r.status = "ok";
  return r;
}

TEST(Pareto, GoalAwareFrontier) {
  const SweepSpec spec = max_min_spec();
  //           a (max)  b (min)
  // p0:       10       5     dominated by p1 and p2
  // p1:       20       5     dominated by p2 (equal a, worse b)
  // p2:       20       2     frontier
  // p3:       5        1     frontier (worse a, better b than p2)
  std::vector<PointResult> rows = {row(0, 10, 5), row(1, 20, 5),
                                   row(2, 20, 2), row(3, 5, 1)};
  compute_pareto(spec, rows);
  EXPECT_FALSE(rows[0].pareto);
  EXPECT_FALSE(rows[1].pareto);
  EXPECT_TRUE(rows[2].pareto);
  EXPECT_TRUE(rows[3].pareto);
}

TEST(Pareto, ScoreIsWeightedMinMaxNormalization) {
  const SweepSpec spec = max_min_spec();
  std::vector<PointResult> rows = {row(0, 10, 5), row(1, 20, 5),
                                   row(2, 20, 2), row(3, 5, 1)};
  compute_pareto(spec, rows);
  // a spans [5, 20]; canonical b = -b spans [-5, -1].
  EXPECT_NEAR(rows[0].score, (10.0 - 5) / 15 + 0.0, 1e-12);
  EXPECT_NEAR(rows[1].score, 1.0 + 0.0, 1e-12);
  EXPECT_NEAR(rows[2].score, 1.0 + 0.75, 1e-12);
  EXPECT_NEAR(rows[3].score, 0.0 + 1.0, 1e-12);
  const PointResult* best = best_point(rows);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->point.id, 2u);
}

TEST(Pareto, WeightsScaleTheScore) {
  SweepSpec spec = max_min_spec();
  spec.objectives[1].weight = 3.0;
  std::vector<PointResult> rows = {row(0, 10, 5), row(1, 20, 1)};
  compute_pareto(spec, rows);
  EXPECT_NEAR(rows[0].score, 0.0, 1e-12);
  EXPECT_NEAR(rows[1].score, 1.0 + 3.0, 1e-12);
}

TEST(Pareto, IncompleteRowsAreExcluded) {
  const SweepSpec spec = max_min_spec();
  std::vector<PointResult> rows = {row(0, 10, 5),
                                   row(1, 1000, 0, /*complete=*/false),
                                   row(2, 20, 2)};
  compute_pareto(spec, rows);
  EXPECT_FALSE(rows[1].pareto);  // would dominate everything if counted
  EXPECT_DOUBLE_EQ(rows[1].score, 0.0);
  EXPECT_TRUE(rows[2].pareto);
  EXPECT_FALSE(rows[0].pareto);
}

TEST(Pareto, ConstantObjectiveNormalizesToOne) {
  const SweepSpec spec = max_min_spec();
  std::vector<PointResult> rows = {row(0, 7, 7), row(1, 7, 7)};
  compute_pareto(spec, rows);
  // Zero span on both objectives: every row gets the full weight.
  EXPECT_NEAR(rows[0].score, 2.0, 1e-12);
  EXPECT_NEAR(rows[1].score, 2.0, 1e-12);
  EXPECT_TRUE(rows[0].pareto);
  EXPECT_TRUE(rows[1].pareto);
  // Tie on score: best is the lowest point id.
  EXPECT_EQ(best_point(rows)->point.id, 0u);
}

TEST(Pareto, FrontierIsOrderIndependent) {
  const SweepSpec spec = max_min_spec();
  std::vector<PointResult> fwd = {row(0, 10, 5), row(1, 20, 5),
                                  row(2, 20, 2), row(3, 5, 1)};
  std::vector<PointResult> rev = {row(3, 5, 1), row(2, 20, 2),
                                  row(1, 20, 5), row(0, 10, 5)};
  compute_pareto(spec, fwd);
  compute_pareto(spec, rev);
  for (const auto& f : fwd) {
    for (const auto& r : rev) {
      if (f.point.id == r.point.id) {
        EXPECT_EQ(f.pareto, r.pareto) << "point " << f.point.id;
        EXPECT_NEAR(f.score, r.score, 1e-12);
      }
    }
  }
}

TEST(Pareto, ExtractObjectivesReadsStatsDump) {
  const SweepSpec spec = max_min_spec();
  const char* stats = R"([
    {"component": "c", "statistic": "a", "fields": {"count": 42}},
    {"component": "c", "statistic": "b", "fields": {"count": 7}}
  ])";
  const auto values =
      extract_objectives(spec, sdl::JsonValue::parse(stats));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 42.0);
  EXPECT_DOUBLE_EQ(values[1], 7.0);
}

TEST(Pareto, ExtractObjectivesNamesMissingPieces) {
  const SweepSpec spec = max_min_spec();
  try {
    (void)extract_objectives(spec, sdl::JsonValue::parse(
        R"([{"component": "c", "statistic": "b",
             "fields": {"count": 7}}])"));
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_NE(std::string(e.what()).find("c.a"), std::string::npos);
  }
  try {
    (void)extract_objectives(spec, sdl::JsonValue::parse(
        R"([{"component": "c", "statistic": "a",
             "fields": {"sum": 1, "mean": 2}},
            {"component": "c", "statistic": "b",
             "fields": {"count": 7}}])"));
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    // Lists what IS available.
    EXPECT_NE(std::string(e.what()).find("mean"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sum"), std::string::npos);
  }
}

TEST(Pareto, CsvIsStableAndMarksFrontier) {
  const SweepSpec spec = max_min_spec();
  std::vector<PointResult> rows = {row(0, 10, 5), row(1, 20, 2)};
  PointResult pending;
  pending.point.id = 2;
  pending.point.values = {"2"};
  rows.push_back(pending);
  compute_pareto(spec, rows);
  std::ostringstream os;
  write_results_csv(spec, rows, os);
  EXPECT_EQ(os.str(),
            "point,status,x,a,b,pareto,score\n"
            "0,ok,0,10,5,0,0\n"
            "1,ok,1,20,2,1,2\n"
            "2,pending,2,,,0,\n");
}

}  // namespace
}  // namespace sst::dse
