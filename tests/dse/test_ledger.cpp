// Sweep ledger: crash-consistent append/load round trip and the header
// checks that keep a resumed sweep from mixing results across specs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dse/ledger.h"

namespace sst::dse {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sst_ledger_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "ledger.jsonl").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

LedgerRecord make_record(std::uint64_t point, const std::string& status) {
  LedgerRecord r;
  r.point = point;
  r.status = status;
  r.exit_code = status == "ok" ? 0 : 3;
  r.attempts = 2;
  r.values = {"16KiB", "20ns"};
  return r;
}

TEST_F(LedgerTest, AppendLoadRoundTrip) {
  {
    Ledger ledger(path_);
    EXPECT_FALSE(ledger.load("demo", 4));  // absent file = empty ledger
    ledger.append(make_record(2, "ok"), "demo", 4);
    ledger.append(make_record(0, "timeout"), "demo", 4);
  }
  Ledger again(path_);
  EXPECT_TRUE(again.load("demo", 4));
  ASSERT_EQ(again.records().size(), 2u);
  EXPECT_TRUE(again.has(0));
  EXPECT_FALSE(again.has(1));
  const LedgerRecord* rec = again.record(2);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->status, "ok");
  EXPECT_EQ(rec->attempts, 2u);
  EXPECT_EQ(rec->values, (std::vector<std::string>{"16KiB", "20ns"}));
  EXPECT_EQ(again.record(0)->status, "timeout");
  EXPECT_EQ(again.record(0)->exit_code, 3);
}

TEST_F(LedgerTest, ReRecordingReplacesTheRecord) {
  Ledger ledger(path_);
  ledger.append(make_record(1, "timeout"), "demo", 4);
  ledger.append(make_record(1, "ok"), "demo", 4);
  Ledger again(path_);
  EXPECT_TRUE(again.load("demo", 4));
  ASSERT_EQ(again.records().size(), 1u);
  EXPECT_EQ(again.record(1)->status, "ok");
}

TEST_F(LedgerTest, RejectsWrongSweepName) {
  {
    Ledger ledger(path_);
    ledger.append(make_record(0, "ok"), "demo", 4);
  }
  Ledger other(path_);
  try {
    other.load("different", 4);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_NE(std::string(e.what()).find("belongs to sweep 'demo'"),
              std::string::npos);
  }
}

TEST_F(LedgerTest, RejectsWrongPointCount) {
  {
    Ledger ledger(path_);
    ledger.append(make_record(0, "ok"), "demo", 4);
  }
  Ledger other(path_);
  EXPECT_THROW(other.load("demo", 9), SweepError);
}

TEST_F(LedgerTest, ToleratesTornFinalLineButRejectsInteriorDamage) {
  {
    std::ofstream out(path_);
    out << "{\"sweep\":\"demo\",\"points\":4}\n"
        << "{\"point\":0,\"status\":\"ok\",\"values\":[]}\n"
        << "{\"point\":1,\"status\":\"ok\"";  // torn tail: appender killed
  }
  Ledger torn(path_);
  EXPECT_TRUE(torn.load("demo", 4));  // fragment dropped, prefix kept
  EXPECT_TRUE(torn.has(0));
  EXPECT_FALSE(torn.has(1));
  // The repair truncates the fragment, so a subsequent append lands on
  // a fresh line instead of gluing onto it.
  torn.append(make_record(1, "ok"), "demo", 4);
  Ledger again(path_);
  EXPECT_TRUE(again.load("demo", 4));
  EXPECT_TRUE(again.has(0));
  EXPECT_TRUE(again.has(1));

  {
    std::ofstream out(path_, std::ios::trunc);
    out << "{\"sweep\":\"demo\",\"points\":4}\n"
        << "{\"point\":0,\"status\":\"ok\"\n"  // interior: real corruption
        << "{\"point\":1,\"status\":\"ok\",\"values\":[]}\n";
  }
  Ledger damaged(path_);
  EXPECT_THROW(damaged.load("demo", 4), SweepError);
}

TEST_F(LedgerTest, RejectsMissingHeader) {
  {
    std::ofstream out(path_);
    out << "{\"point\":0,\"status\":\"ok\"}\n";
  }
  Ledger ledger(path_);
  EXPECT_THROW(ledger.load("demo", 4), SweepError);
}

TEST_F(LedgerTest, PublishLeavesNoTempFile) {
  Ledger ledger(path_);
  ledger.append(make_record(0, "ok"), "demo", 1);
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just ledger.jsonl, no .tmp.* left behind
}

}  // namespace
}  // namespace sst::dse
