// Sweep-spec parsing: axis expansion, sampling, objectives, and the
// error paths a user-facing spec format must reject loudly.
#include <gtest/gtest.h>

#include "dse/point_gen.h"
#include "dse/sweep_spec.h"

namespace sst::dse {
namespace {

constexpr const char* kMinimal = R"({
  "name": "demo",
  "model": "model.json",
  "axes": [
    {"path": "/components/l1/params/size",
     "values": ["16KiB", "32KiB"]},
    {"path": "/network/link_latency",
     "range": {"from": 10, "to": 40, "steps": 4}, "suffix": "ns"}
  ],
  "objectives": [
    {"component": "cpu", "statistic": "instructions", "goal": "max"},
    {"component": "mc", "statistic": "bytes", "goal": "min",
     "weight": 2.0}
  ],
  "run": {"concurrency": 3, "timeout_seconds": 42}
})";

TEST(SweepSpec, ParsesAxesObjectivesAndRunPolicy) {
  const SweepSpec spec = SweepSpec::from_json_text(kMinimal, "/base");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.model_path, "/base/model.json");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "l1.size");
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"16KiB", "32KiB"}));
  // Linear range, suffix applied: 10, 20, 30, 40 ns.
  EXPECT_EQ(spec.axes[1].values,
            (std::vector<std::string>{"10ns", "20ns", "30ns", "40ns"}));
  EXPECT_EQ(spec.cross_size(), 8u);
  ASSERT_EQ(spec.objectives.size(), 2u);
  EXPECT_EQ(spec.objectives[0].name, "cpu.instructions");
  EXPECT_TRUE(spec.objectives[0].maximize);
  EXPECT_FALSE(spec.objectives[1].maximize);
  EXPECT_DOUBLE_EQ(spec.objectives[1].weight, 2.0);
  EXPECT_EQ(spec.run.concurrency, 3u);
  EXPECT_DOUBLE_EQ(spec.run.timeout_seconds, 42.0);
}

TEST(SweepSpec, LogRangeExpandsGeometrically) {
  const SweepSpec spec = SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/components/c/params/size",
              "range": {"from": 1, "to": 8, "steps": 4, "scale": "log"}}]
  })", "");
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"1", "2", "4", "8"}));
}

TEST(SweepSpec, SingleStepRangeIsJustFrom) {
  const SweepSpec spec = SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x",
              "range": {"from": 5, "to": 9, "steps": 1}}]
  })", "");
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"5"}));
}

TEST(SweepSpec, RoundTripsThroughJson) {
  const SweepSpec spec = SweepSpec::from_json_text(kMinimal, "/base");
  // to_json stores expanded values, so a re-parse reproduces the spec
  // even though the original used a range.
  const SweepSpec again =
      SweepSpec::from_json(spec.to_json(), "/elsewhere");
  EXPECT_EQ(again.name, spec.name);
  ASSERT_EQ(again.axes.size(), spec.axes.size());
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    EXPECT_EQ(again.axes[i].path, spec.axes[i].path);
    EXPECT_EQ(again.axes[i].values, spec.axes[i].values);
  }
  EXPECT_EQ(again.objectives.size(), spec.objectives.size());
  EXPECT_EQ(again.run.concurrency, spec.run.concurrency);
}

TEST(SweepSpecErrors, MissingModel) {
  EXPECT_THROW(SweepSpec::from_json_text(
                   R"({"axes": [{"path": "/network/x", "values": [1]}]})",
                   ""),
               SweepError);
}

TEST(SweepSpecErrors, MissingOrEmptyAxes) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({"model": "m.json"})", ""),
               SweepError);
  EXPECT_THROW(
      SweepSpec::from_json_text(R"({"model": "m.json", "axes": []})", ""),
      SweepError);
}

TEST(SweepSpecErrors, BadAxisPath) {
  try {
    (void)SweepSpec::from_json_text(R"({
      "model": "m.json",
      "axes": [{"path": "components/l1/params/size", "values": [1]}]
    })", "");
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_NE(std::string(e.what()).find("must start with '/'"),
              std::string::npos);
  }
}

TEST(SweepSpecErrors, DuplicateAxisPath) {
  try {
    (void)SweepSpec::from_json_text(R"({
      "model": "m.json",
      "axes": [
        {"path": "/network/x", "values": [1]},
        {"path": "/network/x", "values": [2]}
      ]
    })", "");
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate axis path"),
              std::string::npos);
  }
}

TEST(SweepSpecErrors, EmptyValuesAndEmptyRange) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": []}]
  })", ""), SweepError);
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x",
              "range": {"from": 1, "to": 4, "steps": 0}}]
  })", ""), SweepError);
}

TEST(SweepSpecErrors, ValuesAndRangeAreExclusive) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": [1],
              "range": {"from": 1, "to": 2, "steps": 2}}]
  })", ""), SweepError);
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x"}]
  })", ""), SweepError);
}

TEST(SweepSpecErrors, LogRangeRequiresPositiveEndpoints) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x",
              "range": {"from": 0, "to": 8, "steps": 3,
                        "scale": "log"}}]
  })", ""), SweepError);
}

TEST(SweepSpecErrors, BadSamplingAndGoal) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": [1, 2]}],
    "sample": {"mode": "stratified"}
  })", ""), SweepError);
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": [1, 2]}],
    "sample": {"mode": "random"}
  })", ""), SweepError);  // random without count
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": [1, 2]}],
    "objectives": [{"component": "c", "statistic": "s",
                    "goal": "maximize"}]
  })", ""), SweepError);
}

TEST(SweepSpecErrors, ConcurrencyMustBePositive) {
  EXPECT_THROW(SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [{"path": "/network/x", "values": [1]}],
    "run": {"concurrency": 0}
  })", ""), SweepError);
}

SweepSpec three_by_three() {
  return SweepSpec::from_json_text(R"({
    "model": "m.json",
    "axes": [
      {"path": "/network/x", "values": [1, 2, 3]},
      {"path": "/network/y", "values": [10, 20, 30]}
    ]
  })", "");
}

TEST(PointGen, CrossProductRowMajorLastAxisFastest) {
  const SweepSpec spec = three_by_three();
  const auto points = generate_points(spec);
  ASSERT_EQ(points.size(), 9u);
  EXPECT_EQ(points[0].values, (std::vector<std::string>{"1", "10"}));
  EXPECT_EQ(points[1].values, (std::vector<std::string>{"1", "20"}));
  EXPECT_EQ(points[3].values, (std::vector<std::string>{"2", "10"}));
  EXPECT_EQ(points[8].values, (std::vector<std::string>{"3", "30"}));
  for (std::uint64_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].id, i);
  }
}

TEST(PointGen, RandomSamplingIsSeededAndDistinct) {
  SweepSpec spec = three_by_three();
  spec.sampling.mode = Sampling::Mode::kRandom;
  spec.sampling.count = 4;
  spec.sampling.seed = 7;
  const auto a = generate_points(spec);
  const auto b = generate_points(spec);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);  // same seed, same subset
    if (i > 0) {
      EXPECT_LT(a[i - 1].id, a[i].id);  // distinct, sorted
    }
  }
  spec.sampling.seed = 8;
  const auto c = generate_points(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != c[i].id) differs = true;
  }
  EXPECT_TRUE(differs);  // different seed, different subset
}

TEST(PointGen, RandomCountAtLeastCrossSizeYieldsEverything) {
  SweepSpec spec = three_by_three();
  spec.sampling.mode = Sampling::Mode::kRandom;
  spec.sampling.count = 100;
  EXPECT_EQ(generate_points(spec).size(), 9u);
}

}  // namespace
}  // namespace sst::dse
