// SDL "vm" section: parsing, JSON round trip, defaults merging under
// component params, enable switch semantics, core virt/asid injection,
// override paths, and validation.
#include <gtest/gtest.h>

#include "mem/mem_lib.h"
#include "proc/core_model.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"
#include "vm/vm_lib.h"

namespace sst::sdl {
namespace {

void register_libs() {
  mem::register_library();
  proc::register_library();
  vm::register_library();
}

constexpr const char* kModel = R"({
  "config": {"seed": 5},
  "vm": {
    "enable": true,
    "tlb": {"l1_sets": 8, "l1_ways": 2},
    "walker": {"walk_depth": 3, "huge_pages": "static"}
  },
  "components": [
    {"name": "cpu0", "type": "proc.Core", "params": {"workload": "gups"}},
    {"name": "cpu1", "type": "proc.Core",
     "params": {"workload": "gups", "asid": 9}},
    {"name": "tlb0", "type": "vm.Tlb", "params": {"l1_sets": 4}},
    {"name": "ptw", "type": "vm.PageTableWalker"}
  ]
})";

TEST(VmSdl, ParsesAndRoundTripsVmSection) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  ASSERT_TRUE(g.vm().present);
  EXPECT_TRUE(g.vm().enable);
  EXPECT_EQ(g.vm().tlb_defaults.find<std::uint32_t>("l1_sets", 0), 8u);
  EXPECT_EQ(g.vm().walker_defaults.find<std::uint32_t>("walk_depth", 0), 3u);

  ConfigGraph again = ConfigGraph::from_json_text(g.to_json().dump());
  ASSERT_TRUE(again.vm().present);
  EXPECT_EQ(again.vm().tlb_defaults.find<std::uint32_t>("l1_ways", 0), 2u);
  EXPECT_EQ(again.vm().walker_defaults.find("huge_pages", ""), "static");
}

TEST(VmSdl, DefaultsMergeUnderComponentParams) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  auto sim = g.build();
  auto* tlb = dynamic_cast<vm::Tlb*>(sim->find_component("tlb0"));
  ASSERT_NE(tlb, nullptr);
  EXPECT_EQ(tlb->level_sets(1), 4u);  // component param wins
  EXPECT_EQ(tlb->level_ways(1), 2u);  // section default fills the gap
  auto* ptw =
      dynamic_cast<vm::PageTableWalker*>(sim->find_component("ptw"));
  ASSERT_NE(ptw, nullptr);
  EXPECT_EQ(ptw->walk_depth(), 3u);
}

TEST(VmSdl, CoresGetVirtAndSequentialAsids) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  auto sim = g.build();
  auto* cpu0 = dynamic_cast<proc::Core*>(sim->find_component("cpu0"));
  auto* cpu1 = dynamic_cast<proc::Core*>(sim->find_component("cpu1"));
  ASSERT_NE(cpu0, nullptr);
  ASSERT_NE(cpu1, nullptr);
  EXPECT_TRUE(cpu0->virtual_addressing());
  EXPECT_TRUE(cpu1->virtual_addressing());
  EXPECT_EQ(cpu0->asid(), 0u);
  EXPECT_EQ(cpu1->asid(), 9u);  // explicit asid param wins
}

TEST(VmSdl, EnableFalseDegradesToPassThrough) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  g.apply_override("/vm/enable", "false");
  auto sim = g.build();
  auto* tlb = dynamic_cast<vm::Tlb*>(sim->find_component("tlb0"));
  ASSERT_NE(tlb, nullptr);
  EXPECT_FALSE(tlb->enabled());
  auto* cpu0 = dynamic_cast<proc::Core*>(sim->find_component("cpu0"));
  ASSERT_NE(cpu0, nullptr);
  EXPECT_FALSE(cpu0->virtual_addressing());
}

TEST(VmSdl, OverridesReachSectionDefaults) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  g.apply_override("/vm/tlb/l1_ways", "8");
  g.apply_override("/vm/walker/walk_cache_entries", "0");
  auto sim = g.build();
  auto* tlb = dynamic_cast<vm::Tlb*>(sim->find_component("tlb0"));
  ASSERT_NE(tlb, nullptr);
  EXPECT_EQ(tlb->level_ways(1), 8u);
}

TEST(VmSdl, OverrideErrorsNameAlternatives) {
  register_libs();
  ConfigGraph no_vm = ConfigGraph::from_json_text(R"({"components": []})");
  try {
    no_vm.apply_override("/vm/enable", "false");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no \"vm\" section"),
              std::string::npos);
  }

  ConfigGraph g = ConfigGraph::from_json_text(kModel);
  try {
    g.apply_override("/vm/bogus/x", "1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("/vm/enable"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("/vm/walker/"), std::string::npos);
  }

  try {
    g.apply_override("/nonsense/key", "1");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("/vm"), std::string::npos);
  }
}

TEST(VmSdl, ValidationRequiresTlbWhenEnabled) {
  register_libs();
  ConfigGraph g = ConfigGraph::from_json_text(R"({
    "vm": {"enable": true},
    "components": [{"name": "cpu", "type": "proc.Core"}]
  })");
  const auto problems = g.validate(Factory::instance());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("vm.Tlb"), std::string::npos);

  g.apply_override("/vm/enable", "false");
  EXPECT_TRUE(g.validate(Factory::instance()).empty());
}

}  // namespace
}  // namespace sst::sdl
