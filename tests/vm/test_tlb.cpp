// Tlb: hit/miss accounting, deterministic LRU replacement, miss
// coalescing, multi-level refill, huge-page translation, pass-through
// mode, and configuration validation.
#include <gtest/gtest.h>

#include "vm_test_util.h"

namespace sst::vm {
namespace {

using testing::MemDriver;
using testing::VmRig;

TEST(Tlb, MissThenHitSamePage) {
  auto rig = testing::make_rig(testing::small_tlb(), testing::flat_walker());
  const auto miss = rig->driver->read_at(kNanosecond, 0x1000);
  const auto hit = rig->driver->read_at(10 * kMicrosecond, 0x1F8);
  const auto hit2 = rig->driver->read_at(20 * kMicrosecond, 0x1008);
  rig->sim.run();
  ASSERT_NE(rig->driver->response_time(miss), kTimeNever);
  ASSERT_NE(rig->driver->response_time(hit), kTimeNever);
  // 0x1F8 is a different 4KiB page than 0x1000 -> two walks; 0x1008 hits.
  EXPECT_EQ(rig->tlb->walks(), 2u);
  EXPECT_EQ(rig->tlb->level_misses(1), 2u);
  EXPECT_EQ(rig->tlb->level_hits(1), 1u);
  ASSERT_NE(rig->driver->response_time(hit2), kTimeNever);
}

TEST(Tlb, MissCostsMoreThanHit) {
  auto rig = testing::make_rig(testing::small_tlb(), testing::flat_walker());
  const auto miss = rig->driver->read_at(kNanosecond, 0x4000);
  const auto hit = rig->driver->read_at(10 * kMicrosecond, 0x4008);
  rig->sim.run();
  const SimTime t_miss = rig->driver->response_time(miss) - kNanosecond;
  const SimTime t_hit =
      rig->driver->response_time(hit) - 10 * kMicrosecond;
  // The miss pays a 4-level walk (4 x ~100ns PTE reads) on top of the
  // data access; the hit only the TLB and data-side latency.
  EXPECT_GT(t_miss, t_hit + 300 * kNanosecond);
}

TEST(Tlb, LruReplacementDeterministic) {
  // 1 set x 2 ways: A, B fill the set; touching A makes B the LRU victim.
  auto rig = testing::make_rig(testing::small_tlb(), testing::flat_walker());
  rig->driver->read_at(1 * kMicrosecond, 0x0000);   // A -> walk
  rig->driver->read_at(10 * kMicrosecond, 0x1000);  // B -> walk
  rig->driver->read_at(20 * kMicrosecond, 0x0000);  // A -> hit
  rig->driver->read_at(30 * kMicrosecond, 0x2000);  // C -> walk, evicts B
  rig->driver->read_at(40 * kMicrosecond, 0x0000);  // A -> still a hit
  rig->driver->read_at(50 * kMicrosecond, 0x1000);  // B -> walk again
  rig->sim.run();
  EXPECT_EQ(rig->tlb->walks(), 4u);
  EXPECT_EQ(rig->tlb->level_hits(1), 2u);
  EXPECT_EQ(rig->tlb->level_misses(1), 4u);
}

TEST(Tlb, ReplacementIsRunToRunDeterministic) {
  auto run_once = [] {
    auto rig =
        testing::make_rig(testing::small_tlb(), testing::flat_walker());
    for (int i = 0; i < 24; ++i) {
      rig->driver->read_at((1 + 2 * static_cast<SimTime>(i)) * kMicrosecond,
                           static_cast<Addr>((i * 7) % 5) << 12);
    }
    rig->sim.run();
    return std::pair{rig->tlb->walks(), rig->tlb->level_hits(1)};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Tlb, ConcurrentSamePageMissesCoalesce) {
  auto rig = testing::make_rig(testing::small_tlb(), testing::flat_walker());
  // Both arrive before the first walk completes (walks take ~400ns).
  const auto a = rig->driver->read_at(kNanosecond, 0x3000);
  const auto b = rig->driver->read_at(kNanosecond + 10, 0x3008);
  rig->sim.run();
  ASSERT_NE(rig->driver->response_time(a), kTimeNever);
  ASSERT_NE(rig->driver->response_time(b), kTimeNever);
  EXPECT_EQ(rig->tlb->walks(), 1u);
  EXPECT_EQ(rig->walker->walks(), 1u);
}

TEST(Tlb, SecondLevelHitAvoidsWalk) {
  Params tp;
  tp.set("levels", "2");
  tp.set("l1_sets", "1");
  tp.set("l1_ways", "1");
  tp.set("l2_sets", "16");
  tp.set("l2_ways", "4");
  tp.set("page_sizes", "4KiB");
  auto rig = testing::make_rig(tp, testing::flat_walker());
  rig->driver->read_at(1 * kMicrosecond, 0x0000);   // walk, installs L1+L2
  rig->driver->read_at(10 * kMicrosecond, 0x1000);  // walk, evicts A from L1
  rig->driver->read_at(20 * kMicrosecond, 0x0000);  // L1 miss, L2 hit
  rig->sim.run();
  EXPECT_EQ(rig->tlb->walks(), 2u);
  EXPECT_EQ(rig->tlb->level_hits(2), 1u);
  EXPECT_EQ(rig->tlb->level_misses(1), 3u);
  EXPECT_EQ(rig->tlb->level_misses(2), 2u);
}

TEST(Tlb, StaticHugePageCoversRegion) {
  Params tp = testing::small_tlb();
  tp.set("page_sizes", "4KiB,2MiB");
  Params wp;
  wp.set("walk_depth", "4");
  wp.set("walk_cache_entries", "0");
  wp.set("page_sizes", "4KiB,2MiB");
  wp.set("huge_pages", "static");
  wp.set("huge_ratio", "1.0");
  auto rig = testing::make_rig(tp, wp);
  rig->driver->read_at(1 * kMicrosecond, 0x0000);
  // A different 4KiB page of the same 2MiB region: covered by the entry.
  rig->driver->read_at(10 * kMicrosecond, 0x100000);
  rig->sim.run();
  EXPECT_EQ(rig->tlb->walks(), 1u);
  EXPECT_EQ(rig->tlb->level_hits(1), 1u);
  // A 2MiB leaf sits one radix level up: the walk stops after 3 reads.
  EXPECT_EQ(rig->walker->pte_reads(), 3u);
}

TEST(Tlb, DisabledPassesThrough) {
  Params tp = testing::small_tlb();
  tp.set("enabled", "false");
  VmRig rig;
  Params dp;
  rig.driver = rig.sim.add_component<MemDriver>("driver", dp);
  rig.tlb = rig.sim.add_component<Tlb>("tlb", tp);
  Params mp = testing::simple_mc();
  rig.mc_data = rig.sim.add_component<mem::MemoryController>("mc", mp);
  rig.sim.connect("driver", "mem", "tlb", "cpu", kNanosecond);
  rig.sim.connect("tlb", "mem", "mc", "cpu", kNanosecond);
  const auto id = rig.driver->read_at(kNanosecond, 0x1234000);
  rig.sim.run();
  ASSERT_NE(rig.driver->response_time(id), kTimeNever);
  EXPECT_FALSE(rig.tlb->enabled());
  EXPECT_EQ(rig.tlb->walks(), 0u);
  EXPECT_EQ(rig.tlb->level_misses(1), 0u);
}

TEST(Tlb, RejectsBadGeometry) {
  Simulation sim;
  Params p;
  p.set("l1_sets", "3");  // not a power of two
  EXPECT_THROW(sim.add_component<Tlb>("t", p), ConfigError);
  Params q;
  q.set("levels", "9");
  EXPECT_THROW(sim.add_component<Tlb>("t2", q), ConfigError);
}

}  // namespace
}  // namespace sst::vm
