// TLB-shootdown protocol: broadcast/ACK convergence, idempotent re-ACK
// under drop/dup/delay faults, bounded retries (no deadlock), the storm
// generator, and cross-rank determinism of the whole vm path.
#include <gtest/gtest.h>

#include <tuple>

#include "fault/fault_model.h"
#include "vm_test_util.h"

namespace sst::vm {
namespace {

Params storm_walker(const std::string& period) {
  Params wp;
  wp.set("walk_depth", "2");
  wp.set("page_sizes", "4KiB");
  wp.set("shootdown_period", period);
  wp.set("shootdown_span", "16MiB");
  wp.set("retry_timeout", "1us");
  wp.set("retry_max", "6");
  return wp;
}

/// Keeps the sim alive across the storm window with periodic reads.
void script_reads(testing::VmRig& rig, unsigned n, SimTime spacing) {
  for (unsigned i = 0; i < n; ++i) {
    rig.driver->read_at((1 + static_cast<SimTime>(i)) * spacing,
                        static_cast<Addr>(i % 8) << 12);
  }
}

TEST(Shootdown, CleanLinksAckEveryBroadcast) {
  auto rig = testing::make_rig(testing::small_tlb(), storm_walker("500ns"));
  script_reads(*rig, 50, kMicrosecond);
  rig->sim.run();
  const std::uint64_t sent = rig->walker->shootdowns_sent();
  const std::uint64_t acked = rig->walker->shootdowns_acked();
  EXPECT_GT(sent, 50u);
  // At most the final broadcast can still be in flight at termination.
  EXPECT_LE(sent - acked, 1u);
  EXPECT_EQ(rig->walker->shootdown_retries(), 0u);
  EXPECT_EQ(rig->walker->shootdowns_failed(), 0u);
  EXPECT_GE(rig->tlb->shootdowns(), acked);
}

std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
           std::uint64_t>
run_faulty_storm() {
  SimConfig cfg;
  cfg.fault_seed = 1234;
  auto rig = testing::make_rig(testing::small_tlb(), storm_walker("500ns"),
                               /*connect_inval=*/true, cfg);
  fault::LinkFaultConfig fc;
  fc.drop_prob = 0.2;
  fc.dup_prob = 0.2;
  fc.delay_prob = 0.3;
  fc.delay_min = 10 * kNanosecond;
  fc.delay_max = 500 * kNanosecond;
  // Fault both directions: broadcasts out of the walker, ACKs out of the
  // TLB.  Each endpoint draws from its own deterministic stream.
  fault::install_link_fault(rig->sim, "walker", "inval0", fc);
  fault::install_link_fault(rig->sim, "tlb", "inval", fc);
  script_reads(*rig, 50, kMicrosecond);
  rig->sim.run();
  return {rig->walker->shootdowns_sent(), rig->walker->shootdowns_acked(),
          rig->walker->shootdown_retries(),
          rig->walker->shootdowns_failed(), rig->tlb->shootdowns()};
}

TEST(Shootdown, ConvergesUnderDropDupDelayFaults) {
  // The run completing at all is the no-deadlock claim: every broadcast
  // either fully ACKs or exhausts its bounded retries.
  const auto [sent, acked, retries, failed, received] = run_faulty_storm();
  EXPECT_GT(sent, 50u);
  EXPECT_GT(acked, 0u);
  EXPECT_LE(acked + failed, sent);
  // With 20% drops on ~100 broadcasts, retries are statistically certain.
  EXPECT_GT(retries, 0u);
  // Duplicated deliveries are re-ACKed, never double-applied fatally.
  EXPECT_GE(received, acked);
}

TEST(Shootdown, FaultyRunsAreDeterministic) {
  EXPECT_EQ(run_faulty_storm(), run_faulty_storm());
}

std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>
run_promote(unsigned num_ranks) {
  SimConfig cfg;
  cfg.num_ranks = num_ranks;
  Params tp = testing::small_tlb();
  tp.set("l1_sets", "16");
  tp.set("l1_ways", "4");
  tp.set("page_sizes", "4KiB,2MiB");
  Params wp;
  wp.set("walk_depth", "4");
  wp.set("page_sizes", "4KiB,2MiB");
  wp.set("huge_pages", "promote");
  wp.set("promote_threshold", "4");
  auto rig = testing::make_rig(tp, wp, /*connect_inval=*/true, cfg);
  if (num_ranks > 1) {
    rig->sim.set_component_rank("driver", 0);
    rig->sim.set_component_rank("tlb", 0);
    rig->sim.set_component_rank("walker", 1);
    rig->sim.set_component_rank("mc_data", 1);
    rig->sim.set_component_rank("mc_pt", 1);
  }
  for (int i = 0; i < 8; ++i) {
    rig->driver->read_at((1 + 3 * static_cast<SimTime>(i)) * kMicrosecond,
                         static_cast<Addr>(i) << 12);
  }
  rig->sim.run();
  return {rig->walker->walks(), rig->walker->promotions(),
          rig->walker->shootdowns_acked(), rig->tlb->invalidated_entries()};
}

TEST(Shootdown, VmPathIsRankCountInvariant) {
  const auto serial = run_promote(1);
  EXPECT_EQ(std::get<1>(serial), 1u);  // the region promoted
  EXPECT_EQ(serial, run_promote(2));
}

}  // namespace
}  // namespace sst::vm
