// Shared rig for the vm tests: a scripted MemDriver issuing virtual
// addresses into a Tlb, with the data path and the walker's PTE path each
// backed by a simple MemoryController.
#pragma once

#include <memory>

#include "../mem/mem_test_util.h"
#include "mem/memory_controller.h"
#include "vm/tlb.h"
#include "vm/walker.h"

namespace sst::vm::testing {

using mem::testing::MemDriver;

struct VmRig {
  explicit VmRig(SimConfig cfg = {}) : sim(cfg) {}

  Simulation sim;
  MemDriver* driver = nullptr;
  Tlb* tlb = nullptr;
  PageTableWalker* walker = nullptr;
  mem::MemoryController* mc_data = nullptr;
  mem::MemoryController* mc_pt = nullptr;
};

inline Params simple_mc(SimTime latency = 100 * kNanosecond) {
  Params p;
  p.set("backend", "simple");
  p.set("latency", std::to_string(latency) + "ps");
  p.set("bandwidth_gbs", "100");  // effectively latency-only
  return p;
}

/// driver -> tlb -> mc_data, with the walker's PTE reads going to their
/// own controller.  `connect_inval` wires the shootdown broadcast pair.
inline std::unique_ptr<VmRig> make_rig(Params tlb_params,
                                       Params walker_params,
                                       bool connect_inval = true,
                                       SimConfig cfg = {}) {
  auto rig = std::make_unique<VmRig>(cfg);
  Params dp;
  rig->driver = rig->sim.add_component<MemDriver>("driver", dp);
  rig->tlb = rig->sim.add_component<Tlb>("tlb", tlb_params);
  rig->walker =
      rig->sim.add_component<PageTableWalker>("walker", walker_params);
  Params mp = simple_mc();
  rig->mc_data = rig->sim.add_component<mem::MemoryController>("mc_data", mp);
  Params pp = simple_mc();
  rig->mc_pt = rig->sim.add_component<mem::MemoryController>("mc_pt", pp);
  rig->sim.connect("driver", "mem", "tlb", "cpu", kNanosecond);
  rig->sim.connect("tlb", "mem", "mc_data", "cpu", kNanosecond);
  rig->sim.connect("tlb", "ptw", "walker", "tlb0", kNanosecond);
  if (connect_inval) {
    rig->sim.connect("walker", "inval0", "tlb", "inval", kNanosecond);
  }
  rig->sim.connect("walker", "mem", "mc_pt", "cpu", kNanosecond);
  return rig;
}

/// A small single-level TLB with 4KiB pages only: conflict patterns are
/// easy to construct and every miss costs exactly one walk.
inline Params small_tlb() {
  Params p;
  p.set("levels", "1");
  p.set("l1_sets", "1");
  p.set("l1_ways", "2");
  p.set("page_sizes", "4KiB");
  return p;
}

inline Params flat_walker() {
  Params p;
  p.set("walk_depth", "4");
  p.set("walk_cache_entries", "0");
  p.set("page_sizes", "4KiB");
  return p;
}

}  // namespace sst::vm::testing
