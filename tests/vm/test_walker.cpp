// PageTableWalker: radix-depth accounting, walk-cache short-circuiting,
// huge-page promotion, PTE placement determinism, and validation.
#include <gtest/gtest.h>

#include "vm/page_table.h"
#include "vm_test_util.h"

namespace sst::vm {
namespace {

TEST(PageWalk, ColdWalkReadsOnePtePerLevel) {
  auto rig = testing::make_rig(testing::small_tlb(), testing::flat_walker());
  rig->driver->read_at(kNanosecond, 0x7000);
  rig->sim.run();
  EXPECT_EQ(rig->walker->walks(), 1u);
  EXPECT_EQ(rig->walker->pte_reads(), 4u);
  EXPECT_EQ(rig->walker->walk_cache_hits(), 0u);
}

TEST(PageWalk, DepthScalesPteReads) {
  for (std::uint32_t depth : {1u, 2u, 3u, 5u}) {
    Params wp = testing::flat_walker();
    wp.set("walk_depth", std::to_string(depth));
    auto rig = testing::make_rig(testing::small_tlb(), wp);
    rig->driver->read_at(kNanosecond, 0x9000);
    rig->sim.run();
    EXPECT_EQ(rig->walker->pte_reads(), depth) << "depth=" << depth;
  }
}

TEST(PageWalk, WalkCacheShortCircuitsUpperLevels) {
  Params wp = testing::flat_walker();
  wp.set("walk_cache_entries", "16");
  auto rig = testing::make_rig(testing::small_tlb(), wp);
  // Different 4KiB pages in the same 2MiB region: the second walk finds
  // the level-2 step cached and reads only the leaf.
  rig->driver->read_at(1 * kMicrosecond, 0x0000);
  rig->driver->read_at(10 * kMicrosecond, 0x1000);
  rig->sim.run();
  EXPECT_EQ(rig->walker->walks(), 2u);
  EXPECT_EQ(rig->walker->pte_reads(), 5u);  // 4 cold + 1 warm
  EXPECT_EQ(rig->walker->walk_cache_hits(), 1u);
}

TEST(PageWalk, WarmWalkIsFaster) {
  Params wp = testing::flat_walker();
  wp.set("walk_cache_entries", "16");
  auto rig = testing::make_rig(testing::small_tlb(), wp);
  const auto cold = rig->driver->read_at(1 * kMicrosecond, 0x0000);
  const auto warm = rig->driver->read_at(10 * kMicrosecond, 0x1000);
  rig->sim.run();
  const SimTime t_cold =
      rig->driver->response_time(cold) - 1 * kMicrosecond;
  const SimTime t_warm =
      rig->driver->response_time(warm) - 10 * kMicrosecond;
  // Three of four ~100ns PTE reads are skipped.
  EXPECT_GT(t_cold, t_warm + 250 * kNanosecond);
}

TEST(PageWalk, PromotionAfterThresholdWalks) {
  Params tp = testing::small_tlb();
  tp.set("l1_sets", "16");
  tp.set("l1_ways", "4");
  tp.set("page_sizes", "4KiB,2MiB");
  Params wp;
  wp.set("walk_depth", "4");
  wp.set("walk_cache_entries", "0");
  wp.set("page_sizes", "4KiB,2MiB");
  wp.set("huge_pages", "promote");
  wp.set("promote_threshold", "4");
  auto rig = testing::make_rig(tp, wp);
  // Four completed 4KiB walks in one region promote it; the fifth access
  // (a fresh page) walks once more and installs the 2MiB mapping.
  for (int i = 0; i < 5; ++i) {
    rig->driver->read_at((1 + 3 * static_cast<SimTime>(i)) * kMicrosecond,
                         static_cast<Addr>(i) << 12);
  }
  // After promotion, any page of the region hits the 2MiB entry.
  const auto post =
      rig->driver->read_at(30 * kMicrosecond, Addr{0x1ff} << 12);
  rig->sim.run();
  ASSERT_NE(rig->driver->response_time(post), kTimeNever);
  EXPECT_EQ(rig->walker->promotions(), 1u);
  EXPECT_EQ(rig->walker->page_table().promoted_regions(), 1u);
  EXPECT_EQ(rig->walker->walks(), 5u);
  // The shootdown zapped the stale 4KiB entries of the region.
  EXPECT_EQ(rig->tlb->shootdowns(), 1u);
  EXPECT_EQ(rig->tlb->invalidated_entries(), 4u);
  EXPECT_EQ(rig->walker->shootdowns_sent(), 1u);
  EXPECT_EQ(rig->walker->shootdowns_acked(), 1u);
}

TEST(PageWalk, PteAddressesAreDeterministicAndAligned) {
  PageTable::Config cfg;
  cfg.seed = 7;
  cfg.phys_bits = 33;
  PageTable pt(cfg);
  const Addr a = pt.pte_addr(1, 4, 0x12345678000ULL);
  EXPECT_EQ(a, pt.pte_addr(1, 4, 0x12345678000ULL));
  EXPECT_NE(a, pt.pte_addr(2, 4, 0x12345678000ULL));  // asid-separated
  EXPECT_LT(a, Addr{1} << 33);
  EXPECT_EQ(a % cfg.pte_size, 0u);
  // Adjacent pages share the leaf table: same 4KiB frame, adjacent slots.
  const Addr leaf0 = pt.pte_addr(1, 1, 0x0000);
  const Addr leaf1 = pt.pte_addr(1, 1, 0x1000);
  EXPECT_EQ(leaf0 >> kPageShift, leaf1 >> kPageShift);
  EXPECT_EQ(leaf1 - leaf0, cfg.pte_size);
}

TEST(PageWalk, ResolveIsPureAndPageAligned) {
  PageTable::Config cfg;
  cfg.seed = 3;
  cfg.allow_2m = true;
  cfg.policy = PageTable::HugePolicy::kStatic;
  cfg.huge_ratio = 0.5;
  PageTable pt(cfg);
  for (Addr v : {Addr{0}, Addr{0x3fe000}, Addr{0x7fffff000}}) {
    const auto m1 = pt.resolve(9, v);
    const auto m2 = pt.resolve(9, v);
    EXPECT_EQ(m1.pbase, m2.pbase);
    EXPECT_EQ(m1.page_bits, m2.page_bits);
    EXPECT_EQ(m1.vbase & ((Addr{1} << m1.page_bits) - 1), 0u);
    EXPECT_EQ(m1.pbase & ((Addr{1} << m1.page_bits) - 1), 0u);
    EXPECT_LE(v - m1.vbase, (Addr{1} << m1.page_bits) - 1);
  }
}

TEST(PageWalk, RejectsBadConfig) {
  Simulation sim;
  Params p;
  p.set("walk_depth", "0");
  EXPECT_THROW(sim.add_component<PageTableWalker>("w", p), ConfigError);
  Params q;
  q.set("huge_pages", "sometimes");
  EXPECT_THROW(sim.add_component<PageTableWalker>("w2", q), ConfigError);
  Params r;
  r.set("retry_backoff", "0.5");
  EXPECT_THROW(sim.add_component<PageTableWalker>("w3", r), ConfigError);
}

}  // namespace
}  // namespace sst::vm
