// Cache: hits/misses, LRU, write-back, MSHR merging, stall/replay,
// configuration validation.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "mem_test_util.h"

namespace sst::mem {
namespace {

using testing::MemDriver;

struct CacheRig {
  Simulation sim;
  MemDriver* driver;
  Cache* cache;
  MemoryController* mc;
};

std::unique_ptr<CacheRig> make_rig(Params cache_params,
                                   SimTime mem_latency = 100 * kNanosecond) {
  auto rig = std::make_unique<CacheRig>();
  Params dp;
  rig->driver = rig->sim.add_component<MemDriver>("driver", dp);
  rig->cache = rig->sim.add_component<Cache>("l1", cache_params);
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", std::to_string(mem_latency) + "ps");
  mp.set("bandwidth_gbs", "100");  // effectively latency-only
  rig->mc = rig->sim.add_component<MemoryController>("mc", mp);
  rig->sim.connect("driver", "mem", "l1", "cpu", kNanosecond);
  rig->sim.connect("l1", "mem", "mc", "cpu", kNanosecond);
  return rig;
}

Params small_cache() {
  Params p;
  p.set("size", "4KiB");
  p.set("assoc", "2");
  p.set("line_size", "64");
  p.set("hit_latency", "2ns");
  p.set("mshrs", "4");
  return p;
}

TEST(Cache, MissThenHitLatency) {
  auto rig = make_rig(small_cache());
  const auto miss = rig->driver->read_at(kNanosecond, 0x1000);
  const auto hit = rig->driver->read_at(2 * kMicrosecond, 0x1008);
  rig->sim.run();
  const SimTime t_miss = rig->driver->response_time(miss);
  const SimTime t_hit = rig->driver->response_time(hit);
  ASSERT_NE(t_miss, kTimeNever);
  ASSERT_NE(t_hit, kTimeNever);
  // Miss pays the ~100ns memory latency; hit costs a few ns.
  EXPECT_GT(t_miss - kNanosecond, 100 * kNanosecond);
  EXPECT_LT(t_hit - 2 * kMicrosecond, 10 * kNanosecond);
  EXPECT_EQ(rig->cache->hits(), 1u);
  EXPECT_EQ(rig->cache->misses(), 1u);
}

TEST(Cache, SameLineDifferentWordsHit) {
  auto rig = make_rig(small_cache());
  rig->driver->read_at(kNanosecond, 0x2000);
  for (int i = 1; i < 8; ++i) {
    rig->driver->read_at(2 * kMicrosecond + static_cast<SimTime>(i),
                         0x2000 + static_cast<Addr>(i) * 8);
  }
  rig->sim.run();
  EXPECT_EQ(rig->cache->misses(), 1u);
  EXPECT_EQ(rig->cache->hits(), 7u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way sets: three conflicting lines evict the least recently used.
  auto rig = make_rig(small_cache());
  const std::uint32_t sets = rig->cache->num_sets();
  const Addr stride = static_cast<Addr>(sets) * 64;  // same set index
  // Fill both ways, touch A again, then C evicts B (the LRU).
  rig->driver->read_at(1 * kMicrosecond, 0);           // A -> miss
  rig->driver->read_at(2 * kMicrosecond, stride);      // B -> miss
  rig->driver->read_at(3 * kMicrosecond, 0);           // A -> hit
  rig->driver->read_at(4 * kMicrosecond, 2 * stride);  // C -> miss, evicts B
  rig->driver->read_at(5 * kMicrosecond, 0);           // A -> still a hit
  rig->driver->read_at(6 * kMicrosecond, stride);      // B -> miss again
  rig->sim.run();
  EXPECT_EQ(rig->cache->misses(), 4u);
  EXPECT_EQ(rig->cache->hits(), 2u);
}

TEST(Cache, DirtyEvictionWritesBack) {
  auto rig = make_rig(small_cache());
  const std::uint32_t sets = rig->cache->num_sets();
  const Addr stride = static_cast<Addr>(sets) * 64;
  rig->driver->write_at(1 * kMicrosecond, 0);          // dirty A
  rig->driver->read_at(2 * kMicrosecond, stride);      // B
  rig->driver->read_at(3 * kMicrosecond, 2 * stride);  // C evicts dirty A
  rig->sim.run();
  // The controller saw: 2+1 line fills (reads) and 1 write-back.
  EXPECT_EQ(rig->mc->writes(), 1u);
  EXPECT_EQ(rig->mc->reads(), 3u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack) {
  auto rig = make_rig(small_cache());
  const std::uint32_t sets = rig->cache->num_sets();
  const Addr stride = static_cast<Addr>(sets) * 64;
  rig->driver->read_at(1 * kMicrosecond, 0);
  rig->driver->read_at(2 * kMicrosecond, stride);
  rig->driver->read_at(3 * kMicrosecond, 2 * stride);
  rig->sim.run();
  EXPECT_EQ(rig->mc->writes(), 0u);
}

TEST(Cache, MshrMergesConcurrentMissesToSameLine) {
  auto rig = make_rig(small_cache());
  // Three reads of the same line in flight together: one memory fetch.
  rig->driver->read_at(kNanosecond, 0x4000);
  rig->driver->read_at(kNanosecond + 1, 0x4008);
  rig->driver->read_at(kNanosecond + 2, 0x4010);
  rig->sim.run();
  EXPECT_EQ(rig->cache->misses(), 3u);
  EXPECT_EQ(rig->mc->reads(), 1u);
  EXPECT_EQ(rig->driver->responses().size(), 3u);
}

TEST(Cache, MshrExhaustionStallsAndReplays) {
  Params p = small_cache();
  p.set("mshrs", "2");
  auto rig = make_rig(p);
  // Four distinct-line misses at once: two stall but all complete.
  for (int i = 0; i < 4; ++i) {
    rig->driver->read_at(kNanosecond + static_cast<SimTime>(i),
                         static_cast<Addr>(i) * 0x10000);
  }
  rig->sim.run();
  EXPECT_EQ(rig->driver->responses().size(), 4u);
  EXPECT_EQ(rig->mc->reads(), 4u);
  const auto* stalls =
      dynamic_cast<const Counter*>(rig->sim.stats().find("l1", "stalls"));
  ASSERT_NE(stalls, nullptr);
  EXPECT_EQ(stalls->count(), 2u);
}

TEST(Cache, PutMHitMarksDirty) {
  auto rig = make_rig(small_cache());
  rig->driver->read_at(1 * kMicrosecond, 0);  // clean fill
  rig->driver->writeback_at(2 * kMicrosecond, 0);  // upstream PutM -> dirty
  const std::uint32_t sets = rig->cache->num_sets();
  const Addr stride = static_cast<Addr>(sets) * 64;
  rig->driver->read_at(3 * kMicrosecond, stride);
  rig->driver->read_at(4 * kMicrosecond, 2 * stride);  // evicts dirty line
  rig->sim.run();
  EXPECT_EQ(rig->mc->writes(), 1u);
}

TEST(Cache, PutMMissForwardsDownstream) {
  auto rig = make_rig(small_cache());
  rig->driver->writeback_at(kNanosecond, 0x9000);
  // A read to force quiescence/termination.
  rig->driver->read_at(2 * kMicrosecond, 0x100);
  rig->sim.run();
  EXPECT_EQ(rig->mc->writes(), 1u);  // the forwarded PutM
}

TEST(Cache, LineCrossingRequestRejected) {
  auto rig = make_rig(small_cache());
  rig->driver->read_at(kNanosecond, 60, 16);  // crosses 64B boundary
  EXPECT_THROW(rig->sim.run(), SimulationError);
}

TEST(Cache, ConfigValidation) {
  Simulation sim;
  Params p = small_cache();
  p.set("line_size", "48");  // not a power of two
  EXPECT_THROW(sim.add_component<Cache>("bad1", p), ConfigError);
  p = small_cache();
  p.set("size", "3KiB");  // not divisible by line*assoc into pow2 sets
  EXPECT_THROW(sim.add_component<Cache>("bad2", p), ConfigError);
  p = small_cache();
  p.set("assoc", "0");
  EXPECT_THROW(sim.add_component<Cache>("bad3", p), ConfigError);
  p = small_cache();
  p.set("mshrs", "0");
  EXPECT_THROW(sim.add_component<Cache>("bad4", p), ConfigError);
  Params missing;
  EXPECT_THROW(sim.add_component<Cache>("bad5", missing), ConfigError);
}

TEST(Cache, GeometryDerivation) {
  Simulation sim;
  Params p;
  p.set("size", "64KiB");
  p.set("assoc", "8");
  p.set("line_size", "64");
  auto* c = sim.add_component<Cache>("c", p);
  EXPECT_EQ(c->num_sets(), 128u);
  EXPECT_EQ(c->assoc(), 8u);
  EXPECT_EQ(c->line_size(), 64u);
}

}  // namespace
}  // namespace sst::mem
