// Test driver for memory-hierarchy components: issues a scripted sequence
// of MemEvents and records the response times.
#pragma once

#include <utility>
#include <vector>

#include "core/sst.h"
#include "mem/mem_event.h"

namespace sst::mem::testing {

class MemDriver final : public Component {
 public:
  struct Response {
    std::uint64_t req_id;
    MemCmd cmd;
    SimTime time;
  };

  explicit MemDriver(Params&) {
    mem_ = configure_link("mem",
                          [this](EventPtr ev) { on_resp(std::move(ev)); });
    timer_ = configure_self_link("timer", 1, [this](EventPtr ev) {
      issue(std::move(ev));
    });
    register_as_primary();
  }

  /// Schedules a request to be issued at `at` (call before run()).
  std::uint64_t read_at(SimTime at, Addr addr, std::uint32_t size = 8) {
    return add(at, MemCmd::kGetS, addr, size);
  }
  std::uint64_t write_at(SimTime at, Addr addr, std::uint32_t size = 8) {
    return add(at, MemCmd::kGetX, addr, size);
  }
  std::uint64_t writeback_at(SimTime at, Addr addr, std::uint32_t size = 64) {
    return add(at, MemCmd::kPutM, addr, size);
  }

  void setup() override {
    if (pending_responses_ == 0) primary_ok_to_end_sim();
    for (const auto& r : script_) {
      timer_->send(
          std::make_unique<ScriptEvent>(r), r.at > 0 ? r.at - 1 : 0);
    }
  }

  [[nodiscard]] const std::vector<Response>& responses() const {
    return responses_;
  }
  /// Completion time of request `id`; fails the test contractually when
  /// absent (returns kTimeNever).
  [[nodiscard]] SimTime response_time(std::uint64_t id) const {
    for (const auto& r : responses_) {
      if (r.req_id == id) return r.time;
    }
    return kTimeNever;
  }

 private:
  struct Scripted {
    std::uint64_t id;
    MemCmd cmd;
    Addr addr;
    std::uint32_t size;
    SimTime at;
  };

  class ScriptEvent final : public Event {
   public:
    explicit ScriptEvent(Scripted s) : req(s) {}
    Scripted req;
  };

  std::uint64_t add(SimTime at, MemCmd cmd, Addr addr, std::uint32_t size) {
    const std::uint64_t id = next_id_++;
    script_.push_back({id, cmd, addr, size, at});
    if (expects_response(cmd)) ++pending_responses_;
    return id;
  }

  void issue(EventPtr ev) {
    auto script = event_cast<ScriptEvent>(std::move(ev));
    const Scripted& r = script->req;
    mem_->send(std::make_unique<MemEvent>(r.cmd, r.addr, r.size, r.id));
  }

  void on_resp(EventPtr ev) {
    auto resp = event_cast<MemEvent>(std::move(ev));
    responses_.push_back({resp->req_id(), resp->cmd(), now()});
    if (--pending_responses_ == 0) primary_ok_to_end_sim();
  }

  Link* mem_;
  Link* timer_;
  std::vector<Scripted> script_;
  std::vector<Response> responses_;
  std::uint64_t next_id_ = 1;
  std::uint64_t pending_responses_ = 0;
};

}  // namespace sst::mem::testing
