// Next-line prefetcher: correctness, usefulness accounting, pollution
// avoidance, MSHR interplay, end-to-end benefit for streams.
#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "mem_test_util.h"
#include "proc/core_model.h"
#include "proc/kernels.h"

namespace sst::mem {
namespace {

using testing::MemDriver;

struct Rig {
  Simulation sim;
  MemDriver* driver;
  Cache* cache;
  MemoryController* mc;
};

std::unique_ptr<Rig> make_rig(const char* prefetch, unsigned degree = 2,
                              unsigned mshrs = 8) {
  auto rig = std::make_unique<Rig>();
  Params dp;
  rig->driver = rig->sim.add_component<MemDriver>("driver", dp);
  Params cp;
  cp.set("size", "4KiB");
  cp.set("assoc", "2");
  cp.set("hit_latency", "2ns");
  cp.set("mshrs", std::to_string(mshrs));
  cp.set("prefetch", prefetch);
  cp.set("prefetch_degree", std::to_string(degree));
  rig->cache = rig->sim.add_component<Cache>("l1", cp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", "100ns");
  mp.set("bandwidth_gbs", "100");
  rig->mc = rig->sim.add_component<MemoryController>("mc", mp);
  rig->sim.connect("driver", "mem", "l1", "cpu", kNanosecond);
  rig->sim.connect("l1", "mem", "mc", "cpu", kNanosecond);
  return rig;
}

TEST(Prefetch, NextLineFetchesAhead) {
  auto rig = make_rig("nextline", 2);
  rig->driver->read_at(kNanosecond, 0x1000);
  rig->sim.run();
  // One demand fetch + two prefetches reached memory.
  EXPECT_EQ(rig->mc->reads(), 3u);
  EXPECT_EQ(rig->cache->prefetches_issued(), 2u);
  EXPECT_EQ(rig->cache->misses(), 1u);
}

TEST(Prefetch, PrefetchedLineTurnsMissIntoHit) {
  auto rig = make_rig("nextline", 2);
  rig->driver->read_at(kNanosecond, 0x1000);           // miss, pf 0x1040/0x1080
  const auto id = rig->driver->read_at(2 * kMicrosecond, 0x1040);
  rig->sim.run();
  EXPECT_EQ(rig->cache->misses(), 1u);  // the second read hits
  EXPECT_EQ(rig->cache->prefetch_hits(), 1u);
  // And the hit is fast.
  EXPECT_LT(rig->driver->response_time(id) - 2 * kMicrosecond,
            10 * kNanosecond);
}

TEST(Prefetch, MergingIntoInFlightPrefetchCountsAsUseful) {
  auto rig = make_rig("nextline", 2);
  rig->driver->read_at(kNanosecond, 0x1000);
  // Before the prefetch of 0x1040 returns (100ns memory), demand it.
  rig->driver->read_at(kNanosecond + 20 * kNanosecond, 0x1040);
  rig->sim.run();
  EXPECT_EQ(rig->cache->prefetch_hits(), 1u);
  EXPECT_EQ(rig->mc->reads(), 3u);  // no duplicate fetch
  EXPECT_EQ(rig->driver->responses().size(), 2u);
}

TEST(Prefetch, NeverConsumesLastMshrsForPrefetch) {
  // 2 MSHRs: a demand miss takes one; only one prefetch can be issued.
  auto rig = make_rig("nextline", 4, /*mshrs=*/2);
  rig->driver->read_at(kNanosecond, 0x1000);
  rig->sim.run();
  EXPECT_EQ(rig->cache->prefetches_issued(), 1u);
  EXPECT_EQ(rig->mc->reads(), 2u);
}

TEST(Prefetch, DisabledByDefault) {
  auto rig = make_rig("none");
  rig->driver->read_at(kNanosecond, 0x1000);
  rig->sim.run();
  EXPECT_EQ(rig->cache->prefetches_issued(), 0u);
  EXPECT_EQ(rig->mc->reads(), 1u);
}

TEST(Prefetch, UnknownPolicyRejected) {
  Simulation sim;
  Params p;
  p.set("size", "4KiB");
  p.set("prefetch", "oracle");
  EXPECT_THROW(sim.add_component<Cache>("bad", p), ConfigError);
}

TEST(Prefetch, SkipsResidentLines) {
  auto rig = make_rig("nextline", 2);
  // Warm 0x1040 so the later miss at 0x1000 only prefetches 0x1080.
  rig->driver->read_at(kNanosecond, 0x1040);  // miss + pf 0x1080, 0x10c0
  rig->driver->read_at(3 * kMicrosecond, 0x1000);
  rig->sim.run();
  // Second miss prefetches only lines not already present (0x1040 is
  // resident; 0x1080 came from the first prefetch).
  EXPECT_EQ(rig->cache->prefetches_issued(), 2u);
  EXPECT_EQ(rig->mc->reads(), 2u + 2u);
}

TEST(Prefetch, SpeedsUpStreamEndToEnd) {
  auto run_stream = [](const char* pf) {
    Simulation sim;
    Params cp{{"clock", "2GHz"}, {"issue_width", "4"},
              {"max_loads", "16"}, {"max_stores", "16"}};
    auto* cpu = sim.add_component<proc::Core>("cpu", cp);
    cpu->set_workload(std::make_unique<proc::StreamTriad>(4096, 1));
    Params l1p{{"size", "32KiB"}, {"assoc", "4"}, {"hit_latency", "1ns"},
               {"mshrs", "8"}, {"prefetch", pf}, {"prefetch_degree", "4"}};
    auto* l1 = sim.add_component<Cache>("l1", l1p);
    Params mp{{"backend", "simple"}, {"latency", "80ns"},
              {"bandwidth_gbs", "50"}};
    sim.add_component<MemoryController>("mc", mp);
    sim.connect("cpu", "mem", "l1", "cpu", 500);
    sim.connect("l1", "mem", "mc", "cpu", 2 * kNanosecond);
    sim.run();
    return std::make_pair(cpu->completion_time(), l1);
  };
  const auto [t_off, l1_off] = run_stream("none");
  const auto [t_on, l1_on] = run_stream("nextline");
  EXPECT_LT(t_on, t_off);
  // Prefetches were overwhelmingly useful on a pure stream.
  EXPECT_GT(l1_on->prefetch_hits(),
            l1_on->prefetches_issued() * 8 / 10);
}

}  // namespace
}  // namespace sst::mem
