// Bus: routing by source port, serialization/occupancy, error paths.
#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/memory_controller.h"
#include "mem_test_util.h"

namespace sst::mem {
namespace {

using testing::MemDriver;

struct BusRig {
  Simulation sim;
  std::vector<MemDriver*> drivers;
  Bus* bus;
  MemoryController* mc;
};

std::unique_ptr<BusRig> make_rig(unsigned ports, const std::string& bw) {
  auto rig = std::make_unique<BusRig>();
  Params bp;
  bp.set("num_ports", std::to_string(ports));
  bp.set("bandwidth", bw);
  bp.set("header", "1ns");
  rig->bus = rig->sim.add_component<Bus>("bus", bp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", "10ns");
  mp.set("bandwidth_gbs", "1000");
  rig->mc = rig->sim.add_component<MemoryController>("mc", mp);
  rig->sim.connect("bus", "down", "mc", "cpu", kNanosecond);
  for (unsigned i = 0; i < ports; ++i) {
    Params dp;
    auto* d = rig->sim.add_component<MemDriver>("drv" + std::to_string(i),
                                                dp);
    rig->drivers.push_back(d);
    rig->sim.connect("drv" + std::to_string(i), "mem", "bus",
                     "up" + std::to_string(i), kNanosecond);
  }
  return rig;
}

TEST(MemBus, RoutesResponsesToRequester) {
  auto rig = make_rig(3, "100GB/s");
  std::vector<std::uint64_t> ids;
  for (unsigned i = 0; i < 3; ++i) {
    ids.push_back(rig->drivers[i]->read_at(
        kNanosecond * (i + 1), 0x1000 * (i + 1)));
  }
  rig->sim.run();
  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_EQ(rig->drivers[i]->responses().size(), 1u)
        << "driver " << i << " response count";
    EXPECT_EQ(rig->drivers[i]->responses()[0].req_id, ids[i]);
  }
  EXPECT_EQ(rig->mc->reads(), 3u);
}

TEST(MemBus, ContentionSerializesTransfers) {
  // Slow bus: two simultaneous 64B requests; the second is delayed by the
  // first's occupancy.
  auto rig = make_rig(2, "1GB/s");  // 64B = 64ns on the bus
  const auto a = rig->drivers[0]->read_at(kNanosecond, 0x100, 64);
  const auto b = rig->drivers[1]->read_at(kNanosecond, 0x200, 64);
  rig->sim.run();
  const SimTime ta = rig->drivers[0]->response_time(a);
  const SimTime tb = rig->drivers[1]->response_time(b);
  ASSERT_NE(ta, kTimeNever);
  ASSERT_NE(tb, kTimeNever);
  // Responses also serialize, so the gap is >= one transfer (65ns).
  const SimTime gap = tb > ta ? tb - ta : ta - tb;
  EXPECT_GE(gap, 60 * kNanosecond);
}

TEST(MemBus, FastBusAddsLittleDelay) {
  auto rig = make_rig(2, "1000GB/s");
  const auto a = rig->drivers[0]->read_at(kNanosecond, 0x100, 64);
  rig->sim.run();
  // 1ns link x4 + 1ns header x2 + 10ns memory + small serialization.
  EXPECT_LT(rig->drivers[0]->response_time(a), 25 * kNanosecond);
}

TEST(MemBus, ValidatesConfig) {
  Simulation sim;
  Params p;
  p.set("num_ports", "0");
  EXPECT_THROW(sim.add_component<Bus>("bad", p), ConfigError);
  Params missing;
  EXPECT_THROW(sim.add_component<Bus>("bad2", missing), ConfigError);
}

TEST(MemBus, UnusedUpstreamPortsAreOptional) {
  // A 4-port bus with only 2 drivers connected must initialize fine.
  auto rig = make_rig(2, "100GB/s");
  (void)rig;
  Simulation sim;
  Params bp;
  bp.set("num_ports", "4");
  sim.add_component<Bus>("bus", bp);
  Params mp;
  mp.set("backend", "simple");
  sim.add_component<MemoryController>("mc", mp);
  sim.connect("bus", "down", "mc", "cpu", kNanosecond);
  Params dp;
  sim.add_component<MemDriver>("d0", dp);
  sim.connect("d0", "mem", "bus", "up0", kNanosecond);
  EXPECT_NO_THROW(sim.initialize());
}

}  // namespace
}  // namespace sst::mem
