// MESI snooping coherence: state transitions, invalidations,
// interventions, upgrade races, write-back races, invariants.
#include <gtest/gtest.h>

#include "mem/coherence.h"
#include "mem/memory_controller.h"
#include "mem_test_util.h"

namespace sst::mem {
namespace {

using testing::MemDriver;

struct SmpRig {
  Simulation sim;
  std::vector<MemDriver*> drivers;
  std::vector<CoherentCache*> caches;
  SnoopBus* bus;
  MemoryController* mc;
};

std::unique_ptr<SmpRig> make_rig(unsigned ncaches,
                                 const char* cache_size = "4KiB") {
  auto rig = std::make_unique<SmpRig>();
  Params bp;
  bp.set("num_caches", std::to_string(ncaches));
  bp.set("occupancy", "4ns");
  rig->bus = rig->sim.add_component<SnoopBus>("bus", bp);
  Params mp;
  mp.set("backend", "simple");
  mp.set("latency", "60ns");
  mp.set("bandwidth_gbs", "50");
  rig->mc = rig->sim.add_component<MemoryController>("mc", mp);
  rig->sim.connect("bus", "mem", "mc", "cpu", 2 * kNanosecond);
  for (unsigned i = 0; i < ncaches; ++i) {
    const std::string s = std::to_string(i);
    Params dp;
    rig->drivers.push_back(
        rig->sim.add_component<MemDriver>("drv" + s, dp));
    Params cp;
    cp.set("size", cache_size);
    cp.set("assoc", "2");
    cp.set("hit_latency", "1ns");
    rig->caches.push_back(
        rig->sim.add_component<CoherentCache>("l1_" + s, cp));
    rig->sim.connect("drv" + s, "mem", "l1_" + s, "cpu", 500);
    rig->sim.connect("l1_" + s, "bus", "bus", "cache" + s, kNanosecond);
  }
  return rig;
}

// MESI invariant: at most one M/E holder; M/E excludes any S holder.
void check_invariant(const SmpRig& rig, Addr a) {
  unsigned exclusive = 0, shared = 0;
  for (const auto* c : rig.caches) {
    switch (c->state_of(a)) {
      case MesiState::kModified:
      case MesiState::kExclusive:
        ++exclusive;
        break;
      case MesiState::kShared:
        ++shared;
        break;
      case MesiState::kInvalid:
        break;
    }
  }
  EXPECT_LE(exclusive, 1u) << "multiple exclusive holders of " << a;
  if (exclusive > 0) {
    EXPECT_EQ(shared, 0u) << "shared alongside exclusive for " << a;
  }
}

TEST(Mesi, FirstReadInstallsExclusive) {
  auto rig = make_rig(2);
  rig->drivers[0]->read_at(kNanosecond, 0x1000);
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x1000), MesiState::kExclusive);
  EXPECT_EQ(rig->caches[1]->state_of(0x1000), MesiState::kInvalid);
  check_invariant(*rig, 0x1000);
}

TEST(Mesi, SecondReaderDemotesToShared) {
  auto rig = make_rig(2);
  rig->drivers[0]->read_at(kNanosecond, 0x1000);
  rig->drivers[1]->read_at(kMicrosecond, 0x1000);
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x1000), MesiState::kShared);
  EXPECT_EQ(rig->caches[1]->state_of(0x1000), MesiState::kShared);
  check_invariant(*rig, 0x1000);
}

TEST(Mesi, WriteInstallsModifiedAndInvalidatesOthers) {
  auto rig = make_rig(3);
  rig->drivers[0]->read_at(kNanosecond, 0x2000);
  rig->drivers[1]->read_at(kMicrosecond, 0x2000);
  rig->drivers[2]->write_at(2 * kMicrosecond, 0x2000);
  rig->sim.run();
  EXPECT_EQ(rig->caches[2]->state_of(0x2000), MesiState::kModified);
  EXPECT_EQ(rig->caches[0]->state_of(0x2000), MesiState::kInvalid);
  EXPECT_EQ(rig->caches[1]->state_of(0x2000), MesiState::kInvalid);
  EXPECT_EQ(rig->caches[0]->invalidations_received() +
                rig->caches[1]->invalidations_received(),
            2u);
  check_invariant(*rig, 0x2000);
}

TEST(Mesi, SilentExclusiveToModified) {
  auto rig = make_rig(2);
  rig->drivers[0]->read_at(kNanosecond, 0x3000);
  rig->drivers[0]->write_at(kMicrosecond, 0x3000);
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x3000), MesiState::kModified);
  // E->M took no bus transaction: only the initial GetS.
  EXPECT_EQ(rig->bus->transactions(), 1u);
  EXPECT_EQ(rig->caches[0]->hits(), 1u);  // the write hit in E
}

TEST(Mesi, SharedWriteUsesUpgrade) {
  auto rig = make_rig(2);
  rig->drivers[0]->read_at(kNanosecond, 0x4000);
  rig->drivers[1]->read_at(kMicrosecond, 0x4000);     // both S
  rig->drivers[0]->write_at(2 * kMicrosecond, 0x4000);  // upgrade
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x4000), MesiState::kModified);
  EXPECT_EQ(rig->caches[1]->state_of(0x4000), MesiState::kInvalid);
  const auto* upg = dynamic_cast<const Counter*>(
      rig->sim.stats().find("l1_0", "upgrades"));
  EXPECT_EQ(upg->count(), 1u);
  check_invariant(*rig, 0x4000);
}

TEST(Mesi, DirtyReadTriggersIntervention) {
  auto rig = make_rig(2);
  rig->drivers[0]->write_at(kNanosecond, 0x5000);       // M in cache 0
  rig->drivers[1]->read_at(kMicrosecond, 0x5000);       // c2c transfer
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x5000), MesiState::kShared);
  EXPECT_EQ(rig->caches[1]->state_of(0x5000), MesiState::kShared);
  EXPECT_EQ(rig->bus->interventions(), 1u);
  EXPECT_EQ(rig->caches[0]->interventions_supplied(), 1u);
  // Memory received the write-back.
  EXPECT_GE(rig->mc->writes(), 1u);
  check_invariant(*rig, 0x5000);
}

TEST(Mesi, DirtyWriteTransfersOwnership) {
  auto rig = make_rig(2);
  rig->drivers[0]->write_at(kNanosecond, 0x6000);
  rig->drivers[1]->write_at(kMicrosecond, 0x6000);
  rig->sim.run();
  EXPECT_EQ(rig->caches[0]->state_of(0x6000), MesiState::kInvalid);
  EXPECT_EQ(rig->caches[1]->state_of(0x6000), MesiState::kModified);
  EXPECT_EQ(rig->bus->interventions(), 1u);
  check_invariant(*rig, 0x6000);
}

TEST(Mesi, UpgradeRaceFallsBackToGetX) {
  // Both caches hold S; both write "simultaneously".  One upgrade wins;
  // the other is invalidated first and must re-issue as GetX.
  auto rig = make_rig(2);
  rig->drivers[0]->read_at(kNanosecond, 0x7000);
  rig->drivers[1]->read_at(kMicrosecond, 0x7000);
  rig->drivers[0]->write_at(2 * kMicrosecond, 0x7000);
  rig->drivers[1]->write_at(2 * kMicrosecond, 0x7000);
  rig->sim.run();
  // Exactly one ends M, the other I; one of them raced.
  const MesiState s0 = rig->caches[0]->state_of(0x7000);
  const MesiState s1 = rig->caches[1]->state_of(0x7000);
  EXPECT_TRUE((s0 == MesiState::kModified && s1 == MesiState::kInvalid) ||
              (s1 == MesiState::kModified && s0 == MesiState::kInvalid));
  EXPECT_EQ(rig->caches[0]->upgrade_races() +
                rig->caches[1]->upgrade_races(),
            1u);
  // Every request (one read + one write per driver) was acknowledged
  // exactly once.
  EXPECT_EQ(rig->drivers[0]->responses().size(), 2u);
  EXPECT_EQ(rig->drivers[1]->responses().size(), 2u);
  check_invariant(*rig, 0x7000);
}

TEST(Mesi, ModifiedEvictionWritesBackAndStaysSnoopable) {
  auto rig = make_rig(2, "256B");  // 2 sets x 2 ways of 64B lines
  // Dirty a line, then evict it with two conflicting fills.
  rig->drivers[0]->write_at(kNanosecond, 0x0);
  rig->drivers[0]->read_at(kMicrosecond, 0x100);      // same set (256B cache)
  rig->drivers[0]->read_at(2 * kMicrosecond, 0x200);  // evicts 0x0 (dirty)
  // Another cache reads the evicted line right away.
  rig->drivers[1]->read_at(2 * kMicrosecond + 100, 0x0);
  rig->sim.run();
  const auto* wb = dynamic_cast<const Counter*>(
      rig->sim.stats().find("l1_0", "writebacks"));
  EXPECT_GE(wb->count(), 1u);
  EXPECT_GE(rig->mc->writes(), 1u);
  EXPECT_EQ(rig->drivers[1]->responses().size(), 1u);
  check_invariant(*rig, 0x0);
}

TEST(Mesi, ReadSharingScalesWithoutBusStorm) {
  // N readers of one line: N GetS transactions total, no invalidations.
  auto rig = make_rig(4);
  for (unsigned i = 0; i < 4; ++i) {
    rig->drivers[i]->read_at((i + 1) * kMicrosecond, 0x8000);
  }
  rig->sim.run();
  for (const auto* c : rig->caches) {
    EXPECT_EQ(c->state_of(0x8000), MesiState::kShared);
    EXPECT_EQ(c->invalidations_received(), 0u);
  }
  EXPECT_EQ(rig->bus->transactions(), 4u);
  check_invariant(*rig, 0x8000);
}

TEST(Mesi, FalseSharingPingPongCostsTransactions) {
  // Two writers alternating on the same line vs on different lines.
  auto run_case = [](Addr a0, Addr a1) {
    auto rig = make_rig(2);
    for (int i = 0; i < 8; ++i) {
      rig->drivers[0]->write_at((2 * i + 1) * kMicrosecond, a0);
      rig->drivers[1]->write_at((2 * i + 2) * kMicrosecond, a1);
    }
    rig->sim.run();
    return rig->bus->transactions();
  };
  const std::uint64_t same_line = run_case(0x9000, 0x9000);
  const std::uint64_t disjoint = run_case(0x9000, 0x9040);
  // Disjoint lines settle into silent M hits (2 transactions total);
  // false sharing ping-pongs the line on every write.
  EXPECT_LE(disjoint, 4u);
  EXPECT_GE(same_line, 14u);
}

TEST(Mesi, MissLatencyOrdersHitUpgradeMiss) {
  auto rig = make_rig(2);
  const auto miss = rig->drivers[0]->read_at(kNanosecond, 0xA000);
  rig->sim.run();
  const SimTime t_miss = rig->drivers[0]->response_time(miss);
  EXPECT_GT(t_miss - kNanosecond, 60 * kNanosecond);  // memory round trip
}

TEST(Mesi, ConfigValidation) {
  Simulation sim;
  Params p;
  p.set("size", "3000B");
  EXPECT_THROW(sim.add_component<CoherentCache>("bad", p), ConfigError);
  Params bp;
  bp.set("num_caches", "0");
  EXPECT_THROW(sim.add_component<SnoopBus>("badbus", bp), ConfigError);
}

}  // namespace
}  // namespace sst::mem
