// Memory controller: backend selection, latency accounting, PutM
// (no-response) handling, statistics.
#include <gtest/gtest.h>

#include "mem/memory_controller.h"
#include "mem_test_util.h"

namespace sst::mem {
namespace {

using testing::MemDriver;

struct McRig {
  Simulation sim;
  MemDriver* driver;
  MemoryController* mc;
};

std::unique_ptr<McRig> make_rig(Params mc_params) {
  auto rig = std::make_unique<McRig>();
  Params dp;
  rig->driver = rig->sim.add_component<MemDriver>("driver", dp);
  rig->mc = rig->sim.add_component<MemoryController>("mc", mc_params);
  rig->sim.connect("driver", "mem", "mc", "cpu", kNanosecond);
  return rig;
}

TEST(MemoryController, SimpleBackendLatency) {
  Params p;
  p.set("backend", "simple");
  p.set("latency", "60ns");
  p.set("bandwidth_gbs", "10");
  auto rig = make_rig(p);
  const auto id = rig->driver->read_at(kNanosecond, 0x0, 64);
  rig->sim.run();
  const SimTime rt = rig->driver->response_time(id) - kNanosecond;
  // 2 x 1ns link + 60ns latency + 6.4ns serialization.
  EXPECT_NEAR(static_cast<double>(rt), 68'400.0, 500.0);
  EXPECT_EQ(rig->mc->reads(), 1u);
  EXPECT_EQ(rig->mc->bytes_transferred(), 64u);
}

TEST(MemoryController, DramBackendByPreset) {
  Params p;
  p.set("backend", "dram");
  p.set("preset", "GDDR5");
  auto rig = make_rig(p);
  ASSERT_NE(rig->mc->dram(), nullptr);
  EXPECT_EQ(rig->mc->dram()->params().name, "GDDR5");
  rig->driver->read_at(kNanosecond, 0x0, 64);
  rig->driver->read_at(kMicrosecond, 0x40, 64);  // row hit
  rig->sim.run();
  EXPECT_EQ(rig->mc->dram()->row_hits(), 1u);
  EXPECT_EQ(rig->mc->dram()->row_misses(), 1u);
}

TEST(MemoryController, PutMConsumedWithoutResponse) {
  Params p;
  p.set("backend", "simple");
  auto rig = make_rig(p);
  rig->driver->writeback_at(kNanosecond, 0x1000, 64);
  const auto id = rig->driver->read_at(kMicrosecond, 0x2000, 64);
  rig->sim.run();
  // Only the read got a response; the PutM was absorbed but counted.
  EXPECT_EQ(rig->driver->responses().size(), 1u);
  EXPECT_EQ(rig->driver->responses()[0].req_id, id);
  EXPECT_EQ(rig->mc->writes(), 1u);
  EXPECT_EQ(rig->mc->reads(), 1u);
}

TEST(MemoryController, WriteGetsAcknowledgement) {
  Params p;
  p.set("backend", "simple");
  auto rig = make_rig(p);
  const auto id = rig->driver->write_at(kNanosecond, 0x10, 8);
  rig->sim.run();
  ASSERT_EQ(rig->driver->responses().size(), 1u);
  EXPECT_EQ(rig->driver->responses()[0].req_id, id);
  EXPECT_EQ(rig->driver->responses()[0].cmd, MemCmd::kGetXResp);
}

TEST(MemoryController, RowStatsExportedAtFinish) {
  Params p;
  p.set("backend", "dram");
  p.set("preset", "DDR3");
  auto rig = make_rig(p);
  rig->driver->read_at(kNanosecond, 0x0, 64);
  rig->driver->read_at(kMicrosecond, 0x40, 64);
  rig->sim.run();
  const auto* hits = dynamic_cast<const Counter*>(
      rig->sim.stats().find("mc", "row_hits"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->count(), 1u);
}

TEST(MemoryController, UnknownBackendThrows) {
  Simulation sim;
  Params p;
  p.set("backend", "quantum");
  EXPECT_THROW(sim.add_component<MemoryController>("mc", p), ConfigError);
}

TEST(MemoryController, UnknownPresetThrows) {
  Simulation sim;
  Params p;
  p.set("backend", "dram");
  p.set("preset", "HBM7");
  EXPECT_THROW(sim.add_component<MemoryController>("mc", p), ConfigError);
}

TEST(MemoryController, AccessLatencyStatisticPopulated) {
  Params p;
  p.set("backend", "simple");
  p.set("latency", "50ns");
  auto rig = make_rig(p);
  rig->driver->read_at(kNanosecond, 0x0, 64);
  rig->driver->read_at(2 * kMicrosecond, 0x40, 64);
  rig->sim.run();
  const auto* lat = dynamic_cast<const Accumulator*>(
      rig->sim.stats().find("mc", "access_latency_ps"));
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
  EXPECT_GT(lat->mean(), 50'000.0);
}

}  // namespace
}  // namespace sst::mem
