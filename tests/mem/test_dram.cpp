// DRAM timing backend: presets, skewed address mapping, row-buffer
// behaviour, FR-FCFS scheduling, bank parallelism, bandwidth saturation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "mem/dram.h"

namespace sst::mem {
namespace {

/// Pushes one request and drives the backend until it completes.
SimTime run_one(MemBackend& b, std::uint64_t token, Addr a, bool write,
                std::uint32_t bytes, SimTime now) {
  b.push(token, a, write, bytes, now);
  SimTime t = now;
  for (;;) {
    for (const MemCompletion& c : b.advance(t)) {
      if (c.token == token) return c.time;
    }
    t = b.next_action();
    if (t == kTimeNever) {
      ADD_FAILURE() << "backend never completed token " << token;
      return 0;
    }
  }
}

/// Drives the backend until `expect` completions arrive; returns the
/// latest completion time.
SimTime drain_all(MemBackend& b, std::size_t expect) {
  SimTime t = 0;
  SimTime last = 0;
  std::size_t n = 0;
  while (n < expect) {
    for (const MemCompletion& c : b.advance(t)) {
      last = std::max(last, c.time);
      ++n;
    }
    if (n >= expect) break;
    const SimTime na = b.next_action();
    if (na == kTimeNever) {
      ADD_FAILURE() << "backend stalled with " << n << "/" << expect;
      break;
    }
    t = na;
  }
  return last;
}

/// Finds an address in the same bank as `ref` but a different row.
Addr same_bank_other_row(const DramBackend& d, Addr ref) {
  const auto& p = d.params();
  for (Addr a = ref + p.row_bytes;; a += p.row_bytes) {
    if (d.bank_of(a) == d.bank_of(ref) && d.row_of(a) != d.row_of(ref)) {
      return a;
    }
  }
}

TEST(DramPresets, LookupByName) {
  EXPECT_EQ(DramTimingParams::preset("DDR2").name, "DDR2-800");
  EXPECT_EQ(DramTimingParams::preset("DDR3").name, "DDR3-1333");
  EXPECT_EQ(DramTimingParams::preset("GDDR5").name, "GDDR5");
  EXPECT_THROW(DramTimingParams::preset("DDR9"), ConfigError);
}

TEST(DramPresets, BandwidthOrdering) {
  EXPECT_LT(DramTimingParams::ddr2_800().peak_bandwidth_gbs,
            DramTimingParams::ddr3_1333().peak_bandwidth_gbs);
  EXPECT_LT(DramTimingParams::ddr3_1333().peak_bandwidth_gbs,
            DramTimingParams::gddr5().peak_bandwidth_gbs);
  // GDDR5 pays for it in static power and cost.
  EXPECT_GT(DramTimingParams::gddr5().background_power_w,
            DramTimingParams::ddr3_1333().background_power_w);
  EXPECT_GT(DramTimingParams::gddr5().cost_per_gb_usd,
            DramTimingParams::ddr3_1333().cost_per_gb_usd);
}

TEST(Dram, BurstTimeMatchesBandwidth) {
  const auto ddr3 = DramTimingParams::ddr3_1333();
  // 64 B / 10.667 GB/s = 6.0 ns
  EXPECT_NEAR(static_cast<double>(ddr3.burst_time(64)), 6000.0, 10.0);
  const auto gddr = DramTimingParams::gddr5();
  EXPECT_NEAR(static_cast<double>(gddr.burst_time(64)), 2000.0, 10.0);
}

TEST(Dram, AddressMappingKeepsRowsInOneBank) {
  DramBackend d(DramTimingParams::ddr3_1333());
  const auto& p = d.params();
  EXPECT_EQ(d.bank_of(0), d.bank_of(p.row_bytes - 1));
  EXPECT_EQ(d.row_of(0), d.row_of(p.row_bytes - 1));
  // The next row rotates to another bank.
  EXPECT_NE(d.bank_of(0), d.bank_of(p.row_bytes));
}

TEST(Dram, SkewedMappingBreaksPowerOfTwoStrides) {
  // Competing streams separated by power-of-two strides (cache capacity,
  // array pitch) must not alias into one bank.
  for (const auto& params : {DramTimingParams::ddr3_1333(),
                             DramTimingParams::gddr5()}) {
    DramBackend d(params);
    for (Addr stride : {32768ULL, 262144ULL, 1048576ULL}) {
      EXPECT_NE(d.bank_of(0), d.bank_of(stride))
          << params.name << " stride " << stride;
    }
  }
}

TEST(Dram, BankRowPairsUnique) {
  // The skewed mapping must still be a bijection: no two distinct rows
  // share a (bank, row-id) pair.
  DramBackend d(DramTimingParams::gddr5());
  const auto& p = d.params();
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  for (Addr a = 0; a < 512 * p.row_bytes; a += p.row_bytes) {
    EXPECT_TRUE(seen.insert({d.bank_of(a), d.row_of(a)}).second)
        << "collision at " << a;
  }
}

TEST(Dram, RowHitFasterThanRowMiss) {
  DramBackend d(DramTimingParams::ddr3_1333());
  const auto& p = d.params();
  // First access to a bank: row miss (precharge + activate + CAS).
  const SimTime t0 = run_one(d, 1, 0, false, 64, 0);
  // Same row: hit (CAS only).  Issued after the first completes so bank
  // and bus effects don't overlap.
  const SimTime t1 = run_one(d, 2, 64, false, 64, t0);
  const SimTime hit_latency = t1 - t0;
  // Different row, same bank: miss again.
  const SimTime t2 = run_one(d, 3, same_bank_other_row(d, 0), false, 64, t1);
  const SimTime miss_latency = t2 - t1;
  EXPECT_LT(hit_latency, miss_latency);
  EXPECT_EQ(d.row_hits(), 1u);
  EXPECT_EQ(d.row_misses(), 2u);
  // Hit = CL + burst.
  EXPECT_EQ(hit_latency, p.t_cl + p.burst_time(64));
}

TEST(Dram, FrFcfsPrefersRowHitsOverOlderMisses) {
  DramBackend d(DramTimingParams::ddr3_1333());
  // Open a row in bank X.
  const SimTime warm = run_one(d, 1, 0, false, 64, 0);
  // Enqueue an older miss (same bank, other row) and a newer hit (open
  // row) at the same instant; the hit's data must complete first.
  d.push(2, same_bank_other_row(d, 0), false, 64, warm);
  d.push(3, 64, false, 64, warm);
  SimTime t_hit = 0, t_miss = 0;
  SimTime t = warm;
  while (t_hit == 0 || t_miss == 0) {
    for (const MemCompletion& c : d.advance(t)) {
      if (c.token == 2) t_miss = c.time;
      if (c.token == 3) t_hit = c.time;
    }
    const SimTime na = d.next_action();
    if (na == kTimeNever) break;
    t = na;
  }
  ASSERT_GT(t_hit, 0u);
  ASSERT_GT(t_miss, 0u);
  EXPECT_LT(t_hit, t_miss);
}

TEST(Dram, SequentialStreamApproachesPeakBandwidth) {
  DramBackend d(DramTimingParams::ddr3_1333());
  constexpr int kLines = 4096;
  for (int i = 0; i < kLines; ++i) {
    d.push(static_cast<std::uint64_t>(i), static_cast<Addr>(i) * 64, false,
           64, 0);
  }
  const SimTime t = drain_all(d, kLines);
  const double seconds = static_cast<double>(t) * 1e-12;
  const double gbs = kLines * 64.0 / seconds / 1e9;
  // Row hits dominate; bandwidth within 15% of peak.
  EXPECT_GT(gbs, d.params().peak_bandwidth_gbs * 0.85);
  EXPECT_LE(gbs, d.params().peak_bandwidth_gbs * 1.01);
  EXPECT_GT(d.row_hits(), d.row_misses() * 20);
}

TEST(Dram, RandomAccessFarBelowPeak) {
  DramBackend d(DramTimingParams::ddr3_1333());
  rng::XorShift128Plus rng(5);
  constexpr int kLines = 4096;
  for (int i = 0; i < kLines; ++i) {
    const Addr a = rng.next_bounded(1ULL << 30) & ~63ULL;
    d.push(static_cast<std::uint64_t>(i), a, false, 64, 0);
  }
  const SimTime t = drain_all(d, kLines);
  const double seconds = static_cast<double>(t) * 1e-12;
  const double gbs = kLines * 64.0 / seconds / 1e9;
  EXPECT_LT(gbs, d.params().peak_bandwidth_gbs * 0.75);
}

TEST(Dram, BankParallelismBeatsSingleBank) {
  // N accesses striped over all banks finish sooner than N accesses
  // alternating between two rows of one bank (every access a row miss).
  const auto params = DramTimingParams::ddr3_1333();
  DramBackend striped(params);
  DramBackend hammered(params);
  const Addr row_a = 0;
  const Addr row_b = same_bank_other_row(hammered, row_a);
  constexpr int kAccesses = 64;
  // The hammer pattern must arrive serially (otherwise FR-FCFS would
  // legitimately batch the two rows): issue each after the previous
  // completes.
  SimTime t_hammer = 0;
  for (int i = 0; i < kAccesses; ++i) {
    t_hammer = run_one(hammered, static_cast<std::uint64_t>(i),
                       (i % 2) ? row_b : row_a, false, 64, t_hammer);
  }
  SimTime t_striped = 0;
  for (int i = 0; i < kAccesses; ++i) {
    striped.push(static_cast<std::uint64_t>(i),
                 static_cast<Addr>(i) * params.row_bytes, false, 64, 0);
  }
  t_striped = drain_all(striped, kAccesses);
  EXPECT_LT(t_striped, t_hammer);
  EXPECT_EQ(hammered.row_hits(), 0u);
}

TEST(Dram, CompletionNeverBeforeNow) {
  DramBackend d(DramTimingParams::gddr5());
  const SimTime t = run_one(d, 1, 0, true, 64, 1'000'000);
  EXPECT_GT(t, 1'000'000u);
}

TEST(Dram, PendingCountTracksQueue) {
  DramBackend d(DramTimingParams::ddr3_1333());
  EXPECT_EQ(d.pending(), 0u);
  EXPECT_EQ(d.next_action(), kTimeNever);
  d.push(1, 0, false, 64, 100);
  EXPECT_EQ(d.pending(), 1u);
  EXPECT_EQ(d.next_action(), 100u);
  (void)d.advance(100);
  EXPECT_EQ(d.pending(), 0u);
}

TEST(SimpleBackendModel, LatencyPlusSerialization) {
  SimpleBackend b(60'000 /* 60ns */, 10.0 /* GB/s */);
  const SimTime t0 = run_one(b, 1, 0, false, 64, 0);
  // 64B at 10GB/s = 6.4ns serialization + 60ns.
  EXPECT_NEAR(static_cast<double>(t0), 66'400.0, 100.0);
  // Back-to-back requests serialize on the bus.
  const SimTime t1 = run_one(b, 2, 64, false, 64, 0);
  EXPECT_NEAR(static_cast<double>(t1 - t0), 6'400.0, 100.0);
}

TEST(SimpleBackendModel, RejectsZeroBandwidth) {
  EXPECT_THROW(SimpleBackend(1000, 0.0), ConfigError);
}

TEST(Dram, ConstructionValidation) {
  DramTimingParams p = DramTimingParams::ddr3_1333();
  p.num_banks = 0;
  EXPECT_THROW(DramBackend bad(p), ConfigError);
  p = DramTimingParams::ddr3_1333();
  p.row_bytes = 0;
  EXPECT_THROW(DramBackend bad2(p), ConfigError);
}

}  // namespace
}  // namespace sst::mem
