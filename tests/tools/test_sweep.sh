#!/bin/sh
# Design-space sweep contract, end to end through the real CLIs:
#
#   1. A 2x2 sweep runs every point, exits 0, and reports a Pareto
#      frontier plus a best point.
#   2. The results table is identical at any worker concurrency.
#   3. A sweep SIGKILLed mid-flight resumes from its ledger without
#      re-running finished points, and the final results table is
#      byte-identical to the uninterrupted run (the crash-recovery case
#      the ledger exists for).
#   4. `sstdse report` re-aggregates an existing directory; the
#      `sstsim --sweep` shorthand produces the same table as sstdse.
#   5. A bad spec exits 2; a sweep with permanently failing points
#      exits 6 and marks them failed in the table.
#
#   test_sweep.sh <sstdse> <sstsim> <models_dir>
set -u

SSTDSE="${1:?usage: test_sweep.sh <sstdse> <sstsim> <models_dir>}"
SSTSIM="${2:?missing sstsim path}"
MODELS="${3:?missing models dir}"
# Model paths get embedded in specs that resolve relative to the spec's
# own directory, so the models dir must be absolute.
MODELS="$(cd "$MODELS" && pwd)"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

check() {  # check <label> <command...>
  label="$1"; shift
  if ! "$@"; then
    echo "sweep: FAIL: $label" >&2
    fail=1
  fi
}

run() {  # run <label> <command...>  (must exit 0)
  label="$1"; shift
  if ! "$@" > "$WORK/$label.out" 2> "$WORK/$label.err"; then
    echo "sweep: $label: command failed:" >&2
    sed 's/^/  | /' "$WORK/$label.err" >&2
    fail=1
    return 1
  fi
}

# Heavy pingpong (~0.5s/point) so the SIGKILL below lands mid-flight.
sed 's/"iterations": 200/"iterations": 600000/' \
    "$MODELS/pingpong.json" > "$WORK/heavy.json"

cat > "$WORK/sweep.json" <<EOF
{
  "name": "smoke",
  "model": "heavy.json",
  "axes": [
    {"path": "/components/rank0/params/msg_bytes",
     "values": [1024, 4096]},
    {"path": "/network/link_latency", "values": ["20ns", "40ns"]}
  ],
  "objectives": [
    {"component": "rank0", "statistic": "message_latency_ps",
     "field": "mean", "goal": "min"},
    {"component": "rank0", "statistic": "bytes_sent", "goal": "max"}
  ],
  "run": {"concurrency": 2, "timeout_seconds": 120}
}
EOF

# --- 1: full run ------------------------------------------------------
run full "$SSTDSE" run "$WORK/sweep.json" --out "$WORK/full.sweep" \
    --sstsim "$SSTSIM"
check "full run produced a results table" test -f "$WORK/full.sweep/results.csv"
check "full run reports a Pareto frontier" \
    grep -q "Pareto frontier" "$WORK/full.out"
check "full run reports a best point" \
    grep -q "best (weighted score)" "$WORK/full.out"
check "every point finished ok" \
    test "$(grep -c ',ok,' "$WORK/full.sweep/results.csv")" -eq 4

# --- 2: results table identical at any concurrency --------------------
run serial "$SSTDSE" run "$WORK/sweep.json" --out "$WORK/serial.sweep" \
    --sstsim "$SSTSIM" --jobs 1 -q
check "concurrency 1 table identical to concurrency 2" \
    cmp -s "$WORK/full.sweep/results.csv" "$WORK/serial.sweep/results.csv"

# --- 3: SIGKILL mid-flight, resume from the ledger --------------------
setsid "$SSTDSE" run "$WORK/sweep.json" --out "$WORK/kill.sweep" \
    --sstsim "$SSTSIM" --jobs 1 -q > /dev/null 2>&1 &
victim=$!
# Busy-wait until the ledger records at least one finished point, then
# SIGKILL the whole process group (driver AND in-flight child).
tries=0
while true; do
  n="$(grep -c '"status":"ok"' "$WORK/kill.sweep/ledger.jsonl" 2>/dev/null)" \
      || n=0
  if [ "$n" -ge 1 ]; then break; fi
  tries=$((tries + 1))
  if [ "$tries" -gt 20000 ]; then break; fi
  if ! kill -0 "$victim" 2>/dev/null; then break; fi
done
kill -9 -"$victim" 2>/dev/null
wait "$victim" 2>/dev/null
done_n="$(grep -c '"status":"ok"' "$WORK/kill.sweep/ledger.jsonl" \
    2>/dev/null)" || done_n=0
if [ "$done_n" -ge 4 ]; then
  echo "sweep: note: run finished before the kill landed;" \
       "resume degrades to the no-op path" >&2
fi
check "kill left a ledger with at least one finished point" \
    test "$done_n" -ge 1
run resume "$SSTDSE" resume "$WORK/kill.sweep" --sstsim "$SSTSIM"
check "resume skipped the already-finished points" \
    sh -c "test \"$done_n\" -ge 4 || grep -q 'resuming' '$WORK/resume.err'"
check "resumed table byte-identical to uninterrupted run" \
    cmp -s "$WORK/full.sweep/results.csv" "$WORK/kill.sweep/results.csv"

# --- 4: report subcommand + sstsim --sweep shorthand ------------------
run report "$SSTDSE" report "$WORK/full.sweep"
check "report prints the frontier without re-running" \
    grep -q "Pareto frontier" "$WORK/report.out"
run shorthand "$SSTSIM" --sweep "$WORK/sweep.json" \
    --sweep-out "$WORK/short.sweep" --jobs 2
check "sstsim --sweep table identical to sstdse" \
    cmp -s "$WORK/full.sweep/results.csv" "$WORK/short.sweep/results.csv"

# --- 5: error contracts -----------------------------------------------
cat > "$WORK/bad.json" <<EOF
{
  "model": "heavy.json",
  "axes": [{"path": "no-slash", "values": [1]}]
}
EOF
"$SSTDSE" run "$WORK/bad.json" --out "$WORK/bad.sweep" \
    --sstsim "$SSTSIM" > /dev/null 2> "$WORK/bad.err"
rc=$?
check "bad axis path exits 2" test "$rc" -eq 2
check "bad-spec diagnostic names the path rule" \
    grep -q "must start with '/'" "$WORK/bad.err"

# Overriding one endpoint's iteration count deadlocks its partner: a
# permanent per-point failure, so the sweep must finish with exit 6.
cat > "$WORK/failing.json" <<EOF
{
  "name": "failing",
  "model": "$MODELS/pingpong.json",
  "axes": [
    {"path": "/components/rank0/params/iterations", "values": [100]}
  ],
  "run": {"concurrency": 1, "timeout_seconds": 60, "retries": 0}
}
EOF
"$SSTDSE" run "$WORK/failing.json" --out "$WORK/failing.sweep" \
    --sstsim "$SSTSIM" -q > /dev/null 2>&1
rc=$?
check "permanently failing point exits 6" test "$rc" -eq 6
check "failed point marked in the table" \
    grep -q ',failed,' "$WORK/failing.sweep/results.csv"

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "sweep: all design-space sweep contracts hold"
