#!/bin/sh
# Virtual-memory subsystem contract, end to end through the real CLIs:
#
#   1. node_vm.json stats are byte-identical at 1/2/4/8 ranks under
#      conservative sync and at 4 ranks under adaptive sync — walks,
#      PTE reads and shootdowns riding the same barriers as demand
#      traffic.
#   2. `--override /vm/enable=false` (the bench's vm_off arm) degrades
#      the TLB to pass-through; a bad /vm override path exits 2 and
#      names the valid alternatives.
#   3. Checkpointing is invisible, and a resume from EVERY retained
#      snapshot — including ones cut while page walks were in flight —
#      converges to byte-identical stats, serial and 4-rank.
#   4. The vm_storm model (periodic shootdown broadcasts with
#      drop/duplicate/delay faults on the invalidation link, both
#      directions) completes cleanly — no deadlock — with identical
#      stats across runs and no broadcast retired at retry_max.
#   5. The tlb_geometry sweep SIGKILLed mid-flight and resumed from its
#      ledger produces the byte-identical Pareto table.
#
#   test_vm.sh <sstsim> <sstdse> <models_dir> <source_dir>
set -u

SSTSIM="${1:?usage: test_vm.sh <sstsim> <sstdse> <models_dir> <source_dir>}"
SSTDSE="${2:?missing sstdse path}"
MODELS="${3:?missing models dir}"
SRC="${4:?missing source dir}"
MODEL="$SRC/examples/systems/node_vm.json"
SWEEP="$SRC/examples/sweeps/tlb_geometry.json"
STORM="$MODELS/vm_storm.json"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

check() {  # check <label> <command...>
  label="$1"; shift
  if ! "$@"; then
    echo "vm: FAIL: $label" >&2
    fail=1
  fi
}

run() {  # run <label> <command...>  (must exit 0)
  label="$1"; shift
  if ! "$@" > "$WORK/$label.out" 2> "$WORK/$label.err"; then
    echo "vm: $label: command failed:" >&2
    sed 's/^/  | /' "$WORK/$label.err" >&2
    fail=1
    return 1
  fi
}

stat_of() {  # stat_of <csv> <component> <statistic>  -> count value
  awk -F, -v c="$2" -v s="$3" \
      '$1 == c && $2 == s && $3 == "count" {print $4}' "$1"
}

# --- 1: rank-count and sync-mode invariance ---------------------------
run r1 "$SSTSIM" "$MODEL" --ranks 1 --stats "$WORK/r1.csv"
for r in 2 4 8; do
  run "r$r" "$SSTSIM" "$MODEL" --ranks "$r" --stats "$WORK/r$r.csv"
  check "stats identical at $r ranks" cmp -s "$WORK/r1.csv" "$WORK/r$r.csv"
done
run adaptive "$SSTSIM" "$MODEL" --ranks 4 --sync-mode adaptive \
    --stats "$WORK/ad.csv"
check "adaptive sync stats identical" cmp -s "$WORK/r1.csv" "$WORK/ad.csv"
check "the run actually walked page tables" \
    test "$(stat_of "$WORK/r1.csv" ptw walks)" -gt 0
check "the run actually promoted huge pages" \
    test "$(stat_of "$WORK/r1.csv" ptw promotions)" -gt 0

# --- 2: the /vm/enable override, happy and error paths ----------------
run vm_off "$SSTSIM" "$MODEL" --override /vm/enable=false \
    --stats "$WORK/off.csv"
check "vm_off bypasses every request" \
    test "$(stat_of "$WORK/off.csv" tlb bypassed)" -gt 0
check "vm_off never walks" \
    test "$(stat_of "$WORK/off.csv" tlb walks)" -eq 0
"$SSTSIM" "$MODEL" --override /vm/bogus=1 --stats - \
    > /dev/null 2> "$WORK/bad_override.err"
rc=$?
check "bad /vm override exits 2" test "$rc" -eq 2
check "bad /vm override names the alternatives" \
    grep -q "/vm/enable" "$WORK/bad_override.err"

# --- 3: checkpoints are invisible; every snapshot resumes bit-exactly -
# A 5us cadence against the model's 30us window cuts snapshots while
# gups still has loads (and therefore page walks) outstanding; resuming
# from each retained snapshot covers the mid-walk state.
run ckpt1 "$SSTSIM" "$MODEL" --ranks 1 --stats "$WORK/c1.csv" \
    --checkpoint-period 5us --checkpoint-dir "$WORK/cp1" \
    --checkpoint-keep 8
check "checkpointing run matches plain run" \
    cmp -s "$WORK/r1.csv" "$WORK/c1.csv"
n=0
for snap in "$WORK/cp1"/*; do
  n=$((n + 1))
  run "res$n" "$SSTSIM" --restart "$snap" --ranks 1 \
      --stats "$WORK/res$n.csv"
  check "resume from snapshot $n identical" \
      cmp -s "$WORK/r1.csv" "$WORK/res$n.csv"
done
check "multiple mid-run snapshots were taken" test "$n" -ge 2

run ckpt4 "$SSTSIM" "$MODEL" --ranks 4 --stats "$WORK/c4.csv" \
    --checkpoint-period 5us --checkpoint-dir "$WORK/cp4"
check "4-rank checkpointing run matches plain run" \
    cmp -s "$WORK/r1.csv" "$WORK/c4.csv"
run res4 "$SSTSIM" --restart "$WORK/cp4" --ranks 4 \
    --stats "$WORK/res4.csv"
check "4-rank resume identical" cmp -s "$WORK/r1.csv" "$WORK/res4.csv"

# --- 4: shootdown storm under invalidation-link faults ----------------
run storm1 "$SSTSIM" "$STORM" --stats "$WORK/s1.csv"
run storm2 "$SSTSIM" "$STORM" --stats "$WORK/s2.csv"
check "faulty storm runs are identical" cmp -s "$WORK/s1.csv" "$WORK/s2.csv"
check "storm actually broadcast" \
    test "$(stat_of "$WORK/s1.csv" ptw storm_shootdowns)" -gt 10
check "faults actually forced retries" \
    test "$(stat_of "$WORK/s1.csv" ptw shootdown_retries)" -gt 0
check "no broadcast retired at retry_max" \
    test "$(stat_of "$WORK/s1.csv" ptw shootdowns_failed)" -eq 0

# --- 5: the sweep's Pareto table survives SIGKILL + resume ------------
run sweep_ref "$SSTDSE" run "$SWEEP" --out "$WORK/sw_ref" --jobs 2
check "reference sweep produced a table" test -f "$WORK/sw_ref/results.csv"

"$SSTDSE" run "$SWEEP" --out "$WORK/sw_kill" --jobs 1 \
    > /dev/null 2>&1 &
victim=$!
# Let a few points finish, then kill -9; the resume must pick up the
# ledger without re-running them.  If the sweep won the race and
# finished, the resume is a no-op and the comparison still holds.
sleep 1
kill -9 "$victim" 2>/dev/null
wait "$victim" 2>/dev/null
run sweep_resume "$SSTDSE" run "$SWEEP" --out "$WORK/sw_kill" --jobs 2
check "resumed sweep table identical to uninterrupted run" \
    cmp -s "$WORK/sw_ref/results.csv" "$WORK/sw_kill/results.csv"

if [ "$fail" -ne 0 ]; then
  echo "vm: FAILED" >&2
  exit 1
fi
echo "vm: all checks passed"
exit 0
