#!/bin/sh
# sstsimd hardened-lifecycle contract, end to end through the real CLIs:
#
#   1. A model submitted through the daemon produces stats.json
#      byte-identical to a direct `sstsim --stats-format json` run.
#   2. Resubmitting a finished request id replays the recorded result
#      from the ledger instead of re-running it.
#   3. A request whose worker dies by SIGSEGV is diagnosed (exit 1,
#      signal recorded) while a concurrent healthy request completes —
#      crash isolation — and the worker pool respawns.
#   4. Requests beyond the admission queue bound are shed with an
#      explicit overload rejection, in bounded time.
#   5. A daemon SIGKILLed with accepted-but-unfinished requests
#      restarts, recovers them from its ledger, and completes every one
#      exactly once (one final record per id, stats present).
#   6. A 2x2 sweep dispatched through the daemon produces a results
#      table byte-identical to the fork/exec sweep.
#   7. `--drain` finishes accepted work and stops the daemon; the
#      socket is released.
#
#   test_daemon.sh <sstsimd> <sstsim> <sstdse> <models_dir>
set -u

SSTSIMD="${1:?usage: test_daemon.sh <sstsimd> <sstsim> <sstdse> <models_dir>}"
SSTSIM="${2:?missing sstsim path}"
SSTDSE="${3:?missing sstdse path}"
MODELS="${4:?missing models dir}"

# The harness cds into per-case work dirs, so every argument must be
# usable from anywhere.
abspath() { case "$1" in /*) printf '%s' "$1" ;; *) printf '%s/%s' "$(pwd)" "$1" ;; esac; }
SSTSIMD="$(abspath "$SSTSIMD")"
SSTSIM="$(abspath "$SSTSIM")"
SSTDSE="$(abspath "$SSTDSE")"
MODELS="$(cd "$MODELS" && pwd)"

WORK="$(mktemp -d)"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  # Workers of a hard-killed daemon are orphaned; reap by state dir.
  rm -rf "$WORK"
}
trap cleanup EXIT

fail=0

check() {  # check <label> <command...>
  label="$1"; shift
  if ! "$@"; then
    echo "daemon: FAIL: $label" >&2
    fail=1
  fi
}

run() {  # run <label> <command...>  (must exit 0)
  label="$1"; shift
  if ! "$@" > "$WORK/$label.out" 2> "$WORK/$label.err"; then
    echo "daemon: $label: command failed:" >&2
    sed 's/^/  | /' "$WORK/$label.err" >&2
    fail=1
    return 1
  fi
}

start_daemon() {  # start_daemon <socket> [extra options...]
  sock="$1"; shift
  "$SSTSIMD" --socket "$sock" "$@" > "$WORK/daemon.log" 2>&1 &
  DPID=$!
  # Wait for the socket to accept connections.
  i=0
  while [ "$i" -lt 100 ]; do
    if "$SSTSIMD" --socket "$sock" --status >/dev/null 2>&1; then return 0; fi
    i=$((i + 1))
    sleep 0.1
  done
  echo "daemon: never came up on $sock" >&2
  sed 's/^/  | /' "$WORK/daemon.log" >&2
  fail=1
  return 1
}

stop_daemon() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  wait "$DPID" 2>/dev/null
  DPID=""
}

status_field() {  # status_field <socket> <key>  (numeric fields only)
  "$SSTSIMD" --socket "$1" --status |
    sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p" | head -1
}

SOCK="$WORK/d.sock"

# ---- 1: warm-dispatch run is byte-identical to a direct run ----------
start_daemon "$SOCK" --workers 2
mkdir -p "$WORK/direct"
( cd "$WORK/direct" &&
  "$SSTSIM" "$MODELS/pingpong.json" --stats stats.json \
      --stats-format json ) > /dev/null 2>&1 ||
  { echo "daemon: direct baseline run failed" >&2; fail=1; }
run "via-daemon" "$SSTSIM" "$MODELS/pingpong.json" --daemon "$SOCK" \
    --daemon-out "$WORK/via" --daemon-id req1
check "daemon stats byte-identical to direct run" \
  cmp -s "$WORK/direct/stats.json" "$WORK/via/stats.json"
check "request spooled crash-consistently" test -f "$WORK/via/request.json"

# ---- 2: finished ids replay from the ledger --------------------------
run "replay" "$SSTSIM" "$MODELS/pingpong.json" --daemon "$SOCK" \
    --daemon-out "$WORK/via" --daemon-id req1
replays="$(status_field "$SOCK" replays)"
check "replay served from ledger (replays=$replays)" \
  [ "${replays:-0}" -ge 1 ]

# ---- 3: crash isolation ----------------------------------------------
# The SIGSEGV request runs in the background while a healthy request
# completes on the other worker; then the crashed one is diagnosed.
SSTSIM_DAEMON_TEST_SIGNAL=11 "$SSTSIM" "$MODELS/pingpong.json" \
    --daemon "$SOCK" --daemon-out "$WORK/crash" --daemon-id crash1 \
    > "$WORK/crash.out" 2> "$WORK/crash.err" &
CRASH=$!
run "healthy-during-crash" "$SSTSIM" "$MODELS/pingpong.json" \
    --daemon "$SOCK" --daemon-out "$WORK/healthy" --daemon-id healthy1
wait "$CRASH"
crash_code=$?
check "crashed request reports runtime failure (exit $crash_code)" \
  [ "$crash_code" -eq 1 ]
check "crash diagnosed with its signal" \
  grep -q "signal 11" "$WORK/crash.err"
restarts="$(status_field "$SOCK" worker_restarts)"
check "worker respawned after crash (restarts=$restarts)" \
  [ "${restarts:-0}" -ge 1 ]
# The pool still serves after the crash.
run "after-crash" "$SSTSIM" "$MODELS/pingpong.json" --daemon "$SOCK" \
    --daemon-out "$WORK/after"
stop_daemon

# ---- 4: bounded-time overload shedding -------------------------------
start_daemon "$WORK/ov.sock" --workers 1 --queue 2
# Saturate: slow-ish requests fill the single worker + 2 queue slots;
# the rest must be rejected immediately rather than queue unboundedly.
i=0
while [ "$i" -lt 8 ]; do
  "$SSTSIM" "$MODELS/pingpong.json" --daemon "$WORK/ov.sock" \
      --daemon-out "$WORK/ov$i" --daemon-id "ov$i" \
      > "$WORK/ov$i.out" 2> "$WORK/ov$i.err" &
  eval "OVPID_$i=\$!"
  i=$((i + 1))
done
shed=0
i=0
while [ "$i" -lt 8 ]; do
  eval "wait \"\$OVPID_$i\""; code=$?
  if [ "$code" -eq 7 ] && grep -q overloaded "$WORK/ov$i.err"; then
    shed=$((shed + 1))
  fi
  i=$((i + 1))
done
rejected="$(status_field "$WORK/ov.sock" rejected_overloaded)"
check "overload shed with explicit rejection (client-visible=$shed)" \
  [ "$shed" -ge 1 ]
check "daemon counted the shed requests (rejected=$rejected)" \
  [ "${rejected:-0}" -ge 1 ]
stop_daemon

# ---- 5: kill -9 the daemon, restart, exactly-once recovery -----------
start_daemon "$WORK/rec.sock" --workers 1 --queue 16 \
    --state "$WORK/rec.state"
# Burst 6 requests; each client blocks for its done, so background them.
i=0
while [ "$i" -lt 6 ]; do
  "$SSTSIM" "$MODELS/pingpong.json" --daemon "$WORK/rec.sock" \
      --daemon-out "$WORK/rec$i" --daemon-id "rec$i" \
      > /dev/null 2>&1 &
  i=$((i + 1))
done
# Let acceptance (spool + ledger + ack) land, then murder the daemon.
i=0
while [ "$i" -lt 100 ]; do
  accepted="$(status_field "$WORK/rec.sock" accepted 2>/dev/null)"
  [ "${accepted:-0}" -ge 6 ] && break
  i=$((i + 1))
  sleep 0.1
done
kill -9 "$DPID"
wait "$DPID" 2>/dev/null
DPID=""
wait  # in-flight clients die with EOF errors; that's the point
# Restart on the same state: every accepted-but-unfinished request must
# be recovered and completed exactly once.
start_daemon "$WORK/rec.sock" --workers 2 --state "$WORK/rec.state"
i=0
while [ "$i" -lt 200 ]; do
  n=0
  j=0
  while [ "$j" -lt 6 ]; do
    [ -f "$WORK/rec$j/stats.json" ] && n=$((n + 1))
    j=$((j + 1))
  done
  [ "$n" -eq 6 ] && break
  i=$((i + 1))
  sleep 0.1
done
check "all recovered requests completed ($n/6)" [ "$n" -eq 6 ]
# Exactly once: one final ledger record per id, all ok.
j=0
while [ "$j" -lt 6 ]; do
  finals="$(grep -c "\"id\":\"rec$j\",\"status\":\"ok\"" \
      "$WORK/rec.state/requests.jsonl")"
  check "rec$j has exactly one final record (got $finals)" \
    [ "$finals" -eq 1 ]
  j=$((j + 1))
done
# A recovered request replays like any finished one.
run "recovered-replay" "$SSTSIM" "$MODELS/pingpong.json" \
    --daemon "$WORK/rec.sock" --daemon-out "$WORK/rec0" --daemon-id rec0
check "recovered result identical to direct run" \
  cmp -s "$WORK/direct/stats.json" "$WORK/rec0/stats.json"
stop_daemon

# ---- 6: daemon sweep matches the fork/exec sweep ---------------------
cat > "$WORK/sweep.json" <<EOF
{
  "name": "dsmoke",
  "model": "$MODELS/pingpong.json",
  "axes": [
    {"path": "/components/rank0/params/msg_bytes",
     "values": [1024, 4096]},
    {"path": "/network/link_latency", "values": ["20ns", "40ns"]}
  ]
}
EOF
run "sweep-forkexec" "$SSTDSE" run "$WORK/sweep.json" \
    --out "$WORK/sw_direct" --sstsim "$SSTSIM" --jobs 2
start_daemon "$WORK/sw.sock" --workers 2
run "sweep-daemon" "$SSTDSE" run "$WORK/sweep.json" \
    --out "$WORK/sw_daemon" --sstsim "$SSTSIM" --daemon "$WORK/sw.sock"
check "daemon sweep results byte-identical to fork/exec sweep" \
  cmp -s "$WORK/sw_direct/results.csv" "$WORK/sw_daemon/results.csv"

# ---- 7: drain stops the daemon and releases the socket ---------------
run "drain" "$SSTSIMD" --socket "$WORK/sw.sock" --drain
i=0
while [ "$i" -lt 100 ] && kill -0 "$DPID" 2>/dev/null; do
  i=$((i + 1))
  sleep 0.1
done
check "daemon exited after drain" \
  sh -c "! kill -0 $DPID 2>/dev/null"
DPID=""
check "socket released after drain" test ! -e "$WORK/sw.sock"

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "daemon: hardened lifecycle holds (isolation, recovery, shedding)"
