#!/bin/sh
# Checkpoint/restart contract, end to end through the real CLI:
#
#   1. A run with checkpointing enabled produces stats byte-identical to
#      the same run without it (snapshot writes are invisible).
#   2. Restarting from a mid-run snapshot finishes with stats, trace and
#      metrics byte-identical to the uninterrupted run.
#   3. A run SIGKILLed mid-flight restarts from its latest snapshot and
#      still converges to the reference output (the crash-recovery case
#      the subsystem exists for).
#   4. A truncated newest snapshot falls back to the previous intact one
#      (exit 0, with a diagnostic); a directory with no intact snapshot
#      fails with exit 5.
#
#   test_checkpoint_restart.sh <sstsim> <models_dir>
set -u

SSTSIM="${1:?usage: test_checkpoint_restart.sh <sstsim> <models_dir>}"
MODELS="${2:?missing models dir}"
MODEL="$MODELS/pingpong.json"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

check() {  # check <label> <command...>
  label="$1"; shift
  if ! "$@"; then
    echo "ckpt_restart: FAIL: $label" >&2
    fail=1
  fi
}

run() {  # run <label> <command...>  (must exit 0)
  label="$1"; shift
  if ! "$@" > "$WORK/$label.out" 2> "$WORK/$label.err"; then
    echo "ckpt_restart: $label: command failed:" >&2
    sed 's/^/  | /' "$WORK/$label.err" >&2
    fail=1
    return 1
  fi
}

# --- 1: checkpointing is invisible to the simulation ------------------
run ref "$SSTSIM" "$MODEL" --ranks 4 --stats "$WORK/ref.csv" \
    --trace "$WORK/ref.trace" --metrics "$WORK/ref.json"
run full "$SSTSIM" "$MODEL" --ranks 4 --stats "$WORK/full.csv" \
    --trace "$WORK/full.trace" --metrics "$WORK/full.json" \
    --checkpoint-period 2us --checkpoint-dir "$WORK/cp" --checkpoint-keep 4
check "checkpointing run matches plain run (stats)" \
    cmp -s "$WORK/ref.csv" "$WORK/full.csv"
check "checkpointing run matches plain run (trace)" \
    cmp -s "$WORK/ref.trace" "$WORK/full.trace"
check "checkpoint files were written" \
    test -f "$WORK/cp/$(ls "$WORK/cp" 2>/dev/null | tail -1)"

# --- 2: resume from a mid-run snapshot is byte-identical --------------
run resume "$SSTSIM" --restart "$WORK/cp" --ranks 4 \
    --stats "$WORK/res.csv" --trace "$WORK/res.trace" \
    --metrics "$WORK/res.json"
check "resumed stats identical"   cmp -s "$WORK/ref.csv"   "$WORK/res.csv"
check "resumed trace identical"   cmp -s "$WORK/ref.trace" "$WORK/res.trace"
check "resumed metrics identical" cmp -s "$WORK/ref.json"  "$WORK/res.json"

# Resume must also work from the OLDEST retained snapshot, not just the
# most recent one.
oldest="$WORK/cp/$(ls "$WORK/cp" | head -1)"
run resume_old "$SSTSIM" --restart "$oldest" --ranks 4 \
    --stats "$WORK/res_old.csv"
check "resume from oldest snapshot identical" \
    cmp -s "$WORK/ref.csv" "$WORK/res_old.csv"

# --- 3: SIGKILL mid-run, restart from latest snapshot -----------------
# Slow the victim down with a wall-clock checkpoint cadence so there is
# time to kill it mid-flight; the simulated-time cadence keeps writing
# deterministic snapshots.
rm -rf "$WORK/kcp"
"$SSTSIM" "$MODEL" --ranks 1 --stats "$WORK/kill.csv" \
    --checkpoint-period 2us --checkpoint-dir "$WORK/kcp" \
    > /dev/null 2>&1 &
victim=$!
# Busy-wait until at least two snapshots exist, then kill -9.
tries=0
while [ "$(ls "$WORK/kcp" 2>/dev/null | wc -l)" -lt 2 ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 2000 ]; then break; fi
  if ! kill -0 "$victim" 2>/dev/null; then break; fi
done
kill -9 "$victim" 2>/dev/null
wait "$victim" 2>/dev/null
if [ "$(ls "$WORK/kcp" 2>/dev/null | wc -l)" -lt 1 ]; then
  # The run finished before we could kill it — snapshots still exist
  # unless rotation removed them all, which keep>=1 forbids.
  echo "ckpt_restart: FAIL: no snapshot survived the kill window" >&2
  fail=1
else
  run killres "$SSTSIM" --restart "$WORK/kcp" --ranks 1 \
      --stats "$WORK/killres.csv"
  run killref "$SSTSIM" "$MODEL" --ranks 1 --stats "$WORK/killref.csv"
  check "post-kill restart converges to reference" \
      cmp -s "$WORK/killref.csv" "$WORK/killres.csv"
fi

# --- 4: corrupt-snapshot handling -------------------------------------
newest="$WORK/cp/$(ls "$WORK/cp" | tail -1)"
dd if=/dev/null of="$newest" bs=1 seek=100 2>/dev/null  # truncate to 100B
run fallback "$SSTSIM" --restart "$WORK/cp" --ranks 4 \
    --stats "$WORK/fb.csv"
check "fallback restart still byte-identical" \
    cmp -s "$WORK/ref.csv" "$WORK/fb.csv"
check "fallback diagnostic names the rejected file" \
    grep -q "checkpoint rejected" "$WORK/fallback.err"

mkdir -p "$WORK/bad"
echo "not a checkpoint" > "$WORK/bad/sim.ckpt.000001"
"$SSTSIM" --restart "$WORK/bad" --stats - > /dev/null 2> "$WORK/bad.err"
rc=$?
check "no intact snapshot exits 5" test "$rc" -eq 5
check "exit-5 diagnostic says restart failed" \
    grep -q "restart failed" "$WORK/bad.err"

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "ckpt_restart: all checkpoint/restart contracts hold"
