#!/bin/sh
# sstsim exit-code contract:
#   0 success, 1 runtime failure, 2 usage/config error,
#   3 watchdog abort, 4 deadlock detected, 5 restart failed,
#   7 daemon error.
#
#   test_exit_codes.sh <sstsim> <models_dir>
set -u

SSTSIM="${1:?usage: test_exit_codes.sh <sstsim> <models_dir>}"
MODELS="${2:?missing models dir}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

# expect <code> <label> <command...>
expect() {
  want="$1"; label="$2"; shift 2
  "$@" > "$WORK/out" 2> "$WORK/err"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "exit_codes: $label: expected exit $want, got $got" >&2
    sed 's/^/  | /' "$WORK/err" >&2
    fail=1
  fi
}

expect 0 "clean run"       "$SSTSIM" "$MODELS/pingpong.json"
expect 2 "missing args"    "$SSTSIM"
expect 2 "unknown option"  "$SSTSIM" "$MODELS/pingpong.json" --bogus
expect 2 "missing input"   "$SSTSIM" "$WORK/does_not_exist.json"
expect 2 "unknown type"    "$SSTSIM" "$MODELS/bad_type.json"
expect 2 "bad time value"  "$SSTSIM" "$MODELS/pingpong.json" --end "1 parsec"
expect 3 "watchdog abort"  "$SSTSIM" "$MODELS/hog.json" --watchdog 0.3
expect 4 "deadlock"        "$SSTSIM" "$MODELS/deadlock.json"

# Synchronization-mode additions: every misuse is a usage/config error
# (2); a correctly configured lax run is a clean 0.
expect 2 "bad sync mode"   "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode bogus
expect 2 "lax no skew"     "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode lax
expect 2 "skew no lax"     "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --lax-skew 1us
expect 2 "lax + ckpt"      "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode lax --lax-skew 1us \
                           --checkpoint-period 10us \
                           --checkpoint-dir "$WORK/laxcp"
expect 2 "bad skew value"  "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode lax --lax-skew "1 parsec"
expect 0 "lax clean run"   "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode lax --lax-skew 1us
expect 0 "adaptive run"    "$SSTSIM" "$MODELS/pingpong.json" --ranks 2 \
                           --sync-mode adaptive

# Checkpoint/restart additions: bad cadence values are usage errors (2),
# an unusable restart source is the dedicated restart failure (5).
expect 2 "bad ckpt period" "$SSTSIM" "$MODELS/pingpong.json" \
                           --checkpoint-period "1 parsec"
expect 2 "restart + input" "$SSTSIM" "$MODELS/pingpong.json" \
                           --restart "$WORK/nowhere"
expect 5 "restart missing" "$SSTSIM" --restart "$WORK/does_not_exist"
mkdir -p "$WORK/badckpt"
echo "garbage" > "$WORK/badckpt/sim.ckpt.000001"
expect 5 "restart corrupt" "$SSTSIM" --restart "$WORK/badckpt"

# Daemon additions: submitting through sstsimd when it is unreachable is
# the dedicated daemon error (7); daemon-flag misuse stays a usage
# error (2).
expect 7 "daemon no socket"   "$SSTSIM" "$MODELS/pingpong.json" \
                              --daemon "$WORK/no_such_daemon.sock"
touch "$WORK/not_a_socket"
expect 7 "daemon not socket"  "$SSTSIM" "$MODELS/pingpong.json" \
                              --daemon "$WORK/not_a_socket"
expect 2 "daemon-out alone"   "$SSTSIM" "$MODELS/pingpong.json" \
                              --daemon-out "$WORK/dout"
expect 2 "daemon-id alone"    "$SSTSIM" --daemon-id r1
expect 2 "daemon + restart"   "$SSTSIM" --daemon "$WORK/d.sock" \
                              --restart "$WORK/ckpt"

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "exit_codes: all codes as documented"
