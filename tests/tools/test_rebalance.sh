#!/bin/sh
# Online-repartitioning acceptance harness (see DESIGN.md "Online
# repartitioning").
#
#   1. The pinned corpus models run with --rebalance at 1/2/4 ranks under
#      conservative and adaptive sync and must reproduce the golden
#      serial digests byte for byte — turning the rebalancer on is
#      invisible to the model even when it never fires.
#   2. The moving-hotspot model (rebalance_mode on in its SDL) produces
#      byte-identical stats at 1/2/4/8 ranks while actually migrating
#      components (engine.rebalance migrations >= 1 under
#      --profile-engine).
#   3. A checkpoint taken after migrations restores byte-identically:
#      a mid-run snapshot of the rebalanced run resumes to the same
#      stats as the uninterrupted run.
#   4. Lax + rebalance finishes cleanly with a lax report.
#
#   test_rebalance.sh <sstsim> <source_dir>
set -u

SSTSIM="${1:?usage: test_rebalance.sh <sstsim> <source_dir>}"
SRC="${2:?missing source dir}"

SYSTEMS="$SRC/examples/systems"
DIGESTS="$SRC/tests/golden/digests.sha256"
HOTSPOT="$SYSTEMS/moving_hotspot.json"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

hash_of() { sha256sum "$1" | cut -d' ' -f1; }

golden_digest() {
  awk -v name="$1" '$2 == name { print $1 }' "$DIGESTS"
}

# --- 1: --rebalance leaves the pinned corpus untouched ----------------
for model in node_ddr3 halo16; do
  case "$model" in
    node_ddr3) sdl="$SYSTEMS/node_ddr3.json"; gold="node_ddr3.r1.csv" ;;
    halo16)    sdl="$SYSTEMS/halo16_torus.json"; gold="halo16.r1.csv" ;;
  esac
  want="$(golden_digest "$gold")"
  if [ -z "$want" ]; then
    echo "rebalance: no golden digest named $gold in $DIGESTS" >&2
    exit 1
  fi
  for mode in conservative adaptive; do
    for ranks in 1 2 4; do
      out="$WORK/$model.$mode.r$ranks.csv"
      if ! "$SSTSIM" "$sdl" --ranks "$ranks" --sync-mode "$mode" \
          --rebalance --stats "$out" > /dev/null 2> "$WORK/err"; then
        echo "rebalance: $model $mode r$ranks run failed:" >&2
        sed 's/^/  | /' "$WORK/err" >&2
        fail=1
        continue
      fi
      got="$(hash_of "$out")"
      if [ "$got" != "$want" ]; then
        echo "rebalance: $model $mode r$ranks stats drifted from the" >&2
        echo "rebalance: golden serial digest ($gold)" >&2
        fail=1
      fi
    done
  done
done

# --- 2: the moving-hotspot model is rank-count invariant --------------
run() {  # run <label> <command...>  (must exit 0)
  label="$1"; shift
  if ! "$@" > "$WORK/$label.out" 2> "$WORK/$label.err"; then
    echo "rebalance: $label: command failed:" >&2
    sed 's/^/  | /' "$WORK/$label.err" >&2
    fail=1
    return 1
  fi
}

run hot_r1 "$SSTSIM" "$HOTSPOT" --ranks 1 --stats "$WORK/hot.r1.csv"
for ranks in 2 4 8; do
  run "hot_r$ranks" "$SSTSIM" "$HOTSPOT" --ranks "$ranks" \
      --stats "$WORK/hot.r$ranks.csv" || continue
  if ! cmp -s "$WORK/hot.r1.csv" "$WORK/hot.r$ranks.csv"; then
    echo "rebalance: hotspot r$ranks stats differ from serial" >&2
    fail=1
  fi
done

# The invariance above must not be vacuous: under --profile-engine the
# 4-rank run has to report actual migration passes.
run hot_prof "$SSTSIM" "$HOTSPOT" --ranks 4 --profile-engine \
    --stats "$WORK/hot.prof.csv"
moves="$(awk -F, '$1 == "engine.rebalance" && $2 == "migrations" \
    { print $4 }' "$WORK/hot.prof.csv")"
if [ -z "$moves" ] || [ "$moves" -lt 1 ]; then
  echo "rebalance: hotspot r4 reported no migration passes ('$moves')" >&2
  fail=1
fi

# --- 3: checkpoint after migration resumes byte-identically -----------
# 100us cadence on a 400us run: the first snapshot lands well after the
# rebalancer has begun migrating (it fires every 8 epochs).
run hot_ckpt "$SSTSIM" "$HOTSPOT" --ranks 4 --stats "$WORK/hot.ckpt.csv" \
    --checkpoint-period 100us --checkpoint-dir "$WORK/cp" \
    --checkpoint-keep 8
if ! cmp -s "$WORK/hot.r1.csv" "$WORK/hot.ckpt.csv"; then
  echo "rebalance: checkpointing run drifted from the plain run" >&2
  fail=1
fi
run hot_resume "$SSTSIM" --restart "$WORK/cp" --ranks 4 \
    --stats "$WORK/hot.resume.csv"
if ! cmp -s "$WORK/hot.r1.csv" "$WORK/hot.resume.csv"; then
  echo "rebalance: restart from a post-migration snapshot is not" >&2
  echo "rebalance: byte-identical to the uninterrupted run" >&2
  fail=1
fi
# Resume from the oldest retained snapshot too: it forces the restored
# run to replay (and re-apply) later migrations itself.
oldest="$WORK/cp/$(ls "$WORK/cp" | head -1)"
run hot_resume_old "$SSTSIM" --restart "$oldest" --ranks 4 \
    --stats "$WORK/hot.resume_old.csv"
if ! cmp -s "$WORK/hot.r1.csv" "$WORK/hot.resume_old.csv"; then
  echo "rebalance: restart from the oldest snapshot drifted" >&2
  fail=1
fi

# --- 4: lax + rebalance completes cleanly -----------------------------
run hot_lax "$SSTSIM" "$HOTSPOT" --ranks 4 --sync-mode lax \
    --lax-skew 2us --stats "$WORK/hot.lax.csv"
if ! grep -q '^lax: ' "$WORK/hot_lax.err"; then
  echo "rebalance: lax hotspot run missing its lax report" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "rebalance: corpus goldens unchanged under --rebalance;" \
     "hotspot byte-identical at 1/2/4/8 ranks with $moves migration" \
     "passes; post-migration checkpoints resume byte-identically"
