#!/bin/sh
# The acceptance bar for the observability layer: a traced 4-rank run
# must emit byte-identical trace, metrics, and stats files to the same
# model run serially.
#
#   test_trace_determinism.sh <sstsim> <models_dir>
set -u

SSTSIM="${1:?usage: test_trace_determinism.sh <sstsim> <models_dir>}"
MODELS="${2:?missing models dir}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

run() {
  ranks="$1"
  if ! "$SSTSIM" "$MODELS/pingpong.json" --ranks "$ranks" \
      --trace "$WORK/t$ranks.json" \
      --metrics "$WORK/m$ranks.jsonl" --metrics-period 100ns \
      --stats "$WORK/s$ranks.csv" > /dev/null 2> "$WORK/err$ranks"; then
    echo "trace_determinism: $ranks-rank run failed:" >&2
    sed 's/^/  | /' "$WORK/err$ranks" >&2
    exit 1
  fi
}

run 1
run 4

check() {
  if ! cmp -s "$WORK/${1}1$2" "$WORK/${1}4$2"; then
    echo "trace_determinism: $3 differs between 1 and 4 ranks" >&2
    diff "$WORK/${1}1$2" "$WORK/${1}4$2" | head -10 | sed 's/^/  | /' >&2
    fail=1
  fi
}

check t .json  "trace"
check m .jsonl "metrics stream"
check s .csv   "statistics dump"

# The trace must hold actual content, not vacuously match as empty.
if [ "$(wc -c < "$WORK/t1.json")" -lt 1000 ]; then
  echo "trace_determinism: trace suspiciously small" >&2
  fail=1
fi
if [ ! -s "$WORK/m1.jsonl" ]; then
  echo "trace_determinism: metrics stream is empty" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "trace_determinism: trace, metrics, and stats byte-identical at 1 and 4 ranks"
