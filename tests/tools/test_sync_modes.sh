#!/bin/sh
# Synchronization-mode acceptance harness (see DESIGN.md "Synchronization
# modes").  The same SDL models run at 1, 2, and 4 ranks under all three
# modes:
#
#   * conservative and adaptive stats dumps must be byte-identical to the
#     pinned serial golden digest — the determinism contract;
#   * lax runs must finish cleanly, report an engine.lax stats block, and
#     keep every timestamp correction inside the configured budget.  On
#     the phase-structured halo model the final time must also land
#     within that budget of the conservative run; the request-response
#     memory model is exercised for the per-correction bound only, since
#     corrections feed back into request pacing and compound end to end —
#     exactly why lax is opt-in (DESIGN.md, determinism contract table).
#
#   test_sync_modes.sh <sstsim> <source_dir>
set -u

SSTSIM="${1:?usage: test_sync_modes.sh <sstsim> <source_dir>}"
SRC="${2:?missing source dir}"

SYSTEMS="$SRC/examples/systems"
DIGESTS="$SRC/tests/golden/digests.sha256"
SKEW="2us"
SKEW_PS=2000000

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0

hash_of() { sha256sum "$1" | cut -d' ' -f1; }

golden_digest() {
  awk -v name="$1" '$2 == name { print $1 }' "$DIGESTS"
}

# Conservative and adaptive must reproduce the pinned serial digest at
# every rank count: same model, same bytes, regardless of how the ranks
# synchronized.
for model in node_ddr3 halo16; do
  case "$model" in
    node_ddr3) sdl="$SYSTEMS/node_ddr3.json"; gold="node_ddr3.r1.csv" ;;
    halo16)    sdl="$SYSTEMS/halo16_torus.json"; gold="halo16.r1.csv" ;;
  esac
  want="$(golden_digest "$gold")"
  if [ -z "$want" ]; then
    echo "sync_modes: no golden digest named $gold in $DIGESTS" >&2
    exit 1
  fi
  for mode in conservative adaptive; do
    for ranks in 1 2 4; do
      out="$WORK/$model.$mode.r$ranks.csv"
      if ! "$SSTSIM" "$sdl" --ranks "$ranks" --sync-mode "$mode" \
          --stats "$out" > /dev/null 2> "$WORK/err"; then
        echo "sync_modes: $model $mode r$ranks run failed:" >&2
        sed 's/^/  | /' "$WORK/err" >&2
        fail=1
        continue
      fi
      got="$(hash_of "$out")"
      if [ "$got" != "$want" ]; then
        echo "sync_modes: $model $mode r$ranks stats drifted from the" >&2
        echo "sync_modes: golden serial digest ($gold)" >&2
        fail=1
      fi
    done
  done
done

# done: t=<T> ps ... — the deterministic final time from the run report.
final_time() {
  sed -n 's/^done: t=\([0-9]*\) ps.*/\1/p' "$1"
}

# Lax: clean exit, a lax report + engine.lax stats block, skew inside the
# budget, and a final time within the budget of the conservative run.
for model in node_ddr3 halo16; do
  case "$model" in
    node_ddr3) sdl="$SYSTEMS/node_ddr3.json" ;;
    halo16)    sdl="$SYSTEMS/halo16_torus.json" ;;
  esac
  "$SSTSIM" "$sdl" --ranks 4 --stats "$WORK/$model.cons.csv" \
      > /dev/null 2> "$WORK/$model.cons.err" || { fail=1; continue; }
  cons_t="$(final_time "$WORK/$model.cons.err")"
  for ranks in 2 4; do
    out="$WORK/$model.lax.r$ranks.csv"
    err="$WORK/$model.lax.r$ranks.err"
    if ! "$SSTSIM" "$sdl" --ranks "$ranks" --sync-mode lax \
        --lax-skew "$SKEW" --stats "$out" > /dev/null 2> "$err"; then
      echo "sync_modes: $model lax r$ranks run failed:" >&2
      sed 's/^/  | /' "$err" >&2
      fail=1
      continue
    fi
    if ! grep -q '^lax: ' "$err"; then
      echo "sync_modes: $model lax r$ranks: missing lax report line" >&2
      fail=1
    fi
    if ! grep -q '^engine\.lax,' "$out"; then
      echo "sync_modes: $model lax r$ranks: stats dump has no engine.lax" >&2
      fail=1
    fi
    max_skew="$(sed -n 's/^lax: .*max observed skew \([0-9]*\) ps.*/\1/p' \
        "$err")"
    if [ -z "$max_skew" ] || [ "$max_skew" -ge "$SKEW_PS" ]; then
      echo "sync_modes: $model lax r$ranks: observed skew '$max_skew'" >&2
      echo "sync_modes: outside the $SKEW_PS ps budget" >&2
      fail=1
    fi
    if [ "$model" = halo16 ]; then
      lax_t="$(final_time "$err")"
      if [ -z "$cons_t" ] || [ -z "$lax_t" ]; then
        echo "sync_modes: $model lax r$ranks: missing final-time report" >&2
        fail=1
      elif ! awk -v a="$cons_t" -v b="$lax_t" -v s="$SKEW_PS" \
          'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= s) }'; then
        echo "sync_modes: $model lax r$ranks: final time $lax_t ps is" >&2
        echo "sync_modes: more than $SKEW_PS ps from conservative $cons_t" >&2
        fail=1
      fi
    fi
  done
done

if [ "$fail" -ne 0 ]; then exit 1; fi
echo "sync_modes: conservative+adaptive byte-identical to goldens at" \
     "1/2/4 ranks; lax skew and drift inside the $SKEW budget"
