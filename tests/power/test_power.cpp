// Technology models: scaling exponents, monotonicity, yield/cost, figures
// of merit.
#include <gtest/gtest.h>

#include <cmath>

#include "power/power.h"

namespace sst::power {
namespace {

CorePowerModel::Config core_cfg(unsigned w) {
  CorePowerModel::Config c;
  c.issue_width = w;
  return c;
}

TEST(CorePower, EnergyPerOpGrowsWithWidth) {
  const CorePowerModel w1(core_cfg(1));
  const CorePowerModel w2(core_cfg(2));
  const CorePowerModel w8(core_cfg(8));
  EXPECT_GT(w2.energy_per_op_pj(), w1.energy_per_op_pj());
  EXPECT_GT(w8.energy_per_op_pj(), w2.energy_per_op_pj());
  // Register-file share scales ~w^0.8: 8-wide op costs well under 8x.
  EXPECT_LT(w8.energy_per_op_pj(), 4.0 * w1.energy_per_op_pj());
}

TEST(CorePower, LeakageFollowsArea) {
  const CorePowerModel w1(core_cfg(1));
  const CorePowerModel w8(core_cfg(8));
  const double expected = std::pow(8.0, w1.config().area_exponent);
  EXPECT_NEAR(w8.leakage_w() / w1.leakage_w(), expected, 0.5);
  EXPECT_NEAR(w8.area_mm2() / w1.area_mm2(), expected, 0.5);
}

TEST(CorePower, AveragePowerComposition) {
  const CorePowerModel m(core_cfg(2));
  // 1e9 instructions over 1 second.
  const double p = m.average_power_w(1'000'000'000ULL, 1.0);
  const double dynamic = 1e9 * m.energy_per_op_pj() * 1e-12;
  EXPECT_NEAR(p, dynamic + m.leakage_w(), 1e-9);
  EXPECT_NEAR(m.energy_j(1'000'000'000ULL, 1.0), p * 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.average_power_w(100, 0.0), 0.0);
}

TEST(CorePower, ZeroWidthRejected) {
  EXPECT_THROW(CorePowerModel(core_cfg(0)), ConfigError);
}

TEST(SramPower, ScalesWithCapacity) {
  const SramPowerModel small(32 * 1024);
  const SramPowerModel big(4 * 1024 * 1024);
  EXPECT_GT(big.energy_per_access_pj(), small.energy_per_access_pj());
  EXPECT_GT(big.leakage_w(), small.leakage_w());
  EXPECT_GT(big.area_mm2(), small.area_mm2());
  EXPECT_THROW(SramPowerModel(0), ConfigError);
}

TEST(DramPower, GddrCostsMorePowerThanDdr3) {
  const DramPowerModel gddr(mem::DramTimingParams::gddr5());
  const DramPowerModel ddr3(mem::DramTimingParams::ddr3_1333());
  // Same access count and duration.
  EXPECT_GT(gddr.average_power_w(1'000'000, 0.01),
            ddr3.average_power_w(1'000'000, 0.01));
  EXPECT_GT(gddr.energy_j(0, 1.0), ddr3.energy_j(0, 1.0));  // background
}

TEST(Cost, YieldDropsWithArea) {
  const CostModel cm;
  EXPECT_GT(cm.yield(50), cm.yield(400));
  EXPECT_LE(cm.yield(50), 1.0);
  EXPECT_GT(cm.yield(400), 0.0);
}

TEST(Cost, DieCostSuperlinearInArea) {
  const CostModel cm;
  const double c100 = cm.die_cost_usd(100);
  const double c400 = cm.die_cost_usd(400);
  // 4x area -> more than 4x cost (fewer dies AND worse yield).
  EXPECT_GT(c400, 4.0 * c100);
}

TEST(Cost, DiesPerWaferSane) {
  const CostModel cm;
  // 300mm wafer area ~70685 mm^2; a 100 mm^2 die yields several hundred.
  const double dies = cm.dies_per_wafer(100);
  EXPECT_GT(dies, 400.0);
  EXPECT_LT(dies, 707.0);
  EXPECT_THROW((void)cm.dies_per_wafer(0), ConfigError);
}

TEST(Cost, MemoryCostByTechnology) {
  const double ddr3 =
      CostModel::memory_cost_usd(mem::DramTimingParams::ddr3_1333(), 16.0);
  const double gddr =
      CostModel::memory_cost_usd(mem::DramTimingParams::gddr5(), 16.0);
  EXPECT_GT(gddr, 2.0 * ddr3);
  EXPECT_THROW(CostModel::memory_cost_usd(
                   mem::DramTimingParams::ddr3_1333(), 0.0),
               ConfigError);
}

TEST(DesignPoint, FiguresOfMerit) {
  DesignPoint p;
  p.label = "test";
  p.runtime_s = 2.0;
  p.power_w = 10.0;
  p.cost_usd = 100.0;
  EXPECT_DOUBLE_EQ(p.performance(), 0.5);
  EXPECT_DOUBLE_EQ(p.perf_per_watt(), 0.05);
  EXPECT_DOUBLE_EQ(p.perf_per_dollar(), 0.005);
  EXPECT_DOUBLE_EQ(p.energy_j(), 20.0);
  const DesignPoint zero;
  EXPECT_DOUBLE_EQ(zero.performance(), 0.0);
  EXPECT_DOUBLE_EQ(zero.perf_per_watt(), 0.0);
}

TEST(CorePower, CalibrationMatchesPublishedShape) {
  // The design-space study reports an 8-wide core using roughly ~2.2x the
  // power of a 1-wide core at comparable activity.  Check the model lands
  // in that regime (1.5x - 4x) under equal instruction throughput scaled
  // by the width speedup (~1.8x).
  const CorePowerModel w1(core_cfg(1));
  const CorePowerModel w8(core_cfg(8));
  const double runtime1 = 1.0;
  const double runtime8 = 1.0 / 1.78;
  const std::uint64_t instructions = 2'000'000'000ULL;
  const double p1 = w1.average_power_w(instructions, runtime1);
  const double p8 = w8.average_power_w(instructions, runtime8);
  const double ratio = p8 / p1;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

}  // namespace
}  // namespace sst::power
