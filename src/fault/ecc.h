// SECDED ECC model for transient memory bit-flips.
//
// Models a (data + check)-bit codeword protected by a single-error-correct /
// double-error-detect Hamming code.  Given a raw per-bit error probability
// it precomputes the per-word probabilities of a correctable single-bit
// flip and of an uncorrectable multi-bit flip, which callers sample with
// one uniform draw per word.
#pragma once

#include <cstdint>

#include "core/types.h"

namespace sst::fault {

/// Outcome of reading one protected word.
enum class EccOutcome : std::uint8_t {
  kClean,        // no bit flipped
  kCorrected,    // single flip, fixed by SECDED
  kUncorrected,  // multi-bit flip, detected but not fixable
  kSilent,       // flip with no ECC protection (undetected corruption)
};

/// Number of Hamming check bits for SECDED over `data_bits` data bits
/// (smallest r with 2^r >= data_bits + r + 1, plus the extra parity bit).
[[nodiscard]] std::uint32_t secded_check_bits(std::uint32_t data_bits);

class SecdedModel {
 public:
  /// bit_error_rate: probability an individual stored bit has flipped when
  /// a word is read.  data_bits: word width (64 for the usual SECDED(72,64)
  /// DRAM organisation).  secded=false models unprotected memory: every
  /// flip is silent corruption.
  SecdedModel(double bit_error_rate, std::uint32_t data_bits = 64,
              bool secded = true);

  /// True when the configured error rate can ever produce a fault; callers
  /// can skip drawing randomness entirely when false.
  [[nodiscard]] bool enabled() const { return p_any_ > 0.0; }

  /// Classifies one word access given a uniform draw u in [0, 1).
  [[nodiscard]] EccOutcome classify(double u) const {
    if (u >= p_any_) return EccOutcome::kClean;
    if (!secded_) return EccOutcome::kSilent;
    return u < p_multi_ ? EccOutcome::kUncorrected : EccOutcome::kCorrected;
  }

  /// Samples one word access from the given generator (one draw, or none
  /// when the model is disabled).
  template <typename Rng>
  [[nodiscard]] EccOutcome sample(Rng& rng) {
    if (!enabled()) return EccOutcome::kClean;
    return classify(rng.next_double());
  }

  [[nodiscard]] double p_single() const { return p_single_; }
  [[nodiscard]] double p_multi() const { return p_multi_; }
  [[nodiscard]] std::uint32_t word_bits() const { return word_bits_; }
  [[nodiscard]] bool secded() const { return secded_; }

 private:
  double p_single_ = 0.0;  // exactly one of word_bits_ flipped
  double p_multi_ = 0.0;   // two or more flipped
  double p_any_ = 0.0;     // p_single_ + p_multi_
  std::uint32_t word_bits_ = 0;
  bool secded_ = true;
};

}  // namespace sst::fault
