// Deterministic, seed-driven link fault models.
//
// A LinkFaultModel is installed on one link endpoint (the sending side) and
// decides, per event, whether to drop it, deliver a duplicate, or add
// delay.  Decisions are drawn from a private RNG stream seeded from the
// simulation's fault seed and a stable hash of "component.port", so a given
// scenario is bit-identical across rank counts and install order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/link.h"
#include "core/rng.h"
#include "core/statistics.h"
#include "core/types.h"

namespace sst {
class Simulation;
}

namespace sst::fault {

/// Per-endpoint fault probabilities.  The three probabilities are mutually
/// exclusive outcomes of a single draw, so their sum must be <= 1.
struct LinkFaultConfig {
  double drop_prob = 0.0;    // event is discarded
  double dup_prob = 0.0;     // event is delivered twice
  double delay_prob = 0.0;   // event is delivered late
  SimTime delay_min = 0;     // extra delay bounds (inclusive), in ps
  SimTime delay_max = 0;

  /// Throws ConfigError on out-of-range probabilities or inverted bounds.
  void validate() const;
};

/// Concrete LinkFault drawing from its own XorShift128+ stream.  One
/// instance per endpoint — never share across links or directions.
class LinkFaultModel final : public LinkFault {
 public:
  /// Counters may be null (e.g. in unit tests); install_link_fault wires
  /// them to the simulation's statistics registry.
  LinkFaultModel(const LinkFaultConfig& config, std::uint64_t seed,
                 Counter* dropped = nullptr, Counter* duplicated = nullptr,
                 Counter* delayed = nullptr);

  [[nodiscard]] Action on_send(const Event& ev) override;
  void on_duplicate_unclonable() override;

  [[nodiscard]] const LinkFaultConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }
  [[nodiscard]] std::uint64_t unclonable() const { return unclonable_; }

  void serialize(ckpt::Serializer& s) override;

 private:
  LinkFaultConfig config_;
  rng::XorShift128Plus rng_;
  Counter* dropped_;
  Counter* duplicated_;
  Counter* delayed_;
  std::uint64_t decisions_ = 0;
  std::uint64_t unclonable_ = 0;
};

/// Stable 64-bit FNV-1a hash, identical across platforms and runs; used to
/// derive per-endpoint fault seeds from "component.port" names.
[[nodiscard]] std::uint64_t stable_hash(std::string_view text);

/// Builds a LinkFaultModel for (component, port), registers its
/// "<port>.fault_dropped/_duplicated/_delayed" counters in the simulation's
/// statistics registry, and installs it.  Returns the installed model
/// (owned by the link).  Seeding: effective_fault_seed() mixed with
/// stable_hash("component.port"), so identical regardless of rank count or
/// install order.
LinkFaultModel* install_link_fault(Simulation& sim,
                                   const std::string& component,
                                   const std::string& port,
                                   const LinkFaultConfig& config);

}  // namespace sst::fault
