#include "fault/fault_model.h"

#include <memory>

#include "ckpt/serializer.h"
#include "core/simulation.h"

namespace sst::fault {

void LinkFaultConfig::validate() const {
  auto check_prob = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0) {
      throw ConfigError(std::string("link fault: ") + what +
                        " probability must be in [0, 1], got " +
                        std::to_string(p));
    }
  };
  check_prob(drop_prob, "drop");
  check_prob(dup_prob, "duplicate");
  check_prob(delay_prob, "delay");
  if (drop_prob + dup_prob + delay_prob > 1.0) {
    throw ConfigError(
        "link fault: drop + duplicate + delay probabilities exceed 1");
  }
  if (delay_min > delay_max) {
    throw ConfigError("link fault: delay_min > delay_max");
  }
}

LinkFaultModel::LinkFaultModel(const LinkFaultConfig& config,
                               std::uint64_t seed, Counter* dropped,
                               Counter* duplicated, Counter* delayed)
    : config_(config),
      rng_(seed),
      dropped_(dropped),
      duplicated_(duplicated),
      delayed_(delayed) {
  config_.validate();
}

LinkFault::Action LinkFaultModel::on_send(const Event& ev) {
  (void)ev;
  ++decisions_;
  Action act;
  // One uniform draw selects among the mutually exclusive outcomes; a
  // possible second draw sizes the delay.  The draw count per decision is
  // fixed per outcome, keeping the stream aligned across runs.
  const double u = rng_.next_double();
  double threshold = config_.drop_prob;
  if (u < threshold) {
    act.drop = true;
    if (dropped_ != nullptr) dropped_->add();
    return act;
  }
  threshold += config_.dup_prob;
  if (u < threshold) {
    act.duplicate = true;
    if (duplicated_ != nullptr) duplicated_->add();
    return act;
  }
  threshold += config_.delay_prob;
  if (u < threshold) {
    act.extra_delay = config_.delay_min;
    if (config_.delay_max > config_.delay_min) {
      act.extra_delay +=
          rng_.next_bounded(config_.delay_max - config_.delay_min + 1);
    }
    if (delayed_ != nullptr) delayed_->add();
  }
  return act;
}

void LinkFaultModel::on_duplicate_unclonable() { ++unclonable_; }

std::uint64_t stable_hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

LinkFaultModel* install_link_fault(Simulation& sim,
                                   const std::string& component,
                                   const std::string& port,
                                   const LinkFaultConfig& config) {
  config.validate();
  // Mix the endpoint identity into the fault seed through SplitMix64 so
  // nearby hashes do not yield correlated XorShift streams.
  rng::SplitMix64 mixer(sim.effective_fault_seed() ^
                        stable_hash(component + "." + port));
  const std::uint64_t seed = mixer.next();
  auto* dropped = sim.stats().create<Counter>(component,
                                              port + ".fault_dropped");
  auto* duplicated =
      sim.stats().create<Counter>(component, port + ".fault_duplicated");
  auto* delayed = sim.stats().create<Counter>(component,
                                              port + ".fault_delayed");
  auto model = std::make_unique<LinkFaultModel>(config, seed, dropped,
                                                duplicated, delayed);
  LinkFaultModel* raw = model.get();
  sim.install_link_fault(component, port, std::move(model));
  return raw;
}

void LinkFaultModel::serialize(ckpt::Serializer& s) {
  s & rng_ & decisions_ & unclonable_;
}

}  // namespace sst::fault
