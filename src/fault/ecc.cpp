#include "fault/ecc.h"

#include <cmath>
#include <string>

namespace sst::fault {

std::uint32_t secded_check_bits(std::uint32_t data_bits) {
  std::uint32_t r = 0;
  while ((1ULL << r) < static_cast<std::uint64_t>(data_bits) + r + 1) ++r;
  return r + 1;  // +1: the overall parity bit that upgrades SEC to SECDED
}

SecdedModel::SecdedModel(double bit_error_rate, std::uint32_t data_bits,
                         bool secded)
    : secded_(secded) {
  if (bit_error_rate < 0.0 || bit_error_rate >= 1.0) {
    throw ConfigError("ecc: bit error rate must be in [0, 1), got " +
                      std::to_string(bit_error_rate));
  }
  if (data_bits == 0) throw ConfigError("ecc: word width must be > 0");
  // ECC widens the stored word: check bits can flip too.
  word_bits_ = data_bits + (secded_ ? secded_check_bits(data_bits) : 0);
  if (bit_error_rate == 0.0) return;
  const double p = bit_error_rate;
  const auto n = static_cast<double>(word_bits_);
  // Binomial: P(0 flips) and P(exactly 1 flip) over n independent bits.
  // exp/log1p keeps (1-p)^n accurate for the tiny rates DRAM studies use.
  const double p_zero = std::exp(n * std::log1p(-p));
  p_single_ = n * p * std::exp((n - 1.0) * std::log1p(-p));
  p_multi_ = 1.0 - p_zero - p_single_;
  if (p_multi_ < 0.0) p_multi_ = 0.0;  // rounding guard
  p_any_ = p_single_ + p_multi_;
}

}  // namespace sst::fault
