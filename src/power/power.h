// Technology models: power, energy, area, and cost estimators attached to
// architectural components (the McPAT / DRAM-power / IC-Knowledge analogue
// layer of the toolkit).
//
// These are closed-form models, not circuit simulators: the design-space
// studies need *relative* orderings (perf/W, perf/$) across memory
// technologies and issue widths, which these capture with published
// scaling exponents — e.g. register-file energy per access grows
// ~O(w^1.8) with issue width w (Zyuban), chip cost grows super-linearly
// with area through wafer yield.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "mem/dram.h"

namespace sst::power {

/// Dynamic + leakage power of one core as a function of issue width.
class CorePowerModel {
 public:
  struct Config {
    unsigned issue_width = 2;
    double frequency_ghz = 2.0;
    // Calibration constants (45nm-class defaults).  Chosen so that at
    // equal work an 8-wide core draws roughly 2-3.5x the power of a
    // 1-wide core — the regime the published issue-width study reports
    // ("~123% more power" for ~1.8x speedup).
    double base_energy_pj = 500.0;    // per issued op at w=1
    double regfile_exponent = 1.8;    // regfile energy/access ~ w^1.8
    double regfile_share = 0.10;      // regfile fraction of op energy @ w=1
    double base_leakage_w = 0.4;      // leakage at w=1
    double area_exponent = 0.85;      // whole-core area ~ w^0.85
  };

  explicit CorePowerModel(Config cfg);

  /// Energy of one issued operation (pJ), including width-scaled
  /// register-file cost.
  [[nodiscard]] double energy_per_op_pj() const { return energy_per_op_pj_; }

  /// Leakage power (W) — scales with core area.
  [[nodiscard]] double leakage_w() const { return leakage_w_; }

  /// Average power over a run: instructions issued in `seconds`.
  [[nodiscard]] double average_power_w(std::uint64_t instructions,
                                       double seconds) const;

  /// Total energy of a run (J).
  [[nodiscard]] double energy_j(std::uint64_t instructions,
                                double seconds) const;

  /// Core area in mm^2 (feeds the cost model).
  [[nodiscard]] double area_mm2() const { return area_mm2_; }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  double energy_per_op_pj_;
  double leakage_w_;
  double area_mm2_;
};

/// SRAM (cache) energy: per-access energy and leakage scale with capacity.
class SramPowerModel {
 public:
  explicit SramPowerModel(std::uint64_t capacity_bytes);

  [[nodiscard]] double energy_per_access_pj() const {
    return energy_per_access_pj_;
  }
  [[nodiscard]] double leakage_w() const { return leakage_w_; }
  [[nodiscard]] double area_mm2() const { return area_mm2_; }

  [[nodiscard]] double average_power_w(std::uint64_t accesses,
                                       double seconds) const;
  [[nodiscard]] double energy_j(std::uint64_t accesses,
                                double seconds) const;

 private:
  double energy_per_access_pj_;
  double leakage_w_;
  double area_mm2_;
};

/// DRAM power from the timing preset's energy constants.
class DramPowerModel {
 public:
  explicit DramPowerModel(const mem::DramTimingParams& params)
      : params_(params) {}

  [[nodiscard]] double average_power_w(std::uint64_t line_accesses,
                                       double seconds) const;
  [[nodiscard]] double energy_j(std::uint64_t line_accesses,
                                double seconds) const;

 private:
  mem::DramTimingParams params_;
};

/// Wafer-yield chip cost (IC-Knowledge-style negative-binomial yield).
class CostModel {
 public:
  struct Config {
    double wafer_cost_usd = 4000.0;
    double wafer_diameter_mm = 300.0;
    double defect_density_per_cm2 = 0.25;
    double yield_alpha = 2.0;  // defect clustering parameter
  };

  CostModel() : cfg_(Config{}) {}
  explicit CostModel(Config cfg) : cfg_(cfg) {}

  /// Gross dies per wafer for a (square) die of the given area.
  [[nodiscard]] double dies_per_wafer(double die_area_mm2) const;

  /// Negative-binomial die yield in (0, 1].
  [[nodiscard]] double yield(double die_area_mm2) const;

  /// Manufacturing cost of one good die.
  [[nodiscard]] double die_cost_usd(double die_area_mm2) const;

  /// Cost of a memory subsystem of the given capacity and technology.
  [[nodiscard]] static double memory_cost_usd(
      const mem::DramTimingParams& params, double capacity_gb);

 private:
  Config cfg_;
};

/// One row of a design-space evaluation: performance + power + cost rolled
/// into the figures of merit the studies report.
struct DesignPoint {
  std::string label;
  double runtime_s = 0.0;
  double power_w = 0.0;
  double cost_usd = 0.0;

  [[nodiscard]] double performance() const {
    return runtime_s > 0 ? 1.0 / runtime_s : 0.0;
  }
  [[nodiscard]] double perf_per_watt() const {
    return power_w > 0 ? performance() / power_w : 0.0;
  }
  [[nodiscard]] double perf_per_dollar() const {
    return cost_usd > 0 ? performance() / cost_usd : 0.0;
  }
  [[nodiscard]] double energy_j() const { return power_w * runtime_s; }
};

}  // namespace sst::power
