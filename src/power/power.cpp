#include "power/power.h"

#include <cmath>

namespace sst::power {

CorePowerModel::CorePowerModel(Config cfg) : cfg_(cfg) {
  if (cfg_.issue_width == 0) {
    throw ConfigError("CorePowerModel: issue_width must be >= 1");
  }
  const double w = static_cast<double>(cfg_.issue_width);
  // Per-op energy: the register-file (and bypass network) share scales as
  // w^(exponent-1) per access because ports grow with width; the rest of
  // the op energy is width-independent.
  const double regfile_scale = std::pow(w, cfg_.regfile_exponent - 1.0);
  energy_per_op_pj_ =
      cfg_.base_energy_pj *
      ((1.0 - cfg_.regfile_share) + cfg_.regfile_share * regfile_scale);
  // Leakage follows area.
  const double area_scale = std::pow(w, cfg_.area_exponent);
  leakage_w_ = cfg_.base_leakage_w * area_scale;
  area_mm2_ = 6.0 * area_scale;  // 6 mm^2 single-issue core (45nm-class)
}

double CorePowerModel::energy_j(std::uint64_t instructions,
                                double seconds) const {
  const double dynamic = static_cast<double>(instructions) *
                         energy_per_op_pj_ * 1e-12;
  return dynamic + leakage_w_ * seconds;
}

double CorePowerModel::average_power_w(std::uint64_t instructions,
                                       double seconds) const {
  if (seconds <= 0) return 0.0;
  return energy_j(instructions, seconds) / seconds;
}

SramPowerModel::SramPowerModel(std::uint64_t capacity_bytes) {
  if (capacity_bytes == 0) {
    throw ConfigError("SramPowerModel: capacity must be > 0");
  }
  const double mb = static_cast<double>(capacity_bytes) / (1024.0 * 1024.0);
  // CACTI-flavoured fits: access energy ~ sqrt(capacity), leakage and area
  // linear in capacity.
  energy_per_access_pj_ = 20.0 * std::sqrt(mb) + 5.0;
  leakage_w_ = 0.15 * mb;
  area_mm2_ = 2.0 * mb;
}

double SramPowerModel::energy_j(std::uint64_t accesses,
                                double seconds) const {
  return static_cast<double>(accesses) * energy_per_access_pj_ * 1e-12 +
         leakage_w_ * seconds;
}

double SramPowerModel::average_power_w(std::uint64_t accesses,
                                       double seconds) const {
  if (seconds <= 0) return 0.0;
  return energy_j(accesses, seconds) / seconds;
}

double DramPowerModel::energy_j(std::uint64_t line_accesses,
                                double seconds) const {
  return static_cast<double>(line_accesses) * params_.energy_per_access_nj *
             1e-9 +
         params_.background_power_w * seconds;
}

double DramPowerModel::average_power_w(std::uint64_t line_accesses,
                                       double seconds) const {
  if (seconds <= 0) return 0.0;
  return energy_j(line_accesses, seconds) / seconds;
}

double CostModel::dies_per_wafer(double die_area_mm2) const {
  if (die_area_mm2 <= 0) throw ConfigError("CostModel: area must be > 0");
  const double r = cfg_.wafer_diameter_mm / 2.0;
  const double wafer_area = M_PI * r * r;
  const double edge = std::sqrt(die_area_mm2);
  // Standard gross-die formula: area term minus edge-loss term.
  const double gross =
      wafer_area / die_area_mm2 - M_PI * cfg_.wafer_diameter_mm /
                                      std::sqrt(2.0 * die_area_mm2) * 0.5;
  (void)edge;
  return gross > 1.0 ? gross : 1.0;
}

double CostModel::yield(double die_area_mm2) const {
  const double area_cm2 = die_area_mm2 / 100.0;
  const double d = cfg_.defect_density_per_cm2;
  const double a = cfg_.yield_alpha;
  return std::pow(1.0 + d * area_cm2 / a, -a);
}

double CostModel::die_cost_usd(double die_area_mm2) const {
  return cfg_.wafer_cost_usd / (dies_per_wafer(die_area_mm2) *
                                yield(die_area_mm2));
}

double CostModel::memory_cost_usd(const mem::DramTimingParams& params,
                                  double capacity_gb) {
  if (capacity_gb <= 0) throw ConfigError("CostModel: capacity must be > 0");
  return params.cost_per_gb_usd * capacity_gb;
}

}  // namespace sst::power
