// Mini-application workload generators.
//
// Five signatures cover the design-space experiments:
//   StreamTriad — pure streaming bandwidth (STREAM triad)
//   Hpccg       — sparse CG solver: 27-point SpMV + vector ops; low
//                 arithmetic intensity, streamed matrix, cached x-vector
//                 (the HPCCG mini-app of the Mantevo suite)
//   Lulesh      — explicit shock hydro: node gathers + heavy zone-local
//                 FLOP work; high arithmetic intensity (LLNL's Lulesh)
//   Gups        — random table updates; memory-latency/MLP bound
//   PointerChase— serialized dependent loads; pure latency
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "proc/workload.h"

namespace sst::proc {

/// Common machinery: kernels refill a small op buffer one "work unit" at a
/// time (one vector element, one matrix row, one zone, ...).
class BufferedWorkload : public Workload {
 public:
  bool next(Op& op) final;

  void serialize(ckpt::Serializer& s) override;

 protected:
  BufferedWorkload() = default;

  /// Emits the ops of the next work unit into emit(); returns false when
  /// the program is complete.
  virtual bool refill() = 0;

  void emit(Op op) { buffer_.push_back(op); }
  void emit_load(Addr a, std::uint32_t size = 8, bool dep = false) {
    emit({OpType::kLoad, a, size, dep});
  }
  void emit_store(Addr a, std::uint32_t size = 8, bool dep = false) {
    emit({OpType::kStore, a, size, dep});
  }
  void emit_flops(unsigned n) {
    for (unsigned i = 0; i < n; ++i) emit({OpType::kFlop, 0, 0, false});
  }
  void emit_intops(unsigned n) {
    for (unsigned i = 0; i < n; ++i) emit({OpType::kIntOp, 0, 0, false});
  }
  void emit_branch() { emit({OpType::kBranch, 0, 0, false}); }

 private:
  std::vector<Op> buffer_;
  std::size_t pos_ = 0;
};

/// a[i] = b[i] + s * c[i]
class StreamTriad final : public BufferedWorkload {
 public:
  StreamTriad(std::uint64_t elements, unsigned iterations);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t total_flops() const override {
    return 2ULL * elements_ * iterations_;
  }

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;

  std::string name_ = "stream.triad";
  std::uint64_t elements_;
  unsigned iterations_;
  std::uint64_t i_ = 0;
  unsigned iter_ = 0;
  Addr a_base_, b_base_, c_base_;
};

/// Conjugate-gradient iteration on a 27-point nx*ny*nz stencil matrix:
/// SpMV (streamed matrix values + indices, gathered x) followed by the
/// dot/axpy vector phases.
class Hpccg final : public BufferedWorkload {
 public:
  Hpccg(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz,
        unsigned iterations);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t total_flops() const override;

  [[nodiscard]] std::uint64_t rows() const { return rows_; }

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;
  void emit_spmv_row(std::uint64_t row);
  void emit_vector_elem(std::uint64_t i, unsigned phase);

  std::string name_ = "miniapp.hpccg";
  std::uint32_t nx_, ny_, nz_;
  unsigned iterations_;
  std::uint64_t rows_;
  // Phases per iteration: 0 = SpMV, 1 = dot, 2..3 = axpys.
  unsigned iter_ = 0;
  unsigned phase_ = 0;
  std::uint64_t index_ = 0;
  Addr matval_base_, colidx_base_, x_base_, y_base_, r_base_, p_base_;
};

/// Explicit-hydro zone update: gather 8 node coordinates, compute a large
/// zone-local kernel, scatter a few zone results.
class Lulesh final : public BufferedWorkload {
 public:
  Lulesh(std::uint32_t n, unsigned iterations);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t total_flops() const override;

  [[nodiscard]] std::uint64_t zones() const { return zones_; }
  static constexpr unsigned kFlopsPerZone = 160;
  static constexpr unsigned kZoneReadFields = 3;
  static constexpr unsigned kZoneWriteFields = 1;

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;

  std::string name_ = "miniapp.lulesh";
  std::uint32_t n_;
  unsigned iterations_;
  std::uint64_t zones_;
  unsigned iter_ = 0;
  std::uint64_t zone_ = 0;
  Addr node_base_, zone_base_;
  Addr read_fields_[kZoneReadFields];
  Addr write_fields_[kZoneWriteFields];
};

/// Molecular-dynamics force loop (miniMD): per atom, stream a neighbor
/// list and gather the neighbors' positions (spatially local but
/// irregular), compute the pair forces, scatter the force accumulation.
/// Gather-heavy with moderate arithmetic intensity — the signature that
/// distinguishes MD from both stencils and sparse solvers.
class MiniMd final : public BufferedWorkload {
 public:
  MiniMd(std::uint64_t atoms, std::uint32_t neighbors, unsigned iterations,
         std::uint64_t seed = 13);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t total_flops() const override;

  [[nodiscard]] std::uint64_t atoms() const { return atoms_; }
  static constexpr unsigned kFlopsPerPair = 12;

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;

  std::string name_ = "miniapp.minimd";
  std::uint64_t atoms_;
  std::uint32_t neighbors_;
  unsigned iterations_;
  std::uint64_t atom_ = 0;
  unsigned iter_ = 0;
  rng::XorShift128Plus rng_;
  Addr pos_base_, neigh_base_, force_base_;
};

/// Random read-modify-write over a table.
class Gups final : public BufferedWorkload {
 public:
  Gups(std::uint64_t table_bytes, std::uint64_t updates,
       std::uint64_t seed = 7);

  [[nodiscard]] const std::string& name() const override { return name_; }

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;

  std::string name_ = "synthetic.gups";
  std::uint64_t table_bytes_;
  std::uint64_t updates_;
  std::uint64_t done_ = 0;
  rng::XorShift128Plus rng_;
  Addr table_base_;
};

/// Fully serialized dependent loads through a (hashed) pointer chain.
class PointerChase final : public BufferedWorkload {
 public:
  PointerChase(std::uint64_t table_bytes, std::uint64_t hops,
               std::uint64_t seed = 11);

  [[nodiscard]] const std::string& name() const override { return name_; }

  void serialize(ckpt::Serializer& s) override;

 private:
  bool refill() override;

  std::string name_ = "synthetic.chase";
  std::uint64_t table_bytes_;
  std::uint64_t hops_;
  std::uint64_t done_ = 0;
  std::uint64_t cursor_;
  Addr table_base_;
};

}  // namespace sst::proc
