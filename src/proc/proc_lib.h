// Umbrella header + factory registration for the processor element
// library.
#pragma once

#include "core/sst.h"
#include "proc/core_model.h"
#include "proc/kernels.h"
#include "proc/trace.h"
#include "proc/workload.h"
#include "proc/workload_factory.h"

namespace sst::proc {

/// Registers "proc.Core" with the process-wide Factory.  A core built this
/// way constructs its workload from its own params (see
/// workload_factory.h).  Idempotent.
void register_library();

}  // namespace sst::proc
