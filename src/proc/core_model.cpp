#include "proc/core_model.h"

#include <algorithm>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::proc {

Core::Core(Params& params) {
  period_ = params.find_period("clock", "2GHz");
  issue_width_ = params.find<std::uint32_t>("issue_width", 2);
  max_loads_ = params.find<std::uint32_t>("max_loads", 8);
  max_stores_ = params.find<std::uint32_t>("max_stores", 8);
  line_split_ = params.find<std::uint32_t>("line_split", 64);
  virt_ = params.find<bool>("virt", false);
  asid_ = params.find<std::uint32_t>("asid", 0);
  if (issue_width_ == 0) {
    throw ConfigError("core '" + name() + "': issue_width must be >= 1");
  }
  if (max_loads_ == 0 || max_stores_ == 0) {
    throw ConfigError("core '" + name() + "': max_loads/max_stores >= 1");
  }

  mem_link_ = configure_link(
      "mem", [this](EventPtr ev) { handle_mem(std::move(ev)); });

  register_as_primary();
  register_clock(period_, [this](Cycle c) { return tick(c); });
  clock_active_ = true;

  instructions_ = stat_counter("instructions");
  flops_ = stat_counter("flops");
  loads_ = stat_counter("loads");
  stores_ = stat_counter("stores");
  mem_bytes_ = stat_counter("mem_bytes");
  busy_cycles_ = stat_counter("busy_cycles");
  stall_cycles_ = stat_counter("stall_cycles");
  sleeps_ = stat_counter("sleeps");
  load_latency_ = stat_accumulator("load_latency_ps");
}

void Core::set_workload(WorkloadPtr workload) {
  if (!workload) throw ConfigError("core '" + name() + "': null workload");
  workload_ = std::move(workload);
}

void Core::setup() {
  if (!workload_) {
    throw ConfigError("core '" + name() +
                      "': no workload attached (call set_workload)");
  }
}

void Core::send_mem(mem::MemCmd cmd, Addr addr, std::uint32_t size) {
  const std::uint64_t id = next_req_id_++;
  const bool is_load = cmd == mem::MemCmd::kGetS;
  in_flight_.emplace(id, is_load);
  if (is_load) {
    ++outstanding_loads_;
    issue_time_.emplace(id, now());
  } else {
    ++outstanding_stores_;
  }
  auto ev = std::make_unique<mem::MemEvent>(cmd, addr, size, id);
  if (virt_) {
    ev->set_virt(true);
    ev->set_asid(asid_);
  }
  mem_link_->send(std::move(ev));
}

bool Core::try_issue(const Op& op) {
  if (op.depends_on_loads && outstanding_loads_ > 0) return false;

  switch (op.type) {
    case OpType::kLoad:
    case OpType::kStore: {
      const bool is_load = op.type == OpType::kLoad;
      // Split at line boundaries so caches see line-contained requests.
      const Addr first_line = op.addr / line_split_;
      const Addr last_line =
          (op.addr + (op.size ? op.size - 1 : 0)) / line_split_;
      const unsigned pieces = static_cast<unsigned>(last_line - first_line) + 1;
      // An op needing more pieces than the whole budget may still issue
      // once the pipeline drains (it would deadlock otherwise).
      if (is_load) {
        if (outstanding_loads_ + pieces > max_loads_ &&
            outstanding_loads_ > 0) {
          return false;
        }
      } else {
        if (outstanding_stores_ + pieces > max_stores_ &&
            outstanding_stores_ > 0) {
          return false;
        }
      }
      Addr a = op.addr;
      std::uint32_t remaining = op.size;
      for (unsigned p = 0; p < pieces; ++p) {
        const Addr line_end = (a / line_split_ + 1) * line_split_;
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<Addr>(remaining, line_end - a));
        send_mem(is_load ? mem::MemCmd::kGetS : mem::MemCmd::kGetX, a, chunk);
        a += chunk;
        remaining -= chunk;
      }
      (is_load ? loads_ : stores_)->add();
      mem_bytes_->add(op.size);
      return true;
    }
    case OpType::kFlop:
      flops_->add();
      return true;
    case OpType::kIntOp:
    case OpType::kBranch:
      return true;
  }
  return true;
}

bool Core::tick(Cycle /*cycle*/) {
  unsigned issued = 0;
  while (issued < issue_width_) {
    if (!pending_) {
      Op op;
      if (stream_done_ || !workload_->next(op)) {
        stream_done_ = true;
        break;
      }
      pending_ = op;
    }
    if (!try_issue(*pending_)) break;
    pending_.reset();
    instructions_->add();
    ++issued;
  }

  if (issued > 0) {
    busy_cycles_->add();
  } else {
    stall_cycles_->add();
  }

  if (stream_done_ && !pending_) {
    // Drain: once memory quiesces the program is complete.
    clock_active_ = false;
    complete_if_drained();
    return true;  // unregister; wake (if needed) via responses
  }

  if (issued == 0 && (outstanding_loads_ > 0 || outstanding_stores_ > 0)) {
    // Fully blocked on memory: sleep until a response arrives.
    sleeps_->add();
    clock_active_ = false;
    return true;
  }

  if (issued == 0) {
    throw SimulationError("core '" + name() +
                          "': no progress with no memory outstanding");
  }
  return false;
}

void Core::activate_clock() {
  if (clock_active_ || completed_) return;
  clock_active_ = true;
  register_clock(period_, [this](Cycle c) { return tick(c); });
}

void Core::handle_mem(EventPtr ev) {
  auto resp = event_cast<mem::MemEvent>(std::move(ev));
  auto it = in_flight_.find(resp->req_id());
  if (it == in_flight_.end()) {
    throw SimulationError("core '" + name() + "': unmatched mem response");
  }
  const bool is_load = it->second;
  in_flight_.erase(it);
  if (is_load) {
    --outstanding_loads_;
    auto ts = issue_time_.find(resp->req_id());
    if (ts != issue_time_.end()) {
      load_latency_->add(static_cast<double>(now() - ts->second));
      issue_time_.erase(ts);
    }
  } else {
    --outstanding_stores_;
  }

  if (stream_done_ && !pending_ && !clock_active_) {
    complete_if_drained();
  } else {
    activate_clock();
  }
}

void Core::complete_if_drained() {
  if (completed_) return;
  if (outstanding_loads_ > 0 || outstanding_stores_ > 0) return;
  completed_ = true;
  completion_time_ = now();
  primary_ok_to_end_sim();
}

void Core::finish() {
  // Derived metrics recorded as statistics for the output dumps.
  const double cycles =
      period_ > 0 ? static_cast<double>(completion_time_) /
                        static_cast<double>(period_)
                  : 0.0;
  auto* summary = stat_accumulator("final_cycles");
  summary->add(cycles);
  auto* ipc = stat_accumulator("final_ipc");
  if (cycles > 0) {
    ipc->add(static_cast<double>(instructions_->count()) / cycles);
  }
}

void Core::serialize_state(ckpt::Serializer& s) {
  s & pending_ & stream_done_ & completed_ & clock_active_ &
      completion_time_ & outstanding_loads_ & outstanding_stores_ &
      next_req_id_ & in_flight_ & issue_time_;
  if (workload_ != nullptr) workload_->serialize(s);
}

}  // namespace sst::proc
