#include "proc/trace.h"

#include <cstring>

#include "ckpt/serializer.h"

namespace sst::proc {

namespace {

struct Record {
  std::uint8_t type;
  std::uint8_t flags;
  std::uint16_t pad;
  std::uint32_t size;
  std::uint64_t addr;
};
static_assert(sizeof(Record) == 16, "trace record layout");

Record encode(const Op& op) {
  Record r{};
  r.type = static_cast<std::uint8_t>(op.type);
  r.flags = op.depends_on_loads ? 1 : 0;
  r.size = op.size;
  r.addr = op.addr;
  return r;
}

Op decode(const Record& r, const std::string& path) {
  if (r.type > static_cast<std::uint8_t>(OpType::kBranch)) {
    throw ConfigError("corrupt trace record in '" + path + "'");
  }
  Op op;
  op.type = static_cast<OpType>(r.type);
  op.depends_on_loads = (r.flags & 1) != 0;
  op.size = r.size;
  op.addr = r.addr;
  return op;
}

std::FILE* open_checked(const std::string& path, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    throw ConfigError("cannot open trace file '" + path + "'");
  }
  return f;
}

void write_magic(std::FILE* f, const std::string& path) {
  if (std::fwrite(kTraceMagic, 1, sizeof kTraceMagic, f) !=
      sizeof kTraceMagic) {
    std::fclose(f);
    throw ConfigError("cannot write trace header to '" + path + "'");
  }
}

void check_magic(std::FILE* f, const std::string& path) {
  char magic[sizeof kTraceMagic];
  if (std::fread(magic, 1, sizeof magic, f) != sizeof magic ||
      std::memcmp(magic, kTraceMagic, sizeof magic) != 0) {
    std::fclose(f);
    throw ConfigError("'" + path + "' is not a trace file");
  }
}

}  // namespace

std::uint64_t write_trace(Workload& w, const std::string& path,
                          std::uint64_t max_ops) {
  std::FILE* f = open_checked(path, "wb");
  write_magic(f, path);
  std::uint64_t n = 0;
  Op op;
  while (n < max_ops && w.next(op)) {
    const Record r = encode(op);
    if (std::fwrite(&r, sizeof r, 1, f) != 1) {
      std::fclose(f);
      throw ConfigError("short write to trace file '" + path + "'");
    }
    ++n;
  }
  std::fclose(f);
  return n;
}

TraceWorkload::TraceWorkload(const std::string& path)
    : name_("trace:" + path), path_(path) {
  file_ = open_checked(path, "rb");
  check_magic(file_, path);
}

TraceWorkload::~TraceWorkload() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TraceWorkload::next(Op& op) {
  if (file_ == nullptr) return false;
  Record r;
  const std::size_t got = std::fread(&r, 1, sizeof r, file_);
  if (got == 0) return false;  // clean end of trace
  if (got != sizeof r) {
    throw ConfigError("truncated trace record in '" + path_ + "'");
  }
  op = decode(r, path_);
  return true;
}

TracingWorkload::TracingWorkload(WorkloadPtr inner, const std::string& path)
    : inner_(std::move(inner)) {
  if (!inner_) throw ConfigError("TracingWorkload: null inner workload");
  file_ = open_checked(path, "wb");
  write_magic(file_, path);
}

TracingWorkload::~TracingWorkload() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TracingWorkload::next(Op& op) {
  if (!inner_->next(op)) {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    return false;
  }
  if (file_ != nullptr) {
    const Record r = encode(op);
    if (std::fwrite(&r, sizeof r, 1, file_) != 1) {
      throw ConfigError("short write while tracing");
    }
    ++recorded_;
  }
  return true;
}

void TraceWorkload::serialize(ckpt::Serializer& s) {
  std::int64_t offset = 0;
  if (s.packing()) {
    offset = file_ != nullptr ? std::ftell(file_) : -1;
  }
  s & offset;
  if (!s.packing() && file_ != nullptr && offset >= 0) {
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      throw ckpt::CheckpointError("cannot seek trace file '" + path_ +
                                  "' to checkpointed offset");
    }
  }
}

void TracingWorkload::serialize(ckpt::Serializer& s) {
  inner_->serialize(s);
  s & recorded_;
}

}  // namespace sst::proc
