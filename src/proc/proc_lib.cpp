#include "proc/proc_lib.h"

#include "core/factory.h"

namespace sst::proc {

void register_library() {
  static const bool once = [] {
    Factory::instance().register_component(
        "proc.Core",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          Core* core = sim.add_component<Core>(name, p);
          core->set_workload(make_workload(p));
          return core;
        });
    return true;
  }();
  (void)once;
}

}  // namespace sst::proc
