#include "proc/proc_lib.h"

#include "core/factory.h"

namespace sst::proc {

void register_library() {
  static const bool once = [] {
    Factory::instance().register_component(
        "proc.Core",
        [](Simulation& sim, const std::string& name, Params& p) -> Component* {
          Core* core = sim.add_component<Core>(name, p);
          core->set_workload(make_workload(p));
          return core;
        });
    Factory::instance().describe_params("proc.Core", {
        {"clock", "core clock (period or frequency)", "2GHz"},
        {"issue_width", "instructions issued per cycle", "2"},
        {"max_loads", "load-queue entries", "8"},
        {"max_stores", "store-queue entries", "8"},
        {"line_split", "memory-access split granularity in bytes", "64"},
        {"virt", "emit virtual addresses for a downstream vm.Tlb", "false"},
        {"asid", "address-space id stamped on memory requests", "0"},
        {"workload",
         "kernel: stream | hpccg | lulesh | minimd | gups | chase", "stream"},
        {"iterations", "workload outer iterations", "workload-specific"},
        {"nx", "workload grid extent x (hpccg/lulesh)", "workload-specific"},
        {"ny", "workload grid extent y (hpccg/lulesh)", "workload-specific"},
        {"nz", "workload grid extent z (hpccg/lulesh)", "workload-specific"},
        {"n", "working-set elements (stream/chase)", "workload-specific"},
        {"atoms", "minimd atom count", "workload-specific"},
        {"elements", "lulesh element count", "workload-specific"},
        {"updates", "gups update count", "workload-specific"},
        {"table", "gups table size", "workload-specific"},
        {"hops", "chase pointer hops", "workload-specific"},
        {"seed", "workload-private RNG seed", "config seed"},
        {"trace_file", "address-trace input (trace workload)", ""},
    });
    return true;
  }();
  (void)once;
}

}  // namespace sst::proc
