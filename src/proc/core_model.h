// Abstract sequential-issue core model (SST "genericProc" class).
//
// The model consumes a Workload op stream, issuing up to `issue_width`
// ops per clock with three structural limits:
//   * bounded outstanding loads (memory-level parallelism),
//   * bounded outstanding stores (write buffer),
//   * `depends_on_loads` ops wait for all outstanding loads (address
//     dependence: pointer chasing / gather chains).
// Loads and stores go out the "mem" port as MemEvents (split at cache-line
// boundaries); everything else costs only issue slots.  This is exactly
// the fidelity the design-space studies need: performance responds to
// issue width, cache behaviour, memory latency, and memory bandwidth.
//
// The core sleeps (unregisters its clock) whenever a cycle makes no
// progress and work is blocked on memory, and wakes on the next response —
// simulated time is unaffected, wall-clock time drops sharply for
// memory-bound codes.
//
// Ports:
//   "mem" — to the first cache level (or directly to a controller)
//
// Params:
//   clock        core frequency                  (default "2GHz")
//   issue_width  ops issued per cycle            (default 2)
//   max_loads    outstanding load limit          (default 8)
//   max_stores   outstanding store limit         (default 8)
//   line_split   split memory ops at this stride (default 64)
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/component.h"
#include "mem/mem_event.h"
#include "proc/workload.h"

namespace sst::proc {

class Core final : public Component {
 public:
  explicit Core(Params& params);

  /// Attaches the op stream.  Must be called before the simulation runs.
  void set_workload(WorkloadPtr workload);

  void setup() override;
  void finish() override;

  [[nodiscard]] bool done() const { return completed_; }
  /// Simulated completion time (valid once done()).
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint64_t instructions() const {
    return instructions_->count();
  }
  [[nodiscard]] SimTime clock_period() const { return period_; }
  [[nodiscard]] unsigned issue_width() const { return issue_width_; }
  /// True when memory requests carry virtual addresses for a vm.Tlb.
  [[nodiscard]] bool virtual_addressing() const { return virt_; }
  [[nodiscard]] std::uint32_t asid() const { return asid_; }

  void serialize_state(ckpt::Serializer& s) override;

 private:
  bool tick(Cycle cycle);
  void handle_mem(EventPtr ev);
  void activate_clock();
  /// Attempts to issue `op`; returns false when structurally blocked.
  bool try_issue(const Op& op);
  void send_mem(mem::MemCmd cmd, Addr addr, std::uint32_t size);
  void complete_if_drained();

  Link* mem_link_;
  WorkloadPtr workload_;

  SimTime period_;
  unsigned issue_width_;
  unsigned max_loads_;
  unsigned max_stores_;
  std::uint32_t line_split_;
  bool virt_;
  std::uint32_t asid_;

  std::optional<Op> pending_;
  bool stream_done_ = false;
  bool completed_ = false;
  bool clock_active_ = false;
  SimTime completion_time_ = 0;

  unsigned outstanding_loads_ = 0;
  unsigned outstanding_stores_ = 0;
  std::uint64_t next_req_id_ = 1;
  std::map<std::uint64_t, bool> in_flight_;  // req_id -> is_load

  Counter* instructions_;
  Counter* flops_;
  Counter* loads_;
  Counter* stores_;
  Counter* mem_bytes_;
  Counter* busy_cycles_;
  Counter* stall_cycles_;
  Counter* sleeps_;
  Accumulator* load_latency_;
  std::map<std::uint64_t, SimTime> issue_time_;
};

}  // namespace sst::proc
