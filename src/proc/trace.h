// Trace recording and replay for workloads.
//
// SST's processor front-ends are frequently trace-driven: capture an
// instruction/memory-op stream once, replay it against many machine
// configurations.  This module provides that workflow for the abstract
// op streams used here:
//
//   * write_trace()   — drain any Workload into a compact binary file
//   * TraceWorkload   — replay a trace file as a Workload
//   * TracingWorkload — tee: pass a live workload through while recording
//
// File format: 8-byte magic "SSTTRC01", then little-endian records of
// 16 bytes each: {u8 type, u8 flags, u16 pad, u32 size, u64 addr}.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/types.h"
#include "proc/workload.h"

namespace sst::proc {

inline constexpr char kTraceMagic[8] = {'S', 'S', 'T', 'T',
                                        'R', 'C', '0', '1'};

/// Drains `w` into a trace file.  Returns the number of ops written.
/// Throws ConfigError when the file cannot be created.
std::uint64_t write_trace(Workload& w, const std::string& path,
                          std::uint64_t max_ops = ~0ULL);

/// Replays a trace file.
class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(const std::string& path);
  ~TraceWorkload() override;

  bool next(Op& op) override;
  [[nodiscard]] const std::string& name() const override { return name_; }

  /// (Un)packs the replay cursor as a file offset.
  void serialize(ckpt::Serializer& s) override;

 private:
  std::string name_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Wraps a workload, recording every op it produces.  The trace file is
/// finalized when the stream ends or the wrapper is destroyed.
class TracingWorkload final : public Workload {
 public:
  TracingWorkload(WorkloadPtr inner, const std::string& path);
  ~TracingWorkload() override;

  bool next(Op& op) override;
  [[nodiscard]] const std::string& name() const override {
    return inner_->name();
  }
  [[nodiscard]] std::uint64_t total_flops() const override {
    return inner_->total_flops();
  }
  [[nodiscard]] std::uint64_t ops_recorded() const { return recorded_; }

  /// Restores the wrapped workload's cursor.  The recording itself is not
  /// resumed: a restarted run records only post-restart ops.
  void serialize(ckpt::Serializer& s) override;

 private:
  WorkloadPtr inner_;
  std::FILE* file_ = nullptr;
  std::uint64_t recorded_ = 0;
};

}  // namespace sst::proc
