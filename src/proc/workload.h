// Workload: lazy instruction-stream generators that drive the abstract
// core model.
//
// These are the mini-application proxies of the design-space studies: each
// generator reproduces the *performance signature* of its parent kernel —
// arithmetic intensity, working-set size, and memory-access pattern — as a
// stream of abstract operations.  No numerical results are produced; the
// streams exist to exercise the simulated machine exactly the way the real
// kernel's instruction mix would.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/types.h"

namespace sst::ckpt {
class Serializer;
}

namespace sst::proc {

using Addr = std::uint64_t;

enum class OpType : std::uint8_t {
  kFlop,    // pipelined floating-point operation
  kIntOp,   // integer/address computation
  kLoad,    // memory read
  kStore,   // memory write
  kBranch,  // control flow (consumes an issue slot)
};

struct Op {
  OpType type = OpType::kIntOp;
  Addr addr = 0;           // loads/stores only
  std::uint32_t size = 8;  // bytes, loads/stores only
  // When true this op must wait for every outstanding load to complete
  // before it can issue (models address dependence: pointer chasing,
  // indexed gather).
  bool depends_on_loads = false;

  void ckpt_io(ckpt::Serializer& s);
};

/// Pull-based op stream.  Implementations must be deterministic for a
/// fixed construction (seeded RNG only).
class Workload {
 public:
  virtual ~Workload() = default;

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Produces the next operation.  Returns false at end of program.
  virtual bool next(Op& op) = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Nominal floating-point operations in the whole stream (for GFLOP/s
  /// style reporting); 0 when not meaningful.
  [[nodiscard]] virtual std::uint64_t total_flops() const { return 0; }

  /// Checkpoint hook: (un)packs stream progress.  Workloads are rebuilt
  /// from config on restore, so only dynamic cursor state goes here.
  virtual void serialize(ckpt::Serializer& s) { (void)s; }

 protected:
  Workload() = default;
};

using WorkloadPtr = std::unique_ptr<Workload>;

}  // namespace sst::proc
