#include "proc/kernels.h"

#include <algorithm>

#include "ckpt/serializer.h"

namespace sst::proc {

namespace {
// Distinct non-overlapping virtual address regions for kernel arrays.
// Regions are staggered by 24 KiB so that parallel streams do not land on
// identical DRAM bank indices (power-of-two region spacing alone would
// alias every stream into one bank — a pathology real allocators avoid).
constexpr Addr kRegion = 1ULL << 32;
constexpr Addr region(unsigned i) { return (i + 1) * kRegion + i * 24576; }
}  // namespace

bool BufferedWorkload::next(Op& op) {
  while (pos_ >= buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
    if (!refill()) return false;
  }
  op = buffer_[pos_++];
  return true;
}

// ---------------------------------------------------------------------
// StreamTriad
// ---------------------------------------------------------------------

StreamTriad::StreamTriad(std::uint64_t elements, unsigned iterations)
    : elements_(elements),
      iterations_(iterations),
      a_base_(region(0)),
      b_base_(region(1)),
      c_base_(region(2)) {
  if (elements == 0 || iterations == 0) {
    throw ConfigError("StreamTriad: elements and iterations must be >= 1");
  }
}

bool StreamTriad::refill() {
  if (iter_ >= iterations_) return false;
  // One element per unit: a[i] = b[i] + s * c[i]
  const Addr off = i_ * 8;
  emit_load(b_base_ + off);
  emit_load(c_base_ + off);
  emit_flops(2);  // multiply + add
  emit_store(a_base_ + off);
  emit_branch();  // loop back-edge
  if (++i_ >= elements_) {
    i_ = 0;
    ++iter_;
  }
  return true;
}

// ---------------------------------------------------------------------
// Hpccg
// ---------------------------------------------------------------------

Hpccg::Hpccg(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz,
             unsigned iterations)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      iterations_(iterations),
      rows_(static_cast<std::uint64_t>(nx) * ny * nz),
      matval_base_(region(0)),
      colidx_base_(region(1)),
      x_base_(region(2)),
      y_base_(region(3)),
      r_base_(region(4)),
      p_base_(region(5)) {
  if (rows_ == 0 || iterations == 0) {
    throw ConfigError("Hpccg: grid and iterations must be non-empty");
  }
}

std::uint64_t Hpccg::total_flops() const {
  // SpMV: 2 flops per nonzero (27 per row); dot: 2 per element;
  // two axpys: 2 per element each.
  return iterations_ * rows_ * (27 * 2 + 2 + 2 + 2);
}

void Hpccg::emit_spmv_row(std::uint64_t row) {
  // 27-point banded structure: neighbours at +/-1, +/-nx, +/-nx*ny and
  // combinations.  Matrix values and column indices stream sequentially
  // with SSE-width (16 B) vector loads, as the compiled kernel does; the
  // x-vector gather is scalar and lands near x[row] (banded locality).
  const std::int64_t n = static_cast<std::int64_t>(rows_);
  const Addr val_off = row * 27 * 8;
  const Addr idx_off = row * 27 * 4;
  for (unsigned b = 0; b < (27 * 8 + 15) / 16; ++b) {
    emit_load(matval_base_ + val_off + b * 16, 16);  // A.values, 2 at a time
  }
  for (unsigned b = 0; b < (27 * 4 + 15) / 16; ++b) {
    emit_load(colidx_base_ + idx_off + b * 16, 16);  // A.colidx, 4 at a time
  }
  unsigned k = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx, ++k) {
        std::int64_t col = static_cast<std::int64_t>(row) + dx +
                           static_cast<std::int64_t>(dy) * nx_ +
                           static_cast<std::int64_t>(dz) * nx_ * ny_;
        col = std::clamp<std::int64_t>(col, 0, n - 1);
        emit_load(x_base_ + static_cast<Addr>(col) * 8);  // x[col]
        emit_flops(2);  // fused mul-add
      }
    }
  }
  emit_intops(7);  // vectorized index arithmetic
  emit_store(y_base_ + row * 8);
  emit_branch();
}

void Hpccg::emit_vector_elem(std::uint64_t i, unsigned phase) {
  // SSE-width vector phases: one 16 B access covers two elements.
  const Addr off = i * 8;
  switch (phase) {
    case 1:  // dot(r, r)
      emit_load(r_base_ + off, 16);
      emit_flops(4);
      break;
    case 2:  // p = r + beta * p
      emit_load(r_base_ + off, 16);
      emit_load(p_base_ + off, 16);
      emit_flops(4);
      emit_store(p_base_ + off, 16);
      break;
    case 3:  // x = x + alpha * p
      emit_load(x_base_ + off, 16);
      emit_load(p_base_ + off, 16);
      emit_flops(4);
      emit_store(x_base_ + off, 16);
      break;
    default:
      throw SimulationError("Hpccg: bad vector phase");
  }
  emit_branch();
}

bool Hpccg::refill() {
  if (iter_ >= iterations_) return false;
  if (phase_ == 0) {
    emit_spmv_row(index_);
    ++index_;
  } else {
    emit_vector_elem(index_, phase_);
    index_ += 2;  // vectorized: two elements per unit
  }
  if (index_ >= rows_) {
    index_ = 0;
    if (++phase_ > 3) {
      phase_ = 0;
      ++iter_;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Lulesh
// ---------------------------------------------------------------------

Lulesh::Lulesh(std::uint32_t n, unsigned iterations)
    : n_(n),
      iterations_(iterations),
      zones_(static_cast<std::uint64_t>(n) * n * n),
      node_base_(region(0)),
      zone_base_(region(1)) {
  if (n == 0 || iterations == 0) {
    throw ConfigError("Lulesh: n and iterations must be >= 1");
  }
  // Zone-centred field arrays (energy, pressure, volume, q, sound speed,
  // ...): the hydro update streams many per-zone fields besides the node
  // gather, which is what makes the real code ~0.5 flops/byte.
  for (unsigned f = 0; f < kZoneReadFields; ++f) {
    read_fields_[f] = region(2 + f);
  }
  for (unsigned f = 0; f < kZoneWriteFields; ++f) {
    write_fields_[f] = region(2 + kZoneReadFields + f);
  }
}

std::uint64_t Lulesh::total_flops() const {
  return static_cast<std::uint64_t>(iterations_) * zones_ * kFlopsPerZone;
}

bool Lulesh::refill() {
  if (iter_ >= iterations_) return false;
  // Zone (i,j,k) gathers its 8 corner nodes from the (n+1)^3 node mesh.
  const std::uint64_t z = zone_;
  const std::uint64_t i = z % n_;
  const std::uint64_t j = (z / n_) % n_;
  const std::uint64_t k = z / (static_cast<std::uint64_t>(n_) * n_);
  const std::uint64_t np = n_ + 1;  // nodes per edge
  for (unsigned c = 0; c < 8; ++c) {
    const std::uint64_t ni = i + (c & 1);
    const std::uint64_t nj = j + ((c >> 1) & 1);
    const std::uint64_t nk = k + ((c >> 2) & 1);
    const std::uint64_t node = (nk * np + nj) * np + ni;
    // x, y, z coordinates of the node (24 contiguous bytes).
    emit_load(node_base_ + node * 24, 24);
  }
  // Zone-centred state read for the update: a handful of wide field
  // bundles (energy/pressure/volume/q packed per zone), matching how the
  // real code's many arrays coalesce into a few resident streams.
  for (unsigned f = 0; f < kZoneReadFields; ++f) {
    emit_load(read_fields_[f] + z * 32, 32);
  }
  emit_intops(8);               // gather index arithmetic
  emit_flops(kFlopsPerZone);    // volume / gradients / EOS update
  // Zone-centred results written back as wide bundles.
  for (unsigned f = 0; f < kZoneWriteFields; ++f) {
    emit_store(write_fields_[f] + z * 32, 32);
  }
  emit_branch();
  if (++zone_ >= zones_) {
    zone_ = 0;
    ++iter_;
  }
  return true;
}

// ---------------------------------------------------------------------
// MiniMd
// ---------------------------------------------------------------------

MiniMd::MiniMd(std::uint64_t atoms, std::uint32_t neighbors,
               unsigned iterations, std::uint64_t seed)
    : atoms_(atoms),
      neighbors_(neighbors),
      iterations_(iterations),
      rng_(seed),
      pos_base_(region(0)),
      neigh_base_(region(1)),
      force_base_(region(2)) {
  if (atoms == 0 || neighbors == 0 || iterations == 0) {
    throw ConfigError("MiniMd: atoms, neighbors, iterations must be >= 1");
  }
}

std::uint64_t MiniMd::total_flops() const {
  return static_cast<std::uint64_t>(iterations_) * atoms_ * neighbors_ *
         kFlopsPerPair;
}

bool MiniMd::refill() {
  if (iter_ >= iterations_) return false;
  const std::uint64_t i = atom_;
  // Own position (x, y, z).
  emit_load(pos_base_ + i * 24, 24);
  // Neighbor list streams sequentially (4 B indices, SSE-width loads).
  const Addr nl_off = i * neighbors_ * 4;
  for (std::uint32_t b = 0; b < (neighbors_ * 4 + 15) / 16; ++b) {
    emit_load(neigh_base_ + nl_off + b * 16, 16);
  }
  // Gather neighbor positions: spatially sorted atoms keep neighbors
  // within a local window, so gathers are irregular but cache-friendly.
  const std::uint64_t window = std::min<std::uint64_t>(atoms_, 512);
  for (std::uint32_t k = 0; k < neighbors_; ++k) {
    const std::uint64_t off = rng_.next_bounded(window);
    const std::uint64_t j = (i + off + 1) % atoms_;
    emit_load(pos_base_ + j * 24, 24);
    emit_flops(kFlopsPerPair);  // dx/dy/dz, r^2, LJ terms, accumulate
  }
  emit_intops(4);
  // Force accumulation for atom i.
  emit_store(force_base_ + i * 24, 24);
  emit_branch();
  if (++atom_ >= atoms_) {
    atom_ = 0;
    ++iter_;
  }
  return true;
}

// ---------------------------------------------------------------------
// Gups
// ---------------------------------------------------------------------

Gups::Gups(std::uint64_t table_bytes, std::uint64_t updates,
           std::uint64_t seed)
    : table_bytes_(table_bytes),
      updates_(updates),
      rng_(seed),
      table_base_(region(0)) {
  if (table_bytes < 64 || updates == 0) {
    throw ConfigError("Gups: table must be >= 64 bytes, updates >= 1");
  }
}

bool Gups::refill() {
  if (done_ >= updates_) return false;
  const std::uint64_t slots = table_bytes_ / 8;
  const Addr a = table_base_ + rng_.next_bounded(slots) * 8;
  emit_intops(2);  // index generation
  emit_load(a);
  // The xor/store pair depends only on its own load; updates from
  // different iterations are independent, so GUPS exposes memory-level
  // parallelism (a whole-pipeline dependency flag would serialize the
  // kernel, which is PointerChase's job, not GUPS's).
  emit_intops(1);
  emit_store(a);
  ++done_;
  return true;
}

// ---------------------------------------------------------------------
// PointerChase
// ---------------------------------------------------------------------

PointerChase::PointerChase(std::uint64_t table_bytes, std::uint64_t hops,
                           std::uint64_t seed)
    : table_bytes_(table_bytes),
      hops_(hops),
      cursor_(seed),
      table_base_(region(0)) {
  if (table_bytes < 64 || hops == 0) {
    throw ConfigError("PointerChase: table must be >= 64 bytes, hops >= 1");
  }
}

bool PointerChase::refill() {
  if (done_ >= hops_) return false;
  // Next pointer is a hash of the cursor — deterministic, cache-hostile,
  // and unknowable before the previous load completes.
  rng::SplitMix64 h(cursor_);
  cursor_ = h.next();
  const std::uint64_t lines = table_bytes_ / 64;
  const Addr a = table_base_ + (cursor_ % lines) * 64;
  emit_load(a, 8, /*dep=*/true);
  emit_intops(1);
  ++done_;
  return true;
}

// ---------------------------------------------------------------------
// Checkpoint hooks
// ---------------------------------------------------------------------

void Op::ckpt_io(ckpt::Serializer& s) {
  s & type & addr & size & depends_on_loads;
}

void BufferedWorkload::serialize(ckpt::Serializer& s) {
  s & buffer_ & pos_;
}

void StreamTriad::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & i_ & iter_;
}

void Hpccg::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & iter_ & phase_ & index_;
}

void Lulesh::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & iter_ & zone_;
}

void MiniMd::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & atom_ & iter_ & rng_;
}

void Gups::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & done_ & rng_;
}

void PointerChase::serialize(ckpt::Serializer& s) {
  BufferedWorkload::serialize(s);
  s & done_ & cursor_;
}

}  // namespace sst::proc
