// Builds Workload instances from string parameters, so processor cores can
// be fully configured through the SDL layer.
//
// Recognized "workload" values and their parameters (all optional):
//   stream : elements (1M),  iterations (1)
//   hpccg  : nx, ny, nz (16 each), iterations (1)
//   lulesh : n (12), iterations (1)
//   minimd : atoms (4096), neighbors (40), iterations (1), seed (13)
//   gups   : table ("16MiB"), updates (100000), seed (7)
//   chase  : table ("16MiB"), hops (50000), seed (11)
#pragma once

#include "core/params.h"
#include "proc/workload.h"

namespace sst::proc {

/// Creates a workload from `params` ("workload" selects the kernel).
/// Throws ConfigError on unknown kernels or bad parameters.
[[nodiscard]] WorkloadPtr make_workload(const Params& params);

/// Creates a workload by name with default parameters.
[[nodiscard]] WorkloadPtr make_workload(std::string_view kernel);

}  // namespace sst::proc
