#include "proc/workload_factory.h"

#include "proc/kernels.h"
#include "proc/trace.h"

namespace sst::proc {

WorkloadPtr make_workload(const Params& params) {
  const std::string kernel = params.find("workload", "stream");
  const unsigned iterations = params.find<std::uint32_t>("iterations", 1);
  if (kernel == "stream") {
    const auto elements = params.find<std::uint64_t>("elements", 1u << 20);
    return std::make_unique<StreamTriad>(elements, iterations);
  }
  if (kernel == "hpccg") {
    const auto nx = params.find<std::uint32_t>("nx", 16);
    const auto ny = params.find<std::uint32_t>("ny", 16);
    const auto nz = params.find<std::uint32_t>("nz", 16);
    return std::make_unique<Hpccg>(nx, ny, nz, iterations);
  }
  if (kernel == "lulesh") {
    const auto n = params.find<std::uint32_t>("n", 12);
    return std::make_unique<Lulesh>(n, iterations);
  }
  if (kernel == "minimd") {
    const auto atoms = params.find<std::uint64_t>("atoms", 4096);
    const auto neighbors = params.find<std::uint32_t>("neighbors", 40);
    const auto seed = params.find<std::uint64_t>("seed", 13);
    return std::make_unique<MiniMd>(atoms, neighbors, iterations, seed);
  }
  if (kernel == "gups") {
    const auto table =
        params.find<UnitAlgebra>("table", UnitAlgebra("16MiB")).to_bytes();
    const auto updates = params.find<std::uint64_t>("updates", 100'000);
    const auto seed = params.find<std::uint64_t>("seed", 7);
    return std::make_unique<Gups>(table, updates, seed);
  }
  if (kernel == "trace") {
    const auto path = params.required<std::string>("trace_file");
    return std::make_unique<TraceWorkload>(path);
  }
  if (kernel == "chase") {
    const auto table =
        params.find<UnitAlgebra>("table", UnitAlgebra("16MiB")).to_bytes();
    const auto hops = params.find<std::uint64_t>("hops", 50'000);
    const auto seed = params.find<std::uint64_t>("seed", 11);
    return std::make_unique<PointerChase>(table, hops, seed);
  }
  throw ConfigError("unknown workload kernel '" + kernel +
                    "' (known: stream, hpccg, lulesh, minimd, gups, chase)");
}

WorkloadPtr make_workload(std::string_view kernel) {
  Params p;
  p.set("workload", std::string(kernel));
  return make_workload(p);
}

}  // namespace sst::proc
