// HotspotNode: a PHOLD variant with a drifting spatial hotspot, built to
// exercise the online rebalancer.
//
// Nodes form a 2-D torus (port0/1 in x, port2/3 in y, wired exactly like
// the plain PHOLD benchmark).  Tokens bounce around the torus forever;
// each forward is biased toward the current *hot center*, a torus
// coordinate every node derives from simulated time alone (a raster scan
// advancing every `drift_period`).  Nodes within `hot_span` (torus
// Chebyshev distance) of the center service each arriving token with
// `service_hops` self-link bounces before forwarding it; nodes outside
// forward immediately.  The result is an event load concentrated on a
// small drifting neighborhood: any static partition is wrong most of the
// time, which is precisely the workload online repartitioning fixes.
//
// Determinism: every decision uses the component's own RNG stream and
// the delivery time of the event being handled, so behavior is
// byte-identical at any rank count, with or without rebalancing.
//
// Params:
//   x, y                 this node's torus coordinate        (default 0, 0)
//   size_x, size_y       torus extents                       (default 8, 8)
//   min_delay            forwarding delay quantum            (default 20ns)
//   self_delay           per-service-hop self-link latency   (default 5ns)
//   service_hops         self-bounces per token in the zone  (default 8)
//   hot_span             hot-zone radius (Chebyshev)         (default 1)
//   bias_pct             % of forwards aimed at the center   (default 75)
//   drift_period         time between hot-center steps       (default 200us)
//   initial_tokens       tokens this node emits in setup()   (default 2)
#pragma once

#include <array>
#include <cstdint>

#include "core/component.h"

namespace sst::net {

/// The token bounced between HotspotNodes.  `service` counts the
/// self-link bounces done for the current hot-zone visit.
class HotspotTokenEvent final : public Event {
 public:
  explicit HotspotTokenEvent(std::uint32_t service = 0) : service_(service) {}

  [[nodiscard]] std::uint32_t service() const { return service_; }
  void set_service(std::uint32_t s) { service_ = s; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<HotspotTokenEvent>(service_);
  }
  [[nodiscard]] const char* ckpt_type() const override {
    return "net.HotspotToken";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint32_t service_ = 0;
};

class HotspotNode final : public Component {
 public:
  explicit HotspotNode(Params& params);

  void setup() override;
  void serialize_state(ckpt::Serializer& s) override;

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  void on_token(EventPtr ev);
  void on_service(EventPtr ev);
  void forward(EventPtr ev);
  /// Hot-center torus coordinate at the current simulated time.
  void hot_center(std::uint32_t& cx, std::uint32_t& cy) const;
  [[nodiscard]] bool in_hot_zone() const;

  std::array<Link*, 4> out_{};  // +x, -x, +y, -y
  Link* self_ = nullptr;

  std::uint32_t x_;
  std::uint32_t y_;
  std::uint32_t size_x_;
  std::uint32_t size_y_;
  SimTime min_delay_;
  SimTime self_delay_;
  std::uint32_t service_hops_;
  std::uint32_t hot_span_;
  std::uint32_t bias_pct_;
  SimTime drift_period_;
  std::uint32_t initial_tokens_;

  std::uint64_t received_ = 0;
  std::uint64_t forwarded_ = 0;
  Counter* received_stat_;
  Counter* forwarded_stat_;
};

}  // namespace sst::net
