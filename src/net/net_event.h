// Network events: packets on router links.
//
// Messages are segmented into MTU-sized packets at the sending endpoint
// and reassembled at the receiver; routers never see messages, only
// packets.
#pragma once

#include <cstdint>
#include <memory>

#include "core/event.h"
#include "core/types.h"

namespace sst::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~0U;

class PacketEvent final : public Event {
 public:
  /// Data packets carry message payload; ACK packets are the tiny control
  /// messages of the endpoint retry protocol.
  enum class Kind : std::uint8_t { kData, kAck };

  PacketEvent(NodeId src, NodeId dst, std::uint32_t bytes,
              std::uint64_t msg_id, std::uint64_t msg_bytes, bool is_tail,
              std::uint64_t tag, SimTime msg_start)
      : src_(src),
        dst_(dst),
        bytes_(bytes),
        msg_id_(msg_id),
        msg_bytes_(msg_bytes),
        is_tail_(is_tail),
        tag_(tag),
        msg_start_(msg_start) {}

  [[nodiscard]] NodeId src() const { return src_; }
  [[nodiscard]] NodeId dst() const { return dst_; }
  /// Payload bytes carried by this packet.
  [[nodiscard]] std::uint32_t bytes() const { return bytes_; }
  /// Message this packet belongs to (unique per source).
  [[nodiscard]] std::uint64_t msg_id() const { return msg_id_; }
  /// Total bytes of the parent message.
  [[nodiscard]] std::uint64_t msg_bytes() const { return msg_bytes_; }
  [[nodiscard]] bool is_tail() const { return is_tail_; }
  /// Application tag (motif iteration/phase, pattern id, ...).
  [[nodiscard]] std::uint64_t tag() const { return tag_; }
  /// Time the parent message entered the sender's injection queue.
  [[nodiscard]] SimTime msg_start() const { return msg_start_; }

  [[nodiscard]] std::uint32_t hops() const { return hops_; }
  void add_hop() { ++hops_; }

  /// Valiant routing: intermediate node this packet must pass through
  /// first (kInvalidNode = route directly to dst).  Cleared by the router
  /// serving the intermediate's node.
  [[nodiscard]] NodeId via() const { return via_; }
  void set_via(NodeId v) { via_ = v; }
  void clear_via() { via_ = kInvalidNode; }

  [[nodiscard]] Kind kind() const { return kind_; }
  void set_kind(Kind k) { kind_ = k; }

  /// 0-based index of this packet within its message; receivers use it to
  /// discard duplicates injected by fault models or retransmissions.
  [[nodiscard]] std::uint32_t pkt_seq() const { return pkt_seq_; }
  void set_pkt_seq(std::uint32_t s) { pkt_seq_ = s; }

  [[nodiscard]] EventPtr clone() const override {
    auto copy = std::make_unique<PacketEvent>(src_, dst_, bytes_, msg_id_,
                                              msg_bytes_, is_tail_, tag_,
                                              msg_start_);
    copy->via_ = via_;
    copy->hops_ = hops_;
    copy->kind_ = kind_;
    copy->pkt_seq_ = pkt_seq_;
    return copy;
  }

  [[nodiscard]] const char* ckpt_type() const override {
    return "net.Packet";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  NodeId src_;
  NodeId dst_;
  NodeId via_ = kInvalidNode;
  std::uint32_t bytes_;
  std::uint64_t msg_id_;
  std::uint64_t msg_bytes_;
  bool is_tail_;
  std::uint64_t tag_;
  SimTime msg_start_;
  std::uint32_t hops_ = 0;
  std::uint32_t pkt_seq_ = 0;
  Kind kind_ = Kind::kData;
};

/// Timed router port failure / repair, delivered through the router's
/// internal fault self-link (see Router::schedule_port_fail/heal).
class PortFaultEvent final : public Event {
 public:
  PortFaultEvent(std::uint32_t port, bool fail) : port_(port), fail_(fail) {}

  [[nodiscard]] std::uint32_t port() const { return port_; }
  /// true = the port goes down, false = it comes back up.
  [[nodiscard]] bool fail() const { return fail_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<PortFaultEvent>(port_, fail_);
  }

  [[nodiscard]] const char* ckpt_type() const override {
    return "net.PortFault";
  }
  void ckpt_fields(ckpt::Serializer& s) override;

 private:
  std::uint32_t port_;
  bool fail_;
};

}  // namespace sst::net
