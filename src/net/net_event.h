// Network events: packets on router links.
//
// Messages are segmented into MTU-sized packets at the sending endpoint
// and reassembled at the receiver; routers never see messages, only
// packets.
#pragma once

#include <cstdint>

#include "core/event.h"
#include "core/types.h"

namespace sst::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~0U;

class PacketEvent final : public Event {
 public:
  PacketEvent(NodeId src, NodeId dst, std::uint32_t bytes,
              std::uint64_t msg_id, std::uint64_t msg_bytes, bool is_tail,
              std::uint64_t tag, SimTime msg_start)
      : src_(src),
        dst_(dst),
        bytes_(bytes),
        msg_id_(msg_id),
        msg_bytes_(msg_bytes),
        is_tail_(is_tail),
        tag_(tag),
        msg_start_(msg_start) {}

  [[nodiscard]] NodeId src() const { return src_; }
  [[nodiscard]] NodeId dst() const { return dst_; }
  /// Payload bytes carried by this packet.
  [[nodiscard]] std::uint32_t bytes() const { return bytes_; }
  /// Message this packet belongs to (unique per source).
  [[nodiscard]] std::uint64_t msg_id() const { return msg_id_; }
  /// Total bytes of the parent message.
  [[nodiscard]] std::uint64_t msg_bytes() const { return msg_bytes_; }
  [[nodiscard]] bool is_tail() const { return is_tail_; }
  /// Application tag (motif iteration/phase, pattern id, ...).
  [[nodiscard]] std::uint64_t tag() const { return tag_; }
  /// Time the parent message entered the sender's injection queue.
  [[nodiscard]] SimTime msg_start() const { return msg_start_; }

  [[nodiscard]] std::uint32_t hops() const { return hops_; }
  void add_hop() { ++hops_; }

  /// Valiant routing: intermediate node this packet must pass through
  /// first (kInvalidNode = route directly to dst).  Cleared by the router
  /// serving the intermediate's node.
  [[nodiscard]] NodeId via() const { return via_; }
  void set_via(NodeId v) { via_ = v; }
  void clear_via() { via_ = kInvalidNode; }

 private:
  NodeId src_;
  NodeId dst_;
  NodeId via_ = kInvalidNode;
  std::uint32_t bytes_;
  std::uint64_t msg_id_;
  std::uint64_t msg_bytes_;
  bool is_tail_;
  std::uint64_t tag_;
  SimTime msg_start_;
  std::uint32_t hops_ = 0;
};

}  // namespace sst::net
