// NetEndpoint: base class for network endpoints (compute nodes).
//
// Provides the NIC layer: message segmentation into MTU-sized packets,
// injection-bandwidth throttling (the knob of the bandwidth-degradation
// study), and receive-side reassembly.  Subclasses implement on_message()
// and drive traffic with send_message().
//
// Reassembly tracks per-packet sequence numbers, so duplicated packets
// (fault models, retransmissions) are discarded rather than corrupting
// byte counts.  With `ack` enabled the endpoint runs a reliable-delivery
// protocol: receivers acknowledge completed messages, senders retransmit
// on timeout with exponential backoff, and a message that exhausts its
// retries is recorded in the "delivery_failed" counter (plus the
// on_delivery_failed() hook) instead of crashing the run.
//
// Ports:
//   "net" — to the attached router
//
// Params:
//   injection_bw   NIC injection bandwidth            (default "3.2GB/s")
//   mtu            packet payload size                (default "2KiB")
//   ack            enable ACK/timeout retry protocol  (default false)
//   retry_max      retransmissions before giving up   (default 4;
//                  0 = detect and count loss, never retransmit)
//   retry_timeout  first retransmit timeout           (default "500us")
//   retry_backoff  timeout multiplier per attempt     (default 2.0)
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/component.h"
#include "net/net_event.h"

namespace sst::net {

class NetEndpoint : public Component {
 public:
  [[nodiscard]] NodeId node_id() const { return node_id_; }
  /// Assigned by the TopologyBuilder (in endpoint order).
  void set_node_id(NodeId id) { node_id_ = id; }
  /// Total endpoints in the network; set by the TopologyBuilder.
  void set_num_nodes(std::uint32_t n) { num_nodes_ = n; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }

  /// Valiant routing: when enabled (by the TopologyBuilder), every
  /// message is bounced through a uniformly random intermediate node,
  /// trading doubled average path length for immunity to adversarial
  /// traffic patterns.
  void set_valiant(bool enabled) { valiant_ = enabled; }
  [[nodiscard]] bool valiant() const { return valiant_; }

  [[nodiscard]] std::uint64_t messages_sent() const {
    return msgs_sent_->count();
  }
  [[nodiscard]] std::uint64_t messages_received() const {
    return msgs_recv_->count();
  }
  [[nodiscard]] std::uint64_t retries() const { return retries_->count(); }
  [[nodiscard]] std::uint64_t delivery_failures() const {
    return delivery_failed_->count();
  }
  [[nodiscard]] bool ack_enabled() const { return ack_; }

  void serialize_state(ckpt::Serializer& s) override;

 protected:
  explicit NetEndpoint(Params& params);

  /// Queues a message for transmission.  Returns the message id.
  /// Packets serialize through the NIC at the injection bandwidth.
  std::uint64_t send_message(NodeId dst, std::uint64_t bytes,
                             std::uint64_t tag);

  /// Called when a complete message has been reassembled.
  /// `msg_start` is the simulated time the sender posted the message.
  virtual void on_message(NodeId src, std::uint64_t bytes, std::uint64_t tag,
                          SimTime msg_start) = 0;

  /// Called when a message exhausts its retries (ack mode).  The loss is
  /// already recorded in "delivery_failed"; override to react.
  virtual void on_delivery_failed(NodeId dst, std::uint64_t bytes,
                                  std::uint64_t tag) {
    (void)dst;
    (void)bytes;
    (void)tag;
  }

  /// Observed message latency statistic (post time -> last byte arrival).
  Accumulator* msg_latency_;

 private:
  void handle_net(EventPtr ev);
  void handle_retry(EventPtr ev);
  /// Segments one message into packets on the NIC (used for both first
  /// transmission and retransmissions).  `randomize_path` forces a random
  /// intermediate hop (Valiant-style), so retransmissions explore a
  /// different route than the one that just failed.
  void transmit_packets(NodeId dst, std::uint64_t bytes, std::uint64_t tag,
                        std::uint64_t msg_id, SimTime msg_start,
                        bool randomize_path = false);
  void arm_retry_timer(std::uint64_t msg_id, std::uint32_t attempt);
  /// `randomize_path` bounces the ACK off a random intermediate —
  /// re-ACKs of retransmitted messages use it so a deterministically
  /// black-holed ACK route cannot starve the sender forever.
  void send_ack(NodeId dst, std::uint64_t msg_id,
                bool randomize_path = false);

  Link* net_link_;
  Link* retry_link_ = nullptr;  // only configured in ack mode
  NodeId node_id_ = kInvalidNode;
  std::uint32_t num_nodes_ = 0;
  bool valiant_ = false;
  bool ack_ = false;
  std::uint32_t retry_max_ = 0;
  SimTime retry_timeout_ = 0;
  double retry_backoff_ = 2.0;
  double inj_bytes_per_ps_;
  std::uint32_t mtu_;
  SimTime inj_busy_ = 0;
  std::uint64_t next_msg_id_ = 1;

  struct Partial {
    std::uint64_t received = 0;
    std::vector<std::uint64_t> seen;  // bitmap over pkt_seq
    /// True if seq was already received (and marks it received).
    bool test_and_set(std::uint32_t seq);

    void ckpt_io(ckpt::Serializer& s);
  };
  std::map<std::pair<NodeId, std::uint64_t>, Partial> reassembly_;
  // Messages already delivered to on_message (ack mode: duplicates of a
  // completed message are re-ACKed, never re-delivered).
  std::set<std::pair<NodeId, std::uint64_t>> completed_;
  struct Outstanding {
    NodeId dst;
    std::uint64_t bytes;
    std::uint64_t tag;
    SimTime msg_start;
    std::uint32_t attempts = 0;

    void ckpt_io(ckpt::Serializer& s);
  };
  std::map<std::uint64_t, Outstanding> outstanding_;

  Counter* msgs_sent_;
  Counter* msgs_recv_;
  Counter* bytes_sent_;
  Counter* packets_sent_;
  Counter* retries_;
  Counter* acks_sent_;
  Counter* delivery_failed_;
  Counter* dup_packets_;
};

}  // namespace sst::net
