// NetEndpoint: base class for network endpoints (compute nodes).
//
// Provides the NIC layer: message segmentation into MTU-sized packets,
// injection-bandwidth throttling (the knob of the bandwidth-degradation
// study), and receive-side reassembly.  Subclasses implement on_message()
// and drive traffic with send_message().
//
// Ports:
//   "net" — to the attached router
//
// Params:
//   injection_bw  NIC injection bandwidth           (default "3.2GB/s")
//   mtu           packet payload size               (default "2KiB")
#pragma once

#include <cstdint>
#include <map>

#include "core/component.h"
#include "net/net_event.h"

namespace sst::net {

class NetEndpoint : public Component {
 public:
  [[nodiscard]] NodeId node_id() const { return node_id_; }
  /// Assigned by the TopologyBuilder (in endpoint order).
  void set_node_id(NodeId id) { node_id_ = id; }
  /// Total endpoints in the network; set by the TopologyBuilder.
  void set_num_nodes(std::uint32_t n) { num_nodes_ = n; }
  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }

  /// Valiant routing: when enabled (by the TopologyBuilder), every
  /// message is bounced through a uniformly random intermediate node,
  /// trading doubled average path length for immunity to adversarial
  /// traffic patterns.
  void set_valiant(bool enabled) { valiant_ = enabled; }
  [[nodiscard]] bool valiant() const { return valiant_; }

  [[nodiscard]] std::uint64_t messages_sent() const {
    return msgs_sent_->count();
  }
  [[nodiscard]] std::uint64_t messages_received() const {
    return msgs_recv_->count();
  }

 protected:
  explicit NetEndpoint(Params& params);

  /// Queues a message for transmission.  Returns the message id.
  /// Packets serialize through the NIC at the injection bandwidth.
  std::uint64_t send_message(NodeId dst, std::uint64_t bytes,
                             std::uint64_t tag);

  /// Called when a complete message has been reassembled.
  /// `msg_start` is the simulated time the sender posted the message.
  virtual void on_message(NodeId src, std::uint64_t bytes, std::uint64_t tag,
                          SimTime msg_start) = 0;

  /// Observed message latency statistic (post time -> last byte arrival).
  Accumulator* msg_latency_;

 private:
  void handle_net(EventPtr ev);

  Link* net_link_;
  NodeId node_id_ = kInvalidNode;
  std::uint32_t num_nodes_ = 0;
  bool valiant_ = false;
  double inj_bytes_per_ps_;
  std::uint32_t mtu_;
  SimTime inj_busy_ = 0;
  std::uint64_t next_msg_id_ = 1;

  struct Partial {
    std::uint64_t received = 0;
  };
  std::map<std::pair<NodeId, std::uint64_t>, Partial> reassembly_;

  Counter* msgs_sent_;
  Counter* msgs_recv_;
  Counter* bytes_sent_;
  Counter* packets_sent_;
};

}  // namespace sst::net
