#include "net/endpoint.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::net {

namespace {

/// Timer event of the retry protocol; carries which attempt armed it so a
/// late timer from a superseded attempt is ignored.
class RetryEvent final : public Event {
 public:
  RetryEvent(std::uint64_t msg_id, std::uint32_t attempt)
      : msg_id_(msg_id), attempt_(attempt) {}

  [[nodiscard]] std::uint64_t msg_id() const { return msg_id_; }
  [[nodiscard]] std::uint32_t attempt() const { return attempt_; }

  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<RetryEvent>(msg_id_, attempt_);
  }

 private:
  std::uint64_t msg_id_;
  std::uint32_t attempt_;
};

}  // namespace

NetEndpoint::NetEndpoint(Params& params) {
  const double bw =
      params.find<UnitAlgebra>("injection_bw", UnitAlgebra("3.2GB/s"))
          .to_bytes_per_second();
  inj_bytes_per_ps_ = bw / 1e12;
  mtu_ = params.find<std::uint32_t>("mtu", 2048);
  if (mtu_ == 0) throw ConfigError("endpoint '" + name() + "': mtu >= 1");
  ack_ = params.find<bool>("ack", false);
  retry_max_ = params.find<std::uint32_t>("retry_max", 4);
  retry_timeout_ = params.find_time("retry_timeout", "500us");
  retry_backoff_ = params.find<double>("retry_backoff", 2.0);
  if (retry_timeout_ == 0) {
    throw ConfigError("endpoint '" + name() + "': retry_timeout must be > 0");
  }
  if (retry_backoff_ < 1.0) {
    throw ConfigError("endpoint '" + name() + "': retry_backoff must be >= 1");
  }

  net_link_ = configure_link(
      "net", [this](EventPtr ev) { handle_net(std::move(ev)); });
  if (ack_) {
    retry_link_ = configure_self_link(
        "retry", 1, [this](EventPtr ev) { handle_retry(std::move(ev)); });
  }

  msgs_sent_ = stat_counter("messages_sent");
  msgs_recv_ = stat_counter("messages_received");
  bytes_sent_ = stat_counter("bytes_sent");
  packets_sent_ = stat_counter("packets_sent");
  retries_ = stat_counter("retries");
  acks_sent_ = stat_counter("acks_sent");
  delivery_failed_ = stat_counter("delivery_failed");
  dup_packets_ = stat_counter("dup_packets");
  msg_latency_ = stat_accumulator("message_latency_ps");
}

bool NetEndpoint::Partial::test_and_set(std::uint32_t seq) {
  const std::size_t word = seq / 64;
  const std::uint64_t mask = 1ULL << (seq % 64);
  if (word >= seen.size()) seen.resize(word + 1, 0);
  if ((seen[word] & mask) != 0) return true;
  seen[word] |= mask;
  return false;
}

std::uint64_t NetEndpoint::send_message(NodeId dst, std::uint64_t bytes,
                                        std::uint64_t tag) {
  if (node_id_ == kInvalidNode) {
    throw SimulationError("endpoint '" + name() +
                          "': node id not assigned (wire through "
                          "TopologyBuilder first)");
  }
  if (dst == node_id_) {
    throw SimulationError("endpoint '" + name() + "': message to self");
  }
  if (bytes == 0) bytes = 1;  // zero-byte messages still cost a packet
  const std::uint64_t msg_id = next_msg_id_++;
  const SimTime msg_start = now();
  transmit_packets(dst, bytes, tag, msg_id, msg_start);
  msgs_sent_->add();
  bytes_sent_->add(bytes);
  if (ack_) {
    outstanding_.emplace(msg_id,
                         Outstanding{dst, bytes, tag, msg_start, 0});
    arm_retry_timer(msg_id, 0);
  }
  return msg_id;
}

void NetEndpoint::transmit_packets(NodeId dst, std::uint64_t bytes,
                                   std::uint64_t tag, std::uint64_t msg_id,
                                   SimTime msg_start, bool randomize_path) {
  // Valiant: all packets of one message share one random intermediate
  // (keeps them on one path, so reassembly order is preserved).
  NodeId via = kInvalidNode;
  if ((valiant_ || randomize_path) && num_nodes_ > 2) {
    do {
      via = static_cast<NodeId>(rng().next_bounded(num_nodes_));
    } while (via == node_id_ || via == dst);
  }

  std::uint64_t remaining = bytes;
  std::uint32_t seq = 0;
  while (remaining > 0) {
    const auto chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, mtu_));
    remaining -= chunk;
    // NIC injection serialization.
    const auto inject_time = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(chunk) /
                                inj_bytes_per_ps_));
    const SimTime start = std::max(now(), inj_busy_);
    inj_busy_ = start + inject_time;
    auto pkt = std::make_unique<PacketEvent>(node_id_, dst, chunk, msg_id,
                                             bytes, remaining == 0, tag,
                                             msg_start);
    pkt->set_pkt_seq(seq++);
    if (via != kInvalidNode) pkt->set_via(via);
    net_link_->send(std::move(pkt), inj_busy_ - now());
    packets_sent_->add();
  }
}

void NetEndpoint::arm_retry_timer(std::uint64_t msg_id,
                                  std::uint32_t attempt) {
  double scale = 1.0;
  for (std::uint32_t i = 0; i < attempt; ++i) scale *= retry_backoff_;
  const double scaled = static_cast<double>(retry_timeout_) * scale;
  SimTime delay = scaled >= 9e18 ? static_cast<SimTime>(9e18)
                                 : static_cast<SimTime>(scaled);
  if (delay < 1) delay = 1;
  // Self-link latency is 1ps; the remainder rides as extra delay.
  retry_link_->send(std::make_unique<RetryEvent>(msg_id, attempt), delay - 1);
}

void NetEndpoint::send_ack(NodeId dst, std::uint64_t msg_id,
                           bool randomize_path) {
  // ACKs are tiny control packets; they bypass NIC injection
  // serialization (modelled as a dedicated control channel).
  auto ack = std::make_unique<PacketEvent>(node_id_, dst, /*bytes=*/8,
                                           msg_id, /*msg_bytes=*/8,
                                           /*is_tail=*/true, /*tag=*/0,
                                           now());
  ack->set_kind(PacketEvent::Kind::kAck);
  if (randomize_path && num_nodes_ > 2) {
    NodeId via;
    do {
      via = static_cast<NodeId>(rng().next_bounded(num_nodes_));
    } while (via == node_id_ || via == dst);
    ack->set_via(via);
  }
  net_link_->send(std::move(ack));
  acks_sent_->add();
}

void NetEndpoint::handle_retry(EventPtr ev) {
  auto timer = event_cast<RetryEvent>(std::move(ev));
  auto it = outstanding_.find(timer->msg_id());
  if (it == outstanding_.end()) return;           // ACKed meanwhile
  if (it->second.attempts != timer->attempt()) return;  // superseded timer
  Outstanding& msg = it->second;
  if (msg.attempts >= retry_max_) {
    delivery_failed_->add();
    const Outstanding failed = msg;
    outstanding_.erase(it);
    on_delivery_failed(failed.dst, failed.bytes, failed.tag);
    return;
  }
  ++msg.attempts;
  retries_->add();
  // Randomize the path: deterministic routing would retrace the exact
  // hops that just lost the message (e.g. a deflection loop around a
  // dead port), so retries bounce through a fresh intermediate.
  transmit_packets(msg.dst, msg.bytes, msg.tag, timer->msg_id(),
                   msg.msg_start, /*randomize_path=*/true);
  arm_retry_timer(timer->msg_id(), msg.attempts);
}

void NetEndpoint::handle_net(EventPtr ev) {
  auto pkt = event_cast<PacketEvent>(std::move(ev));
  if (pkt->dst() != node_id_) {
    throw SimulationError("endpoint '" + name() + "': misrouted packet for " +
                          std::to_string(pkt->dst()));
  }
  if (pkt->kind() == PacketEvent::Kind::kAck) {
    outstanding_.erase(pkt->msg_id());
    return;
  }
  const auto key = std::make_pair(pkt->src(), pkt->msg_id());
  if (ack_ && completed_.contains(key)) {
    // The sender retried after our ACK was lost; re-ACK, don't re-deliver.
    dup_packets_->add();
    if (pkt->is_tail()) {
      send_ack(pkt->src(), pkt->msg_id(), /*randomize_path=*/true);
    }
    return;
  }
  Partial& part = reassembly_[key];
  if (part.test_and_set(pkt->pkt_seq())) {
    dup_packets_->add();
    return;
  }
  part.received += pkt->bytes();
  if (part.received >= pkt->msg_bytes()) {
    if (part.received > pkt->msg_bytes()) {
      throw SimulationError("endpoint '" + name() +
                            "': reassembly byte-count overflow");
    }
    reassembly_.erase(key);
    if (ack_) {
      completed_.insert(key);
      send_ack(pkt->src(), pkt->msg_id());
    }
    msgs_recv_->add();
    msg_latency_->add(static_cast<double>(now() - pkt->msg_start()));
    on_message(pkt->src(), pkt->msg_bytes(), pkt->tag(), pkt->msg_start());
  }
}

void NetEndpoint::Partial::ckpt_io(ckpt::Serializer& s) {
  s & received & seen;
}

void NetEndpoint::Outstanding::ckpt_io(ckpt::Serializer& s) {
  s & dst & bytes & tag & msg_start & attempts;
}

void NetEndpoint::serialize_state(ckpt::Serializer& s) {
  s & inj_busy_ & next_msg_id_ & reassembly_ & completed_ & outstanding_;
}

}  // namespace sst::net
