#include "net/endpoint.h"

#include <algorithm>
#include <utility>

namespace sst::net {

NetEndpoint::NetEndpoint(Params& params) {
  const double bw =
      params.find<UnitAlgebra>("injection_bw", UnitAlgebra("3.2GB/s"))
          .to_bytes_per_second();
  inj_bytes_per_ps_ = bw / 1e12;
  mtu_ = params.find<std::uint32_t>("mtu", 2048);
  if (mtu_ == 0) throw ConfigError("endpoint '" + name() + "': mtu >= 1");

  net_link_ = configure_link(
      "net", [this](EventPtr ev) { handle_net(std::move(ev)); });

  msgs_sent_ = stat_counter("messages_sent");
  msgs_recv_ = stat_counter("messages_received");
  bytes_sent_ = stat_counter("bytes_sent");
  packets_sent_ = stat_counter("packets_sent");
  msg_latency_ = stat_accumulator("message_latency_ps");
}

std::uint64_t NetEndpoint::send_message(NodeId dst, std::uint64_t bytes,
                                        std::uint64_t tag) {
  if (node_id_ == kInvalidNode) {
    throw SimulationError("endpoint '" + name() +
                          "': node id not assigned (wire through "
                          "TopologyBuilder first)");
  }
  if (dst == node_id_) {
    throw SimulationError("endpoint '" + name() + "': message to self");
  }
  if (bytes == 0) bytes = 1;  // zero-byte messages still cost a packet
  const std::uint64_t msg_id = next_msg_id_++;
  const SimTime msg_start = now();

  // Valiant: all packets of one message share one random intermediate
  // (keeps them on one path, so reassembly order is preserved).
  NodeId via = kInvalidNode;
  if (valiant_ && num_nodes_ > 2) {
    do {
      via = static_cast<NodeId>(rng().next_bounded(num_nodes_));
    } while (via == node_id_ || via == dst);
  }

  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const auto chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(remaining, mtu_));
    remaining -= chunk;
    // NIC injection serialization.
    const auto inject_time = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(chunk) /
                                inj_bytes_per_ps_));
    const SimTime start = std::max(now(), inj_busy_);
    inj_busy_ = start + inject_time;
    auto pkt = std::make_unique<PacketEvent>(node_id_, dst, chunk, msg_id,
                                             bytes, remaining == 0, tag,
                                             msg_start);
    if (via != kInvalidNode) pkt->set_via(via);
    net_link_->send(std::move(pkt), inj_busy_ - now());
    packets_sent_->add();
  }
  msgs_sent_->add();
  bytes_sent_->add(bytes);
  return msg_id;
}

void NetEndpoint::handle_net(EventPtr ev) {
  auto pkt = event_cast<PacketEvent>(std::move(ev));
  if (pkt->dst() != node_id_) {
    throw SimulationError("endpoint '" + name() + "': misrouted packet for " +
                          std::to_string(pkt->dst()));
  }
  const auto key = std::make_pair(pkt->src(), pkt->msg_id());
  Partial& part = reassembly_[key];
  part.received += pkt->bytes();
  if (part.received >= pkt->msg_bytes()) {
    if (part.received > pkt->msg_bytes()) {
      throw SimulationError("endpoint '" + name() +
                            "': reassembly byte-count overflow");
    }
    reassembly_.erase(key);
    msgs_recv_->add();
    msg_latency_->add(static_cast<double>(now() - pkt->msg_start()));
    on_message(pkt->src(), pkt->msg_bytes(), pkt->tag(), pkt->msg_start());
  }
}

}  // namespace sst::net
