#include "net/motifs.h"

#include <utility>

#include "ckpt/serializer.h"

namespace sst::net {

namespace {

/// Rank coordinates / neighbour arithmetic on a periodic px*py*pz grid.
NodeId grid_neighbor(NodeId id, std::uint32_t px, std::uint32_t py,
                     std::uint32_t pz, int dim, int dir) {
  std::uint32_t c[3] = {id % px, (id / px) % py, id / (px * py)};
  const std::uint32_t extent[3] = {px, py, pz};
  const std::uint32_t e = extent[dim];
  c[dim] = (c[dim] + e + static_cast<std::uint32_t>(dir)) % e;
  return (c[2] * py + c[1]) * px + c[0];
}

std::uint32_t exact_log2(std::uint32_t n, const std::string& who) {
  std::uint32_t l = 0;
  while ((1U << l) < n) ++l;
  if ((1U << l) != n) {
    throw ConfigError(who + ": node count must be a power of two, got " +
                      std::to_string(n));
  }
  return l;
}

}  // namespace

// ---------------------------------------------------------------------
// MotifEndpoint base
// ---------------------------------------------------------------------

MotifEndpoint::MotifEndpoint(Params& params) : NetEndpoint(params) {
  timer_ = configure_self_link("motif_timer", 1,
                               [this](EventPtr) { enter_step(); });
  register_as_primary();
  compute_time_ = stat_accumulator("compute_time_ps");
}

void MotifEndpoint::setup() {
  if (!started_) {
    started_ = true;
    timer_->send(std::make_unique<NullEvent>());
  }
}

void MotifEndpoint::enter_step() {
  if (finished_) return;
  in_step_ = true;
  blocked_set_ = false;
  step();
  in_step_ = false;
  if (!blocked_set_ && !finished_) {
    throw SimulationError("motif '" + name() +
                          "': step() ended without blocking or finishing");
  }
}

void MotifEndpoint::compute_for(SimTime duration) {
  if (blocked_set_) {
    throw SimulationError("motif '" + name() + "': double block in step()");
  }
  blocked_set_ = true;
  compute_time_->add(static_cast<double>(duration));
  timer_->send(std::make_unique<NullEvent>(), duration);
}

void MotifEndpoint::await_messages(std::uint64_t tag, std::uint32_t count) {
  if (blocked_set_) {
    throw SimulationError("motif '" + name() + "': double block in step()");
  }
  if (count == 0) {
    throw SimulationError("motif '" + name() + "': await of zero messages");
  }
  blocked_set_ = true;
  awaiting_ = true;
  await_tag_ = tag;
  await_need_ = count;
  check_await();
}

void MotifEndpoint::motif_done() {
  if (finished_) return;
  blocked_set_ = true;  // terminal state counts as resolved
  finished_ = true;
  completion_time_ = now();
  primary_ok_to_end_sim();
}

void MotifEndpoint::check_await() {
  if (!awaiting_) return;
  auto it = arrived_.find(await_tag_);
  if (it == arrived_.end() || it->second < await_need_) return;
  it->second -= await_need_;
  if (it->second == 0) arrived_.erase(it);
  awaiting_ = false;
  // Re-enter through the timer so step() always runs as a fresh event
  // (messages can satisfy an await during step() itself).
  timer_->send(std::make_unique<NullEvent>());
}

void MotifEndpoint::on_message(NodeId src, std::uint64_t bytes,
                               std::uint64_t tag, SimTime /*msg_start*/) {
  ++arrived_[tag];
  on_motif_message(src, bytes, tag);
  check_await();
}

// ---------------------------------------------------------------------
// PingPong
// ---------------------------------------------------------------------

PingPongMotif::PingPongMotif(Params& params) : MotifEndpoint(params) {
  iterations_ = params.find<std::uint32_t>("iterations", 100);
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 8);
}

void PingPongMotif::step() {
  if (num_nodes() < 2 || node_id() > 1) {
    motif_done();
    return;
  }
  if (node_id() == 0) {
    if (phase_ == 1) ++iter_;  // a pong just arrived
    phase_ = 1;
    if (iter_ >= iterations_) {
      motif_done();
      return;
    }
    send_message(1, msg_bytes_, 2ULL * iter_);
    await_messages(2ULL * iter_ + 1, 1);
  } else {
    if (phase_ == 1) {
      send_message(0, msg_bytes_, 2ULL * iter_ + 1);
      ++iter_;
    }
    phase_ = 1;
    if (iter_ >= iterations_) {
      motif_done();
      return;
    }
    await_messages(2ULL * iter_, 1);
  }
}

// ---------------------------------------------------------------------
// HaloExchange
// ---------------------------------------------------------------------

HaloExchangeMotif::HaloExchangeMotif(Params& params) : MotifEndpoint(params) {
  px_ = params.find<std::uint32_t>("px", 2);
  py_ = params.find<std::uint32_t>("py", 2);
  pz_ = params.find<std::uint32_t>("pz", 1);
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 64 * 1024);
  compute_ = params.find_time("compute", "10us");
  iterations_ = params.find<std::uint32_t>("iterations", 10);
}

NodeId HaloExchangeMotif::neighbor(int dim, int dir) const {
  return grid_neighbor(node_id(), px_, py_, pz_, dim, dir);
}

void HaloExchangeMotif::step() {
  if (static_cast<std::uint64_t>(px_) * py_ * pz_ != num_nodes()) {
    throw ConfigError("halo motif '" + name() + "': grid " +
                      std::to_string(px_) + "x" + std::to_string(py_) + "x" +
                      std::to_string(pz_) + " != " +
                      std::to_string(num_nodes()) + " nodes");
  }
  for (;;) {
    switch (phase_) {
      case 0: {  // post halo sends
        if (iter_ >= iterations_) {
          motif_done();
          return;
        }
        unsigned sent = 0;
        for (int dim = 0; dim < 3; ++dim) {
          for (int dir : {+1, -1}) {
            const NodeId nb = neighbor(dim, dir);
            if (nb == node_id()) continue;
            send_message(nb, msg_bytes_, iter_);
            ++sent;
          }
        }
        phase_ = 1;
        if (sent > 0) {
          await_messages(iter_, sent);
          return;
        }
        break;
      }
      case 1:  // halo complete: compute
        phase_ = 2;
        compute_for(compute_);
        return;
      default:  // iteration complete
        ++iter_;
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------

AllreduceMotif::AllreduceMotif(Params& params) : MotifEndpoint(params) {
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 8);
  iterations_ = params.find<std::uint32_t>("iterations", 100);
  compute_ = params.find_time("compute", "1us");
}

void AllreduceMotif::step() {
  if (log2_nodes_ == 0 && num_nodes() > 1) {
    log2_nodes_ = exact_log2(num_nodes(), "allreduce motif '" + name() + "'");
  }
  for (;;) {
    switch (phase_) {
      case 0: {  // start (or continue) the butterfly
        if (iter_ >= iterations_) {
          motif_done();
          return;
        }
        if (log2_nodes_ == 0) {  // single rank: nothing to exchange
          phase_ = 2;
          break;
        }
        const NodeId partner = node_id() ^ (1U << round_);
        const std::uint64_t tag = iter_ * 64ULL + round_;
        send_message(partner, msg_bytes_, tag);
        phase_ = 1;
        await_messages(tag, 1);
        return;
      }
      case 1:  // round complete
        if (++round_ < log2_nodes_) {
          phase_ = 0;
          break;
        }
        round_ = 0;
        phase_ = 2;
        break;
      case 2:  // local work between allreduces
        phase_ = 3;
        compute_for(compute_);
        return;
      default:
        ++iter_;
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------
// AllToAll
// ---------------------------------------------------------------------

AllToAllMotif::AllToAllMotif(Params& params) : MotifEndpoint(params) {
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 4096);
  iterations_ = params.find<std::uint32_t>("iterations", 10);
  compute_ = params.find_time("compute", "10us");
}

void AllToAllMotif::step() {
  for (;;) {
    switch (phase_) {
      case 0: {
        if (iter_ >= iterations_) {
          motif_done();
          return;
        }
        const std::uint32_t n = num_nodes();
        phase_ = 1;
        if (n > 1) {
          // Rotated send order avoids every rank hammering node 0 first.
          for (std::uint32_t k = 1; k < n; ++k) {
            send_message((node_id() + k) % n, msg_bytes_, iter_);
          }
          await_messages(iter_, n - 1);
          return;
        }
        break;
      }
      case 1:
        phase_ = 2;
        compute_for(compute_);
        return;
      default:
        ++iter_;
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Sweep (wavefront pipeline)
// ---------------------------------------------------------------------

SweepMotif::SweepMotif(Params& params) : MotifEndpoint(params) {
  px_ = params.find<std::uint32_t>("px", 2);
  py_ = params.find<std::uint32_t>("py", 2);
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 16 * 1024);
  compute_ = params.find_time("compute", "20us");
  sweeps_ = params.find<std::uint32_t>("sweeps", 8);
}

void SweepMotif::step() {
  if (static_cast<std::uint64_t>(px_) * py_ != num_nodes()) {
    throw ConfigError("sweep motif '" + name() + "': grid " +
                      std::to_string(px_) + "x" + std::to_string(py_) +
                      " != " + std::to_string(num_nodes()) + " nodes");
  }
  const std::uint32_t ix = node_id() % px_;
  const std::uint32_t iy = node_id() / px_;
  for (;;) {
    switch (phase_) {
      case 0: {  // wait for upstream wavefront inputs
        if (sweep_ >= sweeps_) {
          motif_done();
          return;
        }
        const std::uint32_t upstream =
            (ix > 0 ? 1u : 0u) + (iy > 0 ? 1u : 0u);
        phase_ = 1;
        if (upstream > 0) {
          await_messages(sweep_, upstream);
          return;
        }
        break;  // the corner rank starts immediately
      }
      case 1:  // local sweep work
        phase_ = 2;
        compute_for(compute_);
        return;
      default: {  // feed downstream, next sweep
        if (ix + 1 < px_) {
          send_message(node_id() + 1, msg_bytes_, sweep_);
        }
        if (iy + 1 < py_) {
          send_message(node_id() + px_, msg_bytes_, sweep_);
        }
        ++sweep_;
        phase_ = 0;
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// AppProfile
// ---------------------------------------------------------------------

AppProfileMotif::AppProfileMotif(Params& params) : MotifEndpoint(params) {
  px_ = params.find<std::uint32_t>("px", 2);
  py_ = params.find<std::uint32_t>("py", 2);
  pz_ = params.find<std::uint32_t>("pz", 1);
  compute_ = params.find_time("compute", "1ms");
  halo_bytes_ = params.find<std::uint64_t>("halo_bytes", 0);
  collective_bytes_ = params.find<std::uint64_t>("collective_bytes", 0);
  collective_count_ = params.find<std::uint32_t>("collective_count", 1);
  iterations_ = params.find<std::uint32_t>("iterations", 10);
}

NodeId AppProfileMotif::neighbor(int dim, int dir) const {
  return grid_neighbor(node_id(), px_, py_, pz_, dim, dir);
}

void AppProfileMotif::step() {
  if (static_cast<std::uint64_t>(px_) * py_ * pz_ != num_nodes()) {
    throw ConfigError("app motif '" + name() + "': grid does not match " +
                      std::to_string(num_nodes()) + " nodes");
  }
  if (collective_bytes_ > 0 && log2_nodes_ == 0 && num_nodes() > 1) {
    log2_nodes_ = exact_log2(num_nodes(), "app motif '" + name() + "'");
  }
  const auto halo_tag = [this] { return iter_ * 1024ULL; };
  const auto coll_tag = [this] {
    return iter_ * 1024ULL + 1 + collective_i_ * 32ULL + round_;
  };
  for (;;) {
    switch (phase_) {
      case 0:  // timestep compute
        if (iter_ >= iterations_) {
          motif_done();
          return;
        }
        phase_ = 1;
        if (compute_ > 0) {
          compute_for(compute_);
          return;
        }
        break;
      case 1: {  // halo exchange
        phase_ = 2;
        if (halo_bytes_ == 0) break;
        unsigned sent = 0;
        for (int dim = 0; dim < 3; ++dim) {
          for (int dir : {+1, -1}) {
            const NodeId nb = neighbor(dim, dir);
            if (nb == node_id()) continue;
            send_message(nb, halo_bytes_, halo_tag());
            ++sent;
          }
        }
        if (sent > 0) {
          await_messages(halo_tag(), sent);
          return;
        }
        break;
      }
      case 2: {  // collective rounds
        if (collective_bytes_ == 0 || log2_nodes_ == 0 ||
            collective_i_ >= collective_count_) {
          collective_i_ = 0;
          round_ = 0;
          phase_ = 3;
          break;
        }
        const NodeId partner = node_id() ^ (1U << round_);
        send_message(partner, collective_bytes_, coll_tag());
        phase_ = 4;
        await_messages(coll_tag(), 1);
        return;
      }
      case 4:  // collective round complete
        if (++round_ >= log2_nodes_) {
          round_ = 0;
          ++collective_i_;
        }
        phase_ = 2;
        break;
      default:  // timestep complete
        ++iter_;
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Checkpoint hooks
// ---------------------------------------------------------------------

void MotifEndpoint::serialize_state(ckpt::Serializer& s) {
  NetEndpoint::serialize_state(s);
  s & started_ & finished_ & in_step_ & blocked_set_ & completion_time_ &
      awaiting_ & await_tag_ & await_need_ & arrived_;
}

void PingPongMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & iter_ & phase_;
}

void HaloExchangeMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & iter_ & phase_;
}

void AllreduceMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & iter_ & round_ & phase_;
}

void AllToAllMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & iter_ & phase_;
}

void SweepMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & sweep_ & phase_;
}

void AppProfileMotif::serialize_state(ckpt::Serializer& s) {
  MotifEndpoint::serialize_state(s);
  s & iter_ & collective_i_ & round_ & phase_;
}

}  // namespace sst::net
