#include "net/hotspot.h"

#include <string>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::net {

void HotspotTokenEvent::ckpt_fields(ckpt::Serializer& s) { s & service_; }

HotspotNode::HotspotNode(Params& params) {
  x_ = params.find<std::uint32_t>("x", 0);
  y_ = params.find<std::uint32_t>("y", 0);
  size_x_ = params.find<std::uint32_t>("size_x", 8);
  size_y_ = params.find<std::uint32_t>("size_y", 8);
  min_delay_ = params.find_time("min_delay", "20ns");
  self_delay_ = params.find_time("self_delay", "5ns");
  service_hops_ = params.find<std::uint32_t>("service_hops", 8);
  hot_span_ = params.find<std::uint32_t>("hot_span", 1);
  bias_pct_ = params.find<std::uint32_t>("bias_pct", 75);
  drift_period_ = params.find_time("drift_period", "200us");
  initial_tokens_ = params.find<std::uint32_t>("initial_tokens", 2);
  if (size_x_ == 0 || size_y_ == 0) {
    throw ConfigError(name() + ": size_x/size_y must be >= 1");
  }
  if (x_ >= size_x_ || y_ >= size_y_) {
    throw ConfigError(name() + ": coordinate (" + std::to_string(x_) + "," +
                      std::to_string(y_) + ") outside " +
                      std::to_string(size_x_) + "x" + std::to_string(size_y_) +
                      " torus");
  }
  if (drift_period_ == 0) {
    throw ConfigError(name() + ": drift_period must be > 0");
  }
  if (min_delay_ == 0 || self_delay_ == 0) {
    throw ConfigError(name() + ": min_delay/self_delay must be > 0");
  }
  if (bias_pct_ > 100) bias_pct_ = 100;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    out_[i] = configure_link(
        "port" + std::to_string(i),
        [this](EventPtr ev) { on_token(std::move(ev)); });
  }
  self_ = configure_self_link(
      "service", self_delay_,
      [this](EventPtr ev) { on_service(std::move(ev)); });
  received_stat_ = stat_counter("received");
  forwarded_stat_ = stat_counter("forwarded");
}

void HotspotNode::setup() {
  for (std::uint32_t i = 0; i < initial_tokens_; ++i) {
    forward(make_event<HotspotTokenEvent>());
  }
}

void HotspotNode::serialize_state(ckpt::Serializer& s) {
  s & received_ & forwarded_;
}

void HotspotNode::hot_center(std::uint32_t& cx, std::uint32_t& cy) const {
  // Raster scan over the torus: one x-step per drift period, wrapping
  // into a y-step — every node derives the same center from simulated
  // time alone.
  const std::uint64_t step = now() / drift_period_;
  cx = static_cast<std::uint32_t>(step % size_x_);
  cy = static_cast<std::uint32_t>((step / size_x_) % size_y_);
}

bool HotspotNode::in_hot_zone() const {
  std::uint32_t cx = 0;
  std::uint32_t cy = 0;
  hot_center(cx, cy);
  const std::uint32_t ax = x_ > cx ? x_ - cx : cx - x_;
  const std::uint32_t ay = y_ > cy ? y_ - cy : cy - y_;
  const std::uint32_t dx = ax < size_x_ - ax ? ax : size_x_ - ax;
  const std::uint32_t dy = ay < size_y_ - ay ? ay : size_y_ - ay;
  return dx <= hot_span_ && dy <= hot_span_;
}

void HotspotNode::on_token(EventPtr ev) {
  ++received_;
  received_stat_->add(1);
  if (service_hops_ > 0 && in_hot_zone()) {
    auto* tok = static_cast<HotspotTokenEvent*>(ev.get());
    tok->set_service(0);
    self_->send(std::move(ev), 0);
    return;
  }
  forward(std::move(ev));
}

void HotspotNode::on_service(EventPtr ev) {
  auto* tok = static_cast<HotspotTokenEvent*>(ev.get());
  tok->set_service(tok->service() + 1);
  // Keep servicing only while the zone is still hot here: tokens drain
  // away naturally when the center drifts on.
  if (tok->service() < service_hops_ && in_hot_zone()) {
    self_->send(std::move(ev), 0);
    return;
  }
  forward(std::move(ev));
}

void HotspotNode::forward(EventPtr ev) {
  ++forwarded_;
  forwarded_stat_->add(1);
  std::uint32_t cx = 0;
  std::uint32_t cy = 0;
  hot_center(cx, cy);
  Link* out = nullptr;
  const bool at_center = cx == x_ && cy == y_;
  if (!at_center && rng().next_bounded(100) < bias_pct_) {
    // Step toward the center along the shorter torus direction.
    const std::uint32_t dxf = (cx + size_x_ - x_) % size_x_;
    const std::uint32_t dyf = (cy + size_y_ - y_) % size_y_;
    const bool move_x =
        dxf != 0 && (dyf == 0 || rng().next_bounded(2) == 0);
    if (move_x) {
      out = out_[dxf <= size_x_ / 2 ? 0 : 1];
    } else {
      out = out_[dyf <= size_y_ / 2 ? 2 : 3];
    }
  } else {
    out = out_[rng().next_bounded(out_.size())];
  }
  out->send(std::move(ev), (1 + rng().next_bounded(8)) * min_delay_);
}

}  // namespace sst::net
