#include "net/router.h"

#include <algorithm>
#include <utility>

namespace sst::net {

Router::Router(Params& params) {
  const auto nports = params.required<std::uint32_t>("ports");
  if (nports == 0) {
    throw ConfigError("router '" + name() + "': ports must be >= 1");
  }
  const double bw =
      params.find<UnitAlgebra>("bandwidth", UnitAlgebra("10GB/s"))
          .to_bytes_per_second();
  bytes_per_ps_ = bw / 1e12;
  hop_latency_ = params.find_time("hop_latency", "50ns");

  ports_.reserve(nports);
  for (std::uint32_t i = 0; i < nports; ++i) {
    ports_.push_back(configure_link(
        "port" + std::to_string(i),
        [this](EventPtr ev) { handle_packet(std::move(ev)); },
        /*optional=*/true));
  }
  port_busy_.assign(nports, 0);

  packets_ = stat_counter("packets");
  bytes_stat_ = stat_counter("bytes");
  queue_delay_ = stat_accumulator("queue_delay_ps");
}

void Router::set_route_table(std::vector<std::uint8_t> table) {
  for (const std::uint8_t p : table) {
    if (p >= ports_.size()) {
      throw ConfigError("router '" + name() + "': route entry " +
                        std::to_string(p) + " out of range");
    }
  }
  route_ = std::move(table);
}

void Router::set_local_nodes(std::vector<bool> local) {
  local_nodes_ = std::move(local);
}

void Router::handle_packet(EventPtr ev) {
  auto pkt = event_cast<PacketEvent>(std::move(ev));
  if (route_.empty()) {
    throw SimulationError("router '" + name() + "': no routing table");
  }
  if (pkt->dst() >= route_.size()) {
    throw SimulationError("router '" + name() + "': packet for unknown node " +
                          std::to_string(pkt->dst()));
  }
  // Valiant phase 1: steer toward the intermediate until its router.
  if (pkt->via() != kInvalidNode) {
    if (pkt->via() >= route_.size()) {
      throw SimulationError("router '" + name() + "': bad via node");
    }
    if (pkt->via() < local_nodes_.size() && local_nodes_[pkt->via()]) {
      pkt->clear_via();  // phase 2 starts here
    }
  }
  const NodeId steer = pkt->via() != kInvalidNode ? pkt->via() : pkt->dst();
  const std::uint8_t out = route_[steer];
  Link* link = ports_[out];
  if (!link->connected()) {
    throw SimulationError("router '" + name() + "': route to node " +
                          std::to_string(pkt->dst()) +
                          " uses unconnected port " + std::to_string(out));
  }

  // Serialize on the output port.
  const auto transmit = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(pkt->bytes()) /
                              bytes_per_ps_));
  const SimTime start = std::max(now() + hop_latency_, port_busy_[out]);
  port_busy_[out] = start + transmit;
  queue_delay_->add(static_cast<double>(start - now()));
  packets_->add();
  bytes_stat_->add(pkt->bytes());
  pkt->add_hop();
  link->send(std::move(pkt), port_busy_[out] - now());
}

}  // namespace sst::net
