#include "net/router.h"

#include <algorithm>
#include <utility>

#include "ckpt/serializer.h"

namespace sst::net {

Router::Router(Params& params) {
  const auto nports = params.required<std::uint32_t>("ports");
  if (nports == 0) {
    throw ConfigError("router '" + name() + "': ports must be >= 1");
  }
  const double bw =
      params.find<UnitAlgebra>("bandwidth", UnitAlgebra("10GB/s"))
          .to_bytes_per_second();
  bytes_per_ps_ = bw / 1e12;
  hop_latency_ = params.find_time("hop_latency", "50ns");
  ttl_ = params.find<std::uint32_t>("ttl", 64);
  if (ttl_ == 0) throw ConfigError("router '" + name() + "': ttl must be >= 1");

  ports_.reserve(nports);
  for (std::uint32_t i = 0; i < nports; ++i) {
    ports_.push_back(configure_link(
        "port" + std::to_string(i),
        [this, i](EventPtr ev) { handle_packet(i, std::move(ev)); },
        /*optional=*/true));
  }
  port_busy_.assign(nports, 0);
  port_alive_.assign(nports, true);
  endpoint_port_.assign(nports, false);
  fault_link_ = configure_self_link(
      "fault", 1, [this](EventPtr ev) { handle_fault(std::move(ev)); });

  packets_ = stat_counter("packets");
  bytes_stat_ = stat_counter("bytes");
  queue_delay_ = stat_accumulator("queue_delay_ps");
  reroutes_ = stat_counter("reroutes");
  fault_dropped_ = stat_counter("fault_dropped");
  ttl_dropped_ = stat_counter("ttl_dropped");
  port_fault_events_ = stat_counter("port_fault_events");
}

void Router::set_route_table(std::vector<std::uint8_t> table) {
  for (const std::uint8_t p : table) {
    if (p >= ports_.size()) {
      throw ConfigError("router '" + name() + "': route entry " +
                        std::to_string(p) + " out of range");
    }
  }
  route_ = std::move(table);
}

void Router::set_local_nodes(std::vector<bool> local) {
  local_nodes_ = std::move(local);
}

void Router::set_route_candidates(std::vector<std::vector<std::uint8_t>> cands) {
  for (const auto& ports : cands) {
    for (const std::uint8_t p : ports) {
      if (p >= ports_.size()) {
        throw ConfigError("router '" + name() + "': candidate port " +
                          std::to_string(p) + " out of range");
      }
    }
  }
  candidates_ = std::move(cands);
}

void Router::schedule_port_fail(std::uint32_t port, SimTime at) {
  schedule_port_event(port, /*fail=*/true, at);
}

void Router::schedule_port_heal(std::uint32_t port, SimTime at) {
  schedule_port_event(port, /*fail=*/false, at);
}

void Router::schedule_port_event(std::uint32_t port, bool fail, SimTime at) {
  if (port >= ports_.size()) {
    throw ConfigError("router '" + name() + "': fault on unknown port " +
                      std::to_string(port));
  }
  if (at < 1) {
    throw ConfigError("router '" + name() +
                      "': port fault time must be >= 1ps");
  }
  if (!setup_done_) {
    // Time has not started; stage the event until setup() can send it.
    pending_faults_.push_back({port, fail, at});
    return;
  }
  if (at <= now()) {
    throw ConfigError("router '" + name() + "': port fault time " +
                      std::to_string(at) + "ps is not in the future");
  }
  fault_link_->send(std::make_unique<PortFaultEvent>(port, fail),
                    at - now() - 1);
}

void Router::setup() {
  // Mark endpoint attach ports: deflection must never push a transit
  // packet into a NIC, which would reject it as misrouted.
  for (std::uint32_t n = 0;
       n < local_nodes_.size() && n < route_.size(); ++n) {
    if (local_nodes_[n]) endpoint_port_[route_[n]] = true;
  }
  setup_done_ = true;
  for (const auto& pf : pending_faults_) {
    fault_link_->send(std::make_unique<PortFaultEvent>(pf.port, pf.fail),
                      pf.at - 1);
  }
  pending_faults_.clear();
}

void Router::handle_fault(EventPtr ev) {
  auto pf = event_cast<PortFaultEvent>(std::move(ev));
  if (pf->port() >= ports_.size()) {
    throw SimulationError("router '" + name() + "': fault for unknown port " +
                          std::to_string(pf->port()));
  }
  port_alive_[pf->port()] = !pf->fail();
  any_port_down_ =
      std::find(port_alive_.begin(), port_alive_.end(), false) !=
      port_alive_.end();
  port_fault_events_->add();
}

int Router::pick_output(NodeId steer, std::uint32_t in_port) const {
  const std::uint8_t primary = route_[steer];
  auto usable = [this](std::uint32_t p) {
    return port_alive_[p] && ports_[p]->connected();
  };
  if (usable(primary)) return primary;
  // A local destination is only reachable through its attach port.
  if (steer < local_nodes_.size() && local_nodes_[steer]) return -1;
  // Remaining minimal candidates first (still shortest paths).
  if (steer < candidates_.size()) {
    for (const std::uint8_t p : candidates_[steer]) {
      if (p != primary && usable(p)) return p;
    }
  }
  // Deflection fallback: any alive transit port except the inbound one.
  // Non-minimal, but the TTL bounds the resulting detours.
  for (std::uint32_t p = 0; p < ports_.size(); ++p) {
    if (p == primary || p == in_port || endpoint_port_[p]) continue;
    if (usable(p)) return static_cast<int>(p);
  }
  return -1;
}

void Router::handle_packet(std::uint32_t in_port, EventPtr ev) {
  auto pkt = event_cast<PacketEvent>(std::move(ev));
  if (route_.empty()) {
    throw SimulationError("router '" + name() + "': no routing table");
  }
  if (pkt->dst() >= route_.size()) {
    throw SimulationError("router '" + name() + "': packet for unknown node " +
                          std::to_string(pkt->dst()));
  }
  // Valiant phase 1: steer toward the intermediate until its router.
  if (pkt->via() != kInvalidNode) {
    if (pkt->via() >= route_.size()) {
      throw SimulationError("router '" + name() + "': bad via node");
    }
    if (pkt->via() < local_nodes_.size() && local_nodes_[pkt->via()]) {
      pkt->clear_via();  // phase 2 starts here
    }
  }
  const NodeId steer = pkt->via() != kInvalidNode ? pkt->via() : pkt->dst();
  std::uint32_t out = route_[steer];
  if (any_port_down_) [[unlikely]] {
    if (pkt->hops() >= ttl_) {
      ttl_dropped_->add();
      return;
    }
    const int alt = pick_output(steer, in_port);
    if (alt < 0) {
      fault_dropped_->add();
      return;
    }
    if (static_cast<std::uint32_t>(alt) != out) reroutes_->add();
    out = static_cast<std::uint32_t>(alt);
  }
  Link* link = ports_[out];
  if (!link->connected()) {
    throw SimulationError("router '" + name() + "': route to node " +
                          std::to_string(pkt->dst()) +
                          " uses unconnected port " + std::to_string(out));
  }

  // Serialize on the output port.
  const auto transmit = std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(pkt->bytes()) /
                              bytes_per_ps_));
  const SimTime start = std::max(now() + hop_latency_, port_busy_[out]);
  port_busy_[out] = start + transmit;
  queue_delay_->add(static_cast<double>(start - now()));
  packets_->add();
  bytes_stat_->add(pkt->bytes());
  pkt->add_hop();
  link->send(std::move(pkt), port_busy_[out] - now());
}

void Router::serialize_state(ckpt::Serializer& s) {
  s & port_busy_ & port_alive_ & any_port_down_;
}

}  // namespace sst::net
