// Router: output-serialized packet switch with a table-based routing
// function.
//
// Each output port is a serializing resource (header processing time +
// bytes / link bandwidth); packets queue on busy outputs, so offered-load
// sweeps produce the classic load-latency curve with a saturation knee.
// Routing tables are installed by the TopologyBuilder after construction
// (deterministic minimal routing with hashed equal-cost tie-breaks).
//
// Ports: "port0" .. "port<P-1>" (unused ports may stay unconnected).
//
// Params:
//   ports       port count                          (required)
//   bandwidth   per-port link bandwidth             (default "10GB/s")
//   hop_latency per-packet routing/processing time  (default "50ns")
#pragma once

#include <cstdint>
#include <vector>

#include "core/component.h"
#include "net/net_event.h"

namespace sst::net {

class Router final : public Component {
 public:
  explicit Router(Params& params);

  /// route_table[node] = output port for packets destined to `node`.
  void set_route_table(std::vector<std::uint8_t> table);

  /// Marks which nodes are attached to this router (needed to terminate
  /// the first phase of Valiant-routed packets).
  void set_local_nodes(std::vector<bool> local);

  [[nodiscard]] std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(ports_.size());
  }

 private:
  void handle_packet(EventPtr ev);

  std::vector<Link*> ports_;
  std::vector<SimTime> port_busy_;
  std::vector<std::uint8_t> route_;
  std::vector<bool> local_nodes_;
  double bytes_per_ps_;
  SimTime hop_latency_;

  Counter* packets_;
  Counter* bytes_stat_;
  Accumulator* queue_delay_;
};

}  // namespace sst::net
