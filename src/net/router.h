// Router: output-serialized packet switch with a table-based routing
// function.
//
// Each output port is a serializing resource (header processing time +
// bytes / link bandwidth); packets queue on busy outputs, so offered-load
// sweeps produce the classic load-latency curve with a saturation knee.
// Routing tables are installed by the TopologyBuilder after construction
// (deterministic minimal routing with hashed equal-cost tie-breaks).
//
// Ports: "port0" .. "port<P-1>" (unused ports may stay unconnected).
//
// Fault tolerance: ports can fail and heal at scheduled simulated times
// (schedule_port_fail/heal).  Packets whose primary route uses a dead port
// are rerouted over the remaining minimal candidates, falling back to
// deflection over any alive transit port; packets with no way out are
// dropped and counted ("fault_dropped"), and a hop TTL bounds deflection
// loops ("ttl_dropped").  The healthy path is unchanged.
//
// Params:
//   ports       port count                          (required)
//   bandwidth   per-port link bandwidth             (default "10GB/s")
//   hop_latency per-packet routing/processing time  (default "50ns")
//   ttl         max hops before a packet is dropped (default 64; only
//               enforced while a local port is down)
#pragma once

#include <cstdint>
#include <vector>

#include "core/component.h"
#include "net/net_event.h"

namespace sst::net {

class Router final : public Component {
 public:
  explicit Router(Params& params);

  /// route_table[node] = output port for packets destined to `node`.
  void set_route_table(std::vector<std::uint8_t> table);

  /// Marks which nodes are attached to this router (needed to terminate
  /// the first phase of Valiant-routed packets).
  void set_local_nodes(std::vector<bool> local);

  /// candidates[node] = all minimal output ports toward `node`, preference
  /// order (installed by the TopologyBuilder alongside the route table).
  /// Consulted only when the primary route's port is down.
  void set_route_candidates(std::vector<std::vector<std::uint8_t>> cands);

  /// Schedules this router's `port` to go down / come back up at absolute
  /// simulated time `at` (>= 1ps, in the future).  Callable during build
  /// or at runtime (e.g. from SDL "faults" config).
  void schedule_port_fail(std::uint32_t port, SimTime at);
  void schedule_port_heal(std::uint32_t port, SimTime at);

  [[nodiscard]] bool port_alive(std::uint32_t port) const {
    return port_alive_.at(port);
  }

  [[nodiscard]] std::uint32_t num_ports() const {
    return static_cast<std::uint32_t>(ports_.size());
  }

  void setup() override;

  void serialize_state(ckpt::Serializer& s) override;

 private:
  void handle_packet(std::uint32_t in_port, EventPtr ev);
  void handle_fault(EventPtr ev);
  /// Output port for `steer` honouring dead ports; -1 = no way out.
  [[nodiscard]] int pick_output(NodeId steer, std::uint32_t in_port) const;
  void schedule_port_event(std::uint32_t port, bool fail, SimTime at);

  std::vector<Link*> ports_;
  std::vector<SimTime> port_busy_;
  std::vector<std::uint8_t> route_;
  std::vector<bool> local_nodes_;
  std::vector<std::vector<std::uint8_t>> candidates_;
  std::vector<bool> port_alive_;
  std::vector<bool> endpoint_port_;  // attach ports (never deflect here)
  bool any_port_down_ = false;
  bool setup_done_ = false;
  std::uint32_t ttl_;
  Link* fault_link_;
  struct PendingFault {
    std::uint32_t port;
    bool fail;
    SimTime at;
  };
  std::vector<PendingFault> pending_faults_;
  double bytes_per_ps_;
  SimTime hop_latency_;

  Counter* packets_;
  Counter* bytes_stat_;
  Accumulator* queue_delay_;
  Counter* reroutes_;
  Counter* fault_dropped_;
  Counter* ttl_dropped_;
  Counter* port_fault_events_;
};

}  // namespace sst::net
