// Umbrella header + factory registration for the network element library.
#pragma once

#include "core/sst.h"
#include "net/endpoint.h"
#include "net/motifs.h"
#include "net/net_event.h"
#include "net/router.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace sst::net {

/// Registers "net.Router", "net.TrafficGenerator", and the motif endpoints
/// ("net.PingPong", "net.HaloExchange", "net.Allreduce", "net.AllToAll",
/// "net.AppProfile") with the process-wide Factory.  Idempotent.
void register_library();

}  // namespace sst::net
