#include "net/topology.h"

#include <algorithm>
#include <deque>
#include <map>

#include "core/rng.h"

namespace sst::net {

namespace {

/// Intermediate wiring description, topology-independent.
struct Blueprint {
  std::uint32_t num_routers = 0;
  std::uint32_t radix = 0;  // uniform port count (max needed)
  // (router_a, port_a) <-> (router_b, port_b)
  struct Wire {
    std::uint32_t ra, pa, rb, pb;
  };
  std::vector<Wire> wires;
  // endpoint node i attaches to (router, port)
  struct Attach {
    std::uint32_t router, port;
  };
  std::vector<Attach> attachments;
};

Blueprint plan_mesh(const TopologySpec& s, bool wrap, bool three_d) {
  Blueprint bp;
  const std::uint32_t zz = three_d ? s.z : 1;
  if (s.x == 0 || s.y == 0 || zz == 0) {
    throw ConfigError("topology: dimensions must be >= 1");
  }
  bp.num_routers = s.x * s.y * zz;
  const std::uint32_t dims = three_d ? 3 : 2;
  bp.radix = 2 * dims + s.concentration;
  auto rid = [&](std::uint32_t ix, std::uint32_t iy, std::uint32_t iz) {
    return (iz * s.y + iy) * s.x + ix;
  };
  // Port convention: 0:+x 1:-x 2:+y 3:-y [4:+z 5:-z] then endpoints.
  for (std::uint32_t iz = 0; iz < zz; ++iz) {
    for (std::uint32_t iy = 0; iy < s.y; ++iy) {
      for (std::uint32_t ix = 0; ix < s.x; ++ix) {
        const std::uint32_t me = rid(ix, iy, iz);
        // +x neighbour
        if (ix + 1 < s.x) {
          bp.wires.push_back({me, 0, rid(ix + 1, iy, iz), 1});
        } else if (wrap && s.x > 1) {
          bp.wires.push_back({me, 0, rid(0, iy, iz), 1});
        }
        if (iy + 1 < s.y) {
          bp.wires.push_back({me, 2, rid(ix, iy + 1, iz), 3});
        } else if (wrap && s.y > 1) {
          bp.wires.push_back({me, 2, rid(ix, 0, iz), 3});
        }
        if (three_d) {
          if (iz + 1 < zz) {
            bp.wires.push_back({me, 4, rid(ix, iy, iz + 1), 5});
          } else if (wrap && zz > 1) {
            bp.wires.push_back({me, 4, rid(ix, iy, 0), 5});
          }
        }
      }
    }
  }
  const std::uint32_t ep_base = 2 * dims;
  for (std::uint32_t r = 0; r < bp.num_routers; ++r) {
    for (std::uint32_t c = 0; c < s.concentration; ++c) {
      bp.attachments.push_back({r, ep_base + c});
    }
  }
  return bp;
}

Blueprint plan_fattree(const TopologySpec& s) {
  Blueprint bp;
  if (s.leaves == 0 || s.spines == 0 || s.down == 0) {
    throw ConfigError("fat tree: leaves, spines, down must be >= 1");
  }
  bp.num_routers = s.leaves + s.spines;
  bp.radix = std::max(s.down + s.spines, s.leaves);
  // Routers 0..leaves-1 are leaves; leaves..leaves+spines-1 are spines.
  // Leaf ports: 0..down-1 endpoints, down..down+spines-1 up-links.
  // Spine j port l connects to leaf l.
  for (std::uint32_t l = 0; l < s.leaves; ++l) {
    for (std::uint32_t j = 0; j < s.spines; ++j) {
      bp.wires.push_back({l, s.down + j, s.leaves + j, l});
    }
    for (std::uint32_t c = 0; c < s.down; ++c) {
      bp.attachments.push_back({l, c});
    }
  }
  return bp;
}

Blueprint plan_dragonfly(const TopologySpec& s) {
  Blueprint bp;
  const std::uint32_t g = s.groups;
  const std::uint32_t a = s.group_routers;
  const std::uint32_t h = s.global_per_router;
  const std::uint32_t c = s.group_conc;
  if (g < 2 || a == 0 || h == 0 || c == 0) {
    throw ConfigError("dragonfly: need groups >= 2, routers/conc/global >= 1");
  }
  if (a * h != g - 1) {
    throw ConfigError(
        "dragonfly: requires group_routers * global_per_router == groups-1 "
        "(balanced palm-tree wiring), got " +
        std::to_string(a) + "*" + std::to_string(h) +
        " != " + std::to_string(g - 1));
  }
  bp.num_routers = g * a;
  // Ports per router: (a-1) local + h global + c endpoints.
  bp.radix = (a - 1) + h + c;
  auto rid = [&](std::uint32_t grp, std::uint32_t r) { return grp * a + r; };
  // Local all-to-all inside each group.  Port convention on router r:
  // local ports 0..a-2 connect to the other routers in index order.
  auto local_port = [&](std::uint32_t me, std::uint32_t other) {
    return other < me ? other : other - 1;
  };
  for (std::uint32_t grp = 0; grp < g; ++grp) {
    for (std::uint32_t r1 = 0; r1 < a; ++r1) {
      for (std::uint32_t r2 = r1 + 1; r2 < a; ++r2) {
        bp.wires.push_back({rid(grp, r1), local_port(r1, r2), rid(grp, r2),
                            local_port(r2, r1)});
      }
    }
  }
  // Palm-tree global wiring: group G's global index j (0..g-2) — carried
  // by router j/h on its global port j%h — connects to group (G+j+1)%g,
  // which sees the same cable as its global index g-2-j.
  for (std::uint32_t grp = 0; grp < g; ++grp) {
    for (std::uint32_t j = 0; j + 1 < g; ++j) {
      const std::uint32_t target = (grp + j + 1) % g;
      if (target < grp) continue;  // add each cable once
      const std::uint32_t jt = g - 2 - j;
      bp.wires.push_back({rid(grp, j / h), (a - 1) + j % h,
                          rid(target, jt / h), (a - 1) + jt % h});
    }
  }
  const std::uint32_t ep_base = (a - 1) + h;
  for (std::uint32_t r = 0; r < bp.num_routers; ++r) {
    for (std::uint32_t e = 0; e < c; ++e) {
      bp.attachments.push_back({r, ep_base + e});
    }
  }
  return bp;
}

Blueprint plan(const TopologySpec& s) {
  switch (s.kind) {
    case TopologySpec::Kind::kMesh2D:
      return plan_mesh(s, /*wrap=*/false, /*three_d=*/false);
    case TopologySpec::Kind::kTorus2D:
      return plan_mesh(s, /*wrap=*/true, /*three_d=*/false);
    case TopologySpec::Kind::kTorus3D:
      return plan_mesh(s, /*wrap=*/true, /*three_d=*/true);
    case TopologySpec::Kind::kFatTree:
      return plan_fattree(s);
    case TopologySpec::Kind::kDragonfly:
      return plan_dragonfly(s);
  }
  throw ConfigError("topology: unknown kind");
}

std::uint64_t route_hash(std::uint32_t router, std::uint32_t node,
                         std::uint64_t seed) {
  rng::SplitMix64 h(seed ^ (static_cast<std::uint64_t>(router) << 32) ^
                    node);
  return h.next();
}

}  // namespace

std::uint32_t TopologySpec::expected_nodes() const {
  switch (kind) {
    case Kind::kMesh2D:
    case Kind::kTorus2D:
      return x * y * concentration;
    case Kind::kTorus3D:
      return x * y * z * concentration;
    case Kind::kFatTree:
      return leaves * down;
    case Kind::kDragonfly:
      return groups * group_routers * group_conc;
  }
  return 0;
}

Topology build_topology(Simulation& sim, const TopologySpec& spec,
                        const std::vector<NetEndpoint*>& endpoints) {
  const Blueprint bp = plan(spec);
  if (endpoints.size() != bp.attachments.size()) {
    throw ConfigError("topology expects " +
                      std::to_string(bp.attachments.size()) +
                      " endpoints, got " + std::to_string(endpoints.size()));
  }
  const auto num_nodes = static_cast<std::uint32_t>(endpoints.size());
  const SimTime link_latency = UnitAlgebra(spec.link_latency).to_simtime();

  // Create routers.
  Topology topo;
  topo.num_nodes = num_nodes;
  topo.routers.reserve(bp.num_routers);
  for (std::uint32_t r = 0; r < bp.num_routers; ++r) {
    Params p;
    p.set("ports", std::to_string(bp.radix));
    p.set("bandwidth", spec.link_bandwidth);
    p.set("hop_latency", spec.hop_latency);
    topo.routers.push_back(sim.add_component<Router>(
        spec.name_prefix + std::to_string(r), p));
  }

  // Wire router <-> router and router <-> endpoint links.
  auto port_name = [](std::uint32_t p) { return "port" + std::to_string(p); };
  for (const auto& w : bp.wires) {
    sim.connect(topo.routers[w.ra]->name(), port_name(w.pa),
                topo.routers[w.rb]->name(), port_name(w.pb), link_latency);
  }
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    const auto& at = bp.attachments[n];
    sim.connect(endpoints[n]->name(), "net", topo.routers[at.router]->name(),
                port_name(at.port), link_latency);
    endpoints[n]->set_node_id(n);
    endpoints[n]->set_num_nodes(num_nodes);
    endpoints[n]->set_valiant(spec.routing ==
                              TopologySpec::Routing::kValiant);
  }

  // Per-router local-node sets (terminates Valiant phase 1).
  {
    std::vector<std::vector<bool>> local(
        bp.num_routers, std::vector<bool>(num_nodes, false));
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      local[bp.attachments[n].router][n] = true;
    }
    for (std::uint32_t r = 0; r < bp.num_routers; ++r) {
      topo.routers[r]->set_local_nodes(std::move(local[r]));
    }
  }

  // Router adjacency for BFS: adjacency[r] = list of (port, neighbour).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adjacency(
      bp.num_routers);
  for (const auto& w : bp.wires) {
    adjacency[w.ra].emplace_back(w.pa, w.rb);
    adjacency[w.rb].emplace_back(w.pb, w.ra);
  }
  for (auto& adj : adjacency) std::sort(adj.begin(), adj.end());

  // Per-destination-router BFS distances.
  std::vector<std::uint32_t> router_of_node(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    router_of_node[n] = bp.attachments[n].router;
  }
  constexpr std::uint32_t kInf = ~0U;
  std::vector<std::vector<std::uint32_t>> dist(
      bp.num_routers, std::vector<std::uint32_t>(bp.num_routers, kInf));
  for (std::uint32_t d = 0; d < bp.num_routers; ++d) {
    auto& dd = dist[d];
    dd[d] = 0;
    std::deque<std::uint32_t> frontier{d};
    while (!frontier.empty()) {
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      for (const auto& [port, nbr] : adjacency[v]) {
        (void)port;
        if (dd[nbr] == kInf) {
          dd[nbr] = dd[v] + 1;
          frontier.push_back(nbr);
        }
      }
    }
  }

  // Routing tables: route[node] on router r, plus the full minimal
  // candidate sets that let routers reroute around failed ports.
  for (std::uint32_t r = 0; r < bp.num_routers; ++r) {
    std::vector<std::uint8_t> table(num_nodes, 0);
    std::vector<std::vector<std::uint8_t>> cands(num_nodes);
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      const std::uint32_t dr = router_of_node[n];
      if (dr == r) {
        table[n] = static_cast<std::uint8_t>(bp.attachments[n].port);
        cands[n] = {table[n]};
        continue;
      }
      if (dist[dr][r] == kInf) {
        throw ConfigError("topology: router graph is disconnected");
      }
      // Minimal next hops; hashed equal-cost selection.
      std::vector<std::uint32_t> candidates;
      for (const auto& [port, nbr] : adjacency[r]) {
        if (dist[dr][nbr] + 1 == dist[dr][r]) candidates.push_back(port);
      }
      if (candidates.empty()) {
        throw ConfigError("topology: no minimal route (internal error)");
      }
      const std::uint64_t pick = route_hash(r, n, spec.seed);
      table[n] = static_cast<std::uint8_t>(
          candidates[pick % candidates.size()]);
      // Preference order: the hashed pick first, the rest ascending.
      cands[n].push_back(table[n]);
      for (const std::uint32_t port : candidates) {
        if (port != table[n]) {
          cands[n].push_back(static_cast<std::uint8_t>(port));
        }
      }
    }
    topo.routers[r]->set_route_table(std::move(table));
    topo.routers[r]->set_route_candidates(std::move(cands));
  }

  // Diameter / average hops over node pairs (router part only).
  std::uint64_t hop_sum = 0;
  std::uint64_t pairs = 0;
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    for (std::uint32_t j = 0; j < num_nodes; ++j) {
      if (i == j) continue;
      const std::uint32_t hops = dist[router_of_node[j]][router_of_node[i]];
      topo.diameter = std::max(topo.diameter, hops);
      hop_sum += hops;
      ++pairs;
    }
  }
  topo.avg_hops =
      pairs > 0 ? static_cast<double>(hop_sum) / static_cast<double>(pairs)
                : 0.0;
  return topo;
}

}  // namespace sst::net
