// TrafficGenerator: open-loop synthetic traffic endpoint for load-latency
// sweeps (the classic topology-evaluation methodology: offered load on the
// x-axis, mean packet/message latency on the y-axis, saturation where the
// curve turns vertical).
//
// Params (in addition to NetEndpoint's):
//   pattern     uniform | transpose | neighbor | hotspot | tornado
//               (default uniform; tornado sends to id + tornado_stride,
//               the classic adversarial permutation for minimal routing)
//   msg_bytes   message size                               (default 512)
//   load        offered load as a fraction of injection_bw (default 0.1)
//   warmup      statistics ignore messages posted earlier  (default "5us")
//   hotspot_fraction  fraction of traffic to node 0        (default 0.2)
//
// The generator runs until the simulation's end_time (it is not a primary
// component).
#pragma once

#include "core/component.h"
#include "net/endpoint.h"

namespace sst::net {

class TrafficGenerator final : public NetEndpoint {
 public:
  explicit TrafficGenerator(Params& params);

  void setup() override;

  /// Mean measured (post-warmup) message latency in ps; 0 when nothing
  /// was measured.
  [[nodiscard]] double mean_latency_ps() const {
    return measured_latency_->mean();
  }
  [[nodiscard]] std::uint64_t measured_messages() const {
    return measured_latency_->count();
  }
  [[nodiscard]] std::uint64_t delivered_bytes() const {
    return delivered_bytes_->count();
  }

 private:
  enum class Pattern { kUniform, kTranspose, kNeighbor, kHotspot, kTornado };

  void on_message(NodeId src, std::uint64_t bytes, std::uint64_t tag,
                  SimTime msg_start) override;
  void generate();
  [[nodiscard]] NodeId pick_destination();
  [[nodiscard]] SimTime next_gap();

  Link* timer_;
  Pattern pattern_;
  std::uint64_t msg_bytes_;
  double load_;
  double inj_bw_bytes_per_ps_;
  SimTime warmup_;
  double hotspot_fraction_;
  std::uint32_t tornado_stride_;

  Accumulator* measured_latency_;
  Counter* delivered_bytes_;
};

}  // namespace sst::net
