// Communication motifs: MPI-skeleton endpoints that reproduce the
// message-passing signatures of production applications (the layer the
// bandwidth-degradation study runs on).
//
// Execution model is bulk-synchronous: every motif is a little state
// machine driven by step(), which is re-entered whenever its current
// blocking condition (a compute delay or an awaited set of messages)
// resolves.  Motifs are primary components: the simulation ends when all
// of them have finished their iterations.
#pragma once

#include <cstdint>
#include <map>

#include "core/component.h"
#include "net/endpoint.h"

namespace sst::net {

class MotifEndpoint : public NetEndpoint {
 public:
  [[nodiscard]] bool motif_finished() const { return finished_; }
  /// Simulated time this rank finished (valid once motif_finished()).
  [[nodiscard]] SimTime completion_time() const { return completion_time_; }

  void setup() override;

  void serialize_state(ckpt::Serializer& s) override;

 protected:
  explicit MotifEndpoint(Params& params);

  /// The motif state machine.  Called at start and after each blocking
  /// condition resolves; must end by calling exactly one of
  /// compute_for() / await_messages() / motif_done().
  virtual void step() = 0;

  /// Blocks the state machine for `duration`, then re-enters step().
  void compute_for(SimTime duration);

  /// Blocks until `count` messages with tag `tag` have arrived (messages
  /// that arrived early are counted), then re-enters step().
  void await_messages(std::uint64_t tag, std::uint32_t count);

  /// Marks this rank's motif complete.
  void motif_done();

 private:
  void on_message(NodeId src, std::uint64_t bytes, std::uint64_t tag,
                  SimTime msg_start) final;
  void check_await();
  void enter_step();

  /// Hook for subclasses that want per-message visibility.
  virtual void on_motif_message(NodeId src, std::uint64_t bytes,
                                std::uint64_t tag) {
    (void)src;
    (void)bytes;
    (void)tag;
  }

  Link* timer_;
  bool started_ = false;
  bool finished_ = false;
  bool in_step_ = false;
  bool blocked_set_ = false;  // step() installed its next condition
  SimTime completion_time_ = 0;

  bool awaiting_ = false;
  std::uint64_t await_tag_ = 0;
  std::uint32_t await_need_ = 0;
  std::map<std::uint64_t, std::uint32_t> arrived_;

  Accumulator* compute_time_;
};

/// Rank 0 and 1 bounce a message back and forth; other ranks idle.
/// Params: iterations (100), msg_bytes (8)
class PingPongMotif final : public MotifEndpoint {
 public:
  explicit PingPongMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;

  std::uint32_t iterations_;
  std::uint64_t msg_bytes_;
  std::uint32_t iter_ = 0;
  unsigned phase_ = 0;
};

/// 3-D periodic halo exchange on a px*py*pz process grid:
/// per iteration, exchange one message with each of 6 face neighbours,
/// then compute.
/// Params: px, py, pz (grid; px*py*pz == num_nodes), msg_bytes (64KiB),
///         compute ("10us"), iterations (10)
class HaloExchangeMotif final : public MotifEndpoint {
 public:
  explicit HaloExchangeMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;
  [[nodiscard]] NodeId neighbor(int dim, int dir) const;

  std::uint32_t px_, py_, pz_;
  std::uint64_t msg_bytes_;
  SimTime compute_;
  std::uint32_t iterations_;
  std::uint32_t iter_ = 0;
  unsigned phase_ = 0;
};

/// Recursive-doubling allreduce (requires power-of-two node count).
/// Params: msg_bytes (8), iterations (100), compute ("1us")
class AllreduceMotif final : public MotifEndpoint {
 public:
  explicit AllreduceMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;

  std::uint64_t msg_bytes_;
  std::uint32_t iterations_;
  SimTime compute_;
  std::uint32_t log2_nodes_ = 0;
  std::uint32_t iter_ = 0;
  std::uint32_t round_ = 0;
  unsigned phase_ = 0;
};

/// Every rank sends a personalized message to every other rank, then
/// computes.  Params: msg_bytes (4KiB), iterations (10), compute ("10us")
class AllToAllMotif final : public MotifEndpoint {
 public:
  explicit AllToAllMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;

  std::uint64_t msg_bytes_;
  std::uint32_t iterations_;
  SimTime compute_;
  std::uint32_t iter_ = 0;
  unsigned phase_ = 0;
};

/// Wavefront sweep (Sweep3D-style): ranks form a px*py pipeline; each
/// rank waits for its west and north inputs, computes, then feeds east
/// and south.  Successive sweeps pipeline through the grid, so the motif
/// measures both fill latency and steady-state wavefront throughput.
/// Params: px, py (px*py == num_nodes), msg_bytes (16KiB),
///         compute ("20us"), sweeps (8)
class SweepMotif final : public MotifEndpoint {
 public:
  explicit SweepMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;

  std::uint32_t px_, py_;
  std::uint64_t msg_bytes_;
  SimTime compute_;
  std::uint32_t sweeps_;
  std::uint32_t sweep_ = 0;
  unsigned phase_ = 0;
};

/// Composite application profile: per timestep, compute, then a 3-D halo
/// exchange (optional), then a number of small allreduce-style global
/// phases (optional).  Parameterized to mimic the communication signature
/// of production codes (CTH, SAGE, xNOBEL, Charon in the bandwidth study).
/// Params: px, py, pz, compute ("1ms"), halo_bytes (0 disables),
///         collective_bytes (0 disables), collective_count (1),
///         iterations (10)
class AppProfileMotif final : public MotifEndpoint {
 public:
  explicit AppProfileMotif(Params& params);

 private:
  void step() override;
  void serialize_state(ckpt::Serializer& s) override;
  [[nodiscard]] NodeId neighbor(int dim, int dir) const;

  std::uint32_t px_, py_, pz_;
  SimTime compute_;
  std::uint64_t halo_bytes_;
  std::uint64_t collective_bytes_;
  std::uint32_t collective_count_;
  std::uint32_t iterations_;
  std::uint32_t log2_nodes_ = 0;

  std::uint32_t iter_ = 0;
  std::uint32_t collective_i_ = 0;
  std::uint32_t round_ = 0;
  unsigned phase_ = 0;
};

}  // namespace sst::net
