// Topology builders: instantiate routers, wire them to each other and to
// caller-provided endpoints, and install minimal routing tables.
//
// Supported topologies:
//   kMesh2D    x*y routers, no wraparound
//   kTorus2D   x*y routers with wraparound
//   kTorus3D   x*y*z routers with wraparound
//   kFatTree   two-level: `leaves` leaf switches (each `down` endpoints,
//              one up-link per spine) and `spines` spine switches
//   kDragonfly `groups` groups of `group_routers` fully-connected routers,
//              palm-tree global wiring (requires
//              group_routers * global_per_router == groups - 1)
//
// Routing: per-destination BFS shortest paths; equal-cost choices are
// broken by a deterministic hash of (router, destination node, seed), so
// fat-tree up-links and torus quadrants load-balance without adaptivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "net/endpoint.h"
#include "net/router.h"

namespace sst::net {

struct TopologySpec {
  enum class Kind { kMesh2D, kTorus2D, kTorus3D, kFatTree, kDragonfly };
  enum class Routing { kMinimal, kValiant };
  Kind kind = Kind::kTorus2D;
  /// kMinimal: hashed-ECMP shortest paths.  kValiant: every message is
  /// routed minimally to a random intermediate node and then minimally to
  /// its destination (adversarial-pattern immunity at 2x path length).
  Routing routing = Routing::kMinimal;

  // Mesh / torus.
  std::uint32_t x = 4, y = 4, z = 1;
  std::uint32_t concentration = 1;  // endpoints per router

  // Fat tree.
  std::uint32_t leaves = 4, spines = 2, down = 4;

  // Dragonfly.
  std::uint32_t groups = 5, group_routers = 2, group_conc = 1,
                global_per_router = 2;

  std::string link_bandwidth = "10GB/s";
  std::string link_latency = "20ns";
  std::string hop_latency = "50ns";
  std::uint64_t seed = 1;
  std::string name_prefix = "rtr";

  /// Endpoints this topology expects (must match the endpoint list given
  /// to build_topology).
  [[nodiscard]] std::uint32_t expected_nodes() const;
};

struct Topology {
  std::uint32_t num_nodes = 0;
  std::vector<Router*> routers;
  /// Network diameter in router hops (max over node pairs).
  std::uint32_t diameter = 0;
  /// Average shortest-path router hops over all node pairs.
  double avg_hops = 0.0;
};

/// Builds the topology into `sim`.  `endpoints` must contain exactly
/// spec.expected_nodes() endpoints, each with an unconnected "net" port;
/// they are assigned node ids 0..N-1 in order.
Topology build_topology(Simulation& sim, const TopologySpec& spec,
                        const std::vector<NetEndpoint*>& endpoints);

}  // namespace sst::net
