#include "net/net_lib.h"

#include "core/factory.h"
#include "ckpt/event_registry.h"
#include "ckpt/serializer.h"

namespace sst::net {

void PacketEvent::ckpt_fields(ckpt::Serializer& s) {
  s & src_ & dst_ & via_ & bytes_ & msg_id_ & msg_bytes_ & is_tail_ & tag_ &
      msg_start_ & hops_ & pkt_seq_ & kind_;
}

void PortFaultEvent::ckpt_fields(ckpt::Serializer& s) {
  s & port_ & fail_;
}

namespace {

void register_ckpt_events() {
  auto& r = ckpt::EventRegistry::instance();
  r.register_type("net.Packet", [] {
    return std::make_unique<PacketEvent>(0, 0, 0, 0, 0, false, 0, 0);
  });
  r.register_type("net.PortFault", [] {
    return std::make_unique<PortFaultEvent>(0, false);
  });
}

}  // namespace

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    auto reg = [&f](const std::string& type, auto maker) {
      f.register_component(
          type, [maker](Simulation& sim, const std::string& name,
                        Params& p) -> Component* { return maker(sim, name, p); });
    };
    reg("net.Router", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<Router>(n, p));
    });
    reg("net.TrafficGenerator",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<TrafficGenerator>(n, p));
        });
    reg("net.PingPong", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<PingPongMotif>(n, p));
    });
    reg("net.HaloExchange",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<HaloExchangeMotif>(n, p));
        });
    reg("net.Allreduce", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllreduceMotif>(n, p));
    });
    reg("net.AllToAll", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllToAllMotif>(n, p));
    });
    reg("net.Sweep", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<SweepMotif>(n, p));
    });
    reg("net.AppProfile",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<AppProfileMotif>(n, p));
        });
    register_ckpt_events();
    return true;
  }();
  (void)once;
}

}  // namespace sst::net
