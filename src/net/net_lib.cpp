#include "net/net_lib.h"

#include "core/factory.h"

namespace sst::net {

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    auto reg = [&f](const std::string& type, auto maker) {
      f.register_component(
          type, [maker](Simulation& sim, const std::string& name,
                        Params& p) -> Component* { return maker(sim, name, p); });
    };
    reg("net.Router", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<Router>(n, p));
    });
    reg("net.TrafficGenerator",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<TrafficGenerator>(n, p));
        });
    reg("net.PingPong", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<PingPongMotif>(n, p));
    });
    reg("net.HaloExchange",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<HaloExchangeMotif>(n, p));
        });
    reg("net.Allreduce", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllreduceMotif>(n, p));
    });
    reg("net.AllToAll", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllToAllMotif>(n, p));
    });
    reg("net.Sweep", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<SweepMotif>(n, p));
    });
    reg("net.AppProfile",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<AppProfileMotif>(n, p));
        });
    return true;
  }();
  (void)once;
}

}  // namespace sst::net
