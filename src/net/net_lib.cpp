#include "net/net_lib.h"

#include "core/factory.h"
#include "ckpt/event_registry.h"
#include "ckpt/serializer.h"
#include "net/hotspot.h"

namespace sst::net {

void PacketEvent::ckpt_fields(ckpt::Serializer& s) {
  s & src_ & dst_ & via_ & bytes_ & msg_id_ & msg_bytes_ & is_tail_ & tag_ &
      msg_start_ & hops_ & pkt_seq_ & kind_;
}

void PortFaultEvent::ckpt_fields(ckpt::Serializer& s) {
  s & port_ & fail_;
}

namespace {

void register_ckpt_events() {
  auto& r = ckpt::EventRegistry::instance();
  r.register_type("net.Packet", [] {
    return std::make_unique<PacketEvent>(0, 0, 0, 0, 0, false, 0, 0);
  });
  r.register_type("net.PortFault", [] {
    return std::make_unique<PortFaultEvent>(0, false);
  });
  r.register_type("net.HotspotToken",
                  [] { return std::make_unique<HotspotTokenEvent>(0); });
}

}  // namespace

void register_library() {
  static const bool once = [] {
    Factory& f = Factory::instance();
    auto reg = [&f](const std::string& type, auto maker) {
      f.register_component(
          type, [maker](Simulation& sim, const std::string& name,
                        Params& p) -> Component* { return maker(sim, name, p); });
    };
    reg("net.Router", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<Router>(n, p));
    });
    reg("net.TrafficGenerator",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<TrafficGenerator>(n, p));
        });
    reg("net.PingPong", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<PingPongMotif>(n, p));
    });
    reg("net.HaloExchange",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<HaloExchangeMotif>(n, p));
        });
    reg("net.Allreduce", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllreduceMotif>(n, p));
    });
    reg("net.AllToAll", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<AllToAllMotif>(n, p));
    });
    reg("net.Sweep", [](Simulation& sim, const std::string& n, Params& p) {
      return static_cast<Component*>(sim.add_component<SweepMotif>(n, p));
    });
    reg("net.AppProfile",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(
              sim.add_component<AppProfileMotif>(n, p));
        });
    reg("net.HotspotPhold",
        [](Simulation& sim, const std::string& n, Params& p) {
          return static_cast<Component*>(sim.add_component<HotspotNode>(n, p));
        });
    // Shared NetEndpoint knobs, re-attached to every endpoint type.
    const std::vector<ParamDoc> endpoint_docs = {
        {"injection_bw", "endpoint injection bandwidth", "3.2GB/s"},
        {"mtu", "packet payload size in bytes", "2048"},
        {"ack", "end-to-end ACK/retry protocol", "false"},
        {"retry_max", "delivery attempts before delivery_failed", "4"},
        {"retry_timeout", "initial retry timeout", "500us"},
        {"retry_backoff", "timeout multiplier per retry", "2"},
    };
    auto doc_endpoint = [&f, &endpoint_docs](const std::string& type,
                                             std::vector<ParamDoc> own) {
      own.insert(own.end(), endpoint_docs.begin(), endpoint_docs.end());
      f.describe_params(type, std::move(own));
    };
    f.describe_params("net.Router", {
        {"ports", "number of router ports", ""},
        {"bandwidth", "per-port link bandwidth", "10GB/s"},
        {"hop_latency", "per-hop forwarding latency", "50ns"},
        {"ttl", "deflection-routing hop budget", "64"},
    });
    doc_endpoint("net.TrafficGenerator", {
        {"pattern",
         "uniform | transpose | neighbor | hotspot | tornado", "uniform"},
        {"msg_bytes", "message size in bytes", "512"},
        {"load", "offered load fraction (0, 1.5]", "0.1"},
        {"warmup", "measurement warmup time", "5us"},
        {"hotspot_fraction", "traffic share aimed at the hotspot", "0.2"},
        {"tornado_stride", "tornado pattern stride", "3"},
    });
    doc_endpoint("net.PingPong", {
        {"iterations", "round trips to complete", "100"},
        {"msg_bytes", "message size in bytes", "8"},
    });
    doc_endpoint("net.HaloExchange", {
        {"px", "process grid extent x", "2"},
        {"py", "process grid extent y", "2"},
        {"pz", "process grid extent z", "1"},
        {"msg_bytes", "halo face size in bytes", "65536"},
        {"compute", "compute phase per iteration", "10us"},
        {"iterations", "halo-exchange iterations", "10"},
    });
    doc_endpoint("net.Allreduce", {
        {"iterations", "allreduce rounds", "100"},
        {"msg_bytes", "contribution size in bytes", "8"},
        {"compute", "compute phase per round", "1us"},
    });
    doc_endpoint("net.AllToAll", {
        {"iterations", "all-to-all rounds", "10"},
        {"msg_bytes", "per-peer message size in bytes", "4096"},
        {"compute", "compute phase per round", "10us"},
    });
    doc_endpoint("net.Sweep", {
        {"px", "process grid extent x", "2"},
        {"py", "process grid extent y", "2"},
        {"msg_bytes", "wavefront message size in bytes", "16384"},
        {"compute", "compute phase per sweep step", "20us"},
        {"sweeps", "wavefront sweeps to run", "8"},
    });
    f.describe_params("net.HotspotPhold", {
        {"x", "this node's torus coordinate x", "0"},
        {"y", "this node's torus coordinate y", "0"},
        {"size_x", "torus extent x", "8"},
        {"size_y", "torus extent y", "8"},
        {"min_delay", "forwarding delay quantum", "20ns"},
        {"self_delay", "per-service-hop self-link latency", "5ns"},
        {"service_hops", "self-bounces per token in the hot zone", "8"},
        {"hot_span", "hot-zone radius (torus Chebyshev)", "1"},
        {"bias_pct", "percent of forwards aimed at the hot center", "75"},
        {"drift_period", "time between hot-center steps", "200us"},
        {"initial_tokens", "tokens this node emits in setup()", "2"},
    });
    doc_endpoint("net.AppProfile", {
        {"px", "process grid extent x", "2"},
        {"py", "process grid extent y", "2"},
        {"pz", "process grid extent z", "1"},
        {"compute", "compute phase per iteration", "1ms"},
        {"halo_bytes", "halo exchanged per iteration", "0"},
        {"collective_bytes", "collective payload per iteration", "0"},
        {"collective_count", "collectives per iteration", "1"},
        {"iterations", "profile iterations", "10"},
    });
    register_ckpt_events();
    return true;
  }();
  (void)once;
}

}  // namespace sst::net
