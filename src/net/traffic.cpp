#include "net/traffic.h"

#include <algorithm>
#include <cmath>

namespace sst::net {

TrafficGenerator::TrafficGenerator(Params& params) : NetEndpoint(params) {
  const std::string pat = params.find("pattern", "uniform");
  if (pat == "uniform") {
    pattern_ = Pattern::kUniform;
  } else if (pat == "transpose") {
    pattern_ = Pattern::kTranspose;
  } else if (pat == "neighbor") {
    pattern_ = Pattern::kNeighbor;
  } else if (pat == "hotspot") {
    pattern_ = Pattern::kHotspot;
  } else if (pat == "tornado") {
    pattern_ = Pattern::kTornado;
  } else {
    throw ConfigError("traffic '" + name() + "': unknown pattern '" + pat +
                      "' (known: uniform, transpose, neighbor, hotspot, "
                      "tornado)");
  }
  msg_bytes_ = params.find<std::uint64_t>("msg_bytes", 512);
  load_ = params.find<double>("load", 0.1);
  if (load_ <= 0.0 || load_ > 1.5) {
    throw ConfigError("traffic '" + name() + "': load must be in (0, 1.5]");
  }
  inj_bw_bytes_per_ps_ =
      params.find<UnitAlgebra>("injection_bw", UnitAlgebra("3.2GB/s"))
          .to_bytes_per_second() /
      1e12;
  warmup_ = params.find_time("warmup", "5us");
  hotspot_fraction_ = params.find<double>("hotspot_fraction", 0.2);
  tornado_stride_ = params.find<std::uint32_t>("tornado_stride", 3);

  timer_ = configure_self_link("gen", 1,
                               [this](EventPtr) { generate(); });

  measured_latency_ = stat_accumulator("measured_latency_ps");
  delivered_bytes_ = stat_counter("delivered_bytes");
}

void TrafficGenerator::setup() {
  // Desynchronize sources a little so cold-start bursts don't align.
  timer_->send(std::make_unique<NullEvent>(), next_gap() / 4);
}

SimTime TrafficGenerator::next_gap() {
  // Offered load: msg_bytes / gap = load * injection_bw.
  const double mean_ps = static_cast<double>(msg_bytes_) /
                         (load_ * inj_bw_bytes_per_ps_);
  const double gap = rng::exponential(rng(), mean_ps);
  return std::max<SimTime>(1, static_cast<SimTime>(gap));
}

NodeId TrafficGenerator::pick_destination() {
  const std::uint32_t n = num_nodes();
  if (n < 2) {
    throw SimulationError("traffic '" + name() + "': need >= 2 nodes");
  }
  switch (pattern_) {
    case Pattern::kUniform: {
      NodeId d;
      do {
        d = static_cast<NodeId>(rng().next_bounded(n));
      } while (d == node_id());
      return d;
    }
    case Pattern::kTranspose: {
      const NodeId d = (node_id() + n / 2) % n;
      return d == node_id() ? (d + 1) % n : d;
    }
    case Pattern::kNeighbor:
      return (node_id() + 1) % n;
    case Pattern::kHotspot: {
      if (node_id() != 0 &&
          rng().next_double() < hotspot_fraction_) {
        return 0;
      }
      NodeId d;
      do {
        d = static_cast<NodeId>(rng().next_bounded(n));
      } while (d == node_id());
      return d;
    }
    case Pattern::kTornado: {
      const NodeId d = (node_id() + tornado_stride_) % n;
      return d == node_id() ? (d + 1) % n : d;
    }
  }
  return 0;
}

void TrafficGenerator::generate() {
  send_message(pick_destination(), msg_bytes_, /*tag=*/0);
  timer_->send(std::make_unique<NullEvent>(), next_gap());
}

void TrafficGenerator::on_message(NodeId /*src*/, std::uint64_t bytes,
                                  std::uint64_t /*tag*/, SimTime msg_start) {
  if (msg_start >= warmup_) {
    measured_latency_->add(static_cast<double>(now() - msg_start));
    delivered_bytes_->add(bytes);
  }
}

}  // namespace sst::net
