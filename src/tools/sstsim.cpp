// sstsim — run a JSON-described system from the command line.
//
//   sstsim <system.json> [options]
//
// Options:
//   --stats <file>       write statistics here ("-" = stdout; default:
//                        console table on stdout)
//   --stats-format <f>   console | csv | json (default: by file extension)
//   --trace <file.json>  write a Chrome trace-event JSON of the run
//   --trace-engine       include rank-dependent sync-window spans
//   --metrics <file>     write periodic JSONL metrics snapshots
//   --metrics-period <t> snapshot period, e.g. "1ms" (default 1ms)
//   --profile-engine     engine self-profiling stats + metrics lines
//   --validate           validate the description and exit
//   --ranks <n>          override the parallel rank count
//   --end <time>         override the end time, e.g. "2ms"
//   --seed <n>           override the global seed
//   --fault-seed <n>     override the fault-injection seed
//   --override <p>=<v>   apply a ConfigGraph override (the same paths a
//                        sweep axis uses, e.g. /vm/enable=false or
//                        /components/l1/params/size=64KiB); repeatable
//   --sync-mode <mode>   parallel synchronization protocol:
//                        conservative (default, byte-identical results),
//                        adaptive (byte-identical results, windows grow
//                        from engine-profiling feedback), or lax (bounded
//                        timestamp skew, fewer barriers; needs --lax-skew)
//   --lax-skew <time>    max cross-rank skew under --sync-mode=lax,
//                        e.g. "2us"; late events are corrected by less
//                        than this bound
//   --sync-window-max <time>  cap on the adaptive window (default: an
//                        engine heuristic; must be >= the min link latency)
//   --watchdog <secs>    abort with diagnostics after this much wall clock
//   --checkpoint-period <t>  write a snapshot every <t> of simulated time
//   --checkpoint-wall <secs> write a snapshot every <secs> of wall clock
//   --checkpoint-dir <dir>   snapshot directory (default "ckpt")
//   --checkpoint-keep <n>    rotating retention (default 3)
//   --restart <path>     resume from a checkpoint file or directory
//                        (replaces <system.json>; outputs byte-identical
//                        to the uninterrupted run)
//   --sweep <spec.json>  run a design-space sweep (shorthand for sstdse
//                        run; children are this same binary)
//   --sweep-out <dir>    sweep output directory (default <spec>.sweep)
//   --jobs <n>           sweep worker concurrency override
//   --daemon <socket>    submit the model to the sstsimd daemon on this
//                        unix socket instead of simulating in-process;
//                        exits with the run's contract code
//   --daemon-out <dir>   request output directory for --daemon
//                        (request.json + stats.json; default ".")
//   --daemon-id <id>     explicit request id for --daemon (resubmitting
//                        a finished id replays the recorded result)
//   --list-components    print registered component types with their
//                        declared parameters and exit
//   --help               print options and the exit-code contract
//   --version            print the version and exit
//
// Exit codes:
//   0  success
//   1  runtime simulation failure
//   2  usage or configuration error
//   3  watchdog abort (wall-clock budget exceeded)
//   4  deadlock detected (queues drained, primaries unsatisfied)
//   5  restart failed (checkpoint unreadable, corrupt, version-mismatched,
//      or inconsistent with the rebuilt model)
//   6  sweep failed (one or more points failed permanently)
//   7  daemon error (sstsimd unreachable, rejected the request, or a
//      protocol failure; reserved for daemon-side faults)
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "daemon/client.h"
#include "dse/driver.h"
#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "vm/vm_lib.h"
#include "sdl/config_graph.h"

#ifndef SSTSIM_VERSION
#define SSTSIM_VERSION "dev"
#endif

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitConfig = 2;
constexpr int kExitWatchdog = 3;
constexpr int kExitDeadlock = 4;
constexpr int kExitRestartFailed = 5;
constexpr int kExitDaemon = 7;

void print_options(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " <system.json> [--stats out] [--stats-format console|csv|json]"
        " [--trace out.json] [--trace-engine]"
        " [--metrics out.jsonl] [--metrics-period TIME]"
        " [--profile-engine] [--validate]"
        " [--ranks N] [--end TIME] [--seed N] [--fault-seed N]"
        " [--override /path=value]..."
        " [--sync-mode conservative|adaptive|lax] [--lax-skew TIME]"
        " [--sync-window-max TIME]"
        " [--rebalance] [--rebalance-threshold X]"
        " [--rebalance-period N] [--rebalance-max-moves N]"
        " [--watchdog SECS]"
        " [--checkpoint-period TIME] [--checkpoint-wall SECS]"
        " [--checkpoint-dir DIR] [--checkpoint-keep N]"
        " [--list-components] [--help] [--version]\n"
     << "       " << argv0
     << " --restart <checkpoint-file-or-dir> [output/override options]\n"
     << "       " << argv0
     << " --sweep <sweep.json> [--sweep-out DIR] [--jobs N]\n"
     << "       " << argv0
     << " <system.json> --daemon SOCKET [--daemon-out DIR]"
        " [--daemon-id ID]\n";
}

int usage(const char* argv0) {
  print_options(std::cerr, argv0);
  return kExitConfig;
}

int help(const char* argv0) {
  print_options(std::cout, argv0);
  std::cout <<
      "\nCheckpointing:\n"
      "  --checkpoint-period TIME   snapshot every TIME of simulated time\n"
      "                             (parallel runs cut at sync-window\n"
      "                             barriers; must be >= the sync window)\n"
      "  --checkpoint-wall SECS     snapshot every SECS of wall clock\n"
      "  --checkpoint-dir DIR       snapshot directory (default \"ckpt\")\n"
      "  --checkpoint-keep N        keep only the newest N snapshots "
      "(default 3)\n"
      "  --restart PATH             resume from a checkpoint file or from\n"
      "                             the newest intact snapshot in a\n"
      "                             directory; a corrupt file falls back to\n"
      "                             the newest intact sibling\n"
      "\nSynchronization modes (parallel runs; see DESIGN.md):\n"
      "  --sync-mode conservative   barrier every min-link-latency window;\n"
      "                             byte-identical to serial (default)\n"
      "  --sync-mode adaptive       windows grow/shrink from barrier-wait\n"
      "                             feedback, capped by the causal bound;\n"
      "                             model results stay byte-identical\n"
      "  --sync-mode lax            ranks run ahead up to --lax-skew; late\n"
      "                             cross-rank events are corrected by less\n"
      "                             than the bound (results differ from\n"
      "                             conservative; deterministic per seed);\n"
      "                             incompatible with checkpointing\n"
      "  --lax-skew TIME            required with --sync-mode=lax\n"
      "  --sync-window-max TIME     optional cap on the adaptive window\n"
      "\nOnline repartitioning (parallel runs; see DESIGN.md):\n"
      "  --rebalance                migrate components between ranks at\n"
      "                             sync barriers when the per-epoch event\n"
      "                             imbalance exceeds the threshold; model\n"
      "                             results stay byte-identical in\n"
      "                             conservative/adaptive modes (lax\n"
      "                             rebalances more aggressively)\n"
      "  --rebalance-threshold X    max/mean event-rate ratio that\n"
      "                             triggers a pass (default 1.5)\n"
      "  --rebalance-period N       check every N sync windows "
      "(default 8)\n"
      "  --rebalance-max-moves N    component moves per pass (default 8)\n"
      "\nDesign-space sweeps:\n"
      "  --sweep SPEC               run the sweep described by SPEC: one\n"
      "                             child process per point, a crash-\n"
      "                             consistent ledger, and a Pareto report\n"
      "                             (equivalent to: sstdse run SPEC)\n"
      "  --sweep-out DIR            sweep output directory\n"
      "                             (default <spec stem>.sweep)\n"
      "  --jobs N                   sweep worker concurrency override\n"
      "\nDaemon submission (see sstsimd --help):\n"
      "  --daemon SOCKET            submit the model to the sstsimd\n"
      "                             daemon on this unix socket; the run\n"
      "                             executes in a daemon worker process\n"
      "                             and this command exits with the\n"
      "                             run's contract code below\n"
      "  --daemon-out DIR           request output directory (receives\n"
      "                             request.json + stats.json;\n"
      "                             default \".\")\n"
      "  --daemon-id ID             explicit request id; resubmitting a\n"
      "                             finished id replays the recorded\n"
      "                             result without re-running\n"
      "\nExit codes:\n"
      "  0  success\n"
      "  1  runtime simulation failure\n"
      "  2  usage or configuration error\n"
      "  3  watchdog abort (wall-clock budget exceeded)\n"
      "  4  deadlock detected (queues drained, primaries unsatisfied)\n"
      "  5  restart failed (checkpoint unreadable, corrupt,\n"
      "     version-mismatched, or inconsistent with the rebuilt model)\n"
      "  6  sweep failed (one or more points failed permanently)\n"
      "  7  daemon error (sstsimd unreachable, rejected the request, or\n"
      "     a protocol failure; reserved for daemon-side faults)\n";
  return 0;
}

/// Prints the factory registry: every component type, with its declared
/// parameters when the library documented them.
void list_components(std::ostream& os) {
  const sst::Factory& factory = sst::Factory::instance();
  for (const auto& type : factory.registered_types()) {
    os << type << "\n";
    const auto* docs = factory.param_docs(type);
    if (docs == nullptr) continue;
    for (const auto& doc : *docs) {
      os << "  " << doc.name;
      if (doc.default_value.empty()) {
        os << " (required)";
      } else {
        os << " (default " << doc.default_value << ")";
      }
      if (!doc.description.empty()) os << "  " << doc.description;
      os << "\n";
    }
  }
}

/// The sweep shorthand spawns children that are this same binary.
std::string self_path(const char* argv0) {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

/// Resolves the stats output format: explicit flag/config wins, then the
/// output file extension, then console (no file) / csv (file).
std::string resolve_stats_format(const std::string& requested,
                                 const std::string& path) {
  if (!requested.empty()) return requested;
  if (path.size() > 4 && path.rfind(".csv") == path.size() - 4) return "csv";
  if (path.size() > 5 && path.rfind(".json") == path.size() - 5) {
    return "json";
  }
  if (path.empty() || path == "-") return "console";
  return "csv";
}

void write_stats(const sst::StatisticsRegistry& stats, std::ostream& os,
                 const std::string& format) {
  if (format == "csv") {
    stats.write_csv(os);
  } else if (format == "json") {
    stats.write_json(os);
  } else {
    stats.write_console(os);
  }
}

}  // namespace

int main(int argc, char** argv) {
  sst::mem::register_library();
  sst::proc::register_library();
  sst::vm::register_library();
  sst::net::register_library();

  std::string input;
  std::string stats_path;
  std::string stats_format;
  std::string trace_path;
  std::string metrics_path;
  std::optional<std::string> metrics_period;
  bool trace_engine = false;
  bool profile_engine = false;
  bool validate_only = false;
  std::optional<unsigned> ranks;
  std::optional<std::string> end_time;
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> fault_seed;
  std::optional<std::string> sync_mode;
  std::optional<std::string> lax_skew;
  std::optional<std::string> sync_window_max;
  bool rebalance = false;
  std::optional<std::string> rebalance_threshold;
  std::optional<std::string> rebalance_period;
  std::optional<std::string> rebalance_max_moves;
  std::optional<double> watchdog;
  std::string restart_path;
  std::optional<std::string> ckpt_period;
  std::optional<double> ckpt_wall;
  std::string ckpt_dir;
  std::optional<unsigned> ckpt_keep;
  std::string sweep_path;
  std::string sweep_out;
  unsigned sweep_jobs = 0;
  std::string daemon_socket;
  std::string daemon_out;
  std::string daemon_id;
  std::vector<std::pair<std::string, std::string>> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Null when the option is missing its value; callers fall through to
    // usage() instead of dying mid-parse.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-components") {
      list_components(std::cout);
      return 0;
    }
    if (arg == "--version") {
      std::cout << "sstsim " << SSTSIM_VERSION << "\n";
      return 0;
    }
    if (arg == "--help") {
      return help(argv[0]);
    }
    try {
      if (arg == "--stats") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        stats_path = v;
      } else if (arg == "--stats-format") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        stats_format = v;
        if (stats_format != "console" && stats_format != "csv" &&
            stats_format != "json") {
          std::cerr << "unknown stats format '" << stats_format << "'\n";
          return usage(argv[0]);
        }
      } else if (arg == "--trace") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        trace_path = v;
      } else if (arg == "--trace-engine") {
        trace_engine = true;
      } else if (arg == "--metrics") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        metrics_path = v;
      } else if (arg == "--metrics-period") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        metrics_period = v;
      } else if (arg == "--profile-engine") {
        profile_engine = true;
      } else if (arg == "--validate") {
        validate_only = true;
      } else if (arg == "--ranks") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ranks = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--end") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        end_time = v;
      } else if (arg == "--seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        seed = std::stoull(v);
      } else if (arg == "--fault-seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        fault_seed = std::stoull(v);
      } else if (arg == "--override") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        const std::string kv = v;
        const auto eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::cerr << "--override expects /path=value, got '" << kv
                    << "'\n";
          return usage(argv[0]);
        }
        overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
      } else if (arg == "--sync-mode") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sync_mode = v;
      } else if (arg == "--lax-skew") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        lax_skew = v;
      } else if (arg == "--sync-window-max") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sync_window_max = v;
      } else if (arg == "--rebalance") {
        rebalance = true;
      } else if (arg == "--rebalance-threshold") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        rebalance_threshold = v;
      } else if (arg == "--rebalance-period") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        rebalance_period = v;
      } else if (arg == "--rebalance-max-moves") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        rebalance_max_moves = v;
      } else if (arg == "--watchdog") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        watchdog = std::stod(v);
      } else if (arg == "--restart") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        restart_path = v;
      } else if (arg == "--checkpoint-period") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ckpt_period = v;
      } else if (arg == "--checkpoint-wall") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ckpt_wall = std::stod(v);
      } else if (arg == "--checkpoint-dir") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ckpt_dir = v;
      } else if (arg == "--checkpoint-keep") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ckpt_keep = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--sweep") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sweep_path = v;
      } else if (arg == "--sweep-out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sweep_out = v;
      } else if (arg == "--jobs") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sweep_jobs = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--daemon") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        daemon_socket = v;
      } else if (arg == "--daemon-out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        daemon_out = v;
      } else if (arg == "--daemon-id") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        daemon_id = v;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown option " << arg << "\n";
        return usage(argv[0]);
      } else if (input.empty()) {
        input = arg;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!daemon_socket.empty()) {
    if (input.empty() || !restart_path.empty() || !sweep_path.empty() ||
        validate_only) {
      std::cerr << "--daemon submits <system.json> to a running sstsimd; "
                   "it cannot be combined with --restart/--sweep/"
                   "--validate\n";
      return kExitConfig;
    }
    std::ifstream in(input);
    if (!in) {
      std::cerr << "cannot open " << input << "\n";
      return kExitConfig;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sst::daemon::RunRequest req;
    req.id = daemon_id;
    req.model_json = buf.str();
    req.out_dir = daemon_out.empty() ? "." : daemon_out;
    if (ranks) req.ranks = *ranks;
    if (end_time) req.end_time = *end_time;
    req.seed = seed;
    if (watchdog) req.timeout_seconds = *watchdog;
    // Harness hook (see daemon/protocol.h): lets the CLI contract tests
    // make a worker die by signal deterministically.
    if (const char* ts = std::getenv("SSTSIM_DAEMON_TEST_SIGNAL")) {
      req.test_signal = std::atoi(ts);
    }
    try {
      sst::daemon::DaemonClient client(daemon_socket);
      client.send(req);
      for (;;) {
        const sst::sdl::JsonValue reply = client.next_reply();
        const std::string type = reply.get_string("type", "");
        if (type == "accepted") continue;  // wait for the outcome
        if (type == "rejected") {
          std::cerr << "daemon rejected the request: "
                    << reply.get_string("reason", "?") << "\n";
          return kExitDaemon;
        }
        if (type == "done") {
          const std::string status = reply.get_string("status", "failed");
          const int code = static_cast<int>(reply.get_number("exit", 1));
          if (status == "ok") {
            std::cerr << "daemon run ok ("
                      << reply.get_number("attempts", 1)
                      << " attempt(s)); statistics written to "
                      << reply.get_string("stats", "") << "\n";
            return 0;
          }
          std::cerr << "daemon run " << status << ": "
                    << reply.get_string("error", "") << "\n";
          return code != 0 ? code : kExitRuntime;
        }
        std::cerr << "daemon error: " << reply.get_string("error", "?")
                  << "\n";
        return kExitDaemon;
      }
    } catch (const sst::daemon::DaemonError& e) {
      std::cerr << e.what() << "\n";
      return kExitDaemon;
    }
  }
  if (!daemon_out.empty() || !daemon_id.empty()) {
    std::cerr << "--daemon-out/--daemon-id only apply together with "
                 "--daemon\n";
    return kExitConfig;
  }
  if (!sweep_path.empty()) {
    if (!input.empty() || !restart_path.empty()) {
      std::cerr << "--sweep runs a batch of child simulations; drop the "
                   "<system.json> / --restart arguments\n";
      return kExitConfig;
    }
    sst::dse::DriverOptions opts;
    opts.spec_path = sweep_path;
    opts.out_dir = sweep_out;
    opts.sstsim_path = self_path(argv[0]);
    opts.jobs = sweep_jobs;
    return sst::dse::run_sweep(opts, std::cout, std::cerr);
  }
  if (!sweep_out.empty() || sweep_jobs > 0) {
    std::cerr << "--sweep-out/--jobs only apply together with --sweep\n";
    return kExitConfig;
  }
  const bool restarting = !restart_path.empty();
  if (restarting && !input.empty()) {
    std::cerr << "--restart rebuilds the model from the system description "
                 "embedded in the checkpoint; drop the <system.json> "
                 "argument\n";
    return kExitConfig;
  }
  if (!restarting && input.empty()) return usage(argv[0]);

  sst::sdl::ConfigGraph graph;
  sst::ckpt::CheckpointData ckpt_data;
  std::string ckpt_loaded_path;
  if (restarting) {
    try {
      ckpt_data = sst::ckpt::load_checkpoint(restart_path, &ckpt_loaded_path);
    } catch (const sst::ckpt::CheckpointError& e) {
      std::cerr << "restart failed: " << e.what() << "\n";
      return kExitRestartFailed;
    }
    try {
      graph = sst::sdl::ConfigGraph::from_json_text(ckpt_data.graph_json);
    } catch (const sst::ConfigError& e) {
      std::cerr << "restart failed: " << ckpt_loaded_path
                << ": embedded system description is invalid: " << e.what()
                << "\n";
      return kExitRestartFailed;
    }
    input = ckpt_loaded_path;
  } else {
    std::ifstream in(input);
    if (!in) {
      std::cerr << "cannot open " << input << "\n";
      return kExitConfig;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      graph = sst::sdl::ConfigGraph::from_json_text(buf.str());
    } catch (const sst::ConfigError& e) {
      std::cerr << input << ": " << e.what() << "\n";
      return kExitConfig;
    }
  }
  sst::SimConfig& sc = graph.sim_config();
  if (ranks) sc.num_ranks = *ranks;
  try {
    if (end_time) sc.end_time = sst::UnitAlgebra(*end_time).to_simtime();
    if (metrics_period) {
      sc.metrics_period = sst::UnitAlgebra(*metrics_period).to_simtime();
    }
  } catch (const sst::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return kExitConfig;
  }
  if (seed) sc.seed = *seed;
  if (fault_seed) sc.fault_seed = *fault_seed;
  try {
    // Generic overrides first, then the structured flags, so an explicit
    // --sync-mode wins over an --override of the same path.
    for (const auto& [path, value] : overrides) {
      graph.apply_override(path, value);
    }
    if (sync_mode) graph.apply_override("/config/sync_mode", *sync_mode);
    if (lax_skew) graph.apply_override("/config/lax_skew", *lax_skew);
    if (sync_window_max) {
      graph.apply_override("/config/sync_window_max", *sync_window_max);
    }
    if (rebalance) graph.apply_override("/config/rebalance_mode", "on");
    if (rebalance_threshold) {
      graph.apply_override("/config/rebalance_threshold",
                           *rebalance_threshold);
    }
    if (rebalance_period) {
      graph.apply_override("/config/rebalance_period", *rebalance_period);
    }
    if (rebalance_max_moves) {
      graph.apply_override("/config/rebalance_max_moves",
                           *rebalance_max_moves);
    }
  } catch (const sst::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return kExitConfig;
  }
  if (watchdog) sc.watchdog_seconds = *watchdog;
  // CLI observability flags override the SDL "observability" section.
  if (!trace_path.empty()) sc.trace_path = trace_path;
  if (trace_engine) sc.trace_engine = true;
  if (!metrics_path.empty()) sc.metrics_path = metrics_path;
  if (profile_engine) sc.profile_engine = true;
  if (!stats_path.empty()) sc.stats_path = stats_path;
  if (!stats_format.empty()) sc.stats_format = stats_format;
  // CLI checkpoint flags override the SDL "checkpointing" section (and,
  // on restart, the cadence embedded in the checkpoint).
  try {
    if (ckpt_period) {
      sc.checkpoint_period = sst::UnitAlgebra(*ckpt_period).to_simtime();
    }
  } catch (const sst::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return kExitConfig;
  }
  if (ckpt_wall) sc.checkpoint_wall = *ckpt_wall;
  if (!ckpt_dir.empty()) sc.checkpoint_dir = ckpt_dir;
  if (ckpt_keep) sc.checkpoint_keep = *ckpt_keep;

  const auto problems = graph.validate(sst::Factory::instance());
  if (!problems.empty()) {
    std::cerr << input << ": invalid system description:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return kExitConfig;
  }
  if (validate_only) {
    std::cout << input << ": OK (" << graph.components().size()
              << " components, " << graph.links().size() << " links"
              << (graph.network().present ? ", 1 network" : "")
              << (graph.faults().empty()
                      ? ""
                      : ", " +
                            std::to_string(graph.faults().links.size() +
                                           graph.faults().ports.size()) +
                            " fault rules")
              << ")\n";
    return 0;
  }

  try {
    auto sim = graph.build();
    if (restarting) {
      sim->initialize();
      sst::ckpt::CheckpointEngine::restore(*sim, std::move(ckpt_data.state));
      std::cerr << "[sst] restored from " << ckpt_loaded_path
                << " (snapshot " << ckpt_data.seq << ", t="
                << ckpt_data.sim_time << " ps)\n";
    }
    if (sim->config().checkpoint_period > 0 ||
        sim->config().checkpoint_wall > 0) {
      sst::ckpt::install_writer(*sim, graph.to_json().dump(),
                                restarting ? ckpt_data.seq : 0);
    }
    const sst::RunStats stats = sim->run();
    std::cerr << "done: t=" << stats.final_time << " ps, "
              << stats.events_processed << " events, "
              << stats.wall_seconds << " s wall ("
              << static_cast<std::uint64_t>(stats.events_per_second())
              << " events/s)\n";
    if (stats.sync_mode == sst::SyncMode::kLax) {
      std::cerr << "lax: " << stats.lax_stragglers
                << " straggler events corrected, max observed skew "
                << stats.lax_max_skew << " ps (budget "
                << sim->config().lax_skew << " ps)\n";
    }
    if (!sc.trace_path.empty()) {
      std::cerr << "trace written to " << sc.trace_path << "\n";
    }
    if (!sc.metrics_path.empty()) {
      std::cerr << "metrics written to " << sc.metrics_path << "\n";
    }
    const std::string format =
        resolve_stats_format(sc.stats_format, sc.stats_path);
    if (sc.stats_path.empty() || sc.stats_path == "-") {
      write_stats(sim->stats(), std::cout, format);
    } else {
      std::ofstream out(sc.stats_path);
      if (!out) {
        std::cerr << "cannot write " << sc.stats_path << "\n";
        return kExitRuntime;
      }
      write_stats(sim->stats(), out, format);
      std::cerr << "statistics written to " << sc.stats_path << " ("
                << format << ")\n";
    }
  } catch (const sst::ckpt::CheckpointError& e) {
    std::cerr << "restart failed: " << e.what() << "\n";
    return kExitRestartFailed;
  } catch (const sst::WatchdogError& e) {
    std::cerr << "simulation aborted: " << e.what() << "\n";
    return kExitWatchdog;
  } catch (const sst::DeadlockError& e) {
    std::cerr << "simulation deadlocked: " << e.what() << "\n";
    return kExitDeadlock;
  } catch (const sst::ConfigError& e) {
    std::cerr << "configuration error: " << e.what() << "\n";
    return kExitConfig;
  } catch (const std::exception& e) {
    std::cerr << "simulation failed: " << e.what() << "\n";
    return kExitRuntime;
  }
  return 0;
}
