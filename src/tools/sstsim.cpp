// sstsim — run a JSON-described system from the command line.
//
//   sstsim <system.json> [options]
//
// Options:
//   --stats <file.csv>   write statistics as CSV (default: console table)
//   --validate           validate the description and exit
//   --ranks <n>          override the parallel rank count
//   --end <time>         override the end time, e.g. "2ms"
//   --seed <n>           override the global seed
//   --fault-seed <n>     override the fault-injection seed
//   --watchdog <secs>    abort with diagnostics after this much wall clock
//   --list-components    print registered component types and exit
//   --version            print the version and exit
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "sdl/config_graph.h"

#ifndef SSTSIM_VERSION
#define SSTSIM_VERSION "dev"
#endif

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <system.json> [--stats out.csv] [--validate]"
               " [--ranks N] [--end TIME] [--seed N] [--fault-seed N]"
               " [--watchdog SECS] [--list-components] [--version]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sst::mem::register_library();
  sst::proc::register_library();
  sst::net::register_library();

  std::string input;
  std::string stats_path;
  bool validate_only = false;
  std::optional<unsigned> ranks;
  std::optional<std::string> end_time;
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> fault_seed;
  std::optional<double> watchdog;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Null when the option is missing its value; callers fall through to
    // usage() instead of dying mid-parse.
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-components") {
      for (const auto& t : sst::Factory::instance().registered_types()) {
        std::cout << t << "\n";
      }
      return 0;
    }
    if (arg == "--version") {
      std::cout << "sstsim " << SSTSIM_VERSION << "\n";
      return 0;
    }
    try {
      if (arg == "--stats") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        stats_path = v;
      } else if (arg == "--validate") {
        validate_only = true;
      } else if (arg == "--ranks") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        ranks = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--end") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        end_time = v;
      } else if (arg == "--seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        seed = std::stoull(v);
      } else if (arg == "--fault-seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        fault_seed = std::stoull(v);
      } else if (arg == "--watchdog") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        watchdog = std::stod(v);
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown option " << arg << "\n";
        return usage(argv[0]);
      } else if (input.empty()) {
        input = arg;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  std::ifstream in(input);
  if (!in) {
    std::cerr << "cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  sst::sdl::ConfigGraph graph;
  try {
    graph = sst::sdl::ConfigGraph::from_json_text(buf.str());
  } catch (const sst::ConfigError& e) {
    std::cerr << input << ": " << e.what() << "\n";
    return 1;
  }
  if (ranks) graph.sim_config().num_ranks = *ranks;
  if (end_time) {
    graph.sim_config().end_time = sst::UnitAlgebra(*end_time).to_simtime();
  }
  if (seed) graph.sim_config().seed = *seed;
  if (fault_seed) graph.sim_config().fault_seed = *fault_seed;
  if (watchdog) graph.sim_config().watchdog_seconds = *watchdog;

  const auto problems = graph.validate(sst::Factory::instance());
  if (!problems.empty()) {
    std::cerr << input << ": invalid system description:\n";
    for (const auto& p : problems) std::cerr << "  - " << p << "\n";
    return 1;
  }
  if (validate_only) {
    std::cout << input << ": OK (" << graph.components().size()
              << " components, " << graph.links().size() << " links"
              << (graph.network().present ? ", 1 network" : "")
              << (graph.faults().empty()
                      ? ""
                      : ", " +
                            std::to_string(graph.faults().links.size() +
                                           graph.faults().ports.size()) +
                            " fault rules")
              << ")\n";
    return 0;
  }

  try {
    auto sim = graph.build();
    const sst::RunStats stats = sim->run();
    std::cerr << "done: t=" << stats.final_time << " ps, "
              << stats.events_processed << " events, "
              << stats.wall_seconds << " s wall ("
              << static_cast<std::uint64_t>(stats.events_per_second())
              << " events/s)\n";
    if (stats_path.empty()) {
      sim->stats().write_console(std::cout);
    } else {
      std::ofstream out(stats_path);
      if (!out) {
        std::cerr << "cannot write " << stats_path << "\n";
        return 1;
      }
      sim->stats().write_csv(out);
      std::cerr << "statistics written to " << stats_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "simulation failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
