// sstsimd — the simulation-as-a-service daemon: a persistent server
// accepting run requests over a Unix-domain socket so repeated
// simulations (DSE sweeps, CI batteries, interactive exploration) pay a
// socket round trip per run instead of a fork/exec + SDL re-parse.
//
//   sstsimd --socket PATH [options]       serve (foreground)
//   sstsimd --socket PATH --status        print a health snapshot, exit
//   sstsimd --socket PATH --drain         ask the daemon to finish its
//                                         accepted work and exit
//
// Options:
//   --socket PATH    unix-domain socket to serve on (required)
//   --state DIR      request ledger + metrics directory
//                    (default <socket>.state)
//   --workers N      pre-forked worker processes (default 4)
//   --queue N        admission queue bound; beyond it requests are shed
//                    with an explicit `rejected: overloaded` (default 64)
//   --cache N        resident parsed ConfigGraphs (default 64)
//   --verbose        per-request lifecycle notes on stderr
//   --help, --version
//
// Hardened lifecycle (see DESIGN.md "Daemon request lifecycle"): every
// request runs in a pre-forked worker process, so crashing / hanging /
// OOMing simulations cannot take the daemon down; dead workers are
// reaped, diagnosed via the sstsim exit-code contract, and respawned.
// Accepted requests are recorded in a crash-consistent ledger before
// they are acknowledged — kill -9 the daemon at any moment, restart it,
// and it completes every accepted-but-unfinished request exactly once.
//
// Exit codes:
//   0  clean drain (SIGTERM/SIGINT/--drain)
//   2  usage error
//   7  daemon error (socket in use or unreachable, unusable state dir)
#include <iostream>
#include <string>

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "mem/mem_lib.h"
#include "net/net_lib.h"
#include "proc/proc_lib.h"
#include "vm/vm_lib.h"

#ifndef SSTSIM_VERSION
#define SSTSIM_VERSION "dev"
#endif

namespace {

constexpr int kExitConfig = 2;
constexpr int kExitDaemon = 7;

void print_options(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " --socket PATH [--state DIR] [--workers N] [--queue N]"
        " [--cache N] [--verbose]\n"
     << "       " << argv0 << " --socket PATH --status\n"
     << "       " << argv0 << " --socket PATH --drain\n";
}

int usage(const char* argv0) {
  print_options(std::cerr, argv0);
  return kExitConfig;
}

int help(const char* argv0) {
  print_options(std::cout, argv0);
  std::cout <<
      "\nServe mode (foreground):\n"
      "  --socket PATH   unix-domain socket to serve on\n"
      "  --state DIR     request ledger + metrics directory\n"
      "                  (default <socket>.state)\n"
      "  --workers N     pre-forked worker processes (default 4)\n"
      "  --queue N       admission queue bound; requests beyond it are\n"
      "                  shed with `rejected: overloaded` (default 64)\n"
      "  --cache N       resident parsed ConfigGraphs (default 64)\n"
      "  --verbose       per-request lifecycle notes on stderr\n"
      "\nClient mode:\n"
      "  --status        print the daemon's health snapshot and exit\n"
      "  --drain         finish accepted work, refuse new, exit\n"
      "\nClients: sstsim <model> --daemon PATH runs one model through\n"
      "the daemon; sstdse run/resume --daemon PATH submits a sweep.\n"
      "\nExit codes:\n"
      "  0  clean drain\n"
      "  2  usage error\n"
      "  7  daemon error (socket in use or unreachable, unusable state\n"
      "     dir, protocol failure)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  sst::mem::register_library();
  sst::proc::register_library();
  sst::vm::register_library();
  sst::net::register_library();

  sst::daemon::DaemonOptions options;
  bool status = false;
  bool drain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help") return help(argv[0]);
    if (arg == "--version") {
      std::cout << "sstsimd " << SSTSIM_VERSION << "\n";
      return 0;
    }
    try {
      if (arg == "--socket") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.socket_path = v;
      } else if (arg == "--state") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.state_dir = v;
      } else if (arg == "--workers") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.workers = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--queue") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.queue_capacity = std::stoul(v);
      } else if (arg == "--cache") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.cache_capacity = std::stoul(v);
      } else if (arg == "--verbose") {
        options.verbose = true;
      } else if (arg == "--status") {
        status = true;
      } else if (arg == "--drain") {
        drain = true;
      } else {
        std::cerr << "unknown option " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "--socket is required\n";
    return usage(argv[0]);
  }

  if (status || drain) {
    try {
      sst::daemon::DaemonClient client(options.socket_path);
      const sst::sdl::JsonValue reply =
          status ? client.status() : client.drain();
      std::cout << reply.dump(2) << "\n";
      return 0;
    } catch (const sst::daemon::DaemonError& e) {
      std::cerr << e.what() << "\n";
      return kExitDaemon;
    }
  }

  try {
    sst::daemon::Daemon daemon(std::move(options));
    return daemon.run();
  } catch (const sst::daemon::DaemonError& e) {
    std::cerr << "sstsimd: " << e.what() << "\n";
    return kExitDaemon;
  } catch (const std::exception& e) {
    std::cerr << "sstsimd: " << e.what() << "\n";
    return kExitDaemon;
  }
}
