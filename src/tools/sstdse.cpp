// sstdse — design-space exploration driver: run a parameter sweep of
// sstsim processes, resume an interrupted one, and report the results.
//
//   sstdse run <sweep.json> [--out DIR] [--jobs N] [--sstsim PATH] [-q]
//   sstdse resume <sweep-dir> [--jobs N] [--sstsim PATH] [-q]
//   sstdse report <sweep-dir>
//   sstdse points <sweep.json>      list the generated points and exit
//
// `run` creates (or resumes) the sweep directory; every point executes
// as an isolated child sstsim with its own directory, watchdog timeout,
// and bounded retries, and completions are recorded in a
// crash-consistent ledger — SIGKILL the driver at any moment and
// `resume` continues without re-running finished points.
//
// Exit codes (aligned with sstsim):
//   0  success (every point completed)
//   2  usage or configuration error
//   6  sweep finished with permanently failed points
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "dse/driver.h"
#include "dse/point_gen.h"
#include "dse/sweep_spec.h"

namespace {

void print_options(std::ostream& os, const char* argv0) {
  os << "usage: " << argv0
     << " run <sweep.json> [--out DIR] [--jobs N] [--sstsim PATH]"
        " [--daemon SOCKET] [-q]\n"
     << "       " << argv0
     << " resume <sweep-dir> [--jobs N] [--sstsim PATH]"
        " [--daemon SOCKET] [-q]\n"
     << "       " << argv0 << " report <sweep-dir>\n"
     << "       " << argv0 << " points <sweep.json>\n";
}

int usage(const char* argv0) {
  print_options(std::cerr, argv0);
  return sst::dse::kSweepExitConfig;
}

int help(const char* argv0) {
  print_options(std::cout, argv0);
  std::cout <<
      "\nSubcommands:\n"
      "  run      execute the sweep (resumes when DIR already has a "
      "ledger)\n"
      "  resume   continue an interrupted sweep from its ledger\n"
      "  report   re-aggregate and print the Pareto report, run nothing\n"
      "  points   print the expanded point list and exit\n"
      "\nOptions:\n"
      "  --out DIR      sweep output directory (default <spec>.sweep)\n"
      "  --jobs N       override the spec's run.concurrency\n"
      "  --sstsim PATH  child simulator binary (default: sstsim next to\n"
      "                 this executable, then PATH)\n"
      "  --daemon SOCKET  submit points to the sstsimd daemon on this\n"
      "                 unix socket instead of fork/exec'ing children;\n"
      "                 the daemon's warm graph cache and worker pool\n"
      "                 cut per-point dispatch overhead, and resuming\n"
      "                 after a daemon restart replays completed\n"
      "                 requests from its ledger\n"
      "  -q, --quiet    suppress per-point progress lines\n"
      "\nExit codes:\n"
      "  0  success (every point completed)\n"
      "  2  usage or configuration error\n"
      "  6  sweep finished with permanently failed points\n"
      "  7  daemon error (--daemon socket unreachable or protocol "
      "failure)\n";
  return 0;
}

/// Default child binary: "sstsim" in this executable's directory, else
/// bare "sstsim" (resolved through PATH by execv's caller... which does
/// not search PATH — so the sibling lookup is the one that matters for
/// installed layouts).
std::string default_sstsim_path() {
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    const std::filesystem::path sibling =
        std::filesystem::path(buf).parent_path() / "sstsim";
    if (std::filesystem::exists(sibling)) return sibling.string();
  }
  return "sstsim";
}

int list_points(const std::string& spec_path) {
  try {
    std::ifstream in(spec_path);
    if (!in) {
      std::cerr << "cannot open " << spec_path << "\n";
      return sst::dse::kSweepExitConfig;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const sst::dse::SweepSpec spec = sst::dse::SweepSpec::from_json_text(
        buf.str(),
        std::filesystem::path(spec_path).parent_path().string());
    const auto points = sst::dse::generate_points(spec);
    std::cout << "sweep '" << spec.name << "': " << points.size()
              << " points (cross product " << spec.cross_size() << ")\n";
    for (const auto& p : points) {
      std::cout << "  point " << p.id;
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        std::cout << "  " << spec.axes[a].name << "=" << p.values[a];
      }
      std::cout << "\n";
    }
    return 0;
  } catch (const sst::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return sst::dse::kSweepExitConfig;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") return help(argv[0]);

  std::string target;
  std::string out_dir;
  std::string sstsim_path;
  std::string daemon_socket;
  unsigned jobs = 0;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    try {
      if (arg == "--out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        out_dir = v;
      } else if (arg == "--jobs") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        jobs = static_cast<unsigned>(std::stoul(v));
      } else if (arg == "--sstsim") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        sstsim_path = v;
      } else if (arg == "--daemon") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        daemon_socket = v;
      } else if (arg == "-q" || arg == "--quiet") {
        quiet = true;
      } else if (arg.rfind("-", 0) == 0) {
        std::cerr << "unknown option " << arg << "\n";
        return usage(argv[0]);
      } else if (target.empty()) {
        target = arg;
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (target.empty()) {
    std::cerr << cmd << " requires an argument\n";
    return usage(argv[0]);
  }
  if (sstsim_path.empty()) sstsim_path = default_sstsim_path();

  if (cmd == "run") {
    sst::dse::DriverOptions opts;
    opts.spec_path = target;
    opts.out_dir = out_dir;
    opts.sstsim_path = sstsim_path;
    opts.jobs = jobs;
    opts.quiet = quiet;
    opts.daemon_socket = daemon_socket;
    return sst::dse::run_sweep(opts, std::cout, std::cerr);
  }
  if (cmd == "resume") {
    return sst::dse::resume_sweep(target, sstsim_path, jobs, quiet,
                                  std::cout, std::cerr, daemon_socket);
  }
  if (cmd == "report") {
    return sst::dse::report_sweep(target, std::cout, std::cerr);
  }
  if (cmd == "points") {
    return list_points(target);
  }
  std::cerr << "unknown subcommand '" << cmd << "'\n";
  return usage(argv[0]);
}
