// Minimal from-scratch JSON reader/writer used by the SDL (system
// description language) layer.  Supports the full JSON grammar with the
// usual simulator-config conveniences: // line comments and trailing
// commas are accepted on input.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/types.h"

namespace sst::sdl {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// Thrown on malformed JSON with a line/column-annotated message.
class JsonError : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : value_(static_cast<double>(u)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object member access; throws JsonError when missing or not an object.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Object member test.
  [[nodiscard]] bool has(std::string_view key) const;
  /// Object member access with default.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Serializes; indent > 0 pretty-prints.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document.
  static JsonValue parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace sst::sdl
