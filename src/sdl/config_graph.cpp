#include "sdl/config_graph.h"

#include <algorithm>
#include <set>
#include <utility>

#include "ckpt/migrate.h"
#include "core/unit_algebra.h"
#include "fault/fault_model.h"
#include "net/router.h"

namespace sst::sdl {

namespace {

net::TopologySpec::Kind topology_kind(const std::string& name) {
  using Kind = net::TopologySpec::Kind;
  if (name == "mesh2d") return Kind::kMesh2D;
  if (name == "torus2d") return Kind::kTorus2D;
  if (name == "torus3d") return Kind::kTorus3D;
  if (name == "fattree") return Kind::kFatTree;
  if (name == "dragonfly") return Kind::kDragonfly;
  throw ConfigError("unknown network topology '" + name +
                    "' (known: mesh2d, torus2d, torus3d, fattree, "
                    "dragonfly)");
}

const char* topology_name(net::TopologySpec::Kind kind) {
  using Kind = net::TopologySpec::Kind;
  switch (kind) {
    case Kind::kMesh2D: return "mesh2d";
    case Kind::kTorus2D: return "torus2d";
    case Kind::kTorus3D: return "torus3d";
    case Kind::kFatTree: return "fattree";
    case Kind::kDragonfly: return "dragonfly";
  }
  return "?";
}

PartitionStrategy partition_from_string(const std::string& name) {
  if (name == "linear") return PartitionStrategy::kLinear;
  if (name == "roundrobin") return PartitionStrategy::kRoundRobin;
  if (name == "mincut") return PartitionStrategy::kMinCut;
  throw ConfigError("unknown partition strategy '" + name +
                    "' (known: linear, roundrobin, mincut)");
}

SyncMode sync_mode_from_string(const std::string& name) {
  if (name == "conservative") return SyncMode::kConservative;
  if (name == "adaptive") return SyncMode::kAdaptive;
  if (name == "lax") return SyncMode::kLax;
  throw ConfigError("unknown sync mode '" + name +
                    "' (known: conservative, adaptive, lax)");
}

bool rebalance_mode_from_string(const std::string& name) {
  if (name == "on") return true;
  if (name == "off") return false;
  throw ConfigError("unknown rebalance mode '" + name +
                    "' (known: on, off)");
}

const char* partition_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kLinear: return "linear";
    case PartitionStrategy::kRoundRobin: return "roundrobin";
    case PartitionStrategy::kMinCut: return "mincut";
  }
  return "?";
}

/// Reads a JSON object of scalar values into `out` as stringified params;
/// `ctx` prefixes error messages ("component 'cpu0'", "vm tlb", ...).
void read_scalar_params(const JsonValue& jp, const std::string& ctx,
                        Params& out) {
  for (const auto& [k, v] : jp.as_object()) {
    if (v.is_string()) {
      out.set(k, v.as_string());
    } else if (v.is_number()) {
      // Normalize integral numbers to integer strings.
      const double d = v.as_number();
      if (d == static_cast<double>(static_cast<long long>(d))) {
        out.set(k, std::to_string(static_cast<long long>(d)));
      } else {
        out.set(k, std::to_string(d));
      }
    } else if (v.is_bool()) {
      out.set(k, v.as_bool() ? "true" : "false");
    } else {
      throw ConfigError(ctx + " param '" + k + "' must be a scalar");
    }
  }
}

/// Fault probabilities + parsed delay bounds for one ConfigLinkFault.
/// Throws ConfigError on bad times or probabilities.
fault::LinkFaultConfig link_fault_config(const ConfigLinkFault& f) {
  fault::LinkFaultConfig cfg;
  cfg.drop_prob = f.drop;
  cfg.dup_prob = f.duplicate;
  cfg.delay_prob = f.delay;
  cfg.delay_min = UnitAlgebra(f.delay_min).to_simtime();
  cfg.delay_max = UnitAlgebra(f.delay_max).to_simtime();
  cfg.validate();
  return cfg;
}

}  // namespace

ConfigComponent& ConfigGraph::add_component(std::string name,
                                            std::string type, Params params) {
  components_.push_back(
      {std::move(name), std::move(type), std::move(params), std::nullopt});
  return components_.back();
}

ConfigLink& ConfigGraph::add_link(std::string from, std::string from_port,
                                  std::string to, std::string to_port,
                                  std::string latency) {
  links_.push_back({std::move(from), std::move(from_port), std::move(to),
                    std::move(to_port), std::move(latency), std::nullopt});
  return links_.back();
}

std::vector<std::string> ConfigGraph::validate(const Factory& factory) const {
  std::vector<std::string> problems;
  std::set<std::string> names;
  for (const auto& c : components_) {
    if (c.name.empty()) problems.push_back("component with empty name");
    if (!names.insert(c.name).second) {
      problems.push_back("duplicate component name '" + c.name + "'");
    }
    if (!factory.known(c.type)) {
      problems.push_back("component '" + c.name + "' has unknown type '" +
                         c.type + "'");
    }
    if (c.rank && *c.rank >= sim_config_.num_ranks) {
      problems.push_back("component '" + c.name + "' pinned to rank " +
                         std::to_string(*c.rank) + " but num_ranks is " +
                         std::to_string(sim_config_.num_ranks));
    }
  }
  if (network_.present) {
    if (network_.endpoints.size() != network_.spec.expected_nodes()) {
      problems.push_back(
          "network topology expects " +
          std::to_string(network_.spec.expected_nodes()) +
          " endpoints, got " + std::to_string(network_.endpoints.size()));
    }
    std::set<std::string> seen;
    for (const auto& e : network_.endpoints) {
      if (!names.contains(e)) {
        problems.push_back("network endpoint references unknown component '" +
                           e + "'");
      }
      if (!seen.insert(e).second) {
        problems.push_back("network endpoint listed twice: '" + e + "'");
      }
    }
  }
  if (vm_.present && vm_.enable) {
    const bool any_tlb = std::any_of(
        components_.begin(), components_.end(),
        [](const ConfigComponent& c) { return c.type == "vm.Tlb"; });
    if (!any_tlb) {
      problems.push_back(
          "\"vm\" section is enabled but the model has no vm.Tlb component");
    }
  }
  if (!sim_config_.stats_format.empty() &&
      sim_config_.stats_format != "console" &&
      sim_config_.stats_format != "csv" &&
      sim_config_.stats_format != "json") {
    problems.push_back("unknown stats_format '" + sim_config_.stats_format +
                       "' (known: console, csv, json)");
  }
  if (sim_config_.metrics_period == 0) {
    problems.push_back("metrics_period must be >= 1ps");
  }
  std::set<std::pair<std::string, std::string>> used_ports;
  for (const auto& l : links_) {
    if (!names.contains(l.from)) {
      problems.push_back("link references unknown component '" + l.from +
                         "'");
    }
    if (!names.contains(l.to)) {
      problems.push_back("link references unknown component '" + l.to + "'");
    }
    if (!used_ports.insert({l.from, l.from_port}).second) {
      problems.push_back("port used twice: " + l.from + "." + l.from_port);
    }
    if (!used_ports.insert({l.to, l.to_port}).second) {
      problems.push_back("port used twice: " + l.to + "." + l.to_port);
    }
    for (const std::string* lat :
         {&l.latency, l.latency_back ? &*l.latency_back : nullptr}) {
      if (lat == nullptr) continue;
      try {
        if (UnitAlgebra(*lat).to_simtime() == 0) {
          problems.push_back("zero latency on link " + l.from + "." +
                             l.from_port + " <-> " + l.to + "." + l.to_port);
        }
      } catch (const ConfigError& e) {
        problems.push_back("bad latency '" + *lat + "': " + e.what());
      }
    }
  }
  for (const auto& f : faults_.links) {
    if (!names.contains(f.component)) {
      problems.push_back("link fault references unknown component '" +
                         f.component + "'");
    }
    try {
      (void)link_fault_config(f);
    } catch (const ConfigError& e) {
      problems.push_back("link fault on " + f.component + "." + f.port +
                         ": " + e.what());
    }
    if (f.both) {
      try {
        (void)link_peer(f.component, f.port);
      } catch (const ConfigError& e) {
        problems.emplace_back(e.what());
      }
    }
  }
  for (const auto& f : faults_.ports) {
    // Network-built routers (e.g. "rtr3") are created at build time, so
    // names can only be checked statically when no network is declared.
    if (!network_.present && !names.contains(f.router)) {
      problems.push_back("port fault references unknown router '" + f.router +
                         "'");
    }
    try {
      const SimTime fail_at = UnitAlgebra(f.fail_at).to_simtime();
      if (fail_at < 1) {
        problems.push_back("port fault on '" + f.router +
                           "': fail_at must be >= 1ps");
      }
      if (f.heal_at && UnitAlgebra(*f.heal_at).to_simtime() <= fail_at) {
        problems.push_back("port fault on '" + f.router +
                           "': heal_at must be after fail_at");
      }
    } catch (const ConfigError& e) {
      problems.push_back("port fault on '" + f.router + "': " + e.what());
    }
  }
  return problems;
}

std::pair<std::string, std::string> ConfigGraph::link_peer(
    const std::string& component, const std::string& port) const {
  for (const auto& l : links_) {
    if (l.from == component && l.from_port == port) return {l.to, l.to_port};
    if (l.to == component && l.to_port == port) return {l.from, l.from_port};
  }
  throw ConfigError("fault on " + component + "." + port +
                    ": 'both' requires an explicit \"links\" entry naming "
                    "this port (fault each network-built endpoint "
                    "separately)");
}

std::unique_ptr<Simulation> ConfigGraph::build(const Factory& factory) const {
  const auto problems = validate(factory);
  if (!problems.empty()) {
    std::string msg = "invalid ConfigGraph:";
    for (const auto& p : problems) msg += "\n  - " + p;
    throw ConfigError(msg);
  }
  auto sim = std::make_unique<Simulation>(sim_config_);
  std::uint32_t core_order = 0;
  for (const auto& c : components_) {
    Params params = c.params;  // components may mutate their param view
    if (vm_.present) {
      // Section defaults sit under the component's own params (which win);
      // enable=false degrades TLBs to pass-throughs and keeps cores on
      // physical addresses so the same topology benches vm_on vs vm_off.
      if (c.type == "vm.Tlb") {
        Params merged = vm_.tlb_defaults;
        merged.merge(params);
        params = std::move(merged);
        if (!vm_.enable) params.set("enabled", "false");
      } else if (c.type == "vm.PageTableWalker") {
        Params merged = vm_.walker_defaults;
        merged.merge(params);
        params = std::move(merged);
      } else if (c.type == "proc.Core") {
        if (vm_.enable && !params.contains("virt")) {
          params.set("virt", "true");
        }
        if (vm_.enable && !params.contains("asid")) {
          params.set("asid", std::to_string(core_order));
        }
        ++core_order;
      }
    }
    factory.create(*sim, c.type, c.name, params);
    if (c.rank) sim->set_component_rank(c.name, *c.rank);
  }
  for (const auto& l : links_) {
    const SimTime lat_ab = UnitAlgebra(l.latency).to_simtime();
    const SimTime lat_ba =
        l.latency_back ? UnitAlgebra(*l.latency_back).to_simtime() : lat_ab;
    sim->connect(l.from, l.from_port, l.to, l.to_port, lat_ab, lat_ba);
  }
  if (network_.present) {
    std::vector<net::NetEndpoint*> endpoints;
    endpoints.reserve(network_.endpoints.size());
    for (const auto& name : network_.endpoints) {
      auto* ep = dynamic_cast<net::NetEndpoint*>(sim->find_component(name));
      if (ep == nullptr) {
        throw ConfigError("network endpoint '" + name +
                          "' is not a net endpoint component");
      }
      endpoints.push_back(ep);
    }
    net::build_topology(*sim, network_.spec, endpoints);
  }
  for (const auto& f : faults_.links) {
    const fault::LinkFaultConfig cfg = link_fault_config(f);
    fault::install_link_fault(*sim, f.component, f.port, cfg);
    if (f.both) {
      const auto [peer, peer_port] = link_peer(f.component, f.port);
      fault::install_link_fault(*sim, peer, peer_port, cfg);
    }
  }
  for (const auto& f : faults_.ports) {
    auto* rtr = dynamic_cast<net::Router*>(sim->find_component(f.router));
    if (rtr == nullptr) {
      throw ConfigError("port fault target '" + f.router +
                        "' is not a net router");
    }
    rtr->schedule_port_fail(f.port, UnitAlgebra(f.fail_at).to_simtime());
    if (f.heal_at) {
      rtr->schedule_port_heal(f.port, UnitAlgebra(*f.heal_at).to_simtime());
    }
  }
  // Online rebalancing needs a migration mechanism; every SDL-built run
  // (sstsim, daemon, DSE, restart) gets the checkpoint-based one.
  if (sim_config_.rebalance) ckpt::install_migrator(*sim);
  return sim;
}

ConfigGraph ConfigGraph::from_json_text(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

ConfigGraph ConfigGraph::from_json(const JsonValue& doc) {
  ConfigGraph graph;
  if (doc.has("config")) {
    const JsonValue& cfg = doc.at("config");
    SimConfig& sc = graph.sim_config();
    if (cfg.has("end_time")) {
      sc.end_time = UnitAlgebra(cfg.at("end_time").as_string()).to_simtime();
    }
    sc.num_ranks =
        static_cast<unsigned>(cfg.get_number("num_ranks", sc.num_ranks));
    sc.seed = static_cast<std::uint64_t>(cfg.get_number("seed", 1));
    sc.fault_seed = static_cast<std::uint64_t>(
        cfg.get_number("fault_seed", static_cast<double>(sc.fault_seed)));
    sc.watchdog_seconds =
        cfg.get_number("watchdog_seconds", sc.watchdog_seconds);
    sc.detect_deadlock = cfg.get_bool("detect_deadlock", sc.detect_deadlock);
    sc.verbose = cfg.get_bool("verbose", false);
    sc.partition = partition_from_string(cfg.get_string("partition", "linear"));
    sc.sync_mode =
        sync_mode_from_string(cfg.get_string("sync_mode", "conservative"));
    if (cfg.has("lax_skew")) {
      sc.lax_skew = UnitAlgebra(cfg.at("lax_skew").as_string()).to_simtime();
    }
    if (cfg.has("sync_window_max")) {
      sc.sync_window_max =
          UnitAlgebra(cfg.at("sync_window_max").as_string()).to_simtime();
    }
    if (cfg.has("rebalance_mode")) {
      sc.rebalance =
          rebalance_mode_from_string(cfg.at("rebalance_mode").as_string());
    }
    sc.rebalance_threshold =
        cfg.get_number("rebalance_threshold", sc.rebalance_threshold);
    sc.rebalance_period = static_cast<std::uint64_t>(cfg.get_number(
        "rebalance_period", static_cast<double>(sc.rebalance_period)));
    sc.rebalance_max_moves = static_cast<std::uint32_t>(
        cfg.get_number("rebalance_max_moves", sc.rebalance_max_moves));
  }
  if (doc.has("components")) {
    for (const auto& jc : doc.at("components").as_array()) {
      ConfigComponent cc;
      cc.name = jc.at("name").as_string();
      cc.type = jc.at("type").as_string();
      if (jc.has("params")) {
        read_scalar_params(jc.at("params"), "component '" + cc.name + "'",
                           cc.params);
      }
      if (jc.has("rank")) {
        cc.rank = static_cast<RankId>(jc.at("rank").as_number());
      }
      graph.components_.push_back(std::move(cc));
    }
  }
  if (doc.has("network")) {
    const JsonValue& jn = doc.at("network");
    ConfigNetwork& n = graph.network_;
    n.present = true;
    n.spec.kind = topology_kind(jn.at("topology").as_string());
    n.spec.x = static_cast<std::uint32_t>(jn.get_number("x", n.spec.x));
    n.spec.y = static_cast<std::uint32_t>(jn.get_number("y", n.spec.y));
    n.spec.z = static_cast<std::uint32_t>(jn.get_number("z", n.spec.z));
    n.spec.concentration = static_cast<std::uint32_t>(
        jn.get_number("concentration", n.spec.concentration));
    n.spec.leaves =
        static_cast<std::uint32_t>(jn.get_number("leaves", n.spec.leaves));
    n.spec.spines =
        static_cast<std::uint32_t>(jn.get_number("spines", n.spec.spines));
    n.spec.down =
        static_cast<std::uint32_t>(jn.get_number("down", n.spec.down));
    n.spec.groups =
        static_cast<std::uint32_t>(jn.get_number("groups", n.spec.groups));
    n.spec.group_routers = static_cast<std::uint32_t>(
        jn.get_number("group_routers", n.spec.group_routers));
    n.spec.group_conc = static_cast<std::uint32_t>(
        jn.get_number("group_conc", n.spec.group_conc));
    n.spec.global_per_router = static_cast<std::uint32_t>(
        jn.get_number("global_per_router", n.spec.global_per_router));
    n.spec.link_bandwidth =
        jn.get_string("link_bandwidth", n.spec.link_bandwidth);
    n.spec.link_latency = jn.get_string("link_latency", n.spec.link_latency);
    n.spec.hop_latency = jn.get_string("hop_latency", n.spec.hop_latency);
    n.spec.seed =
        static_cast<std::uint64_t>(jn.get_number("seed", 1));
    const std::string routing = jn.get_string("routing", "minimal");
    if (routing == "minimal") {
      n.spec.routing = net::TopologySpec::Routing::kMinimal;
    } else if (routing == "valiant") {
      n.spec.routing = net::TopologySpec::Routing::kValiant;
    } else {
      throw ConfigError("unknown routing '" + routing +
                        "' (known: minimal, valiant)");
    }
    for (const auto& e : jn.at("endpoints").as_array()) {
      n.endpoints.push_back(e.as_string());
    }
  }
  if (doc.has("links")) {
    for (const auto& jl : doc.at("links").as_array()) {
      ConfigLink cl;
      cl.from = jl.at("from").as_string();
      cl.from_port = jl.at("from_port").as_string();
      cl.to = jl.at("to").as_string();
      cl.to_port = jl.at("to_port").as_string();
      cl.latency = jl.get_string("latency", "1ns");
      if (jl.has("latency_back")) {
        cl.latency_back = jl.at("latency_back").as_string();
      }
      graph.links_.push_back(std::move(cl));
    }
  }
  if (doc.has("vm")) {
    const JsonValue& jv = doc.at("vm");
    ConfigVm& vm = graph.vm_;
    vm.present = true;
    vm.enable = jv.get_bool("enable", true);
    if (jv.has("tlb")) {
      read_scalar_params(jv.at("tlb"), "vm tlb", vm.tlb_defaults);
    }
    if (jv.has("walker")) {
      read_scalar_params(jv.at("walker"), "vm walker", vm.walker_defaults);
    }
  }
  if (doc.has("faults")) {
    const JsonValue& jf = doc.at("faults");
    if (jf.has("seed")) {
      graph.sim_config_.fault_seed =
          static_cast<std::uint64_t>(jf.at("seed").as_number());
    }
    if (jf.has("links")) {
      for (const auto& jl : jf.at("links").as_array()) {
        ConfigLinkFault lf;
        lf.component = jl.at("component").as_string();
        lf.port = jl.at("port").as_string();
        lf.drop = jl.get_number("drop", 0.0);
        lf.duplicate = jl.get_number("duplicate", 0.0);
        lf.delay = jl.get_number("delay", 0.0);
        lf.delay_min = jl.get_string("delay_min", "0ps");
        lf.delay_max = jl.get_string("delay_max", lf.delay_min);
        lf.both = jl.get_bool("both", false);
        graph.faults_.links.push_back(std::move(lf));
      }
    }
    if (jf.has("ports")) {
      for (const auto& jp : jf.at("ports").as_array()) {
        ConfigPortFault pf;
        pf.router = jp.at("router").as_string();
        pf.port = static_cast<std::uint32_t>(jp.at("port").as_number());
        pf.fail_at = jp.at("fail_at").as_string();
        if (jp.has("heal_at")) pf.heal_at = jp.at("heal_at").as_string();
        graph.faults_.ports.push_back(std::move(pf));
      }
    }
  }
  if (doc.has("observability")) {
    const JsonValue& jo = doc.at("observability");
    SimConfig& sc = graph.sim_config_;
    if (jo.has("trace")) {
      const JsonValue& t = jo.at("trace");
      if (t.is_string()) {
        sc.trace_path = t.as_string();
      } else {
        sc.trace = t.as_bool();
      }
    }
    sc.trace_engine = jo.get_bool("trace_engine", sc.trace_engine);
    if (jo.has("metrics")) {
      const JsonValue& m = jo.at("metrics");
      if (m.is_string()) {
        sc.metrics_path = m.as_string();
      } else {
        sc.metrics = m.as_bool();
      }
    }
    if (jo.has("metrics_period")) {
      sc.metrics_period =
          UnitAlgebra(jo.at("metrics_period").as_string()).to_simtime();
    }
    sc.profile_engine = jo.get_bool("profile_engine", sc.profile_engine);
    sc.stats_path = jo.get_string("stats", sc.stats_path);
    sc.stats_format = jo.get_string("stats_format", sc.stats_format);
  }
  if (doc.has("checkpointing")) {
    const JsonValue& jk = doc.at("checkpointing");
    SimConfig& sc = graph.sim_config_;
    if (jk.has("period")) {
      sc.checkpoint_period =
          UnitAlgebra(jk.at("period").as_string()).to_simtime();
    }
    sc.checkpoint_wall = jk.get_number("wall_seconds", sc.checkpoint_wall);
    sc.checkpoint_dir = jk.get_string("dir", sc.checkpoint_dir);
    sc.checkpoint_keep = static_cast<unsigned>(
        jk.get_number("keep", sc.checkpoint_keep));
  }
  return graph;
}

void ConfigGraph::apply_override(std::string_view path,
                                 const std::string& value) {
  const std::string p(path);
  auto fail = [&p](const std::string& msg) -> void {
    throw ConfigError("override '" + p + "': " + msg);
  };
  if (p.empty() || p[0] != '/') {
    fail("path must start with '/' "
         "(e.g. /components/<name>/params/<key>)");
  }
  std::vector<std::string> seg;
  for (std::size_t start = 1; start <= p.size();) {
    const std::size_t slash = std::min(p.find('/', start), p.size());
    seg.push_back(p.substr(start, slash - start));
    start = slash + 1;
  }
  if (seg.empty() || seg.front().empty()) fail("empty path segment");
  // `p` feeds parse errors ("bad value for <path>"-style messages).
  auto as_u32 = [&](const std::string& v) {
    return detail::parse_param<std::uint32_t>(v, p);
  };
  auto as_u64 = [&](const std::string& v) {
    return detail::parse_param<std::uint64_t>(v, p);
  };

  if (seg[0] == "config") {
    if (seg.size() != 2) fail("expected /config/<key>");
    const std::string& key = seg[1];
    if (key == "end_time") {
      sim_config_.end_time = UnitAlgebra(value).to_simtime();
    } else if (key == "num_ranks") {
      sim_config_.num_ranks = as_u32(value);
    } else if (key == "seed") {
      sim_config_.seed = as_u64(value);
    } else if (key == "fault_seed") {
      sim_config_.fault_seed = as_u64(value);
    } else if (key == "partition") {
      sim_config_.partition = partition_from_string(value);
    } else if (key == "sync_mode") {
      sim_config_.sync_mode = sync_mode_from_string(value);
    } else if (key == "lax_skew") {
      sim_config_.lax_skew = UnitAlgebra(value).to_simtime();
    } else if (key == "sync_window_max") {
      sim_config_.sync_window_max = UnitAlgebra(value).to_simtime();
    } else if (key == "rebalance_mode") {
      sim_config_.rebalance = rebalance_mode_from_string(value);
    } else if (key == "rebalance_threshold") {
      sim_config_.rebalance_threshold = detail::parse_param<double>(value, p);
    } else if (key == "rebalance_period") {
      sim_config_.rebalance_period = as_u64(value);
    } else if (key == "rebalance_max_moves") {
      sim_config_.rebalance_max_moves = as_u32(value);
    } else if (key == "watchdog_seconds") {
      sim_config_.watchdog_seconds = detail::parse_param<double>(value, p);
    } else if (key == "detect_deadlock") {
      sim_config_.detect_deadlock = detail::parse_param<bool>(value, p);
    } else if (key == "verbose") {
      sim_config_.verbose = detail::parse_param<bool>(value, p);
    } else {
      fail("unknown config key '" + key +
           "' (known: end_time, num_ranks, seed, fault_seed, partition, "
           "sync_mode, lax_skew, sync_window_max, rebalance_mode, "
           "rebalance_threshold, rebalance_period, rebalance_max_moves, "
           "watchdog_seconds, detect_deadlock, verbose)");
    }
    return;
  }

  if (seg[0] == "components") {
    if (seg.size() != 3 && seg.size() != 4) {
      fail("expected /components/<name>/rank or "
           "/components/<name>/params/<key>");
    }
    ConfigComponent* comp = nullptr;
    for (auto& c : components_) {
      if (c.name == seg[1]) comp = &c;
    }
    if (comp == nullptr) {
      std::string names;
      for (const auto& c : components_) {
        names += names.empty() ? "" : ", ";
        names += c.name;
      }
      fail("unknown component '" + seg[1] + "' (components: " + names + ")");
    }
    if (seg.size() == 3 && seg[2] == "rank") {
      comp->rank = static_cast<RankId>(as_u32(value));
    } else if (seg.size() == 4 && seg[2] == "params") {
      comp->params.set(seg[3], value);
    } else {
      fail("expected /components/" + seg[1] + "/rank or /components/" +
           seg[1] + "/params/<key>");
    }
    return;
  }

  if (seg[0] == "links") {
    if (seg.size() != 3) fail("expected /links/<index>/latency[_back]");
    std::size_t idx = 0;
    try {
      idx = static_cast<std::size_t>(as_u32(seg[1]));
    } catch (const ConfigError&) {
      fail("link index '" + seg[1] + "' is not a number");
    }
    if (idx >= links_.size()) {
      fail("link index " + seg[1] + " out of range (model has " +
           std::to_string(links_.size()) + " links)");
    }
    if (seg[2] == "latency") {
      links_[idx].latency = value;
    } else if (seg[2] == "latency_back") {
      links_[idx].latency_back = value;
    } else {
      fail("unknown link field '" + seg[2] +
           "' (known: latency, latency_back)");
    }
    return;
  }

  if (seg[0] == "network") {
    if (seg.size() != 2) fail("expected /network/<key>");
    if (!network_.present) fail("model declares no \"network\" section");
    const std::string& key = seg[1];
    net::TopologySpec& spec = network_.spec;
    if (key == "topology") {
      spec.kind = topology_kind(value);
    } else if (key == "x") {
      spec.x = as_u32(value);
    } else if (key == "y") {
      spec.y = as_u32(value);
    } else if (key == "z") {
      spec.z = as_u32(value);
    } else if (key == "concentration") {
      spec.concentration = as_u32(value);
    } else if (key == "leaves") {
      spec.leaves = as_u32(value);
    } else if (key == "spines") {
      spec.spines = as_u32(value);
    } else if (key == "down") {
      spec.down = as_u32(value);
    } else if (key == "groups") {
      spec.groups = as_u32(value);
    } else if (key == "group_routers") {
      spec.group_routers = as_u32(value);
    } else if (key == "group_conc") {
      spec.group_conc = as_u32(value);
    } else if (key == "global_per_router") {
      spec.global_per_router = as_u32(value);
    } else if (key == "link_bandwidth") {
      spec.link_bandwidth = value;
    } else if (key == "link_latency") {
      spec.link_latency = value;
    } else if (key == "hop_latency") {
      spec.hop_latency = value;
    } else if (key == "seed") {
      spec.seed = as_u64(value);
    } else if (key == "routing") {
      if (value == "minimal") {
        spec.routing = net::TopologySpec::Routing::kMinimal;
      } else if (value == "valiant") {
        spec.routing = net::TopologySpec::Routing::kValiant;
      } else {
        fail("unknown routing '" + value + "' (known: minimal, valiant)");
      }
    } else {
      fail("unknown network key '" + key +
           "' (known: topology, x, y, z, concentration, leaves, spines, "
           "down, groups, group_routers, group_conc, global_per_router, "
           "link_bandwidth, link_latency, hop_latency, seed, routing)");
    }
    return;
  }

  if (seg[0] == "vm") {
    if (!vm_.present) fail("model declares no \"vm\" section");
    if (seg.size() == 2 && seg[1] == "enable") {
      vm_.enable = detail::parse_param<bool>(value, p);
      return;
    }
    if (seg.size() == 3 && seg[1] == "tlb") {
      vm_.tlb_defaults.set(seg[2], value);
      return;
    }
    if (seg.size() == 3 && seg[1] == "walker") {
      vm_.walker_defaults.set(seg[2], value);
      return;
    }
    fail("expected /vm/enable, /vm/tlb/<key>, or /vm/walker/<key>");
  }

  fail("unknown root '" + seg[0] +
       "' (known: /config, /components, /links, /network, /vm)");
}

JsonValue ConfigGraph::to_json() const {
  JsonObject doc;
  JsonObject cfg;
  if (sim_config_.end_time != kTimeNever) {
    cfg["end_time"] =
        JsonValue(std::to_string(sim_config_.end_time) + "ps");
  }
  cfg["num_ranks"] = JsonValue(static_cast<double>(sim_config_.num_ranks));
  cfg["seed"] = JsonValue(static_cast<double>(sim_config_.seed));
  if (sim_config_.fault_seed != 0) {
    cfg["fault_seed"] = JsonValue(static_cast<double>(sim_config_.fault_seed));
  }
  if (sim_config_.watchdog_seconds > 0) {
    cfg["watchdog_seconds"] = JsonValue(sim_config_.watchdog_seconds);
  }
  if (!sim_config_.detect_deadlock) cfg["detect_deadlock"] = JsonValue(false);
  cfg["partition"] = partition_name(sim_config_.partition);
  if (sim_config_.sync_mode != SyncMode::kConservative) {
    cfg["sync_mode"] = JsonValue(std::string(sync_mode_name(sim_config_.sync_mode)));
  }
  if (sim_config_.lax_skew != 0) {
    cfg["lax_skew"] = JsonValue(std::to_string(sim_config_.lax_skew) + "ps");
  }
  if (sim_config_.sync_window_max != 0) {
    cfg["sync_window_max"] =
        JsonValue(std::to_string(sim_config_.sync_window_max) + "ps");
  }
  if (sim_config_.rebalance) {
    cfg["rebalance_mode"] = JsonValue(std::string("on"));
    cfg["rebalance_threshold"] = JsonValue(sim_config_.rebalance_threshold);
    cfg["rebalance_period"] =
        JsonValue(static_cast<double>(sim_config_.rebalance_period));
    cfg["rebalance_max_moves"] =
        JsonValue(static_cast<double>(sim_config_.rebalance_max_moves));
  }
  doc["config"] = JsonValue(std::move(cfg));

  JsonArray comps;
  for (const auto& c : components_) {
    JsonObject jc;
    jc["name"] = c.name;
    jc["type"] = c.type;
    JsonObject params;
    for (const auto& k : c.params.keys()) {
      params[k] = JsonValue(*c.params.raw(k));
    }
    jc["params"] = JsonValue(std::move(params));
    if (c.rank) jc["rank"] = JsonValue(static_cast<double>(*c.rank));
    comps.push_back(JsonValue(std::move(jc)));
  }
  doc["components"] = JsonValue(std::move(comps));

  JsonArray links;
  for (const auto& l : links_) {
    JsonObject jl;
    jl["from"] = l.from;
    jl["from_port"] = l.from_port;
    jl["to"] = l.to;
    jl["to_port"] = l.to_port;
    jl["latency"] = l.latency;
    if (l.latency_back) jl["latency_back"] = *l.latency_back;
    links.push_back(JsonValue(std::move(jl)));
  }
  doc["links"] = JsonValue(std::move(links));

  if (network_.present) {
    JsonObject jn;
    jn["topology"] = topology_name(network_.spec.kind);
    jn["x"] = JsonValue(static_cast<double>(network_.spec.x));
    jn["y"] = JsonValue(static_cast<double>(network_.spec.y));
    jn["z"] = JsonValue(static_cast<double>(network_.spec.z));
    jn["concentration"] =
        JsonValue(static_cast<double>(network_.spec.concentration));
    jn["leaves"] = JsonValue(static_cast<double>(network_.spec.leaves));
    jn["spines"] = JsonValue(static_cast<double>(network_.spec.spines));
    jn["down"] = JsonValue(static_cast<double>(network_.spec.down));
    jn["groups"] = JsonValue(static_cast<double>(network_.spec.groups));
    jn["group_routers"] =
        JsonValue(static_cast<double>(network_.spec.group_routers));
    jn["group_conc"] =
        JsonValue(static_cast<double>(network_.spec.group_conc));
    jn["global_per_router"] =
        JsonValue(static_cast<double>(network_.spec.global_per_router));
    jn["link_bandwidth"] = network_.spec.link_bandwidth;
    jn["link_latency"] = network_.spec.link_latency;
    jn["hop_latency"] = network_.spec.hop_latency;
    jn["seed"] = JsonValue(static_cast<double>(network_.spec.seed));
    jn["routing"] =
        network_.spec.routing == net::TopologySpec::Routing::kValiant
            ? "valiant"
            : "minimal";
    JsonArray eps;
    for (const auto& e : network_.endpoints) eps.push_back(JsonValue(e));
    jn["endpoints"] = JsonValue(std::move(eps));
    doc["network"] = JsonValue(std::move(jn));
  }

  if (vm_.present) {
    JsonObject jv;
    jv["enable"] = JsonValue(vm_.enable);
    if (!vm_.tlb_defaults.keys().empty()) {
      JsonObject jt;
      for (const auto& k : vm_.tlb_defaults.keys()) {
        jt[k] = JsonValue(*vm_.tlb_defaults.raw(k));
      }
      jv["tlb"] = JsonValue(std::move(jt));
    }
    if (!vm_.walker_defaults.keys().empty()) {
      JsonObject jw;
      for (const auto& k : vm_.walker_defaults.keys()) {
        jw[k] = JsonValue(*vm_.walker_defaults.raw(k));
      }
      jv["walker"] = JsonValue(std::move(jw));
    }
    doc["vm"] = JsonValue(std::move(jv));
  }

  if (!faults_.empty()) {
    JsonObject jf;
    JsonArray lfs;
    for (const auto& f : faults_.links) {
      JsonObject jl;
      jl["component"] = f.component;
      jl["port"] = f.port;
      jl["drop"] = JsonValue(f.drop);
      jl["duplicate"] = JsonValue(f.duplicate);
      jl["delay"] = JsonValue(f.delay);
      jl["delay_min"] = f.delay_min;
      jl["delay_max"] = f.delay_max;
      if (f.both) jl["both"] = JsonValue(true);
      lfs.push_back(JsonValue(std::move(jl)));
    }
    if (!lfs.empty()) jf["links"] = JsonValue(std::move(lfs));
    JsonArray pfs;
    for (const auto& f : faults_.ports) {
      JsonObject jp;
      jp["router"] = f.router;
      jp["port"] = JsonValue(static_cast<double>(f.port));
      jp["fail_at"] = f.fail_at;
      if (f.heal_at) jp["heal_at"] = *f.heal_at;
      pfs.push_back(JsonValue(std::move(jp)));
    }
    if (!pfs.empty()) jf["ports"] = JsonValue(std::move(pfs));
    doc["faults"] = JsonValue(std::move(jf));
  }

  if (sim_config_.trace || !sim_config_.trace_path.empty() ||
      sim_config_.metrics || !sim_config_.metrics_path.empty() ||
      sim_config_.profile_engine || !sim_config_.stats_path.empty() ||
      !sim_config_.stats_format.empty()) {
    JsonObject jo;
    if (!sim_config_.trace_path.empty()) {
      jo["trace"] = sim_config_.trace_path;
    } else if (sim_config_.trace) {
      jo["trace"] = JsonValue(true);
    }
    if (sim_config_.trace_engine) jo["trace_engine"] = JsonValue(true);
    if (!sim_config_.metrics_path.empty()) {
      jo["metrics"] = sim_config_.metrics_path;
    } else if (sim_config_.metrics) {
      jo["metrics"] = JsonValue(true);
    }
    if (sim_config_.metrics || !sim_config_.metrics_path.empty()) {
      jo["metrics_period"] =
          JsonValue(std::to_string(sim_config_.metrics_period) + "ps");
    }
    if (sim_config_.profile_engine) jo["profile_engine"] = JsonValue(true);
    if (!sim_config_.stats_path.empty()) jo["stats"] = sim_config_.stats_path;
    if (!sim_config_.stats_format.empty()) {
      jo["stats_format"] = sim_config_.stats_format;
    }
    doc["observability"] = JsonValue(std::move(jo));
  }

  if (sim_config_.checkpoint_period > 0 || sim_config_.checkpoint_wall > 0) {
    JsonObject jk;
    if (sim_config_.checkpoint_period > 0) {
      jk["period"] =
          JsonValue(std::to_string(sim_config_.checkpoint_period) + "ps");
    }
    if (sim_config_.checkpoint_wall > 0) {
      jk["wall_seconds"] = JsonValue(sim_config_.checkpoint_wall);
    }
    jk["dir"] = sim_config_.checkpoint_dir;
    jk["keep"] = JsonValue(static_cast<double>(sim_config_.checkpoint_keep));
    doc["checkpointing"] = JsonValue(std::move(jk));
  }
  return JsonValue(std::move(doc));
}

}  // namespace sst::sdl
