#include "sdl/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sst::sdl {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw JsonError("JSON value is not a bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw JsonError("JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw JsonError("JSON value is not a string");
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw JsonError("JSON value is not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw JsonError("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& JsonValue::as_array() {
  if (!is_array()) throw JsonError("JSON value is not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& JsonValue::as_object() {
  if (!is_object()) throw JsonError("JSON value is not an object");
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw JsonError("missing JSON key '" + std::string(key) + "'");
  }
  return it->second;
}

bool JsonValue::has(std::string_view key) const {
  if (!is_object()) return false;
  return as_object().find(key) != as_object().end();
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  if (!has(key)) return std::string(fallback);
  return at(key).as_string();
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  if (!has(key)) return fallback;
  return at(key).as_number();
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  if (!has(key)) return fallback;
  return at(key).as_bool();
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + msg);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      // Allow // line comments (common in hand-written configs).
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() == '}') {  // trailing comma
        ++pos_;
        return JsonValue(std::move(obj));
      }
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      skip_ws();
      if (peek() == ']') {  // trailing comma
        ++pos_;
        return JsonValue(std::move(arr));
      }
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    skip_ws();
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // simulator configs are ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double v = 0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      fail("malformed number");
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
  } else {
    std::ostringstream os;
    os.precision(15);
    os << d;
    out += os.str();
  }
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0
                              ? "\n" + std::string(
                                           static_cast<std::size_t>(indent) *
                                               static_cast<std::size_t>(depth + 1),
                                           ' ')
                              : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, as_number());
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out.push_back(',');
      first = false;
      out += pad;
      v.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out.push_back(']');
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      out += pad;
      dump_string(out, k);
      out += indent > 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out.push_back('}');
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sst::sdl
