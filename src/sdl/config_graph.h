// ConfigGraph: a declarative description of a simulated system — the
// components, their parameters, and the links between them — decoupled
// from the C++ types that implement the models.  This is SST's SDL layer:
// systems can be written as JSON documents, validated, and instantiated
// through the Factory.
//
// JSON schema:
// {
//   "config": { "end_time": "1ms", "num_ranks": 2, "seed": 7,
//               "partition": "mincut",
//               "sync_mode": "conservative",  // conservative|adaptive|lax
//               "lax_skew": "2us",            // required when sync_mode=lax
//               "sync_window_max": "10us" },  // optional adaptive window cap
//   "components": [
//     { "name": "cpu0", "type": "proc.Core",
//       "params": { "clock": "2GHz", "issue_width": "4" },
//       "rank": 0 },
//     ...
//   ],
//   "links": [
//     { "from": "cpu0", "from_port": "mem", "to": "l1", "to_port": "cpu",
//       "latency": "1ns" },
//     ...
//   ],
//   // optional: wire listed endpoint components into a router fabric
//   "network": {
//     "topology": "torus2d",          // mesh2d|torus2d|torus3d|fattree|
//                                     // dragonfly
//     "x": 2, "y": 2,                 // (or leaves/spines/down, groups/...)
//     "routing": "minimal",           // or "valiant"
//     "link_bandwidth": "10GB/s", "link_latency": "20ns",
//     "endpoints": ["rank0", "rank1", "rank2", "rank3"]
//   },
//   // optional: virtual-memory defaults for vm.Tlb / vm.PageTableWalker
//   // components; component params win over these defaults.  enable=false
//   // turns every vm.Tlb into a pass-through (physical addressing) without
//   // touching the topology.
//   "vm": {
//     "enable": true,
//     "tlb": { "levels": 2, "l1_sets": 16, "l1_ways": 4 },
//     "walker": { "walk_depth": 4, "huge_pages": "promote" }
//   },
//   // optional: deterministic fault injection (see src/fault)
//   "faults": {
//     "seed": 99,                     // fault RNG seed (default: config seed)
//     "links": [
//       { "component": "rank0", "port": "net",
//         "drop": 0.01, "duplicate": 0.001, "delay": 0.05,
//         "delay_min": "10ns", "delay_max": "200ns",
//         "both": true }              // also fault the peer endpoint
//     ],
//     "ports": [
//       { "router": "rtr0", "port": 1,
//         "fail_at": "10us", "heal_at": "60us" }   // heal_at optional
//     ]
//   },
//   // optional: tracing / self-profiling / stats output (see src/obs)
//   "observability": {
//     "trace": "run.trace.json",      // path, or true for in-memory only
//     "trace_engine": false,          // add rank-dependent sync-window spans
//     "metrics": "run.metrics.jsonl", // path, or true for in-memory only
//     "metrics_period": "1ms",
//     "profile_engine": false,        // engine.rankN statistics + lines
//     "stats": "stats.csv",           // stats dump path ("-" = stdout)
//     "stats_format": "csv"           // console | csv | json
//   }
// }
//
// "config" additionally accepts "fault_seed", "watchdog_seconds", and
// "detect_deadlock".  "sync_mode" selects the parallel synchronization
// protocol (see DESIGN.md "Synchronization modes"): "conservative" and
// "adaptive" reproduce golden results byte-identically; "lax" trades bounded
// timestamp skew (<= "lax_skew") for fewer barriers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/params.h"
#include "core/simulation.h"
#include "net/topology.h"
#include "sdl/json.h"

namespace sst::sdl {

struct ConfigComponent {
  std::string name;
  std::string type;
  Params params;
  std::optional<RankId> rank;
};

struct ConfigLink {
  std::string from, from_port;
  std::string to, to_port;
  std::string latency = "1ns";          // UnitAlgebra time
  std::optional<std::string> latency_back;  // reverse direction override
};

/// Declarative router-fabric description (optional).
struct ConfigNetwork {
  bool present = false;
  net::TopologySpec spec;
  std::vector<std::string> endpoints;  // component names, node order
};

/// Probabilistic fault model on one link endpoint (the sending side of
/// component.port); `both` also faults the peer endpoint with its own
/// independent stream.
struct ConfigLinkFault {
  std::string component;
  std::string port;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  std::string delay_min = "0ps";
  std::string delay_max = "0ps";
  bool both = false;
};

/// Timed router port failure (optionally healing later).
struct ConfigPortFault {
  std::string router;
  std::uint32_t port = 0;
  std::string fail_at;
  std::optional<std::string> heal_at;
};

struct ConfigFaults {
  std::vector<ConfigLinkFault> links;
  std::vector<ConfigPortFault> ports;
  [[nodiscard]] bool empty() const { return links.empty() && ports.empty(); }
};

/// Virtual-memory section (optional): defaults merged under every vm.Tlb /
/// vm.PageTableWalker component's params (component params win), plus an
/// enable switch that degrades every vm.Tlb to a pass-through and stops
/// proc.Core components from emitting virtual addresses.
struct ConfigVm {
  bool present = false;
  bool enable = true;
  Params tlb_defaults;
  Params walker_defaults;
};

class ConfigGraph {
 public:
  ConfigGraph() = default;

  ConfigComponent& add_component(std::string name, std::string type,
                                 Params params = {});
  ConfigLink& add_link(std::string from, std::string from_port,
                       std::string to, std::string to_port,
                       std::string latency = "1ns");

  [[nodiscard]] const std::vector<ConfigComponent>& components() const {
    return components_;
  }
  [[nodiscard]] const std::vector<ConfigLink>& links() const {
    return links_;
  }
  [[nodiscard]] SimConfig& sim_config() { return sim_config_; }
  [[nodiscard]] const SimConfig& sim_config() const { return sim_config_; }
  [[nodiscard]] ConfigNetwork& network() { return network_; }
  [[nodiscard]] const ConfigNetwork& network() const { return network_; }
  [[nodiscard]] ConfigFaults& faults() { return faults_; }
  [[nodiscard]] const ConfigFaults& faults() const { return faults_; }
  [[nodiscard]] ConfigVm& vm() { return vm_; }
  [[nodiscard]] const ConfigVm& vm() const { return vm_; }

  /// Structural validation: unique names, known types (against the given
  /// factory), link endpoints exist, no port used twice, parsable
  /// latencies.  Returns the list of problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate(
      const Factory& factory) const;

  /// Instantiates the graph into a fresh Simulation.  Throws ConfigError
  /// when validation fails.
  [[nodiscard]] std::unique_ptr<Simulation> build(
      const Factory& factory = Factory::instance()) const;

  /// JSON round trip.
  [[nodiscard]] static ConfigGraph from_json(const JsonValue& doc);
  [[nodiscard]] static ConfigGraph from_json_text(std::string_view text);
  [[nodiscard]] JsonValue to_json() const;

  /// Applies a single JSON-pointer-style override to the graph:
  ///
  ///   /config/<key>                     engine knobs (seed, end_time,
  ///                                     num_ranks, partition, ...)
  ///   /components/<name>/params/<key>   a component parameter
  ///   /components/<name>/rank           pin the component to a rank
  ///   /links/<index>/latency[_back]     link latency overrides
  ///   /network/<key>                    fabric knobs (topology, x, y,
  ///                                     link_latency, routing, ...)
  ///   /vm/enable                        virtual addressing on/off
  ///   /vm/tlb/<key>                     vm.Tlb default parameter
  ///   /vm/walker/<key>                  vm.PageTableWalker default parameter
  ///
  /// This is the substrate of DSE sweep axes (src/dse): every axis path
  /// resolves through here.  Unknown paths throw ConfigError naming the
  /// valid alternatives at the failing segment so sweep authors can
  /// self-correct.
  void apply_override(std::string_view path, const std::string& value);

 private:
  /// Peer endpoint of (component, port) among the explicit links; throws
  /// ConfigError when the port is not on any explicit link.
  [[nodiscard]] std::pair<std::string, std::string> link_peer(
      const std::string& component, const std::string& port) const;

  std::vector<ConfigComponent> components_;
  std::vector<ConfigLink> links_;
  ConfigNetwork network_;
  ConfigFaults faults_;
  ConfigVm vm_;
  SimConfig sim_config_;
};

}  // namespace sst::sdl
