// ConfigGraph: a declarative description of a simulated system — the
// components, their parameters, and the links between them — decoupled
// from the C++ types that implement the models.  This is SST's SDL layer:
// systems can be written as JSON documents, validated, and instantiated
// through the Factory.
//
// JSON schema:
// {
//   "config": { "end_time": "1ms", "num_ranks": 2, "seed": 7,
//               "partition": "mincut" },
//   "components": [
//     { "name": "cpu0", "type": "proc.Core",
//       "params": { "clock": "2GHz", "issue_width": "4" },
//       "rank": 0 },
//     ...
//   ],
//   "links": [
//     { "from": "cpu0", "from_port": "mem", "to": "l1", "to_port": "cpu",
//       "latency": "1ns" },
//     ...
//   ],
//   // optional: wire listed endpoint components into a router fabric
//   "network": {
//     "topology": "torus2d",          // mesh2d|torus2d|torus3d|fattree|
//                                     // dragonfly
//     "x": 2, "y": 2,                 // (or leaves/spines/down, groups/...)
//     "routing": "minimal",           // or "valiant"
//     "link_bandwidth": "10GB/s", "link_latency": "20ns",
//     "endpoints": ["rank0", "rank1", "rank2", "rank3"]
//   }
// }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/params.h"
#include "core/simulation.h"
#include "net/topology.h"
#include "sdl/json.h"

namespace sst::sdl {

struct ConfigComponent {
  std::string name;
  std::string type;
  Params params;
  std::optional<RankId> rank;
};

struct ConfigLink {
  std::string from, from_port;
  std::string to, to_port;
  std::string latency = "1ns";          // UnitAlgebra time
  std::optional<std::string> latency_back;  // reverse direction override
};

/// Declarative router-fabric description (optional).
struct ConfigNetwork {
  bool present = false;
  net::TopologySpec spec;
  std::vector<std::string> endpoints;  // component names, node order
};

class ConfigGraph {
 public:
  ConfigGraph() = default;

  ConfigComponent& add_component(std::string name, std::string type,
                                 Params params = {});
  ConfigLink& add_link(std::string from, std::string from_port,
                       std::string to, std::string to_port,
                       std::string latency = "1ns");

  [[nodiscard]] const std::vector<ConfigComponent>& components() const {
    return components_;
  }
  [[nodiscard]] const std::vector<ConfigLink>& links() const {
    return links_;
  }
  [[nodiscard]] SimConfig& sim_config() { return sim_config_; }
  [[nodiscard]] const SimConfig& sim_config() const { return sim_config_; }
  [[nodiscard]] ConfigNetwork& network() { return network_; }
  [[nodiscard]] const ConfigNetwork& network() const { return network_; }

  /// Structural validation: unique names, known types (against the given
  /// factory), link endpoints exist, no port used twice, parsable
  /// latencies.  Returns the list of problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate(
      const Factory& factory) const;

  /// Instantiates the graph into a fresh Simulation.  Throws ConfigError
  /// when validation fails.
  [[nodiscard]] std::unique_ptr<Simulation> build(
      const Factory& factory = Factory::instance()) const;

  /// JSON round trip.
  [[nodiscard]] static ConfigGraph from_json(const JsonValue& doc);
  [[nodiscard]] static ConfigGraph from_json_text(std::string_view text);
  [[nodiscard]] JsonValue to_json() const;

 private:
  std::vector<ConfigComponent> components_;
  std::vector<ConfigLink> links_;
  ConfigNetwork network_;
  SimConfig sim_config_;
};

}  // namespace sst::sdl
