// DSE driver: the run/resume/report entry points shared by the sstdse
// tool and the `sstsim --sweep` shorthand.
//
// A sweep lives in an output directory:
//
//   <out>/sweep.json       self-contained copy of the spec (model path
//                          rewritten to the local model.json)
//   <out>/model.json       copy of the base SDL model
//   <out>/ledger.jsonl     crash-consistent completion ledger
//   <out>/points/p<id>/    per-point model.json, stats.json, run.log
//   <out>/results.csv      aggregate results table (+ .jsonl twin)
//
// `run` creates the directory (or resumes it), `resume` requires it,
// `report` only re-aggregates.  Everything needed to resume lives inside
// the directory, so it survives the original spec file moving.
#pragma once

#include <iosfwd>
#include <string>

namespace sst::dse {

// Driver exit codes, aligned with the sstsim contract (0 = success,
// 2 = usage/configuration error).  6 is the sweep-specific code: the
// batch finished but one or more points failed permanently.
constexpr int kSweepExitOk = 0;
constexpr int kSweepExitConfig = 2;
constexpr int kSweepExitFailed = 6;
constexpr int kSweepExitDaemon = 7;  // --daemon socket unreachable/protocol

struct DriverOptions {
  std::string spec_path;    // run: the sweep spec file
  std::string out_dir;      // "" = <spec stem>.sweep next to the cwd
  std::string sstsim_path;  // child simulator binary
  unsigned jobs = 0;        // override spec run.concurrency (0 = spec's)
  bool quiet = false;       // suppress per-point progress on stderr
  std::string daemon_socket;  // submit points to sstsimd instead of
                              // fork/exec ("" = fork/exec children)
};

/// Runs (or resumes, when out_dir already has a ledger) a sweep.
/// Returns a sweep exit code; errors are printed to `err`, the final
/// report to `out`.
int run_sweep(const DriverOptions& options, std::ostream& out,
              std::ostream& err);

/// Resumes a previously created sweep directory.  A non-empty
/// `daemon_socket` resumes through the daemon; finished requests the
/// daemon already completed (e.g. after it recovered a kill -9) are
/// replayed from its ledger without re-running.
int resume_sweep(const std::string& out_dir, const std::string& sstsim_path,
                 unsigned jobs, bool quiet, std::ostream& out,
                 std::ostream& err, const std::string& daemon_socket = "");

/// Re-aggregates and reports an existing sweep directory without
/// running anything.
int report_sweep(const std::string& out_dir, std::ostream& out,
                 std::ostream& err);

}  // namespace sst::dse
