// Point generation: expands a SweepSpec's axes into the concrete list of
// simulation points to execute, either the full cross product or a
// seeded random subset of it.  Point ids are indices into the cross
// product (row-major, last axis fastest), so the id->configuration
// mapping is stable across runs, resumes, and concurrency levels — the
// property the ledger and the results table rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/sweep_spec.h"
#include "sdl/config_graph.h"

namespace sst::dse {

/// One concrete configuration: the cross-product index plus the chosen
/// value per axis (parallel to SweepSpec::axes).
struct Point {
  std::uint64_t id = 0;
  std::vector<std::string> values;
};

/// Expands the spec into its executed points, sorted by id.  Cross mode
/// yields every combination; random mode draws `sampling.count` distinct
/// combinations from a splitmix64 stream seeded with `sampling.seed`
/// (the whole cross product when count >= its size).
[[nodiscard]] std::vector<Point> generate_points(const SweepSpec& spec);

/// Applies a point's axis values to a config graph via
/// ConfigGraph::apply_override.  Throws ConfigError on bad axis paths.
void apply_point(const SweepSpec& spec, const Point& point,
                 sdl::ConfigGraph& graph);

/// Early path validation: applies each axis's first value to a scratch
/// copy of the base graph so bad axis paths surface at spec-load time,
/// not halfway through a batch.  Throws ConfigError.
void validate_axes(const SweepSpec& spec, const sdl::JsonValue& base_model);

}  // namespace sst::dse
