// Results aggregation: ingests each completed point's stats JSON,
// extracts the user-declared objective values, computes the Pareto
// frontier and a scalarized best-point summary, and writes the results
// table (CSV + JSONL).
//
// The table is deterministic by construction: rows are ordered by point
// id, values come from the (deterministic) simulator, and nothing
// wall-clock- or concurrency-dependent is included — an interrupted and
// resumed sweep must produce the byte-identical table.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dse/ledger.h"
#include "dse/point_gen.h"
#include "dse/sweep_spec.h"

namespace sst::dse {

/// One row of the results table.
struct PointResult {
  Point point;
  std::string status;              // ledger status ("" = never ran)
  std::vector<double> objectives;  // parallel to spec.objectives
  bool complete = false;  // ran ok and every objective was found
  bool pareto = false;    // on the non-dominated frontier
  double score = 0.0;     // weighted normalized score (higher = better)
};

/// Extracts objective values from one stats JSON document.  Missing
/// component/statistic/field entries throw SweepError naming what was
/// available.
[[nodiscard]] std::vector<double> extract_objectives(
    const SweepSpec& spec, const sdl::JsonValue& stats);

/// Builds the results table from the ledger plus each ok point's
/// <out>/points/p<id>/stats.json.
[[nodiscard]] std::vector<PointResult> collect_results(
    const SweepSpec& spec, const std::vector<Point>& points,
    const Ledger& ledger, const std::string& out_dir);

/// Marks the Pareto-optimal rows (goal-aware non-domination over
/// complete rows) and computes each row's scalarized score: objectives
/// min-max normalized to [0, 1] with "better" mapped high, then
/// weight-summed.  With no objectives declared every complete row is
/// trivially on the frontier with score 0.
void compute_pareto(const SweepSpec& spec, std::vector<PointResult>& rows);

/// Results table writers (rows must already be scored).
void write_results_csv(const SweepSpec& spec,
                       const std::vector<PointResult>& rows,
                       std::ostream& os);
void write_results_jsonl(const SweepSpec& spec,
                         const std::vector<PointResult>& rows,
                         std::ostream& os);

/// Human-readable report: summary counts, the Pareto frontier, and the
/// best point by score.
void write_report(const SweepSpec& spec,
                  const std::vector<PointResult>& rows, std::ostream& os);

/// Best complete row by score (ties -> lowest point id); nullptr when
/// nothing completed.
[[nodiscard]] const PointResult* best_point(
    const std::vector<PointResult>& rows);

}  // namespace sst::dse
