#include "dse/point_gen.h"

#include <algorithm>
#include <set>

namespace sst::dse {

namespace {

/// splitmix64: the sampling stream.  Small, seedable, and stable across
/// platforms — random subsets must be identical everywhere or resumed
/// sweeps would disagree about which points exist.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Unbiased bounded draw (rejection on the modulo bias zone).
std::uint64_t bounded(std::uint64_t& state, std::uint64_t n) {
  const std::uint64_t limit = n * ((~0ULL) / n);
  for (;;) {
    const std::uint64_t r = splitmix64(state);
    if (r < limit) return r % n;
  }
}

Point point_from_index(const SweepSpec& spec, std::uint64_t index) {
  Point p;
  p.id = index;
  p.values.resize(spec.axes.size());
  // Row-major: the last axis varies fastest.
  std::uint64_t rest = index;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const std::uint64_t n = spec.axes[a].values.size();
    p.values[a] = spec.axes[a].values[rest % n];
    rest /= n;
  }
  return p;
}

}  // namespace

std::vector<Point> generate_points(const SweepSpec& spec) {
  const std::uint64_t total = spec.cross_size();
  std::vector<std::uint64_t> indices;
  if (spec.sampling.mode == Sampling::Mode::kCross ||
      spec.sampling.count >= total) {
    indices.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) indices[i] = i;
  } else {
    std::set<std::uint64_t> chosen;
    std::uint64_t state = spec.sampling.seed;
    while (chosen.size() < spec.sampling.count) {
      chosen.insert(bounded(state, total));
    }
    indices.assign(chosen.begin(), chosen.end());
  }
  std::vector<Point> points;
  points.reserve(indices.size());
  for (const std::uint64_t i : indices) {
    points.push_back(point_from_index(spec, i));
  }
  return points;
}

void apply_point(const SweepSpec& spec, const Point& point,
                 sdl::ConfigGraph& graph) {
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    graph.apply_override(spec.axes[a].path, point.values[a]);
  }
}

void validate_axes(const SweepSpec& spec, const sdl::JsonValue& base_model) {
  sdl::ConfigGraph graph = sdl::ConfigGraph::from_json(base_model);
  for (const auto& axis : spec.axes) {
    graph.apply_override(axis.path, axis.values.front());
  }
}

}  // namespace sst::dse
