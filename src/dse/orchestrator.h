// Sweep orchestrator: executes points through a pool of isolated child
// sstsim processes.
//
//   * Each point runs in its own directory (<out>/points/p<id>/) with
//     its materialized model.json, stats.json, and run.log — children
//     never share files, so any concurrency level is safe.
//   * The per-point timeout reuses the sstsim watchdog exit-code
//     contract: the child gets --watchdog <timeout> and exits 3 with
//     diagnostics; the orchestrator SIGKILLs only stragglers that
//     outlive even that.
//   * Transient outcomes (watchdog, signal death) are retried with
//     doubling backoff up to run.retries times; deterministic failures
//     (config/runtime/deadlock exits) are recorded immediately.
//   * Final outcomes go to the crash-consistent ledger, so a killed
//     driver resumes without re-running finished points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/ledger.h"
#include "dse/point_gen.h"
#include "dse/sweep_spec.h"

namespace sst::dse {

struct OrchestratorOptions {
  std::string sstsim_path;  // child simulator binary
  std::string out_dir;      // sweep output directory
  bool verbose = true;      // per-point progress lines on stderr
  /// When set, points are submitted to a running sstsimd daemon on this
  /// socket instead of fork/exec'ing child sstsim processes: the daemon
  /// parses the shared base model once (content-hash cache) and its
  /// worker pool applies the per-point deadline/retry policy, so the
  /// per-point dispatch overhead drops from a process spawn to a socket
  /// round trip (EXPERIMENTS.md E18).
  std::string daemon_socket;
};

struct OrchestratorSummary {
  std::uint64_t ok = 0;       // points that finished with exit 0
  std::uint64_t failed = 0;   // permanent failures (incl. exhausted retries)
  std::uint64_t skipped = 0;  // already "ok" in the ledger (resume)
};

/// Runs every point not already completed in the ledger.  Points with a
/// previous "failed"/"timeout" record are re-attempted.  Throws
/// SweepError on orchestration-level problems (unspawnable children,
/// unwritable point directories).
OrchestratorSummary run_points(const SweepSpec& spec,
                               const std::vector<Point>& points,
                               const sdl::JsonValue& base_model,
                               Ledger& ledger,
                               const OrchestratorOptions& options);

/// Point directory for an id: <out>/points/p<id (zero-padded)>.
[[nodiscard]] std::string point_dir(const std::string& out_dir,
                                    std::uint64_t id);

}  // namespace sst::dse
