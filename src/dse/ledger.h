// Sweep ledger: the crash-consistent record of which points have reached
// a final outcome.  One JSONL line per finished point plus a header line
// binding the ledger to its sweep (name + point count), so a resumed
// sweep can refuse a mismatched directory instead of silently mixing
// results.
//
// Appends are durable (single O_APPEND write + fsync via
// append_durable): a SIGKILL at any instant leaves at most one torn
// tail fragment, which load() discards as an interrupted append.  A
// later line for the same point supersedes the earlier one, so
// re-recording never needs a rewrite.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dse/sweep_spec.h"

namespace sst::dse {

/// Final outcome of one point (only final outcomes are recorded — a
/// point mid-retry has no ledger line and is re-run on resume).
struct LedgerRecord {
  std::uint64_t point = 0;
  std::string status;        // "ok" | "failed" | "timeout"
  int exit_code = 0;         // child exit code (when it exited)
  int term_signal = 0;       // terminating signal (when killed)
  unsigned attempts = 1;     // total attempts including the final one
  std::vector<std::string> values;  // axis values, parallel to spec.axes
};

class Ledger {
 public:
  /// Binds to `path`; nothing is read or written until load()/append().
  explicit Ledger(std::string path);

  /// Reads the ledger if it exists.  Returns false (empty ledger) when
  /// the file is absent.  Throws SweepError when the header disagrees
  /// with the given sweep identity or a line is malformed.
  bool load(const std::string& sweep_name, std::uint64_t point_count);

  /// Durably appends a final outcome (writing the header line first if
  /// the file is new).  Re-recording a point appends a superseding
  /// line; load() keeps the last one.
  void append(const LedgerRecord& record, const std::string& sweep_name,
              std::uint64_t point_count);

  [[nodiscard]] bool has(std::uint64_t point) const {
    return records_.contains(point);
  }
  [[nodiscard]] const LedgerRecord* record(std::uint64_t point) const {
    auto it = records_.find(point);
    return it == records_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<std::uint64_t, LedgerRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::uint64_t, LedgerRecord> records_;
  bool header_written_ = false;  // true once the file has a header line
};

}  // namespace sst::dse
