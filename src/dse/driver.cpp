#include "dse/driver.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "daemon/protocol.h"
#include "dse/aggregate.h"
#include "dse/ledger.h"
#include "dse/orchestrator.h"
#include "dse/point_gen.h"
#include "dse/sweep_spec.h"

namespace fs = std::filesystem;

namespace sst::dse {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SweepError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) throw SweepError("cannot write '" + path + "'");
}

/// Executes the orchestrate + aggregate + report tail shared by run and
/// resume.  `spec` must already have its model path resolved.
int execute(const SweepSpec& spec, const std::string& out_dir,
            const std::string& sstsim_path, bool quiet,
            const std::string& daemon_socket, std::ostream& out,
            std::ostream& err) {
  const sdl::JsonValue base_model =
      sdl::JsonValue::parse(read_file(spec.model_path));
  validate_axes(spec, base_model);
  const std::vector<Point> points = generate_points(spec);

  Ledger ledger(out_dir + "/ledger.jsonl");
  ledger.load(spec.name, points.size());

  OrchestratorOptions orch;
  orch.sstsim_path = sstsim_path;
  orch.out_dir = out_dir;
  orch.verbose = !quiet;
  orch.daemon_socket = daemon_socket;
  const OrchestratorSummary summary =
      run_points(spec, points, base_model, ledger, orch);

  std::vector<PointResult> rows =
      collect_results(spec, points, ledger, out_dir);
  compute_pareto(spec, rows);
  {
    std::ofstream csv(out_dir + "/results.csv");
    write_results_csv(spec, rows, csv);
    std::ofstream jsonl(out_dir + "/results.jsonl");
    write_results_jsonl(spec, rows, jsonl);
    if (!csv || !jsonl) {
      err << "cannot write results table under " << out_dir << "\n";
      return kSweepExitFailed;
    }
  }
  write_report(spec, rows, out);
  out << "results: " << out_dir << "/results.csv\n";
  return summary.failed == 0 ? kSweepExitOk : kSweepExitFailed;
}

}  // namespace

int run_sweep(const DriverOptions& options, std::ostream& out,
              std::ostream& err) {
  try {
    const fs::path spec_path(options.spec_path);
    SweepSpec spec = SweepSpec::from_json_text(
        read_file(options.spec_path),
        spec_path.parent_path().string());
    if (options.jobs > 0) spec.run.concurrency = options.jobs;

    std::string out_dir = options.out_dir;
    if (out_dir.empty()) {
      out_dir = spec_path.stem().string() + ".sweep";
    }
    fs::create_directories(out_dir);

    // Make the directory self-contained: copy the base model in and
    // rewrite the spec to reference the copy, so resume works after the
    // original spec file moves or changes.
    write_file(out_dir + "/model.json", read_file(spec.model_path));
    spec.model_path = out_dir + "/model.json";
    SweepSpec archived = spec;
    archived.model_path = "model.json";  // relative to the sweep dir
    write_file(out_dir + "/sweep.json", archived.to_json().dump(2) + "\n");

    return execute(spec, out_dir, options.sstsim_path, options.quiet,
                   options.daemon_socket, out, err);
  } catch (const daemon::DaemonError& e) {
    err << "sweep failed: " << e.what() << "\n";
    return kSweepExitDaemon;
  } catch (const ConfigError& e) {
    err << "sweep failed: " << e.what() << "\n";
    return kSweepExitConfig;
  }
}

int resume_sweep(const std::string& out_dir, const std::string& sstsim_path,
                 unsigned jobs, bool quiet, std::ostream& out,
                 std::ostream& err, const std::string& daemon_socket) {
  try {
    const std::string spec_file = out_dir + "/sweep.json";
    if (!fs::exists(spec_file)) {
      err << "resume: no sweep.json under '" << out_dir
          << "' (was this directory created by 'run'?)\n";
      return kSweepExitConfig;
    }
    SweepSpec spec =
        SweepSpec::from_json_text(read_file(spec_file), out_dir);
    if (jobs > 0) spec.run.concurrency = jobs;
    return execute(spec, out_dir, sstsim_path, quiet, daemon_socket, out,
                   err);
  } catch (const daemon::DaemonError& e) {
    err << "resume failed: " << e.what() << "\n";
    return kSweepExitDaemon;
  } catch (const ConfigError& e) {
    err << "resume failed: " << e.what() << "\n";
    return kSweepExitConfig;
  }
}

int report_sweep(const std::string& out_dir, std::ostream& out,
                 std::ostream& err) {
  try {
    const std::string spec_file = out_dir + "/sweep.json";
    if (!fs::exists(spec_file)) {
      err << "report: no sweep.json under '" << out_dir << "'\n";
      return kSweepExitConfig;
    }
    const SweepSpec spec =
        SweepSpec::from_json_text(read_file(spec_file), out_dir);
    const std::vector<Point> points = generate_points(spec);
    Ledger ledger(out_dir + "/ledger.jsonl");
    ledger.load(spec.name, points.size());
    std::vector<PointResult> rows =
        collect_results(spec, points, ledger, out_dir);
    compute_pareto(spec, rows);
    write_report(spec, rows, out);
    return kSweepExitOk;
  } catch (const ConfigError& e) {
    err << "report failed: " << e.what() << "\n";
    return kSweepExitConfig;
  }
}

}  // namespace sst::dse
