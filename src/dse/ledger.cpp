#include "dse/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace fs = std::filesystem;

namespace sst::dse {

namespace {

std::string record_to_line(const LedgerRecord& r) {
  std::ostringstream os;
  os << "{\"point\":" << r.point << ",\"status\":\""
     << obs::json_escape(r.status) << "\",\"exit\":" << r.exit_code
     << ",\"signal\":" << r.term_signal << ",\"attempts\":" << r.attempts
     << ",\"values\":[";
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    os << (i ? "," : "") << "\"" << obs::json_escape(r.values[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

/// tmp + write + fsync + rename + directory fsync: the ckpt publish
/// discipline, so a crash never leaves a torn ledger.
void publish(const std::string& path, const std::string& content) {
  const fs::path target(path);
  const fs::path tmp =
      target.parent_path() / (".tmp." + target.filename().string());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SweepError("cannot write ledger temp file '" + tmp.string() + "'");
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SweepError("short write to ledger temp file '" + tmp.string() +
                       "'");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw SweepError("fsync of ledger temp file '" + tmp.string() +
                     "' failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw SweepError("cannot publish ledger '" + path + "'");
  }
  const std::string dir =
      target.parent_path().empty() ? "." : target.parent_path().string();
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

}  // namespace

Ledger::Ledger(std::string path) : path_(std::move(path)) {}

bool Ledger::load(const std::string& sweep_name, std::uint64_t point_count) {
  std::ifstream in(path_);
  if (!in) return false;
  std::string line;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    sdl::JsonValue doc;
    try {
      doc = sdl::JsonValue::parse(line);
    } catch (const sdl::JsonError& e) {
      throw SweepError("ledger '" + path_ + "' line " +
                       std::to_string(lineno) + " is malformed: " + e.what());
    }
    if (!saw_header) {
      // Header: {"sweep": name, "points": N}
      if (!doc.has("sweep") || !doc.has("points")) {
        throw SweepError("ledger '" + path_ + "' has no header line");
      }
      if (doc.at("sweep").as_string() != sweep_name) {
        throw SweepError("ledger '" + path_ + "' belongs to sweep '" +
                         doc.at("sweep").as_string() + "', not '" +
                         sweep_name + "'");
      }
      if (static_cast<std::uint64_t>(doc.at("points").as_number()) !=
          point_count) {
        throw SweepError("ledger '" + path_ + "' records " +
                         std::to_string(static_cast<std::uint64_t>(
                             doc.at("points").as_number())) +
                         " points but the spec generates " +
                         std::to_string(point_count) +
                         " (was the spec edited mid-sweep?)");
      }
      saw_header = true;
      continue;
    }
    LedgerRecord r;
    r.point = static_cast<std::uint64_t>(doc.at("point").as_number());
    r.status = doc.at("status").as_string();
    r.exit_code = static_cast<int>(doc.get_number("exit", 0));
    r.term_signal = static_cast<int>(doc.get_number("signal", 0));
    r.attempts = static_cast<unsigned>(doc.get_number("attempts", 1));
    if (doc.has("values")) {
      for (const auto& v : doc.at("values").as_array()) {
        r.values.push_back(v.as_string());
      }
    }
    records_[r.point] = std::move(r);
  }
  return saw_header;
}

void Ledger::append(const LedgerRecord& record, const std::string& sweep_name,
                    std::uint64_t point_count) {
  records_[record.point] = record;
  std::ostringstream os;
  os << "{\"sweep\":\"" << obs::json_escape(sweep_name)
     << "\",\"points\":" << point_count << "}\n";
  for (const auto& [id, r] : records_) {
    (void)id;
    os << record_to_line(r) << "\n";
  }
  publish(path_, os.str());
}

}  // namespace sst::dse
