#include "dse/ledger.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/atomic_file.h"
#include "obs/json_util.h"

namespace sst::dse {

namespace {

std::string record_to_line(const LedgerRecord& r) {
  std::ostringstream os;
  os << "{\"point\":" << r.point << ",\"status\":\""
     << obs::json_escape(r.status) << "\",\"exit\":" << r.exit_code
     << ",\"signal\":" << r.term_signal << ",\"attempts\":" << r.attempts
     << ",\"values\":[";
  for (std::size_t i = 0; i < r.values.size(); ++i) {
    os << (i ? "," : "") << "\"" << obs::json_escape(r.values[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

}  // namespace

Ledger::Ledger(std::string path) : path_(std::move(path)) {}

bool Ledger::load(const std::string& sweep_name, std::uint64_t point_count) {
  std::ifstream in(path_);
  if (!in) return false;
  std::vector<std::pair<std::size_t, std::string>> lines;  // (lineno, text)
  {
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (!line.empty()) lines.emplace_back(lineno, std::move(line));
    }
  }
  bool saw_header = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& [lineno, line] = lines[i];
    sdl::JsonValue doc;
    try {
      doc = sdl::JsonValue::parse(line);
    } catch (const sdl::JsonError& e) {
      // A malformed *final* line is a torn tail — an appender died
      // mid-write.  The prefix is still a valid ledger, so ignore the
      // fragment instead of failing the whole resume.  Malformed
      // interior lines mean real corruption and still throw.
      if (i + 1 == lines.size()) {
        std::cerr << "[dse] ledger '" << path_ << "': dropping torn final "
                  << "line " << lineno << " (interrupted append)\n";
        // Truncate the fragment so this sweep's appends start fresh
        // instead of gluing onto it.
        const std::string terr = truncate_torn_tail(path_, line.size());
        if (!terr.empty()) {
          throw SweepError("ledger '" + path_ +
                           "': cannot repair torn tail: " + terr);
        }
        break;
      }
      throw SweepError("ledger '" + path_ + "' line " +
                       std::to_string(lineno) + " is malformed: " + e.what());
    }
    if (!saw_header) {
      // Header: {"sweep": name, "points": N}
      if (!doc.has("sweep") || !doc.has("points")) {
        throw SweepError("ledger '" + path_ + "' has no header line");
      }
      if (doc.at("sweep").as_string() != sweep_name) {
        throw SweepError("ledger '" + path_ + "' belongs to sweep '" +
                         doc.at("sweep").as_string() + "', not '" +
                         sweep_name + "'");
      }
      if (static_cast<std::uint64_t>(doc.at("points").as_number()) !=
          point_count) {
        throw SweepError("ledger '" + path_ + "' records " +
                         std::to_string(static_cast<std::uint64_t>(
                             doc.at("points").as_number())) +
                         " points but the spec generates " +
                         std::to_string(point_count) +
                         " (was the spec edited mid-sweep?)");
      }
      saw_header = true;
      continue;
    }
    LedgerRecord r;
    r.point = static_cast<std::uint64_t>(doc.at("point").as_number());
    r.status = doc.at("status").as_string();
    r.exit_code = static_cast<int>(doc.get_number("exit", 0));
    r.term_signal = static_cast<int>(doc.get_number("signal", 0));
    r.attempts = static_cast<unsigned>(doc.get_number("attempts", 1));
    if (doc.has("values")) {
      for (const auto& v : doc.at("values").as_array()) {
        r.values.push_back(v.as_string());
      }
    }
    records_[r.point] = std::move(r);
  }
  header_written_ = saw_header;
  return saw_header;
}

void Ledger::append(const LedgerRecord& record, const std::string& sweep_name,
                    std::uint64_t point_count) {
  records_[record.point] = record;
  std::ostringstream os;
  if (!header_written_) {
    os << "{\"sweep\":\"" << obs::json_escape(sweep_name)
       << "\",\"points\":" << point_count << "}\n";
  }
  os << record_to_line(record) << "\n";
  const std::string err = append_durable(path_, os.str());
  if (!err.empty()) throw SweepError("ledger: " + err);
  header_written_ = true;
}

}  // namespace sst::dse
