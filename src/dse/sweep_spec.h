// SweepSpec: the declarative input of the design-space exploration
// driver (src/dse).  A sweep is a base SDL model plus a set of *axes* —
// JSON-pointer-style paths into the ConfigGraph (see
// ConfigGraph::apply_override) with either an explicit value list or a
// linear/log range — expanded into concrete simulation points by
// cross-product or seeded random sampling, executed by the orchestrator,
// and scored against user-declared *objectives* read from each point's
// statistics dump.
//
// JSON schema:
// {
//   "name": "cache_vs_latency",        // optional; defaults from filename
//   "model": "node.json",              // base SDL model, relative to spec
//   "axes": [
//     { "path": "/components/l1/params/size",
//       "values": ["16KiB", "32KiB", "64KiB"] },
//     { "path": "/links/0/latency", "name": "l1_lat",
//       "range": {"from": 1, "to": 8, "steps": 4, "scale": "log"},
//       "suffix": "ns" }
//   ],
//   "sample": { "mode": "cross" },     // or {"mode": "random",
//                                      //     "count": 16, "seed": 7}
//   "objectives": [
//     { "name": "instructions", "component": "cpu",
//       "statistic": "instructions", "field": "count",
//       "goal": "max", "weight": 1.0 },
//     { "component": "mc", "statistic": "bytes", "goal": "min" }
//   ],
//   "run": { "concurrency": 4, "timeout_seconds": 120, "retries": 2,
//            "backoff_seconds": 0.5, "ranks": 0, "end": "50us" }
// }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sdl/json.h"

namespace sst::dse {

/// Thrown on malformed sweep specifications.
class SweepError : public ConfigError {
 public:
  using ConfigError::ConfigError;
};

/// One swept dimension: a ConfigGraph override path plus its expanded
/// candidate values (explicit lists and ranges both end up here).
struct Axis {
  std::string name;                 // results-table column
  std::string path;                 // ConfigGraph::apply_override path
  std::vector<std::string> values;  // expanded candidate values, in order
};

/// How the cross product of the axes is reduced to executed points.
struct Sampling {
  enum class Mode { kCross, kRandom };
  Mode mode = Mode::kCross;
  std::uint64_t count = 0;  // random mode: points to draw
  std::uint64_t seed = 1;   // random mode: sampling seed
};

/// One optimization objective, resolved against a point's stats JSON
/// ({"component", "statistic", "fields": {...}} records).
struct Objective {
  std::string name;       // results-table column
  std::string component;
  std::string statistic;
  std::string field = "count";
  bool maximize = false;  // "goal": "max" | "min"
  double weight = 1.0;    // best-point scalarization weight
};

/// Execution policy for the orchestrator.
struct RunPolicy {
  unsigned concurrency = 2;      // parallel child sstsim processes
  double timeout_seconds = 300;  // per-point watchdog budget (0 = none)
  unsigned retries = 2;          // extra attempts for transient failures
  double backoff_seconds = 0.5;  // initial retry backoff, doubling
  unsigned ranks = 0;            // child --ranks override (0 = model's)
  std::string end_time;          // child --end override ("" = model's)
};

struct SweepSpec {
  std::string name = "sweep";
  std::string model_path;  // resolved against the spec file's directory
  std::vector<Axis> axes;
  Sampling sampling;
  std::vector<Objective> objectives;
  RunPolicy run;

  /// Parses and validates a sweep document.  `spec_dir` anchors relative
  /// model paths ("" = cwd).  Throws SweepError on structural problems:
  /// missing/empty axes, empty ranges, duplicate axis paths, bad
  /// goals/modes, non-positive log ranges.
  [[nodiscard]] static SweepSpec from_json_text(std::string_view text,
                                               const std::string& spec_dir);
  [[nodiscard]] static SweepSpec from_json(const sdl::JsonValue& doc,
                                           const std::string& spec_dir);

  /// Serializes back to JSON (the driver copies the spec into the sweep
  /// output directory so `resume` does not depend on the original file).
  [[nodiscard]] sdl::JsonValue to_json() const;

  /// Total size of the axes' cross product.
  [[nodiscard]] std::uint64_t cross_size() const;
};

}  // namespace sst::dse
