#include "dse/orchestrator.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "daemon/client.h"

namespace fs = std::filesystem;

namespace sst::dse {

namespace {

using Clock = std::chrono::steady_clock;

// sstsim's documented watchdog exit code: the transient-outcome marker.
constexpr int kChildWatchdogExit = 3;
// _exit() value of a child whose execv failed (distinct from every
// documented sstsim code).
constexpr int kExecFailedExit = 127;

struct PendingPoint {
  const Point* point = nullptr;
  unsigned attempts = 0;          // attempts already made
  Clock::time_point not_before;   // backoff gate
};

struct RunningPoint {
  const Point* point = nullptr;
  unsigned attempts = 1;          // attempts including this one
  Clock::time_point hard_deadline;
  bool hard_killed = false;
};

/// Writes the point's materialized model (base + axis overrides).
void write_point_model(const SweepSpec& spec, const Point& point,
                       const sdl::JsonValue& base_model,
                       const std::string& dir) {
  sdl::ConfigGraph graph = sdl::ConfigGraph::from_json(base_model);
  apply_point(spec, point, graph);
  const std::string path = dir + "/model.json";
  std::ofstream out(path);
  out << graph.to_json().dump(2) << "\n";
  if (!out) throw SweepError("cannot write point model '" + path + "'");
}

/// fsync a finished child's output so the ledger's "ok" never outlives
/// the stats it vouches for.
void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// fork + chdir + redirect + execv.  Only async-signal-safe calls run
/// between fork and execv.
pid_t spawn_child(const std::vector<std::string>& argv,
                  const std::string& dir) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw SweepError("fork failed");
  if (pid == 0) {
    if (::chdir(dir.c_str()) != 0) ::_exit(kExecFailedExit);
    const int log =
        ::open("run.log", O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log >= 0) {
      ::dup2(log, 1);
      ::dup2(log, 2);
      if (log > 2) ::close(log);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(kExecFailedExit);
  }
  return pid;
}

/// Zero-padded point label ("p000042") — the request-id component and
/// the directory name share it.
std::string point_label(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "p%06llu",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Daemon-backed execution: every point becomes one run request on the
/// sstsimd socket.  The daemon owns the per-point lifecycle (watchdog
/// deadline, doubling-backoff retries, crash isolation in its worker
/// pool); this side only submits with bounded in-flight credit and folds
/// the "done" replies into the sweep ledger.  Request ids are stable
/// ("<sweep>/p<id>"), so resuming after the daemon recovered a kill -9
/// replays already-finished work from its ledger instead of re-running.
OrchestratorSummary run_points_daemon(const SweepSpec& spec,
                                      const std::vector<Point>& points,
                                      Ledger& ledger,
                                      const OrchestratorOptions& options) {
  OrchestratorSummary summary;
  std::string model_bytes;
  {
    std::ifstream in(spec.model_path);
    if (!in) throw SweepError("cannot open '" + spec.model_path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    model_bytes = buf.str();
  }

  struct Job {
    const Point* point = nullptr;
    std::string id;
  };
  std::deque<Job> todo;
  for (const auto& p : points) {
    const LedgerRecord* rec = ledger.record(p.id);
    if (rec != nullptr && rec->status == "ok") {
      ++summary.skipped;
      continue;
    }
    std::string id = spec.name + "/" + point_label(p.id);
    // A re-attempt of a previously failed point needs a fresh request id,
    // or the daemon would replay the recorded failure verbatim.
    if (rec != nullptr) id += "@a" + std::to_string(rec->attempts);
    todo.push_back({&p, std::move(id)});
  }
  const std::uint64_t to_run = todo.size();
  if (options.verbose && summary.skipped > 0) {
    std::cerr << "[dse] resuming: " << summary.skipped
              << " points already complete, " << to_run << " to run\n";
  }
  if (to_run == 0) return summary;

  daemon::DaemonClient client(options.daemon_socket);
  // In-flight credit: never submit more than the daemon's admission
  // queue can hold, so a single sweep cannot trip its own overload
  // shedding.
  std::size_t window = 16;
  {
    const sdl::JsonValue st = client.status();
    const auto cap =
        static_cast<std::size_t>(st.get_number("queue_capacity", 16));
    window = cap > 0 ? cap : 1;
  }

  std::map<std::string, const Point*> inflight;
  std::uint64_t finished = 0;
  auto submit = [&](Job job) {
    const std::string dir = point_dir(options.out_dir, job.point->id);
    fs::create_directories(dir);
    daemon::RunRequest req;
    req.id = job.id;
    req.model_json = model_bytes;
    req.out_dir = dir;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      req.overrides.emplace_back(spec.axes[a].path, job.point->values[a]);
    }
    req.ranks = spec.run.ranks;
    req.end_time = spec.run.end_time;
    req.timeout_seconds = spec.run.timeout_seconds;
    req.retries = spec.run.retries;
    req.backoff_seconds = spec.run.backoff_seconds;
    client.send(req);
    inflight.emplace(std::move(job.id), job.point);
  };

  while (!todo.empty() || !inflight.empty()) {
    while (!todo.empty() && inflight.size() < window) {
      submit(std::move(todo.front()));
      todo.pop_front();
    }
    const sdl::JsonValue reply = client.next_reply();
    const std::string type = reply.get_string("type", "");
    const std::string id = reply.get_string("id", "");
    if (type == "accepted") continue;
    if (type == "rejected") {
      if (reply.get_string("reason", "") == "draining") {
        throw daemon::DaemonError("daemon at '" + options.daemon_socket +
                                  "' is draining and refused the sweep");
      }
      const auto it = inflight.find(id);
      if (it == inflight.end()) continue;
      // Overloaded (other clients share the queue): back off briefly,
      // then resubmit — the shed is explicit and bounded, not a hang.
      todo.push_back({it->second, it->first});
      inflight.erase(it);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (type == "error") {
      throw daemon::DaemonError("daemon: " + reply.get_string("error", "?"));
    }
    if (type != "done") continue;
    const auto it = inflight.find(id);
    if (it == inflight.end()) continue;
    const Point* point = it->second;
    inflight.erase(it);

    LedgerRecord rec;
    rec.point = point->id;
    const std::string status = reply.get_string("status", "failed");
    rec.status = (status == "ok" || status == "timeout") ? status : "failed";
    rec.exit_code = static_cast<int>(reply.get_number("exit", 1));
    rec.term_signal = static_cast<int>(reply.get_number("signal", 0));
    rec.attempts = static_cast<unsigned>(reply.get_number("attempts", 1));
    rec.values = point->values;
    if (rec.status == "ok") {
      ++summary.ok;  // the worker published stats.json durably already
    } else {
      ++summary.failed;
    }
    ledger.append(rec, spec.name, points.size());
    ++finished;
    if (options.verbose) {
      std::cerr << "[dse] point " << rec.point << " " << rec.status << " ("
                << finished << "/" << to_run << ", daemon)\n";
    }
  }
  return summary;
}

}  // namespace

std::string point_dir(const std::string& out_dir, std::uint64_t id) {
  return out_dir + "/points/" + point_label(id);
}

OrchestratorSummary run_points(const SweepSpec& spec,
                               const std::vector<Point>& points,
                               const sdl::JsonValue& base_model,
                               Ledger& ledger,
                               const OrchestratorOptions& options) {
  if (!options.daemon_socket.empty()) {
    return run_points_daemon(spec, points, ledger, options);
  }
  OrchestratorSummary summary;
  // The child chdirs into its point directory, so the binary path must
  // survive the move.
  const std::string sstsim = fs::absolute(options.sstsim_path).string();
  if (!fs::exists(sstsim)) {
    throw SweepError("simulator binary '" + options.sstsim_path +
                     "' does not exist");
  }

  std::deque<PendingPoint> pending;
  for (const auto& p : points) {
    const LedgerRecord* rec = ledger.record(p.id);
    if (rec != nullptr && rec->status == "ok") {
      ++summary.skipped;
      continue;
    }
    pending.push_back({&p, 0, Clock::now()});
  }
  const std::uint64_t to_run = pending.size();
  if (options.verbose && summary.skipped > 0) {
    std::cerr << "[dse] resuming: " << summary.skipped
              << " points already complete, " << to_run << " to run\n";
  }

  const double timeout = spec.run.timeout_seconds;
  std::map<pid_t, RunningPoint> running;
  std::uint64_t finished = 0;

  auto finalize = [&](const RunningPoint& run, const std::string& status,
                      int exit_code, int sig) {
    LedgerRecord rec;
    rec.point = run.point->id;
    rec.status = status;
    rec.exit_code = exit_code;
    rec.term_signal = sig;
    rec.attempts = run.attempts;
    rec.values = run.point->values;
    if (status == "ok") {
      fsync_file(point_dir(options.out_dir, rec.point) + "/stats.json");
      ++summary.ok;
    } else {
      ++summary.failed;
    }
    ledger.append(rec, spec.name, points.size());
    ++finished;
    if (options.verbose) {
      std::cerr << "[dse] point " << rec.point << " " << status << " ("
                << finished << "/" << to_run << ")\n";
    }
  };

  while (!pending.empty() || !running.empty()) {
    // Fill free worker slots with ready pending points.
    while (running.size() < spec.run.concurrency && !pending.empty()) {
      // Pull the first ready entry (backoff may gate the head while a
      // later first-attempt point is ready).
      auto ready = pending.end();
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->not_before <= Clock::now()) {
          ready = it;
          break;
        }
      }
      if (ready == pending.end()) break;
      const PendingPoint job = *ready;
      pending.erase(ready);

      const std::string dir = point_dir(options.out_dir, job.point->id);
      fs::create_directories(dir);
      write_point_model(spec, *job.point, base_model, dir);

      std::vector<std::string> argv = {sstsim, "model.json", "--stats",
                                       "stats.json", "--stats-format",
                                       "json"};
      if (timeout > 0) {
        argv.push_back("--watchdog");
        argv.push_back(std::to_string(timeout));
      }
      if (spec.run.ranks > 0) {
        argv.push_back("--ranks");
        argv.push_back(std::to_string(spec.run.ranks));
      }
      if (!spec.run.end_time.empty()) {
        argv.push_back("--end");
        argv.push_back(spec.run.end_time);
      }
      const pid_t pid = spawn_child(argv, dir);
      RunningPoint run;
      run.point = job.point;
      run.attempts = job.attempts + 1;
      // The child's own watchdog fires at `timeout`; the hard deadline
      // only catches children too wedged to honour it.
      run.hard_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 timeout > 0 ? timeout * 1.5 + 2.0 : 1e9));
      running.emplace(pid, run);
    }

    // Reap.
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      auto it = running.find(pid);
      if (it == running.end()) continue;  // not ours (shouldn't happen)
      const RunningPoint run = it->second;
      running.erase(it);

      const bool exited = WIFEXITED(status);
      const int exit_code = exited ? WEXITSTATUS(status) : 0;
      const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
      const bool transient =
          (exited && exit_code == kChildWatchdogExit) || sig != 0;
      if (exited && exit_code == 0) {
        finalize(run, "ok", 0, 0);
      } else if (transient && run.attempts <= spec.run.retries) {
        const double backoff =
            spec.run.backoff_seconds * static_cast<double>(1u << (run.attempts - 1));
        if (options.verbose) {
          std::cerr << "[dse] point " << run.point->id << " attempt "
                    << run.attempts << " "
                    << (sig != 0
                            ? "killed (signal " + std::to_string(sig) + ")"
                            : "timed out (exit " +
                                  std::to_string(exit_code) + ")")
                    << "; retrying in " << backoff << "s\n";
        }
        pending.push_back(
            {run.point, run.attempts,
             Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(backoff))});
      } else {
        finalize(run,
                 transient || run.hard_killed ? "timeout" : "failed",
                 exit_code, sig);
      }
      continue;  // look for more finished children before sleeping
    }

    // Enforce hard deadlines on stragglers.
    for (auto& [cpid, run] : running) {
      if (!run.hard_killed && Clock::now() > run.hard_deadline) {
        ::kill(cpid, SIGKILL);
        run.hard_killed = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return summary;
}

}  // namespace sst::dse
