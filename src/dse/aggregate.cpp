#include "dse/aggregate.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/statistics.h"
#include "dse/orchestrator.h"
#include "obs/json_util.h"

namespace sst::dse {

namespace {

/// Objective values print like the stats writers (12 significant
/// digits): the table must be byte-stable across runs.
std::string format_number(double v) { return obs::json_number(v); }

}  // namespace

std::vector<double> extract_objectives(const SweepSpec& spec,
                                       const sdl::JsonValue& stats) {
  std::vector<double> out;
  out.reserve(spec.objectives.size());
  for (const auto& obj : spec.objectives) {
    const sdl::JsonValue* found = nullptr;
    for (const auto& entry : stats.as_array()) {
      if (entry.at("component").as_string() == obj.component &&
          entry.at("statistic").as_string() == obj.statistic) {
        found = &entry;
        break;
      }
    }
    if (found == nullptr) {
      throw SweepError("objective '" + obj.name + "': no statistic '" +
                       obj.component + "." + obj.statistic +
                       "' in the stats dump");
    }
    const sdl::JsonValue& fields = found->at("fields");
    if (!fields.has(obj.field)) {
      std::string known;
      for (const auto& [k, v] : fields.as_object()) {
        (void)v;
        known += known.empty() ? "" : ", ";
        known += k;
      }
      throw SweepError("objective '" + obj.name + "': statistic '" +
                       obj.component + "." + obj.statistic +
                       "' has no field '" + obj.field + "' (fields: " +
                       known + ")");
    }
    out.push_back(fields.at(obj.field).as_number());
  }
  return out;
}

std::vector<PointResult> collect_results(const SweepSpec& spec,
                                         const std::vector<Point>& points,
                                         const Ledger& ledger,
                                         const std::string& out_dir) {
  std::vector<PointResult> rows;
  rows.reserve(points.size());
  for (const auto& p : points) {
    PointResult row;
    row.point = p;
    const LedgerRecord* rec = ledger.record(p.id);
    if (rec != nullptr) row.status = rec->status;
    if (rec != nullptr && rec->status == "ok") {
      const std::string stats_path =
          point_dir(out_dir, p.id) + "/stats.json";
      std::ifstream in(stats_path);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        try {
          row.objectives =
              extract_objectives(spec, sdl::JsonValue::parse(buf.str()));
          row.complete = true;
        } catch (const ConfigError&) {
          // Torn or incompatible stats: surface as incomplete rather
          // than aborting the whole report.
          row.status = "no-stats";
        }
      } else {
        row.status = "no-stats";
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void compute_pareto(const SweepSpec& spec, std::vector<PointResult>& rows) {
  const std::size_t n_obj = spec.objectives.size();
  // Canonicalize to maximize-all so domination is a single comparison.
  auto canon = [&](const PointResult& r, std::size_t k) {
    return spec.objectives[k].maximize ? r.objectives[k] : -r.objectives[k];
  };
  for (auto& row : rows) {
    if (!row.complete) continue;
    bool dominated = false;
    for (const auto& other : rows) {
      if (!other.complete || &other == &row) continue;
      bool geq_all = true, gt_any = false;
      for (std::size_t k = 0; k < n_obj; ++k) {
        if (canon(other, k) < canon(row, k)) geq_all = false;
        if (canon(other, k) > canon(row, k)) gt_any = true;
      }
      if (geq_all && gt_any) {
        dominated = true;
        break;
      }
    }
    row.pareto = !dominated;
  }

  // Scalarized score: per-objective min-max normalization over complete
  // rows, "better" mapped toward 1, weighted sum.
  for (std::size_t k = 0; k < n_obj; ++k) {
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const auto& row : rows) {
      if (!row.complete) continue;
      const double v = canon(row, k);
      lo = first ? v : std::min(lo, v);
      hi = first ? v : std::max(hi, v);
      first = false;
    }
    const double span = hi - lo;
    for (auto& row : rows) {
      if (!row.complete) continue;
      const double norm =
          span > 0 ? (canon(row, k) - lo) / span : 1.0;
      row.score += spec.objectives[k].weight * norm;
    }
  }
}

const PointResult* best_point(const std::vector<PointResult>& rows) {
  const PointResult* best = nullptr;
  for (const auto& row : rows) {
    if (!row.complete) continue;
    if (best == nullptr || row.score > best->score) best = &row;
  }
  return best;
}

void write_results_csv(const SweepSpec& spec,
                       const std::vector<PointResult>& rows,
                       std::ostream& os) {
  os << "point,status";
  for (const auto& a : spec.axes) os << "," << csv_escape(a.name);
  for (const auto& o : spec.objectives) os << "," << csv_escape(o.name);
  os << ",pareto,score\n";
  for (const auto& row : rows) {
    os << row.point.id << "," << (row.status.empty() ? "pending" : row.status);
    for (const auto& v : row.point.values) os << "," << csv_escape(v);
    for (std::size_t k = 0; k < spec.objectives.size(); ++k) {
      os << ",";
      if (row.complete) os << format_number(row.objectives[k]);
    }
    os << "," << (row.pareto ? "1" : "0") << ","
       << (row.complete ? format_number(row.score) : "") << "\n";
  }
}

void write_results_jsonl(const SweepSpec& spec,
                         const std::vector<PointResult>& rows,
                         std::ostream& os) {
  for (const auto& row : rows) {
    os << "{\"point\":" << row.point.id << ",\"status\":\""
       << obs::json_escape(row.status.empty() ? "pending" : row.status)
       << "\",\"values\":{";
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      os << (a ? "," : "") << "\"" << obs::json_escape(spec.axes[a].name)
         << "\":\"" << obs::json_escape(row.point.values[a]) << "\"";
    }
    os << "}";
    if (row.complete) {
      os << ",\"objectives\":{";
      for (std::size_t k = 0; k < spec.objectives.size(); ++k) {
        os << (k ? "," : "") << "\""
           << obs::json_escape(spec.objectives[k].name)
           << "\":" << format_number(row.objectives[k]);
      }
      os << "},\"pareto\":" << (row.pareto ? "true" : "false")
         << ",\"score\":" << format_number(row.score);
    }
    os << "}\n";
  }
}

void write_report(const SweepSpec& spec,
                  const std::vector<PointResult>& rows, std::ostream& os) {
  std::uint64_t ok = 0, failed = 0, pending = 0;
  for (const auto& row : rows) {
    if (row.status == "ok" || row.status == "no-stats") {
      ++ok;
    } else if (row.status.empty()) {
      ++pending;
    } else {
      ++failed;
    }
  }
  os << "sweep '" << spec.name << "': " << rows.size() << " points, " << ok
     << " ok, " << failed << " failed, " << pending << " pending\n";
  if (spec.objectives.empty()) {
    os << "(no objectives declared; results table has raw axis values "
          "only)\n";
    return;
  }

  auto print_row = [&](const PointResult& row) {
    os << "  point " << row.point.id;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      os << "  " << spec.axes[a].name << "=" << row.point.values[a];
    }
    for (std::size_t k = 0; k < spec.objectives.size(); ++k) {
      os << "  " << spec.objectives[k].name << "="
         << format_number(row.objectives[k]);
    }
    os << "  score=" << format_number(row.score) << "\n";
  };

  std::uint64_t frontier = 0;
  for (const auto& row : rows) frontier += row.pareto ? 1 : 0;
  os << "Pareto frontier (" << frontier << " of " << ok << " complete):\n";
  for (const auto& row : rows) {
    if (row.pareto) print_row(row);
  }
  if (const PointResult* best = best_point(rows)) {
    os << "best (weighted score):\n";
    print_row(*best);
  }
}

}  // namespace sst::dse
