#include "dse/sweep_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace sst::dse {

namespace {

/// Formats a range sample as a parameter value: integral values print
/// without a decimal point so "/config/seed"-style integer overrides and
/// byte counts stay parseable; everything else uses shortest-round-trip
/// %g, matching the SDL's number-to-param normalization.
std::string format_value(double v, const std::string& suffix) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%g", v);
  }
  return std::string(buf) + suffix;
}

std::vector<std::string> expand_range(const sdl::JsonValue& jr,
                                      const std::string& suffix,
                                      const std::string& path) {
  auto fail = [&path](const std::string& msg) -> void {
    throw SweepError("axis '" + path + "': " + msg);
  };
  if (!jr.has("from") || !jr.has("to")) fail("range requires from and to");
  const double from = jr.at("from").as_number();
  const double to = jr.at("to").as_number();
  const auto steps =
      static_cast<std::uint64_t>(jr.get_number("steps", 2));
  const std::string scale = jr.get_string("scale", "linear");
  if (steps == 0) fail("empty range (steps must be >= 1)");
  if (scale != "linear" && scale != "log") {
    fail("unknown scale '" + scale + "' (known: linear, log)");
  }
  const bool log = scale == "log";
  if (log && (from <= 0 || to <= 0)) {
    fail("log range requires positive from/to");
  }
  std::vector<std::string> out;
  out.reserve(steps);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const double t =
        steps == 1 ? 0.0
                   : static_cast<double>(i) / static_cast<double>(steps - 1);
    const double v = log ? from * std::pow(to / from, t)
                         : from + (to - from) * t;
    out.push_back(format_value(v, suffix));
  }
  return out;
}

/// Scalar JSON value -> parameter string, with the SDL's integral-number
/// normalization.
std::string value_to_string(const sdl::JsonValue& v, const std::string& path) {
  if (v.is_string()) return v.as_string();
  if (v.is_number()) return format_value(v.as_number(), "");
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  throw SweepError("axis '" + path + "': values must be scalars");
}

/// Last pointer segment, the default column name ("/components/l1/params/
/// size" -> "size" is ambiguous across axes, so prefix the owner:
/// "l1.size"; "/config/seed" -> "seed").
std::string default_axis_name(const std::string& path) {
  std::vector<std::string> seg;
  for (std::size_t start = 1; start <= path.size();) {
    const std::size_t slash = std::min(path.find('/', start), path.size());
    seg.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  if (seg.size() >= 4 && seg[0] == "components" && seg[2] == "params") {
    return seg[1] + "." + seg[3];
  }
  if (seg.size() >= 3 && seg[0] == "links") {
    return "link" + seg[1] + "." + seg[2];
  }
  return seg.empty() ? path : seg.back();
}

}  // namespace

SweepSpec SweepSpec::from_json_text(std::string_view text,
                                    const std::string& spec_dir) {
  return from_json(sdl::JsonValue::parse(text), spec_dir);
}

SweepSpec SweepSpec::from_json(const sdl::JsonValue& doc,
                               const std::string& spec_dir) {
  SweepSpec spec;
  spec.name = doc.get_string("name", "sweep");
  if (!doc.has("model")) {
    throw SweepError("sweep spec requires a \"model\" path");
  }
  spec.model_path = doc.at("model").as_string();
  if (!spec.model_path.empty() && spec.model_path[0] != '/' &&
      !spec_dir.empty()) {
    spec.model_path = spec_dir + "/" + spec.model_path;
  }

  if (!doc.has("axes") || doc.at("axes").as_array().empty()) {
    throw SweepError("sweep spec requires a non-empty \"axes\" array");
  }
  std::set<std::string> seen_paths;
  for (const auto& ja : doc.at("axes").as_array()) {
    Axis axis;
    if (!ja.has("path")) throw SweepError("axis missing \"path\"");
    axis.path = ja.at("path").as_string();
    if (axis.path.empty() || axis.path[0] != '/') {
      throw SweepError("axis '" + axis.path +
                       "': path must start with '/' (a ConfigGraph "
                       "override path, e.g. /components/<name>/params/"
                       "<key>)");
    }
    if (!seen_paths.insert(axis.path).second) {
      throw SweepError("duplicate axis path '" + axis.path + "'");
    }
    axis.name = ja.get_string("name", default_axis_name(axis.path));
    const bool has_values = ja.has("values");
    const bool has_range = ja.has("range");
    if (has_values == has_range) {
      throw SweepError("axis '" + axis.path +
                       "': declare exactly one of \"values\" or \"range\"");
    }
    if (has_values) {
      for (const auto& v : ja.at("values").as_array()) {
        axis.values.push_back(value_to_string(v, axis.path));
      }
    } else {
      axis.values = expand_range(ja.at("range"),
                                 ja.get_string("suffix", ""), axis.path);
    }
    if (axis.values.empty()) {
      throw SweepError("axis '" + axis.path + "': empty value list");
    }
    spec.axes.push_back(std::move(axis));
  }
  std::set<std::string> axis_names;
  for (const auto& a : spec.axes) {
    if (!axis_names.insert(a.name).second) {
      throw SweepError("duplicate axis name '" + a.name +
                       "' (disambiguate with \"name\")");
    }
  }

  if (doc.has("sample")) {
    const sdl::JsonValue& js = doc.at("sample");
    const std::string mode = js.get_string("mode", "cross");
    if (mode == "cross") {
      spec.sampling.mode = Sampling::Mode::kCross;
    } else if (mode == "random") {
      spec.sampling.mode = Sampling::Mode::kRandom;
      if (!js.has("count")) {
        throw SweepError("random sampling requires \"count\"");
      }
      spec.sampling.count = static_cast<std::uint64_t>(
          js.at("count").as_number());
      if (spec.sampling.count == 0) {
        throw SweepError("random sampling count must be >= 1");
      }
      spec.sampling.seed =
          static_cast<std::uint64_t>(js.get_number("seed", 1));
    } else {
      throw SweepError("unknown sampling mode '" + mode +
                       "' (known: cross, random)");
    }
  }

  if (doc.has("objectives")) {
    std::set<std::string> obj_names;
    for (const auto& jo : doc.at("objectives").as_array()) {
      Objective obj;
      obj.component = jo.at("component").as_string();
      obj.statistic = jo.at("statistic").as_string();
      obj.field = jo.get_string("field", "count");
      obj.name = jo.get_string("name", obj.component + "." + obj.statistic +
                                           (obj.field == "count"
                                                ? ""
                                                : "." + obj.field));
      const std::string goal = jo.get_string("goal", "min");
      if (goal == "max") {
        obj.maximize = true;
      } else if (goal == "min") {
        obj.maximize = false;
      } else {
        throw SweepError("objective '" + obj.name + "': unknown goal '" +
                         goal + "' (known: min, max)");
      }
      obj.weight = jo.get_number("weight", 1.0);
      if (obj.weight < 0) {
        throw SweepError("objective '" + obj.name +
                         "': weight must be >= 0");
      }
      if (!obj_names.insert(obj.name).second) {
        throw SweepError("duplicate objective name '" + obj.name + "'");
      }
      spec.objectives.push_back(std::move(obj));
    }
  }

  if (doc.has("run")) {
    const sdl::JsonValue& jr = doc.at("run");
    RunPolicy& run = spec.run;
    run.concurrency =
        static_cast<unsigned>(jr.get_number("concurrency", run.concurrency));
    if (run.concurrency == 0) {
      throw SweepError("run.concurrency must be >= 1");
    }
    run.timeout_seconds =
        jr.get_number("timeout_seconds", run.timeout_seconds);
    if (run.timeout_seconds < 0) {
      throw SweepError("run.timeout_seconds must be >= 0");
    }
    run.retries = static_cast<unsigned>(jr.get_number("retries", run.retries));
    run.backoff_seconds =
        jr.get_number("backoff_seconds", run.backoff_seconds);
    run.ranks = static_cast<unsigned>(jr.get_number("ranks", 0));
    run.end_time = jr.get_string("end", "");
  }
  return spec;
}

sdl::JsonValue SweepSpec::to_json() const {
  sdl::JsonObject doc;
  doc["name"] = name;
  doc["model"] = model_path;
  sdl::JsonArray axes_json;
  for (const auto& a : axes) {
    sdl::JsonObject ja;
    ja["path"] = a.path;
    ja["name"] = a.name;
    sdl::JsonArray values;
    for (const auto& v : a.values) values.push_back(sdl::JsonValue(v));
    ja["values"] = sdl::JsonValue(std::move(values));
    axes_json.push_back(sdl::JsonValue(std::move(ja)));
  }
  doc["axes"] = sdl::JsonValue(std::move(axes_json));
  sdl::JsonObject js;
  js["mode"] =
      sampling.mode == Sampling::Mode::kRandom ? "random" : "cross";
  if (sampling.mode == Sampling::Mode::kRandom) {
    js["count"] = sdl::JsonValue(sampling.count);
    js["seed"] = sdl::JsonValue(sampling.seed);
  }
  doc["sample"] = sdl::JsonValue(std::move(js));
  sdl::JsonArray objs;
  for (const auto& o : objectives) {
    sdl::JsonObject jo;
    jo["name"] = o.name;
    jo["component"] = o.component;
    jo["statistic"] = o.statistic;
    jo["field"] = o.field;
    jo["goal"] = o.maximize ? "max" : "min";
    jo["weight"] = sdl::JsonValue(o.weight);
    objs.push_back(sdl::JsonValue(std::move(jo)));
  }
  doc["objectives"] = sdl::JsonValue(std::move(objs));
  sdl::JsonObject jr;
  jr["concurrency"] = sdl::JsonValue(static_cast<double>(run.concurrency));
  jr["timeout_seconds"] = sdl::JsonValue(run.timeout_seconds);
  jr["retries"] = sdl::JsonValue(static_cast<double>(run.retries));
  jr["backoff_seconds"] = sdl::JsonValue(run.backoff_seconds);
  if (run.ranks > 0) {
    jr["ranks"] = sdl::JsonValue(static_cast<double>(run.ranks));
  }
  if (!run.end_time.empty()) jr["end"] = run.end_time;
  doc["run"] = sdl::JsonValue(std::move(jr));
  return sdl::JsonValue(std::move(doc));
}

std::uint64_t SweepSpec::cross_size() const {
  std::uint64_t total = 1;
  for (const auto& a : axes) {
    total *= static_cast<std::uint64_t>(a.values.size());
  }
  return total;
}

}  // namespace sst::dse
