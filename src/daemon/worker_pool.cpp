#include "daemon/worker_pool.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "core/atomic_file.h"
#include "core/simulation.h"
#include "core/unit_algebra.h"
#include "daemon/graph_cache.h"

namespace fs = std::filesystem;

namespace sst::daemon {

namespace {

/// Writes the whole buffer, riding out EINTR.  Returns false on error
/// (for the daemon side that means the worker is gone).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Runs one job inside the worker process and reports the outcome using
/// the sstsim exit-code contract — the same diagnosis a fork/exec'd
/// sstsim child would produce, just delivered in-band.
WorkerReply execute_job(GraphCache& cache, const RunRequest& req,
                        std::uint64_t hash) {
  WorkerReply reply;
  reply.id = req.id;
  try {
    if (req.test_signal != 0) {
      // Harness hook: die the way a crashing simulation would, so the
      // daemon's reap/diagnose/respawn path is exercised deterministically.
      ::signal(req.test_signal, SIG_DFL);
      ::raise(req.test_signal);
    }
    const std::uint64_t hits_before = cache.hits();
    // Copy so per-request overrides never mutate the cached graph.
    sdl::ConfigGraph graph = cache.graph(hash, req.model_json);
    reply.cache_hit = cache.hits() > hits_before;
    for (const auto& [path, value] : req.overrides) {
      graph.apply_override(path, value);
    }
    SimConfig& sc = graph.sim_config();
    if (req.ranks > 0) sc.num_ranks = req.ranks;
    if (!req.end_time.empty()) {
      sc.end_time = UnitAlgebra(req.end_time).to_simtime();
    }
    if (req.seed) sc.seed = *req.seed;
    if (req.timeout_seconds > 0) sc.watchdog_seconds = req.timeout_seconds;
    const auto problems = graph.validate(Factory::instance());
    if (!problems.empty()) {
      std::ostringstream os;
      os << "invalid system description:";
      for (const auto& p : problems) os << "\n  - " << p;
      throw ConfigError(os.str());
    }
    std::error_code ec;
    fs::create_directories(req.out_dir, ec);
    // Match the fork/exec path: simulations run with the request's out
    // directory as cwd, so model-relative observability paths land there.
    if (::chdir(req.out_dir.c_str()) != 0) {
      throw ConfigError("cannot enter out directory '" + req.out_dir + "'");
    }
    auto sim = graph.build();
    const RunStats stats = sim->run();
    std::ostringstream os;
    sim->stats().write_json(os);
    const std::string err = atomic_publish("stats.json", os.str());
    if (err.empty()) {
      reply.status = "ok";
      reply.exit_code = 0;
      reply.events = stats.events_processed;
      reply.wall_seconds = stats.wall_seconds;
    } else {
      reply.status = "failed";
      reply.exit_code = 1;
      reply.error = "stats publish failed: " + err;
    }
  } catch (const WatchdogError& e) {
    reply.status = "timeout";
    reply.exit_code = 3;
    reply.error = e.what();
  } catch (const DeadlockError& e) {
    reply.status = "failed";
    reply.exit_code = 4;
    reply.error = e.what();
  } catch (const ConfigError& e) {
    reply.status = "failed";
    reply.exit_code = 2;
    reply.error = e.what();
  } catch (const std::exception& e) {
    reply.status = "failed";
    reply.exit_code = 1;
    reply.error = e.what();
  }
  return reply;
}

}  // namespace

void run_worker_loop(int fd) {
  // Undo the daemon's signal arrangements: workers die by default
  // dispositions so the daemon's waitpid diagnosis sees the real cause.
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);
  GraphCache cache;
  LineBuffer in;
  std::string line;
  char buf[65536];
  for (;;) {
    while (in.next(line)) {
      if (line.empty()) continue;
      WorkerReply reply;
      try {
        const sdl::JsonValue doc = sdl::JsonValue::parse(line);
        const RunRequest req = run_request_from_json(doc);
        const std::uint64_t hash =
            std::stoull(doc.get_string("hash", "0"), nullptr, 16);
        reply = execute_job(cache, req, hash);
      } catch (const std::exception& e) {
        reply.status = "failed";
        reply.exit_code = 2;
        reply.error = std::string("bad job line: ") + e.what();
      }
      if (!write_all(fd, worker_reply_to_line(reply) + "\n")) ::_exit(0);
    }
    const ::ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) ::_exit(0);  // daemon closed the socket: clean drain
    in.feed(buf, static_cast<std::size_t>(n));
  }
}

WorkerPool::WorkerPool(unsigned count, std::function<void()> child_prelude)
    : slots_(count), child_prelude_(std::move(child_prelude)) {}

WorkerPool::~WorkerPool() {
  shutting_down_ = true;
  for (auto& s : slots_) {
    if (s.fd >= 0) ::close(s.fd);
    if (s.pid > 0) {
      ::kill(s.pid, SIGKILL);
      ::waitpid(s.pid, nullptr, 0);
    }
  }
}

void WorkerPool::start() {
  started_ = true;
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) spawn(i);
}

void WorkerPool::spawn(int slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw DaemonError("socketpair failed for worker slot " +
                      std::to_string(slot));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw DaemonError("fork failed for worker slot " + std::to_string(slot));
  }
  if (pid == 0) {
    ::close(sv[0]);
    // Drop the daemon ends of every sibling's socketpair: a worker that
    // kept them open would stop siblings from ever seeing EOF on drain.
    for (const auto& other : slots_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    if (child_prelude_) child_prelude_();
    run_worker_loop(sv[1]);  // never returns
  }
  ::close(sv[1]);
  Slot& s = slots_[slot];
  s.pid = pid;
  s.fd = sv[0];
  s.busy = false;
  s.hard_killed = false;
  s.request_id.clear();
  s.in = LineBuffer{};
}

int WorkerPool::idle_slot() const {
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    if (slots_[i].pid > 0 && !slots_[i].busy) return i;
  }
  return -1;
}

unsigned WorkerPool::busy_count() const {
  unsigned n = 0;
  for (const auto& s : slots_) {
    if (s.busy) ++n;
  }
  return n;
}

bool WorkerPool::dispatch(int slot, const std::string& job_line,
                          const std::string& request_id,
                          std::chrono::steady_clock::time_point deadline) {
  Slot& s = slots_[slot];
  s.busy = true;
  s.hard_killed = false;
  s.request_id = request_id;
  s.deadline = deadline;
  return write_all(s.fd, job_line + "\n");
}

void WorkerPool::kill_slot(int slot) {
  Slot& s = slots_[slot];
  if (s.pid > 0 && !s.hard_killed) {
    s.hard_killed = true;
    ::kill(s.pid, SIGKILL);
  }
}

void WorkerPool::mark_idle(int slot) {
  Slot& s = slots_[slot];
  s.busy = false;
  s.hard_killed = false;
  s.request_id.clear();
}

std::vector<WorkerExit> WorkerPool::reap_and_respawn() {
  std::vector<WorkerExit> exits;
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
      Slot& s = slots_[i];
      if (s.pid != pid) continue;
      WorkerExit ex;
      ex.slot = i;
      ex.pid = pid;
      if (WIFEXITED(status)) ex.exit_code = WEXITSTATUS(status);
      if (WIFSIGNALED(status)) ex.term_signal = WTERMSIG(status);
      ex.was_busy = s.busy;
      ex.request_id = s.request_id;
      ex.hard_killed = s.hard_killed;
      exits.push_back(std::move(ex));
      if (s.fd >= 0) ::close(s.fd);
      s = Slot{};
      if (started_ && !shutting_down_) {
        spawn(i);
        ++restarts_;
      }
      break;
    }
  }
  return exits;
}

void WorkerPool::shutdown() {
  shutting_down_ = true;
  for (auto& s : slots_) {
    if (s.fd >= 0) {
      ::close(s.fd);  // worker sees EOF and _exit(0)s
      s.fd = -1;
    }
  }
  for (auto& s : slots_) {
    if (s.pid > 0) {
      ::waitpid(s.pid, nullptr, 0);
      s.pid = -1;
    }
  }
}

}  // namespace sst::daemon
