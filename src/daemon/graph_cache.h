// ConfigGraph content-hash cache: the warm-dispatch half of sstsimd.
//
// Requests carry their SDL bytes inline; the cache keys parsed (and, on
// the daemon side, validated) ConfigGraphs by the FNV-1a hash of those
// exact bytes.  Identical bytes hit; a one-byte change misses.  Both the
// daemon (admission validation) and each worker (parse-once execution)
// hold an instance — workers are forked before requests arrive, so the
// caches are warmed independently, keyed identically.
//
// Hits return the graph parsed from byte-identical input, so a cached
// run is byte-identical to a cold-parse run by construction (pinned by
// tests/daemon/test_graph_cache.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "sdl/config_graph.h"

namespace sst::daemon {

class GraphCache {
 public:
  /// `capacity` bounds resident parsed graphs (FIFO eviction) so a
  /// long-lived daemon serving many distinct models cannot grow without
  /// bound.
  explicit GraphCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// FNV-1a 64-bit over the raw SDL bytes.
  [[nodiscard]] static std::uint64_t content_hash(std::string_view bytes);

  /// Admission-side lookup: parse + validate on miss, no work on hit.
  /// Returns the content hash.  Throws ConfigError when the model fails
  /// to parse or validate (the daemon rejects the request up front
  /// instead of burning a worker on it).
  std::uint64_t admit(const std::string& bytes, const Factory& factory);

  /// Execution-side lookup: the parsed graph for `bytes` (parsed on
  /// miss, reused on hit).  `hash` must be content_hash(bytes) — passed
  /// in so daemon and worker agree on keys without rehashing.  The
  /// returned reference is invalidated by the next insertion.
  const sdl::ConfigGraph& graph(std::uint64_t hash, const std::string& bytes);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const sdl::ConfigGraph& insert(std::uint64_t hash, const std::string& bytes);

  std::map<std::uint64_t, std::unique_ptr<sdl::ConfigGraph>> entries_;
  std::deque<std::uint64_t> order_;  // insertion order for FIFO eviction
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sst::daemon
