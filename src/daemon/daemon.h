// The sstsimd daemon: a crash-tolerant simulation-as-a-service server.
//
// Single-threaded poll loop over a Unix-domain listening socket, the
// connected clients, a self-pipe for signals, and the worker socketpairs.
// The daemon itself never simulates — every request runs in a pre-forked
// worker process (worker_pool.h), so a crashing, hanging, or OOMing
// simulation takes down only its worker, which is reaped, diagnosed via
// the sstsim exit-code contract, and respawned.
//
// Request lifecycle (DESIGN.md "Daemon request lifecycle"):
//   validate -> spool request.json -> ledger "accepted" -> ack ->
//   queue -> dispatch (deadline armed) -> reply | death ->
//   retry with doubling backoff (transient) | final ledger record ->
//   notify waiting clients.
// The ledger "accepted" record is durable before the ack, so a daemon
// killed at any instant restarts, re-enqueues every accepted-but-
// unfinished request from its spooled request.json, and completes each
// exactly once; resubmitting a finished id replays the recorded result
// without re-running.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "daemon/graph_cache.h"
#include "daemon/protocol.h"
#include "daemon/request_ledger.h"
#include "daemon/request_queue.h"
#include "daemon/worker_pool.h"

namespace sst::daemon {

struct DaemonOptions {
  std::string socket_path;       // Unix-domain socket to serve on
  std::string state_dir;         // ledger + metrics live here
  unsigned workers = 4;          // pre-forked worker processes
  std::size_t queue_capacity = 64;   // admission bound (then shed)
  std::size_t cache_capacity = 64;   // resident parsed ConfigGraphs
  bool verbose = false;          // per-request stderr notes
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a drain request or SIGTERM/SIGINT finishes the accepted
  /// work.  Returns a process exit code (0 = clean drain).  Throws
  /// DaemonError for startup failures (socket in use, bad state dir).
  int run();

 private:
  struct Client {
    LineBuffer in;
    std::string out;   // bytes not yet written to the (nonblocking) fd
    bool closing = false;
  };

  // Startup.
  void bind_socket();
  void recover_pending();
  void close_fds_in_child();  // worker-fork prelude

  // Event handling.
  void handle_signal_byte(char b);
  void accept_clients();
  bool service_client(int fd);   // false = connection finished
  void handle_line(int fd, const std::string& line);
  void handle_run(int fd, RunRequest req);
  void service_worker(int slot);
  void handle_worker_reply(int slot, const WorkerReply& reply);
  void handle_worker_exit(const WorkerExit& ex);
  void finish_request(const QueuedRequest& q, RequestRecord rec);
  bool maybe_retry(QueuedRequest q, const std::string& why);
  void enforce_deadlines(SteadyTime now);
  void dispatch_ready(SteadyTime now);

  // Replies.
  void send_line(int fd, const std::string& line);
  void flush_client(int fd);
  void notify_waiters(const std::string& id, const std::string& done_line);
  void drop_client(int fd);
  [[nodiscard]] std::string done_line(const RequestRecord& rec) const;
  [[nodiscard]] std::string status_line() const;
  void write_metrics();

  DaemonOptions options_;
  int listen_fd_ = -1;
  int signal_read_fd_ = -1;
  int signal_write_fd_ = -1;

  GraphCache cache_;
  RequestQueue queue_;
  RequestLedger ledger_;
  WorkerPool pool_;

  std::map<int, Client> clients_;
  /// Requests handed to a worker, keyed by id (attempts already counted).
  std::map<std::string, QueuedRequest> inflight_;
  /// Clients awaiting a "done" line per request id.
  std::map<std::string, std::vector<int>> waiters_;

  bool draining_ = false;
  std::uint64_t next_auto_id_ = 0;
  SteadyTime started_at_{};

  // Health counters (status op + metrics JSONL).
  std::uint64_t accepted_ = 0;
  std::uint64_t replays_ = 0;
  std::uint64_t rejected_overloaded_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t rejected_invalid_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t completed_ok_ = 0;
  std::uint64_t completed_failed_ = 0;
  std::uint64_t completed_timeout_ = 0;
  std::uint64_t completed_error_ = 0;
  std::uint64_t recovered_ = 0;
};

}  // namespace sst::daemon
