// sstsimd wire protocol: newline-delimited JSON over a Unix-domain
// stream socket.  Every message is one JSON object on one line; the
// same framing is used daemon<->client and daemon<->worker, so one
// parser serves both sides.
//
// Client -> daemon ops:
//   {"op":"run", "id":..., "model":"<SDL JSON text>", "out":"<dir>",
//    "overrides":{"/config/seed":"7", ...}, "ranks":N, "end":"1ms",
//    "seed":N, "timeout":S, "retries":N, "backoff":S}
//   {"op":"status"}            health snapshot
//   {"op":"result","id":...}   look up a finished request in the ledger
//   {"op":"drain"}             finish accepted work, refuse new, exit
//
// Daemon -> client replies:
//   {"type":"accepted","id":...}
//   {"type":"rejected","id":...,"reason":"overloaded"|"draining"}
//   {"type":"done","id":...,"status":"ok|failed|timeout|error",
//    "exit":N,"signal":N,"attempts":N,"stats":"<dir>/stats.json",
//    "error":"..."}
//   {"type":"status", ...counters...}
//   {"type":"error","error":"..."}       protocol-level problem
//
// The "test_signal" run field is a harness hook: the worker raises that
// signal instead of simulating, so crash isolation can be exercised
// deterministically from CI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "sdl/json.h"

namespace sst::daemon {

/// Daemon-side failures that are neither the model's fault nor the
/// simulation's: unreachable sockets, protocol violations, unusable
/// state directories.  Tools map this to exit code 7.
class DaemonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One simulation request.  `model_json` carries the SDL bytes inline so
/// the daemon never depends on client-side files staying put.
struct RunRequest {
  std::string id;          // client-chosen; "" = daemon assigns
  std::string model_json;  // SDL system description text
  std::string out_dir;     // receives request.json + stats.json
  std::vector<std::pair<std::string, std::string>> overrides;
  unsigned ranks = 0;            // 0 = model's own
  std::string end_time;          // "" = model's own
  std::optional<std::uint64_t> seed;
  double timeout_seconds = 300;  // watchdog budget (0 = none)
  unsigned retries = 2;          // extra attempts for transient failures
  double backoff_seconds = 0.5;  // initial retry backoff, doubling
  int test_signal = 0;           // harness hook (see header comment)
};

/// A parsed client line.
struct ClientMessage {
  enum class Op { kRun, kStatus, kResult, kDrain };
  Op op = Op::kStatus;
  RunRequest run;     // kRun
  std::string id;     // kResult
};

/// Parses one client JSONL line.  Throws DaemonError on malformed JSON,
/// unknown ops, or missing required fields.
[[nodiscard]] ClientMessage parse_client_message(const std::string& line);

/// Serializes a run request back to its wire line (used by clients and
/// by the daemon when spooling request.json for crash recovery).
[[nodiscard]] std::string run_request_to_line(const RunRequest& req);

/// Parses the {"op":"run", ...} fields of `doc` into a RunRequest.
[[nodiscard]] RunRequest run_request_from_json(const sdl::JsonValue& doc);

/// Worker's verdict on one dispatched job.
struct WorkerReply {
  std::string id;
  std::string status;     // "ok" | "failed" | "timeout"
  int exit_code = 0;      // sstsim exit-code contract (0-6)
  std::string error;      // diagnostic for non-ok outcomes
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  bool cache_hit = false;  // worker-local graph cache hit
};

[[nodiscard]] std::string worker_reply_to_line(const WorkerReply& reply);
[[nodiscard]] WorkerReply parse_worker_reply(const std::string& line);

/// Job line sent daemon -> worker: the run request plus the daemon's
/// content hash (so the worker's graph cache keys match the daemon's).
[[nodiscard]] std::string worker_job_to_line(const RunRequest& req,
                                             std::uint64_t content_hash);

/// Incremental newline framing for a nonblocking byte stream.
class LineBuffer {
 public:
  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  /// Pops the next complete line (without the '\n') into `line`.
  bool next(std::string& line) {
    const auto pos = buf_.find('\n');
    if (pos == std::string::npos) return false;
    line.assign(buf_, 0, pos);
    buf_.erase(0, pos + 1);
    return true;
  }
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace sst::daemon
