#include "daemon/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sst::daemon {

DaemonClient::DaemonClient(const std::string& socket_path)
    : socket_path_(socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw DaemonError("socket path '" + socket_path +
                      "' exceeds the unix socket path limit");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw DaemonError("cannot create socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw DaemonError("cannot reach daemon at '" + socket_path +
                      "': " + std::strerror(err));
  }
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

void DaemonClient::send(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t off = 0;
  while (off < framed.size()) {
    const ::ssize_t n =
        ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw DaemonError("daemon connection lost while sending: " +
                        std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

sdl::JsonValue DaemonClient::next_reply() {
  std::string line;
  char buf[65536];
  while (!in_.next(line)) {
    const ::ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw DaemonError("daemon at '" + socket_path_ +
                        "' closed the connection");
    }
    in_.feed(buf, static_cast<std::size_t>(n));
  }
  try {
    return sdl::JsonValue::parse(line);
  } catch (const sdl::JsonError& e) {
    throw DaemonError(std::string("malformed daemon reply: ") + e.what());
  }
}

sdl::JsonValue DaemonClient::status() {
  send("{\"op\":\"status\"}");
  return next_reply();
}

sdl::JsonValue DaemonClient::result(const std::string& id) {
  send("{\"op\":\"result\",\"id\":\"" + id + "\"}");
  return next_reply();
}

sdl::JsonValue DaemonClient::drain() {
  send("{\"op\":\"drain\"}");
  return next_reply();
}

}  // namespace sst::daemon
