// Pre-forked worker pool: the isolation boundary between the daemon and
// the simulations it runs.
//
// Each worker is a forked child connected to the daemon by a socketpair.
// The daemon writes one JSONL job line per dispatch; the worker parses
// the model (through its own content-hash GraphCache, warmed across
// requests), runs the simulation in-process, publishes stats.json
// crash-consistently, and writes one JSONL reply line.  Failures the
// worker can catch (watchdog, deadlock, config, runtime errors) are
// reported in-band via the sstsim exit-code contract and the worker
// lives on; a worker that segfaults, OOMs, or is SIGKILLed by the
// deadline backstop takes only its current request with it — the daemon
// reaps it, diagnoses the wait status, and forks a replacement.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "daemon/protocol.h"

namespace sst::daemon {

/// Child entry point: serve job lines on `fd` until it closes, then
/// _exit(0).  Never returns.  Exposed for tests and for sstsimd's
/// single-process debugging mode.
[[noreturn]] void run_worker_loop(int fd);

/// What the daemon learns when it reaps a dead worker.
struct WorkerExit {
  int slot = -1;
  pid_t pid = -1;
  int exit_code = 0;    // valid when exited normally
  int term_signal = 0;  // valid when killed by a signal
  bool was_busy = false;
  std::string request_id;  // request in flight when the worker died
  bool hard_killed = false;  // daemon's deadline SIGKILL, not a crash
};

class WorkerPool {
 public:
  /// `child_prelude` runs in each freshly forked worker before the serve
  /// loop — the daemon uses it to close its listener, client, and signal
  /// fds so workers hold no daemon resources.
  WorkerPool(unsigned count, std::function<void()> child_prelude);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void start();

  [[nodiscard]] unsigned count() const {
    return static_cast<unsigned>(slots_.size());
  }
  /// First idle live worker, or -1.
  [[nodiscard]] int idle_slot() const;
  [[nodiscard]] unsigned busy_count() const;

  /// Sends a job and marks the slot busy.  Returns false when the write
  /// fails (worker just died — the caller will see it in reap()).
  bool dispatch(int slot, const std::string& job_line,
                const std::string& request_id,
                std::chrono::steady_clock::time_point deadline);

  /// SIGKILLs an overdue worker (deadline backstop).  The slot stays
  /// busy until reap() returns its WorkerExit with hard_killed set.
  void kill_slot(int slot);

  /// Reaps every dead child, forks replacements, and reports what died.
  std::vector<WorkerExit> reap_and_respawn();

  /// Marks a slot idle again after its in-band reply was consumed.
  void mark_idle(int slot);

  [[nodiscard]] int fd(int slot) const { return slots_[slot].fd; }
  [[nodiscard]] pid_t pid(int slot) const { return slots_[slot].pid; }
  [[nodiscard]] bool busy(int slot) const { return slots_[slot].busy; }
  [[nodiscard]] bool alive(int slot) const { return slots_[slot].pid > 0; }
  [[nodiscard]] const std::string& request_id(int slot) const {
    return slots_[slot].request_id;
  }
  [[nodiscard]] std::chrono::steady_clock::time_point deadline(
      int slot) const {
    return slots_[slot].deadline;
  }
  [[nodiscard]] LineBuffer& line_buffer(int slot) {
    return slots_[slot].in;
  }
  /// Workers respawned after dying (the health counter).
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

  /// Closes every worker fd (workers see EOF and _exit(0)) and waits for
  /// them.  Used on drain; the destructor falls back to SIGKILL.
  void shutdown();

 private:
  struct Slot {
    pid_t pid = -1;
    int fd = -1;
    bool busy = false;
    bool hard_killed = false;
    std::string request_id;
    std::chrono::steady_clock::time_point deadline{};
    LineBuffer in;
  };

  void spawn(int slot);

  std::vector<Slot> slots_;
  std::function<void()> child_prelude_;
  std::uint64_t restarts_ = 0;
  bool started_ = false;
  bool shutting_down_ = false;
};

}  // namespace sst::daemon
