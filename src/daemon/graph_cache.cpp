#include "daemon/graph_cache.h"

#include <algorithm>
#include <sstream>

namespace sst::daemon {

std::uint64_t GraphCache::content_hash(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

const sdl::ConfigGraph& GraphCache::insert(std::uint64_t hash,
                                           const std::string& bytes) {
  auto graph = std::make_unique<sdl::ConfigGraph>(
      sdl::ConfigGraph::from_json_text(bytes));
  while (entries_.size() >= capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
  auto [it, inserted] = entries_.emplace(hash, std::move(graph));
  if (inserted) order_.push_back(hash);
  return *it->second;
}

std::uint64_t GraphCache::admit(const std::string& bytes,
                                const Factory& factory) {
  const std::uint64_t hash = content_hash(bytes);
  if (entries_.contains(hash)) {
    ++hits_;
    return hash;
  }
  ++misses_;
  const sdl::ConfigGraph& graph = insert(hash, bytes);
  const auto problems = graph.validate(factory);
  if (!problems.empty()) {
    // Never cache an invalid model: evict so a corrected resubmission
    // with (improbably) the same hash revalidates.
    entries_.erase(hash);
    order_.erase(std::find(order_.begin(), order_.end(), hash));
    std::ostringstream os;
    os << "invalid system description:";
    for (const auto& p : problems) os << "\n  - " << p;
    throw ConfigError(os.str());
  }
  return hash;
}

const sdl::ConfigGraph& GraphCache::graph(std::uint64_t hash,
                                          const std::string& bytes) {
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    ++hits_;
    return *it->second;
  }
  ++misses_;
  return insert(hash, bytes);
}

}  // namespace sst::daemon
