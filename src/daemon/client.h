// Blocking JSONL client for the sstsimd socket.  Used by sstsim's
// --daemon mode and sstdse's --daemon submission path; thin by design —
// callers drive the protocol with send()/next_reply() and interpret the
// typed reply objects themselves.
#pragma once

#include <string>

#include "daemon/protocol.h"
#include "sdl/json.h"

namespace sst::daemon {

class DaemonClient {
 public:
  /// Connects to the daemon socket.  Throws DaemonError when the path is
  /// not a live daemon (missing socket, connection refused, not a
  /// socket) — tools map that to exit code 7.
  explicit DaemonClient(const std::string& socket_path);
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Writes one protocol line (newline appended here).
  void send(const std::string& line);
  void send(const RunRequest& req) { send(run_request_to_line(req)); }

  /// Blocks for the next reply line and parses it.  Throws DaemonError
  /// on EOF (daemon died) or malformed replies.
  sdl::JsonValue next_reply();

  /// Convenience round trips.
  sdl::JsonValue status();
  sdl::JsonValue result(const std::string& id);
  sdl::JsonValue drain();

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  std::string socket_path_;
  int fd_ = -1;
  LineBuffer in_;
};

}  // namespace sst::daemon
