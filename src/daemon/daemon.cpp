#include "daemon/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/atomic_file.h"
#include "obs/json_util.h"

namespace fs = std::filesystem;

namespace sst::daemon {

namespace {

// Hard-deadline policy shared with the DSE orchestrator: the watchdog
// inside the worker gets `timeout`; the daemon SIGKILLs a worker that
// still has not answered by 1.5x + 2s (a wedged process the watchdog
// cannot reach).
double hard_deadline_seconds(double timeout) { return timeout * 1.5 + 2.0; }

SteadyTime after_seconds(SteadyTime now, double seconds) {
  return now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds));
}

int g_signal_fd = -1;

void on_signal(int sig) {
  const char b = sig == SIGCHLD ? 'C' : 'T';
  if (g_signal_fd >= 0) {
    [[maybe_unused]] const ::ssize_t n = ::write(g_signal_fd, &b, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

DaemonOptions normalize(DaemonOptions o) {
  if (o.state_dir.empty()) o.state_dir = o.socket_path + ".state";
  std::error_code ec;
  const fs::path abs = fs::absolute(o.state_dir, ec);
  if (!ec) o.state_dir = abs.string();
  if (o.workers == 0) o.workers = 1;
  if (o.queue_capacity == 0) o.queue_capacity = 1;
  return o;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(normalize(std::move(options))),
      cache_(options_.cache_capacity),
      queue_(options_.queue_capacity),
      ledger_(options_.state_dir + "/requests.jsonl"),
      pool_(options_.workers, [this] { close_fds_in_child(); }) {}

Daemon::~Daemon() {
  for (const auto& [fd, client] : clients_) {
    (void)client;
    ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (signal_read_fd_ >= 0) ::close(signal_read_fd_);
  if (signal_write_fd_ >= 0) {
    if (g_signal_fd == signal_write_fd_) g_signal_fd = -1;
    ::close(signal_write_fd_);
  }
}

void Daemon::close_fds_in_child() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (signal_read_fd_ >= 0) ::close(signal_read_fd_);
  if (signal_write_fd_ >= 0) ::close(signal_write_fd_);
  for (const auto& [fd, client] : clients_) {
    (void)client;
    ::close(fd);
  }
}

void Daemon::bind_socket() {
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    throw DaemonError("socket path '" + options_.socket_path +
                      "' exceeds the unix socket path limit");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (fs::exists(options_.socket_path)) {
    // Stale-socket probe: a live daemon answers the connect; a socket
    // left behind by a killed daemon refuses and is safe to reclaim.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                               sizeof addr);
      ::close(probe);
      if (rc == 0) {
        throw DaemonError("another daemon is already serving '" +
                          options_.socket_path + "'");
      }
    }
    ::unlink(options_.socket_path.c_str());
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw DaemonError("cannot create socket");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw DaemonError("cannot bind '" + options_.socket_path +
                      "': " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw DaemonError("cannot listen on '" + options_.socket_path + "'");
  }
  set_nonblocking(listen_fd_);
}

void Daemon::recover_pending() {
  for (const auto& rec : ledger_.pending()) {
    const std::string spool = rec.out_dir + "/request.json";
    try {
      std::ifstream in(spool);
      if (!in) throw DaemonError("spooled request '" + spool + "' missing");
      std::string line;
      std::getline(in, line);
      ClientMessage msg = parse_client_message(line);
      if (msg.op != ClientMessage::Op::kRun) {
        throw DaemonError("spooled request '" + spool + "' is not a run op");
      }
      const std::uint64_t hash =
          cache_.admit(msg.run.model_json, Factory::instance());
      QueuedRequest q;
      q.req = std::move(msg.run);
      q.content_hash = hash;
      q.attempts = rec.attempts;
      queue_.defer(std::move(q));
      ++recovered_;
    } catch (const std::exception& e) {
      RequestRecord failed = rec;
      failed.status = "error";
      failed.exit_code = 7;
      failed.error = std::string("recovery failed: ") + e.what();
      ledger_.record(failed);
      ++completed_error_;
      std::cerr << "[sstsimd] request '" << rec.id
                << "' lost across restart: " << e.what() << "\n";
    }
  }
  if (recovered_ > 0) {
    std::cerr << "[sstsimd] recovered " << recovered_
              << " accepted-but-unfinished request(s) from "
              << ledger_.path() << "\n";
  }
}

int Daemon::run() {
  started_at_ = std::chrono::steady_clock::now();
  std::error_code ec;
  fs::create_directories(options_.state_dir, ec);
  if (ec) {
    throw DaemonError("cannot create state dir '" + options_.state_dir +
                      "': " + ec.message());
  }
  ledger_.load();
  next_auto_id_ = ledger_.records().size();
  bind_socket();

  int pipefd[2];
  if (::pipe(pipefd) != 0) throw DaemonError("cannot create signal pipe");
  signal_read_fd_ = pipefd[0];
  signal_write_fd_ = pipefd[1];
  set_nonblocking(signal_read_fd_);
  set_nonblocking(signal_write_fd_);
  g_signal_fd = signal_write_fd_;
  ::signal(SIGTERM, on_signal);
  ::signal(SIGINT, on_signal);
  ::signal(SIGCHLD, on_signal);
  ::signal(SIGPIPE, SIG_IGN);

  pool_.start();
  recover_pending();
  write_metrics();
  std::cerr << "[sstsimd] serving on " << options_.socket_path << " ("
            << options_.workers << " workers, queue "
            << options_.queue_capacity << ", state " << options_.state_dir
            << ")\n";

  std::vector<pollfd> fds;
  struct Tag {
    char kind;       // 's'ignal, 'l'istener, 'c'lient, 'w'orker
    int ref;         // client fd or worker slot
    pid_t owner;     // worker pid at poll-build time ('w' only)
  };
  std::vector<Tag> tags;
  for (;;) {
    const SteadyTime now = std::chrono::steady_clock::now();
    dispatch_ready(now);
    enforce_deadlines(now);

    // Group commit: every record staged during the previous pass is
    // made durable in one fsync, and only then do the replies that
    // depend on it (acks, done lines) go out.  send_line never writes
    // the socket directly, so durability-before-visibility holds while
    // a burst of requests costs one ledger append, not one per request.
    ledger_.flush();
    if (!clients_.empty()) {
      std::vector<int> with_output;
      for (const auto& [fd, client] : clients_) {
        if (!client.out.empty()) with_output.push_back(fd);
      }
      for (const int fd : with_output) flush_client(fd);  // may drop fd
    }

    if (draining_ && queue_.empty() && pool_.busy_count() == 0) break;

    fds.clear();
    tags.clear();
    fds.push_back({signal_read_fd_, POLLIN, 0});
    tags.push_back({'s', 0, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    tags.push_back({'l', 0, 0});
    for (const auto& [fd, client] : clients_) {
      short events = POLLIN;
      if (!client.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      tags.push_back({'c', fd, 0});
    }
    for (int slot = 0; slot < static_cast<int>(pool_.count()); ++slot) {
      if (pool_.alive(slot) && pool_.busy(slot)) {
        // The pid pins the event to THIS incarnation of the slot: a
        // worker reaped and respawned mid-pass can recycle the same fd
        // number, and a stale POLLIN serviced against the fresh idle
        // worker would block the whole daemon on its silent socket.
        fds.push_back({pool_.fd(slot), POLLIN, 0});
        tags.push_back({'w', slot, pool_.pid(slot)});
      }
    }

    // Wake for the nearest hard deadline, and for the nearest backoff
    // gate when a worker is free to take the retry.
    int timeout_ms = -1;
    auto consider = [&](SteadyTime when) {
      if (when == SteadyTime::max()) return;
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          when - now)
                          .count();
      const int clamped = ms < 0 ? 0 : (ms > 60000 ? 60000 : static_cast<int>(ms));
      if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
    };
    for (int slot = 0; slot < static_cast<int>(pool_.count()); ++slot) {
      if (pool_.alive(slot) && pool_.busy(slot)) consider(pool_.deadline(slot));
    }
    if (pool_.idle_slot() >= 0) {
      if (const auto at = queue_.next_ready_at()) consider(*at);
    }

    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw DaemonError(std::string("poll failed: ") + std::strerror(errno));
    }
    // Accepting is deferred to the end of the pass: every handler below
    // may drop a client, and a freshly accepted connection could recycle
    // the dropped fd number while stale revents for it are still queued.
    bool want_accept = false;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const auto [kind, ref, owner_pid] = tags[i];
      if (kind == 's') {
        char buf[64];
        ::ssize_t n;
        while ((n = ::read(signal_read_fd_, buf, sizeof buf)) > 0) {
          for (::ssize_t j = 0; j < n; ++j) handle_signal_byte(buf[j]);
        }
      } else if (kind == 'l') {
        want_accept = true;
      } else if (kind == 'c') {
        if (clients_.count(ref) == 0) continue;  // dropped earlier this pass
        if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
          drop_client(ref);
          continue;
        }
        if ((fds[i].revents & POLLOUT) != 0) {
          // The reap handler above may have finalized requests and
          // buffered their done lines; commit before draining so the
          // backed-up socket can't observe an undurable record.
          ledger_.flush();
          flush_client(ref);
        }
        if (clients_.count(ref) != 0 &&
            (fds[i].revents & (POLLIN | POLLHUP)) != 0) {
          if (!service_client(ref)) drop_client(ref);
        }
      } else if (kind == 'w') {
        if (pool_.alive(ref) && pool_.pid(ref) == owner_pid &&
            pool_.fd(ref) == fds[i].fd) {
          service_worker(ref);
        }
      }
    }
    if (want_accept) accept_clients();
  }

  pool_.shutdown();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  write_metrics();
  std::cerr << "[sstsimd] drained: " << completed_ok_ << " ok, "
            << completed_failed_ << " failed, " << completed_timeout_
            << " timeout, " << completed_error_ << " error ("
            << retries_ << " retries, " << pool_.restarts()
            << " worker restarts)\n";
  return 0;
}

void Daemon::handle_signal_byte(char b) {
  if (b == 'C') {
    for (const auto& ex : pool_.reap_and_respawn()) handle_worker_exit(ex);
  } else if (!draining_) {
    draining_ = true;
    std::cerr << "[sstsimd] drain requested: finishing " << queue_.size()
              << " queued + " << inflight_.size()
              << " in-flight request(s), refusing new work\n";
    write_metrics();
  }
}

void Daemon::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    clients_[fd];
  }
}

bool Daemon::service_client(int fd) {
  char buf[65536];
  for (;;) {
    const ::ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      clients_[fd].in.feed(buf, static_cast<std::size_t>(n));
      if (n < static_cast<::ssize_t>(sizeof buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer closed (or hard error)
  }
  std::string line;
  while (clients_.count(fd) != 0 && clients_[fd].in.next(line)) {
    if (!line.empty()) handle_line(fd, line);
  }
  return clients_.count(fd) != 0;
}

void Daemon::handle_line(int fd, const std::string& line) {
  ClientMessage msg;
  try {
    msg = parse_client_message(line);
  } catch (const DaemonError& e) {
    send_line(fd, std::string("{\"type\":\"error\",\"error\":\"") +
                      obs::json_escape(e.what()) + "\"}");
    return;
  }
  switch (msg.op) {
    case ClientMessage::Op::kRun:
      handle_run(fd, std::move(msg.run));
      break;
    case ClientMessage::Op::kStatus:
      send_line(fd, status_line());
      break;
    case ClientMessage::Op::kResult: {
      const RequestRecord* rec = ledger_.find(msg.id);
      if (rec == nullptr) {
        send_line(fd, "{\"type\":\"error\",\"error\":\"unknown request id '" +
                          obs::json_escape(msg.id) + "'\"}");
      } else if (rec->final()) {
        send_line(fd, done_line(*rec));
      } else {
        waiters_[msg.id].push_back(fd);
        send_line(fd, "{\"type\":\"accepted\",\"id\":\"" +
                          obs::json_escape(msg.id) + "\"}");
      }
      break;
    }
    case ClientMessage::Op::kDrain:
      if (!draining_) handle_signal_byte('T');
      send_line(fd, status_line());
      break;
  }
}

void Daemon::handle_run(int fd, RunRequest req) {
  if (req.id.empty()) {
    do {
      req.id = "r" + std::to_string(next_auto_id_++);
    } while (ledger_.find(req.id) != nullptr);
  }
  if (const RequestRecord* rec = ledger_.find(req.id)) {
    if (rec->final()) {
      // Exactly-once replay: the work already happened; serve the
      // recorded outcome without re-running.
      ++replays_;
      send_line(fd, done_line(*rec));
      return;
    }
    // Still in flight (duplicate submission, or a client reconnecting
    // after a daemon restart): re-attach to the outcome.
    waiters_[req.id].push_back(fd);
    send_line(fd, "{\"type\":\"accepted\",\"id\":\"" +
                      obs::json_escape(req.id) + "\"}");
    return;
  }
  if (draining_) {
    ++rejected_draining_;
    send_line(fd, "{\"type\":\"rejected\",\"id\":\"" +
                      obs::json_escape(req.id) +
                      "\",\"reason\":\"draining\"}");
    return;
  }
  std::uint64_t hash = 0;
  try {
    hash = cache_.admit(req.model_json, Factory::instance());
  } catch (const ConfigError& e) {
    // Invalid model: refuse up front instead of burning a worker; not
    // recorded in the ledger because nothing was accepted.
    ++rejected_invalid_;
    RequestRecord rec;
    rec.id = req.id;
    rec.status = "failed";
    rec.exit_code = 2;
    rec.out_dir = req.out_dir;
    rec.error = e.what();
    send_line(fd, done_line(rec));
    return;
  }
  if (queue_.size() >= queue_.capacity()) {
    ++rejected_overloaded_;
    send_line(fd, "{\"type\":\"rejected\",\"id\":\"" +
                      obs::json_escape(req.id) +
                      "\",\"reason\":\"overloaded\"}");
    write_metrics();
    return;
  }
  // Workers chdir per job, so the out dir must survive the move.
  std::error_code ec;
  const fs::path abs_out = fs::absolute(req.out_dir, ec);
  if (!ec) req.out_dir = abs_out.string();
  fs::create_directories(req.out_dir, ec);
  if (ec) {
    send_line(fd, "{\"type\":\"error\",\"error\":\"cannot create out dir '" +
                      obs::json_escape(req.out_dir) + "': " +
                      obs::json_escape(ec.message()) + "\"}");
    return;
  }
  // Durability order: spool the full request, then the ledger "accepted"
  // record, then the ack — a daemon killed between any two steps either
  // never accepted the request (client sees no ack, retries) or can
  // replay it from the spool on restart.  The spool takes the cheap
  // durability tier (one data fsync, no rename/dir-fsync): recovery
  // turns a torn or missing spool into an explicit error record, so the
  // failure mode is reported, never silent.
  const std::string spool_err = write_durable(
      req.out_dir + "/request.json", run_request_to_line(req) + "\n");
  if (!spool_err.empty()) {
    send_line(fd, "{\"type\":\"error\",\"error\":\"cannot spool request: " +
                      obs::json_escape(spool_err) + "\"}");
    return;
  }
  RequestRecord rec;
  rec.id = req.id;
  rec.status = "accepted";
  rec.out_dir = req.out_dir;
  rec.content_hash = hash;
  ledger_.record(rec);
  ++accepted_;
  waiters_[req.id].push_back(fd);
  send_line(fd, "{\"type\":\"accepted\",\"id\":\"" +
                    obs::json_escape(req.id) + "\"}");
  if (options_.verbose) {
    std::cerr << "[sstsimd] accepted '" << req.id << "' -> " << req.out_dir
              << "\n";
  }
  QueuedRequest q;
  q.req = std::move(req);
  q.content_hash = hash;
  queue_.defer(std::move(q));  // capacity was checked above
  write_metrics();
}

void Daemon::service_worker(int slot) {
  char buf[65536];
  const ::ssize_t n = ::read(pool_.fd(slot), buf, sizeof buf);
  if (n <= 0) return;  // death is handled by SIGCHLD -> reap
  LineBuffer& in = pool_.line_buffer(slot);
  in.feed(buf, static_cast<std::size_t>(n));
  std::string line;
  while (in.next(line)) {
    if (line.empty()) continue;
    try {
      handle_worker_reply(slot, parse_worker_reply(line));
    } catch (const DaemonError& e) {
      std::cerr << "[sstsimd] dropping garbled worker reply: " << e.what()
                << "\n";
    }
  }
}

void Daemon::handle_worker_reply(int slot, const WorkerReply& reply) {
  pool_.mark_idle(slot);
  auto it = inflight_.find(reply.id);
  if (it == inflight_.end()) return;  // already finalized via death path
  QueuedRequest q = std::move(it->second);
  inflight_.erase(it);
  if (reply.status == "timeout" &&
      maybe_retry(q, "watchdog abort: " + reply.error)) {
    return;
  }
  RequestRecord rec;
  rec.id = q.req.id;
  rec.status = reply.status;
  rec.exit_code = reply.exit_code;
  rec.attempts = q.attempts;
  rec.out_dir = q.req.out_dir;
  rec.content_hash = q.content_hash;
  rec.error = reply.error;
  finish_request(q, std::move(rec));
}

void Daemon::handle_worker_exit(const WorkerExit& ex) {
  if (ex.was_busy && options_.verbose) {
    std::cerr << "[sstsimd] worker pid " << ex.pid << " died on '"
              << ex.request_id << "' (signal " << ex.term_signal << ", exit "
              << ex.exit_code << (ex.hard_killed ? ", deadline kill" : "")
              << ")\n";
  }
  write_metrics();
  if (!ex.was_busy || ex.request_id.empty()) return;
  auto it = inflight_.find(ex.request_id);
  if (it == inflight_.end()) return;
  QueuedRequest q = std::move(it->second);
  inflight_.erase(it);
  RequestRecord rec;
  rec.id = q.req.id;
  rec.attempts = q.attempts;
  rec.out_dir = q.req.out_dir;
  rec.content_hash = q.content_hash;
  if (ex.hard_killed) {
    // The worker blew through watchdog + margin: transient by the same
    // policy the DSE orchestrator applies to exit code 3.
    if (maybe_retry(q, "hard deadline exceeded")) return;
    rec.status = "timeout";
    rec.exit_code = 3;
    rec.error = "hard deadline exceeded; worker killed after " +
                std::to_string(q.attempts) + " attempt(s)";
  } else if (ex.term_signal != 0) {
    rec.status = "error";
    rec.exit_code = 1;
    rec.term_signal = ex.term_signal;
    rec.error = "worker pid " + std::to_string(ex.pid) +
                " killed by signal " + std::to_string(ex.term_signal) +
                " while running this request";
  } else {
    rec.status = "error";
    rec.exit_code = ex.exit_code != 0 ? ex.exit_code : 1;
    rec.error = "worker pid " + std::to_string(ex.pid) +
                " exited unexpectedly (code " + std::to_string(ex.exit_code) +
                ")";
  }
  finish_request(q, std::move(rec));
}

void Daemon::finish_request(const QueuedRequest& q, RequestRecord rec) {
  (void)q;
  ledger_.record(rec);
  if (rec.status == "ok") {
    ++completed_ok_;
  } else if (rec.status == "failed") {
    ++completed_failed_;
  } else if (rec.status == "timeout") {
    ++completed_timeout_;
  } else {
    ++completed_error_;
  }
  if (options_.verbose) {
    std::cerr << "[sstsimd] '" << rec.id << "' -> " << rec.status
              << " (exit " << rec.exit_code << ", attempts " << rec.attempts
              << ")\n";
  }
  notify_waiters(rec.id, done_line(rec));
  write_metrics();
}

bool Daemon::maybe_retry(QueuedRequest q, const std::string& why) {
  if (q.attempts >= 1 + q.req.retries) return false;
  const double backoff =
      q.req.backoff_seconds *
      static_cast<double>(1u << (q.attempts > 0 ? q.attempts - 1 : 0));
  ++retries_;
  if (options_.verbose) {
    std::cerr << "[sstsimd] retrying '" << q.req.id << "' in " << backoff
              << "s (attempt " << q.attempts + 1 << "): " << why << "\n";
  }
  q.not_before = after_seconds(std::chrono::steady_clock::now(), backoff);
  queue_.defer(std::move(q));
  return true;
}

void Daemon::enforce_deadlines(SteadyTime now) {
  for (int slot = 0; slot < static_cast<int>(pool_.count()); ++slot) {
    if (pool_.alive(slot) && pool_.busy(slot) &&
        pool_.deadline(slot) != SteadyTime::max() &&
        now >= pool_.deadline(slot)) {
      pool_.kill_slot(slot);
    }
  }
}

void Daemon::dispatch_ready(SteadyTime now) {
  for (;;) {
    const int slot = pool_.idle_slot();
    if (slot < 0) return;
    auto q = queue_.pop_ready(now);
    if (!q) return;
    q->attempts += 1;
    SteadyTime deadline = SteadyTime::max();
    if (q->req.timeout_seconds > 0) {
      deadline =
          after_seconds(now, hard_deadline_seconds(q->req.timeout_seconds));
    }
    const std::string job = worker_job_to_line(q->req, q->content_hash);
    const std::string id = q->req.id;
    if (!pool_.dispatch(slot, job, id, deadline)) {
      // The worker died before the job landed: un-count the attempt and
      // requeue; SIGCHLD will respawn the slot.
      pool_.mark_idle(slot);
      q->attempts -= 1;
      queue_.defer(std::move(*q));
      return;
    }
    inflight_[id] = std::move(*q);
  }
}

void Daemon::send_line(int fd, const std::string& line) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  it->second.out += line;
  it->second.out += '\n';
  // Deliberately no flush here: buffered output is written at the top
  // of the next event-loop pass, after the ledger's group commit, so a
  // reply can never overtake the durability it reports.
}

void Daemon::flush_client(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  std::string& out = it->second.out;
  while (!out.empty()) {
    const ::ssize_t n = ::write(fd, out.data(), out.size());
    if (n > 0) {
      out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    drop_client(fd);  // peer gone; the ledger still completes its work
    return;
  }
}

void Daemon::notify_waiters(const std::string& id,
                            const std::string& line) {
  auto it = waiters_.find(id);
  if (it == waiters_.end()) return;
  const std::vector<int> fds = std::move(it->second);
  waiters_.erase(it);
  for (const int fd : fds) {
    if (clients_.count(fd) != 0) send_line(fd, line);
  }
}

void Daemon::drop_client(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  ::close(fd);
  clients_.erase(it);
  for (auto& [id, fds] : waiters_) {
    (void)id;
    fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
  }
}

std::string Daemon::done_line(const RequestRecord& rec) const {
  std::ostringstream os;
  os << "{\"type\":\"done\",\"id\":\"" << obs::json_escape(rec.id)
     << "\",\"status\":\"" << obs::json_escape(rec.status)
     << "\",\"exit\":" << rec.exit_code << ",\"signal\":" << rec.term_signal
     << ",\"attempts\":" << rec.attempts << ",\"stats\":\""
     << obs::json_escape(rec.out_dir.empty() ? ""
                                             : rec.out_dir + "/stats.json")
     << "\",\"error\":\"" << obs::json_escape(rec.error) << "\"}";
  return os.str();
}

std::string Daemon::status_line() const {
  std::ostringstream os;
  os << "{\"type\":\"status\",\"draining\":" << (draining_ ? "true" : "false")
     << ",\"queue\":" << queue_.size()
     << ",\"queue_capacity\":" << queue_.capacity()
     << ",\"workers\":" << pool_.count()
     << ",\"busy\":" << pool_.busy_count()
     << ",\"inflight\":" << inflight_.size()
     << ",\"accepted\":" << accepted_ << ",\"recovered\":" << recovered_
     << ",\"replays\":" << replays_
     << ",\"rejected_overloaded\":" << rejected_overloaded_
     << ",\"rejected_draining\":" << rejected_draining_
     << ",\"rejected_invalid\":" << rejected_invalid_
     << ",\"retries\":" << retries_
     << ",\"completed_ok\":" << completed_ok_
     << ",\"completed_failed\":" << completed_failed_
     << ",\"completed_timeout\":" << completed_timeout_
     << ",\"completed_error\":" << completed_error_
     << ",\"cache_hits\":" << cache_.hits()
     << ",\"cache_misses\":" << cache_.misses()
     << ",\"cache_size\":" << cache_.size()
     << ",\"worker_restarts\":" << pool_.restarts() << "}";
  return os.str();
}

void Daemon::write_metrics() {
  // Observability stream, not crash-critical state: plain append, one
  // JSONL snapshot per lifecycle transition (same shape as the status
  // op, plus elapsed wall time).
  std::ofstream out(options_.state_dir + "/daemon.metrics.jsonl",
                    std::ios::app);
  if (!out) return;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started_at_);
  std::string line = status_line();
  line.replace(line.find("\"type\":\"status\""),
               std::string("\"type\":\"status\"").size(),
               "\"type\":\"daemon\",\"elapsed_ms\":" +
                   std::to_string(elapsed.count()));
  out << line << "\n";
}

}  // namespace sst::daemon
