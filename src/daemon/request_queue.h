// Bounded admission queue with retry scheduling.
//
// Admission (`push`) is capacity-limited: when the queue is full the
// daemon sheds load with an explicit `rejected: overloaded` reply
// instead of letting clients hang behind unbounded memory growth.
// Retries and crash-recovered requests re-enter through `defer`, which
// is *not* capacity-limited — that work was already accepted and must
// complete — and carries a not-before gate implementing the doubling
// backoff.
//
// Time is passed in by the caller so the scheduling policy is testable
// without wall-clock sleeps (tests/daemon/test_request_queue.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "daemon/protocol.h"

namespace sst::daemon {

using SteadyTime = std::chrono::steady_clock::time_point;

struct QueuedRequest {
  RunRequest req;
  std::uint64_t content_hash = 0;
  unsigned attempts = 0;       // attempts already made
  SteadyTime not_before{};     // backoff gate (default: immediately ready)
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission: false when the queue is at capacity (shed the request).
  bool push(QueuedRequest q) {
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(q));
    return true;
  }

  /// Re-entry for retries and recovered requests: always accepted.
  void defer(QueuedRequest q) { queue_.push_back(std::move(q)); }

  /// Pops the first request whose backoff gate has passed.  Preserves
  /// submission order among ready requests (a gated head does not block
  /// a ready successor).
  std::optional<QueuedRequest> pop_ready(SteadyTime now) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->not_before <= now) {
        QueuedRequest q = std::move(*it);
        queue_.erase(it);
        return q;
      }
    }
    return std::nullopt;
  }

  /// Earliest backoff gate among queued requests (nullopt when empty).
  /// Bounds the daemon's poll timeout so retries fire on schedule.
  [[nodiscard]] std::optional<SteadyTime> next_ready_at() const {
    std::optional<SteadyTime> earliest;
    for (const auto& q : queue_) {
      if (!earliest || q.not_before < *earliest) earliest = q.not_before;
    }
    return earliest;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::deque<QueuedRequest> queue_;
  std::size_t capacity_;
};

}  // namespace sst::daemon
