#include "daemon/protocol.h"

#include <sstream>

#include "obs/json_util.h"

namespace sst::daemon {

namespace {

void append_common_run_fields(std::ostream& os, const RunRequest& req) {
  os << "\"id\":\"" << obs::json_escape(req.id) << "\",\"model\":\""
     << obs::json_escape(req.model_json) << "\",\"out\":\""
     << obs::json_escape(req.out_dir) << "\",\"overrides\":{";
  bool first = true;
  for (const auto& [path, value] : req.overrides) {
    if (!first) os << ",";
    first = false;
    os << "\"" << obs::json_escape(path) << "\":\""
       << obs::json_escape(value) << "\"";
  }
  os << "},\"ranks\":" << req.ranks << ",\"end\":\""
     << obs::json_escape(req.end_time) << "\"";
  if (req.seed) os << ",\"seed\":" << *req.seed;
  os << ",\"timeout\":" << obs::json_number(req.timeout_seconds)
     << ",\"retries\":" << req.retries
     << ",\"backoff\":" << obs::json_number(req.backoff_seconds);
  if (req.test_signal != 0) os << ",\"test_signal\":" << req.test_signal;
}

}  // namespace

ClientMessage parse_client_message(const std::string& line) {
  sdl::JsonValue doc;
  try {
    doc = sdl::JsonValue::parse(line);
  } catch (const sdl::JsonError& e) {
    throw DaemonError(std::string("malformed request line: ") + e.what());
  }
  if (!doc.is_object() || !doc.has("op")) {
    throw DaemonError("request line must be an object with an \"op\" field");
  }
  const std::string op = doc.at("op").as_string();
  ClientMessage msg;
  if (op == "run") {
    msg.op = ClientMessage::Op::kRun;
    msg.run = run_request_from_json(doc);
  } else if (op == "status") {
    msg.op = ClientMessage::Op::kStatus;
  } else if (op == "result") {
    msg.op = ClientMessage::Op::kResult;
    if (!doc.has("id")) throw DaemonError("result op requires an \"id\"");
    msg.id = doc.at("id").as_string();
  } else if (op == "drain") {
    msg.op = ClientMessage::Op::kDrain;
  } else {
    throw DaemonError("unknown op '" + op +
                      "' (expected run|status|result|drain)");
  }
  return msg;
}

RunRequest run_request_from_json(const sdl::JsonValue& doc) {
  RunRequest req;
  req.id = doc.get_string("id", "");
  if (!doc.has("model") || !doc.at("model").is_string() ||
      doc.at("model").as_string().empty()) {
    throw DaemonError("run op requires a non-empty \"model\" field "
                      "carrying the SDL JSON text inline");
  }
  req.model_json = doc.at("model").as_string();
  req.out_dir = doc.get_string("out", "");
  if (req.out_dir.empty()) {
    throw DaemonError("run op requires an \"out\" directory for "
                      "request.json and stats.json");
  }
  if (doc.has("overrides")) {
    for (const auto& [path, value] : doc.at("overrides").as_object()) {
      req.overrides.emplace_back(path, value.as_string());
    }
  }
  req.ranks = static_cast<unsigned>(doc.get_number("ranks", 0));
  req.end_time = doc.get_string("end", "");
  if (doc.has("seed")) {
    req.seed = static_cast<std::uint64_t>(doc.at("seed").as_number());
  }
  req.timeout_seconds = doc.get_number("timeout", 300);
  if (req.timeout_seconds < 0) {
    throw DaemonError("run op \"timeout\" must be >= 0");
  }
  req.retries = static_cast<unsigned>(doc.get_number("retries", 2));
  req.backoff_seconds = doc.get_number("backoff", 0.5);
  req.test_signal = static_cast<int>(doc.get_number("test_signal", 0));
  return req;
}

std::string run_request_to_line(const RunRequest& req) {
  std::ostringstream os;
  os << "{\"op\":\"run\",";
  append_common_run_fields(os, req);
  os << "}";
  return os.str();
}

std::string worker_job_to_line(const RunRequest& req,
                               std::uint64_t content_hash) {
  std::ostringstream os;
  os << "{\"op\":\"run\",\"hash\":\"" << std::hex << content_hash
     << std::dec << "\",";
  append_common_run_fields(os, req);
  os << "}";
  return os.str();
}

std::string worker_reply_to_line(const WorkerReply& reply) {
  std::ostringstream os;
  os << "{\"id\":\"" << obs::json_escape(reply.id) << "\",\"status\":\""
     << obs::json_escape(reply.status) << "\",\"exit\":" << reply.exit_code
     << ",\"error\":\"" << obs::json_escape(reply.error)
     << "\",\"events\":" << reply.events
     << ",\"wall\":" << obs::json_number(reply.wall_seconds)
     << ",\"cache_hit\":" << (reply.cache_hit ? "true" : "false") << "}";
  return os.str();
}

WorkerReply parse_worker_reply(const std::string& line) {
  sdl::JsonValue doc;
  try {
    doc = sdl::JsonValue::parse(line);
  } catch (const sdl::JsonError& e) {
    throw DaemonError(std::string("malformed worker reply: ") + e.what());
  }
  WorkerReply reply;
  reply.id = doc.get_string("id", "");
  reply.status = doc.get_string("status", "failed");
  reply.exit_code = static_cast<int>(doc.get_number("exit", 1));
  reply.error = doc.get_string("error", "");
  reply.events = static_cast<std::uint64_t>(doc.get_number("events", 0));
  reply.wall_seconds = doc.get_number("wall", 0.0);
  reply.cache_hit = doc.get_bool("cache_hit", false);
  return reply;
}

}  // namespace sst::daemon
