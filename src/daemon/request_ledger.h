// Daemon request ledger: the crash-consistent record of every accepted
// request and its final outcome — the durable queue that makes a
// kill -9'd daemon restartable without losing or duplicating work.
//
// JSONL, one header line ({"daemon":"sstsimd","version":1}) plus one
// line per request.  A request is recorded as "accepted" before its
// acceptance is acknowledged to the client (its full request line having
// already been spooled to <out>/request.json), and overwritten with its
// final status exactly once.  On restart, every record still "accepted"
// is re-enqueued from its spooled request; records with a final status
// are served straight from the ledger when the same id is resubmitted —
// the replay path that gives clients exactly-once completion.
//
// Writes are group-committed: record() only stages a line in memory;
// flush() durably appends every staged line in one write + fsync
// (append_durable).  The daemon flushes once per event-loop pass,
// *before* any acceptance or completion reply reaches a socket, so a
// client never observes a state the ledger could lose — while a burst
// of accepted requests costs one fsync, not one per request.  A later
// line for the same id supersedes the earlier one; the reader keeps the
// last, tolerates a torn final line (an appender killed mid-write) by
// truncating it, and throws on interior corruption.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "daemon/protocol.h"

namespace sst::daemon {

struct RequestRecord {
  std::string id;
  std::string status;  // "accepted" | "ok" | "failed" | "timeout" | "error"
  int exit_code = 0;   // sstsim exit-code contract (0-6) or 7 (daemon error)
  int term_signal = 0; // terminating signal when a worker died on the job
  unsigned attempts = 0;
  std::string out_dir;
  std::uint64_t content_hash = 0;
  std::string error;   // diagnostic for non-ok outcomes

  [[nodiscard]] bool final() const { return status != "accepted"; }
};

class RequestLedger {
 public:
  explicit RequestLedger(std::string path) : path_(std::move(path)) {}

  /// Reads the ledger if present; a missing file is an empty ledger.
  /// Repairs a torn final line (with a stderr note); throws DaemonError
  /// on interior corruption or a foreign/mismatched header.
  void load();

  /// Upserts a record in memory and stages its line for the next
  /// flush().  NOT durable until flush() returns.
  void record(const RequestRecord& rec);

  /// Durably appends every staged line (one write + fsync).  No-op when
  /// nothing is staged.  Callers must flush before acting on a record's
  /// durability — the daemon flushes before releasing client replies.
  void flush();

  /// Staged lines not yet on disk (exposed for tests).
  [[nodiscard]] bool dirty() const { return !pending_.empty(); }

  [[nodiscard]] const RequestRecord* find(const std::string& id) const {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }
  /// Records still "accepted" — the restart-recovery work list.
  [[nodiscard]] std::vector<RequestRecord> pending() const;
  [[nodiscard]] const std::map<std::string, RequestRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, RequestRecord> records_;
  std::string pending_;          // staged JSONL lines, flushed together
  bool header_written_ = false;  // true once the file has a header line
};

}  // namespace sst::daemon
