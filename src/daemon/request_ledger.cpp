#include "daemon/request_ledger.h"

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/atomic_file.h"
#include "obs/json_util.h"

namespace sst::daemon {

namespace {

constexpr int kLedgerVersion = 1;

std::string record_to_line(const RequestRecord& r) {
  std::ostringstream os;
  os << "{\"id\":\"" << obs::json_escape(r.id) << "\",\"status\":\""
     << obs::json_escape(r.status) << "\",\"exit\":" << r.exit_code
     << ",\"signal\":" << r.term_signal << ",\"attempts\":" << r.attempts
     << ",\"out\":\"" << obs::json_escape(r.out_dir) << "\",\"hash\":\""
     << std::hex << r.content_hash << std::dec << "\",\"error\":\""
     << obs::json_escape(r.error) << "\"}";
  return os.str();
}

}  // namespace

void RequestLedger::load() {
  std::ifstream in(path_);
  if (!in) return;
  std::vector<std::pair<std::size_t, std::string>> lines;
  {
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (!line.empty()) lines.emplace_back(lineno, std::move(line));
    }
  }
  bool saw_header = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& [lineno, line] = lines[i];
    sdl::JsonValue doc;
    try {
      doc = sdl::JsonValue::parse(line);
    } catch (const sdl::JsonError& e) {
      if (i + 1 == lines.size()) {
        std::cerr << "[sstsimd] ledger '" << path_
                  << "': dropping torn final line " << lineno
                  << " (interrupted append)\n";
        // Truncate the fragment so this daemon's appends start fresh
        // instead of gluing onto it.
        const std::string terr = truncate_torn_tail(path_, line.size());
        if (!terr.empty()) {
          throw DaemonError("ledger '" + path_ +
                            "': cannot repair torn tail: " + terr);
        }
        break;
      }
      throw DaemonError("ledger '" + path_ + "' line " +
                        std::to_string(lineno) +
                        " is malformed: " + e.what());
    }
    if (!saw_header) {
      if (!doc.has("daemon") || doc.at("daemon").as_string() != "sstsimd") {
        throw DaemonError("'" + path_ + "' is not an sstsimd request ledger");
      }
      if (static_cast<int>(doc.get_number("version", 0)) != kLedgerVersion) {
        throw DaemonError("ledger '" + path_ + "' has version " +
                          std::to_string(static_cast<int>(
                              doc.get_number("version", 0))) +
                          ", this daemon writes version " +
                          std::to_string(kLedgerVersion));
      }
      saw_header = true;
      continue;
    }
    RequestRecord r;
    r.id = doc.at("id").as_string();
    r.status = doc.at("status").as_string();
    r.exit_code = static_cast<int>(doc.get_number("exit", 0));
    r.term_signal = static_cast<int>(doc.get_number("signal", 0));
    r.attempts = static_cast<unsigned>(doc.get_number("attempts", 0));
    r.out_dir = doc.get_string("out", "");
    r.content_hash = std::stoull(doc.get_string("hash", "0"), nullptr, 16);
    r.error = doc.get_string("error", "");
    records_[r.id] = std::move(r);
  }
  header_written_ = saw_header;
}

void RequestLedger::record(const RequestRecord& rec) {
  records_[rec.id] = rec;
  pending_ += record_to_line(rec);
  pending_ += '\n';
}

void RequestLedger::flush() {
  if (pending_.empty()) return;
  std::string payload;
  if (!header_written_) {
    payload = "{\"daemon\":\"sstsimd\",\"version\":" +
              std::to_string(kLedgerVersion) + "}\n";
  }
  payload += pending_;
  const std::string err = append_durable(path_, payload);
  if (!err.empty()) throw DaemonError("request ledger: " + err);
  header_written_ = true;
  pending_.clear();
}

std::vector<RequestRecord> RequestLedger::pending() const {
  std::vector<RequestRecord> out;
  for (const auto& [id, r] : records_) {
    (void)id;
    if (!r.final()) out.push_back(r);
  }
  return out;
}

}  // namespace sst::daemon
