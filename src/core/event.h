// Event base class and handler types.
//
// Events are the unit of interaction between components.  Ownership is
// explicit: an event lives in exactly one place at a time (sender, queue,
// or handler), expressed with std::unique_ptr moving through the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/types.h"

namespace sst {

namespace ckpt {
class Serializer;
class EventRegistry;
class CheckpointEngine;
class Migrator;
}  // namespace ckpt

class Event;
using EventPtr = std::unique_ptr<Event>;

/// Callable invoked when an event arrives at a link endpoint.
/// The handler receives ownership of the event.
using EventHandler = std::function<void(EventPtr)>;

/// Base class for everything that travels on links or sits in the event
/// queue.  Models define subclasses carrying their payloads.
class Event {
 public:
  Event() = default;
  virtual ~Event() = default;

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Time at which this event is (or was) delivered.
  [[nodiscard]] SimTime delivery_time() const { return delivery_time_; }

  /// Deep copy of the payload (engine ordering fields are NOT copied; the
  /// clone is a fresh unsent event).  Returns nullptr for event types that
  /// do not support copying — fault-injection duplication needs clones, so
  /// models that should survive duplication faults override this.
  [[nodiscard]] virtual EventPtr clone() const { return nullptr; }

  /// Lower value ⇒ delivered first among events at the same time.
  /// The engine reserves small values; models should not need this.
  [[nodiscard]] std::uint32_t priority() const { return priority_; }

  /// Identifier of the link endpoint this event was sent on
  /// (kInvalidLink for engine-internal activities such as clock ticks).
  [[nodiscard]] LinkId link_id() const { return link_id_; }

  /// Checkpoint support: the stable type tag this event registers in the
  /// checkpoint event registry, or nullptr when the type is not
  /// checkpoint-serializable (a pending event of such a type makes the
  /// simulation uncheckpointable, which save() reports).
  [[nodiscard]] virtual const char* ckpt_type() const { return nullptr; }

  /// Checkpoint support: (un)packs the subclass payload.  The engine
  /// ordering fields are handled by the registry; overrides serialize
  /// model fields only.
  virtual void ckpt_fields(ckpt::Serializer&) {}

 private:
  friend class Simulation;
  friend class Link;
  friend class Clock;
  friend class TimeVortex;
  friend struct EventOrder;
  friend class TimeVortexTestPeer;  // unit tests stamp events directly
  friend class ckpt::EventRegistry;      // checkpoints engine fields
  friend class ckpt::CheckpointEngine;   // recomputes handler_ on restore
  friend class ckpt::Migrator;           // re-targets handler_ after a move

  SimTime delivery_time_ = 0;
  std::uint32_t priority_ = kPriorityDefault;
  // Source id: the sending link endpoint's id, or a clock source id
  // (kClockSourceBase | period) for tick events.  Together with the
  // per-source sequence number below this gives every event a total order
  // (time, priority, source, seq) that is identical for serial and
  // parallel execution and independent of partitioning.
  LinkId link_id_ = kInvalidLink;
  // Monotonic per-source sequence number stamped at send time.
  std::uint64_t order_ = 0;
  // Non-owning: the handler that consumes this event.  Set by the engine.
  const EventHandler* handler_ = nullptr;

 public:
  static constexpr std::uint32_t kPriorityClock = 10;
  static constexpr std::uint32_t kPriorityDefault = 100;
  static constexpr std::uint32_t kPriorityLow = 1000;
  /// Source-id namespace for clock tick events (above all real link ids).
  static constexpr LinkId kClockSourceBase = 0x8000'0000U;
};

/// Deterministic strict weak ordering over scheduled events:
/// (delivery_time, priority, source id, per-source sequence).
struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.delivery_time_ != b.delivery_time_)
      return a.delivery_time_ < b.delivery_time_;
    if (a.priority_ != b.priority_) return a.priority_ < b.priority_;
    if (a.link_id_ != b.link_id_) return a.link_id_ < b.link_id_;
    return a.order_ < b.order_;
  }
};

/// A trivial event with no payload; useful for wakeups and tests.
class NullEvent final : public Event {
 public:
  [[nodiscard]] EventPtr clone() const override {
    return std::make_unique<NullEvent>();
  }
  [[nodiscard]] const char* ckpt_type() const override { return "core.Null"; }
};

/// Convenience helper for models: makes an event of type T.
template <typename T, typename... Args>
EventPtr make_event(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

/// Checked downcast for received events.  Throws SimulationError when the
/// event is not of the expected type (a protocol bug in the model).
template <typename T>
std::unique_ptr<T> event_cast(EventPtr ev) {
  T* p = dynamic_cast<T*>(ev.get());
  if (p == nullptr)
    throw SimulationError("event_cast: unexpected event type");
  ev.release();
  return std::unique_ptr<T>(p);
}

}  // namespace sst
