// StatSampler: periodic statistics sampling (SST's interval statistics).
//
// End-of-run totals hide dynamics — warm-up, phase changes, saturation
// onset.  A StatSampler snapshots a filtered set of statistics on a fixed
// simulated-time period, producing per-interval time series ("bandwidth
// over time", "queue depth over time") retrievable in memory or as CSV.
//
// The sampler holds a clock for the whole run, so simulations using one
// must terminate via primary components or an end_time (a sampler alone
// keeps the event queue non-empty).
//
// Params:
//   period      sampling interval                        (default "10us")
//   components  comma-separated component-name prefixes  (default: all)
//   fields      comma-separated field names to record    (default
//               "count,sum")
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/component.h"

namespace sst {

class StatSampler final : public Component {
 public:
  explicit StatSampler(Params& params);

  void setup() override;

  struct Sample {
    SimTime time;
    std::vector<double> values;  // parallel to columns()

    void ckpt_io(ckpt::Serializer& s);
  };

  /// Column labels: "component.statistic.field".
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }

  /// Per-interval delta of a column (for monotonic counters): the value
  /// accumulated between sample i-1 and i.
  [[nodiscard]] double delta(std::size_t column, std::size_t sample) const;

  /// CSV: time_ps,<column>,<column>,...
  void write_csv(std::ostream& os) const;

  void serialize_state(ckpt::Serializer& s) override;

 private:
  bool tick(Cycle cycle);
  [[nodiscard]] bool matches(const Statistic& stat) const;

  SimTime period_;
  std::vector<std::string> component_filters_;
  std::vector<std::string> field_filter_;

  std::vector<const Statistic*> tracked_;
  std::vector<std::string> tracked_field_;
  std::vector<std::string> columns_;
  std::vector<Sample> samples_;
};

}  // namespace sst
