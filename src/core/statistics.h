// Statistics engine: typed counters, accumulators, and histograms that
// components register by name and the framework dumps at the end of the
// run (console table or CSV).
//
// Mirrors SST's statistics subsystem at the level a model author sees:
//   auto* lat = register_statistic<Accumulator>("read_latency");
//   lat->add(t_done - t_issue);
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.h"

namespace sst {

namespace ckpt {
class Serializer;
}  // namespace ckpt

/// Escapes one CSV field per RFC 4180: fields containing a comma, quote,
/// or newline are quoted, with embedded quotes doubled.  Component and
/// statistic names are user-chosen, so the CSV writers must not assume
/// they are delimiter-free.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// One named output field of a statistic ("sum", "count", "mean", ...).
struct StatField {
  std::string name;
  double value = 0.0;
};

/// Base class for all statistics.
class Statistic {
 public:
  Statistic(std::string component, std::string name)
      : component_(std::move(component)), name_(std::move(name)) {}
  virtual ~Statistic() = default;

  Statistic(const Statistic&) = delete;
  Statistic& operator=(const Statistic&) = delete;

  [[nodiscard]] const std::string& component() const { return component_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Flattens the statistic into named fields for output.
  [[nodiscard]] virtual std::vector<StatField> fields() const = 0;

  /// Checkpoint hook: (un)packs the accumulated values (identity and
  /// configuration are rebuilt from the model, not the checkpoint).
  virtual void ckpt_io(ckpt::Serializer& s) { (void)s; }

 private:
  std::string component_;
  std::string name_;
};

/// Monotonic counter.
class Counter final : public Statistic {
 public:
  using Statistic::Statistic;

  void add(std::uint64_t n = 1) { count_ += n; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

  [[nodiscard]] std::vector<StatField> fields() const override {
    return {{"count", static_cast<double>(count_)}};
  }

  void ckpt_io(ckpt::Serializer& s) override;

 private:
  std::uint64_t count_ = 0;
};

/// Running sum / min / max / mean / variance accumulator.
class Accumulator final : public Statistic {
 public:
  using Statistic::Statistic;

  void add(double v) {
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double variance() const {
    if (count_ < 2) return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var < 0.0 ? 0.0 : var;  // guard against rounding
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  [[nodiscard]] std::vector<StatField> fields() const override;

  void ckpt_io(ckpt::Serializer& s) override;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram with overflow/underflow bins.
class Histogram final : public Statistic {
 public:
  Histogram(std::string component, std::string name, double lo, double width,
            std::size_t nbins);

  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t num_bins() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + width_ * static_cast<double>(i);
  }

  /// Value below which the given fraction of samples falls (approximate,
  /// bin-resolution).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] std::vector<StatField> fields() const override;

  void ckpt_io(ckpt::Serializer& s) override;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
};

/// Registry owning all statistics of one simulation.
class StatisticsRegistry {
 public:
  template <typename S, typename... Args>
  S* create(const std::string& component, const std::string& name,
            Args&&... args) {
    auto stat =
        std::make_unique<S>(component, name, std::forward<Args>(args)...);
    S* raw = stat.get();
    stats_.push_back(std::move(stat));
    return raw;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Statistic>>& all() const {
    return stats_;
  }

  /// Finds a statistic by (component, name); nullptr when absent.
  [[nodiscard]] const Statistic* find(std::string_view component,
                                      std::string_view name) const;

  /// Writes a human-readable table.
  void write_console(std::ostream& os) const;

  /// Writes CSV: component,statistic,field,value
  void write_csv(std::ostream& os) const;

  /// Writes JSON: [{"component":...,"statistic":...,"fields":{...}}, ...]
  /// in registration order, with deterministic number formatting (the
  /// golden-run corpus hashes this output).
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::unique_ptr<Statistic>> stats_;
};

}  // namespace sst
