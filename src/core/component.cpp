#include "core/component.h"

#include <utility>

#include "core/simulation.h"

namespace sst {

namespace {
std::uint64_t component_seed(std::uint64_t global_seed, ComponentId id) {
  rng::SplitMix64 sm(global_seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  return sm.next();
}
}  // namespace

Component::Component() : rng_(1) {
  Simulation* sim = Simulation::build_context();
  if (sim == nullptr || !sim->constructing_) {
    throw ConfigError(
        "Component constructed outside Simulation::add_component");
  }
  sim_ = sim;
  id_ = static_cast<ComponentId>(sim->components_.size());
  name_ = sim->pending_name_;
  rng_ = rng::XorShift128Plus(component_seed(sim->config().seed, id_));
}

Component::~Component() = default;

SimTime Component::now() const { return sim_->rank_now(rank_); }

Link* Component::configure_link(std::string_view port, EventHandler handler,
                                bool optional) {
  return sim_->create_link(id_, port, std::move(handler), /*polling=*/false,
                           optional);
}

Link* Component::configure_polling_link(std::string_view port,
                                        bool optional) {
  return sim_->create_link(id_, port, EventHandler{}, /*polling=*/true,
                           optional);
}

Link* Component::configure_self_link(std::string_view name, SimTime latency,
                                     EventHandler handler) {
  return sim_->create_self_link(id_, name, latency, std::move(handler));
}

void Component::register_clock(SimTime period_ps, ClockHandler handler) {
  if (period_ps == 0) throw ConfigError("clock period must be >= 1ps");
  sim_->register_component_clock(id_, period_ps, std::move(handler));
}

void Component::register_clock(const UnitAlgebra& freq_or_period,
                               ClockHandler handler) {
  register_clock(freq_or_period.to_period(), std::move(handler));
}

Counter* Component::stat_counter(const std::string& name) {
  return sim_->stats().create<Counter>(name_, name);
}

Accumulator* Component::stat_accumulator(const std::string& name) {
  return sim_->stats().create<Accumulator>(name_, name);
}

Histogram* Component::stat_histogram(const std::string& name, double lo,
                                     double width, std::size_t nbins) {
  return sim_->stats().create<Histogram>(name_, name, lo, width, nbins);
}

void Component::trace_event(const std::string& name,
                            const std::string& detail) {
  if (!sim_->tracing()) return;
  sim_->trace_marker(rank_, now(), id_, trace_seq_++, name, detail);
}

void Component::register_as_primary() {
  if (is_primary_) return;
  is_primary_ = true;
  sim_->note_primary();
}

void Component::primary_ok_to_end_sim() {
  if (!is_primary_) {
    throw SimulationError("primary_ok_to_end_sim from non-primary component '" +
                          name_ + "'");
  }
  if (said_ok_) return;
  said_ok_ = true;
  sim_->note_primary_ok();
}

}  // namespace sst
